#!/bin/sh
# live_smoke.sh DIR — end-to-end smoke of the live serving pipeline.
#
# Starts ipscope-serve in -obs-listen live mode, streams a paced
# simulation into it with ipscope-gen -connect (persisting the same
# stream to a dataset file), and asserts:
#
#   1. the /v1/healthz epoch advances while the stream is in flight
#      (the server re-publishes snapshots without restarting);
#   2. at end of stream, /v1/summary is byte-identical (modulo the
#      epoch field) to a batch `ipscope-serve -dataset ... -dump-summary`
#      over the persisted dataset — the incremental and monolithic
#      index builds agree.
#
# Expects $DIR/ipscope-gen and $DIR/ipscope-serve to be prebuilt (the
# Makefile's live-smoke target does this).
set -eu

dir=${1:?usage: live_smoke.sh DIR}
obs_addr=127.0.0.1:19461
http_addr=127.0.0.1:19462
base="http://$http_addr"
gen_flags="-seed 5 -ases 24 -blocks-per-as 6 -days 56"

fetch() { curl -fsS --max-time 5 "$1"; }
epoch_of() { fetch "$base/v1/healthz" | sed -n 's/.*"epoch":\([0-9]*\).*/\1/p'; }

"$dir/ipscope-serve" -obs-listen "$obs_addr" -listen "$http_addr" -publish-every 7 \
    2>"$dir/serve.log" &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT INT TERM

# Wait for the HTTP endpoint (serving "warming" until the first epoch).
i=0
until fetch "$base/v1/healthz" >/dev/null 2>&1; do
    i=$((i+1))
    [ "$i" -le 50 ] || { echo "live-smoke: server never came up"; cat "$dir/serve.log"; exit 1; }
    sleep 0.2
done

# Stream a paced simulation into the live server, persisting a copy.
"$dir/ipscope-gen" $gen_flags -connect "$obs_addr" -dataset "$dir/live.obs" -day-delay 15ms \
    2>"$dir/gen.log" &
gen_pid=$!

# The epoch must advance while the stream is in flight.
first=""
i=0
while :; do
    e=$(epoch_of || true)
    if [ -n "$e" ] && [ "$e" -ge 1 ]; then
        if [ -z "$first" ]; then
            first=$e
        elif [ "$e" -gt "$first" ]; then
            echo "live-smoke: epoch advanced $first -> $e mid-stream"
            break
        fi
    fi
    i=$((i+1))
    [ "$i" -le 200 ] || { echo "live-smoke: epoch never advanced (stuck at '${first:-none}')"; exit 1; }
    sleep 0.1
done

wait "$gen_pid"

# After end of stream the final epoch folds in the trailing aggregates;
# its summary must match the batch index over the persisted dataset.
"$dir/ipscope-serve" -dataset "$dir/live.obs" -dump-summary >"$dir/batch-summary.json" 2>/dev/null
i=0
while :; do
    fetch "$base/v1/summary" | sed 's/"epoch":[0-9]*,//' >"$dir/live-summary.json" || true
    if cmp -s "$dir/live-summary.json" "$dir/batch-summary.json"; then
        break
    fi
    i=$((i+1))
    [ "$i" -le 50 ] || {
        echo "live-smoke: live summary never converged on the batch summary"
        diff "$dir/live-summary.json" "$dir/batch-summary.json" || true
        exit 1
    }
    sleep 0.2
done

final=$(epoch_of)
echo "live-smoke: final epoch $final; live /v1/summary matches batch dump-summary"
