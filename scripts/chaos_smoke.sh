#!/bin/sh
# chaos_smoke.sh DIR — replica-failover chaos test of the serving
# cluster.
#
# Generates a dataset, records a single-node loadgen baseline, then
# starts an R=2 fleet (2 ranges x 2 replicas = 4 ipscope-serve
# processes) behind an ipscope-router -replicas 2 and asserts:
#
#   1. the router's /v1/healthz reports per-range rangeStates;
#   2. with one replica of range 0 kill -9'd before the run and one
#      replica of range 1 kill -9'd while loadgen is driving traffic,
#      the run completes with ZERO hard errors (transport failures or
#      5xx) and the same workload hash as the single-node baseline —
#      failover is invisible to clients;
#   3. healthz stays 200 "ok" (not degraded) with the survivors, and
#      reports both ranges "partial";
#   4. restarting the killed replicas at their original addresses
#      returns healthz to all-"ok" — the operator probe actively
#      re-admits replicas out of backoff.
#
# Expects $DIR/ipscope-gen, $DIR/ipscope-serve, $DIR/ipscope-router and
# $DIR/ipscope-loadgen to be prebuilt (the Makefile's chaos-smoke
# target does this).
set -eu

dir=${1:?usage: chaos_smoke.sh DIR}
r0a_addr=127.0.0.1:19491   # range 0, replica 0
r1a_addr=127.0.0.1:19492   # range 1, replica 0
r0b_addr=127.0.0.1:19493   # range 0, replica 1
r1b_addr=127.0.0.1:19494   # range 1, replica 1
router_addr=127.0.0.1:19495
single_addr=127.0.0.1:19496
world_flags="-seed 5 -ases 24 -blocks-per-as 6"
lg_flags="$world_flags -requests 6000 -concurrency 8"

fetch() { curl -fsS --max-time 5 "$1"; }
hash_of() { sed -n 's/.*"workloadHash":"\([^"]*\)".*/\1/p' "$1"; }
field_of() { sed -n "s/.*\"$2\":\([0-9.]*\).*/\1/p" "$1" | head -1; }

"$dir/ipscope-gen" $world_flags -days 56 -dataset "$dir/chaos.obs"

# --- single-node baseline --------------------------------------------
"$dir/ipscope-serve" -dataset "$dir/chaos.obs" -listen "$single_addr" \
    2>"$dir/single.log" &
single_pid=$!
trap 'kill -9 "${single_pid:-}" "${r0a_pid:-}" "${r1a_pid:-}" "${r0b_pid:-}" "${r1b_pid:-}" "${router_pid:-}" 2>/dev/null || true' EXIT INT TERM

if ! "$dir/ipscope-loadgen" -target "http://$single_addr" $lg_flags \
    -json >"$dir/single.json" 2>"$dir/single-lg.log"; then
    echo "chaos-smoke: single-node baseline run failed"
    cat "$dir/single-lg.log" "$dir/single.log" 2>/dev/null || true
    exit 1
fi
kill "$single_pid"
wait "$single_pid" 2>/dev/null || true
single_pid=

# --- R=2 fleet: 2 ranges x 2 replicas --------------------------------
start_replica() { # addr shard replica logname -> pid on stdout
    # stdout must not be the command-substitution pipe, or $(...) would
    # wait for the server to exit.
    "$dir/ipscope-serve" -dataset "$dir/chaos.obs" \
        -shard-index "$2" -shard-count 2 -replica "$3" \
        -listen "$1" >/dev/null 2>"$dir/$4.log" &
    echo $!
}
r0a_pid=$(start_replica "$r0a_addr" 0 0 r0a)
r1a_pid=$(start_replica "$r1a_addr" 1 0 r1a)
r0b_pid=$(start_replica "$r0b_addr" 0 1 r0b)
r1b_pid=$(start_replica "$r1b_addr" 1 1 r1b)

for replica in "$r0a_addr" "$r1a_addr" "$r0b_addr" "$r1b_addr"; do
    i=0
    until fetch "http://$replica/v1/healthz" >/dev/null 2>&1; do
        i=$((i+1))
        [ "$i" -le 100 ] || { echo "chaos-smoke: replica $replica never came up"; cat "$dir"/r[01][ab].log; exit 1; }
        sleep 0.2
    done
done

"$dir/ipscope-router" \
    -shards "http://$r0a_addr,http://$r1a_addr,http://$r0b_addr,http://$r1b_addr" \
    -replicas 2 -listen "$router_addr" 2>"$dir/router.log" &
router_pid=$!
base="http://$router_addr"
i=0
until fetch "$base/v1/healthz" >/dev/null 2>&1; do
    i=$((i+1))
    [ "$i" -le 100 ] || { echo "chaos-smoke: router never came up"; cat "$dir/router.log"; exit 1; }
    sleep 0.2
done

# 1. The replicated fleet's healthz reports per-range rollups.
fetch "$base/v1/healthz" | grep -q '"rangeStates"' \
    || { echo "chaos-smoke: healthz lacks rangeStates"; fetch "$base/v1/healthz"; exit 1; }
echo "chaos-smoke: 2x2 fleet up; healthz reports rangeStates"

# 2. Chaos: kill -9 one replica of range 0 up front, then one replica
# of range 1 while loadgen is mid-run. Different replica positions, so
# both failover directions are exercised.
kill -9 "$r0a_pid"
wait "$r0a_pid" 2>/dev/null || true
r0a_pid=

"$dir/ipscope-loadgen" -target "$base" $lg_flags \
    -json >"$dir/chaos.json" 2>"$dir/chaos-lg.log" &
lg_pid=$!
sleep 0.3
kill -9 "$r1b_pid"
wait "$r1b_pid" 2>/dev/null || true
r1b_pid=

if ! wait "$lg_pid"; then
    echo "chaos-smoke: loadgen failed against the degraded fleet"
    cat "$dir/chaos-lg.log" "$dir/router.log" 2>/dev/null || true
    exit 1
fi

errs=$(field_of "$dir/chaos.json" errors)
[ "$errs" = "0" ] || { echo "chaos-smoke: $errs hard errors with replicas dying mid-run, want 0"; cat "$dir/chaos-lg.log"; exit 1; }
h1=$(hash_of "$dir/single.json"); h2=$(hash_of "$dir/chaos.json")
[ -n "$h1" ] && [ "$h1" = "$h2" ] \
    || { echo "chaos-smoke: workload hash differs ($h1 vs $h2)"; exit 1; }
echo "chaos-smoke: zero hard errors and workload hash $h1 with one replica of each range kill -9'd"

# 3. Survivors keep the fleet healthy: 200 "ok", both ranges partial.
body=$(fetch "$base/v1/healthz") \
    || { echo "chaos-smoke: healthz not 200 with one replica of each range dead"; exit 1; }
echo "$body" | grep -q '"status":"ok"' \
    || { echo "chaos-smoke: healthz status not ok with survivors: $body"; exit 1; }
partials=$(echo "$body" | grep -o '"status":"partial"' | wc -l)
[ "$partials" -eq 2 ] || { echo "chaos-smoke: $partials partial ranges, want 2: $body"; exit 1; }
echo "chaos-smoke: healthz stays ok (not degraded); both ranges report partial"

# 4. Restart the killed replicas at their original addresses; the
# operator healthz probe re-admits them and every range returns to ok.
r0a_pid=$(start_replica "$r0a_addr" 0 0 r0a-revived)
r1b_pid=$(start_replica "$r1b_addr" 1 1 r1b-revived)
i=0
while :; do
    body=$(curl -s --max-time 5 "$base/v1/healthz" || true)
    if echo "$body" | grep -q '"status":"ok"' \
        && ! echo "$body" | grep -q '"status":"partial"' \
        && ! echo "$body" | grep -q '"status":"unreachable"'; then
        break
    fi
    i=$((i+1))
    [ "$i" -le 150 ] || { echo "chaos-smoke: revived replicas never re-admitted: $body"; exit 1; }
    sleep 0.2
done
echo "chaos-smoke: restarted replicas re-admitted; healthz back to all-ok"
