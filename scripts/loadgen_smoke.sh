#!/bin/sh
# loadgen_smoke.sh DIR — deterministic load test of the read path.
#
# Generates a dataset, then drives ipscope-loadgen twice with the same
# seed: against a single ipscope-serve node and against a router+2-shard
# cluster over the same data. Asserts:
#
#   1. the workload is deterministic — both runs (and any rerun) print
#      the same workload hash for the seed;
#   2. zero hard errors (transport failures or 5xx) in either topology
#      across every phase (steady/burst/herd/storm);
#   3. the single-node run sees a warm cache (hit ratio > 50%: the
#      zipfian mix concentrates on a hot set by design).
#
# Latency percentiles are written as a markdown SLO table to
# $DIR/loadgen.md (appended to the CI job summary, warn-only — shared
# runners are too noisy to gate on wall-clock).
#
# Expects $DIR/ipscope-gen, $DIR/ipscope-serve, $DIR/ipscope-router and
# $DIR/ipscope-loadgen to be prebuilt (the Makefile's loadgen-smoke
# target does this).
set -eu

dir=${1:?usage: loadgen_smoke.sh DIR}
serve_addr=127.0.0.1:19481
shard0_addr=127.0.0.1:19482
shard1_addr=127.0.0.1:19483
router_addr=127.0.0.1:19484
world_flags="-seed 5 -ases 24 -blocks-per-as 6"
lg_flags="$world_flags -requests 4000 -concurrency 8 -slo-p99 250ms"

fetch() { curl -fsS --max-time 5 "$1"; }

"$dir/ipscope-gen" $world_flags -days 56 -dataset "$dir/loadgen.obs"

# --- single node ------------------------------------------------------
"$dir/ipscope-serve" -dataset "$dir/loadgen.obs" -listen "$serve_addr" \
    2>"$dir/serve.log" &
serve_pid=$!
trap 'kill "$serve_pid" "${shard0_pid:-}" "${shard1_pid:-}" "${router_pid:-}" 2>/dev/null || true' EXIT INT TERM

if ! "$dir/ipscope-loadgen" -target "http://$serve_addr" $lg_flags \
    -json -md "$dir/single.md" >"$dir/single.json" 2>"$dir/single.log"; then
    echo "loadgen-smoke: single-node run failed"
    cat "$dir/single.log" "$dir/serve.log" 2>/dev/null || true
    exit 1
fi

kill "$serve_pid"
wait "$serve_pid" 2>/dev/null || true

# --- router + 2 shards ------------------------------------------------
"$dir/ipscope-serve" -dataset "$dir/loadgen.obs" -shard-index 0 -shard-count 2 \
    -listen "$shard0_addr" 2>"$dir/shard0.log" &
shard0_pid=$!
"$dir/ipscope-serve" -dataset "$dir/loadgen.obs" -shard-index 1 -shard-count 2 \
    -listen "$shard1_addr" 2>"$dir/shard1.log" &
shard1_pid=$!
for shard in "$shard0_addr" "$shard1_addr"; do
    i=0
    until fetch "http://$shard/v1/healthz" >/dev/null 2>&1; do
        i=$((i+1))
        [ "$i" -le 100 ] || { echo "loadgen-smoke: shard $shard never came up"; cat "$dir"/shard*.log; exit 1; }
        sleep 0.2
    done
done
"$dir/ipscope-router" -shards "http://$shard0_addr,http://$shard1_addr" \
    -listen "$router_addr" 2>"$dir/router.log" &
router_pid=$!

if ! "$dir/ipscope-loadgen" -target "http://$router_addr" $lg_flags \
    -json -md "$dir/cluster.md" >"$dir/cluster.json" 2>"$dir/cluster.log"; then
    echo "loadgen-smoke: cluster run failed"
    cat "$dir/cluster.log" "$dir/router.log" 2>/dev/null || true
    exit 1
fi

# --- assertions -------------------------------------------------------
hash_of() { sed -n 's/.*"workloadHash":"\([^"]*\)".*/\1/p' "$1"; }
field_of() { sed -n "s/.*\"$2\":\([0-9.]*\).*/\1/p" "$1" | head -1; }

h1=$(hash_of "$dir/single.json"); h2=$(hash_of "$dir/cluster.json")
[ -n "$h1" ] && [ "$h1" = "$h2" ] \
    || { echo "loadgen-smoke: workload hash differs across runs ($h1 vs $h2) — generator not deterministic"; exit 1; }
echo "loadgen-smoke: workload deterministic (hash $h1) across single-node and cluster runs"

for run in single cluster; do
    errs=$(field_of "$dir/$run.json" errors)
    [ "$errs" = "0" ] || { echo "loadgen-smoke: $run run reported $errs hard errors"; cat "$dir/$run.log"; exit 1; }
done
echo "loadgen-smoke: zero hard errors in both topologies"

hit=$(field_of "$dir/single.json" hitRate)
case "$hit" in
    0.[56789]*|1|1.*) echo "loadgen-smoke: single-node cache hit rate $hit" ;;
    *) echo "loadgen-smoke: single-node hit rate $hit, want > 0.5"; exit 1 ;;
esac

# The combined SLO table (warn-only; consumed by the CI job summary).
{
    echo "## loadgen SLO (warn-only)"
    cat "$dir/single.md"
    cat "$dir/cluster.md"
} >"$dir/loadgen.md"
echo "loadgen-smoke: SLO table written to $dir/loadgen.md"
