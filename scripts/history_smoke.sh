#!/bin/sh
# history_smoke.sh DIR — end-to-end smoke of the historical-epoch layer.
#
# Starts ipscope-serve in -obs-listen live mode with -retain-epochs,
# streams a paced simulation into it with ipscope-gen -connect, and
# asserts:
#
#   1. while the stream publishes new epochs, an as-of query
#      (?epoch=N) answers byte-identically to the response captured
#      when epoch N was current — time travel is exact;
#   2. /v1/delta between two retained epochs answers 200 with a
#      non-empty diff across a publish swap;
#   3. once the ring has evicted an epoch, asking for it 404s with the
#      documented not-retained body naming the retained range, and
#      /v1/healthz agrees with that range.
#
# Expects $DIR/ipscope-gen and $DIR/ipscope-serve to be prebuilt (the
# Makefile's history-smoke target does this).
set -eu

dir=${1:?usage: history_smoke.sh DIR}
obs_addr=127.0.0.1:19471
http_addr=127.0.0.1:19472
base="http://$http_addr"
gen_flags="-seed 5 -ases 24 -blocks-per-as 6 -days 56"
retain=3

fetch() { curl -fsS --max-time 5 "$1"; }
epoch_of() { fetch "$base/v1/healthz" | sed -n 's/.*"epoch":\([0-9]*\).*/\1/p'; }
oldest_of() { fetch "$base/v1/healthz" | sed -n 's/.*"oldestEpoch":\([0-9]*\).*/\1/p'; }

"$dir/ipscope-serve" -obs-listen "$obs_addr" -listen "$http_addr" -publish-every 7 \
    -retain-epochs "$retain" 2>"$dir/serve.log" &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT INT TERM

i=0
until fetch "$base/v1/healthz" >/dev/null 2>&1; do
    i=$((i+1))
    [ "$i" -le 50 ] || { echo "history-smoke: server never came up"; cat "$dir/serve.log"; exit 1; }
    sleep 0.2
done

"$dir/ipscope-gen" $gen_flags -connect "$obs_addr" -day-delay 15ms \
    2>"$dir/gen.log" &
gen_pid=$!

# Wait for the first epoch, then capture /v1/summary while it is the
# live answer.
i=0
while :; do
    e=$(epoch_of || true)
    [ -n "$e" ] && [ "$e" -ge 1 ] && break
    i=$((i+1))
    [ "$i" -le 200 ] || { echo "history-smoke: first epoch never published"; exit 1; }
    sleep 0.1
done
captured_epoch=$e
fetch "$base/v1/summary" >"$dir/summary-live.json"
# The live capture may have raced a publish; its epoch field names the
# epoch it actually answered for.
captured_epoch=$(sed -n 's/.*"epoch":\([0-9]*\).*/\1/p' "$dir/summary-live.json")

# Wait for at least one more publish, then time-travel back: the as-of
# body must byte-equal the live capture.
i=0
while :; do
    e=$(epoch_of || true)
    if [ -n "$e" ] && [ "$e" -gt "$captured_epoch" ]; then
        break
    fi
    i=$((i+1))
    [ "$i" -le 200 ] || { echo "history-smoke: epoch never advanced past $captured_epoch"; exit 1; }
    sleep 0.1
done
fetch "$base/v1/summary?epoch=$captured_epoch" >"$dir/summary-asof.json"
if ! cmp -s "$dir/summary-live.json" "$dir/summary-asof.json"; then
    echo "history-smoke: as-of summary at epoch $captured_epoch differs from the live capture"
    diff "$dir/summary-live.json" "$dir/summary-asof.json" || true
    exit 1
fi
echo "history-smoke: ?epoch=$captured_epoch byte-equals the response captured live"

# Delta across the swap: from the captured epoch to the current one.
to=$(epoch_of)
fetch "$base/v1/delta?from=$captured_epoch&to=$to" >"$dir/delta.json"
grep -q '"fromEpoch":'"$captured_epoch" "$dir/delta.json" || {
    echo "history-smoke: delta body lacks fromEpoch $captured_epoch"; cat "$dir/delta.json"; exit 1; }
grep -q '"changedBlocks":' "$dir/delta.json" || {
    echo "history-smoke: delta body has no changedBlocks"; cat "$dir/delta.json"; exit 1; }
echo "history-smoke: /v1/delta?from=$captured_epoch&to=$to answered a structured diff"

# Movement series covers the retained window.
fetch "$base/v1/movement" >"$dir/movement.json"
grep -q '"series":' "$dir/movement.json" || {
    echo "history-smoke: movement body has no series"; cat "$dir/movement.json"; exit 1; }

wait "$gen_pid"

# Let the trailing publishes land, then check eviction: with N epochs
# retained and more than N published, epoch 1 must be gone.
i=0
while :; do
    oldest=$(oldest_of || true)
    if [ -n "$oldest" ] && [ "$oldest" -gt 1 ]; then
        break
    fi
    i=$((i+1))
    [ "$i" -le 50 ] || { echo "history-smoke: epoch 1 never left the ring (oldest '${oldest:-none}')"; exit 1; }
    sleep 0.2
done
newest=$(epoch_of)
status=$(curl -s --max-time 5 -o "$dir/evicted.json" -w '%{http_code}' "$base/v1/summary?epoch=1")
[ "$status" = "404" ] || {
    echo "history-smoke: evicted epoch answered status $status, want 404"; cat "$dir/evicted.json"; exit 1; }
want="{\"error\":\"epoch 1 not retained (retained epochs $oldest..$newest)\",\"oldestEpoch\":$oldest,\"newestEpoch\":$newest}"
got=$(cat "$dir/evicted.json")
[ "$got" = "$want" ] || {
    echo "history-smoke: evicted-epoch body mismatch"
    echo " got:  $got"
    echo " want: $want"
    exit 1
}
echo "history-smoke: evicted epoch 1 404s with the documented body; retained $oldest..$newest"
