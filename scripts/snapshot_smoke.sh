#!/bin/sh
# snapshot_smoke.sh DIR — end-to-end smoke of persistent index
# snapshots.
#
# Phase 1 (batch): generate a dataset, build once with -snapshot-save,
# then assert the saved file is self-describing and exact:
#
#   1. ipscope-snapshot -verify accepts it (decode∘encode fixed point);
#   2. ipscope-snapshot -summary and a -snapshot-load -dump-summary are
#      both byte-identical to the building process's own summary;
#   3. -snapshot-load -selfcheck passes: every endpoint of a server
#      cold-started from the snapshot verifies against its index.
#
# Phase 2 (live restart): two block-partitioned shards follow a paced
# dataset file, checkpointing every epoch into -snapshot-dir. Shard 1 is
# kill -9'd mid-stream and restarted from its checkpoint directory; it
# must log "resumed from snapshot" (no full replay), catch back up, and
# after end of stream the routed cluster summary must byte-equal
# (modulo the epoch field) a batch -dump-summary over the same dataset.
# Retention must hold: at most -snapshot-keep checkpoints per shard.
#
# Expects $DIR/ipscope-gen, $DIR/ipscope-serve, $DIR/ipscope-router and
# $DIR/ipscope-snapshot to be prebuilt (the Makefile's snapshot-smoke
# target does this).
set -eu

dir=${1:?usage: snapshot_smoke.sh DIR}
shard0_addr=127.0.0.1:19481
shard1_addr=127.0.0.1:19482
router_addr=127.0.0.1:19483
base="http://$router_addr"
gen_flags="-seed 5 -ases 24 -blocks-per-as 6 -days 56"

fetch() { curl -fsS --max-time 5 "$1"; }
epoch_of() { fetch "http://$1/v1/healthz" | sed -n 's/.*"epoch":\([0-9]*\).*/\1/p'; }
wait_http() { # addr name logfile
    i=0
    until fetch "http://$1/v1/healthz" >/dev/null 2>&1; do
        i=$((i+1))
        [ "$i" -le 100 ] || { echo "snapshot-smoke: $2 never came up"; cat "$3"; exit 1; }
        sleep 0.2
    done
}

# --- Phase 1: batch save → verify → load → serve ---------------------

"$dir/ipscope-gen" $gen_flags -dataset "$dir/snap.obs"
"$dir/ipscope-serve" -dataset "$dir/snap.obs" -snapshot-save "$dir/snap.ipsnap" \
    -dump-summary >"$dir/build-summary.json" 2>/dev/null

"$dir/ipscope-snapshot" -verify "$dir/snap.ipsnap"

"$dir/ipscope-snapshot" -summary "$dir/snap.ipsnap" >"$dir/tool-summary.json"
cmp "$dir/tool-summary.json" "$dir/build-summary.json" \
    || { echo "snapshot-smoke: ipscope-snapshot -summary differs from the building process"; exit 1; }

"$dir/ipscope-serve" -snapshot-load "$dir/snap.ipsnap" \
    -dump-summary >"$dir/load-summary.json" 2>/dev/null
cmp "$dir/load-summary.json" "$dir/build-summary.json" \
    || { echo "snapshot-smoke: -snapshot-load summary differs from the build that saved it"; exit 1; }

"$dir/ipscope-serve" -snapshot-load "$dir/snap.ipsnap" -selfcheck 2>"$dir/selfcheck.log" \
    || { echo "snapshot-smoke: selfcheck over the loaded snapshot failed"; cat "$dir/selfcheck.log"; exit 1; }
echo "snapshot-smoke: batch save/load round-trip byte-equal; selfcheck over loaded snapshot passed"

# --- Phase 2: live shards, kill -9, restart from -snapshot-dir -------

"$dir/ipscope-gen" $gen_flags -dataset "$dir/live.obs" -day-delay 60ms 2>"$dir/gen.log" &
gen_pid=$!

start_shard() { # index addr
    "$dir/ipscope-serve" -follow "$dir/live.obs" -follow-poll 20ms \
        -shard-index "$1" -shard-count 2 -snapshot-dir "$dir/snapdir$1" \
        -listen "$2" 2>>"$dir/shard$1.log" &
}
start_shard 0 "$shard0_addr"; shard0_pid=$!
start_shard 1 "$shard1_addr"; shard1_pid=$!
trap 'kill "$shard0_pid" "$shard1_pid" "${router_pid:-}" "$gen_pid" 2>/dev/null || true' EXIT INT TERM

wait_http "$shard0_addr" "shard 0" "$dir/shard0.log"
wait_http "$shard1_addr" "shard 1" "$dir/shard1.log"

"$dir/ipscope-router" -shards "http://$shard0_addr,http://$shard1_addr" \
    -listen "$router_addr" 2>"$dir/router.log" &
router_pid=$!
wait_http "$router_addr" "router" "$dir/router.log"

# Let shard 1 publish (and checkpoint) a few epochs, then kill it hard
# mid-stream — no graceful shutdown, the checkpoint on disk is all the
# restart gets.
i=0
while :; do
    e=$(epoch_of "$shard1_addr" || true)
    if [ -n "$e" ] && [ "$e" -ge 3 ]; then break; fi
    i=$((i+1))
    [ "$i" -le 200 ] || { echo "snapshot-smoke: shard 1 never reached epoch 3"; cat "$dir/shard1.log"; exit 1; }
    sleep 0.1
done
kill -9 "$shard1_pid" 2>/dev/null
wait "$shard1_pid" 2>/dev/null || true
echo "snapshot-smoke: shard 1 killed at epoch $e mid-stream"

start_shard 1 "$shard1_addr"; shard1_pid=$!
wait_http "$shard1_addr" "restarted shard 1" "$dir/shard1.log"
grep -q "resumed from snapshot" "$dir/shard1.log" \
    || { echo "snapshot-smoke: restarted shard 1 did not resume from its checkpoint"; cat "$dir/shard1.log"; exit 1; }
echo "snapshot-smoke: shard 1 resumed: $(grep 'resumed from snapshot' "$dir/shard1.log" | tail -1)"

wait "$gen_pid"

# After end of stream the restarted cluster must converge on the batch
# summary over the same dataset — the restart lost nothing.
"$dir/ipscope-serve" -dataset "$dir/live.obs" -dump-summary >"$dir/batch-summary.json" 2>/dev/null
i=0
while :; do
    fetch "$base/v1/summary" | sed 's/"epoch":[0-9]*,//' >"$dir/routed-summary.json" || true
    if cmp -s "$dir/routed-summary.json" "$dir/batch-summary.json"; then
        break
    fi
    i=$((i+1))
    [ "$i" -le 50 ] || {
        echo "snapshot-smoke: routed summary never converged on the batch summary after restart"
        diff "$dir/routed-summary.json" "$dir/batch-summary.json" || true
        exit 1
    }
    sleep 0.2
done
echo "snapshot-smoke: routed /v1/summary byte-equals batch dump-summary after kill -9 restart"

# Retention: each shard's checkpoint directory is bounded by the default
# -snapshot-keep (3), and the newest checkpoint is itself verifiable.
for s in 0 1; do
    n=$(ls "$dir/snapdir$s"/snap-*.ipsnap | wc -l)
    [ "$n" -ge 1 ] && [ "$n" -le 3 ] \
        || { echo "snapshot-smoke: shard $s retains $n checkpoints, want 1..3"; exit 1; }
done
newest=$(ls "$dir/snapdir0"/snap-*.ipsnap | sort | tail -1)
"$dir/ipscope-snapshot" -verify "$newest"
echo "snapshot-smoke: checkpoint retention bounded; newest checkpoint verifies"
