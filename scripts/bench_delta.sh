#!/bin/sh
# bench_delta.sh BASELINE.json CURRENT.json — print a markdown table of
# per-benchmark ns/op deltas between two `go test -json -bench` event
# streams (the BENCH_ci.json format bench-smoke writes).
#
# Warn-only by design: the table lands in the CI job summary so perf
# movement is visible per commit, but nothing gates on it yet (one
# -benchtime=1x iteration is far too noisy to fail a build on).
set -eu

old=${1:?usage: bench_delta.sh BASELINE.json CURRENT.json}
new=${2:?usage: bench_delta.sh BASELINE.json CURRENT.json}

# Pull "BenchmarkName-P <iters> <ns> ns/op ..." result lines out of the
# test2json stream and emit "name ns" pairs. test2json may split one
# result line across several output events, so the fragments are
# reassembled (strip event framing, join, then split on the escaped
# newlines) before parsing.
extract() {
    sed -n 's/.*"Output":"\(.*\)".*/\1/p' "$1" \
        | tr -d '\n' \
        | sed 's/\\n/\n/g; s/\\t/	/g' \
        | awk '/^Benchmark/ && /ns\/op/ { print $1, $3 }'
}

tmp_old=$(mktemp)
tmp_new=$(mktemp)
trap 'rm -f "$tmp_old" "$tmp_new"' EXIT
extract "$old" >"$tmp_old"
extract "$new" >"$tmp_new"

echo "### Benchmark delta vs committed baseline (1 iteration, warn-only)"
echo
echo "| benchmark | baseline ns/op | current ns/op | delta |"
echo "|---|---:|---:|---:|"
# FILENAME (not NR == FNR) decides which file a record came from: the
# classic NR == FNR idiom misfiles every record of the second file when
# the first extracts empty (fresh baseline, failed bench run), silently
# dropping benchmarks that exist in only one file.
awk '
    FILENAME == ARGV[1] { old[$1] = $2; next }
    !($1 in new) { new[$1] = $2; names[++n] = $1 }
    END {
        added = removed = ""
        for (i = 1; i <= n; i++) {
            name = names[i]
            if (name in old && old[name] + 0 > 0) {
                d = (new[name] - old[name]) * 100 / old[name]
                printf "| %s | %s | %s | %+.1f%% |\n", name, old[name], new[name], d
            } else {
                printf "| %s | — | %s | new |\n", name, new[name]
                added = added " " name
            }
        }
        for (name in old) {
            if (!(name in new)) {
                printf "| %s | %s | — | removed |\n", name, old[name]
                removed = removed " " name
            }
        }
        print ""
        if (added != "")
            print "Added benchmarks:" added
        if (removed != "")
            print "Removed benchmarks:" removed
        if (added == "" && removed == "")
            print "No benchmarks added or removed."
    }
' "$tmp_old" "$tmp_new"
