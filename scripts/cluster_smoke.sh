#!/bin/sh
# cluster_smoke.sh DIR — end-to-end smoke of the sharded serving
# cluster.
#
# Generates a dataset, starts two block-partitioned ipscope-serve
# shards plus an ipscope-router in front of them, and asserts:
#
#   1. the routed /v1/summary is byte-identical (modulo the epoch
#      field) to a single-node `ipscope-serve -dataset ... -dump-summary`
#      over the same dataset — the cross-shard merge is exact;
#   2. point lookups owned by each shard answer 200 through the router;
#   3. after killing one shard, its blocks answer 503 while the other
#      shard's blocks keep answering 200, and the router's /v1/healthz
#      degrades to status 503.
#
# Expects $DIR/ipscope-gen, $DIR/ipscope-serve and $DIR/ipscope-router
# to be prebuilt (the Makefile's cluster-smoke target does this).
set -eu

dir=${1:?usage: cluster_smoke.sh DIR}
shard0_addr=127.0.0.1:19471
shard1_addr=127.0.0.1:19472
router_addr=127.0.0.1:19473
base="http://$router_addr"
gen_flags="-seed 5 -ases 24 -blocks-per-as 6 -days 56"

fetch() { curl -fsS --max-time 5 "$1"; }
status_of() { curl -s -o /dev/null -w '%{http_code}' --max-time 5 "$1"; }

"$dir/ipscope-gen" $gen_flags -dataset "$dir/cluster.obs"

"$dir/ipscope-serve" -dataset "$dir/cluster.obs" -shard-index 0 -shard-count 2 \
    -listen "$shard0_addr" 2>"$dir/shard0.log" &
shard0_pid=$!
"$dir/ipscope-serve" -dataset "$dir/cluster.obs" -shard-index 1 -shard-count 2 \
    -listen "$shard1_addr" 2>"$dir/shard1.log" &
shard1_pid=$!
trap 'kill "$shard0_pid" "$shard1_pid" "${router_pid:-}" 2>/dev/null || true' EXIT INT TERM

for shard in "$shard0_addr" "$shard1_addr"; do
    i=0
    until fetch "http://$shard/v1/healthz" >/dev/null 2>&1; do
        i=$((i+1))
        [ "$i" -le 100 ] || { echo "cluster-smoke: shard $shard never came up"; cat "$dir"/shard*.log; exit 1; }
        sleep 0.2
    done
done

"$dir/ipscope-router" -shards "http://$shard0_addr,http://$shard1_addr" \
    -listen "$router_addr" 2>"$dir/router.log" &
router_pid=$!
i=0
until fetch "$base/v1/healthz" >/dev/null 2>&1; do
    i=$((i+1))
    [ "$i" -le 100 ] || { echo "cluster-smoke: router never came up"; cat "$dir/router.log"; exit 1; }
    sleep 0.2
done

# 0. Healthz reports per-range rollups (R=1: one range per shard).
fetch "$base/v1/healthz" | grep -q '"rangeStates"' \
    || { echo "cluster-smoke: healthz lacks rangeStates"; fetch "$base/v1/healthz"; exit 1; }
echo "cluster-smoke: healthz reports per-range rangeStates"

# 1. Routed summary must byte-equal the single-node batch summary.
"$dir/ipscope-serve" -dataset "$dir/cluster.obs" -dump-summary >"$dir/batch-summary.json" 2>/dev/null
fetch "$base/v1/summary" | sed 's/"epoch":[0-9]*,//' >"$dir/routed-summary.json"
if ! cmp -s "$dir/routed-summary.json" "$dir/batch-summary.json"; then
    echo "cluster-smoke: routed /v1/summary differs from single-node dump-summary"
    diff "$dir/routed-summary.json" "$dir/batch-summary.json" || true
    exit 1
fi
echo "cluster-smoke: routed /v1/summary byte-equals single-node summary"

# 2. A block owned by each shard answers through the router.
b0=$(fetch "http://$shard0_addr/v1/cluster/info" | sed -n 's/.*"firstActive":"\([^"]*\)".*/\1/p')
b1=$(fetch "http://$shard1_addr/v1/cluster/info" | sed -n 's/.*"firstActive":"\([^"]*\)".*/\1/p')
[ -n "$b0" ] && [ -n "$b1" ] || { echo "cluster-smoke: a shard reports no active blocks"; exit 1; }
fetch "$base/v1/block/$b0" >/dev/null
fetch "$base/v1/block/$b1" >/dev/null
echo "cluster-smoke: routed lookups for $b0 (shard 0) and $b1 (shard 1) answered 200"

# 3. Degraded mode: kill shard 1; its blocks 503, shard 0 keeps serving.
kill "$shard1_pid"
wait "$shard1_pid" 2>/dev/null || true

code=$(status_of "$base/v1/block/$b1")
[ "$code" = "503" ] || { echo "cluster-smoke: dead shard's block answered $code, want 503"; exit 1; }
code=$(status_of "$base/v1/block/$b0")
[ "$code" = "200" ] || { echo "cluster-smoke: live shard's block answered $code, want 200"; exit 1; }
code=$(status_of "$base/v1/healthz")
[ "$code" = "503" ] || { echo "cluster-smoke: degraded healthz answered $code, want 503"; exit 1; }
curl -s --max-time 5 "$base/v1/healthz" | grep -q '"status":"degraded"' \
    || { echo "cluster-smoke: healthz body does not report degraded"; exit 1; }

echo "cluster-smoke: one-shard-down degrades only its blocks; healthz reports degraded"
