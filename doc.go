// Package ipscope reproduces "Beyond Counting: New Perspectives on the
// Active IPv4 Address Space" (Richter et al., ACM IMC 2016) as a Go
// library: a synthetic-Internet substrate standing in for the paper's
// proprietary CDN vantage point, the paper's activity metrics and
// analyses, and a benchmark harness regenerating every table and
// figure of its evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory,
// OPERATIONS.md for the serving-fleet runbook, API.md for the /v1/*
// wire reference and EXPERIMENTS.md for paper-vs-measured
// comparisons. The root package
// contains no code of its own; the library lives under internal/ and
// the benchmark harness in bench_test.go.
package ipscope
