package ipscope

// bench_test.go regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index) as benchmarks, plus
// the ablations DESIGN.md calls out. Key shape numbers are attached to
// each benchmark via b.ReportMetric so a -bench run records the series
// the paper reports.

import (
	"bytes"
	"container/list"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"ipscope/internal/analysis"
	"ipscope/internal/bgp"
	"ipscope/internal/cdnlog"
	"ipscope/internal/cluster"
	"ipscope/internal/core"
	"ipscope/internal/history"
	"ipscope/internal/ipv4"
	"ipscope/internal/obs"
	"ipscope/internal/query"
	"ipscope/internal/rpc"
	"ipscope/internal/scan"
	"ipscope/internal/serve"
	"ipscope/internal/serve/wire"
	"ipscope/internal/sim"
	"ipscope/internal/synthnet"
	"ipscope/internal/useragent"
)

var (
	benchOnce sync.Once
	benchCtx  *analysis.Context
)

// benchContext builds the shared world/simulation used by all
// experiment benchmarks (outside the timed sections).
func benchContext(b *testing.B) *analysis.Context {
	b.Helper()
	benchOnce.Do(func() {
		wcfg := synthnet.Config{Seed: 17, NumASes: 150, MeanBlocksPerAS: 10}
		scfg := sim.DefaultConfig()
		scfg.Days = 112
		scfg.DailyStart = 28
		scfg.DailyLen = 84
		benchCtx = analysis.NewContext(wcfg, scfg)
	})
	return benchCtx
}

func BenchmarkFigure1Growth(b *testing.B) {
	var stag float64
	for i := 0; i < b.N; i++ {
		f := analysis.Figure1(uint64(i + 1))
		stag = f.StagnationRatio
	}
	b.ReportMetric(stag, "post/pre-growth")
}

func BenchmarkTable1Datasets(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var tot int
	for i := 0; i < b.N; i++ {
		t := analysis.Table1(ctx)
		tot = t.Weekly.TotalIPs
	}
	b.ReportMetric(float64(tot), "yearIPs")
}

func BenchmarkFigure2Visibility(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var frac float64
	for i := 0; i < b.N; i++ {
		f := analysis.Figure2(ctx)
		frac = f.CDNOnlyIPFraction
	}
	b.ReportMetric(100*frac, "cdnOnly%")
}

func BenchmarkFigure2Classification(b *testing.B) {
	ctx := benchContext(b)
	cdn := ctx.CDNMonth()
	icmpOnly := ctx.Campaign.ICMP.Diff(cdn)
	b.ResetTimer()
	var servers int
	for i := 0; i < b.N; i++ {
		cl := core.ClassifyICMPOnly(icmpOnly, ctx.Campaign.Servers, ctx.Campaign.Routers)
		servers = cl[core.ClassServer]
	}
	b.ReportMetric(float64(servers), "servers")
}

func BenchmarkFigure3RIR(b *testing.B) {
	ctx := benchContext(b)
	cdn := ctx.CDNMonth()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.GroupByRIR(cdn, ctx.Campaign.ICMP, ctx.World.Registry)
	}
}

func BenchmarkFigure3Countries(b *testing.B) {
	ctx := benchContext(b)
	cdn := ctx.CDNMonth()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.GroupByCountry(cdn, ctx.Campaign.ICMP, ctx.World.Registry, 11)
	}
}

func BenchmarkFigure4Daily(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var mean float64
	for i := 0; i < b.N; i++ {
		pts := core.ChurnSeries(ctx.Obs.Daily)
		var s float64
		for _, p := range pts {
			s += p.UpPct
		}
		mean = s / float64(len(pts))
	}
	b.ReportMetric(mean, "dailyUp%")
}

func BenchmarkFigure4Windows(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var med float64
	for i := 0; i < b.N; i++ {
		wcs := core.ChurnByWindow(ctx.Obs.Daily, []int{1, 2, 4, 7, 14, 28})
		med = wcs[len(wcs)-1].Up.Median
	}
	b.ReportMetric(med, "28dUp%")
}

func BenchmarkFigure4Yearly(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var appear int
	for i := 0; i < b.N; i++ {
		ads := core.VersusBaseline(ctx.Obs.Weekly)
		appear = ads[len(ads)-1].Appear
	}
	b.ReportMetric(float64(appear), "yearAppear")
}

func BenchmarkFigure5ASChurn(b *testing.B) {
	ctx := benchContext(b)
	weekly := core.Windows(ctx.Obs.Daily, 7)
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		per := core.PerASChurn(weekly, ctx.ASOf, 100)
		n = len(per)
	}
	b.ReportMetric(float64(n), "ASes")
}

func BenchmarkFigure5EventSize(b *testing.B) {
	ctx := benchContext(b)
	weekly := core.Windows(ctx.Obs.Daily, 7)
	b.ResetTimer()
	var single float64
	for i := 0; i < b.N; i++ {
		d := core.EventSizeDistribution(weekly[0], weekly[1], 8)
		single = d[4]
	}
	b.ReportMetric(100*single, "/32share%")
}

func BenchmarkFigure5BGP(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var up float64
	for i := 0; i < b.N; i++ {
		c := core.CorrelateBGP(ctx.Obs.Daily, 28, ctx.Obs.Routing, ctx.Obs.Meta.Run.DailyStart)
		up = c.UpPct
	}
	b.ReportMetric(up, "upBGP%")
}

func BenchmarkTable2LongTerm(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var full float64
	for i := 0; i < b.N; i++ {
		t := analysis.Table2(ctx)
		full = t.Result.AppearFull24Pct
	}
	b.ReportMetric(full, "full24%")
}

func BenchmarkFigure6Patterns(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = len(analysis.Figure6(ctx).Examples)
	}
	b.ReportMetric(float64(n), "examples")
}

func BenchmarkFigure7Change(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.Figure7(ctx, 2)
	}
}

func BenchmarkFigure8Change(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var frac float64
	for i := 0; i < b.N; i++ {
		cs := core.DetectChange(ctx.Obs.Daily, 28, 0.25)
		frac = cs.MajorFraction()
	}
	b.ReportMetric(100*frac, "major%")
}

func BenchmarkFigure8FD(b *testing.B) {
	ctx := benchContext(b)
	blocks := core.ActiveBlocks(ctx.Obs.Daily)
	b.ResetTimer()
	var high int
	for i := 0; i < b.N; i++ {
		high = 0
		for _, blk := range blocks {
			if core.FillingDegree(ctx.Obs.Daily, blk) > 250 {
				high++
			}
		}
	}
	b.ReportMetric(float64(high), "FD>250")
}

func BenchmarkFigure8STU(b *testing.B) {
	ctx := benchContext(b)
	blocks := core.ActiveBlocks(ctx.Obs.Daily)
	b.ResetTimer()
	var full int
	for i := 0; i < b.N; i++ {
		full = 0
		for _, blk := range blocks {
			if core.STU(ctx.Obs.Daily, blk) >= 0.995 {
				full++
			}
		}
	}
	b.ReportMetric(float64(full), "fullSTU")
}

func BenchmarkFigure9Hits(b *testing.B) {
	ctx := benchContext(b)
	iter := ctx.TrafficIter()
	days := len(ctx.Obs.Daily)
	b.ResetTimer()
	var med float64
	for i := 0; i < b.N; i++ {
		tb := core.BinByDaysActive(days, iter)
		med = tb.DailyHitPercentiles[days-1][2]
	}
	b.ReportMetric(med, "everydayMedHits")
}

func BenchmarkFigure9Cumulative(b *testing.B) {
	ctx := benchContext(b)
	tb := core.BinByDaysActive(len(ctx.Obs.Daily), ctx.TrafficIter())
	b.ResetTimer()
	var share float64
	for i := 0; i < b.N; i++ {
		_, traffic := tb.Cumulative()
		share = 1 - traffic[len(traffic)-2]
	}
	b.ReportMetric(100*share, "lastBinTraffic%")
}

func BenchmarkFigure9TopShare(b *testing.B) {
	ctx := benchContext(b)
	// Reconstruct per-address totals for the top-share computation.
	var hits []float64
	for _, bt := range ctx.Obs.Traffic {
		for h := 0; h < 256; h++ {
			if bt.Hits[h] > 0 {
				hits = append(hits, bt.Hits[h])
			}
		}
	}
	b.ResetTimer()
	var share float64
	for i := 0; i < b.N; i++ {
		share = core.TopShare(hits, 0.10)
	}
	b.ReportMetric(100*share, "top10%share")
}

func BenchmarkFigure10UADiversity(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var gw int
	for i := 0; i < b.N; i++ {
		f := analysis.Figure10(ctx)
		gw = f.Regions.Gateways
	}
	b.ReportMetric(float64(gw), "gateways")
}

func BenchmarkFigure11Demographics(b *testing.B) {
	ctx := benchContext(b)
	features := ctx.BlockFeatures()
	b.ResetTimer()
	var cells int
	for i := 0; i < b.N; i++ {
		d := core.BuildDemographics(features)
		cells = len(d.Counts)
	}
	b.ReportMetric(float64(cells), "cells")
}

func BenchmarkFigure12RIR(b *testing.B) {
	ctx := benchContext(b)
	features := ctx.BlockFeatures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.BuildRIRDemographics(features, ctx.World.Registry)
	}
}

func BenchmarkRecapture(b *testing.B) {
	ctx := benchContext(b)
	cdn := ctx.CDNMonth()
	b.ResetTimer()
	var est float64
	for i := 0; i < b.N; i++ {
		e, err := core.RecaptureSets(cdn, ctx.Campaign.ICMP)
		if err != nil {
			b.Fatal(err)
		}
		est = e.Chapman
	}
	b.ReportMetric(est, "chapman")
}

// --- Substrate and ablation benchmarks -------------------------------

// BenchmarkSimulationDay measures the simulator's per-day cost.
func BenchmarkSimulationDay(b *testing.B) {
	w := synthnet.Generate(synthnet.Config{Seed: 2, NumASes: 60, MeanBlocksPerAS: 8})
	cfg := sim.TinyConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(w, cfg)
	}
	b.ReportMetric(float64(cfg.Days), "days/op")
}

// benchWorkerCounts returns the worker counts the parallel-vs-
// sequential sweeps compare: 1 plus GOMAXPROCS when they differ (on a
// single-CPU machine the second case would just repeat the first).
func benchWorkerCounts() []int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return []int{1, n}
	}
	return []int{1}
}

// BenchmarkSimFullSweep runs the whole-space observation sweep at one
// worker (the sequential reference) and at GOMAXPROCS workers. The two
// produce identical results; the ratio of their ns/op is the engine's
// parallel speedup (expected >= 2x at GOMAXPROCS >= 4).
func BenchmarkSimFullSweep(b *testing.B) {
	w := synthnet.Generate(synthnet.Config{Seed: 9, NumASes: 120, MeanBlocksPerAS: 12})
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := sim.TinyConfig()
			cfg.Workers = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.Run(w, cfg)
			}
			b.ReportMetric(float64(len(w.Blocks)), "blocks/op")
		})
	}
}

// BenchmarkAggregatorSharded measures ingest throughput with all CPUs
// hammering the block-sharded Aggregator concurrently (the contention
// profile of many edge servers reporting at once).
func BenchmarkAggregatorSharded(b *testing.B) {
	agg := cdnlog.NewAggregator(1)
	var seq uint64
	b.RunParallel(func(pb *testing.PB) {
		base := uint32(atomic.AddUint64(&seq, 1)) << 16
		i := uint32(0)
		for pb.Next() {
			agg.Add(cdnlog.Record{Addr: ipv4.Addr(base + i%(1<<16)), Day: 0, Hits: 1})
			i++
		}
	})
	b.ReportMetric(float64(agg.UniqueAddrs()), "uniqueAddrs")
}

// BenchmarkUnionAll measures the batched set union over a window of
// daily snapshots at one worker vs GOMAXPROCS workers.
func BenchmarkUnionAll(b *testing.B) {
	ctx := benchContext(b)
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var n int
			for i := 0; i < b.N; i++ {
				n = ipv4.UnionAll(ctx.Obs.Daily, workers).Len()
			}
			b.ReportMetric(float64(n), "addrs")
		})
	}
}

// BenchmarkAblationLPM compares the routing-trie against the linear
// reference (the LPM ablation from DESIGN.md).
func BenchmarkAblationLPM(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	var routes []bgp.Route
	trie := bgp.NewTable()
	for i := 0; i < 5000; i++ {
		p, _ := ipv4.NewPrefix(ipv4.Addr(rng.Uint32()), 8+rng.Intn(17))
		r := bgp.Route{Prefix: p, Origin: bgp.ASN(i + 1)}
		routes = append(routes, r)
		trie.Insert(r)
	}
	lin := bgp.NewLinearTable(routes)
	probes := make([]ipv4.Addr, 1024)
	for i := range probes {
		probes[i] = ipv4.Addr(rng.Uint32())
	}
	b.Run("trie", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			trie.Lookup(probes[i%len(probes)])
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lin.Lookup(probes[i%len(probes)])
		}
	})
}

// BenchmarkAblationSet compares the bitmap-backed address set against a
// plain Go map at churn-analysis access patterns.
func BenchmarkAblationSet(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	addrs := make([]ipv4.Addr, 100000)
	for i := range addrs {
		addrs[i] = ipv4.Addr(0x0a000000 + rng.Uint32()%(1<<16))
	}
	b.Run("bitmap-set", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s1 := ipv4.NewSet()
			s2 := ipv4.NewSet()
			for j, a := range addrs {
				if j%2 == 0 {
					s1.Add(a)
				} else {
					s2.Add(a)
				}
			}
			_ = s1.DiffCount(s2)
		}
	})
	b.Run("go-map", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m1 := make(map[ipv4.Addr]bool)
			m2 := make(map[ipv4.Addr]bool)
			for j, a := range addrs {
				if j%2 == 0 {
					m1[a] = true
				} else {
					m2[a] = true
				}
			}
			n := 0
			for a := range m1 {
				if !m2[a] {
					n++
				}
			}
			_ = n
		}
	})
}

// BenchmarkAblationHLL sweeps sketch precision: accuracy vs memory.
func BenchmarkAblationHLL(b *testing.B) {
	for _, p := range []uint8{8, 10, 12, 14} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			var est float64
			for i := 0; i < b.N; i++ {
				h := useragent.NewHLL(p)
				for j := 0; j < 10000; j++ {
					h.AddString(fmt.Sprintf("ua-%d", j))
				}
				est = h.Estimate()
			}
			relErr := (est - 10000) / 10000
			b.ReportMetric(relErr*100, "relErr%")
			b.ReportMetric(float64(uint64(1)<<p), "registers")
		})
	}
}

// BenchmarkAblationChangeThreshold sweeps the Figure 8a ΔSTU threshold.
func BenchmarkAblationChangeThreshold(b *testing.B) {
	ctx := benchContext(b)
	for _, th := range []float64{0.10, 0.25, 0.40} {
		b.Run(fmt.Sprintf("th=%.2f", th), func(b *testing.B) {
			var frac float64
			for i := 0; i < b.N; i++ {
				cs := core.DetectChange(ctx.Obs.Daily, 28, th)
				frac = cs.MajorFraction()
			}
			b.ReportMetric(100*frac, "major%")
		})
	}
}

// BenchmarkAblationChurnWindow sweeps the aggregation window.
func BenchmarkAblationChurnWindow(b *testing.B) {
	ctx := benchContext(b)
	for _, w := range []int{1, 7, 28} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			var med float64
			for i := 0; i < b.N; i++ {
				wc := core.ChurnByWindow(ctx.Obs.Daily, []int{w})
				med = wc[0].Up.Median
			}
			b.ReportMetric(med, "upMedian%")
		})
	}
}

// BenchmarkWirePipeline measures collector ingest throughput
// (records/op over a live TCP socket).
func BenchmarkWirePipeline(b *testing.B) {
	const records = 50000
	batch := make([]cdnlog.Record, records)
	for i := range batch {
		batch[i] = cdnlog.Record{Addr: ipv4.Addr(uint32(i)), Day: 0, Hits: 1}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := cdnlog.NewAggregator(1)
		col := cdnlog.NewCollector(agg)
		addr, err := col.Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		edge, err := cdnlog.DialEdge(context.Background(), addr.String())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range batch {
			if err := edge.Log(r); err != nil {
				b.Fatal(err)
			}
		}
		edge.Close()
		if err := col.Close(); err != nil {
			b.Fatal(err)
		}
		if agg.UniqueAddrs() != records {
			b.Fatalf("lost records: %d", agg.UniqueAddrs())
		}
	}
	b.ReportMetric(records, "records/op")
}

// --- Observation-pipeline benchmarks ---------------------------------

// benchDataset returns the shared context's dataset and its canonical
// encoding (built once, outside the timed sections).
func benchDataset(b *testing.B) (*obs.Data, []byte) {
	ctx := benchContext(b)
	var buf bytes.Buffer
	if err := obs.Write(&buf, ctx.Obs); err != nil {
		b.Fatal(err)
	}
	return ctx.Obs, buf.Bytes()
}

// BenchmarkDatasetWrite measures codec encode throughput: the cost of
// streaming a full observation dataset through an obs.Writer.
func BenchmarkDatasetWrite(b *testing.B) {
	d, encoded := benchDataset(b)
	b.SetBytes(int64(len(encoded)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := obs.Write(io.Discard, d); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(encoded)), "datasetBytes")
}

// BenchmarkDatasetRead measures codec decode throughput: file bytes to
// an analysis-ready obs.Data.
func BenchmarkDatasetRead(b *testing.B) {
	_, encoded := benchDataset(b)
	b.SetBytes(int64(len(encoded)))
	b.ResetTimer()
	var days int
	for i := 0; i < b.N; i++ {
		d, err := obs.Decode(bytes.NewReader(encoded))
		if err != nil {
			b.Fatal(err)
		}
		days = len(d.Daily)
	}
	b.ReportMetric(float64(days), "dailySnapshots")
}

// benchPipelineWorld is the small world the report-path benchmarks
// simulate (the full bench world would dominate the timings).
func benchPipelineConfigs() (synthnet.Config, sim.Config) {
	wcfg := synthnet.Config{Seed: 29, NumASes: 40, MeanBlocksPerAS: 6}
	scfg := sim.TinyConfig()
	return wcfg, scfg
}

// BenchmarkReportFromSim measures the monolithic path: world
// generation, simulation and every experiment, per report.
func BenchmarkReportFromSim(b *testing.B) {
	wcfg, scfg := benchPipelineConfigs()
	for i := 0; i < b.N; i++ {
		ctx := analysis.NewContext(wcfg, scfg)
		analysis.RunAll(io.Discard, ctx, wcfg.Seed)
	}
}

// BenchmarkReportFromDataset measures the pipeline path: decode a
// stored dataset, regenerate the world from its metadata and run every
// experiment — what re-analyzing a year of stored observations costs
// once simulation is paid for elsewhere.
func BenchmarkReportFromDataset(b *testing.B) {
	wcfg, scfg := benchPipelineConfigs()
	w := synthnet.Generate(wcfg)
	res := sim.Run(w, scfg)
	var buf bytes.Buffer
	if err := obs.Write(&buf, &res.Data); err != nil {
		b.Fatal(err)
	}
	encoded := buf.Bytes()
	b.SetBytes(int64(len(encoded)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := obs.Decode(bytes.NewReader(encoded))
		if err != nil {
			b.Fatal(err)
		}
		ctx, err := analysis.NewContextFromSource(d)
		if err != nil {
			b.Fatal(err)
		}
		analysis.RunAll(io.Discard, ctx, wcfg.Seed)
	}
}

// BenchmarkScanPermutation measures the ZMap-style permutation.
func BenchmarkScanPermutation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, _ := scan.NewPermutation(1<<20, uint64(i))
		for {
			if _, ok := p.Next(); !ok {
				break
			}
		}
	}
	b.ReportMetric(1<<20, "addrs/op")
}

// BenchmarkIndexApplyDay is the incremental-indexing claim in numbers:
// absorbing one more day into a warm query.Applier and publishing a new
// epoch-stamped snapshot (what a live server pays per refresh) versus
// compiling the whole dataset from scratch (what the pre-incremental
// serving stack would have paid). Applying a day mutates the applier,
// so iterations walk through a held-back run of days and re-warm a
// fresh applier (untimed) only when they run out — the expensive warmup
// amortizes over the whole run instead of repeating per iteration.
func BenchmarkIndexApplyDay(b *testing.B) {
	ctx := benchContext(b)
	var events []obs.Event
	record := obs.SinkFunc(func(e obs.Event) error { events = append(events, e); return nil })
	if err := ctx.Obs.WriteTo(record); err != nil {
		b.Fatal(err)
	}
	// Canonical replay order packs all day events contiguously; warm on
	// everything before the second half of the window and hold the rest
	// of the days back for the timed sections.
	warmDays := len(ctx.Obs.Daily) / 2
	warmEnd := -1
	var held []obs.Event
	for i, e := range events {
		if de, ok := e.(obs.DayEvent); ok {
			if de.Index == warmDays && warmEnd < 0 {
				warmEnd = i
			}
			if de.Index >= warmDays {
				held = append(held, e)
			}
		}
	}
	if warmEnd < 0 || len(held) == 0 {
		b.Fatal("dataset too small to hold back days")
	}
	warm := events[:warmEnd]

	b.Run("apply-day+publish", func(b *testing.B) {
		var a *query.Applier
		next := len(held) // force a warmup on the first iteration
		var blocks int
		for i := 0; i < b.N; i++ {
			if next == len(held) {
				b.StopTimer()
				a = query.NewApplier(query.Options{})
				for _, e := range warm {
					if err := a.Observe(e); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := a.Snapshot(); err != nil {
					b.Fatal(err)
				}
				next = 0
				b.StartTimer()
			}
			if err := a.Observe(held[next]); err != nil {
				b.Fatal(err)
			}
			next++
			idx, err := a.Snapshot()
			if err != nil {
				b.Fatal(err)
			}
			blocks = idx.NumBlocks()
		}
		b.ReportMetric(float64(blocks), "blocks")
	})

	b.Run("full-rebuild", func(b *testing.B) {
		var blocks int
		for i := 0; i < b.N; i++ {
			idx, err := query.Build(ctx.Obs, query.Options{})
			if err != nil {
				b.Fatal(err)
			}
			blocks = idx.NumBlocks()
		}
		b.ReportMetric(float64(blocks), "blocks")
	})
}

// BenchmarkIndexBuild measures compiling an observation dataset into
// the serving index (internal/query): the one-time cost that buys
// microsecond point lookups on the request path.
func BenchmarkIndexBuild(b *testing.B) {
	ctx := benchContext(b)
	for _, workers := range []int{1, 0} {
		name := "1worker"
		if workers == 0 {
			name = "maxprocs"
		}
		b.Run(name, func(b *testing.B) {
			var blocks int
			for i := 0; i < b.N; i++ {
				idx, err := query.Build(ctx.Obs, query.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				blocks = idx.NumBlocks()
			}
			b.ReportMetric(float64(blocks), "blocks")
		})
	}
}

// BenchmarkColdStart pins the persistent-snapshot payoff: restoring the
// serving index from an on-disk snapshot ("load", the mmap path — cost
// O(sections), not O(addresses)) against compiling it from the dataset
// ("build", what a snapshot-less restart pays). The two sub-benchmarks
// share one world so their ratio is the cold-start speedup; the
// snapshot-smoke acceptance floor is 10x.
func BenchmarkColdStart(b *testing.B) {
	ctx := benchContext(b)
	idx, err := query.Build(ctx.Obs, query.Options{})
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "coldstart.ipsnap")
	data := query.EncodeSnapshot(idx, nil)
	if err := query.WriteSnapshotFile(path, data); err != nil {
		b.Fatal(err)
	}

	b.Run("load", func(b *testing.B) {
		var blocks int
		for i := 0; i < b.N; i++ {
			loaded, err := query.LoadSnapshotFile(path, query.LoadOptions{})
			if err != nil {
				b.Fatal(err)
			}
			blocks = loaded.Index.NumBlocks()
			loaded.Close()
		}
		if blocks != idx.NumBlocks() {
			b.Fatalf("loaded %d blocks, built %d", blocks, idx.NumBlocks())
		}
		b.ReportMetric(float64(blocks), "blocks")
		b.ReportMetric(float64(len(data)), "snapshotBytes")
	})
	b.Run("build", func(b *testing.B) {
		var blocks int
		for i := 0; i < b.N; i++ {
			bidx, err := query.Build(ctx.Obs, query.Options{})
			if err != nil {
				b.Fatal(err)
			}
			blocks = bidx.NumBlocks()
		}
		b.ReportMetric(float64(blocks), "blocks")
	})
}

// BenchmarkServeLookup measures the HTTP serving path under parallel
// clients — real sockets, the LRU+single-flight cache in front of the
// index — for both a cache-friendly (hot) and a cache-hostile (cold,
// every path distinct) load.
func BenchmarkServeLookup(b *testing.B) {
	ctx := benchContext(b)
	idx, err := query.Build(ctx.Obs, query.Options{})
	if err != nil {
		b.Fatal(err)
	}
	blocks := idx.Blocks()

	run := func(b *testing.B, cacheSize int, paths func(i int) string) {
		srv := serve.New(idx, serve.Config{CacheSize: cacheSize})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		client := ts.Client()
		client.Transport = &http.Transport{MaxIdleConnsPerHost: 64}
		var n atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := int(n.Add(1))
				resp, err := client.Get(ts.URL + paths(i))
				if err != nil {
					b.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		})
		b.StopTimer()
		hits, misses, _ := srv.CacheStats()
		if tot := hits + misses; tot > 0 {
			b.ReportMetric(100*float64(hits)/float64(tot), "cachehit%")
		}
	}

	b.Run("hot", func(b *testing.B) {
		hotset := blocks
		if len(hotset) > 32 {
			hotset = hotset[:32]
		}
		run(b, 4096, func(i int) string {
			return "/v1/block/" + hotset[i%len(hotset)].String()
		})
	})
	b.Run("cold", func(b *testing.B) {
		run(b, 64, func(i int) string {
			blk := blocks[i%len(blocks)]
			return "/v1/addr/" + blk.Addr(byte(i)).String()
		})
	})
	b.Run("summary", func(b *testing.B) {
		run(b, 4096, func(i int) string { return "/v1/summary" })
	})
}

// globalLRU reproduces the pre-striping response cache — one mutex and
// one container/list guarding every key, with the same single-flight
// fill protocol — as the contention baseline for
// BenchmarkCacheContention.
type globalLRU struct {
	mu       sync.Mutex
	cap      int
	ll       *list.List
	items    map[string]*list.Element
	inflight map[string]*globalLRUFlight
}

type globalLRUEntry struct {
	key  string
	resp serve.Response
}

type globalLRUFlight struct {
	done chan struct{}
	resp serve.Response
}

func newGlobalLRU(capacity int) *globalLRU {
	return &globalLRU{
		cap:      capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*globalLRUFlight),
	}
}

func (c *globalLRU) do(key string, fill func() serve.Response) (serve.Response, bool) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		resp := el.Value.(*globalLRUEntry).resp
		c.mu.Unlock()
		return resp, true
	}
	if fl, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-fl.done
		return fl.resp, true
	}
	fl := &globalLRUFlight{done: make(chan struct{})}
	c.inflight[key] = fl
	c.mu.Unlock()
	fl.resp = fill()
	c.mu.Lock()
	delete(c.inflight, key)
	el := c.ll.PushFront(&globalLRUEntry{key: key, resp: fl.resp})
	c.items[key] = el
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*globalLRUEntry).key)
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.resp, false
}

// BenchmarkCacheContention pins the tentpole claim of the read-path
// overhaul: under parallel traffic the lock-striped sharded cache beats
// the single-mutex LRU it replaced (reproduced above as the baseline).
// Three key sets probe the three regimes: "hot" is all hits on a small
// working set (pure lock/LRU bookkeeping contention — and the sharded
// hit path must stay allocation free), "cold" is all misses (insert +
// eviction churn), "mixed" interleaves the two 4:1.
func BenchmarkCacheContention(b *testing.B) {
	const capacity, hot, cold = 4096, 512, 1 << 16
	resp := serve.Response{Status: 200, Body: []byte(`{"epoch":1}` + "\n")}
	keys := make([]string, cold)
	bkeys := make([][]byte, cold)
	for i := range keys {
		keys[i] = fmt.Sprintf("1:/v1/block/%d.%d.%d.0/24", i/65536, i/256%256, i%256)
		bkeys[i] = []byte(keys[i])
	}
	fill := func() serve.Response { return resp }

	// pick maps a worker-local counter to a key index per regime: hot
	// cycles the small working set, cold strides the whole key space
	// (misses once the LRU has churned), mixed is 4 hot : 1 cold.
	pick := func(set string, i int) int {
		switch set {
		case "hot":
			return i % hot
		case "cold":
			return i % cold
		default:
			if i%5 == 4 {
				return i % cold
			}
			return i % hot
		}
	}

	for _, set := range []string{"hot", "cold", "mixed"} {
		b.Run(set, func(b *testing.B) {
			b.Run("global-mutex", func(b *testing.B) {
				c := newGlobalLRU(capacity)
				for i := 0; i < hot; i++ {
					c.do(keys[i], fill)
				}
				var n atomic.Int64
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					i := int(n.Add(1)) * 31
					for pb.Next() {
						c.do(keys[pick(set, i)], fill)
						i++
					}
				})
			})
			b.Run("sharded", func(b *testing.B) {
				c := serve.NewCache(capacity)
				for i := 0; i < hot; i++ {
					c.Put(keys[i], resp)
				}
				var n atomic.Int64
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					i := int(n.Add(1)) * 31
					for pb.Next() {
						k := pick(set, i)
						if _, ok := c.Get(bkeys[k]); !ok {
							c.Do(keys[k], fill)
						}
						i++
					}
				})
			})
		})
	}
}

// BenchmarkShardBuild measures compiling one shard's slice of the
// dataset versus the full index: the horizontal-scaling claim is that
// a shard only pays for its partition, so a quarter-partition build
// (including the plan derivation and stream filtering a real shard
// performs) must be measurably cheaper than the monolithic one.
func BenchmarkShardBuild(b *testing.B) {
	ctx := benchContext(b)
	b.Run("full", func(b *testing.B) {
		var blocks int
		for i := 0; i < b.N; i++ {
			idx, err := query.Build(ctx.Obs, query.Options{})
			if err != nil {
				b.Fatal(err)
			}
			blocks = idx.NumBlocks()
		}
		b.ReportMetric(float64(blocks), "blocks")
	})
	b.Run("quarter-shard", func(b *testing.B) {
		plan, err := cluster.PlanShards(ctx.World, 4)
		if err != nil {
			b.Fatal(err)
		}
		var blocks int
		for i := 0; i < b.N; i++ {
			idx, err := query.Build(cluster.PartitionSource(ctx.Obs, 0, 4),
				query.Options{Keep: plan.Keep(0)})
			if err != nil {
				b.Fatal(err)
			}
			blocks = idx.NumBlocks()
		}
		b.ReportMetric(float64(blocks), "blocks")
	})
}

// benchCluster stands up a two-shard cluster (HTTP + RPC listeners on
// every shard) fronted by a router speaking the given transport, and
// returns the routed base URL, the active blocks, and the first
// shard's RPC address for direct bulk calls.
func benchCluster(b *testing.B, transport string) (rtsURL string, blocks []ipv4.Block, rpcAddr string) {
	b.Helper()
	ctx := benchContext(b)
	const shards = 2
	plan, err := cluster.PlanShards(ctx.World, shards)
	if err != nil {
		b.Fatal(err)
	}
	urls := make([]string, shards)
	for i := 0; i < shards; i++ {
		idx, err := query.Build(cluster.PartitionSource(ctx.Obs, i, shards), query.Options{})
		if err != nil {
			b.Fatal(err)
		}
		blocks = append(blocks, idx.Blocks()...)
		lo, hi := plan.Range(i)
		srv := serve.New(idx, serve.Config{Shard: &wire.ShardInfo{Index: i, Count: shards, Lo: lo, Hi: hi}})
		rs := rpc.NewServer(srv, rpc.Options{})
		raddr, err := rs.Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { rs.Shutdown(context.Background()) })
		srv.SetRPCAddr(raddr.String())
		if i == 0 {
			rpcAddr = raddr.String()
		}
		ts := httptest.NewServer(srv.Handler())
		b.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	router, err := cluster.NewRouter(urls, cluster.RouterOptions{Transport: transport})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { router.Close() })
	rts := httptest.NewServer(router.Handler())
	b.Cleanup(rts.Close)
	return rts.URL, blocks, rpcAddr
}

// benchRoutedGets hammers the routed base URL with parallel clients —
// real sockets on both hops (client→router and router→shards).
func benchRoutedGets(b *testing.B, rtsURL string, paths func(i int) string) {
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	defer client.CloseIdleConnections()
	var n atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(n.Add(1))
			resp, err := client.Get(rtsURL + paths(i))
			if err != nil {
				b.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status %d", resp.StatusCode)
				return
			}
		}
	})
}

// BenchmarkRouterLookup measures the scatter-gather front over the
// HTTP-JSON shard transport: proxied point lookups and the fan-out
// merged summary.
func BenchmarkRouterLookup(b *testing.B) {
	rtsURL, blocks, _ := benchCluster(b, cluster.TransportHTTP)
	b.Run("block", func(b *testing.B) {
		benchRoutedGets(b, rtsURL, func(i int) string { return "/v1/block/" + blocks[i%len(blocks)].String() })
	})
	b.Run("summary", func(b *testing.B) {
		benchRoutedGets(b, rtsURL, func(i int) string { return "/v1/summary" })
	})
}

// --- Historical-epoch benchmarks -------------------------------------

// BenchmarkDeltaQuery measures the epoch-diff path: the merge-walk that
// computes /v1/delta between two retained snapshots ("compute"), and
// the served endpoint under parallel clients once the epoch-addressed
// cache is warm ("http-cached").
func BenchmarkDeltaQuery(b *testing.B) {
	ctx := benchContext(b)
	half := len(ctx.Obs.Daily) / 2
	fromIdx, err := query.Build(ctx.Obs.TruncateLive(half), query.Options{})
	if err != nil {
		b.Fatal(err)
	}
	toIdx, err := query.Build(ctx.Obs, query.Options{})
	if err != nil {
		b.Fatal(err)
	}
	from, to := fromIdx.AtEpoch(1), toIdx.AtEpoch(2)

	b.Run("compute", func(b *testing.B) {
		var changed int
		for i := 0; i < b.N; i++ {
			v, err := to.Delta(from, query.DefaultDeltaBlockList)
			if err != nil {
				b.Fatal(err)
			}
			changed = v.ChangedBlocks
		}
		b.ReportMetric(float64(changed), "changedBlocks")
	})
	b.Run("http-cached", func(b *testing.B) {
		srv := serve.New(nil, serve.Config{RetainEpochs: 2})
		srv.Publish(from)
		srv.Publish(to)
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		client := ts.Client()
		client.Transport = &http.Transport{MaxIdleConnsPerHost: 64}
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				resp, err := client.Get(ts.URL + "/v1/delta?from=1&to=2")
				if err != nil {
					b.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		})
	})
}

// BenchmarkEpochLookup measures time travel: resolving a retained epoch
// in the history ring ("ring-get") and a full as-of point lookup over
// HTTP with ?epoch= addressing the per-epoch cache ("http-as-of").
func BenchmarkEpochLookup(b *testing.B) {
	ctx := benchContext(b)
	idx, err := query.Build(ctx.Obs, query.Options{})
	if err != nil {
		b.Fatal(err)
	}
	const epochs = 8

	b.Run("ring-get", func(b *testing.B) {
		r := history.New(epochs)
		for e := uint64(1); e <= epochs; e++ {
			r.Add(idx.AtEpoch(e))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := r.Get(uint64(1 + i%epochs)); !ok {
				b.Fatal("retained epoch missed")
			}
		}
	})
	b.Run("http-as-of", func(b *testing.B) {
		srv := serve.New(nil, serve.Config{RetainEpochs: epochs})
		for e := uint64(1); e <= epochs; e++ {
			srv.Publish(idx.AtEpoch(e))
		}
		blocks := idx.Blocks()
		if len(blocks) > 32 {
			blocks = blocks[:32]
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		client := ts.Client()
		client.Transport = &http.Transport{MaxIdleConnsPerHost: 64}
		var n atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := int(n.Add(1))
				path := fmt.Sprintf("/v1/block/%s?epoch=%d", blocks[i%len(blocks)], 1+i%epochs)
				resp, err := client.Get(ts.URL + path)
				if err != nil {
					b.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		})
		b.StopTimer()
		hits, misses, _ := srv.CacheStats()
		if tot := hits + misses; tot > 0 {
			b.ReportMetric(100*float64(hits)/float64(tot), "cachehit%")
		}
	})
}

// BenchmarkRouterLookupRPC measures the same routed workload over the
// binary RPC shard transport — the public hop stays HTTP, only the
// router↔shard hop changes — plus a direct 16-address bulk lookup
// against one shard's RPC endpoint (the amortized path a batch client
// uses instead of 16 round trips).
func BenchmarkRouterLookupRPC(b *testing.B) {
	rtsURL, blocks, rpcAddr := benchCluster(b, cluster.TransportRPC)
	b.Run("block", func(b *testing.B) {
		benchRoutedGets(b, rtsURL, func(i int) string { return "/v1/block/" + blocks[i%len(blocks)].String() })
	})
	b.Run("summary", func(b *testing.B) {
		benchRoutedGets(b, rtsURL, func(i int) string { return "/v1/summary" })
	})
	b.Run("bulk-16", func(b *testing.B) {
		rc := rpc.NewClient(rpcAddr, rpc.ClientOptions{})
		defer rc.Close()
		var n atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			addrs := make([]uint32, 16)
			for pb.Next() {
				i := int(n.Add(1))
				for j := range addrs {
					blk := blocks[(i*16+j)%len(blocks)]
					addrs[j] = uint32(blk.Addr(uint8(j)))
				}
				views, _, err := rc.BulkAddr(context.Background(), addrs)
				if err != nil {
					b.Error(err)
					return
				}
				if len(views) != len(addrs) {
					b.Errorf("bulk answered %d views for %d addrs", len(views), len(addrs))
					return
				}
			}
		})
	})
}
