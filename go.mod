module ipscope

go 1.22
