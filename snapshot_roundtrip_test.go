package ipscope

// snapshot_roundtrip_test.go pins the persistent-snapshot contract at
// the outermost boundary: a server restored from an on-disk snapshot
// must be indistinguishable — byte for byte, on every /v1/* and
// /v1/cluster/* endpoint — from the server that built its index in
// memory. The variants cover the three ways an index comes to exist
// (monolithic Build, incremental Applier publishes at several epoch
// cuts including the >64-day timeline repack, and a sharded partition),
// so cold-starting from a snapshot is provably not a different server.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"ipscope/internal/cluster"
	"ipscope/internal/ipv4"
	"ipscope/internal/obs"
	"ipscope/internal/query"
	"ipscope/internal/serve"
	"ipscope/internal/serve/wire"
	"ipscope/internal/sim"
	"ipscope/internal/synthnet"
)

// snapshotPaths enumerates every endpoint the server exposes, probing
// each indexed block, two addresses per block, and every distinct AS
// and /20 prefix — the full query surface, not a sample.
func snapshotPaths(idx *query.Index) []string {
	// healthz first: its body includes cache counters, so both servers
	// must see it at the same point in an identical request sequence.
	paths := []string{"/v1/healthz", "/v1/summary", "/v1/cluster/info", "/v1/cluster/summary"}
	asSeen := make(map[uint32]bool)
	prefixSeen := make(map[string]bool)
	for _, blk := range idx.Blocks() {
		paths = append(paths,
			"/v1/block/"+blk.String(),
			"/v1/addr/"+blk.Addr(0).String(),
			"/v1/addr/"+blk.Addr(137).String())
		v, ok := idx.Block(blk)
		if !ok {
			continue
		}
		if !asSeen[v.AS] {
			asSeen[v.AS] = true
			paths = append(paths,
				fmt.Sprintf("/v1/as/AS%d", v.AS),
				fmt.Sprintf("/v1/cluster/as/AS%d", v.AS))
		}
		p := ipv4.MustNewPrefix(blk.First(), 20)
		if !prefixSeen[p.String()] {
			prefixSeen[p.String()] = true
			paths = append(paths,
				"/v1/prefix/"+p.String(),
				"/v1/cluster/prefix/"+p.String())
		}
	}
	return paths
}

func fetchAll(t *testing.T, h http.Handler, paths []string) map[string][]byte {
	t.Helper()
	ts := httptest.NewServer(h)
	defer ts.Close()
	out := make(map[string][]byte, len(paths))
	for _, p := range paths {
		resp, err := http.Get(ts.URL + p)
		if err != nil {
			t.Fatalf("GET %s: %v", p, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("GET %s: %v", p, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", p, resp.StatusCode, body)
		}
		out[p] = body
	}
	return out
}

// assertSnapshotServeEqual is the invariant itself: encode idx, write
// it to disk, load it back (through the mmap path when available), and
// require every endpoint of a server over the loaded index to answer
// byte-identically to a server over the original.
func assertSnapshotServeEqual(t *testing.T, idx *query.Index, shard *query.ShardRange) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "roundtrip.ipsnap")
	if err := query.WriteSnapshotFile(path, query.EncodeSnapshot(idx, shard)); err != nil {
		t.Fatal(err)
	}
	loaded, err := query.LoadSnapshotFile(path, query.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if got := loaded.Index.Epoch(); got != idx.Epoch() {
		t.Fatalf("loaded epoch = %d, want %d", got, idx.Epoch())
	}

	cfg := serve.Config{}
	if shard != nil {
		cfg.Shard = &wire.ShardInfo{Index: shard.Index, Count: shard.Count, Lo: shard.Lo, Hi: shard.Hi}
	}
	cfgLoaded := serve.Config{}
	if sh := loaded.Info.Shard; sh != nil {
		cfgLoaded.Shard = &wire.ShardInfo{Index: sh.Index, Count: sh.Count, Lo: sh.Lo, Hi: sh.Hi}
	}

	paths := snapshotPaths(idx)
	want := fetchAll(t, serve.New(idx, cfg).Handler(), paths)
	got := fetchAll(t, serve.New(loaded.Index, cfgLoaded).Handler(), paths)
	diffs := 0
	for _, p := range paths {
		if !bytes.Equal(want[p], got[p]) {
			t.Errorf("GET %s differs:\n direct: %s\n loaded: %s", p, want[p], got[p])
			if diffs++; diffs >= 5 {
				t.Fatalf("stopping after %d differing endpoints (of %d probed)", diffs, len(paths))
			}
		}
	}
	if diffs == 0 {
		t.Logf("%d endpoints byte-identical", len(paths))
	}
}

// TestSnapshotRoundTrip: save→load→serve equals the in-memory server on
// every endpoint, for Build-built indexes, for Applier-built indexes at
// several epoch cuts (including the 64→65-day timeline word repack),
// and for a sharded partition slice.
func TestSnapshotRoundTrip(t *testing.T) {
	w := synthnet.Generate(synthnet.TinyConfig())

	t.Run("build", func(t *testing.T) {
		res := sim.Run(w, sim.TinyConfig())
		idx, err := query.Build(&res.Data, query.Options{})
		if err != nil {
			t.Fatal(err)
		}
		assertSnapshotServeEqual(t, idx, nil)
	})

	t.Run("applier-cuts", func(t *testing.T) {
		variants := []struct {
			name string
			cfg  sim.Config
			cuts []int
		}{
			{"tiny", sim.TinyConfig(), []int{13, 28}},
			{"word-boundary", func() sim.Config {
				c := sim.TinyConfig()
				c.Days, c.DailyStart, c.DailyLen = 98, 14, 70
				return c
			}(), []int{64, 70}},
		}
		for _, v := range variants {
			t.Run(v.name, func(t *testing.T) {
				var events []obs.Event
				rec := obs.SinkFunc(func(e obs.Event) error { events = append(events, e); return nil })
				if _, err := sim.RunTo(w, v.cfg, rec); err != nil {
					t.Fatal(err)
				}
				a := query.NewApplier(query.Options{})
				cuts := append([]int(nil), v.cuts...)
				for _, e := range events {
					if err := a.Observe(e); err != nil {
						t.Fatal(err)
					}
					if _, ok := e.(obs.DayEvent); ok && len(cuts) > 0 && a.Days() == cuts[0] {
						cuts = cuts[1:]
						idx, err := a.Snapshot()
						if err != nil {
							t.Fatal(err)
						}
						assertSnapshotServeEqual(t, idx, nil)
					}
				}
				// One final epoch folds in the end-of-stream aggregates
				// (per-block traffic/UA, scan surfaces).
				idx, err := a.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				assertSnapshotServeEqual(t, idx, nil)
			})
		}
	})

	t.Run("sharded", func(t *testing.T) {
		res := sim.Run(w, sim.TinyConfig())
		const shards = 3
		plan, err := cluster.PlanShards(w, shards)
		if err != nil {
			t.Fatal(err)
		}
		for si := 0; si < shards; si++ {
			lo, hi := plan.Range(si)
			idx, err := query.Build(obs.FilterSource(&res.Data, plan.Keep(si)),
				query.Options{Keep: plan.Keep(si)})
			if err != nil {
				t.Fatal(err)
			}
			assertSnapshotServeEqual(t, idx,
				&query.ShardRange{Index: si, Count: shards, Lo: lo, Hi: hi})
		}
	})
}
