package history_test

import (
	"runtime"
	"testing"

	"ipscope/internal/history"
	"ipscope/internal/obs"
	"ipscope/internal/query"
	"ipscope/internal/sim"
	"ipscope/internal/synthnet"
)

// tinyIndex builds one small index the ring tests stamp with synthetic
// epochs via AtEpoch — ring mechanics only care about epoch numbers.
func tinyIndex(t testing.TB) *query.Index {
	t.Helper()
	w := synthnet.Generate(synthnet.TinyConfig())
	res := sim.Run(w, sim.TinyConfig())
	idx, err := query.Build(&res.Data, query.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestRingEvictionOrder(t *testing.T) {
	base := tinyIndex(t)
	r := history.New(3)
	if r.Capacity() != 3 {
		t.Fatalf("capacity = %d", r.Capacity())
	}
	if _, _, ok := r.Range(); ok || r.Len() != 0 || r.Latest() != nil {
		t.Fatal("empty ring reports retained state")
	}

	// Epochs 1..5 through a capacity-3 ring: evictions come out oldest
	// first, exactly as each publish displaces them.
	var evicted []uint64
	for e := uint64(1); e <= 5; e++ {
		evicted = append(evicted, r.Add(base.AtEpoch(e))...)
	}
	if want := []uint64{1, 2}; len(evicted) != 2 || evicted[0] != want[0] || evicted[1] != want[1] {
		t.Fatalf("evicted = %v, want %v", evicted, []uint64{1, 2})
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
	oldest, newest, ok := r.Range()
	if !ok || oldest != 3 || newest != 5 {
		t.Fatalf("range = %d..%d ok=%v, want 3..5", oldest, newest, ok)
	}
	if r.Latest().Epoch() != 5 {
		t.Fatalf("latest epoch = %d", r.Latest().Epoch())
	}

	// Gets: every retained epoch hits, the just-evicted boundary epoch,
	// epoch 0 and a future epoch miss.
	for e := uint64(3); e <= 5; e++ {
		x, ok := r.Get(e)
		if !ok || x.Epoch() != e {
			t.Fatalf("Get(%d) = (%v, %v)", e, x, ok)
		}
	}
	for _, e := range []uint64{0, 1, 2, 6, 99} {
		if _, ok := r.Get(e); ok {
			t.Fatalf("Get(%d) hit on an unretained epoch", e)
		}
	}

	// A non-increasing epoch resets the ring: everything retained comes
	// back as evicted and only the new snapshot remains.
	evicted = r.Add(base.AtEpoch(2))
	if len(evicted) != 3 || evicted[0] != 3 || evicted[1] != 4 || evicted[2] != 5 {
		t.Fatalf("reset evicted %v, want [3 4 5]", evicted)
	}
	if oldest, newest, _ := r.Range(); oldest != 2 || newest != 2 || r.Len() != 1 {
		t.Fatalf("post-reset range = %d..%d len=%d", oldest, newest, r.Len())
	}
}

func TestRingDeltaAndMovement(t *testing.T) {
	base := tinyIndex(t)
	r := history.New(4)
	for e := uint64(1); e <= 4; e++ {
		r.Add(base.AtEpoch(e))
	}

	p, ok, err := r.Delta(2, 4, 0)
	if !ok || err != nil {
		t.Fatalf("Delta(2,4) = ok=%v err=%v", ok, err)
	}
	if p.FromEpoch != 2 || p.ToEpoch != 4 {
		t.Fatalf("delta span %d..%d", p.FromEpoch, p.ToEpoch)
	}
	if _, ok, _ := r.Delta(0, 4, 0); ok {
		t.Fatal("Delta over an unretained from-epoch succeeded")
	}
	if _, ok, _ := r.Delta(2, 9, 0); ok {
		t.Fatal("Delta over an unretained to-epoch succeeded")
	}

	m := r.Movement(0)
	if m.OldestEpoch != 1 || m.NewestEpoch != 4 || len(m.Entries) != 4 {
		t.Fatalf("Movement(0) = %d..%d with %d entries", m.OldestEpoch, m.NewestEpoch, len(m.Entries))
	}
	// The oldest entry has no churn base; later entries name their ring
	// predecessor.
	if m.Entries[0].BaseEpoch != 0 {
		t.Fatalf("oldest entry base = %d", m.Entries[0].BaseEpoch)
	}
	for i := 1; i < len(m.Entries); i++ {
		if m.Entries[i].BaseEpoch != m.Entries[i-1].Epoch {
			t.Fatalf("entry %d base = %d, want %d", i, m.Entries[i].BaseEpoch, m.Entries[i-1].Epoch)
		}
	}
	// A window still measures churn against the ring predecessor, so
	// re-asking with a larger window never rewrites an entry.
	mw := r.Movement(2)
	if mw.OldestEpoch != 3 || len(mw.Entries) != 2 {
		t.Fatalf("Movement(2) = %d.. with %d entries", mw.OldestEpoch, len(mw.Entries))
	}
	if mw.Entries[0].BaseEpoch != 2 {
		t.Fatalf("windowed entry base = %d, want 2", mw.Entries[0].BaseEpoch)
	}
	// last beyond retention is the whole ring.
	if mall := r.Movement(99); len(mall.Entries) != 4 {
		t.Fatalf("Movement(99) has %d entries", len(mall.Entries))
	}
}

// ingestHeap replays the recorded live stream into a fresh applier,
// snapshotting into a ring of the given capacity before each day event,
// and returns the retained heap delta (bytes) once the stream is done.
func ingestHeap(t *testing.T, events []obs.Event, capacity int) (retained uint64, publishes int) {
	t.Helper()
	measure := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	before := measure()
	a := query.NewApplier(query.Options{})
	r := history.New(capacity)
	for _, e := range events {
		if day, ok := e.(obs.DayEvent); ok && day.Index > 0 {
			s, err := a.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			r.Add(s)
			publishes++
		}
		if err := a.Observe(e); err != nil {
			t.Fatal(err)
		}
	}
	s, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r.Add(s)
	publishes++
	after := measure()
	runtime.KeepAlive(a)
	runtime.KeepAlive(r)
	if after <= before {
		return 0, publishes
	}
	return after - before, publishes
}

// TestRingMemoryBounded is the boundedness proof the tentpole demands:
// streaming the whole dataset through an applier that publishes every
// day — far more than 3x the retention window — into a capacity-K ring
// must cost a small multiple of the same ingest retaining only the live
// epoch, because eviction releases displaced snapshots and clean-block
// sharing keeps the retained ones from being full copies. An unbounded
// ring (or one that leaked evicted snapshots) would retain every epoch
// and blow far past the bound.
func TestRingMemoryBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("memory measurement under -short")
	}
	w := synthnet.Generate(synthnet.TinyConfig())
	var events []obs.Event
	rec := obs.SinkFunc(func(e obs.Event) error { events = append(events, e); return nil })
	if _, err := sim.RunTo(w, sim.TinyConfig(), rec); err != nil {
		t.Fatal(err)
	}

	const capacity = 4
	baseline, publishes := ingestHeap(t, events, 1)
	if publishes < 3*capacity {
		t.Fatalf("only %d publishes — stream too short to exercise %dx the retention window", publishes, 3)
	}
	retained, _ := ingestHeap(t, events, capacity)

	// Headroom 3x: retaining 4 epochs with structural sharing must cost
	// well under 4x one epoch; retaining all ~28 would cost far over.
	if baseline == 0 {
		t.Skip("heap delta unmeasurable (GC noise)")
	}
	if retained > 3*baseline {
		t.Fatalf("ring(%d) retained %d bytes after %d publishes; ring(1) retained %d — more than 3x, retention is not bounded",
			capacity, retained, publishes, baseline)
	}
	t.Logf("ring(1): %d bytes, ring(%d): %d bytes over %d publishes", baseline, capacity, retained, publishes)
}
