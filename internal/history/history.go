// Package history retains a bounded ring of recent query.Index
// snapshots keyed by epoch, the substrate for time-travel (?epoch=),
// /v1/delta and /v1/movement queries.
//
// Retention is cheap because snapshots are immutable and the applier's
// publish path shares clean-block structure between consecutive epochs:
// holding N epochs costs roughly one full index plus the dirty slices
// of the other N-1, not N full copies (the memory-boundedness test in
// history_test.go pins this under continuous ingest).
//
// The ring is the single source of truth for both the HTTP handlers
// and the RPC server, so the two transports compute as-of, delta and
// movement answers from identical inputs.
package history

import (
	"sync"

	"ipscope/internal/query"
)

// DefaultRetain is the retention used when a server does not configure
// one: only the live epoch, matching the pre-history memory profile.
const DefaultRetain = 1

// Ring retains the newest Capacity() snapshots by epoch. Retained
// epochs always form a contiguous range: publishes arrive with strictly
// increasing epochs, and a non-increasing epoch (a restart publishing a
// fresh timeline) resets the ring to just the new snapshot.
type Ring struct {
	mu    sync.RWMutex
	cap   int
	snaps []*query.Index // ascending epoch order
}

// New creates a ring retaining up to capacity epochs (<=0 means
// DefaultRetain).
func New(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRetain
	}
	return &Ring{cap: capacity}
}

// Capacity returns the retention bound.
func (r *Ring) Capacity() int { return r.cap }

// Len returns the number of currently retained epochs.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.snaps)
}

// Add retains x, evicting the oldest snapshots beyond capacity, and
// returns the evicted epochs (oldest first) so callers can drop
// anything keyed by them (response cache entries). An epoch at or below
// the newest retained one resets the ring: every previously retained
// epoch is returned as evicted.
func (r *Ring) Add(x *query.Index) (evicted []uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.snaps); n > 0 && x.Epoch() <= r.snaps[n-1].Epoch() {
		for _, s := range r.snaps {
			evicted = append(evicted, s.Epoch())
		}
		r.snaps = append(r.snaps[:0:0], x)
		return evicted
	}
	r.snaps = append(r.snaps, x)
	for len(r.snaps) > r.cap {
		evicted = append(evicted, r.snaps[0].Epoch())
		r.snaps = r.snaps[1:]
	}
	return evicted
}

// Get returns the retained snapshot for epoch, if any.
func (r *Ring) Get(epoch uint64) (*query.Index, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.getLocked(epoch)
}

func (r *Ring) getLocked(epoch uint64) (*query.Index, bool) {
	if len(r.snaps) == 0 {
		return nil, false
	}
	oldest := r.snaps[0].Epoch()
	if epoch < oldest || epoch > r.snaps[len(r.snaps)-1].Epoch() {
		return nil, false
	}
	return r.snaps[epoch-oldest], true
}

// Latest returns the newest retained snapshot (nil when empty).
func (r *Ring) Latest() *query.Index {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.snaps) == 0 {
		return nil
	}
	return r.snaps[len(r.snaps)-1]
}

// Range returns the retained epoch range. ok is false while the ring is
// empty (a warming server).
func (r *Ring) Range() (oldest, newest uint64, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.snaps) == 0 {
		return 0, 0, false
	}
	return r.snaps[0].Epoch(), r.snaps[len(r.snaps)-1].Epoch(), true
}

// Delta computes the delta partial between two retained epochs. ok is
// false when either epoch is not retained; the error reports a span
// the query layer rejects (from newer than to).
func (r *Ring) Delta(from, to uint64, maxBlocks int) (query.DeltaPartial, bool, error) {
	r.mu.RLock()
	fx, fok := r.getLocked(from)
	tx, tok := r.getLocked(to)
	r.mu.RUnlock()
	if !fok || !tok {
		return query.DeltaPartial{}, false, nil
	}
	p, err := tx.DeltaPartial(fx, maxBlocks)
	return p, err == nil, err
}

// Movement derives the per-epoch totals series over the newest `last`
// retained epochs (<=0 or beyond retention: all of them). Churn columns
// are measured against each entry's predecessor in the ring; the oldest
// entry in the window has no predecessor inside it only when it is also
// the oldest retained epoch, so re-asking with a larger ring never
// changes an entry.
func (r *Ring) Movement(last int) query.MovementPartial {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p := query.MovementPartial{}
	if len(r.snaps) == 0 {
		return p
	}
	p.Seed = r.snaps[0].Summary().Seed
	start := 0
	if last > 0 && last < len(r.snaps) {
		start = len(r.snaps) - last
	}
	p.OldestEpoch = r.snaps[start].Epoch()
	p.NewestEpoch = r.snaps[len(r.snaps)-1].Epoch()
	for i := start; i < len(r.snaps); i++ {
		var base *query.Index
		if i > 0 {
			base = r.snaps[i-1]
		}
		p.Entries = append(p.Entries, r.snaps[i].MovementEntryPartial(base))
	}
	return p
}
