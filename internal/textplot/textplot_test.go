package textplot

import (
	"strings"
	"testing"

	"ipscope/internal/ipv4"
)

func TestChart(t *testing.T) {
	s := Chart("growth", []Series{
		{Name: "ips", Ys: []float64{1, 2, 3, 4, 5}},
		{Name: "fit", Ys: []float64{1.5, 2.5, 3.5}},
	}, 40, 8)
	if !strings.Contains(s, "growth") || !strings.Contains(s, "*=ips") || !strings.Contains(s, "o=fit") {
		t.Errorf("chart missing elements:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 10 { // title + 8 rows + legend
		t.Errorf("chart has %d lines", len(lines))
	}
	// Empty data.
	if s := Chart("x", nil, 10, 4); !strings.Contains(s, "no data") {
		t.Error("empty chart should say so")
	}
	// Flat series must not divide by zero.
	if s := Chart("flat", []Series{{Name: "c", Ys: []float64{2, 2, 2}}}, 10, 4); s == "" {
		t.Error("flat series render failed")
	}
}

func TestHBar(t *testing.T) {
	s := HBar("t", []string{"aa", "b"}, []float64{10, 5}, 20)
	if !strings.Contains(s, "aa |#################### 10") {
		t.Errorf("bar render:\n%s", s)
	}
	if !strings.Contains(s, "b  |########## 5") {
		t.Errorf("short bar render:\n%s", s)
	}
	// All-zero values.
	if s := HBar("", []string{"x"}, []float64{0}, 10); !strings.Contains(s, "x |") {
		t.Error("zero bar broken")
	}
}

func TestStackedBar(t *testing.T) {
	s := StackedBar("v", []string{"IPs"}, [][]float64{{0.5, 0.25, 0.25}}, []byte{'C', 'B', 'I'}, 20)
	if !strings.Contains(s, "CCCCCCCCCC") || !strings.Contains(s, "BBBBB") || !strings.Contains(s, "IIIII") {
		t.Errorf("stacked render:\n%s", s)
	}
}

func TestActivityMatrix(t *testing.T) {
	days := make([]ipv4.Bitmap256, 28)
	for d := range days {
		for h := 0; h < 64; h++ {
			days[d].Set(byte(h))
		}
	}
	s := ActivityMatrix("blk", days, 16)
	if !strings.Contains(s, "blk") || !strings.Contains(s, "28 days") {
		t.Errorf("matrix render:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 18 { // title + 16 rows + footer
		t.Errorf("matrix has %d lines", len(lines))
	}
	// Dense rows (hosts 0..63) must be darker than empty rows.
	if !strings.Contains(lines[1], "@") {
		t.Errorf("active rows not dark: %q", lines[1])
	}
	if strings.ContainsAny(lines[17-1], "@#") {
		t.Errorf("inactive rows not blank: %q", lines[16])
	}
	if s := ActivityMatrix("none", nil, 8); !strings.Contains(s, "no data") {
		t.Error("empty matrix")
	}
}

func TestActivityMatrixDownsamplesDays(t *testing.T) {
	days := make([]ipv4.Bitmap256, 364)
	s := ActivityMatrix("", days, 8)
	for _, line := range strings.Split(s, "\n") {
		if len(line) > 110 {
			t.Fatalf("line too wide: %d", len(line))
		}
	}
}

func TestHeatmap(t *testing.T) {
	grid := [][]float64{
		{0, 0, 1},
		{0, 5, 0},
	}
	s := Heatmap("h", grid)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("heatmap lines = %d", len(lines))
	}
	// y=1 row renders first; its max cell should be darkest.
	if !strings.Contains(lines[1], "@") {
		t.Errorf("max cell not darkest: %q", lines[1])
	}
	// Zero grid.
	if s := Heatmap("", [][]float64{{0, 0}}); !strings.Contains(s, "|  |") {
		t.Errorf("zero heatmap: %q", s)
	}
}
