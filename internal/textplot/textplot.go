// Package textplot renders the experiment outputs as ASCII figures:
// line charts, horizontal bars, heatmaps and the paper's /24 activity
// matrices. All renderers return plain strings suitable for terminals
// and EXPERIMENTS.md code blocks.
package textplot

import (
	"fmt"
	"math"
	"strings"

	"ipscope/internal/ipv4"
)

// Series is one named line of a chart.
type Series struct {
	Name string
	Ys   []float64
}

var seriesMarks = []byte{'*', 'o', '+', 'x', '@', '%'}

// Chart renders one or more series as an ASCII line chart of the given
// width and height (interior plot area). X is the sample index, scaled
// to the width; Y is auto-scaled across all series.
func Chart(title string, series []Series, width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 3 {
		height = 3
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	maxLen := 0
	for _, s := range series {
		for _, y := range s.Ys {
			if y < lo {
				lo = y
			}
			if y > hi {
				hi = y
			}
		}
		if len(s.Ys) > maxLen {
			maxLen = len(s.Ys)
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title + "\n")
	}
	if maxLen == 0 || math.IsInf(lo, 1) {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mark := seriesMarks[si%len(seriesMarks)]
		for i, y := range s.Ys {
			x := 0
			if maxLen > 1 {
				x = i * (width - 1) / (maxLen - 1)
			}
			ry := int((y - lo) / (hi - lo) * float64(height-1))
			row := height - 1 - ry
			grid[row][x] = mark
		}
	}
	for i, row := range grid {
		label := "        "
		switch i {
		case 0:
			label = fmt.Sprintf("%8.3g", hi)
		case height - 1:
			label = fmt.Sprintf("%8.3g", lo)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, row)
	}
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", seriesMarks[si%len(seriesMarks)], s.Name))
	}
	b.WriteString("          " + strings.Join(legend, "  ") + "\n")
	return b.String()
}

// HBar renders labelled horizontal bars scaled to maxWidth characters.
func HBar(title string, labels []string, values []float64, maxWidth int) string {
	if maxWidth < 4 {
		maxWidth = 4
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title + "\n")
	}
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	for i, v := range values {
		n := 0
		if maxV > 0 {
			n = int(v / maxV * float64(maxWidth))
		}
		fmt.Fprintf(&b, "%-*s |%s %.4g\n", maxL, labels[i], strings.Repeat("#", n), v)
	}
	return b.String()
}

// StackedBar renders per-label stacked fractions using one rune per
// component, normalizing each row to width characters. Components are
// ordered as given; fractions should sum to <= 1 per row.
func StackedBar(title string, labels []string, parts [][]float64, partRunes []byte, width int) string {
	var b strings.Builder
	if title != "" {
		b.WriteString(title + "\n")
	}
	maxL := 0
	for _, l := range labels {
		if len(l) > maxL {
			maxL = len(l)
		}
	}
	for i, l := range labels {
		var row strings.Builder
		for j, frac := range parts[i] {
			n := int(frac*float64(width) + 0.5)
			row.WriteString(strings.Repeat(string(partRunes[j%len(partRunes)]), n))
		}
		fmt.Fprintf(&b, "%-*s |%s\n", maxL, l, row.String())
	}
	return b.String()
}

var densityRunes = []byte(" .:-=+*#%@")

// ActivityMatrix renders a /24 block's daily activity (one Bitmap256
// per day) in the style of the paper's Figure 6: x = time, y = address
// space, with the 256 hosts folded into rows row-groups and shaded by
// density.
func ActivityMatrix(title string, days []ipv4.Bitmap256, rows int) string {
	if rows <= 0 || rows > 256 {
		rows = 32
	}
	per := 256 / rows
	var b strings.Builder
	if title != "" {
		b.WriteString(title + "\n")
	}
	if len(days) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	// Downsample days to at most 96 columns.
	cols := len(days)
	group := 1
	for cols/group > 96 {
		group++
	}
	for r := 0; r < rows; r++ {
		lo := byte(r * per)
		hi := byte(r*per + per - 1)
		fmt.Fprintf(&b, ".%-3d |", lo)
		for c := 0; c+group <= len(days); c += group {
			active, total := 0, 0
			for g := 0; g < group; g++ {
				active += days[c+g].CountRange(lo, hi)
				total += per
			}
			d := float64(active) / float64(total)
			idx := int(d * float64(len(densityRunes)-1))
			b.WriteByte(densityRunes[idx])
		}
		b.WriteString("|\n")
	}
	fmt.Fprintf(&b, "      %d days, %d hosts/row\n", len(days), per)
	return b.String()
}

// Heatmap renders a 2-D grid (grid[y][x], y=0 at the bottom) with
// density shading.
func Heatmap(title string, grid [][]float64) string {
	var b strings.Builder
	if title != "" {
		b.WriteString(title + "\n")
	}
	maxV := 0.0
	for _, row := range grid {
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
	}
	for y := len(grid) - 1; y >= 0; y-- {
		b.WriteString("|")
		for _, v := range grid[y] {
			if maxV == 0 {
				b.WriteByte(' ')
				continue
			}
			idx := int(v / maxV * float64(len(densityRunes)-1))
			b.WriteByte(densityRunes[idx])
		}
		b.WriteString("|\n")
	}
	return b.String()
}
