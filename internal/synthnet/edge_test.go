package synthnet

import (
	"testing"

	"ipscope/internal/ipv4"
)

func TestWorldHelpers(t *testing.T) {
	w := Generate(TinyConfig())
	// ASOf for a known block and an unknown one.
	b := w.Blocks[0]
	if got := w.ASOf(b.Block); got != b.AS {
		t.Errorf("ASOf = %v, want %v", got, b.AS)
	}
	if got := w.ASOf(ipv4.Block(0xFFFFFF)); got != 0 {
		t.Errorf("ASOf(unknown) = %v, want 0", got)
	}
	if _, ok := w.BlockInfo(ipv4.Block(0xFFFFFF)); ok {
		t.Error("BlockInfo(unknown) should fail")
	}
	// ClientBlocks returns exactly the client-policy subset.
	clients := w.ClientBlocks()
	want := 0
	for _, blk := range w.Blocks {
		if blk.Policy.IsClient() {
			want++
		}
	}
	if len(clients) != want {
		t.Errorf("ClientBlocks = %d, want %d", len(clients), want)
	}
	for _, blk := range clients {
		if !blk.Policy.IsClient() {
			t.Errorf("non-client policy %v in ClientBlocks", blk.Policy)
		}
	}
}

func TestGenerateDefaultsOnZeroConfig(t *testing.T) {
	w := Generate(Config{Seed: 9})
	if len(w.ASes) != DefaultConfig().NumASes {
		t.Errorf("zero config ASes = %d", len(w.ASes))
	}
}

func TestPingablePByClass(t *testing.T) {
	w := Generate(DefaultConfig())
	// Servers and routers must be far more pingable than unused space.
	var serverSum, serverN, unusedSum, unusedN float64
	for _, b := range w.Blocks {
		switch b.Policy {
		case ServerFarm, InfraRouters:
			serverSum += b.PingableP
			serverN++
		case Unused:
			unusedSum += b.PingableP
			unusedN++
		}
	}
	if serverN == 0 || unusedN == 0 {
		t.Skip("classes missing")
	}
	if serverSum/serverN < 0.85 {
		t.Errorf("server pingable mean = %.2f", serverSum/serverN)
	}
	if unusedSum/unusedN > 0.05 {
		t.Errorf("unused pingable mean = %.2f", unusedSum/unusedN)
	}
}
