// Package synthnet generates the synthetic Internet that stands in for
// the proprietary vantage points of the paper (see DESIGN.md,
// "Substitutions"). A World is a deterministic function of a seed: a
// population of Autonomous Systems of different kinds, their routed
// prefixes and /24 blocks, each block's address-assignment policy and
// subscriber population, registry (RIR/country) attribution, reverse-DNS
// naming style and ICMP response behaviour.
//
// The world intentionally encodes the generative mechanisms the paper
// attributes activity patterns to (Section 5): static assignment,
// round-robin pools, long-lease and 24-hour-lease DHCP, gateways that
// aggregate thousands of devices, server farms and router
// infrastructure that never contact a CDN, and unused space.
package synthnet

import (
	"fmt"
	"math/rand"

	"ipscope/internal/bgp"
	"ipscope/internal/ipv4"
	"ipscope/internal/par"
	"ipscope/internal/rdns"
	"ipscope/internal/registry"
	"ipscope/internal/xrand"
)

// ASKind categorizes an Autonomous System's business.
type ASKind uint8

// AS kinds.
const (
	ResidentialISP ASKind = iota
	CellularISP
	University
	Enterprise
	Hoster
	Infrastructure
	numASKinds
)

// String returns the kind name.
func (k ASKind) String() string {
	switch k {
	case ResidentialISP:
		return "residential-isp"
	case CellularISP:
		return "cellular-isp"
	case University:
		return "university"
	case Enterprise:
		return "enterprise"
	case Hoster:
		return "hoster"
	case Infrastructure:
		return "infrastructure"
	}
	return "unknown"
}

// Policy is the address-assignment practice of one /24 block.
type Policy uint8

// Assignment policies. They map directly to the activity-pattern
// classes of the paper's Figure 6 plus non-client classes.
const (
	Unused            Policy = iota // allocated, routed, no hosts
	StaticSparse                    // static assignment, few subscribers (Fig 6a)
	StaticDense                     // static assignment, most addresses used
	DynamicRoundRobin               // pool cycles addresses daily (Fig 6b)
	DynamicLongLease                // DHCP with very long leases (Fig 6c)
	DynamicDaily                    // DHCP with 24h max lease (Fig 6d)
	Gateway                         // NAT/proxy gateways aggregating many devices
	ServerFarm                      // servers; no WWW-client activity
	BotFarm                         // WWW client bots: few IPs, heavy traffic
	InfraRouters                    // router infrastructure (traceroute-visible)
	numPolicies
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case Unused:
		return "unused"
	case StaticSparse:
		return "static-sparse"
	case StaticDense:
		return "static-dense"
	case DynamicRoundRobin:
		return "dynamic-round-robin"
	case DynamicLongLease:
		return "dynamic-long-lease"
	case DynamicDaily:
		return "dynamic-daily"
	case Gateway:
		return "gateway"
	case ServerFarm:
		return "server-farm"
	case BotFarm:
		return "bot-farm"
	case InfraRouters:
		return "infra-routers"
	}
	return "unknown"
}

// IsDynamicPool reports whether the policy assigns addresses from a
// dynamic pool.
func (p Policy) IsDynamicPool() bool {
	return p == DynamicRoundRobin || p == DynamicLongLease || p == DynamicDaily
}

// IsClient reports whether the policy produces WWW-client activity
// visible to a CDN.
func (p Policy) IsClient() bool {
	switch p {
	case StaticSparse, StaticDense, DynamicRoundRobin, DynamicLongLease,
		DynamicDaily, Gateway, BotFarm:
		return true
	}
	return false
}

// AS is one Autonomous System.
type AS struct {
	Num      bgp.ASN
	Kind     ASKind
	Country  registry.Country
	RIR      registry.RIR
	Prefixes []ipv4.Prefix
}

// Block describes one /24 and everything the simulator needs to animate it.
type Block struct {
	Block       ipv4.Block
	AS          bgp.ASN
	Kind        ASKind
	Policy      Policy
	Subscribers int     // subscriber/host population served by the block
	Devices     int     // devices behind the block (≥ Subscribers for gateways)
	PingableP   float64 // probability an assigned address answers ICMP
	RDNS        rdns.NamingStyle
	Seed        uint64 // per-block deterministic stream seed
}

// World is a complete synthetic Internet.
type World struct {
	// Cfg is the (defaults-resolved) configuration the world was
	// generated from; Generate(w.Cfg) reproduces the world exactly,
	// which is how stored observation datasets regenerate their world.
	Cfg      Config
	Seed     uint64
	ASes     []*AS
	Blocks   []*Block
	ByBlock  map[ipv4.Block]int // index into Blocks
	ASIndex  map[bgp.ASN]*AS
	Registry *registry.Table
	// BaseRouting is the day-0 routing table; the simulator layers
	// change events on top of it.
	BaseRouting *bgp.Table
}

// Config controls world generation.
type Config struct {
	Seed uint64
	// NumASes is the number of Autonomous Systems to generate.
	NumASes int
	// MeanBlocksPerAS controls how much address space each AS holds.
	MeanBlocksPerAS int
}

// DefaultConfig returns a laptop-scale world: ~500 ASes, ~8k /24 blocks
// (≈2M addresses of capacity).
func DefaultConfig() Config {
	return Config{Seed: 1, NumASes: 500, MeanBlocksPerAS: 16}
}

// TinyConfig returns a unit-test-scale world.
func TinyConfig() Config {
	return Config{Seed: 1, NumASes: 40, MeanBlocksPerAS: 8}
}

var asKindWeights = []float64{
	ResidentialISP: 0.38,
	CellularISP:    0.12,
	University:     0.12,
	Enterprise:     0.18,
	Hoster:         0.12,
	Infrastructure: 0.08,
}

// policyWeights[kind] gives the block-policy mix for each AS kind.
var policyWeights = [numASKinds][numPolicies]float64{
	ResidentialISP: {Unused: 0.12, StaticSparse: 0.18, DynamicRoundRobin: 0.10,
		DynamicLongLease: 0.40, DynamicDaily: 0.15, Gateway: 0.05},
	CellularISP: {Unused: 0.15, DynamicDaily: 0.35, DynamicLongLease: 0.20,
		Gateway: 0.30},
	University: {Unused: 0.18, StaticSparse: 0.40, StaticDense: 0.12,
		DynamicRoundRobin: 0.30},
	Enterprise:     {Unused: 0.35, StaticSparse: 0.50, ServerFarm: 0.15},
	Hoster:         {Unused: 0.15, ServerFarm: 0.55, BotFarm: 0.30},
	Infrastructure: {Unused: 0.30, InfraRouters: 0.70},
}

// Generate builds a deterministic world from cfg.
func Generate(cfg Config) *World {
	if cfg.NumASes <= 0 {
		cfg.NumASes = DefaultConfig().NumASes
	}
	if cfg.MeanBlocksPerAS <= 0 {
		cfg.MeanBlocksPerAS = DefaultConfig().MeanBlocksPerAS
	}
	r := xrand.New(cfg.Seed, "synthnet")
	w := &World{
		Cfg:     cfg,
		Seed:    cfg.Seed,
		ByBlock: make(map[ipv4.Block]int),
		ASIndex: make(map[bgp.ASN]*AS),
	}

	countryWeights := make([]float64, len(registry.Countries))
	for i, c := range registry.Countries {
		countryWeights[i] = c.Weight
	}

	nextBlock := uint32(0x010000) // start allocating at 1.0.0.0/24
	var allocs []registry.Allocation
	routing := bgp.NewTable()

	for i := 0; i < cfg.NumASes; i++ {
		ci := registry.Countries[xrand.WeightedChoice(r, countryWeights)]
		kind := ASKind(xrand.WeightedChoice(r, asKindWeights))
		as := &AS{
			Num:     bgp.ASN(64500 + i),
			Kind:    kind,
			Country: ci.Code,
			RIR:     ci.RIR,
		}
		// Total /24 blocks for this AS: geometric-ish around the mean.
		nblocks := 1 + xrand.Poisson(r, float64(cfg.MeanBlocksPerAS-1))
		if nblocks > 4096 {
			nblocks = 4096
		}
		// Carve the run into routed prefixes of /24../20.
		remaining := nblocks
		for remaining > 0 {
			size := 1 << uint(r.Intn(5)) // 1,2,4,8,16 blocks => /24../20
			if size > remaining {
				size = remaining
			}
			// Round size down to a power of two for CIDR alignment.
			for size&(size-1) != 0 {
				size &= size - 1
			}
			// Align the start.
			for nextBlock%uint32(size) != 0 {
				nextBlock++
			}
			bits := 24
			for s := size; s > 1; s >>= 1 {
				bits--
			}
			p := ipv4.MustNewPrefix(ipv4.Block(nextBlock).First(), bits)
			as.Prefixes = append(as.Prefixes, p)
			routing.Insert(bgp.Route{Prefix: p, Origin: as.Num})
			allocs = append(allocs, registry.Allocation{
				Prefix: p, Country: as.Country, RIR: as.RIR,
			})
			for j := 0; j < size; j++ {
				blk := ipv4.Block(nextBlock + uint32(j))
				w.addBlock(blk, as, ci, r)
			}
			nextBlock += uint32(size)
			remaining -= size
		}
		w.ASes = append(w.ASes, as)
		w.ASIndex[as.Num] = as
	}
	// Per-block stream seeds are a pure hash of (world seed, block), so
	// they derive across a worker pool after the sequential topology
	// draws above; the result is identical for any worker count.
	par.ForEach(len(w.Blocks), 0, func(i int) {
		b := w.Blocks[i]
		b.Seed = xrand.Derive(w.Seed, fmt.Sprintf("block/%d", b.Block))
	})
	w.Registry = registry.NewTable(allocs)
	w.BaseRouting = routing
	return w
}

func (w *World) addBlock(blk ipv4.Block, as *AS, ci registry.CountryInfo, r *rand.Rand) {
	weights := policyWeights[as.Kind]
	pol := Policy(xrand.WeightedChoice(r, weights[:]))
	b := &Block{
		Block:  blk,
		AS:     as.Num,
		Kind:   as.Kind,
		Policy: pol,
		// Seed is derived in a parallel pass at the end of Generate.
	}
	switch pol {
	case Unused:
		b.Subscribers = 0
	case StaticSparse:
		b.Subscribers = 8 + r.Intn(72)
	case StaticDense:
		b.Subscribers = 150 + r.Intn(84)
	case DynamicRoundRobin:
		b.Subscribers = 20 + r.Intn(100) // underutilized pool
	case DynamicLongLease:
		b.Subscribers = 120 + r.Intn(120)
	case DynamicDaily:
		// A third of 24h-lease pools are heavily oversubscribed
		// (CGN-like), saturating the /24 every day — the population
		// behind the paper's 100%-STU cluster (Fig. 8c).
		if r.Float64() < 0.4 {
			b.Subscribers = 400 + r.Intn(400)
		} else {
			b.Subscribers = 160 + r.Intn(140)
		}
	case Gateway:
		b.Subscribers = 2 + r.Intn(7)
		b.Devices = 1000 + r.Intn(19000)
	case ServerFarm:
		b.Subscribers = 20 + r.Intn(180)
	case BotFarm:
		b.Subscribers = 1 + r.Intn(5)
	case InfraRouters:
		b.Subscribers = 4 + r.Intn(28)
	}
	if b.Devices == 0 {
		b.Devices = b.Subscribers
	}
	b.PingableP = pingableP(pol, ci.ICMPResponseRate, r)
	b.RDNS = rdnsStyle(pol, r)
	w.ByBlock[blk] = len(w.Blocks)
	w.Blocks = append(w.Blocks, b)
}

func pingableP(p Policy, countryRate float64, r *rand.Rand) float64 {
	switch p {
	case ServerFarm, InfraRouters:
		return 0.9 + r.Float64()*0.1
	case Gateway:
		return 0.8 + r.Float64()*0.15
	case Unused:
		return 0.02 * r.Float64() // the odd tarpit / middlebox
	default:
		// Residential CPE: country-level prior with per-block jitter.
		v := countryRate + (r.Float64()-0.5)*0.2
		if v < 0.05 {
			v = 0.05
		}
		if v > 0.95 {
			v = 0.95
		}
		return v
	}
}

func rdnsStyle(p Policy, r *rand.Rand) rdns.NamingStyle {
	switch {
	case p.IsDynamicPool():
		if r.Float64() < 0.75 {
			return rdns.StyleDynamic
		}
		return rdns.StyleGeneric
	case p == StaticSparse || p == StaticDense:
		if r.Float64() < 0.65 {
			return rdns.StyleStatic
		}
		return rdns.StyleGeneric
	case p == Unused:
		return rdns.StyleNone
	default:
		if r.Float64() < 0.5 {
			return rdns.StyleGeneric
		}
		return rdns.StyleNone
	}
}

// BlockInfo returns the block descriptor for blk, if it exists.
func (w *World) BlockInfo(blk ipv4.Block) (*Block, bool) {
	i, ok := w.ByBlock[blk]
	if !ok {
		return nil, false
	}
	return w.Blocks[i], true
}

// ASOf returns the origin AS of blk in the base routing table.
func (w *World) ASOf(blk ipv4.Block) bgp.ASN {
	if b, ok := w.BlockInfo(blk); ok {
		return b.AS
	}
	return 0
}

// NumBlocks returns the number of allocated /24 blocks.
func (w *World) NumBlocks() int { return len(w.Blocks) }

// ClientBlocks returns the blocks whose policy produces CDN-visible
// client activity.
func (w *World) ClientBlocks() []*Block {
	var out []*Block
	for _, b := range w.Blocks {
		if b.Policy.IsClient() {
			out = append(out, b)
		}
	}
	return out
}

// RDNSZone returns the PTR zone for a block.
func (w *World) RDNSZone(b *Block) *rdns.Zone {
	return rdns.NewZone(b.Block, b.RDNS, "", 0.1, b.Seed)
}

// Stats summarizes a world for reporting.
type Stats struct {
	ASes, Blocks  int
	ByKind        map[ASKind]int
	ByPolicy      map[Policy]int
	ClientBlocks  int
	TotalCapacity int // subscribers across all blocks
}

// Summarize computes world statistics.
func (w *World) Summarize() Stats {
	s := Stats{
		ASes:     len(w.ASes),
		Blocks:   len(w.Blocks),
		ByKind:   make(map[ASKind]int),
		ByPolicy: make(map[Policy]int),
	}
	for _, as := range w.ASes {
		s.ByKind[as.Kind]++
	}
	for _, b := range w.Blocks {
		s.ByPolicy[b.Policy]++
		s.TotalCapacity += b.Subscribers
		if b.Policy.IsClient() {
			s.ClientBlocks++
		}
	}
	return s
}
