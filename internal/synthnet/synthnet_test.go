package synthnet

import (
	"testing"

	"ipscope/internal/ipv4"
	"ipscope/internal/rdns"
)

func TestGenerateDeterministic(t *testing.T) {
	w1 := Generate(TinyConfig())
	w2 := Generate(TinyConfig())
	if w1.NumBlocks() != w2.NumBlocks() || len(w1.ASes) != len(w2.ASes) {
		t.Fatal("generation not deterministic in size")
	}
	for i, b := range w1.Blocks {
		o := w2.Blocks[i]
		if b.Block != o.Block || b.Policy != o.Policy || b.Subscribers != o.Subscribers || b.Seed != o.Seed {
			t.Fatalf("block %d differs: %+v vs %+v", i, b, o)
		}
	}
	w3 := Generate(Config{Seed: 2, NumASes: 40, MeanBlocksPerAS: 8})
	same := true
	for i := range w1.Blocks {
		if i >= len(w3.Blocks) || w1.Blocks[i].Policy != w3.Blocks[i].Policy {
			same = false
			break
		}
	}
	if same && len(w1.Blocks) == len(w3.Blocks) {
		t.Error("different seeds produced identical worlds")
	}
}

func TestGenerateStructure(t *testing.T) {
	w := Generate(TinyConfig())
	if len(w.ASes) != 40 {
		t.Fatalf("ASes = %d", len(w.ASes))
	}
	if w.NumBlocks() == 0 {
		t.Fatal("no blocks")
	}
	// Every block indexed, attributed to an AS, routed and registered.
	for _, b := range w.Blocks {
		info, ok := w.BlockInfo(b.Block)
		if !ok || info != b {
			t.Fatalf("BlockInfo broken for %v", b.Block)
		}
		as, ok := w.ASIndex[b.AS]
		if !ok {
			t.Fatalf("block %v has unknown AS %v", b.Block, b.AS)
		}
		covered := false
		for _, p := range as.Prefixes {
			if p.Contains(b.Block.First()) {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("block %v not covered by its AS prefixes", b.Block)
		}
		if got := w.BaseRouting.OriginOf(b.Block.First()); got != b.AS {
			t.Fatalf("routing origin %v != %v for %v", got, b.AS, b.Block)
		}
		if _, ok := w.Registry.LookupBlock(b.Block); !ok {
			t.Fatalf("block %v not registered", b.Block)
		}
		if w.Registry.CountryOf(b.Block) != as.Country {
			t.Fatalf("registry country mismatch for %v", b.Block)
		}
	}
}

func TestGenerateNoOverlappingPrefixes(t *testing.T) {
	w := Generate(TinyConfig())
	seen := map[ipv4.Block]bool{}
	for _, as := range w.ASes {
		for _, p := range as.Prefixes {
			p.Blocks(func(b ipv4.Block) {
				if seen[b] {
					t.Fatalf("block %v allocated twice", b)
				}
				seen[b] = true
			})
		}
	}
	if len(seen) != w.NumBlocks() {
		t.Fatalf("prefix blocks %d != world blocks %d", len(seen), w.NumBlocks())
	}
}

func TestPolicyInvariants(t *testing.T) {
	w := Generate(DefaultConfig())
	for _, b := range w.Blocks {
		if b.Policy == Unused && b.Subscribers != 0 {
			t.Fatalf("unused block %v has subscribers", b.Block)
		}
		if b.Policy != Unused && b.Subscribers <= 0 {
			t.Fatalf("%v block %v has no subscribers", b.Policy, b.Block)
		}
		if b.Devices < b.Subscribers {
			t.Fatalf("devices < subscribers on %v", b.Block)
		}
		if b.Policy == Gateway && b.Devices < 1000 {
			t.Fatalf("gateway block %v has few devices", b.Block)
		}
		if b.PingableP < 0 || b.PingableP > 1 {
			t.Fatalf("bad pingable prob %v", b.PingableP)
		}
		if b.Policy == Unused && b.RDNS != rdns.StyleNone {
			t.Fatalf("unused block has PTR records")
		}
	}
}

func TestPolicyMixMatchesKinds(t *testing.T) {
	w := Generate(DefaultConfig())
	s := w.Summarize()
	if s.ClientBlocks == 0 {
		t.Fatal("no client blocks")
	}
	// The dominant client policies must all be present at scale.
	for _, p := range []Policy{StaticSparse, DynamicRoundRobin, DynamicLongLease,
		DynamicDaily, Gateway, ServerFarm, Unused} {
		if s.ByPolicy[p] == 0 {
			t.Errorf("no blocks with policy %v", p)
		}
	}
	// Client blocks should dominate but not exhaust the space.
	frac := float64(s.ClientBlocks) / float64(s.Blocks)
	if frac < 0.4 || frac > 0.95 {
		t.Errorf("client block fraction = %.2f", frac)
	}
	if s.TotalCapacity == 0 {
		t.Error("zero capacity")
	}
}

func TestPolicyStringAndPredicates(t *testing.T) {
	if !DynamicDaily.IsDynamicPool() || StaticSparse.IsDynamicPool() {
		t.Error("IsDynamicPool wrong")
	}
	if !Gateway.IsClient() || ServerFarm.IsClient() || Unused.IsClient() {
		t.Error("IsClient wrong")
	}
	for p := Unused; p < numPolicies; p++ {
		if p.String() == "unknown" {
			t.Errorf("policy %d lacks a name", p)
		}
	}
	for k := ResidentialISP; k < numASKinds; k++ {
		if k.String() == "unknown" {
			t.Errorf("kind %d lacks a name", k)
		}
	}
}

func TestRDNSZoneStyles(t *testing.T) {
	w := Generate(DefaultConfig())
	dynTagged, dynTotal := 0, 0
	statTagged, statTotal := 0, 0
	for _, b := range w.Blocks[:min(len(w.Blocks), 800)] {
		z := w.RDNSZone(b)
		tag := rdns.ClassifyZone(z, 0.6)
		if b.Policy.IsDynamicPool() {
			dynTotal++
			if tag == rdns.Dynamic {
				dynTagged++
			}
			if tag == rdns.Static {
				t.Errorf("dynamic block %v tagged static", b.Block)
			}
		}
		if b.Policy == StaticSparse || b.Policy == StaticDense {
			statTotal++
			if tag == rdns.Static {
				statTagged++
			}
			if tag == rdns.Dynamic {
				t.Errorf("static block %v tagged dynamic", b.Block)
			}
		}
	}
	if dynTotal == 0 || statTotal == 0 {
		t.Fatal("sample has no static/dynamic blocks")
	}
	if float64(dynTagged)/float64(dynTotal) < 0.5 {
		t.Errorf("only %d/%d dynamic blocks taggable", dynTagged, dynTotal)
	}
	if float64(statTagged)/float64(statTotal) < 0.4 {
		t.Errorf("only %d/%d static blocks taggable", statTagged, statTotal)
	}
}
