package query

import (
	"fmt"
	"sort"

	"ipscope/internal/bgp"
	"ipscope/internal/cdnlog"
	"ipscope/internal/core"
	"ipscope/internal/ipv4"
	"ipscope/internal/useragent"
)

// This file defines the mergeable ("partial") forms of the index's
// aggregate views — the contract behind horizontal sharding. A shard
// built over one contiguous slice of the /24 block space computes the
// same aggregates as a single node, but only over its slice; the
// router (internal/cluster) gathers the partials from every shard and
// folds them back together. The hard requirement, enforced by
// TestClusterEquivalence, is that the fold is EXACT: finalizing merged
// partials must be byte-identical to the single-node answer, for any
// shard count. Three disciplines make that possible:
//
//   - counts stay integers until Finalize. A block-range partition
//     splits every address set into disjoint slices, so cardinalities,
//     diff counts and intersection counts sum exactly; every derived
//     float (churn percentages, recapture estimates, averages) is
//     computed from the merged integers with the same expression the
//     single-node path uses.
//
//   - order-sensitive float folds ship their operands. Per-AS and
//     per-prefix total-hits accumulate per-/24 float values in
//     ascending block order; a partial carries the per-block values
//     (still in block order) and the merge concatenates the shards'
//     ascending ranges and refolds left to right — the exact single-node
//     addition sequence, not a shard-grouped regrouping of it.
//
//   - distinct counts that cross shard boundaries merge as sets. An AS
//     can span shards, so per-snapshot AS activity travels as sorted
//     ASN lists (united, then counted), and unique-UA estimation
//     travels as HLL registers, whose register-wise-max union is
//     commutative and associative by construction (see
//     internal/useragent's merge algebra tests).

// SeriesPartial is the mergeable form of one cdnlog.DatasetSummary
// (the daily or weekly row of Table 1), restricted to a shard's slice
// of the block space. Union and per-snapshot cardinalities are exact
// integers; per-snapshot AS activity is carried as sorted ASN sets
// because one AS's blocks may be split across shards.
type SeriesPartial struct {
	Snapshots   int `json:"snapshots"`
	UnionIPs    int `json:"unionIPs"`
	UnionBlocks int `json:"unionBlocks"`
	IPSum       int `json:"ipSum"`
	BlockSum    int `json:"blockSum"`
	// SnapASes[i] is the sorted set of origin ASNs with activity in
	// snapshot i within this partial's slice (0 = unrouted, excluded,
	// matching cdnlog.Summarize).
	SnapASes [][]uint32 `json:"snapASes"`
}

// seriesPartialOf computes the partial for a snapshot series whose
// cross-snapshot union has already been materialized.
func seriesPartialOf(snaps []*ipv4.Set, union *ipv4.Set, asOf func(ipv4.Block) bgp.ASN) SeriesPartial {
	p := SeriesPartial{
		Snapshots:   len(snaps),
		UnionIPs:    union.Len(),
		UnionBlocks: union.NumBlocks(),
		SnapASes:    make([][]uint32, len(snaps)),
	}
	for i, s := range snaps {
		p.IPSum += s.Len()
		p.BlockSum += s.NumBlocks()
		p.SnapASes[i] = snapshotASes(s, asOf)
	}
	return p
}

// snapshotASes returns the sorted distinct origin ASNs active in s.
func snapshotASes(s *ipv4.Set, asOf func(ipv4.Block) bgp.ASN) []uint32 {
	seen := make(map[uint32]bool)
	s.ForEachBlock(func(blk ipv4.Block, _ *ipv4.Bitmap256) {
		if as := asOf(blk); as != 0 {
			seen[uint32(as)] = true
		}
	})
	out := make([]uint32, 0, len(seen))
	for as := range seen {
		out = append(out, as)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (p *SeriesPartial) merge(o *SeriesPartial) error {
	if p.Snapshots != o.Snapshots {
		return fmt.Errorf("query: series partials disagree on snapshot count (%d vs %d)", p.Snapshots, o.Snapshots)
	}
	p.UnionIPs += o.UnionIPs
	p.UnionBlocks += o.UnionBlocks
	p.IPSum += o.IPSum
	p.BlockSum += o.BlockSum
	for i := range p.SnapASes {
		p.SnapASes[i] = unionSortedU32(p.SnapASes[i], o.SnapASes[i])
	}
	return nil
}

// finalize derives the DatasetSummary, field for field the computation
// cdnlog.Summarize performs over the equivalent snapshot series.
func (p *SeriesPartial) finalize() cdnlog.DatasetSummary {
	out := cdnlog.DatasetSummary{Snapshots: p.Snapshots}
	if p.Snapshots == 0 {
		return out
	}
	asUnion := make(map[uint32]bool)
	asSum := 0
	for _, snap := range p.SnapASes {
		asSum += len(snap)
		for _, as := range snap {
			asUnion[as] = true
		}
	}
	out.TotalIPs = p.UnionIPs
	out.AvgIPs = p.IPSum / p.Snapshots
	out.TotalBlocks = p.UnionBlocks
	out.AvgBlocks = p.BlockSum / p.Snapshots
	out.TotalASes = len(asUnion)
	out.AvgASes = asSum / p.Snapshots
	return out
}

func (p *SeriesPartial) clone() SeriesPartial {
	out := *p
	out.SnapASes = make([][]uint32, len(p.SnapASes))
	for i, s := range p.SnapASes {
		out.SnapASes[i] = append([]uint32(nil), s...)
	}
	return out
}

// SummaryPartial is one shard's mergeable share of the dataset-level
// summary: identity fields every shard agrees on, integer counters
// restricted to the shard's block slice, and the set/sketch-valued
// pieces whose distinct counts cross shard boundaries. Merging the
// partials of a complete partition and finalizing yields the exact
// single-node Summary.
type SummaryPartial struct {
	// Identity (equal on every shard; Merge rejects mismatches).
	Seed        uint64 `json:"seed"`
	NumASes     int    `json:"numASes"`
	WorldBlocks int    `json:"worldBlocks"`
	Days        int    `json:"days"`
	DailyStart  int    `json:"dailyStart"`
	DailyLen    int    `json:"dailyLen"`
	Weeks       int    `json:"weeks"`

	// Shard-sliced cardinalities (additive).
	ActiveBlocks int `json:"activeBlocks"`
	DailyUnion   int `json:"dailyUnion"`
	YearUnion    int `json:"yearUnion"`
	ICMPUnion    int `json:"icmpUnion"`

	Daily  SeriesPartial `json:"daily"`
	Weekly SeriesPartial `json:"weekly"`

	// Capture–recapture inputs: |CDN campaign-month union| and its
	// overlap with the ICMP union, both within the slice (additive).
	CDNMonth int `json:"cdnMonth"`
	CDNBoth  int `json:"cdnBoth"`

	// Churn raw material: per-day slice cardinalities and per-transition
	// up/down event counts (additive element-wise).
	DayLens []int `json:"dayLens"`
	Ups     []int `json:"ups"`
	Downs   []int `json:"downs"`

	// Year churn inputs: |week 0| and |last week \ week 0| (additive).
	WeekBase       int `json:"weekBase"`
	WeekLastAppear int `json:"weekLastAppear"`

	// UA sampling aggregate: total samples plus the union HLL sketch of
	// every block's UA registers (register-wise max — exact under any
	// merge order or grouping).
	UASamples   int    `json:"uaSamples"`
	UAPrecision uint8  `json:"uaPrecision,omitempty"`
	UARegisters []byte `json:"uaRegisters,omitempty"`
}

// Merge folds o into p. Both partials must describe the same dataset
// geometry; the caller is responsible for merging each shard exactly
// once over a complete, disjoint partition.
func (p *SummaryPartial) Merge(o *SummaryPartial) error {
	if p.Seed != o.Seed || p.NumASes != o.NumASes || p.WorldBlocks != o.WorldBlocks ||
		p.Days != o.Days || p.DailyStart != o.DailyStart || p.DailyLen != o.DailyLen || p.Weeks != o.Weeks {
		return fmt.Errorf("query: summary partials describe different datasets")
	}
	if len(p.DayLens) != len(o.DayLens) || len(p.Ups) != len(o.Ups) || len(p.Downs) != len(o.Downs) {
		return fmt.Errorf("query: summary partials disagree on window geometry")
	}
	if err := p.Daily.merge(&o.Daily); err != nil {
		return err
	}
	if err := p.Weekly.merge(&o.Weekly); err != nil {
		return err
	}
	p.ActiveBlocks += o.ActiveBlocks
	p.DailyUnion += o.DailyUnion
	p.YearUnion += o.YearUnion
	p.ICMPUnion += o.ICMPUnion
	p.CDNMonth += o.CDNMonth
	p.CDNBoth += o.CDNBoth
	for i := range p.DayLens {
		p.DayLens[i] += o.DayLens[i]
	}
	for i := range p.Ups {
		p.Ups[i] += o.Ups[i]
		p.Downs[i] += o.Downs[i]
	}
	p.WeekBase += o.WeekBase
	p.WeekLastAppear += o.WeekLastAppear
	p.UASamples += o.UASamples
	switch {
	case len(o.UARegisters) == 0:
	case len(p.UARegisters) == 0:
		p.UAPrecision = o.UAPrecision
		p.UARegisters = append([]byte(nil), o.UARegisters...)
	case p.UAPrecision != o.UAPrecision:
		return fmt.Errorf("query: summary partials carry HLL sketches of different precision (%d vs %d)", p.UAPrecision, o.UAPrecision)
	default:
		for i, v := range o.UARegisters {
			if v > p.UARegisters[i] {
				p.UARegisters[i] = v
			}
		}
	}
	return nil
}

// MergeSummaryPartials merges a complete partition's partials (without
// mutating them) into one combined partial.
func MergeSummaryPartials(parts []SummaryPartial) (SummaryPartial, error) {
	if len(parts) == 0 {
		return SummaryPartial{}, fmt.Errorf("query: no summary partials to merge")
	}
	acc := parts[0].clone()
	for i := 1; i < len(parts); i++ {
		if err := acc.Merge(&parts[i]); err != nil {
			return SummaryPartial{}, err
		}
	}
	return acc, nil
}

func (p *SummaryPartial) clone() SummaryPartial {
	out := *p
	out.Daily = p.Daily.clone()
	out.Weekly = p.Weekly.clone()
	out.DayLens = append([]int(nil), p.DayLens...)
	out.Ups = append([]int(nil), p.Ups...)
	out.Downs = append([]int(nil), p.Downs...)
	out.UARegisters = append([]byte(nil), p.UARegisters...)
	return out
}

// Finalize derives the serving Summary from the partial. Every float is
// computed from merged integers (or the union sketch) with the exact
// expressions the monolithic build uses, so Finalize over merged
// partials reproduces the single-node Summary byte for byte.
func (p *SummaryPartial) Finalize() Summary {
	s := Summary{
		Seed:         p.Seed,
		NumASes:      p.NumASes,
		WorldBlocks:  p.WorldBlocks,
		Days:         p.Days,
		DailyStart:   p.DailyStart,
		DailyLen:     p.DailyLen,
		Weeks:        p.Weeks,
		ActiveBlocks: p.ActiveBlocks,
		DailyUnion:   p.DailyUnion,
		YearUnion:    p.YearUnion,
		ICMPUnion:    p.ICMPUnion,
		Daily:        p.Daily.finalize(),
		Weekly:       p.Weekly.finalize(),
	}

	if est, err := core.Recapture(p.CDNMonth, p.ICMPUnion, p.CDNBoth); err == nil {
		s.Recapture = RecaptureSummary{
			Valid: true, N1: est.N1, N2: est.N2, Both: est.Both,
			LP: est.LincolnPetersen, Chapman: est.Chapman, SE: est.SE,
			CI95Lo: est.CI95Lo, CI95Hi: est.CI95Hi,
		}
	}

	// The per-transition percentage sequence matches core.ChurnSeries
	// over the unsharded snapshots: same integers, same expressions,
	// same (day-order) accumulation.
	var upSum, upPct, downPct float64
	for i := range p.Ups {
		upSum += float64(p.Ups[i])
		if next := p.DayLens[i+1]; next > 0 {
			upPct += 100 * float64(p.Ups[i]) / float64(next)
		}
		if prev := p.DayLens[i]; prev > 0 {
			downPct += 100 * float64(p.Downs[i]) / float64(prev)
		}
	}
	if n := len(p.Ups); n > 0 {
		s.Churn.MeanDailyUpEvents = upSum / float64(n)
		s.Churn.MeanDailyUpPct = upPct / float64(n)
		s.Churn.MeanDailyDownPct = downPct / float64(n)
	}
	if p.Weeks > 0 && p.WeekBase > 0 {
		s.Churn.YearChurnFrac = float64(p.WeekLastAppear) / float64(p.WeekBase)
	}

	s.UA.Samples = p.UASamples
	if len(p.UARegisters) > 0 {
		if h, err := useragent.HLLFromRegisters(p.UAPrecision, p.UARegisters); err == nil {
			s.UA.UniqueUA = h.Estimate()
		}
	}
	return s
}

// ASPartial is one shard's mergeable share of an AS footprint. The
// world-derived identity fields are identical on every shard (each
// regenerates the full world); activity counters cover only the
// shard's slice, and Hits carries the per-/24 total-hits values in
// ascending block order so the cross-shard fold can replay the exact
// single-node float accumulation sequence.
type ASPartial struct {
	// Found reports whether this shard knows the AS at all: every world
	// AS on every shard, plus the synthetic "unrouted" AS 0 on shards
	// whose slice has activity outside the routing table.
	Found        bool      `json:"found"`
	AS           uint32    `json:"as"`
	Kind         string    `json:"kind,omitempty"`
	Country      string    `json:"country,omitempty"`
	RIR          string    `json:"rir,omitempty"`
	Prefixes     []string  `json:"prefixes,omitempty"`
	RoutedBlocks int       `json:"routedBlocks"`
	ActiveBlocks int       `json:"activeBlocks"`
	ActiveAddrs  int       `json:"activeAddrs"`
	Hits         []float64 `json:"hits,omitempty"`
}

// ASPartial returns this index's mergeable share of asn's footprint.
func (x *Index) ASPartial(asn bgp.ASN) ASPartial {
	v, ok := x.byAS[asn]
	if !ok {
		return ASPartial{AS: uint32(asn)}
	}
	p := ASPartial{
		Found:        true,
		AS:           v.AS,
		Kind:         v.Kind,
		Country:      v.Country,
		RIR:          v.RIR,
		Prefixes:     v.Prefixes,
		RoutedBlocks: v.RoutedBlocks,
		ActiveBlocks: v.ActiveBlocks,
		ActiveAddrs:  v.ActiveAddrs,
	}
	for i := range x.blocks {
		if bd := &x.blocks[i]; bd.view.AS == p.AS {
			p.Hits = append(p.Hits, bd.view.TotalHits)
		}
	}
	return p
}

// MergeASPartials folds a complete partition's AS partials (in
// ascending shard-range order) into the single-node ASView. ok is
// false when no shard knows the AS — the routed 404 case.
func MergeASPartials(parts []ASPartial) (ASView, bool) {
	var v ASView
	found := false
	for _, p := range parts {
		if !p.Found {
			continue
		}
		if !found {
			// The lowest shard that knows the AS supplies the identity
			// fields — for world ASes they are identical everywhere; for
			// the synthetic unrouted entry this is the shard holding the
			// globally first unrouted active block, matching the
			// single-node fold's creation site.
			v = ASView{
				AS: p.AS, Kind: p.Kind, Country: p.Country, RIR: p.RIR,
				Prefixes: p.Prefixes, RoutedBlocks: p.RoutedBlocks,
			}
			found = true
		}
		v.ActiveBlocks += p.ActiveBlocks
		v.ActiveAddrs += p.ActiveAddrs
		for _, h := range p.Hits {
			v.TotalHits += h
		}
	}
	return v, found
}

// PrefixPartial is one shard's mergeable share of a CIDR aggregate:
// integer counters plus the per-active-block STU and total-hits values
// (ascending block order) the merged view refolds, and this shard's
// leading BlockList candidates.
type PrefixPartial struct {
	Prefix       string      `json:"prefix"`
	Blocks       int         `json:"blocks"`
	ActiveBlocks int         `json:"activeBlocks"`
	ActiveAddrs  int         `json:"activeAddrs"`
	STU          []float64   `json:"stu,omitempty"`
	Hits         []float64   `json:"hits,omitempty"`
	Origins      []uint32    `json:"origins,omitempty"`
	BlockList    []BlockView `json:"blockList,omitempty"`
}

// PrefixPartial returns this index's mergeable share of the aggregate
// over p's blocks. maxBlocks caps the embedded BlockList candidates
// exactly as Prefix does.
func (x *Index) PrefixPartial(p ipv4.Prefix, maxBlocks int) (PrefixPartial, error) {
	if err := CheckPrefix(p); err != nil {
		return PrefixPartial{}, err
	}
	out := PrefixPartial{Prefix: p.String(), Blocks: p.NumBlocks()}
	first := uint32(p.FirstBlock())
	last := first + uint32(p.NumBlocks()) - 1
	lo, _ := x.blockIndex(ipv4.Block(first))
	origins := map[uint32]bool{}
	for i := lo; i < len(x.keys) && uint32(x.keys[i]) <= last; i++ {
		bd := &x.blocks[i]
		out.ActiveBlocks++
		out.ActiveAddrs += bd.view.FD
		out.STU = append(out.STU, bd.view.STU)
		out.Hits = append(out.Hits, bd.view.TotalHits)
		origins[bd.view.AS] = true
		if maxBlocks > 0 && len(out.BlockList) < maxBlocks {
			out.BlockList = append(out.BlockList, bd.view)
		}
	}
	out.Origins = make([]uint32, 0, len(origins))
	for as := range origins {
		out.Origins = append(out.Origins, as)
	}
	sort.Slice(out.Origins, func(i, j int) bool { return out.Origins[i] < out.Origins[j] })
	return out, nil
}

// MergePrefixPartials folds a partition's prefix partials (ascending
// shard-range order) into the single-node PrefixView. Every partial
// must describe the same prefix; maxBlocks must match the per-shard
// cap.
func MergePrefixPartials(parts []PrefixPartial, maxBlocks int) (PrefixView, error) {
	if len(parts) == 0 {
		return PrefixView{}, fmt.Errorf("query: no prefix partials to merge")
	}
	v := PrefixView{Prefix: parts[0].Prefix, Blocks: parts[0].Blocks}
	origins := map[uint32]bool{}
	stuSum := 0.0
	for _, p := range parts {
		if p.Prefix != v.Prefix {
			return PrefixView{}, fmt.Errorf("query: prefix partials describe %s and %s", v.Prefix, p.Prefix)
		}
		v.ActiveBlocks += p.ActiveBlocks
		v.ActiveAddrs += p.ActiveAddrs
		for _, stu := range p.STU {
			stuSum += stu
		}
		for _, h := range p.Hits {
			v.TotalHits += h
		}
		for _, as := range p.Origins {
			origins[as] = true
		}
		for _, bv := range p.BlockList {
			if maxBlocks > 0 && len(v.BlockList) < maxBlocks {
				v.BlockList = append(v.BlockList, bv)
			}
		}
	}
	if maxBlocks > 0 && v.ActiveBlocks > maxBlocks {
		v.Truncated = true
	}
	if v.ActiveBlocks > 0 {
		v.MeanSTU = stuSum / float64(v.ActiveBlocks)
	}
	v.Origins = make([]uint32, 0, len(origins))
	for as := range origins {
		v.Origins = append(v.Origins, as)
	}
	sort.Slice(v.Origins, func(i, j int) bool { return v.Origins[i] < v.Origins[j] })
	return v, nil
}

// unionSortedU32 merges two sorted, duplicate-free slices.
func unionSortedU32(a, b []uint32) []uint32 {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return append([]uint32(nil), b...)
	}
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
