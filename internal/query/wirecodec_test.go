package query

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// wireFixtures returns value/encode/decode triples covering every wire
// codec, with fixtures chosen to exercise the fidelity rules: nil vs
// empty slices, negative ints, NaN/Inf floats, empty and non-ASCII
// strings.
type wireFixture struct {
	name   string
	value  any
	encode func(b []byte) []byte
	decode func(p []byte) (any, []byte, error)
}

func wireFixtures() []wireFixture {
	var fx []wireFixture
	add := func(name string, value any, encode func([]byte) []byte, decode func([]byte) (any, []byte, error)) {
		fx = append(fx, wireFixture{name, value, encode, decode})
	}

	for _, v := range []BlockView{
		{},
		{Block: "198.51.100.0/24", AS: 64500, Prefix: "198.51.0.0/16", Country: "DE",
			RIR: "RIPE", RDNS: "dsl-pool", Pattern: "dense", FD: 201, STU: 0.75,
			ActiveDays: 12, TotalHits: 9000.5, UASamples: 40, UAUnique: 17.2},
	} {
		v := v
		add("block/"+v.Block, v,
			func(b []byte) []byte { return AppendBlockViewWire(b, &v) },
			func(p []byte) (any, []byte, error) { w, rest, err := DecodeBlockViewWire(p); return w, rest, err })
	}

	for _, v := range []AddrView{
		{FirstDay: -1, LastDay: -1},
		{Addr: "198.51.100.7", Block: "198.51.100.0/24", AS: 64500, Prefix: "198.51.0.0/16",
			Country: "JP", RIR: "APNIC", RDNS: "cable", Pattern: "sparse", Active: true,
			ActiveDays: 3, FirstDay: 0, LastDay: 83, Timeline: "##..#", Hits: 12.5,
			MeanDailyHits: 0.25, ICMPResponder: true, Server: true, Router: false},
	} {
		v := v
		add("addr/"+v.Addr, v,
			func(b []byte) []byte { return AppendAddrViewWire(b, &v) },
			func(p []byte) (any, []byte, error) { w, rest, err := DecodeAddrViewWire(p); return w, rest, err })
	}

	for i, v := range []SummaryPartial{
		{},
		{Seed: 17, NumASes: 150, WorldBlocks: 1500, Days: 112, DailyStart: 28, DailyLen: 84,
			Weeks: 16, ActiveBlocks: 900, DailyUnion: 120000, YearUnion: 220000, ICMPUnion: 40000,
			Daily: SeriesPartial{Snapshots: 84, UnionIPs: 120000, UnionBlocks: 900, IPSum: 9999999,
				BlockSum: 70000, SnapASes: [][]uint32{{1, 2, 3}, nil, {}}},
			Weekly:   SeriesPartial{Snapshots: 16, SnapASes: [][]uint32{}},
			CDNMonth: 5000, CDNBoth: 1200, DayLens: []int{3, 2, 1}, Ups: []int{0, 5},
			Downs: []int{}, WeekBase: 100, WeekLastAppear: 40, UASamples: 88,
			UAPrecision: 12, UARegisters: []byte{0, 1, 2, 255}},
	} {
		v := v
		add("summary/"+string(rune('a'+i)), v,
			func(b []byte) []byte { return AppendSummaryPartialWire(b, &v) },
			func(p []byte) (any, []byte, error) { w, rest, err := DecodeSummaryPartialWire(p); return w, rest, err })
	}

	for i, v := range []ASPartial{
		{AS: 64500},
		{Found: true, AS: 64501, Kind: "isp", Country: "BR", RIR: "LACNIC",
			Prefixes: []string{"203.0.0.0/12", ""}, RoutedBlocks: 4096, ActiveBlocks: 300,
			ActiveAddrs: 70000, Hits: []float64{0, math.MaxFloat64, -1.5, 0.1}},
		{Found: true, Prefixes: []string{}, Hits: []float64{}},
	} {
		v := v
		add("as/"+string(rune('a'+i)), v,
			func(b []byte) []byte { return AppendASPartialWire(b, &v) },
			func(p []byte) (any, []byte, error) { w, rest, err := DecodeASPartialWire(p); return w, rest, err })
	}

	for i, v := range []PrefixPartial{
		{Prefix: "10.0.0.0/8", Blocks: 65536},
		{Prefix: "198.51.0.0/16", Blocks: 256, ActiveBlocks: 2, ActiveAddrs: 300,
			STU: []float64{0.5, 0.25}, Hits: []float64{10, 20}, Origins: []uint32{64500},
			BlockList: []BlockView{{Block: "198.51.100.0/24", AS: 64500}, {}}},
		{BlockList: []BlockView{}},
	} {
		v := v
		add("prefix/"+string(rune('a'+i)), v,
			func(b []byte) []byte { return AppendPrefixPartialWire(b, &v) },
			func(p []byte) (any, []byte, error) { w, rest, err := DecodePrefixPartialWire(p); return w, rest, err })
	}
	return fx
}

func TestWireCodecRoundTrip(t *testing.T) {
	for _, fx := range wireFixtures() {
		enc := fx.encode(nil)
		got, rest, err := fx.decode(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", fx.name, err)
		}
		if len(rest) != 0 {
			t.Fatalf("%s: %d bytes left over", fx.name, len(rest))
		}
		if !reflect.DeepEqual(got, fx.value) {
			t.Fatalf("%s: round trip = %+v, want %+v", fx.name, got, fx.value)
		}
		// Canonical: re-encoding the decode is the identity.
		if again := fx.encode(nil); string(again) != string(enc) {
			t.Fatalf("%s: re-encode differs", fx.name)
		}
		// Appending to a prefix leaves the prefix alone.
		withPrefix := fx.encode([]byte("prefix"))
		if string(withPrefix[:6]) != "prefix" || string(withPrefix[6:]) != string(enc) {
			t.Fatalf("%s: append clobbered its prefix", fx.name)
		}
	}
}

// TestWireCodecJSONFidelity pins the reason the codec distinguishes nil
// from empty slices: the reconstructed value must marshal to the same
// JSON bytes as the original, and for fields without omitempty
// (ASView.Prefixes is the live case downstream) nil and [] marshal
// differently.
func TestWireCodecJSONFidelity(t *testing.T) {
	for _, fx := range wireFixtures() {
		wantJSON, err := json.Marshal(fx.value)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := fx.decode(fx.encode(nil))
		if err != nil {
			t.Fatalf("%s: %v", fx.name, err)
		}
		gotJSON, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if string(gotJSON) != string(wantJSON) {
			t.Fatalf("%s: JSON after round trip %s, want %s", fx.name, gotJSON, wantJSON)
		}
	}
}

func TestWireCodecTruncated(t *testing.T) {
	for _, fx := range wireFixtures() {
		enc := fx.encode(nil)
		for n := 0; n < len(enc); n++ {
			if _, _, err := fx.decode(enc[:n]); err == nil {
				t.Fatalf("%s: decoding %d of %d bytes succeeded", fx.name, n, len(enc))
			} else if _, ok := err.(*WireError); !ok {
				t.Fatalf("%s[:%d]: error %T (%v), want *WireError", fx.name, n, err, err)
			}
		}
	}
}

func TestWireCodecCorrupt(t *testing.T) {
	v := ASPartial{Found: true, AS: 1, Prefixes: []string{"a"}, Hits: []float64{1}}
	enc := AppendASPartialWire(nil, &v)

	t.Run("bad-bool", func(t *testing.T) {
		bad := append([]byte{}, enc...)
		bad[0] = 2 // Found byte
		if _, _, err := DecodeASPartialWire(bad); err == nil {
			t.Fatal("non-canonical bool accepted")
		}
	})
	t.Run("bad-presence", func(t *testing.T) {
		bad := append([]byte{}, enc...)
		// The Prefixes presence byte follows Found(1)+AS(4)+3 empty
		// strings (4 each).
		bad[1+4+12] = 7
		if _, _, err := DecodeASPartialWire(bad); err == nil {
			t.Fatal("non-canonical presence byte accepted")
		}
	})
	t.Run("huge-count", func(t *testing.T) {
		// A count far beyond the remaining payload must error before
		// allocating.
		bad := append([]byte{}, enc[:1+4+12+1]...)
		bad = append(bad, 0xFF, 0xFF, 0xFF, 0xFF)
		if _, _, err := DecodeASPartialWire(bad); err == nil {
			t.Fatal("implausible count accepted")
		}
	})
}
