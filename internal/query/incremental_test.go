package query

import (
	"bytes"
	"fmt"
	"testing"

	"ipscope/internal/obs"
	"ipscope/internal/sim"
	"ipscope/internal/synthnet"
)

var _ obs.Sink = (*Applier)(nil)

// cutStream returns the length of the emission-order prefix a live
// consumer has seen at the moment day `cut` of the daily window closed:
// everything before the next day event, any week/ICMP event that closes
// later, and the end-of-stream aggregates. The per-series keep counts
// come from TruncateLive itself, so the prefix and the reference
// dataset agree by construction.
func cutStream(events []obs.Event, ref *obs.Data, cut int) int {
	wkKeep, scanKeep := len(ref.Weekly), len(ref.ICMPScans)
	for i, e := range events {
		switch ev := e.(type) {
		case obs.DayEvent:
			if ev.Index >= cut {
				return i
			}
		case obs.WeekEvent:
			if ev.Index >= wkKeep {
				return i
			}
		case obs.ICMPScanEvent:
			if ev.Index >= scanKeep {
				return i
			}
		case obs.BlockStatsEvent, obs.SurfacesEvent:
			return i
		}
	}
	return len(events)
}

// TestApplierEquivalence is the tentpole invariant: applying days 1..N
// of the live stream and publishing must be view-identical — byte for
// byte across summary, block, address, AS and prefix views — to a
// monolithic Build over the dataset truncated to those N days, for
// several N and worker counts. The applier publishes at every cut along
// the way, so later cuts also exercise the clean-block reuse path
// against earlier epochs.
func TestApplierEquivalence(t *testing.T) {
	type variant struct {
		name string
		cfg  sim.Config
		cuts []int
	}
	long := sim.TinyConfig()
	long.Days, long.DailyStart, long.DailyLen = 98, 14, 70
	variants := []variant{
		// Cuts probe the first day, early window, mid-window and the
		// last day of the window.
		{"tiny", sim.TinyConfig(), []int{1, 2, 13, 27, 28}},
		// A >64-day window crosses the timeline word boundary between
		// cuts 64 and 65, forcing the full repack path.
		{"word-boundary", long, []int{50, 64, 65, 70}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			w := synthnet.Generate(synthnet.TinyConfig())
			// Record the live emission stream; payloads may be retained
			// without copying (the Sink contract).
			var events []obs.Event
			rec := obs.SinkFunc(func(e obs.Event) error { events = append(events, e); return nil })
			res, err := sim.RunTo(w, v.cfg, rec)
			if err != nil {
				t.Fatal(err)
			}
			d := &res.Data

			for _, workers := range []int{1, 5} {
				t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
					a := NewApplier(Options{Workers: workers})
					fed := 0
					for _, cut := range v.cuts {
						trunc := d.TruncateLive(cut)
						end := cutStream(events, trunc, cut)
						for _, e := range events[fed:end] {
							if err := a.Observe(e); err != nil {
								t.Fatalf("observe %T: %v", e, err)
							}
						}
						fed = end
						snap, err := a.Snapshot()
						if err != nil {
							t.Fatalf("snapshot at day %d: %v", cut, err)
						}
						ref, err := Build(trunc, Options{Workers: 3})
						if err != nil {
							t.Fatalf("build truncated(%d): %v", cut, err)
						}
						got, want := marshalIndex(t, snap), marshalIndex(t, ref)
						if !bytes.Equal(got, want) {
							t.Fatalf("day %d: incremental snapshot differs from Build over truncated dataset (%d vs %d bytes)",
								cut, len(got), len(want))
						}
					}

					// End of stream: the remaining events (trailing
					// weeks, per-block stats, surfaces) must converge
					// the snapshot onto Build over the full dataset.
					for _, e := range events[fed:] {
						if err := a.Observe(e); err != nil {
							t.Fatalf("observe %T: %v", e, err)
						}
					}
					snap, err := a.Snapshot()
					if err != nil {
						t.Fatal(err)
					}
					ref, err := Build(d, Options{Workers: 3})
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(marshalIndex(t, snap), marshalIndex(t, ref)) {
						t.Fatal("end-of-stream snapshot differs from Build over the full dataset")
					}
				})
			}
		})
	}
}

// TestApplierEpochs pins the epoch contract: Build stamps 1, every
// Snapshot bumps the counter (even without new events), and repeated
// publishes of unchanged state are view-identical.
func TestApplierEpochs(t *testing.T) {
	d := testData(t)
	b, err := Build(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Epoch() != 1 {
		t.Errorf("Build epoch = %d, want 1", b.Epoch())
	}

	a := NewApplier(Options{})
	if err := d.WriteTo(a); err != nil {
		t.Fatal(err)
	}
	s1, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if s1.Epoch() != 1 || s2.Epoch() != 2 || a.Epoch() != 2 {
		t.Errorf("epochs = %d, %d (applier %d), want 1, 2 (2)", s1.Epoch(), s2.Epoch(), a.Epoch())
	}
	if !bytes.Equal(marshalIndex(t, s1), marshalIndex(t, s2)) {
		t.Error("unchanged republish differs from previous snapshot")
	}
}

// TestApplierStreamContract exercises the ordering errors: no events
// before meta, no duplicate meta, sequential day indices, and no
// snapshot before the first day.
func TestApplierStreamContract(t *testing.T) {
	d := testData(t)
	meta := obs.MetaEvent{Meta: d.Meta}

	a := NewApplier(Options{})
	if err := a.Observe(obs.DayEvent{Index: 0, Active: d.Daily[0]}); err == nil {
		t.Error("day before meta accepted")
	}
	if _, err := a.Snapshot(); err == nil {
		t.Error("snapshot before meta accepted")
	}

	a = NewApplier(Options{})
	if err := a.Observe(meta); err != nil {
		t.Fatal(err)
	}
	if err := a.Observe(meta); err == nil {
		t.Error("second meta accepted")
	}
	if _, err := a.Snapshot(); err == nil {
		t.Error("snapshot with no days accepted")
	}
	if err := a.Observe(obs.DayEvent{Index: 1, Active: d.Daily[1]}); err == nil {
		t.Error("out-of-order day accepted")
	}
	if err := a.Observe(obs.DayEvent{Index: 0, Active: d.Daily[0]}); err != nil {
		t.Fatal(err)
	}
	if err := a.Observe(obs.DayEvent{Index: 0, Active: d.Daily[0]}); err == nil {
		t.Error("duplicate day accepted")
	}
	if _, err := a.Snapshot(); err != nil {
		t.Errorf("snapshot after first day: %v", err)
	}
}
