//go:build linux

package query

import (
	"os"
	"syscall"
)

// mmapFile maps path read-only. The bulk snapshot sections are then
// served straight from the page cache — the loader never copies them.
// The returned closure unmaps; the mapping must outlive every Index
// decoded from it.
func mmapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		// Zero-length mappings are invalid; an empty file decodes (and
		// fails) through the portable path.
		return nil, nil, errNoMmap
	}
	if size != int64(int(size)) {
		return nil, nil, errNoMmap
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
