// Package query compiles an observation dataset (any obs.Source) into
// an immutable indexed view that answers per-address, per-/24,
// per-prefix and per-AS questions in microseconds — the read path
// behind cmd/ipscope-serve. Where the batch pipeline (internal/analysis)
// regenerates whole reports, a query.Index pays the analysis cost once
// at build time and then serves point lookups from packed structures:
//
//   - per-address activity timelines packed as day-bitsets (one bit per
//     day of the daily window);
//   - per-/24 rollups of FD, STU, traffic, UA sampling and the rDNS /
//     ground-truth pattern class;
//   - longest-prefix-match routing joins (internal/bgp) and registry
//     enrichment (internal/registry) for any address, active or not;
//   - dataset-level capture–recapture and churn summaries reusing
//     internal/core, field-identical to the batch report's numbers.
//
// Determinism rule: index construction fans out across internal/par
// shards but every per-block computation is a pure function of the
// dataset written to a preallocated slot, and every floating-point
// accumulation walks blocks in ascending block order — so an index
// built from the same dataset is identical for any Options.Workers,
// including 1 (enforced by TestBuildParallelEquivalence).
package query

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"ipscope/internal/bgp"
	"ipscope/internal/cdnlog"
	"ipscope/internal/ipv4"
	"ipscope/internal/obs"
	"ipscope/internal/rdns"
	"ipscope/internal/registry"
	"ipscope/internal/synthnet"
)

// Options controls index construction.
type Options struct {
	// Workers bounds the build fan-out; <= 0 means GOMAXPROCS. The
	// resulting index is identical for any value.
	Workers int
	// Keep, when non-nil, restricts world-proportional construction
	// work (rDNS zone classification) to the blocks it accepts — the
	// shard-subset build path, paired with a partition-filtered
	// dataset so the whole build scales with the slice, not the world.
	// Lookups for rejected blocks still answer, with the Untagged rDNS
	// default; a cluster router never routes a shard such a block.
	Keep func(ipv4.Block) bool
}

// Index is the immutable compiled view. All lookup methods are safe for
// concurrent use: nothing is mutated after Build (or Applier.Snapshot)
// returns. Each Index is stamped with an epoch — a monotonically
// increasing publish counter (Build produces epoch 1; an Applier bumps
// it on every Snapshot) that serving layers use to version caches and
// ETags across snapshot swaps.
type Index struct {
	epoch   uint64
	meta    metaInfo
	obsMeta obs.Meta // full dataset identity, carried for snapshot encode
	days    int      // daily window length
	words   int      // uint64 words per packed per-address timeline
	keys    []ipv4.Block
	blocks  []blockData // parallel to keys, ascending block order
	asNums  []bgp.ASN   // sorted
	byAS    map[bgp.ASN]*ASView
	routing *bgp.Table
	world   *synthnet.World
	tags    *rdns.TagIndex
	summary Summary
	partial *SummaryPartial
	icmp    *ipv4.Set
	servers *ipv4.Set
	routers *ipv4.Set
}

type metaInfo struct {
	seed    uint64
	numASes int
}

// blockData is the per-/24 index record: the serving view plus the
// packed per-address structures backing address lookups.
type blockData struct {
	view BlockView
	blk  ipv4.Block
	// timelines holds 256 packed day-bitsets, words uint64 each:
	// bit d of timelines[h*words+d/64] is set iff host h was active on
	// day d of the daily window.
	timelines []uint64
	// hits/daysActive are shared with the dataset (never mutated).
	traffic *blockTraffic
}

// blockTraffic mirrors obs.BlockTraffic without importing it into every
// view; populated by Build from the dataset's aggregates.
type blockTraffic struct {
	daysActive [256]uint16
	hits       [256]float64
}

// BlockView is the /v1/block response payload: one /24's rollup.
type BlockView struct {
	Block      string  `json:"block"`
	AS         uint32  `json:"as"`
	Prefix     string  `json:"prefix,omitempty"`
	Country    string  `json:"country,omitempty"`
	RIR        string  `json:"rir"`
	RDNS       string  `json:"rdns"`
	Pattern    string  `json:"pattern"`
	FD         int     `json:"fd"`
	STU        float64 `json:"stu"`
	ActiveDays int     `json:"activeDays"`
	TotalHits  float64 `json:"totalHits"`
	UASamples  int     `json:"uaSamples"`
	UAUnique   float64 `json:"uaUnique"`
}

// AddrView is the /v1/addr response payload: one address's activity
// timeline plus its block, routing and registry enrichment.
type AddrView struct {
	Addr          string  `json:"addr"`
	Block         string  `json:"block"`
	AS            uint32  `json:"as"`
	Prefix        string  `json:"prefix,omitempty"`
	Country       string  `json:"country,omitempty"`
	RIR           string  `json:"rir"`
	RDNS          string  `json:"rdns"`
	Pattern       string  `json:"pattern,omitempty"`
	Active        bool    `json:"active"`
	ActiveDays    int     `json:"activeDays"`
	FirstDay      int     `json:"firstDay"`
	LastDay       int     `json:"lastDay"`
	Timeline      string  `json:"timeline,omitempty"`
	Hits          float64 `json:"hits"`
	MeanDailyHits float64 `json:"meanDailyHits"`
	ICMPResponder bool    `json:"icmpResponder"`
	Server        bool    `json:"server"`
	Router        bool    `json:"router"`
}

// PrefixView is the /v1/prefix response payload: an aggregate over the
// /24 blocks a CIDR covers.
type PrefixView struct {
	Prefix       string      `json:"prefix"`
	Blocks       int         `json:"blocks"`
	ActiveBlocks int         `json:"activeBlocks"`
	ActiveAddrs  int         `json:"activeAddrs"`
	MeanSTU      float64     `json:"meanSTU"`
	TotalHits    float64     `json:"totalHits"`
	Origins      []uint32    `json:"origins"`
	BlockList    []BlockView `json:"blockList,omitempty"`
	Truncated    bool        `json:"truncated,omitempty"`
}

// ASView is the /v1/as response payload: one origin AS's footprint.
type ASView struct {
	AS           uint32   `json:"as"`
	Kind         string   `json:"kind"`
	Country      string   `json:"country,omitempty"`
	RIR          string   `json:"rir"`
	Prefixes     []string `json:"prefixes"`
	RoutedBlocks int      `json:"routedBlocks"`
	ActiveBlocks int      `json:"activeBlocks"`
	ActiveAddrs  int      `json:"activeAddrs"`
	TotalHits    float64  `json:"totalHits"`
}

// ChurnSummary condenses the dataset's daily churn series (the numbers
// behind the batch report's Figure 4).
type ChurnSummary struct {
	// MeanDailyUpEvents is the mean number of up events per daily
	// transition, identical to the batch report's Figure 4 headline.
	MeanDailyUpEvents float64 `json:"meanDailyUpEvents"`
	// MeanDailyUpPct / MeanDailyDownPct are the mean churn percentages
	// across daily transitions.
	MeanDailyUpPct   float64 `json:"meanDailyUpPct"`
	MeanDailyDownPct float64 `json:"meanDailyDownPct"`
	// YearChurnFrac is |appear at last week vs week 0| / |week 0|.
	YearChurnFrac float64 `json:"yearChurnFrac"`
}

// RecaptureSummary is the capture–recapture estimate over the CDN month
// and the ICMP campaign union, field-identical to the batch report's.
type RecaptureSummary struct {
	Valid   bool    `json:"valid"`
	N1      int     `json:"n1"`
	N2      int     `json:"n2"`
	Both    int     `json:"both"`
	LP      float64 `json:"lincolnPetersen"`
	Chapman float64 `json:"chapman"`
	SE      float64 `json:"se"`
	CI95Lo  float64 `json:"ci95Lo"`
	CI95Hi  float64 `json:"ci95Hi"`
}

// UASummary aggregates the dataset's User-Agent sampling: total
// samples and the estimated number of distinct UA strings across every
// sampled block, from the union of the per-block HLL sketches. The
// union is a register-wise max — commutative and associative — which is
// what makes this the one Summary field whose distinct count merges
// exactly across cluster shards without shipping the strings.
type UASummary struct {
	Samples  int     `json:"samples"`
	UniqueUA float64 `json:"uniqueUA"`
}

// Summary is the /v1/summary response payload: dataset identity and the
// cross-dataset aggregates.
type Summary struct {
	Seed         uint64                `json:"seed"`
	NumASes      int                   `json:"numASes"`
	WorldBlocks  int                   `json:"worldBlocks"`
	Days         int                   `json:"days"`
	DailyStart   int                   `json:"dailyStart"`
	DailyLen     int                   `json:"dailyLen"`
	Weeks        int                   `json:"weeks"`
	ActiveBlocks int                   `json:"activeBlocks"`
	DailyUnion   int                   `json:"dailyUnion"`
	YearUnion    int                   `json:"yearUnion"`
	ICMPUnion    int                   `json:"icmpUnion"`
	Daily        cdnlog.DatasetSummary `json:"daily"`
	Weekly       cdnlog.DatasetSummary `json:"weekly"`
	Recapture    RecaptureSummary      `json:"recapture"`
	Churn        ChurnSummary          `json:"churn"`
	UA           UASummary             `json:"ua"`
}

// NumBlocks returns the number of indexed (active) /24 blocks.
func (x *Index) NumBlocks() int { return len(x.keys) }

// Epoch returns the publish counter this snapshot was stamped with.
func (x *Index) Epoch() uint64 { return x.epoch }

// DailyLen returns the length of the indexed daily window.
func (x *Index) DailyLen() int { return x.days }

// Summary returns the dataset-level aggregates.
func (x *Index) Summary() Summary { return x.summary }

// SummaryPartial returns this index's mergeable share of the dataset
// summary — what a cluster shard serves on /v1/cluster/summary. For an
// unpartitioned index it describes the whole dataset, and finalizing
// it reproduces Summary exactly. The returned value shares immutable
// backing arrays with the index; callers must not mutate it (Merge
// clones before folding).
func (x *Index) SummaryPartial() SummaryPartial { return *x.partial }

// blockIndex binary-searches the sorted key array.
func (x *Index) blockIndex(blk ipv4.Block) (int, bool) {
	i := sort.Search(len(x.keys), func(i int) bool { return x.keys[i] >= blk })
	if i == len(x.keys) || x.keys[i] != blk {
		return i, false
	}
	return i, true
}

// Block returns the rollup view for blk; ok is false when the block had
// no activity in the daily window.
func (x *Index) Block(blk ipv4.Block) (BlockView, bool) {
	i, ok := x.blockIndex(blk)
	if !ok {
		return BlockView{}, false
	}
	return x.blocks[i].view, true
}

// Blocks returns the sorted list of indexed blocks.
func (x *Index) Blocks() []ipv4.Block { return x.keys }

// enrichment is the routing/registry/world/rDNS join for one block,
// shared by the address and block views so the two endpoints cannot
// drift on defaults.
type enrichment struct {
	as      uint32
	prefix  string
	country string
	rir     string
	pattern string
	rdns    string
}

// joinBlock computes the enrichment for any block, active or not.
func (x *Index) joinBlock(blk ipv4.Block) enrichment {
	return join(x.routing, x.world, x.tags, blk)
}

// join is the routing/registry/world/rDNS lookup behind joinBlock,
// shared with the incremental Applier so both construction paths
// enrich identically.
func join(routing *bgp.Table, world *synthnet.World, tags *rdns.TagIndex, blk ipv4.Block) enrichment {
	e := enrichment{rir: registry.ARIN.String()} // unattributed space reports ARIN
	if r, ok := routing.Lookup(blk.First()); ok {
		e.as = uint32(r.Origin)
		e.prefix = r.Prefix.String()
	}
	if a, ok := world.Registry.LookupBlock(blk); ok {
		e.country = string(a.Country)
		e.rir = a.RIR.String()
	}
	if info, ok := world.BlockInfo(blk); ok {
		e.pattern = info.Policy.String()
	}
	tag, _ := tags.Lookup(blk) // a miss reports Untagged
	e.rdns = tag.String()
	return e
}

// Addr returns the per-address view for a. The view is always
// well-formed; Active reports whether the address appeared in the daily
// window.
func (x *Index) Addr(a ipv4.Addr) AddrView {
	blk := a.Block()
	e := x.joinBlock(blk)
	v := AddrView{
		Addr:     a.String(),
		Block:    blk.String(),
		AS:       e.as,
		Prefix:   e.prefix,
		Country:  e.country,
		RIR:      e.rir,
		Pattern:  e.pattern,
		RDNS:     e.rdns,
		FirstDay: -1,
		LastDay:  -1,
	}
	v.ICMPResponder = x.icmp.Contains(a)
	v.Server = x.servers.Contains(a)
	v.Router = x.routers.Contains(a)

	i, ok := x.blockIndex(blk)
	if !ok {
		return v
	}
	bd := &x.blocks[i]
	h := int(a.Host())
	tl := bd.timelines[h*x.words : (h+1)*x.words]
	days := 0
	for _, w := range tl {
		days += bits.OnesCount64(w)
	}
	if days == 0 {
		return v
	}
	v.Active = true
	v.ActiveDays = days
	v.FirstDay = firstBit(tl)
	v.LastDay = lastBit(tl)
	v.Timeline = timelineHex(tl)
	if bd.traffic != nil {
		v.Hits = bd.traffic.hits[h]
		if da := int(bd.traffic.daysActive[h]); da > 0 {
			v.MeanDailyHits = bd.traffic.hits[h] / float64(da)
		}
	}
	return v
}

// CheckPrefix validates a prefix for the prefix endpoints: prefixes
// shorter than /8 are rejected to bound response size. The router and
// every shard apply the same rule, so validation errors are identical
// wherever a request lands.
func CheckPrefix(p ipv4.Prefix) error {
	if p.Bits() < 8 {
		return fmt.Errorf("query: prefix %v too broad (min /8)", p)
	}
	return nil
}

// Prefix aggregates the indexed blocks covered by p. maxBlocks caps the
// embedded per-block list (0 = no list); the aggregate always covers
// every active block. Prefixes shorter than /8 are rejected to bound
// response size.
//
// Prefix is implemented as the one-partial case of the cluster merge,
// so a routed cross-shard aggregate equals the single-node answer by
// construction rather than by parallel maintenance of two folds.
func (x *Index) Prefix(p ipv4.Prefix, maxBlocks int) (PrefixView, error) {
	part, err := x.PrefixPartial(p, maxBlocks)
	if err != nil {
		return PrefixView{}, err
	}
	return MergePrefixPartials([]PrefixPartial{part}, maxBlocks)
}

// AS returns the footprint view for asn.
func (x *Index) AS(asn bgp.ASN) (ASView, bool) {
	v, ok := x.byAS[asn]
	if !ok {
		return ASView{}, false
	}
	return *v, true
}

// ASNs returns the sorted origin ASNs with indexed activity.
func (x *Index) ASNs() []bgp.ASN { return x.asNums }

// firstBit returns the index of the lowest set bit across words.
func firstBit(words []uint64) int {
	for i, w := range words {
		if w != 0 {
			return i*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// lastBit returns the index of the highest set bit across words.
func lastBit(words []uint64) int {
	for i := len(words) - 1; i >= 0; i-- {
		if words[i] != 0 {
			return i*64 + 63 - bits.LeadingZeros64(words[i])
		}
	}
	return -1
}

// timelineHex renders a packed timeline as fixed-width hex, one 16-char
// group per word, least-significant word (earliest days) first; bit d of
// the timeline is day d of the daily window.
func timelineHex(words []uint64) string {
	var b strings.Builder
	b.Grow(len(words) * 16)
	for _, w := range words {
		fmt.Fprintf(&b, "%016x", w)
	}
	return b.String()
}
