package query

import (
	"bytes"
	"encoding/json"
	"testing"

	"ipscope/internal/bgp"
	"ipscope/internal/core"
	"ipscope/internal/ipv4"
	"ipscope/internal/obs"
	"ipscope/internal/sim"
	"ipscope/internal/synthnet"
)

func testData(t testing.TB) *obs.Data {
	t.Helper()
	w := synthnet.Generate(synthnet.TinyConfig())
	res := sim.Run(w, sim.TinyConfig())
	return &res.Data
}

func testIndex(t testing.TB) *Index {
	t.Helper()
	idx, err := Build(testData(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestBuildBlockViewsMatchCore(t *testing.T) {
	d := testData(t)
	idx, err := Build(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if idx.NumBlocks() == 0 {
		t.Fatal("no indexed blocks")
	}
	if got, want := idx.NumBlocks(), len(core.ActiveBlocks(d.Daily)); got != want {
		t.Fatalf("NumBlocks = %d, want %d", got, want)
	}
	for _, blk := range idx.Blocks() {
		v, ok := idx.Block(blk)
		if !ok {
			t.Fatalf("Block(%v) missing", blk)
		}
		if want := core.FillingDegree(d.Daily, blk); v.FD != want {
			t.Errorf("%v: FD = %d, want %d", blk, v.FD, want)
		}
		if want := core.STU(d.Daily, blk); v.STU != want {
			t.Errorf("%v: STU = %v, want %v", blk, v.STU, want)
		}
		var hits float64
		if bt := d.Traffic[blk]; bt != nil {
			for h := 0; h < 256; h++ {
				hits += bt.Hits[h]
			}
		}
		if v.TotalHits != hits {
			t.Errorf("%v: TotalHits = %v, want %v", blk, v.TotalHits, hits)
		}
	}
}

func TestAddrTimeline(t *testing.T) {
	d := testData(t)
	idx, err := Build(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Walk a handful of active addresses and verify the packed timeline
	// against the raw daily sets.
	checked := 0
	for _, blk := range idx.Blocks() {
		if checked >= 5 {
			break
		}
		bm := ipv4.UnionAll(d.Daily, 0).BlockBitmap(blk)
		var addr ipv4.Addr
		found := false
		bm.ForEach(func(h byte) {
			if !found {
				addr, found = blk.Addr(h), true
			}
		})
		if !found {
			continue
		}
		checked++
		v := idx.Addr(addr)
		if !v.Active {
			t.Fatalf("%v should be active", addr)
		}
		days, first, last := 0, -1, -1
		for day, s := range d.Daily {
			if s.Contains(addr) {
				days++
				if first < 0 {
					first = day
				}
				last = day
			}
		}
		if v.ActiveDays != days || v.FirstDay != first || v.LastDay != last {
			t.Errorf("%v: days/first/last = %d/%d/%d, want %d/%d/%d",
				addr, v.ActiveDays, v.FirstDay, v.LastDay, days, first, last)
		}
		if v.Timeline == "" {
			t.Errorf("%v: empty timeline", addr)
		}
	}
	if checked == 0 {
		t.Fatal("no active addresses checked")
	}

	// An address in never-active space: enriched but inactive.
	v := idx.Addr(ipv4.MustParseAddr("203.0.113.9"))
	if v.Active || v.ActiveDays != 0 || v.FirstDay != -1 {
		t.Errorf("inactive addr view: %+v", v)
	}
	if v.RIR == "" || v.RDNS == "" {
		t.Errorf("inactive addr should still be enriched: %+v", v)
	}
}

func TestPrefixAggregate(t *testing.T) {
	idx := testIndex(t)
	blk := idx.Blocks()[0]
	p := ipv4.MustNewPrefix(blk.First(), 20)
	v, err := idx.Prefix(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if v.ActiveBlocks == 0 {
		t.Fatal("prefix over an active block reports no active blocks")
	}
	// Aggregate must equal the sum over the covered block views.
	var fd int
	var hits float64
	for _, b := range idx.Blocks() {
		if p.Contains(b.First()) {
			bv, _ := idx.Block(b)
			fd += bv.FD
			hits += bv.TotalHits
		}
	}
	if v.ActiveAddrs != fd {
		t.Errorf("ActiveAddrs = %d, want %d", v.ActiveAddrs, fd)
	}
	if v.TotalHits != hits {
		t.Errorf("TotalHits = %v, want %v", v.TotalHits, hits)
	}
	if len(v.Origins) == 0 {
		t.Error("no origins")
	}

	if _, err := idx.Prefix(ipv4.MustParsePrefix("0.0.0.0/0"), 0); err == nil {
		t.Error("too-broad prefix should be rejected")
	}
}

// TestPrefixTruncation pins the explicit-truncation contract: a
// response whose block list was capped by maxBlocks must say so, a
// response that fits exactly must not, and the aggregate fields must
// cover every active block either way — including for the widest
// accepted prefix (/8).
func TestPrefixTruncation(t *testing.T) {
	idx := testIndex(t)
	blk := idx.Blocks()[0]

	// The /8 covering the first active block: count its active blocks.
	wide := ipv4.MustNewPrefix(blk.First(), 8)
	active := 0
	for _, b := range idx.Blocks() {
		if wide.Contains(b.First()) {
			active++
		}
	}
	if active < 2 {
		t.Fatalf("fixture has %d active blocks under %v; need >= 2", active, wide)
	}

	t.Run("capped", func(t *testing.T) {
		v, err := idx.Prefix(wide, active-1)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Truncated {
			t.Error("capped /8 response not marked truncated")
		}
		if len(v.BlockList) != active-1 {
			t.Errorf("BlockList has %d entries, want %d", len(v.BlockList), active-1)
		}
		if v.ActiveBlocks != active {
			t.Errorf("ActiveBlocks = %d, want %d (aggregate must ignore the cap)", v.ActiveBlocks, active)
		}
	})

	t.Run("exact-fit", func(t *testing.T) {
		v, err := idx.Prefix(wide, active)
		if err != nil {
			t.Fatal(err)
		}
		if v.Truncated {
			t.Error("exact-fit response marked truncated")
		}
		if len(v.BlockList) != active {
			t.Errorf("BlockList has %d entries, want %d", len(v.BlockList), active)
		}
	})

	t.Run("no-list", func(t *testing.T) {
		v, err := idx.Prefix(wide, 0)
		if err != nil {
			t.Fatal(err)
		}
		if v.Truncated || v.BlockList != nil {
			t.Errorf("maxBlocks=0 should omit the list without truncation: %+v", v)
		}
	})

	t.Run("narrow-boundary", func(t *testing.T) {
		p := ipv4.MustNewPrefix(blk.First(), 24)
		v, err := idx.Prefix(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if v.Truncated || len(v.BlockList) != 1 {
			t.Errorf("single-block prefix at maxBlocks=1: truncated=%v list=%d", v.Truncated, len(v.BlockList))
		}
	})
}

func TestASFootprint(t *testing.T) {
	idx := testIndex(t)
	if len(idx.ASNs()) == 0 {
		t.Fatal("no ASes")
	}
	// Per-AS active blocks must partition the indexed blocks.
	total := 0
	for _, asn := range idx.ASNs() {
		v, ok := idx.AS(asn)
		if !ok {
			t.Fatalf("AS(%v) missing", asn)
		}
		total += v.ActiveBlocks
	}
	if total != idx.NumBlocks() {
		t.Errorf("sum of per-AS active blocks = %d, want %d", total, idx.NumBlocks())
	}
	if _, ok := idx.AS(bgp.ASN(1)); ok {
		t.Error("unknown ASN should miss")
	}
}

// marshalIndex dumps every externally visible view of the index, the
// equality witness for the parallel-equivalence test.
func marshalIndex(t *testing.T, idx *Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	check := func(v any) {
		if err := enc.Encode(v); err != nil {
			t.Fatal(err)
		}
	}
	check(idx.Summary())
	for _, blk := range idx.Blocks() {
		v, _ := idx.Block(blk)
		check(v)
		check(idx.Addr(blk.Addr(0)))
		check(idx.Addr(blk.Addr(137)))
	}
	for _, asn := range idx.ASNs() {
		v, _ := idx.AS(asn)
		check(v)
	}
	for _, blk := range idx.Blocks() {
		p := ipv4.MustNewPrefix(blk.First(), 20)
		v, err := idx.Prefix(p, 4)
		if err != nil {
			t.Fatal(err)
		}
		check(v)
	}
	return buf.Bytes()
}

func TestBuildParallelEquivalence(t *testing.T) {
	d := testData(t)
	one, err := Build(d, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Build(d, Options{Workers: 7})
	if err != nil {
		t.Fatal(err)
	}
	a, b := marshalIndex(t, one), marshalIndex(t, many)
	if !bytes.Equal(a, b) {
		t.Fatalf("index differs between 1 and 7 workers (%d vs %d bytes)", len(a), len(b))
	}
}

func TestBuildRejectsEmptyDataset(t *testing.T) {
	if _, err := Build(&obs.Data{}, Options{}); err == nil {
		t.Fatal("empty dataset should be rejected")
	}
}
