package query

import (
	"fmt"
	"sort"

	"ipscope/internal/bgp"
	"ipscope/internal/core"
	"ipscope/internal/ipv4"
	"ipscope/internal/obs"
	"ipscope/internal/par"
	"ipscope/internal/rdns"
	"ipscope/internal/synthnet"
)

// Applier is the incremental counterpart of Build: it consumes a live
// observation event stream (it implements obs.Sink, so it attaches
// directly to obs.StreamDecode, obs.Follow or a sim.RunTo tee) and can
// publish an epoch-stamped immutable *Index at any point. The hard
// invariant, enforced by TestApplierEquivalence, is that after applying
// days 1..N the published snapshot is view-identical — byte for byte
// across every lookup — to Build over the dataset truncated to those N
// days (obs.Data.TruncateLive), for any worker count on either side.
//
// Incrementality is what makes a publish far cheaper than a rebuild
// (BenchmarkIndexApplyDay): per-block accumulators absorb each day in
// O(active addresses), dataset-level unions and churn/summary counters
// advance per event, and Snapshot only materializes blocks whose
// accumulators changed since the previous epoch — every clean block's
// packed timeline is shared with the prior snapshot. Summary, recapture
// and churn assembly are recomputed per epoch (fanned out across
// internal/par), never on the serving request path.
//
// Stream contract: events must arrive in emission order — MetaEvent
// first, then day/week/ICMP events with strictly sequential indices
// (the order sim.RunTo and the codec's canonical replay both produce).
// An Applier is not safe for concurrent use; published snapshots are.
type Applier struct {
	opts Options

	// Set by the MetaEvent.
	meta      obs.Meta
	world     *synthnet.World
	tags      *rdns.TagIndex
	fullWords int       // timeline words for the full daily window
	staging   *obs.Data // geometry-complete event accumulator

	days, weeks, scans int

	accs  map[ipv4.Block]*blockAcc
	dirty []ipv4.Block // accs touched since the last publish

	dailyUnion *ipv4.Set // grows per day; also dSum's union
	icmpUnion  *ipv4.Set // immutable: replaced (not mutated) per scan
	servers    *ipv4.Set // end-of-stream surfaces (immutable payloads)
	routers    *ipv4.Set

	dSum, wSum seriesAccum

	// Capture–recapture month window: nil until the first scan arrives
	// (CampaignMonthUnion falls back to the whole daily window), then a
	// running union over daily-window days in [cdnFrom, cdnTo).
	cdn            *ipv4.Set
	cdnFrom, cdnTo int

	// Daily churn raw material, appended per transition in day order:
	// the integer inputs SummaryPartial.Finalize turns into the exact
	// ChurnSeries percentage sequence.
	ups, downs []int

	epoch uint64
	prev  *Index // last published snapshot, for clean-block reuse
}

// blockAcc is one /24's mutable accumulator: everything compileBlock
// derives from the dataset, maintained event by event instead.
type blockAcc struct {
	// timelines is 256 packed day-bitsets at the full window width;
	// snapshots copy out the leading words their window needs.
	timelines  []uint64
	union      ipv4.Bitmap256
	activeDays int
	addrDays   int
	traffic    *blockTraffic
	totalHits  float64
	// ua retains the block's stats event payload (immutable per the
	// Sink contract): the view needs samples and the unique estimate,
	// and the summary partial needs the sketch itself for the
	// cross-shard HLL union.
	ua    *obs.UAStat
	e     enrichment
	dirty bool
}

// seriesAccum advances one SeriesPartial incrementally: all counters
// are integers folded in snapshot order (plus the per-snapshot AS
// sets), so the per-epoch partial equals the one Build computes over
// the applied snapshots.
type seriesAccum struct {
	union    *ipv4.Set
	snapASes [][]uint32
	ipSum    int
	blkSum   int
	snaps    int
}

func (sa *seriesAccum) observe(s *ipv4.Set, asOf func(ipv4.Block) bgp.ASN) {
	sa.snaps++
	sa.ipSum += s.Len()
	sa.blkSum += s.NumBlocks()
	sa.snapASes = append(sa.snapASes, snapshotASes(s, asOf))
	sa.union.UnionWith(s)
}

func (sa *seriesAccum) partial() SeriesPartial {
	return SeriesPartial{
		Snapshots:   sa.snaps,
		UnionIPs:    sa.union.Len(),
		UnionBlocks: sa.union.NumBlocks(),
		IPSum:       sa.ipSum,
		BlockSum:    sa.blkSum,
		SnapASes:    append([][]uint32(nil), sa.snapASes...),
	}
}

// NewApplier returns an empty Applier. opts.Workers bounds the publish
// fan-out; snapshots are identical for any value.
func NewApplier(opts Options) *Applier {
	return &Applier{opts: opts}
}

// Days returns the number of daily-window days applied so far.
func (a *Applier) Days() int { return a.days }

// Epoch returns the epoch of the most recently published snapshot
// (0 before the first Snapshot).
func (a *Applier) Epoch() uint64 { return a.epoch }

// Observe applies one event. It returns an error for a stream that
// violates the Applier's ordering contract (see the type comment); the
// Applier must then be discarded.
func (a *Applier) Observe(e obs.Event) error {
	if _, ok := e.(obs.MetaEvent); !ok && a.world == nil {
		return fmt.Errorf("query: applier received %T before the meta event", e)
	}
	switch ev := e.(type) {
	case obs.MetaEvent:
		return a.applyMeta(ev)
	case obs.DayEvent:
		return a.applyDay(ev)
	case obs.WeekEvent:
		if ev.Index != a.weeks {
			return fmt.Errorf("query: week event %d out of order (want %d)", ev.Index, a.weeks)
		}
		if err := a.staging.Observe(ev); err != nil {
			return err
		}
		a.weeks++
		a.wSum.observe(ev.Active, a.world.ASOf)
	case obs.ICMPScanEvent:
		return a.applyScan(ev)
	case obs.BlockStatsEvent:
		if err := a.staging.Observe(ev); err != nil {
			return err
		}
		acc := a.acc(ev.Block)
		a.touch(ev.Block, acc)
		if ev.Traffic != nil {
			t := &blockTraffic{}
			total := 0.0
			for h := 0; h < 256; h++ {
				t.daysActive[h] = ev.Traffic.DaysActive[h]
				t.hits[h] = ev.Traffic.Hits[h]
				total += ev.Traffic.Hits[h]
			}
			acc.traffic = t
			acc.totalHits = total
		}
		if ev.UA != nil {
			acc.ua = ev.UA
		}
	case obs.SurfacesEvent:
		if err := a.staging.Observe(ev); err != nil {
			return err
		}
		a.servers, a.routers = ev.Servers, ev.Routers
	default:
		// Ground truth (routing, restructures) and any future event
		// kinds: staged for completeness, no index impact (the index
		// joins against the world's base routing table).
		return a.staging.Observe(e)
	}
	return nil
}

func (a *Applier) applyMeta(ev obs.MetaEvent) error {
	if a.world != nil {
		return fmt.Errorf("query: applier received a second meta event")
	}
	a.meta = ev.Meta
	a.staging = &obs.Data{}
	if err := a.staging.Observe(ev); err != nil {
		return err
	}
	a.world = synthnet.Generate(ev.Meta.World)
	a.tags = classifyWorld(a.world, a.opts.Workers, a.opts.Keep)
	a.fullWords = (ev.Meta.Run.DailyLen + 63) / 64
	a.accs = make(map[ipv4.Block]*blockAcc)
	a.dailyUnion = ipv4.NewSet()
	a.icmpUnion = ipv4.NewSet()
	a.dSum = seriesAccum{union: a.dailyUnion}
	a.wSum = seriesAccum{union: ipv4.NewSet()}
	return nil
}

func (a *Applier) applyDay(ev obs.DayEvent) error {
	if ev.Index != a.days {
		return fmt.Errorf("query: day event %d out of order (want %d)", ev.Index, a.days)
	}
	if err := a.staging.Observe(ev); err != nil {
		return err
	}
	// Churn transition against the previous day, in arrival order: the
	// appended integers are the exact inputs ChurnSeries would compute.
	if ev.Index > 0 {
		prev := a.staging.Daily[ev.Index-1]
		a.ups = append(a.ups, ev.Active.DiffCount(prev))
		a.downs = append(a.downs, prev.DiffCount(ev.Active))
	}
	day := ev.Index
	a.days++
	ev.Active.ForEachBlock(func(blk ipv4.Block, bm *ipv4.Bitmap256) {
		acc := a.acc(blk)
		a.touch(blk, acc)
		if acc.timelines == nil {
			acc.timelines = make([]uint64, 256*a.fullWords)
		}
		word, bit := day/64, uint(day%64)
		bm.ForEach(func(h byte) {
			acc.timelines[int(h)*a.fullWords+word] |= 1 << bit
		})
		acc.activeDays++
		acc.addrDays += bm.Count()
		acc.union.UnionWith(bm)
	})
	a.dSum.observe(ev.Active, a.world.ASOf) // also grows dailyUnion
	if a.cdn != nil && day >= a.cdnFrom && day < a.cdnTo {
		a.cdn.UnionWith(ev.Active)
	}
	return nil
}

func (a *Applier) applyScan(ev obs.ICMPScanEvent) error {
	if ev.Index != a.scans {
		return fmt.Errorf("query: ICMP scan event %d out of order (want %d)", ev.Index, a.scans)
	}
	if err := a.staging.Observe(ev); err != nil {
		return err
	}
	a.scans++
	// Published snapshots share the union pointer, so replace instead of
	// mutating.
	a.icmpUnion = a.icmpUnion.Union(ev.Responders)
	// The capture–recapture month window is pinned by the first and last
	// scans seen so far (expanded to at least 28 days, exactly as
	// obs.Data.CampaignMonthUnion derives it); a new scan can shift it,
	// so rebuild the window union from staging and advance it per day
	// from here on.
	cfg := a.meta.Run
	days := cfg.ICMPScanDays[:a.scans]
	first, last := days[0], days[len(days)-1]
	from := first - cfg.DailyStart
	to := last - cfg.DailyStart + 1
	if span := to - from; span < 28 {
		from -= (28 - span) / 2
		to = from + 28
	}
	a.cdnFrom, a.cdnTo = from, to
	a.cdn = core.WindowUnion(a.staging.Daily[:a.days], from, to)
	return nil
}

// acc returns (creating on first touch) the accumulator for blk.
func (a *Applier) acc(blk ipv4.Block) *blockAcc {
	acc := a.accs[blk]
	if acc == nil {
		acc = &blockAcc{e: join(a.world.BaseRouting, a.world, a.tags, blk)}
		a.accs[blk] = acc
	}
	return acc
}

// touch marks acc dirty for the next publish.
func (a *Applier) touch(blk ipv4.Block, acc *blockAcc) {
	if !acc.dirty {
		acc.dirty = true
		a.dirty = append(a.dirty, blk)
	}
}

// Snapshot publishes the current state as an immutable epoch-stamped
// Index. It requires at least one applied day (an index over an empty
// daily window is meaningless, matching Build). Every call bumps the
// epoch, even if nothing changed since the last publish.
func (a *Applier) Snapshot() (*Index, error) {
	if a.world == nil {
		return nil, fmt.Errorf("query: snapshot before meta event")
	}
	n := a.days
	if n == 0 {
		return nil, fmt.Errorf("query: snapshot with no applied days")
	}
	w := (n + 63) / 64
	x := &Index{
		epoch:   a.epoch + 1,
		meta:    metaInfo{seed: a.world.Seed, numASes: len(a.world.ASes)},
		obsMeta: a.meta,
		days:    n,
		words:   w,
		routing: a.world.BaseRouting,
		world:   a.world,
		tags:    a.tags,
		icmp:    a.icmpUnion,
		servers: orEmpty(a.servers),
		routers: orEmpty(a.routers),
	}
	x.keys = a.dailyUnion.Blocks()

	// Clean blocks reuse the previous snapshot's compiled record (the
	// packed timelines are immutable once published) unless the window
	// crossed a 64-day word boundary, which changes every timeline's
	// layout. prevAt aligns the old and new sorted key arrays.
	var prevAt []int
	if a.prev != nil && a.prev.words == w {
		prevAt = make([]int, len(x.keys))
		j := 0
		for i, blk := range x.keys {
			for j < len(a.prev.keys) && a.prev.keys[j] < blk {
				j++
			}
			if j < len(a.prev.keys) && a.prev.keys[j] == blk {
				prevAt[i] = j
			} else {
				prevAt[i] = -1
			}
		}
	}
	x.blocks = par.Map(len(x.keys), a.opts.Workers, func(i int) blockData {
		blk := x.keys[i]
		acc := a.accs[blk]
		if prevAt != nil && prevAt[i] >= 0 && !acc.dirty {
			bd := a.prev.blocks[prevAt[i]]
			// Only the STU denominator depends on the window length.
			bd.view.STU = float64(acc.addrDays) / float64(n*256)
			return bd
		}
		return acc.compile(blk, n, w, a.fullWords)
	})

	// Per-epoch recomputation: the AS fold (sequential in block order,
	// like Build's) and the dataset-level summary run concurrently —
	// both scale with the number of blocks, not with the window length.
	var g par.Group
	g.Go(func() error { x.buildAS(); return nil })
	g.Go(func() error { a.assembleSummary(x, n); return nil })
	g.Wait() //nolint:errcheck // neither task fails

	for _, blk := range a.dirty {
		a.accs[blk].dirty = false
	}
	a.dirty = a.dirty[:0]
	a.prev = x
	a.epoch = x.epoch
	return x, nil
}

// compile materializes one block's immutable record from its
// accumulator, mirroring Build's compileBlock field for field.
func (acc *blockAcc) compile(blk ipv4.Block, n, w, fullWords int) blockData {
	bd := blockData{blk: blk, timelines: make([]uint64, 256*w)}
	if w == fullWords {
		copy(bd.timelines, acc.timelines)
	} else {
		for h := 0; h < 256; h++ {
			copy(bd.timelines[h*w:(h+1)*w], acc.timelines[h*fullWords:h*fullWords+w])
		}
	}
	v := &bd.view
	v.Block = blk.String()
	v.FD = acc.union.Count()
	v.STU = float64(acc.addrDays) / float64(n*256)
	v.ActiveDays = acc.activeDays
	if acc.traffic != nil {
		bd.traffic = acc.traffic
		v.TotalHits = acc.totalHits
	}
	if acc.ua != nil {
		v.UASamples = acc.ua.Samples
		v.UAUnique = acc.ua.Unique()
	}
	v.AS = acc.e.as
	v.Prefix = acc.e.prefix
	v.Country = acc.e.country
	v.RIR = acc.e.rir
	v.Pattern = acc.e.pattern
	v.RDNS = acc.e.rdns
	return bd
}

// assembleSummary fills x.partial and x.summary from the running
// accumulators — identical to buildSummary over the equivalent
// truncated dataset, without revisiting any applied day. Publishing
// through the same SummaryPartial.Finalize path as Build is what lets
// cluster shards mix batch-built and applier-built indexes freely.
func (a *Applier) assembleSummary(x *Index, n int) {
	run := a.meta.Run
	p := &SummaryPartial{
		Seed:         x.meta.seed,
		NumASes:      x.meta.numASes,
		WorldBlocks:  a.world.NumBlocks(),
		Days:         run.Days,
		DailyStart:   run.DailyStart,
		DailyLen:     n,
		Weeks:        a.weeks,
		ActiveBlocks: len(x.keys),
		DailyUnion:   a.dailyUnion.Len(),
		YearUnion:    a.wSum.union.Len(),
		ICMPUnion:    a.icmpUnion.Len(),
		Daily:        a.dSum.partial(),
		Weekly:       a.wSum.partial(),
	}

	cdn := a.cdn
	if a.scans == 0 {
		cdn = a.dailyUnion // no campaign yet: the whole-window fallback
	}
	p.CDNMonth = cdn.Len()
	p.CDNBoth = cdn.IntersectCount(a.icmpUnion)

	p.DayLens = make([]int, n)
	for i, s := range a.staging.Daily[:n] {
		p.DayLens[i] = s.Len()
	}
	p.Ups = append([]int(nil), a.ups...)
	p.Downs = append([]int(nil), a.downs...)

	if a.weeks > 0 {
		base := a.staging.Weekly[0]
		p.WeekBase = base.Len()
		p.WeekLastAppear = a.staging.Weekly[a.weeks-1].DiffCount(base)
	}

	// Same fold set as Build's: exactly the blocks whose stats events
	// carried a UA payload, in ascending order.
	var blocks []ipv4.Block
	for blk, acc := range a.accs {
		if acc.ua != nil {
			blocks = append(blocks, blk)
		}
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	p.UASamples, p.UAPrecision, p.UARegisters = foldUA(blocks, func(blk ipv4.Block) *obs.UAStat {
		return a.accs[blk].ua
	})

	x.partial = p
	x.summary = p.Finalize()
}
