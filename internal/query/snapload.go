package query

import (
	"encoding/binary"
	"math"
	"math/bits"
	"os"
	"unsafe"

	"ipscope/internal/ipv4"
	"ipscope/internal/obs"
	"ipscope/internal/par"
	"ipscope/internal/rdns"
	"ipscope/internal/synthnet"
	"ipscope/internal/useragent"
)

// errNoMmap signals that the platform (or this particular file) cannot
// be mapped; the loader falls back to a plain read.
var errNoMmap = &SnapshotError{Msg: "mmap unavailable"}

// LoadOptions controls snapshot loading.
type LoadOptions struct {
	// NoMmap forces the portable read-into-slice path even where mmap is
	// available.
	NoMmap bool
	// Workers bounds the load fan-out (block view assembly); <= 0 means
	// GOMAXPROCS. The loaded index is identical for any value.
	Workers int
}

// Loaded is a decoded snapshot: the reconstructed Index plus everything
// needed to verify, re-encode or resume from it.
//
// The Index may alias the snapshot's backing bytes (the zero-copy
// timeline section); when the snapshot was mmapped, Close unmaps them
// and the Index — and any Applier resumed from it — must not be used
// afterwards. A serving process simply never calls Close.
type Loaded struct {
	Index *Index
	Info  SnapshotInfo

	meta   obs.Meta
	resume *resumeState
	munmap func() error
}

// Close releases the snapshot's mapping, if any. See the type comment
// for the aliasing caveat.
func (l *Loaded) Close() error {
	if l.munmap == nil {
		return nil
	}
	f := l.munmap
	l.munmap = nil
	return f()
}

// Resumable reports whether this snapshot is an Applier checkpoint
// (carries resume state) rather than a plain index image.
func (l *Loaded) Resumable() bool { return l.resume != nil }

// Encode re-serializes the loaded snapshot. For a canonical file this
// is a byte-for-byte fixed point: Encode(Decode(data)) == data — the
// inspect tool's -verify check and the fuzz invariant.
func (l *Loaded) Encode() []byte {
	return encodeSnapshot(l.Index, l.Info.Shard, l.resume)
}

// hostLittleEndian reports whether native byte order matches the
// snapshot's on-disk order, the precondition for casting bulk sections
// in place.
var hostLittleEndian = func() bool {
	var buf [2]byte
	binary.NativeEndian.PutUint16(buf[:], 0x0102)
	return buf[0] == 0x02
}()

// castU64s reinterprets b as a []uint64 without copying when the host
// is little-endian and the data is 8-byte aligned (mmap pages and the
// loader's fallback buffers both are); nil means the caller must
// decode-copy instead.
func castU64s(b []byte) []uint64 {
	if !hostLittleEndian || len(b)%8 != 0 {
		return nil
	}
	if len(b) == 0 {
		return []uint64{}
	}
	if uintptr(unsafe.Pointer(&b[0]))%8 != 0 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8)
}

// LoadSnapshotFile loads a snapshot from disk: mmap where the platform
// supports it (zero-copy for the bulk sections), a plain read
// otherwise or when opts.NoMmap is set.
func LoadSnapshotFile(path string, opts LoadOptions) (*Loaded, error) {
	if !opts.NoMmap {
		if data, unmap, err := mmapFile(path); err == nil {
			l, derr := decodeSnapshot(data, opts)
			if derr != nil {
				unmap() //nolint:errcheck // decode error wins
				return nil, derr
			}
			l.munmap = unmap
			return l, nil
		}
		// mmap unavailable or failed: fall through to the portable path.
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodeSnapshot(data, opts)
}

// DecodeSnapshot decodes a snapshot from an in-memory image. The
// returned Index aliases data's timeline section; callers must not
// mutate data afterwards.
func DecodeSnapshot(data []byte) (*Loaded, error) {
	return decodeSnapshot(data, LoadOptions{})
}

// sdec is the little-endian sibling of the wire codec's wdec: a
// cursor that validates every count against the remaining bytes before
// allocating and latches the first error.
type sdec struct {
	p   []byte
	err error
}

func (d *sdec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = snapErrf(format, args...)
	}
}

func (d *sdec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.p) {
		d.fail("need %d bytes, have %d", n, len(d.p))
		return nil
	}
	b := d.p[:n]
	d.p = d.p[n:]
	return b
}

func (d *sdec) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *sdec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *sdec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *sdec) i() int       { return int(int64(d.u64())) }
func (d *sdec) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *sdec) empty() bool  { return len(d.p) == 0 }

// count reads a u64 element count and validates it against the bytes
// actually remaining, so a corrupt count cannot drive a giant
// allocation.
func (d *sdec) count(elemSize int) int {
	v := d.u64()
	if d.err != nil {
		return 0
	}
	if v > uint64(len(d.p))/uint64(elemSize) {
		d.fail("count %d exceeds remaining %d bytes (elem %d)", v, len(d.p), elemSize)
		return 0
	}
	return int(v)
}

// set decodes one canonical address set: ascending blocks, zero
// padding, no empty bitmaps.
func (d *sdec) set() *ipv4.Set {
	n := d.count(40)
	s := ipv4.NewSet()
	prev := int64(-1)
	for i := 0; i < n && d.err == nil; i++ {
		blk := d.u32()
		if int64(blk) <= prev {
			d.fail("set blocks not ascending at %d", blk)
			return s
		}
		prev = int64(blk)
		if d.u32() != 0 {
			d.fail("nonzero set padding")
			return s
		}
		var bm ipv4.Bitmap256
		for w := 0; w < 4; w++ {
			bm[w] = d.u64()
		}
		if d.err == nil && bm.IsEmpty() {
			d.fail("empty set bitmap for block %v", ipv4.Block(blk))
			return s
		}
		s.AddBlockBitmap(ipv4.Block(blk), &bm)
	}
	return s
}

func (d *sdec) finish(name string) error {
	if d.err != nil {
		return d.err
	}
	if !d.empty() {
		return snapErrf("%s section has %d trailing bytes", name, len(d.p))
	}
	return nil
}

// snapInfo is the decoded info section.
type snapInfo struct {
	days, words, nblocks int
	shard                *ShardRange
}

func decodeSnapshot(data []byte, opts LoadOptions) (*Loaded, error) {
	if len(data) < len(snapMagic) {
		return nil, ErrSnapshotTruncated
	}
	if string(data[:len(snapMagic)]) != snapMagic {
		return nil, snapErrf("bad magic")
	}
	if len(data) < snapPrefaceLen {
		return nil, ErrSnapshotTruncated
	}
	version := binary.LittleEndian.Uint16(data[8:])
	flags := binary.LittleEndian.Uint16(data[10:])
	count := binary.LittleEndian.Uint32(data[12:])
	epoch := binary.LittleEndian.Uint64(data[16:])
	total := binary.LittleEndian.Uint64(data[24:])
	if version != snapVersion {
		return nil, snapErrf("unsupported version %d", version)
	}
	if flags&^uint16(snapFlagResume) != 0 {
		return nil, snapErrf("unknown flags %#x", flags)
	}
	resumable := flags&snapFlagResume != 0
	want := uint32(numSections - 1)
	if resumable {
		want = numSections
	}
	if count != want {
		return nil, snapErrf("section count %d, want %d", count, want)
	}
	if total > uint64(len(data)) {
		return nil, ErrSnapshotTruncated
	}
	if total < uint64(len(data)) {
		return nil, snapErrf("%d trailing bytes after declared end", uint64(len(data))-total)
	}
	tableLen := snapPrefaceLen + snapTableEntry*int(count)
	if total < uint64(tableLen) {
		return nil, snapErrf("declared length %d shorter than section table", total)
	}

	// Section table: ids sequential, offsets 8-aligned and strictly
	// sequential, inter-section gap bytes zero.
	sections := make([][]byte, count)
	infos := make([]SectionInfo, count)
	expected := uint64(align8(tableLen))
	prevEnd := uint64(tableLen)
	for i := 0; i < int(count); i++ {
		e := data[snapPrefaceLen+snapTableEntry*i:]
		id := binary.LittleEndian.Uint32(e)
		reserved := binary.LittleEndian.Uint32(e[4:])
		off := binary.LittleEndian.Uint64(e[8:])
		length := binary.LittleEndian.Uint64(e[16:])
		if id != uint32(i+1) {
			return nil, snapErrf("section %d has id %d, want %d", i, id, i+1)
		}
		if reserved != 0 {
			return nil, snapErrf("nonzero reserved field in section table")
		}
		if off != expected {
			return nil, snapErrf("section %s at offset %d, want %d", sectionNames[id], off, expected)
		}
		if length > total-off {
			return nil, snapErrf("section %s overruns file", sectionNames[id])
		}
		for _, gap := range data[prevEnd:off] {
			if gap != 0 {
				return nil, snapErrf("nonzero gap byte before section %s", sectionNames[id])
			}
		}
		sections[i] = data[off : off+length]
		infos[i] = SectionInfo{ID: id, Name: sectionNames[id], Offset: off, Length: length}
		prevEnd = off + length
		expected = uint64(align8(int(prevEnd)))
	}
	if prevEnd != total {
		return nil, snapErrf("file length %d does not match last section end %d", total, prevEnd)
	}

	info, err := decodeInfo(sections[secInfo-1])
	if err != nil {
		return nil, err
	}
	meta, err := decodeMetaSection(sections[secMeta-1])
	if err != nil {
		return nil, err
	}
	if meta.Run.DailyLen > 0 && info.days > meta.Run.DailyLen {
		return nil, snapErrf("days %d exceed daily window %d", info.days, meta.Run.DailyLen)
	}
	keys, err := decodeBlocksSection(sections[secBlocks-1], info.nblocks)
	if err != nil {
		return nil, err
	}
	timelines, err := decodeTimelinesSection(sections[secTimelines-1], info)
	if err != nil {
		return nil, err
	}
	views := sections[secViews-1]
	if len(views) != 48*info.nblocks {
		return nil, snapErrf("views section length %d, want %d", len(views), 48*info.nblocks)
	}
	trafAt, err := decodeTrafficSection(sections[secTraffic-1], info.nblocks)
	if err != nil {
		return nil, err
	}
	tags, err := decodeTagsSection(sections[secTags-1])
	if err != nil {
		return nil, err
	}
	sd := &sdec{p: sections[secSets-1]}
	icmp, servers, routers := sd.set(), sd.set(), sd.set()
	if err := sd.finish("sets"); err != nil {
		return nil, err
	}
	partial, rest, err := DecodeSummaryPartialWire(sections[secPartial-1])
	if err != nil {
		return nil, snapErrf("partial section: %v", err)
	}
	if len(rest) != 0 {
		return nil, snapErrf("partial section has %d trailing bytes", len(rest))
	}
	if partial.DailyLen != info.days {
		return nil, snapErrf("partial daily window %d does not match info days %d",
			partial.DailyLen, info.days)
	}
	var resume *resumeState
	if resumable {
		resume, err = decodeResumeSection(sections[secResume-1], meta)
		if err != nil {
			return nil, err
		}
		if resume.weeks != partial.Weeks {
			return nil, snapErrf("resume weeks %d does not match partial weeks %d",
				resume.weeks, partial.Weeks)
		}
	}

	// Assemble the Index: regenerate the world (deterministic from the
	// meta), then join every block's view strings exactly as Build does —
	// stored scalars plus recomputed enrichment cannot drift between the
	// two paths.
	world := synthnet.Generate(meta.World)
	if partial.Seed != world.Seed || partial.NumASes != len(world.ASes) {
		return nil, snapErrf("partial identity does not match regenerated world")
	}
	x := &Index{
		epoch:   epoch,
		meta:    metaInfo{seed: world.Seed, numASes: len(world.ASes)},
		obsMeta: meta,
		days:    info.days,
		words:   info.words,
		keys:    keys,
		routing: world.BaseRouting,
		world:   world,
		tags:    tags,
		icmp:    icmp,
		servers: servers,
		routers: routers,
	}
	p := partial
	x.partial = &p
	x.summary = p.Finalize()

	stride := 256 * info.words
	x.blocks = par.Map(info.nblocks, opts.Workers, func(i int) blockData {
		blk := keys[i]
		bd := blockData{
			blk:       blk,
			timelines: timelines[i*stride : (i+1)*stride],
			traffic:   trafAt[i],
		}
		v := &bd.view
		w := views[i*48 : (i+1)*48]
		v.FD = int(int64(binary.LittleEndian.Uint64(w)))
		v.STU = math.Float64frombits(binary.LittleEndian.Uint64(w[8:]))
		v.ActiveDays = int(int64(binary.LittleEndian.Uint64(w[16:])))
		v.TotalHits = math.Float64frombits(binary.LittleEndian.Uint64(w[24:]))
		v.UASamples = int(int64(binary.LittleEndian.Uint64(w[32:])))
		v.UAUnique = math.Float64frombits(binary.LittleEndian.Uint64(w[40:]))
		v.Block = blk.String()
		e := join(world.BaseRouting, world, tags, blk)
		v.AS = e.as
		v.Prefix = e.prefix
		v.Country = e.country
		v.RIR = e.rir
		v.Pattern = e.pattern
		v.RDNS = e.rdns
		return bd
	})
	x.buildAS()

	l := &Loaded{
		Index: x,
		Info: SnapshotInfo{
			Epoch:     epoch,
			Days:      info.days,
			Words:     info.words,
			Blocks:    info.nblocks,
			Resumable: resumable,
			Shard:     info.shard,
			Sections:  infos,
		},
		meta:   meta,
		resume: resume,
	}
	return l, nil
}

func decodeInfo(sec []byte) (snapInfo, error) {
	if len(sec) != 48 {
		return snapInfo{}, snapErrf("info section length %d, want 48", len(sec))
	}
	d := &sdec{p: sec}
	var info snapInfo
	info.days = d.i()
	info.words = d.i()
	info.nblocks = d.i()
	present := d.u32()
	shardIndex := d.u32()
	shardCount := d.u32()
	lo := d.u32()
	hi := d.u32()
	pad := d.u32()
	if err := d.finish("info"); err != nil {
		return snapInfo{}, err
	}
	if pad != 0 {
		return snapInfo{}, snapErrf("nonzero info padding")
	}
	if info.days < 1 || info.days > 1<<20 {
		return snapInfo{}, snapErrf("implausible days %d", info.days)
	}
	if info.words != (info.days+63)/64 {
		return snapInfo{}, snapErrf("words %d inconsistent with days %d", info.words, info.days)
	}
	if info.nblocks < 0 || info.nblocks > 1<<24 {
		return snapInfo{}, snapErrf("implausible block count %d", info.nblocks)
	}
	switch present {
	case 0:
		if shardIndex|shardCount|lo|hi != 0 {
			return snapInfo{}, snapErrf("shard fields set without shard flag")
		}
	case 1:
		if shardCount == 0 || shardCount > 1<<20 || shardIndex >= shardCount {
			return snapInfo{}, snapErrf("implausible shard %d/%d", shardIndex, shardCount)
		}
		if lo > hi || hi > 1<<24 {
			return snapInfo{}, snapErrf("implausible shard range [%d,%d)", lo, hi)
		}
		info.shard = &ShardRange{Index: int(shardIndex), Count: int(shardCount), Lo: lo, Hi: hi}
	default:
		return snapInfo{}, snapErrf("invalid shard presence %d", present)
	}
	return info, nil
}

func decodeMetaSection(sec []byte) (obs.Meta, error) {
	d := &sdec{p: sec}
	var m obs.Meta
	m.World.Seed = d.u64()
	m.World.NumASes = int(d.u32())
	m.World.MeanBlocksPerAS = int(d.u32())
	r := &m.Run
	r.Days = int(d.u32())
	r.DailyStart = int(d.u32())
	r.DailyLen = int(d.u32())
	r.UADays = int(d.u32())
	n := int(d.u32())
	if d.err == nil && n > len(d.p)/4 {
		d.fail("scan day count %d exceeds section", n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		r.ICMPScanDays = append(r.ICMPScanDays, int(d.u32()))
	}
	for _, f := range []*float64{&r.PrefixChangeFrac, &r.BlockChangeFrac,
		&r.BGPCoupleProb, &r.BGPNoisePerDay, &r.JoinFrac, &r.LeaveFrac, &r.TrafficGrowth} {
		*f = d.f64()
	}
	r.Workers = int(int32(d.u32()))
	if err := d.finish("meta"); err != nil {
		return obs.Meta{}, err
	}
	// The same plausibility bounds the obs codec applies: a corrupt meta
	// must not drive a giant world generation.
	if r.Days < 0 || r.DailyLen < 0 || r.DailyLen > 1<<20 || r.Days > 1<<20 {
		return obs.Meta{}, snapErrf("implausible run geometry days=%d dailyLen=%d", r.Days, r.DailyLen)
	}
	if m.World.NumASes < 0 || m.World.MeanBlocksPerAS < 0 ||
		m.World.NumASes > 1<<22 || m.World.MeanBlocksPerAS > 1<<16 ||
		m.World.NumASes*m.World.MeanBlocksPerAS > 1<<24 {
		return obs.Meta{}, snapErrf("implausible world config ases=%d blocksPerAS=%d",
			m.World.NumASes, m.World.MeanBlocksPerAS)
	}
	return m, nil
}

func decodeBlocksSection(sec []byte, nblocks int) ([]ipv4.Block, error) {
	if len(sec) != 4*nblocks {
		return nil, snapErrf("blocks section length %d, want %d", len(sec), 4*nblocks)
	}
	keys := make([]ipv4.Block, nblocks)
	prev := int64(-1)
	for i := range keys {
		v := binary.LittleEndian.Uint32(sec[4*i:])
		if int64(v) <= prev {
			return nil, snapErrf("blocks not strictly ascending at index %d", i)
		}
		prev = int64(v)
		keys[i] = ipv4.Block(v)
	}
	return keys, nil
}

// decodeTimelinesSection returns the packed timeline words: a zero-copy
// cast of the section where the host allows it, otherwise one
// allocation plus a decode pass.
func decodeTimelinesSection(sec []byte, info snapInfo) ([]uint64, error) {
	wantWords := uint64(info.nblocks) * 256 * uint64(info.words)
	if uint64(len(sec)) != 8*wantWords {
		return nil, snapErrf("timelines section length %d, want %d", len(sec), 8*wantWords)
	}
	if words := castU64s(sec); words != nil {
		return words, nil
	}
	words := make([]uint64, wantWords)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(sec[8*i:])
	}
	return words, nil
}

const trafficRecLen = 8 + 256*2 + 256*8

func decodeTrafficSection(sec []byte, nblocks int) ([]*blockTraffic, error) {
	d := &sdec{p: sec}
	m := d.count(trafficRecLen)
	if d.err != nil {
		return nil, d.err
	}
	trafAt := make([]*blockTraffic, nblocks)
	prev := int64(-1)
	for i := 0; i < m; i++ {
		idx := d.u32()
		if int64(idx) <= prev {
			return nil, snapErrf("traffic records not ascending at %d", idx)
		}
		prev = int64(idx)
		if int(idx) >= nblocks {
			return nil, snapErrf("traffic record for block index %d of %d", idx, nblocks)
		}
		if d.u32() != 0 {
			return nil, snapErrf("nonzero traffic padding")
		}
		rec := d.take(256*2 + 256*8)
		if d.err != nil {
			return nil, d.err
		}
		t := &blockTraffic{}
		for h := 0; h < 256; h++ {
			t.daysActive[h] = binary.LittleEndian.Uint16(rec[2*h:])
		}
		hitsB := rec[256*2:]
		for h := 0; h < 256; h++ {
			t.hits[h] = math.Float64frombits(binary.LittleEndian.Uint64(hitsB[8*h:]))
		}
		trafAt[idx] = t
	}
	if err := d.finish("traffic"); err != nil {
		return nil, err
	}
	return trafAt, nil
}

func decodeTagsSection(sec []byte) (*rdns.TagIndex, error) {
	d := &sdec{p: sec}
	n := d.count(8)
	pairs := make([]rdns.BlockTag, 0, n)
	prev := int64(-1)
	for i := 0; i < n && d.err == nil; i++ {
		blk := d.u32()
		tag := d.u32()
		if int64(blk) <= prev {
			return nil, snapErrf("tag blocks not ascending at %d", blk)
		}
		prev = int64(blk)
		if tag > uint32(rdns.Dynamic) {
			return nil, snapErrf("invalid rDNS tag %d", tag)
		}
		pairs = append(pairs, rdns.BlockTag{Block: ipv4.Block(blk), Tag: rdns.Tag(tag)})
	}
	if err := d.finish("tags"); err != nil {
		return nil, err
	}
	return rdns.NewTagIndex(pairs), nil
}

func decodeResumeSection(sec []byte, meta obs.Meta) (*resumeState, error) {
	d := &sdec{p: sec}
	r := &resumeState{}
	r.weeks = d.i()
	r.scans = d.i()
	switch d.u8() {
	case 0:
	case 1:
		r.surfacesSeen = true
	default:
		return nil, snapErrf("invalid surfaces flag")
	}
	if d.err == nil {
		if r.weeks < 0 || r.weeks > meta.Run.NumWeeks() {
			return nil, snapErrf("implausible resume weeks %d", r.weeks)
		}
		if r.scans < 0 || r.scans > len(meta.Run.ICMPScanDays) {
			return nil, snapErrf("implausible resume scans %d", r.scans)
		}
	}
	r.yearUnion = d.set()
	if r.weeks > 0 {
		r.week0 = d.set()
		r.weekLast = d.set()
	}
	if r.scans > 0 {
		r.cdnFrom = d.i()
		r.cdnTo = d.i()
		r.cdn = d.set()
	}
	n := d.count(13) // minimum entry: block u32 + samples u64 + prec u8
	r.ua = make(map[ipv4.Block]*obs.UAStat, n)
	prev := int64(-1)
	for i := 0; i < n && d.err == nil; i++ {
		blk := d.u32()
		if int64(blk) <= prev {
			return nil, snapErrf("resume UA blocks not ascending at %d", blk)
		}
		prev = int64(blk)
		samples := d.u64()
		st := &obs.UAStat{Samples: int(samples)}
		p := d.u8()
		if p != 0 {
			if p < 4 || p > 16 {
				return nil, snapErrf("invalid HLL precision %d", p)
			}
			regs := d.take(1 << p)
			if d.err != nil {
				break
			}
			sk, err := useragent.HLLFromRegisters(p, regs)
			if err != nil {
				return nil, snapErrf("bad HLL registers: %v", err)
			}
			st.Sketch = sk
		}
		r.uaBlocks = append(r.uaBlocks, ipv4.Block(blk))
		r.ua[ipv4.Block(blk)] = st
	}
	if err := d.finish("resume"); err != nil {
		return nil, err
	}
	return r, nil
}

// ResumeApplier reconstructs the Applier whose EncodeCheckpoint
// produced this snapshot: same published epoch, same accumulated state,
// ready to keep applying the tail of the obs stream. The returned
// SkipCounts tell the stream layer which already-applied indexed events
// to discard at the frame level (obs.FollowWith / obs.StreamDecodeFrom)
// — the ordering contract is satisfied without replaying them.
//
// Call at most once per Loaded: the Applier takes over (clones of) the
// resume state. The accepted lossiness is documented in DESIGN.md:
// staging totals the Applier never reads are zeroed, and traffic-only
// stats for never-active blocks are dropped — exactly as Build drops
// them.
func (l *Loaded) ResumeApplier(opts Options) (*Applier, obs.SkipCounts, error) {
	r := l.resume
	if r == nil {
		return nil, obs.SkipCounts{}, snapErrf("not a resumable checkpoint")
	}
	x := l.Index
	a := NewApplier(opts)
	a.meta = l.meta
	a.world = x.world
	a.tags = x.tags
	a.fullWords = (l.meta.Run.DailyLen + 63) / 64
	a.staging = &obs.Data{}
	if err := a.staging.Observe(obs.MetaEvent{Meta: l.meta}); err != nil {
		return nil, obs.SkipCounts{}, err
	}
	a.days, a.weeks, a.scans = x.days, r.weeks, r.scans
	a.accs = make(map[ipv4.Block]*blockAcc, len(x.keys))
	a.dailyUnion = ipv4.NewSet()

	// Rebuild the per-block accumulators and the daily staging sets from
	// the packed timelines: bit d of host h's timeline says h was active
	// on day d, which is exactly the information applyDay folded in.
	dayMask := make([]uint64, x.words)
	for i, blk := range x.keys {
		bd := &x.blocks[i]
		acc := &blockAcc{
			traffic: bd.traffic,
			e:       join(x.routing, x.world, x.tags, blk),
		}
		if bd.traffic != nil {
			acc.totalHits = bd.view.TotalHits
		}
		acc.timelines = make([]uint64, 256*a.fullWords)
		for w := range dayMask {
			dayMask[w] = 0
		}
		for h := 0; h < 256; h++ {
			src := bd.timelines[h*x.words : (h+1)*x.words]
			dst := acc.timelines[h*a.fullWords:]
			any := false
			for wi, wv := range src {
				dst[wi] = wv
				if wv != 0 {
					any = true
					dayMask[wi] |= wv
					acc.addrDays += bits.OnesCount64(wv)
				}
			}
			if any {
				acc.union.Set(byte(h))
			}
		}
		if acc.union.IsEmpty() {
			return nil, obs.SkipCounts{}, snapErrf("indexed block %v has an empty timeline", blk)
		}
		for wi, wv := range dayMask {
			acc.activeDays += bits.OnesCount64(wv)
			for wv != 0 {
				b := bits.TrailingZeros64(wv)
				wv &^= 1 << b
				day := wi*64 + b
				if day >= x.days {
					return nil, obs.SkipCounts{}, snapErrf("block %v active on day %d beyond window %d",
						blk, day, x.days)
				}
				var bm ipv4.Bitmap256
				wordIdx, bit := day/64, uint(day%64)
				for h := 0; h < 256; h++ {
					if bd.timelines[h*x.words+wordIdx]&(1<<bit) != 0 {
						bm.Set(byte(h))
					}
				}
				a.staging.Daily[day].AddBlockBitmap(blk, &bm)
			}
		}
		a.accs[blk] = acc
		a.dailyUnion.AddBlockBitmap(blk, &acc.union)
	}

	a.icmpUnion = x.icmp
	dp, wp := x.partial.Daily, x.partial.Weekly
	a.dSum = seriesAccum{
		union:    a.dailyUnion,
		snapASes: append([][]uint32(nil), dp.SnapASes...),
		ipSum:    dp.IPSum,
		blkSum:   dp.BlockSum,
		snaps:    dp.Snapshots,
	}
	a.wSum = seriesAccum{
		union:    r.yearUnion.Clone(),
		snapASes: append([][]uint32(nil), wp.SnapASes...),
		ipSum:    wp.IPSum,
		blkSum:   wp.BlockSum,
		snaps:    wp.Snapshots,
	}
	if r.weeks > 0 {
		a.staging.Weekly[0] = r.week0
		a.staging.Weekly[r.weeks-1] = r.weekLast
	}
	if r.scans > 0 {
		a.cdnFrom, a.cdnTo = r.cdnFrom, r.cdnTo
		a.cdn = r.cdn.Clone()
	}
	a.ups = append([]int(nil), x.partial.Ups...)
	a.downs = append([]int(nil), x.partial.Downs...)
	for _, blk := range r.uaBlocks {
		acc := a.acc(blk)
		acc.ua = r.ua[blk]
	}
	if r.surfacesSeen {
		a.servers, a.routers = x.servers, x.routers
	}
	a.epoch = x.epoch
	a.prev = x

	skip := obs.SkipCounts{Days: x.days, Weeks: r.weeks, Scans: r.scans}
	return a, skip, nil
}
