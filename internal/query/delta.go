package query

// delta.go computes what changed between two epochs of the same
// dataset: blocks newly active / gone dark / changed, per-AS movement,
// and summary-counter diffs. Like every cluster aggregate, the result
// travels as a mergeable partial (partial.go's discipline: integers
// sum, order-sensitive float folds ship per-block operands in ascending
// block order, capped sample lists concatenate across ascending shard
// ranges) and the single-node answer is the one-partial merge, so a
// routed delta cannot drift from the monolithic one.
//
// The reference semantics are purely a function of the two indexes'
// per-/24 views: an index built at day N keys every block that was ever
// active in days 0..N-1, so between a shorter and a longer prefix of
// the same stream the key sets grow monotonically. A block present only
// in the newer index is newly active; a block whose activity counters
// (FD, active days, total hits, UA samples) are identical in both saw
// no activity anywhere in the span — it sat dark; any counter delta
// makes it changed. This depends only on view fields the Build/Applier
// equivalence invariant already pins, so Build- and Applier-built
// epochs diff identically.

import (
	"fmt"
	"sort"
)

// DefaultDeltaBlockList caps the per-category example block lists in a
// delta response when the request does not say otherwise.
const DefaultDeltaBlockList = 16

// BlockChange is one example block in a delta response: the block, its
// AS, and how its activity counters moved across the span. For a newly
// active block the deltas are its absolute counters (it had none
// before); for a gone-dark block they are zero by construction.
type BlockChange struct {
	Block           string  `json:"block"`
	AS              uint32  `json:"as"`
	FDDelta         int     `json:"fdDelta"`
	ActiveDaysDelta int     `json:"activeDaysDelta"`
	HitsDelta       float64 `json:"hitsDelta"`
}

// ASMovementPartial is one AS's share of the movement aggregate on one
// shard. Block counts are partition-disjoint integers; the hit totals
// ship as per-block operands in ascending block order so the merged
// refold replays the exact single-node float sequence.
type ASMovementPartial struct {
	AS         uint32    `json:"as"`
	FromBlocks int       `json:"fromBlocks"`
	ToBlocks   int       `json:"toBlocks"`
	BothBlocks int       `json:"bothBlocks"`
	FromHits   []float64 `json:"fromHits"`
	ToHits     []float64 `json:"toHits"`
}

// ASMovement is the finalized per-AS movement row: blocks gained and
// lost across the span and the signed traffic delta. Only ASes that
// actually moved appear in a delta response.
type ASMovement struct {
	AS           uint32  `json:"as"`
	BlocksGained int     `json:"blocksGained"`
	BlocksLost   int     `json:"blocksLost"`
	HitsDelta    float64 `json:"hitsDelta"`
}

// DeltaPartial is one shard's share of a delta computation. The
// identity header must agree across shards; everything else merges
// per partial.go's rules.
type DeltaPartial struct {
	// Identity (equal on every shard; Merge rejects mismatches).
	Seed      uint64 `json:"seed"`
	FromEpoch uint64 `json:"fromEpoch"`
	ToEpoch   uint64 `json:"toEpoch"`
	FromDays  int    `json:"fromDays"`
	ToDays    int    `json:"toDays"`

	// Category cardinalities over the full slice (additive).
	NewBlocks      int `json:"newBlocks"`
	GoneDarkBlocks int `json:"goneDarkBlocks"`
	ChangedBlocks  int `json:"changedBlocks"`

	// Summary-counter diffs (differences of the slice's additive
	// summary counters, themselves additive).
	ActiveBlocksDelta int `json:"activeBlocksDelta"`
	ActiveAddrsDelta  int `json:"activeAddrsDelta"`
	YearUnionDelta    int `json:"yearUnionDelta"`
	ICMPUnionDelta    int `json:"icmpUnionDelta"`
	ChurnUp           int `json:"churnUp"`
	ChurnDown         int `json:"churnDown"`
	WeeksAdded        int `json:"weeksAdded"`

	// Capped example lists, ascending block order within the slice.
	NewSample      []BlockChange `json:"newSample,omitempty"`
	GoneDarkSample []BlockChange `json:"goneDarkSample,omitempty"`
	ChangedSample  []BlockChange `json:"changedSample,omitempty"`

	// Per-AS movement rows, ascending AS order.
	ASMovement []ASMovementPartial `json:"asMovement,omitempty"`
}

// DeltaView is the /v1/delta response payload.
type DeltaView struct {
	FromEpoch uint64 `json:"fromEpoch"`
	ToEpoch   uint64 `json:"toEpoch"`
	FromDays  int    `json:"fromDays"`
	ToDays    int    `json:"toDays"`

	NewBlocks      int `json:"newBlocks"`
	GoneDarkBlocks int `json:"goneDarkBlocks"`
	ChangedBlocks  int `json:"changedBlocks"`

	ActiveBlocksDelta int `json:"activeBlocksDelta"`
	ActiveAddrsDelta  int `json:"activeAddrsDelta"`
	YearUnionDelta    int `json:"yearUnionDelta"`
	ICMPUnionDelta    int `json:"icmpUnionDelta"`
	ChurnUp           int `json:"churnUp"`
	ChurnDown         int `json:"churnDown"`
	WeeksAdded        int `json:"weeksAdded"`

	// Truncated reports that at least one sample list was capped below
	// its category's full cardinality.
	Truncated bool `json:"truncated"`

	NewSample      []BlockChange `json:"newSample"`
	GoneDarkSample []BlockChange `json:"goneDarkSample"`
	ChangedSample  []BlockChange `json:"changedSample"`
	ASMovement     []ASMovement  `json:"asMovement"`
}

// DeltaPartial computes this shard's share of the delta from an older
// epoch of the same dataset slice. maxBlocks caps each sample list
// (<=0 means DefaultDeltaBlockList).
func (x *Index) DeltaPartial(from *Index, maxBlocks int) (DeltaPartial, error) {
	if from == nil {
		return DeltaPartial{}, fmt.Errorf("query: delta needs a from index")
	}
	if from.meta.seed != x.meta.seed {
		return DeltaPartial{}, fmt.Errorf("query: delta indexes describe different datasets")
	}
	if from.days > x.days {
		return DeltaPartial{}, fmt.Errorf("query: delta from-index is newer (%d days) than to-index (%d days)", from.days, x.days)
	}
	if maxBlocks <= 0 {
		maxBlocks = DefaultDeltaBlockList
	}
	p := DeltaPartial{
		Seed:      x.meta.seed,
		FromEpoch: from.epoch,
		ToEpoch:   x.epoch,
		FromDays:  from.days,
		ToDays:    x.days,

		ActiveBlocksDelta: x.partial.ActiveBlocks - from.partial.ActiveBlocks,
		ActiveAddrsDelta:  x.partial.DailyUnion - from.partial.DailyUnion,
		YearUnionDelta:    x.partial.YearUnion - from.partial.YearUnion,
		ICMPUnionDelta:    x.partial.ICMPUnion - from.partial.ICMPUnion,
		WeeksAdded:        x.partial.Weeks - from.partial.Weeks,
	}
	p.ChurnUp, p.ChurnDown = x.ChurnSince(from.days)

	sample := func(list *[]BlockChange, c BlockChange) {
		if len(*list) < maxBlocks {
			*list = append(*list, c)
		}
	}
	move := map[uint32]*ASMovementPartial{}
	moveRow := func(as uint32) *ASMovementPartial {
		m := move[as]
		if m == nil {
			m = &ASMovementPartial{AS: as}
			move[as] = m
		}
		return m
	}

	// Merge-walk both sorted key arrays; every branch below visits
	// blocks in ascending order, so the sample lists and per-AS hit
	// operands come out in the canonical fold order.
	i, j := 0, 0
	for i < len(from.keys) || j < len(x.keys) {
		switch {
		case j >= len(x.keys) || (i < len(from.keys) && from.keys[i] < x.keys[j]):
			// In from only: cannot happen between prefixes of one
			// stream, but degrade gracefully — the block fell out, so
			// it is gone dark and its AS lost it.
			fb := &from.blocks[i]
			p.GoneDarkBlocks++
			sample(&p.GoneDarkSample, BlockChange{
				Block: fb.view.Block, AS: fb.view.AS,
				FDDelta:         -fb.view.FD,
				ActiveDaysDelta: -fb.view.ActiveDays,
				HitsDelta:       -fb.view.TotalHits,
			})
			if fb.view.AS != 0 {
				m := moveRow(fb.view.AS)
				m.FromBlocks++
				m.FromHits = append(m.FromHits, fb.view.TotalHits)
			}
			i++
		case i >= len(from.keys) || x.keys[j] < from.keys[i]:
			// In to only: newly active in the span.
			tb := &x.blocks[j]
			p.NewBlocks++
			sample(&p.NewSample, BlockChange{
				Block: tb.view.Block, AS: tb.view.AS,
				FDDelta:         tb.view.FD,
				ActiveDaysDelta: tb.view.ActiveDays,
				HitsDelta:       tb.view.TotalHits,
			})
			if tb.view.AS != 0 {
				m := moveRow(tb.view.AS)
				m.ToBlocks++
				m.ToHits = append(m.ToHits, tb.view.TotalHits)
			}
			j++
		default:
			fb, tb := &from.blocks[i], &x.blocks[j]
			if tb.view.AS != 0 {
				m := moveRow(tb.view.AS)
				m.ToBlocks++
				m.BothBlocks++
				m.ToHits = append(m.ToHits, tb.view.TotalHits)
			}
			if fb.view.AS != 0 {
				m := moveRow(fb.view.AS)
				m.FromBlocks++
				m.FromHits = append(m.FromHits, fb.view.TotalHits)
				if tb.view.AS != fb.view.AS {
					// Reassigned: the old AS did not keep it.
					m.BothBlocks--
				}
			}
			if fb.view.FD == tb.view.FD && fb.view.ActiveDays == tb.view.ActiveDays &&
				fb.view.TotalHits == tb.view.TotalHits && fb.view.UASamples == tb.view.UASamples {
				// No counter moved: the block saw no activity anywhere
				// in the span.
				p.GoneDarkBlocks++
				sample(&p.GoneDarkSample, BlockChange{Block: tb.view.Block, AS: tb.view.AS})
			} else {
				p.ChangedBlocks++
				sample(&p.ChangedSample, BlockChange{
					Block: tb.view.Block, AS: tb.view.AS,
					FDDelta:         tb.view.FD - fb.view.FD,
					ActiveDaysDelta: tb.view.ActiveDays - fb.view.ActiveDays,
					HitsDelta:       tb.view.TotalHits - fb.view.TotalHits,
				})
			}
			i++
			j++
		}
	}

	ases := make([]uint32, 0, len(move))
	for as := range move {
		ases = append(ases, as)
	}
	sort.Slice(ases, func(a, b int) bool { return ases[a] < ases[b] })
	for _, as := range ases {
		p.ASMovement = append(p.ASMovement, *move[as])
	}
	return p, nil
}

// MergeDeltaPartials folds per-shard delta partials — one per shard of
// a complete, disjoint partition, in ascending block-range order — into
// the final view. The one-partial case is the single-node answer.
func MergeDeltaPartials(parts []DeltaPartial, maxBlocks int) (DeltaView, error) {
	if len(parts) == 0 {
		return DeltaView{}, fmt.Errorf("query: no delta partials to merge")
	}
	if maxBlocks <= 0 {
		maxBlocks = DefaultDeltaBlockList
	}
	first := parts[0]
	v := DeltaView{
		FromEpoch: first.FromEpoch,
		ToEpoch:   first.ToEpoch,
		FromDays:  first.FromDays,
		ToDays:    first.ToDays,
	}
	move := map[uint32]*ASMovementPartial{}
	for _, p := range parts {
		if p.Seed != first.Seed || p.FromDays != first.FromDays || p.ToDays != first.ToDays ||
			p.FromEpoch != first.FromEpoch || p.ToEpoch != first.ToEpoch {
			return DeltaView{}, fmt.Errorf("query: delta partials describe different spans")
		}
		v.NewBlocks += p.NewBlocks
		v.GoneDarkBlocks += p.GoneDarkBlocks
		v.ChangedBlocks += p.ChangedBlocks
		v.ActiveBlocksDelta += p.ActiveBlocksDelta
		v.ActiveAddrsDelta += p.ActiveAddrsDelta
		v.YearUnionDelta += p.YearUnionDelta
		v.ICMPUnionDelta += p.ICMPUnionDelta
		v.ChurnUp += p.ChurnUp
		v.ChurnDown += p.ChurnDown
		v.WeeksAdded = first.WeeksAdded
		for _, c := range p.NewSample {
			if len(v.NewSample) < maxBlocks {
				v.NewSample = append(v.NewSample, c)
			}
		}
		for _, c := range p.GoneDarkSample {
			if len(v.GoneDarkSample) < maxBlocks {
				v.GoneDarkSample = append(v.GoneDarkSample, c)
			}
		}
		for _, c := range p.ChangedSample {
			if len(v.ChangedSample) < maxBlocks {
				v.ChangedSample = append(v.ChangedSample, c)
			}
		}
		// Shards arrive in ascending block-range order, so appending
		// each AS row's operands preserves the global ascending block
		// order the single-node fold uses.
		for _, m := range p.ASMovement {
			t := move[m.AS]
			if t == nil {
				t = &ASMovementPartial{AS: m.AS}
				move[m.AS] = t
			}
			t.FromBlocks += m.FromBlocks
			t.ToBlocks += m.ToBlocks
			t.BothBlocks += m.BothBlocks
			t.FromHits = append(t.FromHits, m.FromHits...)
			t.ToHits = append(t.ToHits, m.ToHits...)
		}
	}
	v.Truncated = v.NewBlocks > len(v.NewSample) ||
		v.GoneDarkBlocks > len(v.GoneDarkSample) ||
		v.ChangedBlocks > len(v.ChangedSample)

	ases := make([]uint32, 0, len(move))
	for as := range move {
		ases = append(ases, as)
	}
	sort.Slice(ases, func(a, b int) bool { return ases[a] < ases[b] })
	v.ASMovement = []ASMovement{}
	for _, as := range ases {
		m := move[as]
		var fromSum, toSum float64
		for _, h := range m.FromHits {
			fromSum += h
		}
		for _, h := range m.ToHits {
			toSum += h
		}
		row := ASMovement{
			AS:           m.AS,
			BlocksGained: m.ToBlocks - m.BothBlocks,
			BlocksLost:   m.FromBlocks - m.BothBlocks,
			HitsDelta:    toSum - fromSum,
		}
		if row.BlocksGained != 0 || row.BlocksLost != 0 || row.HitsDelta != 0 {
			v.ASMovement = append(v.ASMovement, row)
		}
	}
	return v, nil
}

// Delta is the single-node delta: the one-partial merge, so routed and
// monolithic answers agree by construction.
func (x *Index) Delta(from *Index, maxBlocks int) (DeltaView, error) {
	p, err := x.DeltaPartial(from, maxBlocks)
	if err != nil {
		return DeltaView{}, err
	}
	return MergeDeltaPartials([]DeltaPartial{p}, maxBlocks)
}

// ChurnSince sums the per-transition up/down event counts over the
// transitions that happened after day fromDays closed — the churn a
// consumer at fromDays has not seen yet. fromDays <= 0 covers the whole
// window.
func (x *Index) ChurnSince(fromDays int) (up, down int) {
	start := fromDays - 1
	if start < 0 {
		start = 0
	}
	for i := start; i < len(x.partial.Ups); i++ {
		up += x.partial.Ups[i]
		down += x.partial.Downs[i]
	}
	return up, down
}

// ActiveASNs returns the sorted AS numbers that own at least one
// indexed block in this slice.
func (x *Index) ActiveASNs() []uint32 {
	out := make([]uint32, len(x.asNums))
	for i, as := range x.asNums {
		out[i] = uint32(as)
	}
	return out
}

// AtEpoch returns a shallow copy of the index stamped with a different
// epoch — the immutable payload is shared. History rings require
// strictly increasing epochs; this lets independently built indexes
// (Build always stamps epoch 1) take distinct retention slots.
func (x *Index) AtEpoch(e uint64) *Index {
	c := *x
	c.epoch = e
	return &c
}

// MovementEntryPartial is one shard's totals at one retained epoch.
// BaseEpoch names the prior retained epoch the churn columns are
// relative to (0 on the oldest retained entry, whose churn is zero);
// merging requires every shard to agree on it.
type MovementEntryPartial struct {
	Epoch        uint64   `json:"epoch"`
	Days         int      `json:"days"`
	BaseEpoch    uint64   `json:"baseEpoch"`
	ActiveBlocks int      `json:"activeBlocks"`
	ActiveAddrs  int      `json:"activeAddrs"`
	ChurnUp      int      `json:"churnUp"`
	ChurnDown    int      `json:"churnDown"`
	ASes         []uint32 `json:"ases,omitempty"`
}

// MovementPartial is one shard's share of the /v1/movement series.
type MovementPartial struct {
	Seed        uint64                 `json:"seed"`
	OldestEpoch uint64                 `json:"oldestEpoch"`
	NewestEpoch uint64                 `json:"newestEpoch"`
	Entries     []MovementEntryPartial `json:"entries,omitempty"`
}

// MovementEntry is the finalized per-epoch row of the movement series.
type MovementEntry struct {
	Epoch        uint64 `json:"epoch"`
	Days         int    `json:"days"`
	ActiveBlocks int    `json:"activeBlocks"`
	ActiveAddrs  int    `json:"activeAddrs"`
	ChurnUp      int    `json:"churnUp"`
	ChurnDown    int    `json:"churnDown"`
	ASCount      int    `json:"asCount"`
}

// MovementView is the /v1/movement response payload. The epoch range is
// the cluster-wide common retained range the series was computed over.
type MovementView struct {
	OldestEpoch uint64          `json:"oldestEpoch"`
	NewestEpoch uint64          `json:"newestEpoch"`
	Series      []MovementEntry `json:"series"`
}

// MovementEntryPartial derives this shard's movement row for the index,
// with churn measured against the prior retained epoch (nil base: the
// oldest retained entry, churn zero by definition).
func (x *Index) MovementEntryPartial(base *Index) MovementEntryPartial {
	e := MovementEntryPartial{
		Epoch:        x.epoch,
		Days:         x.days,
		ActiveBlocks: x.partial.ActiveBlocks,
		ActiveAddrs:  x.partial.DailyUnion,
		ASes:         x.ActiveASNs(),
	}
	if base != nil {
		e.BaseEpoch = base.epoch
		e.ChurnUp, e.ChurnDown = x.ChurnSince(base.days)
	}
	return e
}

// MergeMovementPartials folds per-shard movement series into the final
// view. Shards may retain skewed epoch ranges: only epochs present on
// every shard with agreeing geometry (Days, BaseEpoch) survive, and the
// reported range is the common one (max of oldests, min of newests).
// Integer totals sum; the AS count is the cardinality of the sorted-set
// union, exact for block-disjoint shards.
func MergeMovementPartials(parts []MovementPartial) (MovementView, error) {
	if len(parts) == 0 {
		return MovementView{}, fmt.Errorf("query: no movement partials to merge")
	}
	first := parts[0]
	v := MovementView{OldestEpoch: first.OldestEpoch, NewestEpoch: first.NewestEpoch}
	for _, p := range parts[1:] {
		if p.Seed != first.Seed {
			return MovementView{}, fmt.Errorf("query: movement partials describe different datasets")
		}
		if p.OldestEpoch > v.OldestEpoch {
			v.OldestEpoch = p.OldestEpoch
		}
		if p.NewestEpoch < v.NewestEpoch {
			v.NewestEpoch = p.NewestEpoch
		}
	}
	v.Series = []MovementEntry{}
	if v.NewestEpoch < v.OldestEpoch || v.NewestEpoch == 0 {
		v.OldestEpoch, v.NewestEpoch = 0, 0
		return v, nil
	}
	for e := v.OldestEpoch; e <= v.NewestEpoch; e++ {
		var row MovementEntry
		var ases []uint32
		ok := true
		for pi := range parts {
			var entry *MovementEntryPartial
			for i := range parts[pi].Entries {
				if parts[pi].Entries[i].Epoch == e {
					entry = &parts[pi].Entries[i]
					break
				}
			}
			if entry == nil {
				ok = false
				break
			}
			if pi == 0 {
				row = MovementEntry{Epoch: e, Days: entry.Days}
			} else if entry.Days != row.Days {
				ok = false
				break
			}
			row.ActiveBlocks += entry.ActiveBlocks
			row.ActiveAddrs += entry.ActiveAddrs
			row.ChurnUp += entry.ChurnUp
			row.ChurnDown += entry.ChurnDown
			ases = unionSortedU32(ases, entry.ASes)
		}
		if !ok {
			continue
		}
		// Base agreement: re-check across shards (first pass kept rows
		// whose Days agree; churn bases must agree too).
		base := baseEpochAt(parts[0], e)
		for pi := 1; pi < len(parts) && ok; pi++ {
			if baseEpochAt(parts[pi], e) != base {
				ok = false
			}
		}
		if !ok {
			continue
		}
		row.ASCount = len(ases)
		v.Series = append(v.Series, row)
	}
	return v, nil
}

// DeltaShardResponse is the /v1/cluster/delta body: the shard's delta
// partial plus its retained ring range, which the router folds into the
// cluster-wide common range even when this shard answered successfully.
type DeltaShardResponse struct {
	DeltaPartial
	RingOldest uint64 `json:"ringOldest"`
	RingNewest uint64 `json:"ringNewest"`
}

// MovementShardResponse is the /v1/cluster/movement body: the shard's
// movement series plus its retained ring range.
type MovementShardResponse struct {
	MovementPartial
	RingOldest uint64 `json:"ringOldest"`
	RingNewest uint64 `json:"ringNewest"`
}

// baseEpochAt looks up the churn base recorded for epoch e in p.
func baseEpochAt(p MovementPartial, e uint64) uint64 {
	for i := range p.Entries {
		if p.Entries[i].Epoch == e {
			return p.Entries[i].BaseEpoch
		}
	}
	return 0
}
