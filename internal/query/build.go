package query

import (
	"fmt"
	"sort"

	"ipscope/internal/bgp"
	"ipscope/internal/ipv4"
	"ipscope/internal/obs"
	"ipscope/internal/par"
	"ipscope/internal/rdns"
	"ipscope/internal/synthnet"
	"ipscope/internal/useragent"
)

// Build compiles src into an Index. The world is regenerated
// deterministically from the dataset's embedded configuration, exactly
// as the batch analysis side does, so a stored dataset file is all a
// serving node needs.
func Build(src obs.Source, opts Options) (*Index, error) {
	d, err := src.Observations()
	if err != nil {
		return nil, err
	}
	if len(d.Daily) == 0 {
		return nil, fmt.Errorf("query: dataset has no daily window")
	}
	world := synthnet.Generate(d.Meta.World)
	w := opts.Workers

	x := &Index{
		epoch:   1,
		meta:    metaInfo{seed: world.Seed, numASes: len(world.ASes)},
		obsMeta: d.Meta,
		days:    len(d.Daily),
		words:   (len(d.Daily) + 63) / 64,
		routing: world.BaseRouting,
		world:   world,
		icmp:    d.ICMPUnion(),
		servers: orEmpty(d.ServerSet),
		routers: orEmpty(d.RouterSet),
	}
	x.tags = classifyWorld(world, w, opts.Keep)

	// Per-/24 records in ascending block order. Each block compiles from
	// its own slice of the dataset into a preallocated slot, so shard
	// boundaries cannot reorder anything.
	dailyUnion := ipv4.UnionAll(d.Daily, w)
	x.keys = dailyUnion.Blocks()
	x.blocks = par.Map(len(x.keys), w, func(i int) blockData {
		return x.compileBlock(d, x.keys[i])
	})

	x.buildAS()
	x.buildSummary(d, dailyUnion)
	return x, nil
}

func orEmpty(s *ipv4.Set) *ipv4.Set {
	if s == nil {
		return ipv4.NewSet()
	}
	return s
}

// classifyWorld computes the rDNS tag for every world block keep
// accepts (nil = all; not just active blocks: /v1/addr enriches
// unallocated-but-routed space too). Zone classification is pure per
// block, so neither the fan-out nor the keep-restriction can change
// any kept block's tag — a shard classifies exactly what a single
// node would for its slice.
func classifyWorld(world *synthnet.World, workers int, keep func(ipv4.Block) bool) *rdns.TagIndex {
	blocks := world.Blocks
	if keep != nil {
		blocks = make([]*synthnet.Block, 0, len(world.Blocks))
		for _, b := range world.Blocks {
			if keep(b.Block) {
				blocks = append(blocks, b)
			}
		}
	}
	pairs := par.Map(len(blocks), workers, func(i int) rdns.BlockTag {
		b := blocks[i]
		return rdns.BlockTag{
			Block: b.Block,
			Tag:   rdns.ClassifyZone(world.RDNSZone(b), 0.6),
		}
	})
	return rdns.NewTagIndex(pairs)
}

// compileBlock builds one block's packed record: a pure function of the
// dataset, independent of every other block.
func (x *Index) compileBlock(d *obs.Data, blk ipv4.Block) blockData {
	bd := blockData{
		blk:       blk,
		timelines: make([]uint64, 256*x.words),
	}

	var union ipv4.Bitmap256
	activeDays := 0
	addrDays := 0
	for day, s := range d.Daily {
		bm := s.BlockBitmap(blk)
		if bm == nil || bm.IsEmpty() {
			continue
		}
		activeDays++
		addrDays += bm.Count()
		union.UnionWith(bm)
		word, bit := day/64, uint(day%64)
		bm.ForEach(func(h byte) {
			bd.timelines[int(h)*x.words+word] |= 1 << bit
		})
	}

	v := &bd.view
	v.Block = blk.String()
	v.FD = union.Count()
	v.STU = float64(addrDays) / float64(len(d.Daily)*256)
	v.ActiveDays = activeDays

	if bt := d.Traffic[blk]; bt != nil {
		t := &blockTraffic{}
		for h := 0; h < 256; h++ {
			t.daysActive[h] = bt.DaysActive[h]
			t.hits[h] = bt.Hits[h]
			v.TotalHits += bt.Hits[h]
		}
		bd.traffic = t
	}
	if ua := d.UA[blk]; ua != nil {
		v.UASamples = ua.Samples
		v.UAUnique = ua.Unique()
	}

	e := x.joinBlock(blk)
	v.AS = e.as
	v.Prefix = e.prefix
	v.Country = e.country
	v.RIR = e.rir
	v.Pattern = e.pattern
	v.RDNS = e.rdns
	return bd
}

// buildAS folds the per-block records into per-AS footprints. Blocks
// are walked in ascending order, so each AS's float accumulation order
// is fixed regardless of build workers.
func (x *Index) buildAS() {
	x.byAS = make(map[bgp.ASN]*ASView, len(x.world.ASes))
	for _, as := range x.world.ASes {
		v := &ASView{
			AS:      uint32(as.Num),
			Kind:    as.Kind.String(),
			Country: string(as.Country),
			RIR:     as.RIR.String(),
		}
		for _, p := range as.Prefixes {
			v.Prefixes = append(v.Prefixes, p.String())
			v.RoutedBlocks += p.NumBlocks()
		}
		x.byAS[as.Num] = v
	}
	for i := range x.blocks {
		bd := &x.blocks[i]
		v, ok := x.byAS[bgp.ASN(bd.view.AS)]
		if !ok {
			// Activity in space the base table does not route (AS 0).
			v = &ASView{AS: bd.view.AS, Kind: "unrouted", RIR: bd.view.RIR}
			x.byAS[bgp.ASN(bd.view.AS)] = v
		}
		v.ActiveBlocks++
		v.ActiveAddrs += bd.view.FD
		v.TotalHits += bd.view.TotalHits
	}
	x.asNums = make([]bgp.ASN, 0, len(x.byAS))
	for as := range x.byAS {
		x.asNums = append(x.asNums, as)
	}
	sort.Slice(x.asNums, func(i, j int) bool { return x.asNums[i] < x.asNums[j] })
}

// buildSummary computes the dataset-level aggregates via the mergeable
// partial (partial.go): the partial holds exact integer counters, AS
// sets and the union UA sketch; Finalize derives every float with the
// expressions cdnlog.Summarize, core.ChurnSeries and core.Recapture
// use, so the numbers stay field-identical to the batch report's (the
// serve tests cross-check them) while remaining exactly mergeable
// across cluster shards.
func (x *Index) buildSummary(d *obs.Data, dailyUnion *ipv4.Set) {
	run := d.Meta.Run
	// A stream-prefix dataset round-tripped through Data.Observe holds
	// the full run's weekly slots with the not-yet-closed weeks nil
	// (MetaEvent pre-sizes to NumWeeks, which derives from the campaign
	// length, not the applied prefix). Trim the unclosed tail so batch
	// builds over such a prefix agree with a live Applier, which only
	// counts weeks it has observed.
	weekly := d.Weekly
	for len(weekly) > 0 && weekly[len(weekly)-1] == nil {
		weekly = weekly[:len(weekly)-1]
	}
	yearUnion := ipv4.UnionAll(weekly, run.Workers)
	p := &SummaryPartial{
		Seed:         x.meta.seed,
		NumASes:      x.meta.numASes,
		WorldBlocks:  x.world.NumBlocks(),
		Days:         run.Days,
		DailyStart:   run.DailyStart,
		DailyLen:     len(d.Daily),
		Weeks:        len(weekly),
		ActiveBlocks: len(x.keys),
		DailyUnion:   dailyUnion.Len(),
		YearUnion:    yearUnion.Len(),
		ICMPUnion:    x.icmp.Len(),
		Daily:        seriesPartialOf(d.Daily, dailyUnion, x.world.ASOf),
		Weekly:       seriesPartialOf(weekly, yearUnion, x.world.ASOf),
	}

	// Capture–recapture inputs over the CDN month vs the ICMP union,
	// with the same month window the batch RecaptureEstimate uses.
	cdn := d.CampaignMonthUnion()
	p.CDNMonth = cdn.Len()
	p.CDNBoth = cdn.IntersectCount(x.icmp)

	// Daily churn raw material (Figure 4's integers).
	p.DayLens = make([]int, len(d.Daily))
	for i, s := range d.Daily {
		p.DayLens[i] = s.Len()
	}
	if n := len(d.Daily) - 1; n > 0 {
		p.Ups = ipv4.DiffCounts(d.Daily[1:], d.Daily[:n], 0)
		p.Downs = ipv4.DiffCounts(d.Daily[:n], d.Daily[1:], 0)
	}
	if len(weekly) > 0 {
		base := weekly[0]
		p.WeekBase = base.Len()
		p.WeekLastAppear = weekly[len(weekly)-1].DiffCount(base)
	}

	p.UASamples, p.UAPrecision, p.UARegisters = foldUA(uaBlocks(d.UA), func(blk ipv4.Block) *obs.UAStat {
		return d.UA[blk]
	})

	x.partial = p
	x.summary = p.Finalize()
}

// uaBlocks returns the UA-sampled blocks in ascending order.
func uaBlocks(ua map[ipv4.Block]*obs.UAStat) []ipv4.Block {
	out := make([]ipv4.Block, 0, len(ua))
	for blk := range ua {
		out = append(out, blk)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// foldUA unions the per-block UA sketches (register-wise max, so any
// fold order yields the same registers) and sums the sample counts.
// Sketches are uniform-precision by construction (the engine allocates
// them all alike); a mismatched sketch is skipped deterministically.
func foldUA(blocks []ipv4.Block, statOf func(ipv4.Block) *obs.UAStat) (samples int, prec uint8, regs []byte) {
	var merged *useragent.HLL
	for _, blk := range blocks {
		st := statOf(blk)
		if st == nil {
			continue
		}
		samples += st.Samples
		if st.Sketch == nil {
			continue
		}
		if merged == nil {
			merged = useragent.NewHLL(st.Sketch.Precision())
		}
		merged.Merge(st.Sketch) //nolint:errcheck // uniform precision; mismatch skips the block
	}
	if merged == nil {
		return samples, 0, nil
	}
	return samples, merged.Precision(), merged.Registers()
}
