package query

import (
	"fmt"
	"sort"

	"ipscope/internal/bgp"
	"ipscope/internal/cdnlog"
	"ipscope/internal/core"
	"ipscope/internal/ipv4"
	"ipscope/internal/obs"
	"ipscope/internal/par"
	"ipscope/internal/rdns"
	"ipscope/internal/synthnet"
)

// Build compiles src into an Index. The world is regenerated
// deterministically from the dataset's embedded configuration, exactly
// as the batch analysis side does, so a stored dataset file is all a
// serving node needs.
func Build(src obs.Source, opts Options) (*Index, error) {
	d, err := src.Observations()
	if err != nil {
		return nil, err
	}
	if len(d.Daily) == 0 {
		return nil, fmt.Errorf("query: dataset has no daily window")
	}
	world := synthnet.Generate(d.Meta.World)
	w := opts.Workers

	x := &Index{
		epoch:   1,
		meta:    metaInfo{seed: world.Seed, numASes: len(world.ASes)},
		days:    len(d.Daily),
		words:   (len(d.Daily) + 63) / 64,
		routing: world.BaseRouting,
		world:   world,
		icmp:    d.ICMPUnion(),
		servers: orEmpty(d.ServerSet),
		routers: orEmpty(d.RouterSet),
	}
	x.tags = classifyWorld(world, w)

	// Per-/24 records in ascending block order. Each block compiles from
	// its own slice of the dataset into a preallocated slot, so shard
	// boundaries cannot reorder anything.
	dailyUnion := ipv4.UnionAll(d.Daily, w)
	x.keys = dailyUnion.Blocks()
	x.blocks = par.Map(len(x.keys), w, func(i int) blockData {
		return x.compileBlock(d, x.keys[i])
	})

	x.buildAS()
	x.buildSummary(d, dailyUnion)
	return x, nil
}

func orEmpty(s *ipv4.Set) *ipv4.Set {
	if s == nil {
		return ipv4.NewSet()
	}
	return s
}

// classifyWorld computes the rDNS tag for every world block (not just
// active ones: /v1/addr enriches unallocated-but-routed space too).
// Zone classification is pure per block, so the fan-out cannot change
// the result.
func classifyWorld(world *synthnet.World, workers int) *rdns.TagIndex {
	pairs := par.Map(len(world.Blocks), workers, func(i int) rdns.BlockTag {
		b := world.Blocks[i]
		return rdns.BlockTag{
			Block: b.Block,
			Tag:   rdns.ClassifyZone(world.RDNSZone(b), 0.6),
		}
	})
	return rdns.NewTagIndex(pairs)
}

// compileBlock builds one block's packed record: a pure function of the
// dataset, independent of every other block.
func (x *Index) compileBlock(d *obs.Data, blk ipv4.Block) blockData {
	bd := blockData{
		blk:       blk,
		timelines: make([]uint64, 256*x.words),
	}

	var union ipv4.Bitmap256
	activeDays := 0
	addrDays := 0
	for day, s := range d.Daily {
		bm := s.BlockBitmap(blk)
		if bm == nil || bm.IsEmpty() {
			continue
		}
		activeDays++
		addrDays += bm.Count()
		union.UnionWith(bm)
		word, bit := day/64, uint(day%64)
		bm.ForEach(func(h byte) {
			bd.timelines[int(h)*x.words+word] |= 1 << bit
		})
	}

	v := &bd.view
	v.Block = blk.String()
	v.FD = union.Count()
	v.STU = float64(addrDays) / float64(len(d.Daily)*256)
	v.ActiveDays = activeDays

	if bt := d.Traffic[blk]; bt != nil {
		t := &blockTraffic{}
		for h := 0; h < 256; h++ {
			t.daysActive[h] = bt.DaysActive[h]
			t.hits[h] = bt.Hits[h]
			v.TotalHits += bt.Hits[h]
		}
		bd.traffic = t
	}
	if ua := d.UA[blk]; ua != nil {
		v.UASamples = ua.Samples
		v.UAUnique = ua.Unique()
	}

	e := x.joinBlock(blk)
	v.AS = e.as
	v.Prefix = e.prefix
	v.Country = e.country
	v.RIR = e.rir
	v.Pattern = e.pattern
	v.RDNS = e.rdns
	return bd
}

// buildAS folds the per-block records into per-AS footprints. Blocks
// are walked in ascending order, so each AS's float accumulation order
// is fixed regardless of build workers.
func (x *Index) buildAS() {
	x.byAS = make(map[bgp.ASN]*ASView, len(x.world.ASes))
	for _, as := range x.world.ASes {
		v := &ASView{
			AS:      uint32(as.Num),
			Kind:    as.Kind.String(),
			Country: string(as.Country),
			RIR:     as.RIR.String(),
		}
		for _, p := range as.Prefixes {
			v.Prefixes = append(v.Prefixes, p.String())
			v.RoutedBlocks += p.NumBlocks()
		}
		x.byAS[as.Num] = v
	}
	for i := range x.blocks {
		bd := &x.blocks[i]
		v, ok := x.byAS[bgp.ASN(bd.view.AS)]
		if !ok {
			// Activity in space the base table does not route (AS 0).
			v = &ASView{AS: bd.view.AS, Kind: "unrouted", RIR: bd.view.RIR}
			x.byAS[bgp.ASN(bd.view.AS)] = v
		}
		v.ActiveBlocks++
		v.ActiveAddrs += bd.view.FD
		v.TotalHits += bd.view.TotalHits
	}
	x.asNums = make([]bgp.ASN, 0, len(x.byAS))
	for as := range x.byAS {
		x.asNums = append(x.asNums, as)
	}
	sort.Slice(x.asNums, func(i, j int) bool { return x.asNums[i] < x.asNums[j] })
}

// buildSummary computes the dataset-level aggregates. Every number here
// must stay field-identical to the batch report's (the serve tests
// cross-check them), so it reuses the same internal/core and
// internal/cdnlog machinery the analysis drivers call.
func (x *Index) buildSummary(d *obs.Data, dailyUnion *ipv4.Set) {
	run := d.Meta.Run
	s := Summary{
		Seed:         x.meta.seed,
		NumASes:      x.meta.numASes,
		WorldBlocks:  x.world.NumBlocks(),
		Days:         run.Days,
		DailyStart:   run.DailyStart,
		DailyLen:     len(d.Daily),
		Weeks:        len(d.Weekly),
		ActiveBlocks: len(x.keys),
		DailyUnion:   dailyUnion.Len(),
		YearUnion:    d.YearUnion().Len(),
		ICMPUnion:    x.icmp.Len(),
		Daily:        cdnlog.Summarize(d.Daily, x.world.ASOf),
		Weekly:       cdnlog.Summarize(d.Weekly, x.world.ASOf),
	}

	// Capture–recapture over the CDN month vs the ICMP union, with the
	// same month window the batch RecaptureEstimate uses.
	cdn := d.CampaignMonthUnion()
	if est, err := core.RecaptureSets(cdn, x.icmp); err == nil {
		s.Recapture = RecaptureSummary{
			Valid: true, N1: est.N1, N2: est.N2, Both: est.Both,
			LP: est.LincolnPetersen, Chapman: est.Chapman, SE: est.SE,
			CI95Lo: est.CI95Lo, CI95Hi: est.CI95Hi,
		}
	}

	// Daily churn series (Figure 4's raw material).
	churn := core.ChurnSeries(d.Daily)
	var upSum, upPct, downPct float64
	for _, p := range churn {
		upSum += float64(p.Up)
		upPct += p.UpPct
		downPct += p.DownPct
	}
	if n := len(churn); n > 0 {
		s.Churn.MeanDailyUpEvents = upSum / float64(n)
		s.Churn.MeanDailyUpPct = upPct / float64(n)
		s.Churn.MeanDailyDownPct = downPct / float64(n)
	}
	if vs := core.VersusBaseline(d.Weekly); len(vs) > 0 && d.Weekly[0].Len() > 0 {
		s.Churn.YearChurnFrac = float64(vs[len(vs)-1].Appear) / float64(d.Weekly[0].Len())
	}
	x.summary = s
}
