package query

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"ipscope/internal/obs"
	"ipscope/internal/sim"
	"ipscope/internal/synthnet"
)

// TestSnapshotRoundTripViews pins the core invariant at the view layer:
// encode→decode reproduces an Index whose every view — summary, blocks,
// addresses, ASes, prefixes — is byte-identical to the original, over
// all three load paths (in-memory decode, mmap file load, portable file
// load).
func TestSnapshotRoundTripViews(t *testing.T) {
	idx := testIndex(t)
	want := marshalIndex(t, idx)

	data := EncodeSnapshot(idx, nil)
	l, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := marshalIndex(t, l.Index); !bytes.Equal(got, want) {
		t.Fatalf("decoded index views differ (%d vs %d bytes)", len(got), len(want))
	}
	if l.Index.Epoch() != idx.Epoch() {
		t.Errorf("epoch = %d, want %d", l.Index.Epoch(), idx.Epoch())
	}
	if l.Resumable() {
		t.Error("plain snapshot reports resumable")
	}
	if l.Info.Blocks != idx.NumBlocks() || l.Info.Days != idx.DailyLen() {
		t.Errorf("info = %+v, want blocks %d days %d", l.Info, idx.NumBlocks(), idx.DailyLen())
	}

	path := filepath.Join(t.TempDir(), "snap.ipsnap")
	if err := WriteSnapshotFile(path, data); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opts LoadOptions
	}{
		{"mmap", LoadOptions{}},
		{"nommap", LoadOptions{NoMmap: true}},
		{"workers1", LoadOptions{NoMmap: true, Workers: 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fl, err := LoadSnapshotFile(path, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer fl.Close()
			if got := marshalIndex(t, fl.Index); !bytes.Equal(got, want) {
				t.Fatalf("loaded index views differ")
			}
		})
	}
}

// TestSnapshotShardRange pins that a snapshot carries its cluster
// partition range through the round trip.
func TestSnapshotShardRange(t *testing.T) {
	idx := testIndex(t)
	shard := &ShardRange{Index: 1, Count: 2, Lo: 0x10000, Hi: 0x20000}
	l, err := DecodeSnapshot(EncodeSnapshot(idx, shard))
	if err != nil {
		t.Fatal(err)
	}
	if l.Info.Shard == nil || *l.Info.Shard != *shard {
		t.Fatalf("shard = %+v, want %+v", l.Info.Shard, shard)
	}
	l2, err := DecodeSnapshot(EncodeSnapshot(idx, nil))
	if err != nil {
		t.Fatal(err)
	}
	if l2.Info.Shard != nil {
		t.Fatalf("unsharded snapshot carries shard %+v", l2.Info.Shard)
	}
}

// TestSnapshotFixedPoint pins the codec discipline: decode∘encode is a
// byte-for-byte fixed point, for a plain snapshot, a sharded one, and
// an Applier checkpoint.
func TestSnapshotFixedPoint(t *testing.T) {
	d := testData(t)
	idx, err := Build(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string][]byte{
		"plain":   EncodeSnapshot(idx, nil),
		"sharded": EncodeSnapshot(idx, &ShardRange{Index: 0, Count: 4, Lo: 0, Hi: 1 << 22}),
	}

	a := NewApplier(Options{})
	if err := d.WriteTo(a); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Snapshot(); err != nil {
		t.Fatal(err)
	}
	cp, err := a.EncodeCheckpoint(nil)
	if err != nil {
		t.Fatal(err)
	}
	variants["checkpoint"] = cp

	for name, data := range variants {
		t.Run(name, func(t *testing.T) {
			l, err := DecodeSnapshot(data)
			if err != nil {
				t.Fatal(err)
			}
			re := l.Encode()
			if !bytes.Equal(re, data) {
				t.Fatalf("re-encode is not a fixed point (%d vs %d bytes)", len(re), len(data))
			}
		})
	}
}

// TestSnapshotTypedErrors pins the failure contract: truncation reports
// ErrSnapshotTruncated, structural corruption reports *SnapshotError,
// and neither panics.
func TestSnapshotTypedErrors(t *testing.T) {
	data := EncodeSnapshot(testIndex(t), nil)

	for _, n := range []int{0, 4, 12, 31, 40, len(data) / 2, len(data) - 1} {
		if _, err := DecodeSnapshot(data[:n]); !errors.Is(err, ErrSnapshotTruncated) {
			var se *SnapshotError
			if !errors.As(err, &se) {
				t.Errorf("truncation at %d: err = %v, want typed snapshot error", n, err)
			}
		}
	}

	corrupt := func(name string, mutate func(b []byte)) {
		t.Helper()
		b := append([]byte(nil), data...)
		mutate(b)
		_, err := DecodeSnapshot(b)
		var se *SnapshotError
		if err == nil || (!errors.As(err, &se) && !errors.Is(err, ErrSnapshotTruncated)) {
			t.Errorf("%s: err = %v, want typed snapshot error", name, err)
		}
	}
	corrupt("bad magic", func(b []byte) { b[0] ^= 0xff })
	corrupt("bad version", func(b []byte) { b[8] = 99 })
	corrupt("unknown flags", func(b []byte) { b[10] |= 0x80 })
	corrupt("bad section count", func(b []byte) { b[12] = 0xff })
	corrupt("bad section id", func(b []byte) { b[32] ^= 0xff })
	corrupt("nonzero reserved", func(b []byte) { b[36] = 1 })
	corrupt("shifted offset", func(b []byte) { b[40] ^= 0x10 })

	var se *SnapshotError
	if _, err := DecodeSnapshot(append(append([]byte(nil), data...), 0xAB)); !errors.As(err, &se) {
		t.Errorf("trailing byte: err = %v, want *SnapshotError", err)
	}

	// Declared length longer than the data: truncated.
	longer := append([]byte(nil), data...)
	longer[24]++
	if _, err := DecodeSnapshot(longer); !errors.Is(err, ErrSnapshotTruncated) {
		t.Errorf("short data vs declared length: err = %v, want ErrSnapshotTruncated", err)
	}
}

// TestEncodeCheckpointGuards pins the checkpoint preconditions: no
// checkpoint before the first publish, and none after the state has
// advanced past the published snapshot.
func TestEncodeCheckpointGuards(t *testing.T) {
	d := testData(t)
	a := NewApplier(Options{})
	if _, err := a.EncodeCheckpoint(nil); err == nil {
		t.Error("checkpoint before first snapshot accepted")
	}
	if err := a.Observe(obs.MetaEvent{Meta: d.Meta}); err != nil {
		t.Fatal(err)
	}
	if err := a.Observe(obs.DayEvent{Index: 0, Active: d.Daily[0], TotalHits: d.DailyTotalHits[0]}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.EncodeCheckpoint(nil); err != nil {
		t.Errorf("checkpoint right after snapshot: %v", err)
	}
	if err := a.Observe(obs.DayEvent{Index: 1, Active: d.Daily[1], TotalHits: d.DailyTotalHits[1]}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.EncodeCheckpoint(nil); err == nil {
		t.Error("checkpoint after unpublished day accepted")
	}
}

// TestSnapshotResume is the elastic-restart invariant: an Applier
// reconstructed from a checkpoint, fed the remainder of the stream with
// the checkpoint's SkipCounts discarding already-applied frames, must
// publish a snapshot byte-identical (including epoch) to the one the
// uninterrupted Applier publishes — and both must equal Build over the
// full dataset.
func TestSnapshotResume(t *testing.T) {
	type variant struct {
		name string
		cfg  sim.Config
		cut  int
	}
	long := sim.TinyConfig()
	long.Days, long.DailyStart, long.DailyLen = 98, 14, 70
	variants := []variant{
		{"tiny-mid", sim.TinyConfig(), 13},
		// Resuming at day 64 of a 70-day window forces the word-boundary
		// repack (words 1 → 2) on the first post-resume publish.
		{"word-boundary", long, 64},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			w := synthnet.Generate(synthnet.TinyConfig())
			var events []obs.Event
			rec := obs.SinkFunc(func(e obs.Event) error { events = append(events, e); return nil })
			res, err := sim.RunTo(w, v.cfg, rec)
			if err != nil {
				t.Fatal(err)
			}
			d := &res.Data

			// Uninterrupted applier: publish at the cut (the checkpoint
			// epoch), capture the checkpoint, then run to the end.
			a := NewApplier(Options{})
			trunc := d.TruncateLive(v.cut)
			end := cutStream(events, trunc, v.cut)
			for _, e := range events[:end] {
				if err := a.Observe(e); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := a.Snapshot(); err != nil {
				t.Fatal(err)
			}
			cp, err := a.EncodeCheckpoint(nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range events[end:] {
				if err := a.Observe(e); err != nil {
					t.Fatal(err)
				}
			}
			refSnap, err := a.Snapshot()
			if err != nil {
				t.Fatal(err)
			}

			// Restarted applier: decode the checkpoint, resume, and tail
			// the full persisted stream through the frame-level skip.
			l, err := DecodeSnapshot(cp)
			if err != nil {
				t.Fatal(err)
			}
			if !l.Resumable() {
				t.Fatal("checkpoint not resumable")
			}
			b, skipCounts, err := l.ResumeApplier(Options{})
			if err != nil {
				t.Fatal(err)
			}
			if want := (obs.SkipCounts{Days: v.cut}); skipCounts.Days != want.Days {
				t.Errorf("skip days = %d, want %d", skipCounts.Days, want.Days)
			}
			if b.Days() != v.cut || b.Epoch() != 1 {
				t.Fatalf("resumed applier days/epoch = %d/%d, want %d/1", b.Days(), b.Epoch(), v.cut)
			}

			path := filepath.Join(t.TempDir(), "full.obs")
			if err := obs.WriteFile(path, d); err != nil {
				t.Fatal(err)
			}
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			// The stream re-delivers the meta frame; a resumed consumer
			// drops it (its applier is already bound to the dataset) —
			// the same wrapper the serving loop uses.
			droppedMeta := false
			sink := obs.SinkFunc(func(e obs.Event) error {
				if _, ok := e.(obs.MetaEvent); ok && !droppedMeta {
					droppedMeta = true
					return nil
				}
				return b.Observe(e)
			})
			if err := obs.StreamDecodeFrom(f, skipCounts, sink); err != nil {
				t.Fatal(err)
			}
			resumedSnap, err := b.Snapshot()
			if err != nil {
				t.Fatal(err)
			}

			if refSnap.Epoch() != resumedSnap.Epoch() {
				t.Errorf("epochs diverge: %d vs %d", refSnap.Epoch(), resumedSnap.Epoch())
			}
			got, want := marshalIndex(t, resumedSnap), marshalIndex(t, refSnap)
			if !bytes.Equal(got, want) {
				t.Fatalf("resumed snapshot differs from uninterrupted applier (%d vs %d bytes)",
					len(got), len(want))
			}

			ref, err := Build(d, Options{Workers: 3})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, marshalIndex(t, ref)) {
				t.Fatal("resumed snapshot differs from Build over the full dataset")
			}
		})
	}
}

// TestSnapshotResumeRequiresCheckpoint pins that a plain snapshot (no
// resume section) refuses to resume.
func TestSnapshotResumeRequiresCheckpoint(t *testing.T) {
	l, err := DecodeSnapshot(EncodeSnapshot(testIndex(t), nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.ResumeApplier(Options{}); err == nil {
		t.Error("plain snapshot resumed")
	}
}
