//go:build !linux

package query

// mmapFile is unavailable on this platform; LoadSnapshotFile falls back
// to reading the file into memory (the bulk-section cast still applies
// when the host is little-endian and the buffer lands 8-byte aligned).
func mmapFile(string) ([]byte, func() error, error) {
	return nil, nil, errNoMmap
}
