// Persistent index snapshots: an epoch-stamped, versioned, canonical
// on-disk format for the complete Index, so a serving node cold-starts
// by loading sections instead of repaying query.Build (or a full obs
// stream replay) — O(sections), not O(addresses).
//
// File layout (all little-endian except the partial section, which
// embeds the existing big-endian SummaryPartial wire encoding verbatim):
//
//	offset  size  field
//	0       8     magic "ipssnap\x00"
//	8       2     version (currently 1)
//	10      2     flags (bit 0: resumable checkpoint)
//	12      4     section count
//	16      8     epoch
//	24      8     total file length
//	32      24*n  section table: id u32, reserved u32, offset u64, length u64
//
// Sections follow in id order, each starting on an 8-byte boundary
// (inter-section gap bytes are zero); the file ends exactly at the last
// section's end. The hot bulk sections — packed day-bitset timelines
// above all — are fixed-stride little-endian arrays, so on a
// little-endian host the loader maps them zero-copy (mmap on linux, one
// read into an aligned buffer elsewhere); graph-shaped sections (meta,
// tags, sets, summary partial) decode normally.
//
// Canonicality discipline mirrors the obs codec: every count is
// validated against the remaining bytes before allocation, every order
// constraint (ascending blocks) and padding byte is checked on decode,
// and decode∘encode is a byte-for-byte fixed point (FuzzSnapshotDecode
// enforces all three).
package query

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"sort"

	"ipscope/internal/ipv4"
	"ipscope/internal/obs"
)

const (
	snapMagic   = "ipssnap\x00"
	snapVersion = 1

	snapFlagResume = 1 << 0

	snapPrefaceLen = 32
	snapTableEntry = 24
)

// Section ids, in file order.
const (
	secInfo = iota + 1
	secMeta
	secBlocks
	secTimelines
	secViews
	secTraffic
	secTags
	secSets
	secPartial
	secResume
	numSections = secResume
)

var sectionNames = map[uint32]string{
	secInfo:      "info",
	secMeta:      "meta",
	secBlocks:    "blocks",
	secTimelines: "timelines",
	secViews:     "views",
	secTraffic:   "traffic",
	secTags:      "tags",
	secSets:      "sets",
	secPartial:   "partial",
	secResume:    "resume",
}

// SnapshotError reports a structurally invalid snapshot file.
type SnapshotError struct{ Msg string }

func (e *SnapshotError) Error() string { return "query: snapshot: " + e.Msg }

func snapErrf(format string, args ...any) error {
	return &SnapshotError{Msg: fmt.Sprintf(format, args...)}
}

// ErrSnapshotTruncated reports a snapshot file shorter than its declared
// length — the one corruption mode retries can fix (a partially written
// file), which is why it is distinguishable from SnapshotError.
var ErrSnapshotTruncated = errors.New("query: snapshot: truncated file")

// ShardRange records the cluster partition a snapshot was built for, so
// a restarted shard re-announces the same block range.
type ShardRange struct {
	Index int    `json:"shard"`
	Count int    `json:"shards"`
	Lo    uint32 `json:"blockLo"`
	Hi    uint32 `json:"blockHi"`
}

// SectionInfo describes one section table entry, for the inspect tool.
type SectionInfo struct {
	ID     uint32 `json:"id"`
	Name   string `json:"name"`
	Offset uint64 `json:"offset"`
	Length uint64 `json:"length"`
}

// SnapshotInfo is the decoded preface + info section.
type SnapshotInfo struct {
	Epoch     uint64        `json:"epoch"`
	Days      int           `json:"days"`
	Words     int           `json:"words"`
	Blocks    int           `json:"blocks"`
	Resumable bool          `json:"resumable"`
	Shard     *ShardRange   `json:"shard,omitempty"`
	Sections  []SectionInfo `json:"sections"`
}

// resumeState is the Applier state beyond the Index itself that a
// checkpoint must carry so a restarted shard can keep applying the obs
// stream mid-window: everything applyDay/applyScan/assembleSummary read
// that is not reconstructible from the packed timelines.
type resumeState struct {
	weeks        int
	scans        int
	surfacesSeen bool
	yearUnion    *ipv4.Set // wSum union (weekly snapshots fold into it)
	week0        *ipv4.Set // churn baseline (nil when weeks == 0)
	weekLast     *ipv4.Set
	cdnFrom      int // capture–recapture window (valid when scans > 0)
	cdnTo        int
	cdn          *ipv4.Set
	uaBlocks     []ipv4.Block // ascending; includes stats-only blocks
	ua           map[ipv4.Block]*obs.UAStat
}

// Little-endian append helpers (the obs codec is big-endian; snapshot
// bulk sections are little-endian so they can be cast in place on the
// dominant hosts).
func sU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func sU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func sU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func sI64(b []byte, v int) []byte    { return sU64(b, uint64(int64(v))) }
func sF64(b []byte, v float64) []byte {
	return sU64(b, math.Float64bits(v))
}

func align8(n int) int { return (n + 7) &^ 7 }

// EncodeSnapshot serializes x into the canonical snapshot format.
// shard, when non-nil, records the cluster partition range so a
// restarted shard re-announces it. The result round-trips through
// DecodeSnapshot into a view-identical index.
func EncodeSnapshot(x *Index, shard *ShardRange) []byte {
	return encodeSnapshot(x, shard, nil)
}

// EncodeCheckpoint serializes the Applier's last published snapshot
// plus the resume state a restarted node needs to keep tailing the obs
// stream from that epoch. It must be called while the Applier state
// still matches the last Snapshot — i.e. before any further event is
// applied — which is how the serving loop uses it (checkpoint
// immediately after publish).
func (a *Applier) EncodeCheckpoint(shard *ShardRange) ([]byte, error) {
	x := a.prev
	if x == nil {
		return nil, fmt.Errorf("query: checkpoint before first snapshot")
	}
	if a.days != x.days || a.weeks != x.partial.Weeks {
		return nil, fmt.Errorf("query: checkpoint state diverged from last snapshot (days %d vs %d)",
			a.days, x.days)
	}
	r := &resumeState{
		weeks:        a.weeks,
		scans:        a.scans,
		surfacesSeen: a.servers != nil || a.routers != nil,
		yearUnion:    a.wSum.union,
		ua:           make(map[ipv4.Block]*obs.UAStat),
	}
	if a.weeks > 0 {
		r.week0 = a.staging.Weekly[0]
		r.weekLast = a.staging.Weekly[a.weeks-1]
	}
	if a.scans > 0 {
		r.cdnFrom, r.cdnTo, r.cdn = a.cdnFrom, a.cdnTo, a.cdn
	}
	for blk, acc := range a.accs {
		if acc.ua != nil {
			r.uaBlocks = append(r.uaBlocks, blk)
			r.ua[blk] = acc.ua
		}
	}
	sort.Slice(r.uaBlocks, func(i, j int) bool { return r.uaBlocks[i] < r.uaBlocks[j] })
	return encodeSnapshot(x, shard, r), nil
}

func encodeSnapshot(x *Index, shard *ShardRange, r *resumeState) []byte {
	sections := [][]byte{
		encodeInfo(x, shard),
		encodeMetaSection(x.obsMeta),
		encodeBlocksSection(x.keys),
		encodeTimelinesSection(x),
		encodeViewsSection(x),
		encodeTrafficSection(x),
		encodeTagsSection(x),
		encodeSetsSection(x),
		AppendSummaryPartialWire(nil, x.partial),
	}
	var flags uint16
	if r != nil {
		flags |= snapFlagResume
		sections = append(sections, encodeResumeSection(r))
	}

	tableLen := snapPrefaceLen + snapTableEntry*len(sections)
	off := align8(tableLen)
	total := off
	offsets := make([]int, len(sections))
	for i, sec := range sections {
		offsets[i] = total
		total += len(sec)
		if i+1 < len(sections) {
			total = align8(total)
		}
	}

	out := make([]byte, 0, total)
	out = append(out, snapMagic...)
	out = sU16(out, snapVersion)
	out = sU16(out, flags)
	out = sU32(out, uint32(len(sections)))
	out = sU64(out, x.epoch)
	out = sU64(out, uint64(total))
	for i, sec := range sections {
		out = sU32(out, uint32(i+1)) // ids are assigned in file order
		out = sU32(out, 0)
		out = sU64(out, uint64(offsets[i]))
		out = sU64(out, uint64(len(sec)))
	}
	for i, sec := range sections {
		for len(out) < offsets[i] {
			out = append(out, 0)
		}
		out = append(out, sec...)
	}
	return out
}

func encodeInfo(x *Index, shard *ShardRange) []byte {
	b := make([]byte, 0, 48)
	b = sU64(b, uint64(x.days))
	b = sU64(b, uint64(x.words))
	b = sU64(b, uint64(len(x.keys)))
	if shard != nil {
		b = sU32(b, 1)
		b = sU32(b, uint32(shard.Index))
		b = sU32(b, uint32(shard.Count))
		b = sU32(b, shard.Lo)
		b = sU32(b, shard.Hi)
	} else {
		b = append(b, make([]byte, 20)...)
	}
	return sU32(b, 0) // pad to 48
}

// encodeMetaSection mirrors the obs codec's meta frame field for field,
// in little-endian: the dataset identity a loaded index needs to
// regenerate its world and resume stream application.
func encodeMetaSection(m obs.Meta) []byte {
	var b []byte
	b = sU64(b, m.World.Seed)
	b = sU32(b, uint32(m.World.NumASes))
	b = sU32(b, uint32(m.World.MeanBlocksPerAS))
	r := m.Run
	b = sU32(b, uint32(r.Days))
	b = sU32(b, uint32(r.DailyStart))
	b = sU32(b, uint32(r.DailyLen))
	b = sU32(b, uint32(r.UADays))
	b = sU32(b, uint32(len(r.ICMPScanDays)))
	for _, d := range r.ICMPScanDays {
		b = sU32(b, uint32(d))
	}
	for _, f := range []float64{r.PrefixChangeFrac, r.BlockChangeFrac,
		r.BGPCoupleProb, r.BGPNoisePerDay, r.JoinFrac, r.LeaveFrac, r.TrafficGrowth} {
		b = sF64(b, f)
	}
	return sU32(b, uint32(int32(r.Workers)))
}

func encodeBlocksSection(keys []ipv4.Block) []byte {
	b := make([]byte, 0, 4*len(keys))
	for _, blk := range keys {
		b = sU32(b, uint32(blk))
	}
	return b
}

// encodeTimelinesSection packs every block's 256 day-bitsets back to
// back: the zero-copy section. Stride per block is 256*words u64s.
func encodeTimelinesSection(x *Index) []byte {
	b := make([]byte, 8*len(x.keys)*256*x.words)
	p := b
	for i := range x.blocks {
		for _, w := range x.blocks[i].timelines {
			binary.LittleEndian.PutUint64(p, w)
			p = p[8:]
		}
	}
	return b
}

// encodeViewsSection stores the scalar view fields (48 bytes per
// block). The view's strings are never stored: they are pure joins over
// the regenerated world + decoded tags, recomputed at load so the two
// construction paths cannot drift.
func encodeViewsSection(x *Index) []byte {
	b := make([]byte, 0, 48*len(x.keys))
	for i := range x.blocks {
		v := &x.blocks[i].view
		b = sI64(b, v.FD)
		b = sF64(b, v.STU)
		b = sI64(b, v.ActiveDays)
		b = sF64(b, v.TotalHits)
		b = sI64(b, v.UASamples)
		b = sF64(b, v.UAUnique)
	}
	return b
}

// encodeTrafficSection stores the sparse per-host traffic rollups:
// count, then per record the key-array index it attaches to and the
// fixed 256-host arrays (little-endian, so the loader bulk-copies).
func encodeTrafficSection(x *Index) []byte {
	m := 0
	for i := range x.blocks {
		if x.blocks[i].traffic != nil {
			m++
		}
	}
	b := make([]byte, 0, 8+m*(8+256*2+256*8))
	b = sU64(b, uint64(m))
	for i := range x.blocks {
		t := x.blocks[i].traffic
		if t == nil {
			continue
		}
		b = sU32(b, uint32(i))
		b = sU32(b, 0)
		for _, v := range t.daysActive {
			b = sU16(b, v)
		}
		for _, v := range t.hits {
			b = sF64(b, v)
		}
	}
	return b
}

func encodeTagsSection(x *Index) []byte {
	pairs := x.tags.Tags()
	b := make([]byte, 0, 8+8*len(pairs))
	b = sU64(b, uint64(len(pairs)))
	for _, p := range pairs {
		b = sU32(b, uint32(p.Block))
		b = sU32(b, uint32(p.Tag))
	}
	return b
}

func encodeSetsSection(x *Index) []byte {
	var b []byte
	b = appendSnapSet(b, x.icmp)
	b = appendSnapSet(b, x.servers)
	return appendSnapSet(b, x.routers)
}

// appendSnapSet encodes one address set: block count, then per block
// the /24 and its 256-bit host bitmap (ascending block order; a Set
// never stores an empty bitmap, so canonicality is a free invariant).
func appendSnapSet(b []byte, s *ipv4.Set) []byte {
	if s == nil {
		return sU64(b, 0)
	}
	blocks := s.Blocks()
	b = sU64(b, uint64(len(blocks)))
	for _, blk := range blocks {
		bm := s.BlockBitmap(blk)
		b = sU32(b, uint32(blk))
		b = sU32(b, 0)
		for _, w := range bm {
			b = sU64(b, w)
		}
	}
	return b
}

func encodeResumeSection(r *resumeState) []byte {
	var b []byte
	b = sU64(b, uint64(r.weeks))
	b = sU64(b, uint64(r.scans))
	if r.surfacesSeen {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendSnapSet(b, r.yearUnion)
	if r.weeks > 0 {
		b = appendSnapSet(b, r.week0)
		b = appendSnapSet(b, r.weekLast)
	}
	if r.scans > 0 {
		b = sI64(b, r.cdnFrom)
		b = sI64(b, r.cdnTo)
		b = appendSnapSet(b, r.cdn)
	}
	b = sU64(b, uint64(len(r.uaBlocks)))
	for _, blk := range r.uaBlocks {
		st := r.ua[blk]
		b = sU32(b, uint32(blk))
		b = sU64(b, uint64(st.Samples))
		if st.Sketch == nil {
			b = append(b, 0)
			continue
		}
		b = append(b, st.Sketch.Precision())
		b = append(b, st.Sketch.Registers()...)
	}
	return b
}

// WriteSnapshotFile writes data to path atomically: a same-directory
// temp file, fsync, then rename — a crashed writer never leaves a
// half-written file under the final name.
func WriteSnapshotFile(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
