package query

import (
	"bytes"
	"errors"
	"testing"

	"ipscope/internal/sim"
	"ipscope/internal/synthnet"
)

// FuzzSnapshotDecode throws arbitrary bytes at the snapshot decoder.
// The invariants, matching the codec's documented contract:
//
//   - DecodeSnapshot never panics, however corrupt the input;
//   - every failure is a typed error (ErrSnapshotTruncated,
//     *SnapshotError) — never a silent partial index;
//   - anything that decodes is a canonical fixed point: re-encoding it
//     reproduces the input bytes exactly, which is the property the
//     inspect tool's -verify check rests on.
//
// The seed corpus is a real encoded snapshot (plain, sharded and
// checkpoint variants) plus truncated and bit-flipped mutants, so the
// fuzzer starts from structurally valid files rather than rediscovering
// the preface.
func FuzzSnapshotDecode(f *testing.F) {
	// A deliberately small world: seed files a few hundred KB keep the
	// mutation engine's throughput useful.
	wcfg := synthnet.Config{Seed: 7, NumASes: 8, MeanBlocksPerAS: 4}
	w := synthnet.Generate(wcfg)
	res := sim.Run(w, sim.TinyConfig())
	d := &res.Data

	idx, err := Build(d, Options{})
	if err != nil {
		f.Fatal(err)
	}
	plain := EncodeSnapshot(idx, nil)
	f.Add(plain)
	f.Add(EncodeSnapshot(idx, &ShardRange{Index: 1, Count: 2, Lo: 0x100, Hi: 0x10000}))

	a := NewApplier(Options{})
	if err := d.WriteTo(a); err != nil {
		f.Fatal(err)
	}
	if _, err := a.Snapshot(); err != nil {
		f.Fatal(err)
	}
	cp, err := a.EncodeCheckpoint(nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(cp)

	f.Add(plain[:len(plain)/2])
	f.Add(plain[:snapPrefaceLen])
	for _, at := range []int{10, 40, len(plain) / 3, len(plain) - 9} {
		flipped := bytes.Clone(plain)
		flipped[at] ^= 0x40
		f.Add(flipped)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := DecodeSnapshot(data)
		if err != nil {
			var se *SnapshotError
			if !errors.Is(err, ErrSnapshotTruncated) && !errors.As(err, &se) {
				t.Fatalf("DecodeSnapshot failed with untyped error %T: %v", err, err)
			}
			return
		}
		re := l.Encode()
		if !bytes.Equal(re, data) {
			t.Fatalf("decoded snapshot is not a canonical fixed point: %d vs %d bytes", len(re), len(data))
		}
	})
}
