package query

// Binary wire codec for the query views and mergeable partials — the
// payloads of the shard↔router RPC protocol (internal/rpc). It follows
// the obs codec discipline: big-endian, length-validated counts so
// corrupt input cannot trigger huge allocations, typed errors instead
// of panics, and a canonical encoding (decode∘encode is the identity on
// valid bytes, which the RPC fuzz target checks).
//
// Two fidelity rules keep RPC-reconstructed JSON byte-identical to the
// HTTP path:
//
//   - every slice is encoded behind a presence byte (0 = nil,
//     1 = present + count), because encoding/json distinguishes nil
//     (null) from empty ([]) for fields without omitempty —
//     ASView.Prefixes is the live example;
//   - ints travel as two's-complement u64 (AddrView.FirstDay/LastDay
//     can be -1) and floats as raw IEEE-754 bits, so no value is
//     rounded or clamped in transit.

import (
	"encoding/binary"
	"fmt"
	"math"
)

// WireError reports structurally invalid wire-codec input: a short
// payload, an implausible count, or a non-canonical byte.
type WireError struct{ Msg string }

// Error returns the message.
func (e *WireError) Error() string { return "query: " + e.Msg }

func wireErrf(format string, args ...any) error {
	return &WireError{Msg: fmt.Sprintf(format, args...)}
}

// --- append helpers --------------------------------------------------

func wU8(b []byte, v uint8) []byte   { return append(b, v) }
func wU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }
func wU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }
func wInt(b []byte, v int) []byte    { return wU64(b, uint64(int64(v))) }
func wF64(b []byte, v float64) []byte {
	return wU64(b, math.Float64bits(v))
}

func wBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func wString(b []byte, s string) []byte {
	b = wU32(b, uint32(len(s)))
	return append(b, s...)
}

// wPresence encodes the nil-vs-present distinction for a slice of
// length n (n < 0 means nil). Present slices are followed by a u32
// count and their elements.
func wPresence(b []byte, isNil bool, n int) []byte {
	if isNil {
		return append(b, 0)
	}
	b = append(b, 1)
	return wU32(b, uint32(n))
}

func wU32Slice(b []byte, s []uint32) []byte {
	b = wPresence(b, s == nil, len(s))
	for _, v := range s {
		b = wU32(b, v)
	}
	return b
}

func wF64Slice(b []byte, s []float64) []byte {
	b = wPresence(b, s == nil, len(s))
	for _, v := range s {
		b = wF64(b, v)
	}
	return b
}

func wIntSlice(b []byte, s []int) []byte {
	b = wPresence(b, s == nil, len(s))
	for _, v := range s {
		b = wInt(b, v)
	}
	return b
}

func wBytes(b []byte, s []byte) []byte {
	b = wPresence(b, s == nil, len(s))
	return append(b, s...)
}

func wStringSlice(b []byte, s []string) []byte {
	b = wPresence(b, s == nil, len(s))
	for _, v := range s {
		b = wString(b, v)
	}
	return b
}

// --- decoder ---------------------------------------------------------

// wdec consumes a wire payload. Reads past the end latch err instead of
// panicking; non-canonical bytes (a presence byte other than 0/1, a
// bool other than 0/1) are rejected so every valid encoding is the
// unique encoding of its value.
type wdec struct {
	p   []byte
	err error
}

func (d *wdec) fail() {
	if d.err == nil {
		d.err = &WireError{Msg: "wire payload too short"}
	}
}

func (d *wdec) take(n int) []byte {
	if d.err != nil || len(d.p) < n {
		d.fail()
		return nil
	}
	out := d.p[:n]
	d.p = d.p[n:]
	return out
}

func (d *wdec) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *wdec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *wdec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *wdec) i() int       { return int(int64(d.u64())) }
func (d *wdec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *wdec) bool() bool {
	switch d.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		if d.err == nil {
			d.err = wireErrf("non-canonical bool byte")
		}
		return false
	}
}

func (d *wdec) str() string {
	n := int(d.u32())
	if d.err == nil && n > len(d.p) {
		d.err = wireErrf("string length %d exceeds remaining payload", n)
	}
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// presence reads a slice header: present reports nil vs non-nil, n the
// element count (validated against the bytes that could possibly
// remain, elemSize per element).
func (d *wdec) presence(elemSize int) (present bool, n int) {
	switch d.u8() {
	case 0:
		return false, 0
	case 1:
	default:
		if d.err == nil {
			d.err = wireErrf("non-canonical presence byte")
		}
		return false, 0
	}
	n = int(d.u32())
	if d.err == nil && n*elemSize > len(d.p) {
		d.err = wireErrf("count %d exceeds remaining payload", n)
	}
	if d.err != nil {
		return false, 0
	}
	return true, n
}

func (d *wdec) u32Slice() []uint32 {
	present, n := d.presence(4)
	if !present {
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = d.u32()
	}
	return out
}

func (d *wdec) f64Slice() []float64 {
	present, n := d.presence(8)
	if !present {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}

func (d *wdec) intSlice() []int {
	present, n := d.presence(8)
	if !present {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = d.i()
	}
	return out
}

func (d *wdec) bytes() []byte {
	present, n := d.presence(1)
	if !present {
		return nil
	}
	return append([]byte{}, d.take(n)...)
}

func (d *wdec) strSlice() []string {
	present, n := d.presence(4) // 4 = minimum encoded size of ""
	if !present {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.str()
	}
	return out
}

// --- BlockView -------------------------------------------------------

// AppendBlockViewWire appends v's canonical wire encoding to b.
func AppendBlockViewWire(b []byte, v *BlockView) []byte {
	b = wString(b, v.Block)
	b = wU32(b, v.AS)
	b = wString(b, v.Prefix)
	b = wString(b, v.Country)
	b = wString(b, v.RIR)
	b = wString(b, v.RDNS)
	b = wString(b, v.Pattern)
	b = wInt(b, v.FD)
	b = wF64(b, v.STU)
	b = wInt(b, v.ActiveDays)
	b = wF64(b, v.TotalHits)
	b = wInt(b, v.UASamples)
	b = wF64(b, v.UAUnique)
	return b
}

func (d *wdec) blockView() BlockView {
	var v BlockView
	v.Block = d.str()
	v.AS = d.u32()
	v.Prefix = d.str()
	v.Country = d.str()
	v.RIR = d.str()
	v.RDNS = d.str()
	v.Pattern = d.str()
	v.FD = d.i()
	v.STU = d.f64()
	v.ActiveDays = d.i()
	v.TotalHits = d.f64()
	v.UASamples = d.i()
	v.UAUnique = d.f64()
	return v
}

// DecodeBlockViewWire decodes one BlockView from p, returning the
// remaining bytes.
func DecodeBlockViewWire(p []byte) (BlockView, []byte, error) {
	d := &wdec{p: p}
	v := d.blockView()
	if d.err != nil {
		return BlockView{}, nil, d.err
	}
	return v, d.p, nil
}

// --- AddrView --------------------------------------------------------

// AppendAddrViewWire appends v's canonical wire encoding to b.
func AppendAddrViewWire(b []byte, v *AddrView) []byte {
	b = wString(b, v.Addr)
	b = wString(b, v.Block)
	b = wU32(b, v.AS)
	b = wString(b, v.Prefix)
	b = wString(b, v.Country)
	b = wString(b, v.RIR)
	b = wString(b, v.RDNS)
	b = wString(b, v.Pattern)
	b = wBool(b, v.Active)
	b = wInt(b, v.ActiveDays)
	b = wInt(b, v.FirstDay)
	b = wInt(b, v.LastDay)
	b = wString(b, v.Timeline)
	b = wF64(b, v.Hits)
	b = wF64(b, v.MeanDailyHits)
	b = wBool(b, v.ICMPResponder)
	b = wBool(b, v.Server)
	b = wBool(b, v.Router)
	return b
}

func (d *wdec) addrView() AddrView {
	var v AddrView
	v.Addr = d.str()
	v.Block = d.str()
	v.AS = d.u32()
	v.Prefix = d.str()
	v.Country = d.str()
	v.RIR = d.str()
	v.RDNS = d.str()
	v.Pattern = d.str()
	v.Active = d.bool()
	v.ActiveDays = d.i()
	v.FirstDay = d.i()
	v.LastDay = d.i()
	v.Timeline = d.str()
	v.Hits = d.f64()
	v.MeanDailyHits = d.f64()
	v.ICMPResponder = d.bool()
	v.Server = d.bool()
	v.Router = d.bool()
	return v
}

// DecodeAddrViewWire decodes one AddrView from p, returning the
// remaining bytes.
func DecodeAddrViewWire(p []byte) (AddrView, []byte, error) {
	d := &wdec{p: p}
	v := d.addrView()
	if d.err != nil {
		return AddrView{}, nil, d.err
	}
	return v, d.p, nil
}

// --- SummaryPartial --------------------------------------------------

func appendSeriesPartial(b []byte, p *SeriesPartial) []byte {
	b = wInt(b, p.Snapshots)
	b = wInt(b, p.UnionIPs)
	b = wInt(b, p.UnionBlocks)
	b = wInt(b, p.IPSum)
	b = wInt(b, p.BlockSum)
	b = wPresence(b, p.SnapASes == nil, len(p.SnapASes))
	for _, s := range p.SnapASes {
		b = wU32Slice(b, s)
	}
	return b
}

func (d *wdec) seriesPartial() SeriesPartial {
	var p SeriesPartial
	p.Snapshots = d.i()
	p.UnionIPs = d.i()
	p.UnionBlocks = d.i()
	p.IPSum = d.i()
	p.BlockSum = d.i()
	present, n := d.presence(1) // 1 = minimum encoded size of a nil inner slice
	if present {
		p.SnapASes = make([][]uint32, n)
		for i := range p.SnapASes {
			p.SnapASes[i] = d.u32Slice()
		}
	}
	return p
}

// AppendSummaryPartialWire appends p's canonical wire encoding to b.
func AppendSummaryPartialWire(b []byte, p *SummaryPartial) []byte {
	b = wU64(b, p.Seed)
	b = wInt(b, p.NumASes)
	b = wInt(b, p.WorldBlocks)
	b = wInt(b, p.Days)
	b = wInt(b, p.DailyStart)
	b = wInt(b, p.DailyLen)
	b = wInt(b, p.Weeks)
	b = wInt(b, p.ActiveBlocks)
	b = wInt(b, p.DailyUnion)
	b = wInt(b, p.YearUnion)
	b = wInt(b, p.ICMPUnion)
	b = appendSeriesPartial(b, &p.Daily)
	b = appendSeriesPartial(b, &p.Weekly)
	b = wInt(b, p.CDNMonth)
	b = wInt(b, p.CDNBoth)
	b = wIntSlice(b, p.DayLens)
	b = wIntSlice(b, p.Ups)
	b = wIntSlice(b, p.Downs)
	b = wInt(b, p.WeekBase)
	b = wInt(b, p.WeekLastAppear)
	b = wInt(b, p.UASamples)
	b = wU8(b, p.UAPrecision)
	b = wBytes(b, p.UARegisters)
	return b
}

// DecodeSummaryPartialWire decodes one SummaryPartial from p, returning
// the remaining bytes.
func DecodeSummaryPartialWire(p []byte) (SummaryPartial, []byte, error) {
	d := &wdec{p: p}
	var v SummaryPartial
	v.Seed = d.u64()
	v.NumASes = d.i()
	v.WorldBlocks = d.i()
	v.Days = d.i()
	v.DailyStart = d.i()
	v.DailyLen = d.i()
	v.Weeks = d.i()
	v.ActiveBlocks = d.i()
	v.DailyUnion = d.i()
	v.YearUnion = d.i()
	v.ICMPUnion = d.i()
	v.Daily = d.seriesPartial()
	v.Weekly = d.seriesPartial()
	v.CDNMonth = d.i()
	v.CDNBoth = d.i()
	v.DayLens = d.intSlice()
	v.Ups = d.intSlice()
	v.Downs = d.intSlice()
	v.WeekBase = d.i()
	v.WeekLastAppear = d.i()
	v.UASamples = d.i()
	v.UAPrecision = d.u8()
	v.UARegisters = d.bytes()
	if d.err != nil {
		return SummaryPartial{}, nil, d.err
	}
	return v, d.p, nil
}

// --- ASPartial -------------------------------------------------------

// AppendASPartialWire appends p's canonical wire encoding to b.
func AppendASPartialWire(b []byte, p *ASPartial) []byte {
	b = wBool(b, p.Found)
	b = wU32(b, p.AS)
	b = wString(b, p.Kind)
	b = wString(b, p.Country)
	b = wString(b, p.RIR)
	b = wStringSlice(b, p.Prefixes)
	b = wInt(b, p.RoutedBlocks)
	b = wInt(b, p.ActiveBlocks)
	b = wInt(b, p.ActiveAddrs)
	b = wF64Slice(b, p.Hits)
	return b
}

// DecodeASPartialWire decodes one ASPartial from p, returning the
// remaining bytes.
func DecodeASPartialWire(p []byte) (ASPartial, []byte, error) {
	d := &wdec{p: p}
	var v ASPartial
	v.Found = d.bool()
	v.AS = d.u32()
	v.Kind = d.str()
	v.Country = d.str()
	v.RIR = d.str()
	v.Prefixes = d.strSlice()
	v.RoutedBlocks = d.i()
	v.ActiveBlocks = d.i()
	v.ActiveAddrs = d.i()
	v.Hits = d.f64Slice()
	if d.err != nil {
		return ASPartial{}, nil, d.err
	}
	return v, d.p, nil
}

// --- PrefixPartial ---------------------------------------------------

// AppendPrefixPartialWire appends p's canonical wire encoding to b.
func AppendPrefixPartialWire(b []byte, p *PrefixPartial) []byte {
	b = wString(b, p.Prefix)
	b = wInt(b, p.Blocks)
	b = wInt(b, p.ActiveBlocks)
	b = wInt(b, p.ActiveAddrs)
	b = wF64Slice(b, p.STU)
	b = wF64Slice(b, p.Hits)
	b = wU32Slice(b, p.Origins)
	b = wPresence(b, p.BlockList == nil, len(p.BlockList))
	for i := range p.BlockList {
		b = AppendBlockViewWire(b, &p.BlockList[i])
	}
	return b
}

// --- DeltaPartial ----------------------------------------------------

func appendBlockChange(b []byte, c *BlockChange) []byte {
	b = wString(b, c.Block)
	b = wU32(b, c.AS)
	b = wInt(b, c.FDDelta)
	b = wInt(b, c.ActiveDaysDelta)
	b = wF64(b, c.HitsDelta)
	return b
}

func (d *wdec) blockChange() BlockChange {
	var c BlockChange
	c.Block = d.str()
	c.AS = d.u32()
	c.FDDelta = d.i()
	c.ActiveDaysDelta = d.i()
	c.HitsDelta = d.f64()
	return c
}

// 32 = minimum encoded BlockChange: one empty string (4) + the AS u32 +
// two ints and one float (8 bytes each).
func wBlockChangeSlice(b []byte, s []BlockChange) []byte {
	b = wPresence(b, s == nil, len(s))
	for i := range s {
		b = appendBlockChange(b, &s[i])
	}
	return b
}

func (d *wdec) blockChangeSlice() []BlockChange {
	present, n := d.presence(32)
	if !present {
		return nil
	}
	out := make([]BlockChange, n)
	for i := range out {
		out[i] = d.blockChange()
	}
	return out
}

// AppendDeltaPartialWire appends p's canonical wire encoding to b.
func AppendDeltaPartialWire(b []byte, p *DeltaPartial) []byte {
	b = wU64(b, p.Seed)
	b = wU64(b, p.FromEpoch)
	b = wU64(b, p.ToEpoch)
	b = wInt(b, p.FromDays)
	b = wInt(b, p.ToDays)
	b = wInt(b, p.NewBlocks)
	b = wInt(b, p.GoneDarkBlocks)
	b = wInt(b, p.ChangedBlocks)
	b = wInt(b, p.ActiveBlocksDelta)
	b = wInt(b, p.ActiveAddrsDelta)
	b = wInt(b, p.YearUnionDelta)
	b = wInt(b, p.ICMPUnionDelta)
	b = wInt(b, p.ChurnUp)
	b = wInt(b, p.ChurnDown)
	b = wInt(b, p.WeeksAdded)
	b = wBlockChangeSlice(b, p.NewSample)
	b = wBlockChangeSlice(b, p.GoneDarkSample)
	b = wBlockChangeSlice(b, p.ChangedSample)
	// 30 = minimum encoded ASMovementPartial: the AS u32 + three ints +
	// two nil-slice presence bytes.
	b = wPresence(b, p.ASMovement == nil, len(p.ASMovement))
	for i := range p.ASMovement {
		m := &p.ASMovement[i]
		b = wU32(b, m.AS)
		b = wInt(b, m.FromBlocks)
		b = wInt(b, m.ToBlocks)
		b = wInt(b, m.BothBlocks)
		b = wF64Slice(b, m.FromHits)
		b = wF64Slice(b, m.ToHits)
	}
	return b
}

// DecodeDeltaPartialWire decodes one DeltaPartial from p, returning the
// remaining bytes.
func DecodeDeltaPartialWire(p []byte) (DeltaPartial, []byte, error) {
	d := &wdec{p: p}
	var v DeltaPartial
	v.Seed = d.u64()
	v.FromEpoch = d.u64()
	v.ToEpoch = d.u64()
	v.FromDays = d.i()
	v.ToDays = d.i()
	v.NewBlocks = d.i()
	v.GoneDarkBlocks = d.i()
	v.ChangedBlocks = d.i()
	v.ActiveBlocksDelta = d.i()
	v.ActiveAddrsDelta = d.i()
	v.YearUnionDelta = d.i()
	v.ICMPUnionDelta = d.i()
	v.ChurnUp = d.i()
	v.ChurnDown = d.i()
	v.WeeksAdded = d.i()
	v.NewSample = d.blockChangeSlice()
	v.GoneDarkSample = d.blockChangeSlice()
	v.ChangedSample = d.blockChangeSlice()
	present, n := d.presence(30)
	if present {
		v.ASMovement = make([]ASMovementPartial, n)
		for i := range v.ASMovement {
			m := &v.ASMovement[i]
			m.AS = d.u32()
			m.FromBlocks = d.i()
			m.ToBlocks = d.i()
			m.BothBlocks = d.i()
			m.FromHits = d.f64Slice()
			m.ToHits = d.f64Slice()
		}
	}
	if d.err != nil {
		return DeltaPartial{}, nil, d.err
	}
	return v, d.p, nil
}

// --- MovementPartial -------------------------------------------------

// AppendMovementPartialWire appends p's canonical wire encoding to b.
func AppendMovementPartialWire(b []byte, p *MovementPartial) []byte {
	b = wU64(b, p.Seed)
	b = wU64(b, p.OldestEpoch)
	b = wU64(b, p.NewestEpoch)
	// 57 = minimum encoded MovementEntryPartial: two u64 epochs + five
	// ints + a nil-slice presence byte.
	b = wPresence(b, p.Entries == nil, len(p.Entries))
	for i := range p.Entries {
		e := &p.Entries[i]
		b = wU64(b, e.Epoch)
		b = wInt(b, e.Days)
		b = wU64(b, e.BaseEpoch)
		b = wInt(b, e.ActiveBlocks)
		b = wInt(b, e.ActiveAddrs)
		b = wInt(b, e.ChurnUp)
		b = wInt(b, e.ChurnDown)
		b = wU32Slice(b, e.ASes)
	}
	return b
}

// DecodeMovementPartialWire decodes one MovementPartial from p,
// returning the remaining bytes.
func DecodeMovementPartialWire(p []byte) (MovementPartial, []byte, error) {
	d := &wdec{p: p}
	var v MovementPartial
	v.Seed = d.u64()
	v.OldestEpoch = d.u64()
	v.NewestEpoch = d.u64()
	present, n := d.presence(57)
	if present {
		v.Entries = make([]MovementEntryPartial, n)
		for i := range v.Entries {
			e := &v.Entries[i]
			e.Epoch = d.u64()
			e.Days = d.i()
			e.BaseEpoch = d.u64()
			e.ActiveBlocks = d.i()
			e.ActiveAddrs = d.i()
			e.ChurnUp = d.i()
			e.ChurnDown = d.i()
			e.ASes = d.u32Slice()
		}
	}
	if d.err != nil {
		return MovementPartial{}, nil, d.err
	}
	return v, d.p, nil
}

// DecodePrefixPartialWire decodes one PrefixPartial from p, returning
// the remaining bytes.
func DecodePrefixPartialWire(p []byte) (PrefixPartial, []byte, error) {
	d := &wdec{p: p}
	var v PrefixPartial
	v.Prefix = d.str()
	v.Blocks = d.i()
	v.ActiveBlocks = d.i()
	v.ActiveAddrs = d.i()
	v.STU = d.f64Slice()
	v.Hits = d.f64Slice()
	v.Origins = d.u32Slice()
	// 76 = minimum encoded BlockView: 6 empty strings (4 bytes each) +
	// 3 ints + 3 floats (8 bytes each) + the AS u32.
	present, n := d.presence(76)
	if present {
		v.BlockList = make([]BlockView, n)
		for i := range v.BlockList {
			v.BlockList[i] = d.blockView()
		}
	}
	if d.err != nil {
		return PrefixPartial{}, nil, d.err
	}
	return v, d.p, nil
}
