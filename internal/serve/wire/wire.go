// Package wire is the single definition of the /v1/* wire contract:
// the typed request/response bodies, the error payloads and texts, the
// epoch splice every JSON body carries, and the epoch-derived ETag
// validation — shared by the shard server (internal/serve), the cluster
// router (internal/cluster), the binary RPC transport (internal/rpc)
// and the selfcheck/smoke probes, so a routed response cannot drift
// from a single-node one by reimplementing any of it.
//
// The package deliberately holds no server state: everything here is a
// pure function of (payload, epoch, request), which is what makes the
// byte-stability invariants (TestClusterEquivalence, the smoke scripts'
// summary diffs) checkable — the same inputs produce the same bytes on
// every node that links this package.
package wire

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"ipscope/internal/ipv4"
)

// DefaultPrefixBlockList caps the per-block detail list embedded in a
// /v1/prefix response. Part of the body contract: every shard and the
// router must apply the same cap or merged block lists drift.
const DefaultPrefixBlockList = 16

// ErrorBody is the JSON error payload every /v1/* endpoint uses —
// single-node, routed, and reconstructed from RPC frames alike.
type ErrorBody struct {
	Error string `json:"error"`
}

// WarmingError is the error text a server with no published snapshot
// answers 503 with. One definition, so the router's RPC transport can
// reconstruct the warming body byte-identically.
const WarmingError = "index warming up: no snapshot published yet"

// WarmingBody returns the full 503 warming response body (epoch 0,
// trailing newline) exactly as the shard's cache layer writes it.
func WarmingBody() []byte {
	return []byte(`{"epoch":0,"error":"` + WarmingError + `"}` + "\n")
}

// ErrASNotFound renders the 404 body text for an unknown AS, shared by
// the shard server and the router's merged not-found answer.
func ErrASNotFound(n uint32) string { return fmt.Sprintf("AS%d not in dataset", n) }

// EpochRangeBody is the 404 payload for a time-travel request naming an
// epoch outside the retained ring: the error text plus the range the
// caller can retry inside. It deliberately carries no epoch splice —
// the body is a pure function of (asked, oldest, newest), so the RPC
// transport reconstructs it byte-identically from a typed frame and a
// router can synthesize the cluster-wide common-range variant.
type EpochRangeBody struct {
	Error       string `json:"error"`
	OldestEpoch uint64 `json:"oldestEpoch"`
	NewestEpoch uint64 `json:"newestEpoch"`
}

// ErrInvalidEpoch renders the 400 body text for an unparseable ?epoch=
// value, shared by the shard server and the router's RPC transport.
func ErrInvalidEpoch(raw string) string { return fmt.Sprintf("invalid epoch %q", raw) }

// ErrDeltaParams renders the 400 body text for a /v1/delta request
// whose from/to query parameters are missing, non-integer or not an
// increasing span. One text for every rejection keeps the routed and
// single-node answers identical.
func ErrDeltaParams(fromRaw, toRaw string) string {
	return fmt.Sprintf("delta wants ?from=E&to=E epochs with from < to (got from=%q to=%q)", fromRaw, toRaw)
}

// ErrInvalidLast renders the 400 body text for an unparseable
// /v1/movement ?last= value.
func ErrInvalidLast(raw string) string { return fmt.Sprintf("invalid last %q", raw) }

// ErrEpochNotRetained renders the error text for an epoch outside the
// retained range.
func ErrEpochNotRetained(asked, oldest, newest uint64) string {
	return fmt.Sprintf("epoch %d not retained (retained epochs %d..%d)", asked, oldest, newest)
}

// NotRetainedBody returns the full 404 body bytes (trailing newline, no
// epoch splice) for a request naming an unretained epoch.
func NotRetainedBody(asked, oldest, newest uint64) []byte {
	body, _ := json.Marshal(EpochRangeBody{
		Error:       ErrEpochNotRetained(asked, oldest, newest),
		OldestEpoch: oldest,
		NewestEpoch: newest,
	})
	return append(body, '\n')
}

// NotRetainedError is the typed form of the not-retained 404: a shard
// was asked for an epoch outside its ring. Both cluster transports
// surface it — the HTTP client by decoding EpochRangeBody, the RPC
// client from the error frame's retained-range fields — so the router
// can fold per-shard ranges into the cluster-wide common range without
// parsing error text.
type NotRetainedError struct {
	Oldest, Newest uint64
}

// Error renders the range for logs; routed responses are rebuilt with
// NotRetainedBody instead.
func (e *NotRetainedError) Error() string {
	return fmt.Sprintf("epoch not retained (shard retains %d..%d)", e.Oldest, e.Newest)
}

// ErrBlockNotFound renders the 404 body text for a /24 with no activity
// in the daily window, shared by the shard server and the router's RPC
// transport (which reconstructs the body from a typed frame).
func ErrBlockNotFound(blk ipv4.Block) string {
	return fmt.Sprintf("block %v has no activity in the daily window", blk)
}

// ETagFor derives the entity tag every /v1/* endpoint serves from the
// snapshot epoch: indexes are immutable, so a resource changes exactly
// when the epoch does.
func ETagFor(epoch uint64) string {
	return fmt.Sprintf("\"ips-e%d\"", epoch)
}

// ETagMatch reports whether an If-None-Match header value matches etag
// (or is the "*" wildcard).
func ETagMatch(inm, etag string) bool {
	if inm == "" {
		return false
	}
	for _, c := range strings.Split(inm, ",") {
		c = strings.TrimSpace(c)
		if c == etag || c == "*" {
			return true
		}
	}
	return false
}

// NotModified reports whether the request's If-None-Match header
// matches etag.
func NotModified(r *http.Request, etag string) bool {
	return ETagMatch(r.Header.Get("If-None-Match"), etag)
}

// WithEpoch splices the snapshot epoch into a marshalled JSON object as
// its leading field, so every body self-identifies the snapshot it was
// computed from without every payload type carrying the field.
func WithEpoch(body []byte, epoch uint64) []byte {
	if len(body) < 2 || body[0] != '{' {
		return body
	}
	head := fmt.Sprintf(`{"epoch":%d`, epoch)
	if body[1] != '}' {
		head += ","
	}
	return append([]byte(head), body[1:]...)
}

// encScratch is a pooled JSON encoder + buffer pair: Encode runs per
// cache fill, and marshalling through a pooled buffer means the only
// allocation that survives the call is the returned body itself (which
// must, since it outlives the call inside the response cache).
type encScratch struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	s := &encScratch{}
	s.enc = json.NewEncoder(&s.buf)
	return s
}}

// maxPooledEncBuf caps the scratch buffers the pool retains, so one
// giant delta body cannot pin megabytes behind every P forever.
const maxPooledEncBuf = 1 << 20

// Encode marshals a /v1/* payload into its final body bytes — epoch
// spliced, trailing newline — exactly as the shard cache layer and the
// router both serve it. A marshal failure degrades to the canonical 500
// body, mirroring the serving path's behaviour. The splice and the
// final newline are assembled in one exactly-sized allocation from a
// pooled scratch buffer; the bytes are identical to
// json.Marshal+WithEpoch+newline.
func Encode(status int, payload any, epoch uint64) (int, []byte) {
	s := encPool.Get().(*encScratch)
	s.buf.Reset()
	if err := s.enc.Encode(payload); err != nil {
		encPool.Put(s)
		return http.StatusInternalServerError,
			append(WithEpoch([]byte(`{"error":"encoding failed"}`), epoch), '\n')
	}
	mb := s.buf.Bytes() // marshalled payload + the encoder's trailing newline
	var out []byte
	if body := mb[:len(mb)-1]; len(body) < 2 || body[0] != '{' {
		out = append(make([]byte, 0, len(mb)), mb...)
	} else {
		out = make([]byte, 0, len(`{"epoch":`)+21+len(mb))
		out = append(out, `{"epoch":`...)
		out = strconv.AppendUint(out, epoch, 10)
		if body[1] != '}' {
			out = append(out, ',')
		}
		out = append(out, mb[1:]...)
	}
	if s.buf.Cap() <= maxPooledEncBuf {
		encPool.Put(s)
	}
	return status, out
}

// Respond writes a full /v1/* response — epoch ETag, If-None-Match
// handling, epoch-spliced JSON body — the way a shard's cache layer
// assembles it, so routed bodies are byte-compatible with single-node
// ones. Used by the cluster router for merged and error responses.
func Respond(w http.ResponseWriter, r *http.Request, status int, payload any, epoch uint64) {
	etag := ETagFor(epoch)
	w.Header().Set("ETag", etag)
	if NotModified(r, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	status, body := Encode(status, payload, epoch)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// Parse24 accepts "a.b.c.0/24" or a bare address inside the block —
// the /v1/block path parameter contract.
func Parse24(raw string) (ipv4.Block, error) {
	if i := strings.IndexByte(raw, '/'); i >= 0 {
		p, err := ipv4.ParsePrefix(raw)
		if err != nil {
			return 0, err
		}
		if p.Bits() != 24 {
			return 0, fmt.Errorf("block endpoint wants a /24, got /%d", p.Bits())
		}
		return p.FirstBlock(), nil
	}
	a, err := ipv4.ParseAddr(raw)
	if err != nil {
		return 0, err
	}
	return a.Block(), nil
}

// ParseASN parses "AS64500" or "64500" — the /v1/as path parameter
// contract. The router shares it (and its error text) so a routed 400
// is byte-identical to a single-node one.
func ParseASN(raw string) (uint32, error) {
	s := strings.TrimPrefix(strings.ToUpper(raw), "AS")
	n, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("invalid ASN %q", raw)
	}
	return uint32(n), nil
}

// ShardInfo describes the slice of the /24 block space a shard serves:
// its position in the partition and the owned block range [Lo, Hi) as
// raw /24 block numbers (Hi may be 1<<24, one past the last block).
// The cluster router learns the partition by reading every shard's
// /v1/cluster/info, so shards are the single source of truth for who
// owns what. Replica distinguishes processes serving the same range
// under replication; every replica of a range builds a bit-identical
// index (determinism), so Replica is identity for health reporting,
// not a data coordinate. omitempty keeps replica-0 bodies
// byte-identical to the pre-replication wire.
type ShardInfo struct {
	Index   int    `json:"shard"`
	Count   int    `json:"shards"`
	Lo      uint32 `json:"blockLo"`
	Hi      uint32 `json:"blockHi"`
	Replica int    `json:"replica,omitempty"`
}

// Contains reports whether blk falls inside the shard's owned range.
func (si ShardInfo) Contains(blk ipv4.Block) bool {
	return uint32(blk) >= si.Lo && uint32(blk) < si.Hi
}

// ClusterInfo is the /v1/cluster/info body: the shard's partition
// coordinates plus enough state for a router to route and a smoke test
// to probe. RPCAddr, when non-empty, advertises the shard's binary RPC
// endpoint (internal/rpc); a router running -transport=rpc upgrades to
// it, and falls back to HTTP for shards that do not advertise one.
type ClusterInfo struct {
	Status string `json:"status"`
	Epoch  uint64 `json:"epoch"`
	ShardInfo
	RPCAddr     string `json:"rpcAddr,omitempty"`
	Blocks      int    `json:"blocks"`
	FirstActive string `json:"firstActive,omitempty"`
	OldestEpoch uint64 `json:"oldestEpoch"`
	NewestEpoch uint64 `json:"newestEpoch"`
}

// Health is the shard server's /v1/healthz body. OldestEpoch/NewestEpoch
// report the retained history ring (equal to Epoch when only the live
// snapshot is retained).
type Health struct {
	Status      string `json:"status"`
	Epoch       uint64 `json:"epoch"`
	OldestEpoch uint64 `json:"oldestEpoch"`
	NewestEpoch uint64 `json:"newestEpoch"`
	Blocks      int    `json:"blocks"`
	DailyLen    int    `json:"dailyLen"`
	CacheHits   uint64 `json:"cacheHits"`
	CacheMisses uint64 `json:"cacheMisses"`
	CacheSize   int    `json:"cacheSize"`
	// AccessLogDrops counts access-log records the bounded async queue
	// discarded instead of stalling requests. omitempty keeps the body
	// byte-identical to the pre-async wire whenever nothing dropped.
	AccessLogDrops uint64     `json:"accessLogDrops,omitempty"`
	Partition      *ShardInfo `json:"partition,omitempty"`
}

// RouterHealth is the cluster router's /v1/healthz body: the aggregate
// verdict plus one entry per replica process (shardStates) and a
// per-range rollup (rangeStates). OldestEpoch/NewestEpoch is the
// cluster-wide common retained range (max over ranges of the range's
// best-replica oldest, min of newests) — the span a time-travel or
// delta query can name and have every range answer. Status is
// "degraded" (503) only when some range has zero healthy replicas;
// individual replica deaths that leave every range covered keep the
// fleet "ok".
type RouterHealth struct {
	Status      string              `json:"status"`
	Epoch       uint64              `json:"epoch"`
	OldestEpoch uint64              `json:"oldestEpoch"`
	NewestEpoch uint64              `json:"newestEpoch"`
	Shards      []RouterShardHealth `json:"shardStates"`
	Ranges      []RouterRangeHealth `json:"rangeStates"`
}

// RouterShardHealth is one replica process's health as the router
// observed it on this probe. Replica is 0 for the primary copy of a
// range (omitempty keeps R=1 fleets byte-compatible with the
// pre-replication wire).
type RouterShardHealth struct {
	Shard       int    `json:"shard"`
	Replica     int    `json:"replica,omitempty"`
	URL         string `json:"url"`
	Transport   string `json:"transport,omitempty"`
	Status      string `json:"status"`
	Epoch       uint64 `json:"epoch"`
	OldestEpoch uint64 `json:"oldestEpoch"`
	NewestEpoch uint64 `json:"newestEpoch"`
	Error       string `json:"error,omitempty"`
}

// RouterRangeHealth rolls the replicas of one block range up to the
// unit that matters for availability: a range with at least one
// healthy replica answers, a range with none is what "degraded"
// means.
type RouterRangeHealth struct {
	Shard    int    `json:"shard"`
	Lo       uint32 `json:"blockLo"`
	Hi       uint32 `json:"blockHi"`
	Replicas int    `json:"replicas"`
	Healthy  int    `json:"healthy"`
	Status   string `json:"status"`
}
