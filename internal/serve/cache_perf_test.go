package serve

import (
	"fmt"
	"sync"
	"testing"
)

// TestEvictEpochProportional pins the cost model of epoch eviction: the
// per-epoch entry lists mean EvictEpoch touches exactly the entries it
// removes, never the rest of the cache. A regression to the old
// scan-every-key behaviour would blow the evictWork counter up to the
// cache size.
func TestEvictEpochProportional(t *testing.T) {
	c := NewCache(4096)
	fill := func(v string) func() Response {
		return func() Response { return Response{Status: 200, Body: []byte(v)} }
	}
	const bulk, small = 1000, 10
	for i := 0; i < bulk; i++ {
		c.Do(fmt.Sprintf("1:/v1/block/%d", i), fill("old"))
	}
	for i := 0; i < small; i++ {
		c.Do(fmt.Sprintf("2:/v1/block/%d", i), fill("new"))
	}
	// An unkeyed entry (no epoch prefix) must never be epoch-evicted.
	c.Do("plain", fill("plain"))

	if n := c.EvictEpoch(3); n != 0 {
		t.Fatalf("evicting an absent epoch dropped %d entries", n)
	}
	if w := c.evictWorkTotal(); w != 0 {
		t.Fatalf("absent epoch did %d units of work, want 0", w)
	}

	if n := c.EvictEpoch(2); n != small {
		t.Fatalf("EvictEpoch(2) dropped %d entries, want %d", n, small)
	}
	if w := c.evictWorkTotal(); w != small {
		t.Fatalf("EvictEpoch(2) did %d units of work, want %d — eviction cost must be O(evicted), not O(cache)", w, small)
	}

	if n := c.EvictEpoch(1); n != bulk {
		t.Fatalf("EvictEpoch(1) dropped %d entries, want %d", n, bulk)
	}
	if w := c.evictWorkTotal(); w != bulk+small {
		t.Fatalf("total evict work %d, want %d", w, bulk+small)
	}
	if _, _, size := c.Stats(); size != 1 {
		t.Fatalf("cache size %d after evicting both epochs, want 1 (the unkeyed entry)", size)
	}
	if _, hit := c.Do("plain", fill("x")); !hit {
		t.Fatal("unkeyed entry was evicted by epoch eviction")
	}
}

// TestCacheHitZeroAllocs enforces the headline claim of the read-path
// overhaul: a cache hit — key construction included — allocates nothing.
func TestCacheHitZeroAllocs(t *testing.T) {
	c := NewCache(64)
	var kb [96]byte
	key := appendCacheKey(kb[:0], 42, "/v1/block/198.51.100.0/24")
	c.Put(string(key), Response{Status: 200, Body: []byte(`{"epoch":42}` + "\n")})

	allocs := testing.AllocsPerRun(1000, func() {
		k := appendCacheKey(kb[:0], 42, "/v1/block/198.51.100.0/24")
		if _, ok := c.Get(k); !ok {
			t.Fatal("key not cached")
		}
	})
	if allocs != 0 {
		t.Fatalf("cache hit allocates %.1f objects per run, want 0", allocs)
	}
}

// TestCacheHammer exercises every cache operation concurrently; it
// exists to run under -race (the Makefile race target) and to shake out
// slab/free-list corruption: after the storm every surviving entry must
// still round-trip its own key.
func TestCacheHammer(t *testing.T) {
	c := NewCache(512)
	const workers = 8
	const iters = 400

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var kb [64]byte
			for i := 0; i < iters; i++ {
				epoch := uint64(i % 4)
				key := appendCacheKey(kb[:0], epoch, fmt.Sprintf("/k/%d", (w*7+i)%128))
				switch i % 5 {
				case 0:
					k := string(key) // copy: kb is reused next iteration
					c.Put(k, Response{Status: 200, Body: []byte(k)})
				case 1:
					c.Get(key)
				case 2:
					c.EvictEpoch(epoch)
				case 3:
					c.Stats()
				default:
					want := string(key)
					resp, _ := c.Do(want, func() Response {
						return Response{Status: 200, Body: []byte(want)}
					})
					if string(resp.Body) != want {
						t.Errorf("Do(%q) returned body %q", want, resp.Body)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Every entry still in the cache must answer to its own key.
	for e := uint64(0); e < 4; e++ {
		c.EvictEpoch(e)
	}
	if _, _, size := c.Stats(); size != 0 {
		t.Fatalf("%d entries survived evicting every epoch", size)
	}
}
