package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultAccessLogQueue bounds the async access-log queue when
// Config.AccessLogQueue is 0.
const DefaultAccessLogQueue = 1024

// accessRecord is one structured access-log line.
type accessRecord struct {
	Time     string  `json:"time"`
	Method   string  `json:"method"`
	Path     string  `json:"path"`
	Status   int     `json:"status"`
	Bytes    int     `json:"bytes"`
	Duration float64 `json:"durMs"`
	Cache    string  `json:"cache,omitempty"`
}

// logEvent is one queued completion. Timestamp formatting and JSON
// encoding happen on the consumer goroutine, off the request path; a
// non-nil flush channel marks a synchronization token instead of a
// record (closed once every earlier record has been written).
type logEvent struct {
	start         time.Time
	dur           time.Duration
	method, path  string
	cache         string
	status, bytes int
	flush         chan struct{}
	stop          bool
}

// accessLogger serializes access records through a bounded queue and a
// single consumer goroutine: the request path never takes a lock, never
// marshals JSON, and never blocks on the log writer. Records from one
// connection are enqueued in completion order and the single consumer
// preserves queue order, so per-connection log order is exact. When the
// queue is full the record is dropped and counted instead of stalling
// the response — Drops is surfaced in /v1/healthz.
type accessLogger struct {
	ch    chan logEvent
	drops atomic.Uint64
	once  sync.Once
}

func newAccessLogger(w io.Writer, queue int) *accessLogger {
	if queue <= 0 {
		queue = DefaultAccessLogQueue
	}
	l := &accessLogger{ch: make(chan logEvent, queue)}
	go l.run(w)
	return l
}

// log enqueues one completed request, dropping (and counting) when the
// queue is full. Never blocks.
func (l *accessLogger) log(ev logEvent) {
	select {
	case l.ch <- ev:
	default:
		l.drops.Add(1)
	}
}

// Flush blocks until every record enqueued before the call has been
// written to the log writer.
func (l *accessLogger) Flush() {
	done := make(chan struct{})
	l.ch <- logEvent{flush: done}
	<-done
}

// Close flushes and stops the consumer goroutine. Records logged after
// Close fill the dead queue and are then dropped; the server only
// closes after the HTTP listener has drained.
func (l *accessLogger) Close() {
	l.once.Do(func() {
		done := make(chan struct{})
		l.ch <- logEvent{flush: done, stop: true}
		<-done
	})
}

// run is the single consumer: one persistent buffer and encoder reused
// across lines (the pooled-encoder discipline — one encoder, zero
// steady-state allocation churn beyond what encoding/json itself does).
func (l *accessLogger) run(w io.Writer) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for ev := range l.ch {
		if ev.flush != nil {
			close(ev.flush)
			if ev.stop {
				return
			}
			continue
		}
		rec := accessRecord{
			Time:     ev.start.UTC().Format(time.RFC3339Nano),
			Method:   ev.method,
			Path:     ev.path,
			Status:   ev.status,
			Bytes:    ev.bytes,
			Duration: float64(ev.dur.Microseconds()) / 1000,
			Cache:    ev.cache,
		}
		buf.Reset()
		if enc.Encode(rec) == nil { // Encode appends the trailing newline
			w.Write(buf.Bytes())
		}
	}
}

// Drops reports how many records the bounded queue has discarded.
func (l *accessLogger) Drops() uint64 { return l.drops.Load() }
