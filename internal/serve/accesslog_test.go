package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestAccessLogExactlyOnceInOrder pins the logger's correctness
// contract: every request is logged exactly once, and records from one
// connection appear in completion order (serial requests → request
// order), even though formatting and writing happen asynchronously.
func TestAccessLogExactlyOnceInOrder(t *testing.T) {
	_, idx := fixture(t)
	var log bytes.Buffer
	s := New(idx, Config{AccessLog: &log})
	h := s.Handler()

	var want []string
	paths := []string{"/v1/summary", "/v1/healthz", "/v1/summary", "/v1/movement"}
	for i := 0; i < 3; i++ {
		for _, p := range paths {
			req := httptest.NewRequest("GET", p, nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			want = append(want, p)
		}
	}
	s.FlushAccessLog()

	lines := strings.Split(strings.TrimSpace(log.String()), "\n")
	if len(lines) != len(want) {
		t.Fatalf("access log has %d lines, want %d", len(lines), len(want))
	}
	for i, line := range lines {
		var rec accessRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if rec.Path != want[i] {
			t.Errorf("line %d: path %q, want %q — completion order not preserved", i, rec.Path, want[i])
		}
	}
	if s.AccessLogDrops() != 0 {
		t.Errorf("%d drops on an idle queue", s.AccessLogDrops())
	}
}

// blockingWriter refuses to accept writes until released — a stand-in
// for a wedged log disk or pipe.
type blockingWriter struct {
	release chan struct{}
	mu      sync.Mutex
	n       int
}

func (w *blockingWriter) Write(p []byte) (int, error) {
	<-w.release
	w.mu.Lock()
	w.n++
	w.mu.Unlock()
	return len(p), nil
}

func (w *blockingWriter) writes() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// TestAccessLogOverflowDrops pins the backpressure policy: when the
// bounded queue is full, log() drops and counts instead of blocking the
// request path.
func TestAccessLogOverflowDrops(t *testing.T) {
	w := &blockingWriter{release: make(chan struct{})}
	l := newAccessLogger(w, 2)

	// Let the consumer park inside Write on the first record so the
	// queue fills behind it.
	l.log(logEvent{method: "GET", path: "/p0", start: time.Now()})
	deadline := time.Now().Add(2 * time.Second)
	for len(l.ch) != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	const extra = 10
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < extra; i++ {
			l.log(logEvent{method: "GET", path: fmt.Sprintf("/p%d", i+1), start: time.Now()})
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("log() blocked on a full queue")
	}
	if d := l.Drops(); d < extra-2 {
		t.Fatalf("%d drops with queue 2 and %d overflow records, want >= %d", d, extra, extra-2)
	}

	close(w.release)
	l.Close()
	if got := w.writes(); got < 1 || got > 3 {
		t.Errorf("%d records written, want 1..3 (the non-dropped ones)", got)
	}
}

// TestAccessLogDropsInHealthz proves the drop counter is operator
// visible: a server with a wedged log writer and a tiny queue reports
// accessLogDrops in /v1/healthz instead of stalling requests.
func TestAccessLogDropsInHealthz(t *testing.T) {
	_, idx := fixture(t)
	w := &blockingWriter{release: make(chan struct{})}
	defer close(w.release)
	s := New(idx, Config{AccessLog: w, AccessLogQueue: 1})
	h := s.Handler()

	for i := 0; i < 20; i++ {
		req := httptest.NewRequest("GET", "/v1/summary", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d — a wedged access log must not affect serving", i, rec.Code)
		}
	}
	if s.AccessLogDrops() == 0 {
		t.Fatal("no drops recorded with a wedged writer and queue 1")
	}

	req := httptest.NewRequest("GET", "/v1/healthz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var hz map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if drops, ok := hz["accessLogDrops"].(float64); !ok || drops == 0 {
		t.Fatalf("healthz accessLogDrops = %v, want > 0", hz["accessLogDrops"])
	}
}
