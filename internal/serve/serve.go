// Package serve exposes a query.Index over an HTTP JSON API — the
// user-facing read path of the pipeline (cmd/ipscope-serve). The shape
// follows cached BGP looking-glass services: every endpoint is a point
// lookup answered from an immutable index snapshot through a bounded
// LRU response cache with single-flight filling, requests are
// access-logged as structured JSON lines, and shutdown is graceful
// (in-flight requests drain before Close returns).
//
// The server is epoch-aware: it holds an atomic pointer to the current
// index snapshot, and Publish swaps in a new one without dropping
// in-flight requests — a request uses whichever snapshot it loaded for
// its whole lifetime. Cache keys carry the snapshot epoch, every cached
// response body carries an "epoch" field, and every /v1/* lookup
// endpoint serves an epoch-derived ETag with If-None-Match → 304
// handling (healthz is exempt: its body mutates per request, so it
// carries the epoch in the body instead). A server published with no
// snapshot yet (live mode warming up) answers 503 with Retry-After
// until the first Publish.
//
// Beyond the live snapshot, the server retains a bounded ring of
// recent epochs (internal/history, Config.RetainEpochs): every lookup
// endpoint accepts ?epoch=N to answer as of a retained epoch (an
// unretained epoch 404s with the retained range in the body),
// /v1/delta?from=&to= reports what changed between two retained
// epochs, and /v1/movement?last=N serves the per-epoch totals series.
// When an epoch falls out of the ring, its cache entries are evicted
// eagerly — nothing can ever ask for them again.
//
// The /v1/* body and error contract itself — typed payloads, epoch
// splice, ETag derivation, path-parameter parsing — lives in the
// internal/serve/wire package, shared with the cluster router and the
// binary RPC transport so every serving path produces identical bytes.
//
// Endpoints:
//
//	GET /v1/addr/{ip}        one address's activity timeline + enrichment
//	GET /v1/block/{prefix}   one /24's rollup (FD, STU, traffic, UA, tags)
//	GET /v1/prefix/{cidr}    aggregate over a CIDR's /24 blocks
//	GET /v1/as/{asn}         one origin AS's footprint ("AS64500" or "64500")
//	GET /v1/summary          dataset identity + capture-recapture/churn summaries
//	GET /v1/delta            what changed between two retained epochs (?from=&to=)
//	GET /v1/movement         per-epoch totals series over the ring (?last=N)
//	GET /v1/healthz          liveness + epoch range + cache statistics (uncached)
//
// Every lookup endpoint above also accepts ?epoch=N time travel.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ipscope/internal/bgp"
	"ipscope/internal/history"
	"ipscope/internal/ipv4"
	"ipscope/internal/query"
	"ipscope/internal/serve/wire"
)

// DefaultCacheSize bounds the response cache when Config.CacheSize is 0.
const DefaultCacheSize = 4096

// Config tunes a Server.
type Config struct {
	// CacheSize bounds the LRU response cache; 0 means
	// DefaultCacheSize, negative disables caching.
	CacheSize int
	// RetainEpochs bounds the history ring: how many recent snapshots
	// stay addressable via ?epoch=, /v1/delta and /v1/movement. 0 means
	// history.DefaultRetain (just the live epoch — the pre-history
	// memory profile).
	RetainEpochs int
	// AccessLog, when non-nil, receives one JSON line per request,
	// written asynchronously by a single consumer goroutine behind a
	// bounded queue (see AccessLogQueue).
	AccessLog io.Writer
	// AccessLogQueue bounds the async access-log queue; 0 means
	// DefaultAccessLogQueue. When the queue is full the record is
	// dropped and counted (/v1/healthz accessLogDrops) instead of
	// stalling the request.
	AccessLogQueue int
	// Shard, when non-nil, marks this server as one shard of a
	// block-partitioned cluster: /v1/cluster/info reports the owned
	// range and /v1/healthz carries the partition coordinates. The
	// cluster partial endpoints themselves are always registered — an
	// unsharded server is simply the one-shard cluster, which is what
	// lets the equivalence tests run a router over a single full
	// server. Live shards that learn their range from the stream's
	// meta event use SetShard instead. Under replication the Replica
	// field labels this process among the range's copies; it changes
	// nothing about what is served (replicas build bit-identical
	// indexes), only how routers report the process.
	Shard *wire.ShardInfo
}

// Server serves query.Index snapshots over HTTP.
type Server struct {
	idx     atomic.Pointer[query.Index]
	shard   atomic.Pointer[wire.ShardInfo]
	rpcAddr atomic.Pointer[string]
	cache   *Cache
	ring    *history.Ring
	handler http.Handler

	// hot holds everything the live-epoch read path would otherwise
	// compute per request: the epoch's ETag (string and pre-built
	// header value) and the precomputed /v1/cluster/info body. It is
	// rebuilt under pubMu on Publish/SetShard/SetRPCAddr — never on the
	// request path — and nil while warming.
	hot atomic.Pointer[hotState]

	logger *accessLogger

	// pubMu serializes Publish: the ring append and the eviction of the
	// epochs it displaced must not interleave between publishers. It
	// also guards hot recomputation so a slow SetShard cannot overwrite
	// a newer epoch's hot state.
	pubMu sync.Mutex

	srvMu   sync.Mutex
	httpSrv *http.Server
	serveCh chan error
}

// hotState is the publish-time precomputation for the live epoch.
type hotState struct {
	epoch       uint64
	etag        string
	etagHdr     []string // pre-built header value, shared across requests
	clusterInfo []byte   // pre-encoded /v1/cluster/info body
}

// Pre-built header values the hot path assigns directly into the
// response header map — http.Header.Set allocates a fresh []string per
// call, which is pure garbage on a cache hit. Handlers only ever read
// these slices.
var (
	hdrJSON = []string{"application/json"}
	hdrHit  = []string{"hit"}
	hdrMiss = []string{"miss"}
)

// New creates a Server over idx. A nil idx starts the server in warming
// mode: every lookup answers 503 until the first Publish.
func New(idx *query.Index, cfg Config) *Server {
	size := cfg.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	s := &Server{
		cache: NewCache(size),
		ring:  history.New(cfg.RetainEpochs),
	}
	if cfg.AccessLog != nil {
		s.logger = newAccessLogger(cfg.AccessLog, cfg.AccessLogQueue)
	}
	if cfg.Shard != nil {
		s.shard.Store(cfg.Shard)
	}
	if idx != nil {
		s.idx.Store(idx)
		s.ring.Add(idx)
		s.refreshHot(idx)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/addr/{ip}", s.cached(s.handleAddr))
	mux.HandleFunc("GET /v1/block/{prefix...}", s.cached(s.handleBlock))
	mux.HandleFunc("GET /v1/prefix/{cidr...}", s.cached(s.handlePrefix))
	mux.HandleFunc("GET /v1/as/{asn}", s.cached(s.handleAS))
	mux.HandleFunc("GET /v1/summary", s.cached(s.handleSummary))
	mux.HandleFunc("GET /v1/delta", s.handleDelta)
	mux.HandleFunc("GET /v1/movement", s.handleMovement)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	// Cluster plane: mergeable partials for the scatter-gather router.
	mux.HandleFunc("GET /v1/cluster/info", s.handleClusterInfo)
	mux.HandleFunc("GET /v1/cluster/summary", s.cached(s.handleClusterSummary))
	mux.HandleFunc("GET /v1/cluster/as/{asn}", s.cached(s.handleClusterAS))
	mux.HandleFunc("GET /v1/cluster/prefix/{cidr...}", s.cached(s.handleClusterPrefix))
	mux.HandleFunc("GET /v1/cluster/delta", s.handleClusterDelta)
	mux.HandleFunc("GET /v1/cluster/movement", s.handleClusterMovement)
	s.handler = s.logged(mux)
	return s
}

// SetShard publishes the server's partition coordinates after startup —
// the live-shard path, where the owned range is only known once the
// stream's meta event arrives and the partition plan can be computed.
func (s *Server) SetShard(si wire.ShardInfo) {
	s.pubMu.Lock()
	defer s.pubMu.Unlock()
	s.shard.Store(&si)
	s.refreshHot(s.idx.Load())
}

// Shard returns the published partition coordinates, defaulting to the
// one-shard cluster covering the whole block space.
func (s *Server) Shard() wire.ShardInfo {
	if si := s.shard.Load(); si != nil {
		return *si
	}
	return wire.ShardInfo{Index: 0, Count: 1, Lo: 0, Hi: 1 << 24}
}

// SetRPCAddr advertises the shard's binary RPC endpoint (host:port) in
// /v1/cluster/info, letting a router running -transport=rpc upgrade its
// connection to this shard.
func (s *Server) SetRPCAddr(addr string) {
	s.pubMu.Lock()
	defer s.pubMu.Unlock()
	s.rpcAddr.Store(&addr)
	s.refreshHot(s.idx.Load())
}

// RPCAddr returns the advertised RPC endpoint ("" when RPC is not
// enabled on this shard).
func (s *Server) RPCAddr() string {
	if a := s.rpcAddr.Load(); a != nil {
		return *a
	}
	return ""
}

// Publish atomically swaps in a new index snapshot and retains it in
// the history ring. In-flight requests keep the snapshot they loaded;
// new requests (and their cache keys) use the new epoch immediately.
// Epochs the ring evicts take their cache entries with them — nothing
// can address an unretained epoch, so its responses are dead weight.
func (s *Server) Publish(idx *query.Index) {
	s.pubMu.Lock()
	defer s.pubMu.Unlock()
	s.idx.Store(idx)
	for _, epoch := range s.ring.Add(idx) {
		s.cache.EvictEpoch(epoch)
	}
	s.refreshHot(idx)
}

// refreshHot rebuilds the publish-time precomputation (caller holds
// pubMu, or is New before the server is shared). The epoch's /v1/summary
// body is rendered once here and seeded straight into the response
// cache, so even the first summary request after a swap is a
// zero-allocation cache hit — and an ?epoch= time-travel request later
// reuses the very same entry.
func (s *Server) refreshHot(idx *query.Index) {
	if idx == nil {
		s.hot.Store(nil)
		return
	}
	epoch := idx.Epoch()
	etag := wire.ETagFor(epoch)
	ci, err := json.Marshal(s.ClusterInfo())
	if err != nil {
		ci = []byte(`{"error":"encoding failed"}`)
	}
	s.hot.Store(&hotState{
		epoch:       epoch,
		etag:        etag,
		etagHdr:     []string{etag},
		clusterInfo: append(ci, '\n'),
	})
	var kb [24]byte
	status, body := wire.Encode(http.StatusOK, idx.Summary(), epoch)
	s.cache.Put(string(appendCacheKey(kb[:0], epoch, "/v1/summary")), Response{Status: status, Body: body})
}

// appendCacheKey builds the canonical "epoch:path" cache key into dst
// (typically a stack buffer) without strconv+concat garbage.
func appendCacheKey(dst []byte, epoch uint64, path string) []byte {
	dst = strconv.AppendUint(dst, epoch, 10)
	dst = append(dst, ':')
	return append(dst, path...)
}

// Index returns the currently published snapshot (nil while warming).
func (s *Server) Index() *query.Index { return s.idx.Load() }

// History returns the retained-snapshot ring, shared with the binary
// RPC server so both transports answer time-travel, delta and movement
// queries from identical inputs.
func (s *Server) History() *history.Ring { return s.ring }

// Handler returns the HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.handler }

// CacheStats reports the response cache counters.
func (s *Server) CacheStats() (hits, misses uint64, size int) {
	return s.cache.Stats()
}

// Listen binds addr ("127.0.0.1:0" for an ephemeral port) and serves in
// the background until Shutdown.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.srvMu.Lock()
	s.httpSrv = &http.Server{Handler: s.handler}
	s.serveCh = make(chan error, 1)
	srv, ch := s.httpSrv, s.serveCh
	s.srvMu.Unlock()
	go func() {
		err := srv.Serve(ln)
		if err == http.ErrServerClosed {
			err = nil
		}
		ch <- err
	}()
	return ln.Addr(), nil
}

// Shutdown stops accepting new requests and waits for in-flight ones to
// drain (bounded by ctx). It returns the first serve error, if any.
func (s *Server) Shutdown(ctx context.Context) error {
	s.srvMu.Lock()
	srv, ch := s.httpSrv, s.serveCh
	s.srvMu.Unlock()
	if srv == nil {
		return nil
	}
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	err := <-ch
	s.FlushAccessLog()
	return err
}

// cached wraps a pure lookup in the LRU + single-flight cache, keyed by
// (snapshot epoch, canonical request path): a Publish strands every
// old-epoch entry without touching in-flight fills. The handler runs
// against the snapshot loaded at entry, answers 503 while no snapshot
// is published yet, and honours If-None-Match with the epoch ETag.
func (s *Server) cached(fn func(x *query.Index, r *http.Request) (int, any)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		x := s.idx.Load()
		if x == nil {
			writeWarming(w)
			return
		}
		// ?epoch=N answers as of a retained snapshot. The epoch-keyed
		// cache below then reuses the very entry cached back when that
		// epoch was current — a time-travel response is byte-identical
		// to the live response it once was. The RawQuery guard keeps
		// url.Values parsing (and its allocations) off the no-query
		// fast path entirely.
		if r.URL.RawQuery != "" {
			if raw := r.URL.Query().Get("epoch"); raw != "" {
				e, err := strconv.ParseUint(raw, 10, 64)
				if err != nil {
					status, body := wire.Encode(http.StatusBadRequest,
						wire.ErrorBody{Error: wire.ErrInvalidEpoch(raw)}, x.Epoch())
					writeJSON(w, status, body)
					return
				}
				hx, found := s.ring.Get(e)
				if !found {
					oldest, newest, _ := s.ring.Range()
					writeJSON(w, http.StatusNotFound, wire.NotRetainedBody(e, oldest, newest))
					return
				}
				x = hx
			}
		}
		epoch := x.Epoch()
		// The live epoch's ETag is precomputed at publish time; only
		// time-travel requests pay the format call.
		var etag string
		var etagHdr []string
		if hot := s.hot.Load(); hot != nil && hot.epoch == epoch {
			etag, etagHdr = hot.etag, hot.etagHdr
		} else {
			etag = wire.ETagFor(epoch)
			etagHdr = []string{etag}
		}
		h := w.Header()
		h["Etag"] = etagHdr
		if wire.NotModified(r, etag) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		// Zero-allocation hit path: the key is assembled into a stack
		// buffer and looked up without a string conversion. Only a miss
		// materializes the key and runs the handler.
		var kb [96]byte
		key := appendCacheKey(kb[:0], epoch, r.URL.Path)
		if resp, ok := s.cache.Get(key); ok {
			h["X-Cache"] = hdrHit
			h["Content-Type"] = hdrJSON
			w.WriteHeader(resp.Status)
			w.Write(resp.Body)
			return
		}
		resp, hit := s.cache.Do(string(key), func() Response {
			status, payload := fn(x, r)
			status, body := wire.Encode(status, payload, epoch)
			return Response{Status: status, Body: body}
		})
		writeCached(w, resp, hit)
	}
}

// writeWarming answers the canonical 503 warming response.
func writeWarming(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", "1")
	w.WriteHeader(http.StatusServiceUnavailable)
	w.Write(wire.WarmingBody())
}

// writeJSON writes pre-encoded body bytes with the JSON content type.
func writeJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// writeCached writes a cache-layer response with its X-Cache verdict.
func writeCached(w http.ResponseWriter, resp Response, hit bool) {
	h := w.Header()
	if hit {
		h["X-Cache"] = hdrHit
	} else {
		h["X-Cache"] = hdrMiss
	}
	h["Content-Type"] = hdrJSON
	w.WriteHeader(resp.Status)
	w.Write(resp.Body)
}

// deltaSpan parses and resolves a delta request's from/to epochs against
// the history ring, writing the 400/404 response itself on failure. The
// retained check probes from first, then to — the router re-applies the
// same order against the cluster-wide common range, so a routed 404
// names the same epoch a single node would.
func (s *Server) deltaSpan(w http.ResponseWriter, r *http.Request, cur *query.Index) (fx, tx *query.Index, ok bool) {
	q := r.URL.Query()
	fromRaw, toRaw := q.Get("from"), q.Get("to")
	from, errFrom := strconv.ParseUint(fromRaw, 10, 64)
	to, errTo := strconv.ParseUint(toRaw, 10, 64)
	if errFrom != nil || errTo != nil || from >= to {
		status, body := wire.Encode(http.StatusBadRequest,
			wire.ErrorBody{Error: wire.ErrDeltaParams(fromRaw, toRaw)}, cur.Epoch())
		writeJSON(w, status, body)
		return nil, nil, false
	}
	oldest, newest, _ := s.ring.Range()
	for _, e := range [2]uint64{from, to} {
		if _, found := s.ring.Get(e); !found {
			writeJSON(w, http.StatusNotFound, wire.NotRetainedBody(e, oldest, newest))
			return nil, nil, false
		}
	}
	fx, _ = s.ring.Get(from)
	tx, _ = s.ring.Get(to)
	return fx, tx, true
}

// handleDelta answers /v1/delta?from=E&to=E: what changed between two
// retained epochs. The body is immutable while both epochs stay
// retained, so it caches under the from epoch (from < to means from
// falls out of the ring first and takes the entry with it) and the ETag
// tracks the to epoch.
func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	x := s.idx.Load()
	if x == nil {
		writeWarming(w)
		return
	}
	fx, tx, ok := s.deltaSpan(w, r, x)
	if !ok {
		return
	}
	etag := wire.ETagFor(tx.Epoch())
	w.Header().Set("ETag", etag)
	if wire.NotModified(r, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	key := fmt.Sprintf("%d:/v1/delta:%d", fx.Epoch(), tx.Epoch())
	resp, hit := s.cache.Do(key, func() Response {
		v, err := tx.Delta(fx, query.DefaultDeltaBlockList)
		if err != nil {
			status, body := wire.Encode(http.StatusBadRequest,
				wire.ErrorBody{Error: err.Error()}, tx.Epoch())
			return Response{Status: status, Body: body}
		}
		status, body := wire.Encode(http.StatusOK, v, tx.Epoch())
		return Response{Status: status, Body: body}
	})
	writeCached(w, resp, hit)
}

// parseLast extracts the optional ?last=N window (0 = whole ring),
// writing the 400 itself on a bad value.
func (s *Server) parseLast(w http.ResponseWriter, r *http.Request, cur *query.Index) (last int, ok bool) {
	raw := r.URL.Query().Get("last")
	if raw == "" {
		return 0, true
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 1 {
		status, body := wire.Encode(http.StatusBadRequest,
			wire.ErrorBody{Error: wire.ErrInvalidLast(raw)}, cur.Epoch())
		writeJSON(w, status, body)
		return 0, false
	}
	return n, true
}

// handleMovement answers /v1/movement?last=N: the per-epoch totals
// series over the retained ring. The body is a pure function of (ring
// contents, last), so it caches under the ring's oldest epoch — any
// eviction that could change the series also drops the entry.
func (s *Server) handleMovement(w http.ResponseWriter, r *http.Request) {
	x := s.idx.Load()
	if x == nil {
		writeWarming(w)
		return
	}
	last, ok := s.parseLast(w, r, x)
	if !ok {
		return
	}
	oldest, newest, _ := s.ring.Range()
	etag := wire.ETagFor(newest)
	w.Header().Set("ETag", etag)
	if wire.NotModified(r, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	key := fmt.Sprintf("%d:/v1/movement:%d:%d", oldest, newest, last)
	resp, hit := s.cache.Do(key, func() Response {
		v, err := query.MergeMovementPartials([]query.MovementPartial{s.ring.Movement(last)})
		if err != nil {
			status, body := wire.Encode(http.StatusInternalServerError,
				wire.ErrorBody{Error: err.Error()}, newest)
			return Response{Status: status, Body: body}
		}
		status, body := wire.Encode(http.StatusOK, v, newest)
		return Response{Status: status, Body: body}
	})
	writeCached(w, resp, hit)
}

// handleClusterDelta serves this shard's mergeable delta partial plus
// its retained ring range, which the router folds into the cluster-wide
// common range. Uncached: the ring range in the body moves with every
// publish even while the span itself stays retained.
func (s *Server) handleClusterDelta(w http.ResponseWriter, r *http.Request) {
	x := s.idx.Load()
	if x == nil {
		writeWarming(w)
		return
	}
	fx, tx, ok := s.deltaSpan(w, r, x)
	if !ok {
		return
	}
	p, err := tx.DeltaPartial(fx, query.DefaultDeltaBlockList)
	if err != nil {
		wire.Respond(w, r, http.StatusBadRequest, wire.ErrorBody{Error: err.Error()}, tx.Epoch())
		return
	}
	oldest, newest, _ := s.ring.Range()
	wire.Respond(w, r, http.StatusOK,
		query.DeltaShardResponse{DeltaPartial: p, RingOldest: oldest, RingNewest: newest}, tx.Epoch())
}

// handleClusterMovement serves this shard's mergeable movement partial
// plus its retained ring range. Uncached for the same reason as
// handleClusterDelta.
func (s *Server) handleClusterMovement(w http.ResponseWriter, r *http.Request) {
	x := s.idx.Load()
	if x == nil {
		writeWarming(w)
		return
	}
	last, ok := s.parseLast(w, r, x)
	if !ok {
		return
	}
	oldest, newest, _ := s.ring.Range()
	wire.Respond(w, r, http.StatusOK,
		query.MovementShardResponse{MovementPartial: s.ring.Movement(last), RingOldest: oldest, RingNewest: newest}, newest)
}

func (s *Server) handleAddr(x *query.Index, r *http.Request) (int, any) {
	a, err := ipv4.ParseAddr(r.PathValue("ip"))
	if err != nil {
		return http.StatusBadRequest, wire.ErrorBody{Error: err.Error()}
	}
	return http.StatusOK, x.Addr(a)
}

func (s *Server) handleBlock(x *query.Index, r *http.Request) (int, any) {
	blk, err := wire.Parse24(r.PathValue("prefix"))
	if err != nil {
		return http.StatusBadRequest, wire.ErrorBody{Error: err.Error()}
	}
	v, ok := x.Block(blk)
	if !ok {
		return http.StatusNotFound, wire.ErrorBody{Error: wire.ErrBlockNotFound(blk)}
	}
	return http.StatusOK, v
}

func (s *Server) handlePrefix(x *query.Index, r *http.Request) (int, any) {
	p, err := ipv4.ParsePrefix(r.PathValue("cidr"))
	if err != nil {
		return http.StatusBadRequest, wire.ErrorBody{Error: err.Error()}
	}
	v, err := x.Prefix(p, wire.DefaultPrefixBlockList)
	if err != nil {
		return http.StatusBadRequest, wire.ErrorBody{Error: err.Error()}
	}
	return http.StatusOK, v
}

func (s *Server) handleAS(x *query.Index, r *http.Request) (int, any) {
	n, err := wire.ParseASN(r.PathValue("asn"))
	if err != nil {
		return http.StatusBadRequest, wire.ErrorBody{Error: err.Error()}
	}
	v, ok := x.AS(bgp.ASN(n))
	if !ok {
		return http.StatusNotFound, wire.ErrorBody{Error: wire.ErrASNotFound(n)}
	}
	return http.StatusOK, v
}

func (s *Server) handleSummary(x *query.Index, r *http.Request) (int, any) {
	return http.StatusOK, x.Summary()
}

// handleClusterSummary serves this shard's mergeable share of the
// dataset summary.
func (s *Server) handleClusterSummary(x *query.Index, r *http.Request) (int, any) {
	return http.StatusOK, x.SummaryPartial()
}

// handleClusterAS serves this shard's mergeable share of an AS
// footprint. Unknown ASNs answer 200 with found=false — absence on one
// shard is not absence in the cluster, so the 404 decision belongs to
// the router after the gather.
func (s *Server) handleClusterAS(x *query.Index, r *http.Request) (int, any) {
	n, err := wire.ParseASN(r.PathValue("asn"))
	if err != nil {
		return http.StatusBadRequest, wire.ErrorBody{Error: err.Error()}
	}
	return http.StatusOK, x.ASPartial(bgp.ASN(n))
}

// handleClusterPrefix serves this shard's mergeable share of a CIDR
// aggregate (over the blocks of the prefix this shard owns).
func (s *Server) handleClusterPrefix(x *query.Index, r *http.Request) (int, any) {
	p, err := ipv4.ParsePrefix(r.PathValue("cidr"))
	if err != nil {
		return http.StatusBadRequest, wire.ErrorBody{Error: err.Error()}
	}
	v, err := x.PrefixPartial(p, wire.DefaultPrefixBlockList)
	if err != nil {
		return http.StatusBadRequest, wire.ErrorBody{Error: err.Error()}
	}
	return http.StatusOK, v
}

// ClusterInfo assembles the /v1/cluster/info body from the server's
// current state. Exposed so the binary RPC server answers Info requests
// with exactly the fields the HTTP endpoint serves.
func (s *Server) ClusterInfo() wire.ClusterInfo {
	body := wire.ClusterInfo{Status: "warming", ShardInfo: s.Shard(), RPCAddr: s.RPCAddr()}
	if x := s.idx.Load(); x != nil {
		body.Status = "ok"
		body.Epoch = x.Epoch()
		body.Blocks = x.NumBlocks()
		if blocks := x.Blocks(); len(blocks) > 0 {
			body.FirstActive = blocks[0].String()
		}
	}
	if oldest, newest, ok := s.ring.Range(); ok {
		body.OldestEpoch, body.NewestEpoch = oldest, newest
	}
	return body
}

// handleClusterInfo answers even while warming (epoch 0), so a router
// can learn the partition before the first publish. Once published, the
// body is precomputed at publish/SetShard/SetRPCAddr time and written
// as-is — byte-identical to the per-request marshal it replaces.
func (s *Server) handleClusterInfo(w http.ResponseWriter, r *http.Request) {
	if hot := s.hot.Load(); hot != nil {
		w.Header()["Content-Type"] = hdrJSON
		w.Write(hot.clusterInfo)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.ClusterInfo())
}

// Health assembles the /v1/healthz body from the server's current
// state, shared with the binary RPC server's Health frames.
func (s *Server) Health() wire.Health {
	hits, misses, size := s.cache.Stats()
	body := wire.Health{
		Status:      "warming",
		CacheHits:   hits,
		CacheMisses: misses,
		CacheSize:   size,
		Partition:   s.shard.Load(),
	}
	if s.logger != nil {
		body.AccessLogDrops = s.logger.Drops()
	}
	if x := s.idx.Load(); x != nil {
		body.Status = "ok"
		body.Epoch = x.Epoch()
		body.Blocks = x.NumBlocks()
		body.DailyLen = x.DailyLen()
	}
	if oldest, newest, ok := s.ring.Range(); ok {
		body.OldestEpoch, body.NewestEpoch = oldest, newest
	}
	return body
}

// handleHealthz reports liveness, the current epoch and cache counters.
// Unlike the lookup endpoints it serves no ETag and no 304: its body
// mutates on every request (cache statistics), so an epoch validator
// would freeze different representations under one tag — pollers read
// the epoch from the body instead.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Health())
}

// statusWriter captures the status code and byte count of a response.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// logged wraps next with structured JSON access logging. The request
// goroutine only records the completion and enqueues it; formatting,
// encoding and the writer syscall all happen on the logger's consumer
// goroutine, so logging adds no lock and no marshal to the hot path.
func (s *Server) logged(next http.Handler) http.Handler {
	if s.logger == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		s.logger.log(logEvent{
			start:  start,
			dur:    time.Since(start),
			method: r.Method,
			path:   r.URL.Path,
			status: sw.status,
			bytes:  sw.bytes,
			cache:  sw.Header().Get("X-Cache"),
		})
	})
}

// FlushAccessLog blocks until every access-log record enqueued before
// the call has been written to the configured writer (a no-op without
// an access log). Shutdown calls it, so a drained server's log is
// complete on disk.
func (s *Server) FlushAccessLog() {
	if s.logger != nil {
		s.logger.Flush()
	}
}

// AccessLogDrops reports how many access-log records the bounded queue
// discarded under overload (0 without an access log).
func (s *Server) AccessLogDrops() uint64 {
	if s.logger != nil {
		return s.logger.Drops()
	}
	return 0
}
