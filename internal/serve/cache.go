package serve

import (
	"runtime"
	"sync"
)

// Response is one cached HTTP response body with its status code.
type Response struct {
	Status int
	Body   []byte
}

// Cache is a bounded LRU response cache with single-flight filling:
// concurrent requests for the same key share one computation instead of
// racing to fill the same entry (the failure mode of glass's
// check-then-update cache under a thundering herd). The index it fronts
// is immutable, so entries never expire — eviction is purely capacity
// driven.
//
// The cache is lock-striped: the key hashes to one of a power-of-two
// number of shards sized from GOMAXPROCS, each with its own mutex, LRU
// list and single-flight table, so parallel readers on different keys
// never contend on one global lock. Within a shard the LRU is an
// intrusive array: entries live in a slab indexed by int32 prev/next
// links (no container/list, no per-entry heap node), and every entry
// whose key carries an "E:" epoch prefix is additionally threaded onto
// a per-epoch list so EvictEpoch walks exactly the entries it removes
// instead of scanning the whole map. Small capacities collapse to a
// single shard, preserving exact global LRU order.
type Cache struct {
	shards   []cacheShard
	mask     uint64
	disabled bool
}

// minShardCap is the smallest per-shard capacity worth striping for:
// below it the shards thrash their tiny LRUs and exact eviction order
// matters more than lock spreading, so the cache collapses to 1 shard.
const minShardCap = 128

// maxShards bounds the stripe count however many cores the host has.
const maxShards = 64

type cacheShard struct {
	mu       sync.Mutex
	cap      int
	entries  []cacheEntry
	free     int32 // free-slot list head (-1 = none), linked via next
	lruHead  int32 // most recently used (-1 = empty)
	lruTail  int32 // least recently used
	items    map[string]int32
	inflight map[string]*flight
	epochs   map[uint64]int32 // epoch → head of its entry list

	hits      uint64
	misses    uint64
	evictWork uint64 // entries touched by EvictEpoch (cost regression pin)
}

// cacheEntry is one slab slot. prev/next thread the LRU order;
// eprev/enext thread the per-epoch eviction list when hasEpoch is set.
type cacheEntry struct {
	key          string
	resp         Response
	epoch        uint64
	hasEpoch     bool
	prev, next   int32
	eprev, enext int32
}

type flight struct {
	done chan struct{}
	resp Response
}

// shardCount picks the stripe count for a capacity: a power of two near
// GOMAXPROCS, shrunk until every shard holds at least minShardCap
// entries (1 shard below that — exact LRU semantics at tiny sizes).
func shardCount(capacity int) int {
	n := runtime.GOMAXPROCS(0)
	s := 1
	for s < n && s < maxShards {
		s <<= 1
	}
	for s > 1 && capacity/s < minShardCap {
		s >>= 1
	}
	return s
}

// NewCache returns a cache holding at most capacity responses.
// capacity <= 0 disables caching (every Do computes).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		return &Cache{disabled: true}
	}
	n := shardCount(capacity)
	c := &Cache{shards: make([]cacheShard, n), mask: uint64(n - 1)}
	base, extra := capacity/n, capacity%n
	for i := range c.shards {
		sh := &c.shards[i]
		sh.cap = base
		if i < extra {
			sh.cap++
		}
		sh.free = -1
		sh.lruHead = -1
		sh.lruTail = -1
		sh.items = make(map[string]int32)
		sh.inflight = make(map[string]*flight)
		sh.epochs = make(map[uint64]int32)
	}
	return c
}

// fnv-1a over the key bytes, inlined so the hit path allocates nothing.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func hashBytes(key []byte) uint64 {
	h := uint64(fnvOffset)
	for _, b := range key {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return h
}

func hashString(key string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	return h
}

// keyEpoch parses the "E:" epoch prefix the serving layer keys cached
// responses under. Keys without the prefix are simply not epoch-indexed
// (EvictEpoch can never match them, exactly as the old prefix scan).
func keyEpoch(key string) (uint64, bool) {
	var e uint64
	i := 0
	for i < len(key) && key[i] >= '0' && key[i] <= '9' {
		e = e*10 + uint64(key[i]-'0')
		i++
	}
	if i == 0 || i >= len(key) || key[i] != ':' {
		return 0, false
	}
	return e, true
}

// Stats reports cumulative cache behaviour. A single-flight wait counts
// as a hit: the caller got the response without computing it.
func (c *Cache) Stats() (hits, misses uint64, size int) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		hits += sh.hits
		misses += sh.misses
		size += len(sh.items)
		sh.mu.Unlock()
	}
	return hits, misses, size
}

// evictWorkTotal reports how many entries EvictEpoch has ever touched —
// the regression pin that eviction cost is proportional to the entries
// evicted, not the cache size.
func (c *Cache) evictWorkTotal() uint64 {
	var n uint64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.evictWork
		sh.mu.Unlock()
	}
	return n
}

// EvictEpoch removes every cached entry keyed under epoch (the "E:"
// key prefix the serving layer uses) and returns how many it dropped.
// Called when an epoch falls out of the retained history ring: its
// entries can never be asked for again, so leaving them to age out of
// the LRU would hold dead response bodies at the expense of live ones.
// Each shard walks its per-epoch list, so the cost is O(entries
// evicted), not O(cache size).
func (c *Cache) EvictEpoch(epoch uint64) int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for idx, ok := sh.epochs[epoch]; ok && idx >= 0; idx, ok = sh.epochs[epoch] {
			sh.evictWork++
			sh.remove(idx)
			n++
		}
		delete(sh.epochs, epoch)
		sh.mu.Unlock()
	}
	return n
}

// Get returns the cached response for key without ever allocating: the
// []byte key is looked up directly (no string conversion on a hit) and
// the LRU touch is three index writes. It does not join in-flight
// fills — a caller that misses proceeds to Do, which re-checks under
// the same lock.
func (c *Cache) Get(key []byte) (Response, bool) {
	if c.disabled {
		return Response{}, false
	}
	sh := &c.shards[0]
	if c.mask != 0 { // single-shard caches skip the stripe hash entirely
		sh = &c.shards[hashBytes(key)&c.mask]
	}
	sh.mu.Lock()
	if idx, ok := sh.items[string(key)]; ok {
		sh.touch(idx)
		sh.hits++
		resp := sh.entries[idx].resp
		sh.mu.Unlock()
		return resp, true
	}
	sh.mu.Unlock()
	return Response{}, false
}

// Put inserts a precomputed response (the publish-time hot-body seed),
// counting neither a hit nor a miss. A racing fill for the same key
// simply overwrites with identical bytes.
func (c *Cache) Put(key string, resp Response) {
	if c.disabled {
		return
	}
	sh := &c.shards[0]
	if c.mask != 0 {
		sh = &c.shards[hashString(key)&c.mask]
	}
	sh.mu.Lock()
	sh.insert(key, resp)
	sh.mu.Unlock()
}

// Do returns the response for key, computing it with fill on a miss.
// Exactly one caller computes a missing key at a time; the others block
// until the computation finishes and share its result. hit reports
// whether the caller avoided running fill itself.
func (c *Cache) Do(key string, fill func() Response) (resp Response, hit bool) {
	if c.disabled {
		return fill(), false
	}
	sh := &c.shards[0]
	if c.mask != 0 {
		sh = &c.shards[hashString(key)&c.mask]
	}
	sh.mu.Lock()
	if idx, ok := sh.items[key]; ok {
		sh.touch(idx)
		sh.hits++
		resp = sh.entries[idx].resp
		sh.mu.Unlock()
		return resp, true
	}
	if fl, ok := sh.inflight[key]; ok {
		sh.hits++
		sh.mu.Unlock()
		<-fl.done
		return fl.resp, true
	}
	fl := &flight{done: make(chan struct{})}
	sh.inflight[key] = fl
	sh.misses++
	sh.mu.Unlock()

	// A panicking fill must still release the flight: otherwise every
	// later request for this key would block on fl.done forever. The
	// panic propagates after cleanup; waiters get a 500 and the entry
	// is not cached, so the next request retries.
	filled := false
	defer func() {
		if !filled {
			fl.resp = Response{
				Status: 500,
				Body:   []byte(`{"error":"internal error"}` + "\n"),
			}
		}
		sh.mu.Lock()
		delete(sh.inflight, key)
		if filled {
			sh.insert(key, fl.resp)
		}
		sh.mu.Unlock()
		close(fl.done)
	}()
	fl.resp = fill()
	filled = true
	return fl.resp, false
}

// --- shard internals (all called under sh.mu) -------------------------

// insert adds or refreshes key → resp, evicting the LRU entry when the
// shard is full.
func (sh *cacheShard) insert(key string, resp Response) {
	if idx, ok := sh.items[key]; ok {
		sh.entries[idx].resp = resp
		sh.touch(idx)
		return
	}
	if len(sh.items) >= sh.cap {
		sh.remove(sh.lruTail)
	}
	idx := sh.alloc()
	e := &sh.entries[idx]
	e.key = key
	e.resp = resp
	e.epoch, e.hasEpoch = keyEpoch(key)
	// Push to LRU front.
	e.prev = -1
	e.next = sh.lruHead
	if sh.lruHead >= 0 {
		sh.entries[sh.lruHead].prev = idx
	}
	sh.lruHead = idx
	if sh.lruTail < 0 {
		sh.lruTail = idx
	}
	// Thread onto the epoch list.
	e.eprev = -1
	e.enext = -1
	if e.hasEpoch {
		if head, ok := sh.epochs[e.epoch]; ok {
			e.enext = head
			sh.entries[head].eprev = idx
		}
		sh.epochs[e.epoch] = idx
	}
	sh.items[key] = idx
}

// alloc returns a free slab slot, growing the slab up to capacity.
func (sh *cacheShard) alloc() int32 {
	if sh.free >= 0 {
		idx := sh.free
		sh.free = sh.entries[idx].next
		return idx
	}
	sh.entries = append(sh.entries, cacheEntry{})
	return int32(len(sh.entries) - 1)
}

// touch moves idx to the LRU front.
func (sh *cacheShard) touch(idx int32) {
	if sh.lruHead == idx {
		return
	}
	e := &sh.entries[idx]
	// Unlink.
	sh.entries[e.prev].next = e.next
	if e.next >= 0 {
		sh.entries[e.next].prev = e.prev
	} else {
		sh.lruTail = e.prev
	}
	// Relink at front.
	e.prev = -1
	e.next = sh.lruHead
	sh.entries[sh.lruHead].prev = idx
	sh.lruHead = idx
}

// remove unlinks idx from the LRU, the epoch list and the key map, and
// returns its slot to the free list.
func (sh *cacheShard) remove(idx int32) {
	e := &sh.entries[idx]
	if e.prev >= 0 {
		sh.entries[e.prev].next = e.next
	} else {
		sh.lruHead = e.next
	}
	if e.next >= 0 {
		sh.entries[e.next].prev = e.prev
	} else {
		sh.lruTail = e.prev
	}
	if e.hasEpoch {
		if e.eprev >= 0 {
			sh.entries[e.eprev].enext = e.enext
		} else if e.enext >= 0 {
			sh.epochs[e.epoch] = e.enext
		} else {
			delete(sh.epochs, e.epoch)
		}
		if e.enext >= 0 {
			sh.entries[e.enext].eprev = e.eprev
		}
	}
	delete(sh.items, e.key)
	*e = cacheEntry{next: sh.free} // release key/body for GC
	sh.free = idx
}
