package serve

import (
	"container/list"
	"strconv"
	"strings"
	"sync"
)

// Response is one cached HTTP response body with its status code.
type Response struct {
	Status int
	Body   []byte
}

// Cache is a bounded LRU response cache with single-flight filling:
// concurrent requests for the same key share one computation instead of
// racing to fill the same entry (the failure mode of glass's
// check-then-update cache under a thundering herd). The index it fronts
// is immutable, so entries never expire — eviction is purely capacity
// driven.
type Cache struct {
	mu       sync.Mutex
	cap      int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	inflight map[string]*flight
	hits     uint64
	misses   uint64
}

type lruEntry struct {
	key  string
	resp Response
}

type flight struct {
	done chan struct{}
	resp Response
}

// NewCache returns a cache holding at most capacity responses.
// capacity <= 0 disables caching (every Do computes).
func NewCache(capacity int) *Cache {
	return &Cache{
		cap:      capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// Stats reports cumulative cache behaviour. A single-flight wait counts
// as a hit: the caller got the response without computing it.
func (c *Cache) Stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}

// EvictEpoch removes every cached entry keyed under epoch (the "E:"
// key prefix the serving layer uses) and returns how many it dropped.
// Called when an epoch falls out of the retained history ring: its
// entries can never be asked for again, so leaving them to age out of
// the LRU would hold dead response bodies at the expense of live ones.
func (c *Cache) EvictEpoch(epoch uint64) int {
	prefix := strconv.FormatUint(epoch, 10) + ":"
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for key, el := range c.items {
		if strings.HasPrefix(key, prefix) {
			c.ll.Remove(el)
			delete(c.items, key)
			n++
		}
	}
	return n
}

// Do returns the response for key, computing it with fill on a miss.
// Exactly one caller computes a missing key at a time; the others block
// until the computation finishes and share its result. hit reports
// whether the caller avoided running fill itself.
func (c *Cache) Do(key string, fill func() Response) (resp Response, hit bool) {
	if c.cap <= 0 {
		return fill(), false
	}
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		resp = el.Value.(*lruEntry).resp
		c.mu.Unlock()
		return resp, true
	}
	if fl, ok := c.inflight[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-fl.done
		return fl.resp, true
	}
	fl := &flight{done: make(chan struct{})}
	c.inflight[key] = fl
	c.misses++
	c.mu.Unlock()

	// A panicking fill must still release the flight: otherwise every
	// later request for this key would block on fl.done forever. The
	// panic propagates after cleanup; waiters get a 500 and the entry
	// is not cached, so the next request retries.
	filled := false
	defer func() {
		if !filled {
			fl.resp = Response{
				Status: 500,
				Body:   []byte(`{"error":"internal error"}` + "\n"),
			}
		}
		c.mu.Lock()
		delete(c.inflight, key)
		if filled {
			el := c.ll.PushFront(&lruEntry{key: key, resp: fl.resp})
			c.items[key] = el
			for c.ll.Len() > c.cap {
				oldest := c.ll.Back()
				c.ll.Remove(oldest)
				delete(c.items, oldest.Value.(*lruEntry).key)
			}
		}
		c.mu.Unlock()
		close(fl.done)
	}()
	fl.resp = fill()
	filled = true
	return fl.resp, false
}
