package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ipscope/internal/analysis"
	"ipscope/internal/core"
	"ipscope/internal/ipv4"
	"ipscope/internal/query"
	"ipscope/internal/sim"
	"ipscope/internal/synthnet"
)

var (
	fixtureOnce sync.Once
	fixtureCtx  *analysis.Context
	fixtureIdx  *query.Index
)

// fixture builds one tiny world + simulation shared by the serve tests,
// exposing both the batch-analysis view and the compiled index over the
// same dataset.
func fixture(t testing.TB) (*analysis.Context, *query.Index) {
	t.Helper()
	fixtureOnce.Do(func() {
		w := synthnet.Generate(synthnet.TinyConfig())
		res := sim.Run(w, sim.TinyConfig())
		fixtureCtx = analysis.NewContextFromData(w, &res.Data)
		idx, err := query.Build(&res.Data, query.Options{})
		if err != nil {
			panic(err)
		}
		fixtureIdx = idx
	})
	return fixtureCtx, fixtureIdx
}

func get(t *testing.T, h http.Handler, path string, out any) (status int, cache string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("GET %s: bad JSON: %v\n%s", path, err, rec.Body.String())
		}
	}
	return rec.Code, rec.Header().Get("X-Cache")
}

// TestBlockFieldIdenticalToReport is the cross-check the acceptance
// criteria demand: /v1/block fields must equal the numbers the batch
// report computes from the same dataset (core.FillingDegree/STU and the
// BlockFeatures the demographics figures consume).
func TestBlockFieldIdenticalToReport(t *testing.T) {
	ctx, idx := fixture(t)
	h := New(idx, Config{}).Handler()

	features := map[ipv4.Block]core.BlockFeatures{}
	for _, f := range ctx.BlockFeatures() {
		features[f.Block] = f
	}

	checked := 0
	for i, blk := range idx.Blocks() {
		if i%7 != 0 { // sample the block list, keep the test fast
			continue
		}
		var v query.BlockView
		status, _ := get(t, h, "/v1/block/"+blk.String(), &v)
		if status != http.StatusOK {
			t.Fatalf("GET block %v: status %d", blk, status)
		}
		if want := core.FillingDegree(ctx.Obs.Daily, blk); v.FD != want {
			t.Errorf("%v: fd = %d, report says %d", blk, v.FD, want)
		}
		if want := core.STU(ctx.Obs.Daily, blk); v.STU != want {
			t.Errorf("%v: stu = %v, report says %v", blk, v.STU, want)
		}
		f, ok := features[blk]
		if !ok {
			t.Errorf("%v: not in report's BlockFeatures", blk)
			continue
		}
		if v.TotalHits != f.Traffic {
			t.Errorf("%v: totalHits = %v, report says %v", blk, v.TotalHits, f.Traffic)
		}
		if as := ctx.ASOf(blk); uint32(as) != v.AS {
			t.Errorf("%v: as = %d, report says %d", blk, v.AS, as)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no blocks checked")
	}
}

// TestSummaryFieldIdenticalToReport cross-checks /v1/summary against
// the batch report's Table 1, capture–recapture estimate and Figure 4
// churn numbers over the same dataset.
func TestSummaryFieldIdenticalToReport(t *testing.T) {
	ctx, idx := fixture(t)
	h := New(idx, Config{}).Handler()

	var s query.Summary
	if status, _ := get(t, h, "/v1/summary", &s); status != http.StatusOK {
		t.Fatalf("summary status %d", status)
	}

	tab1 := analysis.Table1(ctx)
	if s.Daily != tab1.Daily {
		t.Errorf("daily summary = %+v, report says %+v", s.Daily, tab1.Daily)
	}
	if s.Weekly != tab1.Weekly {
		t.Errorf("weekly summary = %+v, report says %+v", s.Weekly, tab1.Weekly)
	}

	rec := analysis.RecaptureEstimate(ctx)
	if rec.Err != nil {
		t.Fatalf("fixture recapture: %v", rec.Err)
	}
	if !s.Recapture.Valid {
		t.Fatal("recapture invalid")
	}
	e := rec.Est
	if s.Recapture.N1 != e.N1 || s.Recapture.N2 != e.N2 || s.Recapture.Both != e.Both {
		t.Errorf("recapture inputs = %+v, report says n1=%d n2=%d m=%d", s.Recapture, e.N1, e.N2, e.Both)
	}
	if s.Recapture.Chapman != e.Chapman || s.Recapture.LP != e.LincolnPetersen ||
		s.Recapture.SE != e.SE || s.Recapture.CI95Lo != e.CI95Lo || s.Recapture.CI95Hi != e.CI95Hi {
		t.Errorf("recapture estimate = %+v, report says %+v", s.Recapture, e)
	}

	fig4 := analysis.Figure4(ctx)
	if s.Churn.MeanDailyUpEvents != fig4.MeanUp {
		t.Errorf("meanDailyUpEvents = %v, report says %v", s.Churn.MeanDailyUpEvents, fig4.MeanUp)
	}
	if s.Churn.YearChurnFrac != fig4.YearChurnFrac {
		t.Errorf("yearChurnFrac = %v, report says %v", s.Churn.YearChurnFrac, fig4.YearChurnFrac)
	}
}

func TestEndpoints(t *testing.T) {
	_, idx := fixture(t)
	h := New(idx, Config{}).Handler()
	blk := idx.Blocks()[0]

	t.Run("addr", func(t *testing.T) {
		var v query.AddrView
		status, _ := get(t, h, "/v1/addr/"+blk.Addr(0).String(), &v)
		if status != http.StatusOK {
			t.Fatalf("status %d", status)
		}
		if v.Block != blk.String() {
			t.Errorf("block = %q, want %q", v.Block, blk.String())
		}
		if status, _ := get(t, h, "/v1/addr/not-an-ip", nil); status != http.StatusBadRequest {
			t.Errorf("bad ip: status %d", status)
		}
	})

	t.Run("block", func(t *testing.T) {
		var a, b query.BlockView
		if status, _ := get(t, h, "/v1/block/"+blk.String(), &a); status != http.StatusOK {
			t.Fatalf("status %d", status)
		}
		// Bare in-block address resolves to the same /24.
		if status, _ := get(t, h, "/v1/block/"+blk.Addr(9).String(), &b); status != http.StatusOK {
			t.Fatalf("status %d", status)
		}
		if a != b {
			t.Error("CIDR and bare-address block lookups differ")
		}
		if status, _ := get(t, h, "/v1/block/10.0.0.0/16", nil); status != http.StatusBadRequest {
			t.Errorf("non-/24: status %d", status)
		}
		if status, _ := get(t, h, "/v1/block/0.0.0.0/24", nil); status != http.StatusNotFound {
			t.Errorf("inactive block: status %d", status)
		}
	})

	t.Run("prefix", func(t *testing.T) {
		var v query.PrefixView
		p := ipv4.MustNewPrefix(blk.First(), 20)
		if status, _ := get(t, h, "/v1/prefix/"+p.String(), &v); status != http.StatusOK {
			t.Fatalf("status %d", status)
		}
		if v.ActiveBlocks == 0 {
			t.Error("no active blocks in covering prefix")
		}
		if status, _ := get(t, h, "/v1/prefix/0.0.0.0/0", nil); status != http.StatusBadRequest {
			t.Errorf("too broad: status %d", status)
		}
	})

	t.Run("as", func(t *testing.T) {
		bv, _ := idx.Block(blk)
		var v query.ASView
		if status, _ := get(t, h, fmt.Sprintf("/v1/as/AS%d", bv.AS), &v); status != http.StatusOK {
			t.Fatalf("status %d", status)
		}
		var v2 query.ASView
		if status, _ := get(t, h, fmt.Sprintf("/v1/as/%d", bv.AS), &v2); status != http.StatusOK {
			t.Fatalf("bare ASN: status %d", status)
		}
		if v.ActiveBlocks != v2.ActiveBlocks {
			t.Error("AS-prefixed and bare ASN lookups differ")
		}
		if status, _ := get(t, h, "/v1/as/AS99999999", nil); status != http.StatusNotFound {
			t.Errorf("unknown AS: status %d", status)
		}
		if status, _ := get(t, h, "/v1/as/banana", nil); status != http.StatusBadRequest {
			t.Errorf("bad ASN: status %d", status)
		}
	})

	t.Run("healthz", func(t *testing.T) {
		var v map[string]any
		if status, _ := get(t, h, "/v1/healthz", &v); status != http.StatusOK {
			t.Fatalf("status %d", status)
		}
		if v["status"] != "ok" {
			t.Errorf("healthz = %v", v)
		}
	})
}

func TestCacheHeadersAndAccessLog(t *testing.T) {
	_, idx := fixture(t)
	var log bytes.Buffer
	s := New(idx, Config{AccessLog: &log})
	h := s.Handler()
	path := "/v1/block/" + idx.Blocks()[0].String()

	if _, cache := get(t, h, path, nil); cache != "miss" {
		t.Errorf("first request: cache %q, want miss", cache)
	}
	if _, cache := get(t, h, path, nil); cache != "hit" {
		t.Errorf("second request: cache %q, want hit", cache)
	}

	// The log is written asynchronously; flush before reading it.
	s.FlushAccessLog()
	lines := strings.Split(strings.TrimSpace(log.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("access log has %d lines, want 2:\n%s", len(lines), log.String())
	}
	for i, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if rec["path"] != path || rec["status"] != float64(200) {
			t.Errorf("line %d: %v", i, rec)
		}
	}
}

// applierOver replays the fixture dataset into a fresh query.Applier,
// giving tests a source of epoch-advancing snapshots over the same
// data the static fixture index serves.
func applierOver(t testing.TB) *query.Applier {
	t.Helper()
	ctx, _ := fixture(t)
	a := query.NewApplier(query.Options{})
	if err := ctx.Obs.WriteTo(a); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestETagAndConditionalGet(t *testing.T) {
	_, idx := fixture(t)
	h := New(idx, Config{}).Handler()
	path := "/v1/block/" + idx.Blocks()[0].String()

	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	etag := rec.Header().Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on response")
	}

	for _, inm := range []string{etag, "\"other\", " + etag, "*"} {
		req = httptest.NewRequest("GET", path, nil)
		req.Header.Set("If-None-Match", inm)
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusNotModified {
			t.Errorf("If-None-Match %q: status %d, want 304", inm, rec.Code)
		}
		if rec.Body.Len() != 0 {
			t.Errorf("If-None-Match %q: 304 with a body", inm)
		}
	}

	req = httptest.NewRequest("GET", path, nil)
	req.Header.Set("If-None-Match", `"ips-e999"`)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Errorf("stale If-None-Match: status %d, want 200", rec.Code)
	}

	// Healthz must NOT honour conditional GETs: its body (cache
	// counters) changes per request, so an epoch validator would serve
	// stale representations under one tag.
	req = httptest.NewRequest("GET", "/v1/healthz", nil)
	req.Header.Set("If-None-Match", etag)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Errorf("healthz conditional GET: status %d, want 200", rec.Code)
	}
	if rec.Header().Get("ETag") != "" {
		t.Error("healthz serves an ETag over a per-request-mutable body")
	}
}

// TestEpochInEveryBody asserts the satellite contract: every cached
// response body (success and error alike) and healthz carry the
// snapshot epoch.
func TestEpochInEveryBody(t *testing.T) {
	_, idx := fixture(t)
	h := New(idx, Config{}).Handler()
	paths := []string{
		"/v1/block/" + idx.Blocks()[0].String(),
		"/v1/addr/" + idx.Blocks()[0].Addr(0).String(),
		"/v1/prefix/" + ipv4.MustNewPrefix(idx.Blocks()[0].First(), 20).String(),
		fmt.Sprintf("/v1/as/AS%d", func() uint32 { v, _ := idx.Block(idx.Blocks()[0]); return v.AS }()),
		"/v1/summary",
		"/v1/healthz",
		"/v1/addr/not-an-ip",   // 400 error body
		"/v1/block/0.0.0.0/24", // 404 error body
		"/v1/as/AS99999999",    // 404 error body
	}
	for _, path := range paths {
		var body map[string]any
		status, _ := get(t, h, path, nil)
		req := httptest.NewRequest("GET", path, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("%s (status %d): bad JSON: %v", path, status, err)
		}
		if body["epoch"] != float64(idx.Epoch()) {
			t.Errorf("%s: epoch = %v, want %d", path, body["epoch"], idx.Epoch())
		}
	}
}

func TestWarmingServer(t *testing.T) {
	s := New(nil, Config{})
	h := s.Handler()
	if status, _ := get(t, h, "/v1/summary", nil); status != http.StatusServiceUnavailable {
		t.Errorf("warming lookup: status %d, want 503", status)
	}
	var hb map[string]any
	if status, _ := get(t, h, "/v1/healthz", &hb); status != http.StatusOK {
		t.Errorf("warming healthz: status %d, want 200", status)
	}
	if hb["status"] != "warming" || hb["epoch"] != float64(0) {
		t.Errorf("warming healthz body: %v", hb)
	}

	_, idx := fixture(t)
	s.Publish(idx)
	if status, _ := get(t, h, "/v1/summary", nil); status != http.StatusOK {
		t.Errorf("post-publish lookup: status %d, want 200", status)
	}
}

// TestPublishInvalidatesCache pins the epoch-keyed cache: a swap makes
// the very next request a miss (stale entries are stranded under the
// old epoch key) and the new body carries the new epoch and ETag.
func TestPublishInvalidatesCache(t *testing.T) {
	a := applierOver(t)
	s1, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	srv := New(s1, Config{})
	h := srv.Handler()
	path := "/v1/block/" + s1.Blocks()[0].String()

	if _, cache := get(t, h, path, nil); cache != "miss" {
		t.Fatalf("first request: cache %q", cache)
	}
	if _, cache := get(t, h, path, nil); cache != "hit" {
		t.Fatalf("second request: cache %q", cache)
	}
	srv.Publish(s2)
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if c := rec.Header().Get("X-Cache"); c != "miss" {
		t.Errorf("post-swap request: cache %q, want miss", c)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["epoch"] != float64(s2.Epoch()) {
		t.Errorf("post-swap epoch = %v, want %d", body["epoch"], s2.Epoch())
	}
	if etag := rec.Header().Get("ETag"); !strings.Contains(etag, fmt.Sprint(s2.Epoch())) {
		t.Errorf("post-swap ETag %q does not carry epoch %d", etag, s2.Epoch())
	}
}

// TestServeAvailableDuringSwaps is the acceptance criterion: under
// concurrent load over real sockets, at least 3 snapshot swaps must
// produce zero 5xx responses and zero connection errors, and once a
// swap lands, responses carry the new epoch.
func TestServeAvailableDuringSwaps(t *testing.T) {
	a := applierOver(t)
	first, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	srv := New(first, Config{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	base := "http://" + addr.String()
	blocks := first.Blocks()

	var stop atomic.Bool
	var requests, fiveHundreds atomic.Int64
	errCh := make(chan error, 64)
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			for i := 0; !stop.Load(); i++ {
				path := "/v1/block/" + blocks[(c*31+i)%len(blocks)].String()
				if i%7 == 0 {
					path = "/v1/summary"
				}
				resp, err := client.Get(base + path)
				if err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				requests.Add(1)
				if resp.StatusCode >= 500 {
					fiveHundreds.Add(1)
				}
			}
		}(c)
	}

	// Publish >= 3 swaps while the load runs.
	var last *query.Index
	for i := 0; i < 3; i++ {
		time.Sleep(30 * time.Millisecond)
		snap, err := a.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		srv.Publish(snap)
		last = snap
	}
	time.Sleep(30 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("client error during swaps: %v", err)
	}
	if n := fiveHundreds.Load(); n > 0 {
		t.Errorf("%d 5xx responses across swaps (of %d requests)", n, requests.Load())
	}
	if requests.Load() == 0 {
		t.Fatal("no requests completed")
	}

	// Post-swap: responses carry the final epoch.
	resp, err := http.Get(base + "/v1/summary")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["epoch"] != float64(last.Epoch()) {
		t.Errorf("post-swap epoch = %v, want %d", body["epoch"], last.Epoch())
	}
}

func TestServeGracefulShutdown(t *testing.T) {
	_, idx := fixture(t)
	s := New(idx, Config{})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + addr.String() + "/v1/summary"
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get(url); err == nil {
		t.Fatal("server still accepting after shutdown")
	}
}
