package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"ipscope/internal/query"
	"ipscope/internal/serve/wire"
)

// rawGet performs a GET and returns the raw response for byte-level
// comparisons (the epoch-addressed cache contract is byte identity).
func rawGet(t *testing.T, h http.Handler, path string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// snapshots takes n epoch-advancing snapshots from an applier over the
// fixture dataset.
func snapshots(t *testing.T, n int) []*query.Index {
	t.Helper()
	a := applierOver(t)
	out := make([]*query.Index, n)
	for i := range out {
		s, err := a.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		out[i] = s
	}
	return out
}

// TestEpochQueryEdges pins the ?epoch= contract at the ring edges: the
// oldest retained epoch answers the very bytes cached when it was
// current (a cache hit, not a recomputation), the epoch just evicted
// and a future epoch answer the documented 404 range body, and garbage
// answers 400.
func TestEpochQueryEdges(t *testing.T) {
	snaps := snapshots(t, 5)
	srv := New(nil, Config{RetainEpochs: 3})
	h := srv.Handler()
	for _, s := range snaps[:3] {
		srv.Publish(s)
	}
	path := "/v1/block/" + snaps[0].Blocks()[0].String()

	// Cache the response while epoch 3 is current.
	live := rawGet(t, h, path, nil)
	if live.Code != http.StatusOK || live.Header().Get("X-Cache") != "miss" {
		t.Fatalf("live request: %d %s", live.Code, live.Header().Get("X-Cache"))
	}
	srv.Publish(snaps[3])
	srv.Publish(snaps[4]) // ring now retains epochs 3..5

	oldest := snaps[2].Epoch()
	asOf := rawGet(t, h, fmt.Sprintf("%s?epoch=%d", path, oldest), nil)
	if asOf.Code != http.StatusOK {
		t.Fatalf("as-of oldest retained: status %d", asOf.Code)
	}
	if asOf.Header().Get("X-Cache") != "hit" {
		t.Errorf("as-of oldest retained: cache %q, want hit (the entry cached when epoch %d was live)",
			asOf.Header().Get("X-Cache"), oldest)
	}
	if !bytes.Equal(asOf.Body.Bytes(), live.Body.Bytes()) {
		t.Errorf("as-of body differs from the live response at that epoch:\n%s\n%s", asOf.Body, live.Body)
	}
	if etag := asOf.Header().Get("ETag"); etag != wire.ETagFor(oldest) {
		t.Errorf("as-of ETag = %q, want %q", etag, wire.ETagFor(oldest))
	}
	// Conditional as-of GET validates against the asked epoch's tag.
	if rec := rawGet(t, h, fmt.Sprintf("%s?epoch=%d", path, oldest),
		map[string]string{"If-None-Match": wire.ETagFor(oldest)}); rec.Code != http.StatusNotModified {
		t.Errorf("as-of conditional GET: status %d, want 304", rec.Code)
	}

	// The epoch just evicted and a future epoch 404 with the range body.
	newest := snaps[4].Epoch()
	for _, e := range []uint64{snaps[1].Epoch(), newest + 37} {
		rec := rawGet(t, h, fmt.Sprintf("%s?epoch=%d", path, e), nil)
		if rec.Code != http.StatusNotFound {
			t.Fatalf("epoch %d: status %d, want 404", e, rec.Code)
		}
		if want := wire.NotRetainedBody(e, oldest, newest); !bytes.Equal(rec.Body.Bytes(), want) {
			t.Errorf("epoch %d body:\n got %s\nwant %s", e, rec.Body, want)
		}
	}

	// Garbage is a 400 with the live epoch spliced.
	rec := rawGet(t, h, path+"?epoch=banana", nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("garbage epoch: status %d, want 400", rec.Code)
	}
	_, want := wire.Encode(http.StatusBadRequest,
		wire.ErrorBody{Error: wire.ErrInvalidEpoch("banana")}, newest)
	if !bytes.Equal(rec.Body.Bytes(), want) {
		t.Errorf("garbage epoch body:\n got %s\nwant %s", rec.Body, want)
	}
}

// TestPublishEvictsHistoryCache is the regression for the stranded-entry
// wart: entries keyed by epochs the ring evicts are dropped eagerly, so
// the cache footprint is bounded by the retained window no matter how
// many swaps occur.
func TestPublishEvictsHistoryCache(t *testing.T) {
	snaps := snapshots(t, 8)
	srv := New(nil, Config{RetainEpochs: 2})
	h := srv.Handler()
	paths := []string{
		"/v1/block/" + snaps[0].Blocks()[0].String(),
		"/v1/summary",
		"/v1/movement",
	}
	for _, s := range snaps {
		srv.Publish(s)
		for _, p := range paths {
			if rec := rawGet(t, h, p, nil); rec.Code != http.StatusOK {
				t.Fatalf("epoch %d %s: status %d", s.Epoch(), p, rec.Code)
			}
		}
	}
	// Bound: per retained epoch one entry per point path, plus the
	// current ring's movement entry. Without eviction the cache would
	// hold one entry per path per publish (24 here).
	_, _, size := srv.CacheStats()
	if max := 2*len(paths) + 1; size > max {
		t.Errorf("cache holds %d entries after %d publishes, want <= %d (evictions missing)",
			size, len(snaps), max)
	}
	// The retained window still answers from cache.
	oldest := snaps[6].Epoch()
	if rec := rawGet(t, h, fmt.Sprintf("%s?epoch=%d", paths[0], oldest), nil); rec.Code != http.StatusOK ||
		rec.Header().Get("X-Cache") != "hit" {
		t.Errorf("oldest retained epoch: %d %s", rec.Code, rec.Header().Get("X-Cache"))
	}
}

// TestDeltaEndpoint pins the single-node /v1/delta contract: the body is
// the wire encoding of the query-layer Delta, cached and ETagged by the
// span's epochs, with the documented 400/404 rejections.
func TestDeltaEndpoint(t *testing.T) {
	snaps := snapshots(t, 4)
	srv := New(nil, Config{RetainEpochs: 3})
	h := srv.Handler()
	for _, s := range snaps[:3] {
		srv.Publish(s)
	}
	from, to := snaps[0], snaps[2]
	path := fmt.Sprintf("/v1/delta?from=%d&to=%d", from.Epoch(), to.Epoch())

	rec := rawGet(t, h, path, nil)
	if rec.Code != http.StatusOK || rec.Header().Get("X-Cache") != "miss" {
		t.Fatalf("delta: %d %s", rec.Code, rec.Header().Get("X-Cache"))
	}
	v, err := to.Delta(from, query.DefaultDeltaBlockList)
	if err != nil {
		t.Fatal(err)
	}
	_, want := wire.Encode(http.StatusOK, v, to.Epoch())
	if !bytes.Equal(rec.Body.Bytes(), want) {
		t.Errorf("delta body:\n got %s\nwant %s", rec.Body, want)
	}
	if etag := rec.Header().Get("ETag"); etag != wire.ETagFor(to.Epoch()) {
		t.Errorf("delta ETag = %q", etag)
	}
	if rec := rawGet(t, h, path, nil); rec.Header().Get("X-Cache") != "hit" {
		t.Errorf("second delta request: cache %q, want hit", rec.Header().Get("X-Cache"))
	}
	if rec := rawGet(t, h, path, map[string]string{"If-None-Match": wire.ETagFor(to.Epoch())}); rec.Code != http.StatusNotModified {
		t.Errorf("conditional delta GET: status %d, want 304", rec.Code)
	}

	// 400s: inverted/degenerate span, garbage, missing parameter — all
	// the shared ErrDeltaParams text.
	for _, q := range []string{
		fmt.Sprintf("from=%d&to=%d", to.Epoch(), from.Epoch()),
		fmt.Sprintf("from=%d&to=%d", from.Epoch(), from.Epoch()),
		"from=banana&to=2",
		fmt.Sprintf("from=%d", from.Epoch()),
	} {
		if rec := rawGet(t, h, "/v1/delta?"+q, nil); rec.Code != http.StatusBadRequest {
			t.Errorf("delta?%s: status %d, want 400", q, rec.Code)
		}
	}

	// Evicting the from epoch turns the span into the documented 404.
	srv.Publish(snaps[3]) // ring 2..4, epoch 1 evicted
	rec = rawGet(t, h, path, nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("evicted from-epoch: status %d, want 404", rec.Code)
	}
	if want := wire.NotRetainedBody(from.Epoch(), snaps[1].Epoch(), snaps[3].Epoch()); !bytes.Equal(rec.Body.Bytes(), want) {
		t.Errorf("evicted from-epoch body:\n got %s\nwant %s", rec.Body, want)
	}
}

// TestMovementEndpoint pins the single-node /v1/movement contract.
func TestMovementEndpoint(t *testing.T) {
	snaps := snapshots(t, 3)
	srv := New(nil, Config{RetainEpochs: 3})
	h := srv.Handler()
	for _, s := range snaps {
		srv.Publish(s)
	}
	newest := snaps[2].Epoch()

	rec := rawGet(t, h, "/v1/movement", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("movement: status %d", rec.Code)
	}
	v, err := query.MergeMovementPartials([]query.MovementPartial{srv.History().Movement(0)})
	if err != nil {
		t.Fatal(err)
	}
	_, want := wire.Encode(http.StatusOK, v, newest)
	if !bytes.Equal(rec.Body.Bytes(), want) {
		t.Errorf("movement body:\n got %s\nwant %s", rec.Body, want)
	}
	if len(v.Series) != 3 {
		t.Errorf("series has %d entries, want 3", len(v.Series))
	}
	if etag := rec.Header().Get("ETag"); etag != wire.ETagFor(newest) {
		t.Errorf("movement ETag = %q", etag)
	}

	var windowed query.MovementView
	if status, _ := get(t, h, "/v1/movement?last=2", &windowed); status != http.StatusOK {
		t.Fatalf("movement?last=2: status %d", status)
	}
	if len(windowed.Series) != 2 || windowed.Series[0].Epoch != snaps[1].Epoch() {
		t.Errorf("windowed series = %+v", windowed.Series)
	}

	for _, q := range []string{"last=0", "last=-1", "last=banana"} {
		if rec := rawGet(t, h, "/v1/movement?"+q, nil); rec.Code != http.StatusBadRequest {
			t.Errorf("movement?%s: status %d, want 400", q, rec.Code)
		}
	}
}

// TestHistoryWarmingAndHealth: the history endpoints answer the warming
// 503 before the first publish, and healthz + cluster/info report the
// retained range once snapshots land.
func TestHistoryWarmingAndHealth(t *testing.T) {
	srv := New(nil, Config{RetainEpochs: 3})
	h := srv.Handler()
	for _, p := range []string{"/v1/delta?from=1&to=2", "/v1/movement", "/v1/summary?epoch=1"} {
		if rec := rawGet(t, h, p, nil); rec.Code != http.StatusServiceUnavailable {
			t.Errorf("warming %s: status %d, want 503", p, rec.Code)
		}
	}

	snaps := snapshots(t, 4)
	for _, s := range snaps {
		srv.Publish(s)
	}
	oldest, newest := snaps[1].Epoch(), snaps[3].Epoch()
	var hb map[string]any
	if status, _ := get(t, h, "/v1/healthz", &hb); status != http.StatusOK {
		t.Fatalf("healthz status %d", status)
	}
	if hb["oldestEpoch"] != float64(oldest) || hb["newestEpoch"] != float64(newest) {
		t.Errorf("healthz range = %v..%v, want %d..%d", hb["oldestEpoch"], hb["newestEpoch"], oldest, newest)
	}
	var ci map[string]any
	if status, _ := get(t, h, "/v1/cluster/info", &ci); status != http.StatusOK {
		t.Fatalf("cluster/info status %d", status)
	}
	if ci["oldestEpoch"] != float64(oldest) || ci["newestEpoch"] != float64(newest) {
		t.Errorf("cluster/info range = %v..%v, want %d..%d", ci["oldestEpoch"], ci["newestEpoch"], oldest, newest)
	}
}
