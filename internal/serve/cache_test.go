package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	fill := func(v string) func() Response {
		return func() Response { return Response{Status: 200, Body: []byte(v)} }
	}
	c.Do("a", fill("A"))
	c.Do("b", fill("B"))
	if _, hit := c.Do("a", fill("A2")); !hit {
		t.Fatal("a should be cached")
	}
	// Inserting c evicts b (a was just touched).
	c.Do("c", fill("C"))
	if _, hit := c.Do("b", fill("B2")); hit {
		t.Fatal("b should have been evicted")
	}
	// Reinserting b evicted a (the then-oldest entry); c stays.
	if resp, hit := c.Do("c", fill("C2")); !hit || string(resp.Body) != "C" {
		t.Fatalf("c: hit=%v body=%q", hit, resp.Body)
	}
	if _, hit := c.Do("a", fill("A3")); hit {
		t.Fatal("a should have been evicted by b's reinsert")
	}
	hits, misses, size := c.Stats()
	if size != 2 {
		t.Errorf("size = %d, want 2", size)
	}
	if hits == 0 || misses == 0 {
		t.Errorf("stats hits=%d misses=%d", hits, misses)
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := NewCache(16)
	var calls atomic.Int64
	var release sync.WaitGroup
	release.Add(1)

	const clients = 16
	var wg sync.WaitGroup
	results := make([]Response, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := c.Do("key", func() Response {
				calls.Add(1)
				release.Wait() // hold every waiter on this one computation
				return Response{Status: 200, Body: []byte("shared")}
			})
			results[i] = resp
		}(i)
	}
	release.Done()
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("fill ran %d times, want 1", n)
	}
	for i, r := range results {
		if string(r.Body) != "shared" {
			t.Fatalf("client %d got %q", i, r.Body)
		}
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(-1)
	n := 0
	for i := 0; i < 3; i++ {
		resp, hit := c.Do("k", func() Response {
			n++
			return Response{Status: 200, Body: []byte(fmt.Sprint(n))}
		})
		if hit {
			t.Fatal("disabled cache reported a hit")
		}
		if string(resp.Body) != fmt.Sprint(i+1) {
			t.Fatalf("iteration %d: body %q", i, resp.Body)
		}
	}
}

func TestCachePanicReleasesFlight(t *testing.T) {
	c := NewCache(4)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		c.Do("k", func() Response { panic("handler bug") })
	}()
	// The key must not be wedged: the next request recomputes.
	done := make(chan Response, 1)
	go func() {
		resp, _ := c.Do("k", func() Response {
			return Response{Status: 200, Body: []byte("recovered")}
		})
		done <- resp
	}()
	select {
	case resp := <-done:
		if string(resp.Body) != "recovered" {
			t.Fatalf("got %q", resp.Body)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cache key wedged after a panicking fill")
	}
}

func TestCacheConcurrentDistinctKeys(t *testing.T) {
	c := NewCache(8)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i%16)
			resp, _ := c.Do(key, func() Response {
				return Response{Status: 200, Body: []byte(key)}
			})
			if string(resp.Body) != key {
				t.Errorf("key %s got %q", key, resp.Body)
			}
		}(i)
	}
	wg.Wait()
}
