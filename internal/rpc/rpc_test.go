package rpc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"net"
	"reflect"
	"sync"
	"testing"

	"ipscope/internal/obs"
	"ipscope/internal/query"
	"ipscope/internal/serve"
	"ipscope/internal/serve/wire"
	"ipscope/internal/sim"
	"ipscope/internal/synthnet"
)

// --- codec tests (mirror the obs codec suite) ------------------------

// testMessages covers every message type with fixtures exercising the
// edge values the codec must carry faithfully: empty and non-empty
// strings, nil vs empty slices, negative ints, extreme floats.
func testMessages() []Msg {
	return []Msg{
		InfoReq{},
		InfoResp{Info: wire.ClusterInfo{Status: "ok", Epoch: 9,
			ShardInfo: wire.ShardInfo{Index: 1, Count: 4, Lo: 1 << 22, Hi: 1 << 23},
			RPCAddr:   "127.0.0.1:9999",
			Blocks:    321, FirstActive: "10.0.0.0/24",
			OldestEpoch: 6, NewestEpoch: 9}},
		InfoResp{},
		HealthReq{},
		HealthResp{Status: "warming", Epoch: 0, Blocks: 0, DailyLen: 0},
		HealthResp{Status: "ok", Epoch: 3, OldestEpoch: 1, NewestEpoch: 3, Blocks: 12, DailyLen: 84},
		SummaryReq{},
		SummaryReq{Epoch: 7},
		SummaryResp{Epoch: 5, Partial: query.SummaryPartial{Seed: 17, Days: 112,
			Daily:   query.SeriesPartial{Snapshots: 2, SnapASes: [][]uint32{{1, 2}, nil}},
			DayLens: []int{1, 2}, UARegisters: []byte{0, 9}}},
		ASReq{ASN: 64500},
		ASReq{ASN: 64500, Epoch: 2},
		ASResp{Epoch: 1, Partial: query.ASPartial{Found: true, AS: 64500,
			Prefixes: []string{"10.0.0.0/8"}, Hits: []float64{math.MaxFloat64, -1}}},
		ASResp{Partial: query.ASPartial{AS: 7}},
		PrefixReq{Prefix: "10.0.0.0/12", MaxBlocks: 16},
		PrefixReq{Prefix: "10.0.0.0/12", MaxBlocks: 16, Epoch: 4},
		PrefixReq{},
		PrefixResp{Epoch: 2, Partial: query.PrefixPartial{Prefix: "10.0.0.0/12",
			Blocks: 1 << 12, STU: []float64{0.5}, Origins: []uint32{1},
			BlockList: []query.BlockView{{Block: "10.0.0.0/24", AS: 1, FD: 3}}}},
		AddrReq{Addr: 0xC0A80101},
		AddrReq{Addr: 0xC0A80101, Epoch: 9},
		AddrResp{Epoch: 4, View: query.AddrView{Addr: "192.168.1.1", FirstDay: -1, LastDay: -1}},
		BlockReq{Block: 0xC0A801},
		BlockReq{Block: 0xC0A801, Epoch: 3},
		BlockResp{Epoch: 4, Found: true, View: query.BlockView{Block: "192.168.1.0/24", STU: 0.125}},
		BlockResp{Epoch: 4, Found: false},
		BulkAddrReq{CurrIndex: 3, Addrs: []uint32{1, 2, 3, 4}},
		BulkAddrReq{Addrs: []uint32{}},
		BulkAddrResp{Epoch: 1, CurrIndex: 0, NextIndex: 2, More: true,
			Views: []query.AddrView{{Addr: "0.0.0.1"}, {Addr: "0.0.0.2", Active: true}}},
		BulkBlockReq{CurrIndex: 1, Blocks: []uint32{9, 10}},
		BulkBlockResp{Epoch: 1, CurrIndex: 1, NextIndex: 2, More: false,
			Entries: []BlockEntry{{Found: false}, {Found: true, View: query.BlockView{Block: "0.0.10.0/24"}}}},
		DeltaReq{From: 3, To: 9, MaxBlocks: 16},
		DeltaReq{},
		DeltaResp{Oldest: 3, Newest: 9, Partial: query.DeltaPartial{
			Seed: 17, FromEpoch: 3, ToEpoch: 9, FromDays: 5, ToDays: 11,
			NewBlocks: 2, GoneDarkBlocks: 1, ChangedBlocks: 4,
			ActiveBlocksDelta: -1, ActiveAddrsDelta: 7, ChurnUp: 3, ChurnDown: 2,
			NewSample: []query.BlockChange{
				{Block: "10.0.0.0/24", AS: 64500, FDDelta: 3, ActiveDaysDelta: 2, HitsDelta: 1.5}},
			ChangedSample: []query.BlockChange{{Block: "10.0.1.0/24", HitsDelta: -0.25}},
			ASMovement: []query.ASMovementPartial{
				{AS: 64500, FromBlocks: 2, ToBlocks: 3, BothBlocks: 2,
					FromHits: []float64{1, 2}, ToHits: []float64{1, 2, math.MaxFloat64}},
				{AS: 64501, FromBlocks: 1}}}},
		DeltaResp{},
		MovementReq{Last: 5},
		MovementReq{},
		MovementResp{Oldest: 2, Newest: 4, Partial: query.MovementPartial{
			Seed: 17, OldestEpoch: 2, NewestEpoch: 4,
			Entries: []query.MovementEntryPartial{
				{Epoch: 2, Days: 3, ActiveBlocks: 9, ActiveAddrs: 120, ASes: []uint32{64500, 64501}},
				{Epoch: 3, Days: 4, BaseEpoch: 2, ChurnUp: 5, ChurnDown: 1, ASes: []uint32{}}}}},
		MovementResp{},
		ErrorResp{Code: 503, Msg: wire.WarmingError},
		ErrorResp{Code: 400, Msg: ""},
		ErrorResp{Code: 404, Msg: "epoch 2 not retained (retained epochs 3..9)",
			NotRetained: true, Oldest: 3, Newest: 9},
	}
}

func TestPayloadRoundTrip(t *testing.T) {
	for _, m := range testMessages() {
		enc := EncodePayload(m)
		got, err := DecodePayload(m.Kind(), enc)
		if err != nil {
			t.Fatalf("%T: decode: %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("%T: round trip = %+v, want %+v", m, got, m)
		}
		// Canonical: the decode re-encodes to the same bytes.
		if again := EncodePayload(got); !bytes.Equal(again, enc) {
			t.Fatalf("%T: re-encode differs", m)
		}
	}
}

func TestPayloadTruncated(t *testing.T) {
	for _, m := range testMessages() {
		enc := EncodePayload(m)
		for n := 0; n < len(enc); n++ {
			if _, err := DecodePayload(m.Kind(), enc[:n]); err == nil {
				t.Fatalf("%T: decoding %d of %d bytes succeeded", m, n, len(enc))
			}
		}
		// Trailing garbage is rejected: encodings are canonical.
		if _, err := DecodePayload(m.Kind(), append(append([]byte{}, enc...), 0)); err == nil {
			t.Fatalf("%T: trailing byte accepted", m)
		}
	}
}

func TestPayloadCorrupt(t *testing.T) {
	if _, err := DecodePayload(0x42, nil); err == nil {
		t.Fatal("unknown kind accepted")
	}
	// A bulk response whose count field claims far more views than the
	// payload could hold must error before allocating.
	enc := EncodePayload(BulkAddrResp{})
	bad := append([]byte{}, enc[:len(enc)-4]...)
	bad = append(bad, 0xFF, 0xFF, 0xFF, 0xFF)
	if _, err := DecodePayload(kindBulkAddr|respBit, bad); err == nil {
		t.Fatal("implausible view count accepted")
	}
	// A non-canonical More byte is rejected.
	enc = EncodePayload(BulkAddrResp{More: true})
	bad = append([]byte{}, enc...)
	bad[8+8+8] = 3
	if _, err := DecodePayload(kindBulkAddr|respBit, bad); err == nil {
		t.Fatal("non-canonical bool accepted")
	}
}

func TestPrefaceAndFrames(t *testing.T) {
	var buf bytes.Buffer
	if err := writePreface(&buf); err != nil {
		t.Fatal(err)
	}
	if err := readPreface(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	// Bad magic and wrong version are *FormatError.
	if err := readPreface(bytes.NewReader([]byte("HTTP/1.1"))); err == nil {
		t.Fatal("bad magic accepted")
	} else if _, ok := err.(*FormatError); !ok {
		t.Fatalf("bad magic: error %T, want *FormatError", err)
	}
	future := append([]byte{}, buf.Bytes()...)
	future[7] = 99
	if err := readPreface(bytes.NewReader(future)); err == nil {
		t.Fatal("future version accepted")
	}
	// A short preface is ErrTruncated.
	if err := readPreface(bytes.NewReader(buf.Bytes()[:5])); err != ErrTruncated {
		t.Fatalf("short preface: %v, want ErrTruncated", err)
	}

	// Frame round trip preserves the id and message.
	var fb bytes.Buffer
	want := ASReq{ASN: 9}
	if err := writeFrame(&fb, 77, want); err != nil {
		t.Fatal(err)
	}
	frame := fb.Bytes()
	id, m, err := readFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if id != 77 || m != want {
		t.Fatalf("readFrame = (%d, %+v), want (77, %+v)", id, m, want)
	}
	// Every truncation of the frame fails typed: mid-header and
	// mid-payload are ErrTruncated, never a panic.
	for n := 0; n < len(frame); n++ {
		if _, _, err := readFrame(bytes.NewReader(frame[:n])); err == nil {
			t.Fatalf("frame[:%d] accepted", n)
		}
	}
	// An absurd length field is rejected before allocation.
	huge := append([]byte{}, frame...)
	huge[5], huge[6], huge[7], huge[8] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, _, err := readFrame(bytes.NewReader(huge)); err == nil {
		t.Fatal("oversized frame length accepted")
	}
}

// --- server/client integration ---------------------------------------

var (
	backendOnce sync.Once
	backendSrv  *serve.Server
	backendIdx  *query.Index
	backendData *obs.Data
)

// testBackend builds one tiny-world shard backend shared by the
// integration tests.
func testBackend(t testing.TB) (*serve.Server, *query.Index) {
	t.Helper()
	backendOnce.Do(func() {
		w := synthnet.Generate(synthnet.TinyConfig())
		res := sim.Run(w, sim.TinyConfig())
		backendData = &res.Data
		idx, err := query.Build(backendData, query.Options{})
		if err != nil {
			t.Fatal(err)
		}
		backendIdx = idx
		backendSrv = serve.New(idx, serve.Config{})
	})
	return backendSrv, backendIdx
}

// startServer runs an RPC server over the shared backend and returns a
// connected client; both are torn down with the test.
func startServer(t *testing.T, opts Options) *Client {
	t.Helper()
	be, _ := testBackend(t)
	srv := NewServer(be, opts)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Shutdown(context.Background()) })
	c := NewClient(addr.String(), ClientOptions{})
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClientServerPoint(t *testing.T) {
	c := startServer(t, Options{})
	_, idx := testBackend(t)
	ctx := context.Background()
	epoch := idx.Epoch()

	blk := idx.Blocks()[0]
	view, found, e, err := c.Block(ctx, uint32(blk), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !found || e != epoch {
		t.Fatalf("Block(%v) = found=%v epoch=%d, want true, %d", blk, found, e, epoch)
	}
	if want, _ := idx.Block(blk); view != want {
		t.Fatalf("Block(%v) = %+v, want %+v", blk, view, want)
	}

	// A block with no activity answers found=false, not an error.
	inactive := uint32(blk) + 1
	for _, b := range idx.Blocks() {
		if uint32(b) == inactive {
			inactive++
		}
	}
	if _, found, _, err := c.Block(ctx, inactive, 0); err != nil || found {
		t.Fatalf("inactive block: found=%v err=%v", found, err)
	}

	addr := blk.Addr(7)
	aview, e, err := c.Addr(ctx, uint32(addr), 0)
	if err != nil {
		t.Fatal(err)
	}
	if e != epoch || aview != idx.Addr(addr) {
		t.Fatalf("Addr(%v) mismatch", addr)
	}

	info, err := c.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != "ok" || info.Epoch != epoch || info.Blocks != idx.NumBlocks() {
		t.Fatalf("Info = %+v", info)
	}
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Epoch != epoch {
		t.Fatalf("Health = %+v", h)
	}
}

func TestClientServerPartials(t *testing.T) {
	c := startServer(t, Options{})
	_, idx := testBackend(t)
	ctx := context.Background()

	p, e, err := c.Summary(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e != idx.Epoch() {
		t.Fatalf("summary epoch %d, want %d", e, idx.Epoch())
	}
	if got, want := p.Finalize(), idx.Summary(); got != want {
		t.Fatalf("summary partial finalizes to %+v, want %+v", got, want)
	}

	asn := idx.ASNs()[0]
	ap, _, err := c.AS(ctx, uint32(asn), 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := idx.ASPartial(asn); !reflect.DeepEqual(ap, want) {
		t.Fatalf("AS partial = %+v, want %+v", ap, want)
	}

	// An invalid prefix answers a 400 StatusError, like the HTTP API.
	if _, _, err := c.Prefix(ctx, "banana", 16, 0); err == nil {
		t.Fatal("invalid prefix accepted")
	} else if se, ok := err.(*StatusError); !ok || se.Code != 400 {
		t.Fatalf("invalid prefix: %v, want 400 StatusError", err)
	}
}

// TestHistoryRPC pins the history surface of the protocol: epoch-
// targeted point lookups answer from retained snapshots, unretained
// epochs fail with the typed *wire.NotRetainedError carrying the
// retained range, Delta/Movement frames agree with the backend ring,
// and Health advertises the range.
func TestHistoryRPC(t *testing.T) {
	testBackend(t)
	a := query.NewApplier(query.Options{})
	if err := backendData.WriteTo(a); err != nil {
		t.Fatal(err)
	}
	snap := func() *query.Index {
		s, err := a.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1, s2, s3 := snap(), snap(), snap()
	be := serve.New(nil, serve.Config{RetainEpochs: 2})
	be.Publish(s1)
	be.Publish(s2)
	be.Publish(s3) // ring now retains {s2, s3}; s1 is evicted

	srv := NewServer(be, Options{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	c := NewClient(addr.String(), ClientOptions{})
	defer c.Close()
	ctx := context.Background()

	// A retained, non-live epoch answers that snapshot.
	p, e, err := c.Summary(ctx, s2.Epoch())
	if err != nil {
		t.Fatal(err)
	}
	if e != s2.Epoch() {
		t.Fatalf("as-of summary epoch %d, want %d", e, s2.Epoch())
	}
	if got, want := p.Finalize(), s2.Summary(); got != want {
		t.Fatalf("as-of summary = %+v, want %+v", got, want)
	}
	blk := s2.Blocks()[0]
	view, found, e, err := c.Block(ctx, uint32(blk), s2.Epoch())
	if err != nil || !found || e != s2.Epoch() {
		t.Fatalf("as-of block: found=%v epoch=%d err=%v", found, e, err)
	}
	if want, _ := s2.Block(blk); view != want {
		t.Fatalf("as-of block view = %+v, want %+v", view, want)
	}

	// An evicted epoch is the typed 404 with the retained range.
	var nr *wire.NotRetainedError
	if _, _, err := c.Summary(ctx, s1.Epoch()); !errors.As(err, &nr) {
		t.Fatalf("evicted epoch: err = %v, want *wire.NotRetainedError", err)
	} else if nr.Oldest != s2.Epoch() || nr.Newest != s3.Epoch() {
		t.Fatalf("not-retained range %d..%d, want %d..%d", nr.Oldest, nr.Newest, s2.Epoch(), s3.Epoch())
	}

	// Delta matches the ring's partial and reports the retained range.
	part, oldest, newest, err := c.Delta(ctx, s2.Epoch(), s3.Epoch(), query.DefaultDeltaBlockList)
	if err != nil {
		t.Fatal(err)
	}
	want, ok, err := be.History().Delta(s2.Epoch(), s3.Epoch(), query.DefaultDeltaBlockList)
	if !ok || err != nil {
		t.Fatalf("ring delta: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(part, want) {
		t.Fatalf("delta partial = %+v, want %+v", part, want)
	}
	if oldest != s2.Epoch() || newest != s3.Epoch() {
		t.Fatalf("delta range %d..%d, want %d..%d", oldest, newest, s2.Epoch(), s3.Epoch())
	}

	// A span touching an evicted epoch fails typed; an inverted span is
	// a plain 400.
	if _, _, _, err := c.Delta(ctx, s1.Epoch(), s3.Epoch(), 0); !errors.As(err, &nr) {
		t.Fatalf("delta from evicted epoch: %v", err)
	}
	if _, _, _, err := c.Delta(ctx, s3.Epoch(), s2.Epoch(), 0); err == nil {
		t.Fatal("inverted delta span accepted")
	} else if se, ok := err.(*StatusError); !ok || se.Code != 400 {
		t.Fatalf("inverted delta span: %v, want 400 StatusError", err)
	}

	// Movement mirrors the ring series.
	mp, oldest, newest, err := c.Movement(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mp, be.History().Movement(0)) {
		t.Fatalf("movement partial = %+v, want ring's", mp)
	}
	if oldest != s2.Epoch() || newest != s3.Epoch() {
		t.Fatalf("movement range %d..%d", oldest, newest)
	}

	// Health advertises the retained range.
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.OldestEpoch != s2.Epoch() || h.NewestEpoch != s3.Epoch() {
		t.Fatalf("health range %d..%d, want %d..%d", h.OldestEpoch, h.NewestEpoch, s2.Epoch(), s3.Epoch())
	}
}

// TestWarmingBackend pins the typed form of the HTTP warming 503.
func TestWarmingBackend(t *testing.T) {
	srv := NewServer(serve.New(nil, serve.Config{}), Options{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	c := NewClient(addr.String(), ClientOptions{})
	defer c.Close()

	ctx := context.Background()
	if _, _, _, err := c.Block(ctx, 1, 0); err == nil {
		t.Fatal("warming shard answered a block lookup")
	} else if se, ok := err.(*StatusError); !ok || se.Code != 503 || se.Msg != wire.WarmingError {
		t.Fatalf("warming error = %v", err)
	}
	// Info still answers while warming.
	info, err := c.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != "warming" {
		t.Fatalf("warming Info.Status = %q", info.Status)
	}
}

// TestBulkEqualsSingles is the bulk contract: a BulkAddr/BulkBlock
// answer — forced across several More pages by a tiny server page size
// — is element-for-element identical to N single lookups, including
// the not-found entries, and the JSON each view marshals to is
// byte-identical.
func TestBulkEqualsSingles(t *testing.T) {
	c := startServer(t, Options{BulkPage: 3})
	_, idx := testBackend(t)
	ctx := context.Background()

	blocks := idx.Blocks()
	if len(blocks) <= 7 {
		t.Fatalf("tiny world too small: %d blocks", len(blocks))
	}
	// 10 targets spanning active and inactive blocks: forces 4 pages at
	// page size 3 (a non-aligned final page).
	var addrs, blks []uint32
	for i := 0; i < 10; i++ {
		b := uint32(blocks[(i*3)%len(blocks)])
		if i%3 == 2 {
			b++ // often inactive: the not-found path must page identically
		}
		blks = append(blks, b)
		addrs = append(addrs, b<<8|uint32(i))
	}

	views, epoch, err := c.BulkAddr(ctx, addrs)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != idx.Epoch() || len(views) != len(addrs) {
		t.Fatalf("BulkAddr: epoch=%d len=%d", epoch, len(views))
	}
	for i, a := range addrs {
		single, _, err := c.Addr(ctx, a, 0)
		if err != nil {
			t.Fatal(err)
		}
		if views[i] != single {
			t.Fatalf("bulk view %d = %+v, single = %+v", i, views[i], single)
		}
		bj, _ := json.Marshal(views[i])
		sj, _ := json.Marshal(single)
		if !bytes.Equal(bj, sj) {
			t.Fatalf("bulk JSON %d differs: %s vs %s", i, bj, sj)
		}
	}

	entries, epoch, err := c.BulkBlock(ctx, blks)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != idx.Epoch() || len(entries) != len(blks) {
		t.Fatalf("BulkBlock: epoch=%d len=%d", epoch, len(entries))
	}
	sawNotFound := false
	for i, b := range blks {
		view, found, _, err := c.Block(ctx, b, 0)
		if err != nil {
			t.Fatal(err)
		}
		if entries[i].Found != found || entries[i].View != view {
			t.Fatalf("bulk entry %d = %+v, single = (%v, %+v)", i, entries[i], found, view)
		}
		sawNotFound = sawNotFound || !found
	}
	if !sawNotFound {
		t.Fatal("probe set never exercised the not-found path")
	}

	// Empty bulk is a valid degenerate call.
	if views, _, err := c.BulkAddr(ctx, nil); err != nil || len(views) != 0 {
		t.Fatalf("empty BulkAddr = (%d views, %v)", len(views), err)
	}
}

// TestPipelining issues many concurrent requests over the client's
// small connection pool; responses must all match their requests (the
// id demux under fire).
func TestPipelining(t *testing.T) {
	c := startServer(t, Options{})
	_, idx := testBackend(t)
	blocks := idx.Blocks()
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				blk := blocks[(g*50+i)%len(blocks)]
				want, _ := idx.Block(blk)
				view, found, _, err := c.Block(ctx, uint32(blk), 0)
				if err != nil {
					errs <- err
					return
				}
				if !found || view != want {
					errs <- &FormatError{Msg: "response/request mismatch under pipelining"}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestGarbagePeer pins the server's behaviour against a non-RPC peer:
// the connection is dropped, the process survives.
func TestGarbagePeer(t *testing.T) {
	be, _ := testBackend(t)
	srv := NewServer(be, Options{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	// The server must close on us rather than answer.
	buf := make([]byte, 1)
	if n, _ := conn.Read(buf); n != 0 {
		t.Fatalf("server answered %d bytes to a garbage preface", n)
	}
}
