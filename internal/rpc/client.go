package rpc

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"ipscope/internal/query"
	"ipscope/internal/serve/wire"
)

// StatusError is a typed error response from the peer, carrying the
// HTTP-equivalent status code (503 warming, 400 bad request) so the
// cluster transport can reconstruct the exact HTTP behaviour.
type StatusError struct {
	Code int
	Msg  string
}

// Error returns the message.
func (e *StatusError) Error() string { return fmt.Sprintf("rpc: status %d: %s", e.Code, e.Msg) }

// DefaultPoolSize is how many persistent connections a Client keeps per
// shard. Concurrent calls pipeline over them round-robin, so the pool
// bounds head-of-line blocking without one-connection-per-request
// churn.
const DefaultPoolSize = 4

// DefaultDialTimeout bounds one connection attempt.
const DefaultDialTimeout = 5 * time.Second

// Client is a pipelining RPC client for one shard. It is safe for
// concurrent use: calls are multiplexed over a small pool of persistent
// connections, matched to responses by frame id. A broken connection
// fails its in-flight calls and is re-dialed lazily on the next call.
type Client struct {
	addr        string
	dialTimeout time.Duration

	mu     sync.Mutex
	conns  []*clientConn
	next   int
	closed bool
}

// ClientOptions tunes a Client.
type ClientOptions struct {
	// PoolSize bounds persistent connections; 0 means DefaultPoolSize.
	PoolSize int
	// DialTimeout bounds one connection attempt; 0 means
	// DefaultDialTimeout.
	DialTimeout time.Duration
}

// NewClient returns a Client for the shard at addr (host:port). No
// connection is made until the first call.
func NewClient(addr string, opts ClientOptions) *Client {
	size := opts.PoolSize
	if size <= 0 {
		size = DefaultPoolSize
	}
	dt := opts.DialTimeout
	if dt <= 0 {
		dt = DefaultDialTimeout
	}
	return &Client{addr: addr, dialTimeout: dt, conns: make([]*clientConn, size)}
}

// Close closes every pooled connection; in-flight calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	conns := append([]*clientConn(nil), c.conns...)
	c.mu.Unlock()
	for _, cc := range conns {
		if cc != nil {
			cc.close(fmt.Errorf("rpc: client closed"))
		}
	}
	return nil
}

// clientConn is one persistent connection: a writer guarded by wmu and
// a reader goroutine that demultiplexes response frames to the pending
// calls by id.
type clientConn struct {
	conn net.Conn
	bw   *bufio.Writer

	wmu sync.Mutex // serializes frame writes + flushes

	mu      sync.Mutex
	nextID  uint32
	pending map[uint32]chan Msg
	err     error // set once broken; all future use fails fast
}

// conn returns a live pooled connection at slot i, dialing if needed.
func (c *Client) pooled() (*clientConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("rpc: client closed")
	}
	i := c.next
	c.next = (c.next + 1) % len(c.conns)
	cc := c.conns[i]
	if cc != nil && !cc.broken() {
		c.mu.Unlock()
		return cc, nil
	}
	c.mu.Unlock()

	// Dial outside the pool lock — a dead shard must not serialize every
	// caller behind one connect timeout.
	nc, err := net.DialTimeout("tcp", c.addr, c.dialTimeout)
	if err != nil {
		return nil, err
	}
	cc = &clientConn{
		conn:    nc,
		bw:      bufio.NewWriterSize(nc, 1<<16),
		pending: make(map[uint32]chan Msg),
	}
	if err := writePreface(cc.bw); err != nil {
		nc.Close()
		return nil, err
	}
	if err := cc.bw.Flush(); err != nil {
		nc.Close()
		return nil, err
	}
	br := bufio.NewReaderSize(nc, 1<<16)
	if err := readPreface(br); err != nil {
		nc.Close()
		return nil, err
	}
	go cc.readLoop(br)

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		cc.close(fmt.Errorf("rpc: client closed"))
		return nil, fmt.Errorf("rpc: client closed")
	}
	// Another caller may have replaced the slot meanwhile; keep the
	// freshest live connection and use ours regardless.
	if old := c.conns[i]; old == nil || old.broken() {
		c.conns[i] = cc
	}
	c.mu.Unlock()
	return cc, nil
}

func (cc *clientConn) broken() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.err != nil
}

// close marks the connection broken and fails every pending call.
func (cc *clientConn) close(err error) {
	cc.mu.Lock()
	if cc.err == nil {
		cc.err = err
	}
	pending := cc.pending
	cc.pending = make(map[uint32]chan Msg)
	cc.mu.Unlock()
	cc.conn.Close()
	for _, ch := range pending {
		close(ch) // receivers observe closed channel = connection error
	}
}

// readLoop demultiplexes response frames to pending calls until the
// connection breaks.
func (cc *clientConn) readLoop(br *bufio.Reader) {
	for {
		id, m, err := readFrame(br)
		if err != nil {
			cc.close(fmt.Errorf("rpc: connection lost: %w", err))
			return
		}
		cc.mu.Lock()
		ch, ok := cc.pending[id]
		delete(cc.pending, id)
		cc.mu.Unlock()
		if ok {
			ch <- m
		}
	}
}

// roundTrip sends req on one pooled connection and waits for its
// response frame, honouring ctx cancellation.
func (c *Client) roundTrip(ctx context.Context, req Msg) (Msg, error) {
	cc, err := c.pooled()
	if err != nil {
		return nil, err
	}

	ch := make(chan Msg, 1)
	cc.mu.Lock()
	if cc.err != nil {
		err := cc.err
		cc.mu.Unlock()
		return nil, err
	}
	id := cc.nextID
	cc.nextID++
	cc.pending[id] = ch
	cc.mu.Unlock()

	cc.wmu.Lock()
	err = writeFrame(cc.bw, id, req)
	if err == nil {
		err = cc.bw.Flush()
	}
	cc.wmu.Unlock()
	if err != nil {
		cc.close(err)
		return nil, err
	}

	select {
	case m, ok := <-ch:
		if !ok {
			cc.mu.Lock()
			err := cc.err
			cc.mu.Unlock()
			if err == nil {
				err = fmt.Errorf("rpc: connection lost")
			}
			return nil, err
		}
		if e, isErr := m.(*ErrorResp); isErr {
			return nil, errorRespErr(*e)
		}
		if e, isErr := m.(ErrorResp); isErr {
			return nil, errorRespErr(e)
		}
		return m, nil
	case <-ctx.Done():
		// Abandon the call: drop the pending entry so the late response
		// (if any) is discarded by the read loop.
		cc.mu.Lock()
		delete(cc.pending, id)
		cc.mu.Unlock()
		return nil, ctx.Err()
	}
}

// errorRespErr maps an error frame to its typed Go error: the
// not-retained 404 becomes *wire.NotRetainedError (carrying the shard's
// ring range for the router's common-range fold), everything else a
// *StatusError.
func errorRespErr(e ErrorResp) error {
	if e.NotRetained {
		return &wire.NotRetainedError{Oldest: e.Oldest, Newest: e.Newest}
	}
	return &StatusError{Code: e.Code, Msg: e.Msg}
}

func badResp(m Msg) error {
	return formatErrf("unexpected response type %T", m)
}

// Info fetches the shard's cluster info.
func (c *Client) Info(ctx context.Context) (wire.ClusterInfo, error) {
	m, err := c.roundTrip(ctx, InfoReq{})
	if err != nil {
		return wire.ClusterInfo{}, err
	}
	r, ok := m.(InfoResp)
	if !ok {
		return wire.ClusterInfo{}, badResp(m)
	}
	return r.Info, nil
}

// Health fetches the shard's liveness.
func (c *Client) Health(ctx context.Context) (HealthResp, error) {
	m, err := c.roundTrip(ctx, HealthReq{})
	if err != nil {
		return HealthResp{}, err
	}
	r, ok := m.(HealthResp)
	if !ok {
		return HealthResp{}, badResp(m)
	}
	return r, nil
}

// Summary fetches the shard's mergeable summary partial and the epoch
// it was computed from. A non-zero epoch targets a retained snapshot
// (likewise on every point method below); an unretained epoch returns
// *wire.NotRetainedError.
func (c *Client) Summary(ctx context.Context, epoch uint64) (query.SummaryPartial, uint64, error) {
	m, err := c.roundTrip(ctx, SummaryReq{Epoch: epoch})
	if err != nil {
		return query.SummaryPartial{}, 0, err
	}
	r, ok := m.(SummaryResp)
	if !ok {
		return query.SummaryPartial{}, 0, badResp(m)
	}
	return r.Partial, r.Epoch, nil
}

// AS fetches the shard's mergeable share of one AS footprint.
func (c *Client) AS(ctx context.Context, asn uint32, epoch uint64) (query.ASPartial, uint64, error) {
	m, err := c.roundTrip(ctx, ASReq{ASN: asn, Epoch: epoch})
	if err != nil {
		return query.ASPartial{}, 0, err
	}
	r, ok := m.(ASResp)
	if !ok {
		return query.ASPartial{}, 0, badResp(m)
	}
	return r.Partial, r.Epoch, nil
}

// Prefix fetches the shard's mergeable share of a CIDR aggregate.
func (c *Client) Prefix(ctx context.Context, prefix string, maxBlocks int, epoch uint64) (query.PrefixPartial, uint64, error) {
	m, err := c.roundTrip(ctx, PrefixReq{Prefix: prefix, MaxBlocks: maxBlocks, Epoch: epoch})
	if err != nil {
		return query.PrefixPartial{}, 0, err
	}
	r, ok := m.(PrefixResp)
	if !ok {
		return query.PrefixPartial{}, 0, badResp(m)
	}
	return r.Partial, r.Epoch, nil
}

// Addr fetches one address's view.
func (c *Client) Addr(ctx context.Context, addr uint32, epoch uint64) (query.AddrView, uint64, error) {
	m, err := c.roundTrip(ctx, AddrReq{Addr: addr, Epoch: epoch})
	if err != nil {
		return query.AddrView{}, 0, err
	}
	r, ok := m.(AddrResp)
	if !ok {
		return query.AddrView{}, 0, badResp(m)
	}
	return r.View, r.Epoch, nil
}

// Block fetches one /24's view; found=false is the typed 404.
func (c *Client) Block(ctx context.Context, block uint32, epoch uint64) (query.BlockView, bool, uint64, error) {
	m, err := c.roundTrip(ctx, BlockReq{Block: block, Epoch: epoch})
	if err != nil {
		return query.BlockView{}, false, 0, err
	}
	r, ok := m.(BlockResp)
	if !ok {
		return query.BlockView{}, false, 0, badResp(m)
	}
	return r.View, r.Found, r.Epoch, nil
}

// BulkAddr fetches views for every address in one logical call, paging
// with CurrIndex/NextIndex/More until the server reports no more. The
// returned views align one-to-one with addrs; the epoch is the last
// page's (pages of one immutable snapshot agree unless a publish lands
// mid-call, in which case the freshest wins, matching what N singles
// would observe).
func (c *Client) BulkAddr(ctx context.Context, addrs []uint32) ([]query.AddrView, uint64, error) {
	views := make([]query.AddrView, 0, len(addrs))
	var epoch uint64
	for curr := 0; ; {
		m, err := c.roundTrip(ctx, BulkAddrReq{CurrIndex: curr, Addrs: addrs})
		if err != nil {
			return nil, 0, err
		}
		r, ok := m.(BulkAddrResp)
		if !ok {
			return nil, 0, badResp(m)
		}
		if r.CurrIndex != curr || r.NextIndex < curr || r.NextIndex > len(addrs) {
			return nil, 0, formatErrf("bulk page [%d, %d) does not continue offset %d", r.CurrIndex, r.NextIndex, curr)
		}
		if len(r.Views) != r.NextIndex-r.CurrIndex {
			return nil, 0, formatErrf("bulk page carries %d views for range [%d, %d)", len(r.Views), r.CurrIndex, r.NextIndex)
		}
		views = append(views, r.Views...)
		epoch = r.Epoch
		curr = r.NextIndex
		if !r.More {
			break
		}
		if r.NextIndex == r.CurrIndex {
			return nil, 0, formatErrf("bulk paging made no progress at offset %d", curr)
		}
	}
	if len(views) != len(addrs) {
		return nil, 0, formatErrf("bulk answered %d views for %d addrs", len(views), len(addrs))
	}
	return views, epoch, nil
}

// BulkBlock fetches entries for every /24 in one logical call, paging
// like BulkAddr. Entries align one-to-one with blocks; Found=false
// entries are the typed 404s.
func (c *Client) BulkBlock(ctx context.Context, blocks []uint32) ([]BlockEntry, uint64, error) {
	entries := make([]BlockEntry, 0, len(blocks))
	var epoch uint64
	for curr := 0; ; {
		m, err := c.roundTrip(ctx, BulkBlockReq{CurrIndex: curr, Blocks: blocks})
		if err != nil {
			return nil, 0, err
		}
		r, ok := m.(BulkBlockResp)
		if !ok {
			return nil, 0, badResp(m)
		}
		if r.CurrIndex != curr || r.NextIndex < curr || r.NextIndex > len(blocks) {
			return nil, 0, formatErrf("bulk page [%d, %d) does not continue offset %d", r.CurrIndex, r.NextIndex, curr)
		}
		if len(r.Entries) != r.NextIndex-r.CurrIndex {
			return nil, 0, formatErrf("bulk page carries %d entries for range [%d, %d)", len(r.Entries), r.CurrIndex, r.NextIndex)
		}
		entries = append(entries, r.Entries...)
		epoch = r.Epoch
		curr = r.NextIndex
		if !r.More {
			break
		}
		if r.NextIndex == r.CurrIndex {
			return nil, 0, formatErrf("bulk paging made no progress at offset %d", curr)
		}
	}
	if len(entries) != len(blocks) {
		return nil, 0, formatErrf("bulk answered %d entries for %d blocks", len(entries), len(blocks))
	}
	return entries, epoch, nil
}

// Delta fetches the shard's mergeable delta partial between two
// retained epochs plus the shard's ring range; an unretained epoch
// returns *wire.NotRetainedError.
func (c *Client) Delta(ctx context.Context, from, to uint64, maxBlocks int) (query.DeltaPartial, uint64, uint64, error) {
	m, err := c.roundTrip(ctx, DeltaReq{From: from, To: to, MaxBlocks: maxBlocks})
	if err != nil {
		return query.DeltaPartial{}, 0, 0, err
	}
	r, ok := m.(DeltaResp)
	if !ok {
		return query.DeltaPartial{}, 0, 0, badResp(m)
	}
	return r.Partial, r.Oldest, r.Newest, nil
}

// Movement fetches the shard's mergeable movement partial over the last
// N retained epochs (0 = whole ring) plus the shard's ring range.
func (c *Client) Movement(ctx context.Context, last int) (query.MovementPartial, uint64, uint64, error) {
	m, err := c.roundTrip(ctx, MovementReq{Last: last})
	if err != nil {
		return query.MovementPartial{}, 0, 0, err
	}
	r, ok := m.(MovementResp)
	if !ok {
		return query.MovementPartial{}, 0, 0, badResp(m)
	}
	return r.Partial, r.Oldest, r.Newest, nil
}
