package rpc

import (
	"bytes"
	"errors"
	"testing"

	"ipscope/internal/query"
)

// FuzzRPCDecode fuzzes the payload decoder with arbitrary bytes under
// every frame kind. The invariants mirror the obs codec fuzz target:
// decoding never panics, failures are the typed protocol errors
// (*FormatError, or *query.WireError from a nested view codec), and any
// accepted payload is canonical — re-encoding the decoded message
// reproduces the input bytes exactly (the fixed point that makes byte
// equality across transports provable).
func FuzzRPCDecode(f *testing.F) {
	for _, m := range testMessages() {
		f.Add(m.Kind(), EncodePayload(m))
	}
	f.Add(byte(0x42), []byte{})                                       // unknown kind
	f.Add(byte(kindBulkAddr|respBit), bytes.Repeat([]byte{0xFF}, 40)) // huge counts

	f.Fuzz(func(t *testing.T, kind byte, payload []byte) {
		m, err := DecodePayload(kind, payload)
		if err != nil {
			var fe *FormatError
			var we *query.WireError
			if !errors.As(err, &fe) && !errors.As(err, &we) {
				t.Fatalf("untyped decode error %T: %v", err, err)
			}
			return
		}
		if m.Kind() != kind {
			t.Fatalf("decoded kind 0x%02x from frame kind 0x%02x", m.Kind(), kind)
		}
		if again := EncodePayload(m); !bytes.Equal(again, payload) {
			t.Fatalf("decode∘encode not the identity:\n in:  %x\n out: %x", payload, again)
		}
	})
}
