// Package rpc is the compact binary RPC protocol for shard↔router
// traffic — the internal fast path behind the unchanged public /v1/*
// JSON API. It reuses the obs codec discipline: a fixed magic plus
// version preface guards against desynchronized or mismatched peers,
// every message is a length-prefixed frame, counts are validated before
// allocation, decoding never panics on corrupt input (typed errors
// only), and encodings are canonical — decode∘encode is the identity,
// which FuzzRPCDecode enforces.
//
// Wire format (all integers big endian):
//
//	preface := magic("ipsrpc") version(2)        — sent by BOTH peers
//	frame   := kind(1) id(4) length(4) payload[length]
//
// The id echoes from request to response, which is what permits
// pipelining: a client may write any number of request frames before
// reading, and matches responses by id. Response kinds are the request
// kind with the high bit set; kindError (0xFF) answers any request with
// a status code + message instead of its typed response.
//
// Bulk requests page thrift-style: the client sends CurrIndex (the
// offset already consumed), the server answers at most its page size of
// entries from that offset plus NextIndex and More; the client loops
// until More is false. One logical N-address lookup therefore costs
// ceil(N/page) round trips on one persistent connection, instead of N
// HTTP requests.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"ipscope/internal/query"
	"ipscope/internal/serve/wire"
)

// Version is the current protocol version, exchanged in the preface.
// Version 2 added history: epoch-targeted point requests, the
// Delta/Movement frames, retained-range fields on responses, and the
// typed not-retained error.
const Version = 2

const maxFrameLen = 1 << 28 // 256 MiB: far above any real frame

var magic = []byte("ipsrpc")

// Request kinds; the matching response kind is kind|respBit.
const (
	kindInfo      = 0x01
	kindHealth    = 0x02
	kindSummary   = 0x03
	kindAS        = 0x04
	kindPrefix    = 0x05
	kindAddr      = 0x06
	kindBlock     = 0x07
	kindBulkAddr  = 0x08
	kindBulkBlock = 0x09
	kindDelta     = 0x0A
	kindMovement  = 0x0B

	respBit   = 0x80
	kindError = 0xFF
)

// ErrTruncated is returned when a peer closes mid-frame or mid-preface.
var ErrTruncated = errors.New("rpc: truncated stream")

// FormatError reports structurally invalid protocol input: bad magic,
// an unsupported version, a malformed frame, or a corrupt payload.
type FormatError struct{ Msg string }

// Error returns the message.
func (e *FormatError) Error() string { return "rpc: " + e.Msg }

func formatErrf(format string, args ...any) error {
	return &FormatError{Msg: fmt.Sprintf(format, args...)}
}

// Msg is one typed protocol message (request or response).
type Msg interface {
	// Kind returns the frame kind byte identifying the message type.
	Kind() byte
	append(b []byte) []byte
}

// --- message types ---------------------------------------------------

// InfoReq asks for the shard's cluster info (partition coordinates).
type InfoReq struct{}

// InfoResp carries the same fields as GET /v1/cluster/info.
type InfoResp struct{ Info wire.ClusterInfo }

// HealthReq asks for the shard's liveness.
type HealthReq struct{}

// HealthResp carries the health fields the router's aggregate probe
// consumes (the HTTP healthz additionally reports cache counters, which
// are meaningless over RPC — responses are not served from the HTTP
// response cache). OldestEpoch/NewestEpoch report the shard's retained
// history ring for the router's common-range aggregation.
type HealthResp struct {
	Status      string
	Epoch       uint64
	OldestEpoch uint64
	NewestEpoch uint64
	Blocks      int
	DailyLen    int
}

// SummaryReq asks for the shard's mergeable summary partial. A non-zero
// Epoch targets a retained snapshot instead of the live one (likewise
// on every point request below); an unretained epoch answers the typed
// not-retained error.
type SummaryReq struct{ Epoch uint64 }

// SummaryResp is the typed /v1/cluster/summary.
type SummaryResp struct {
	Epoch   uint64
	Partial query.SummaryPartial
}

// ASReq asks for the shard's mergeable share of one AS footprint.
type ASReq struct {
	ASN   uint32
	Epoch uint64
}

// ASResp is the typed /v1/cluster/as/{asn}.
type ASResp struct {
	Epoch   uint64
	Partial query.ASPartial
}

// PrefixReq asks for the shard's mergeable share of a CIDR aggregate.
type PrefixReq struct {
	Prefix    string
	MaxBlocks int
	Epoch     uint64
}

// PrefixResp is the typed /v1/cluster/prefix/{cidr}.
type PrefixResp struct {
	Epoch   uint64
	Partial query.PrefixPartial
}

// AddrReq asks for one address's view (the /v1/addr point lookup).
type AddrReq struct {
	Addr  uint32
	Epoch uint64
}

// AddrResp carries the view plus the snapshot epoch it was computed
// from — the typed form of the JSON body's spliced "epoch" field, from
// which the router re-derives the ETag.
type AddrResp struct {
	Epoch uint64
	View  query.AddrView
}

// BlockReq asks for one /24's view (the /v1/block point lookup).
type BlockReq struct {
	Block uint32
	Epoch uint64
}

// BlockResp carries the view when the block has activity; Found=false
// is the typed form of the HTTP 404.
type BlockResp struct {
	Epoch uint64
	Found bool
	View  query.BlockView
}

// BulkAddrReq asks for many addresses in one round trip, starting at
// offset CurrIndex into Addrs.
type BulkAddrReq struct {
	CurrIndex int
	Addrs     []uint32
}

// BulkAddrResp answers Views for Addrs[CurrIndex : NextIndex); More
// reports whether entries remain past NextIndex.
type BulkAddrResp struct {
	Epoch     uint64
	CurrIndex int
	NextIndex int
	More      bool
	Views     []query.AddrView
}

// BulkBlockReq asks for many /24s in one round trip, starting at offset
// CurrIndex into Blocks.
type BulkBlockReq struct {
	CurrIndex int
	Blocks    []uint32
}

// BlockEntry is one bulk block answer; Found=false is the typed 404.
type BlockEntry struct {
	Found bool
	View  query.BlockView
}

// BulkBlockResp answers Entries for Blocks[CurrIndex : NextIndex).
type BulkBlockResp struct {
	Epoch     uint64
	CurrIndex int
	NextIndex int
	More      bool
	Entries   []BlockEntry
}

// DeltaReq asks for the shard's mergeable delta partial between two
// retained epochs (the /v1/cluster/delta equivalent).
type DeltaReq struct {
	From      uint64
	To        uint64
	MaxBlocks int
}

// DeltaResp carries the partial plus the shard's retained ring range,
// which the router folds into the cluster-wide common range.
type DeltaResp struct {
	Oldest  uint64
	Newest  uint64
	Partial query.DeltaPartial
}

// MovementReq asks for the shard's mergeable movement partial over the
// last N retained epochs (0 = the whole ring).
type MovementReq struct{ Last int }

// MovementResp carries the partial plus the shard's retained ring
// range.
type MovementResp struct {
	Oldest  uint64
	Newest  uint64
	Partial query.MovementPartial
}

// ErrorResp answers any request with an HTTP-equivalent status code and
// message instead of its typed response — 503 while the shard is
// warming (Msg = wire.WarmingError), 400 for an invalid prefix, 404
// with NotRetained set (and the ring range) for an epoch outside the
// shard's history ring.
type ErrorResp struct {
	Code        int
	Msg         string
	NotRetained bool
	Oldest      uint64
	Newest      uint64
}

// --- primitive helpers (append) --------------------------------------

func appendU8(b []byte, v uint8) []byte   { return append(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }
func appendInt(b []byte, v int) []byte    { return appendU64(b, uint64(int64(v))) }
func appendF64(b []byte, v float64) []byte {
	return appendU64(b, math.Float64bits(v))
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendString(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendU32s(b []byte, s []uint32) []byte {
	b = appendU32(b, uint32(len(s)))
	for _, v := range s {
		b = appendU32(b, v)
	}
	return b
}

// --- primitive helpers (decode) --------------------------------------

// dec consumes a frame payload, latching the first error instead of
// panicking (the obs decoder idiom).
type dec struct {
	p   []byte
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = &FormatError{Msg: "frame payload too short"}
	}
}

func (d *dec) take(n int) []byte {
	if d.err != nil || len(d.p) < n {
		d.fail()
		return nil
	}
	out := d.p[:n]
	d.p = d.p[n:]
	return out
}

func (d *dec) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *dec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *dec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *dec) i() int { return int(int64(d.u64())) }

func (d *dec) bool() bool {
	switch d.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		if d.err == nil {
			d.err = formatErrf("non-canonical bool byte")
		}
		return false
	}
}

func (d *dec) str() string {
	n := int(d.u32())
	if d.err == nil && n > len(d.p) {
		d.err = formatErrf("string length %d exceeds remaining payload", n)
	}
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// count reads a length field and validates it against the bytes that
// could possibly remain (elemSize per element).
func (d *dec) count(elemSize int) int {
	n := int(d.u32())
	if d.err == nil && n*elemSize > len(d.p) {
		d.err = formatErrf("count %d exceeds remaining payload", n)
	}
	if d.err != nil {
		return 0
	}
	return n
}

func (d *dec) u32s() []uint32 {
	n := d.count(4)
	out := make([]uint32, n)
	for i := range out {
		out[i] = d.u32()
	}
	return out
}

// sub hands the remaining bytes to a query wire decoder and resumes
// after what it consumed.
func sub[T any](d *dec, decode func([]byte) (T, []byte, error)) T {
	var zero T
	if d.err != nil {
		return zero
	}
	v, rest, err := decode(d.p)
	if err != nil {
		d.err = err
		return zero
	}
	d.p = rest
	return v
}

func (d *dec) finish(kind byte) error {
	if d.err != nil {
		return d.err
	}
	if len(d.p) != 0 {
		return formatErrf("frame 0x%02x has %d trailing bytes", kind, len(d.p))
	}
	return nil
}

// --- per-message encodings -------------------------------------------

// Kind implements Msg.
func (InfoReq) Kind() byte             { return kindInfo }
func (InfoReq) append(b []byte) []byte { return b }

// Kind implements Msg.
func (InfoResp) Kind() byte { return kindInfo | respBit }
func (m InfoResp) append(b []byte) []byte {
	b = appendString(b, m.Info.Status)
	b = appendU64(b, m.Info.Epoch)
	b = appendInt(b, m.Info.Index)
	b = appendInt(b, m.Info.Count)
	b = appendU32(b, m.Info.Lo)
	b = appendU32(b, m.Info.Hi)
	b = appendString(b, m.Info.RPCAddr)
	b = appendInt(b, m.Info.Blocks)
	b = appendString(b, m.Info.FirstActive)
	b = appendU64(b, m.Info.OldestEpoch)
	b = appendU64(b, m.Info.NewestEpoch)
	return b
}

// Kind implements Msg.
func (HealthReq) Kind() byte             { return kindHealth }
func (HealthReq) append(b []byte) []byte { return b }

// Kind implements Msg.
func (HealthResp) Kind() byte { return kindHealth | respBit }
func (m HealthResp) append(b []byte) []byte {
	b = appendString(b, m.Status)
	b = appendU64(b, m.Epoch)
	b = appendU64(b, m.OldestEpoch)
	b = appendU64(b, m.NewestEpoch)
	b = appendInt(b, m.Blocks)
	b = appendInt(b, m.DailyLen)
	return b
}

// Kind implements Msg.
func (SummaryReq) Kind() byte               { return kindSummary }
func (m SummaryReq) append(b []byte) []byte { return appendU64(b, m.Epoch) }

// Kind implements Msg.
func (SummaryResp) Kind() byte { return kindSummary | respBit }
func (m SummaryResp) append(b []byte) []byte {
	b = appendU64(b, m.Epoch)
	return query.AppendSummaryPartialWire(b, &m.Partial)
}

// Kind implements Msg.
func (ASReq) Kind() byte { return kindAS }
func (m ASReq) append(b []byte) []byte {
	b = appendU32(b, m.ASN)
	return appendU64(b, m.Epoch)
}

// Kind implements Msg.
func (ASResp) Kind() byte { return kindAS | respBit }
func (m ASResp) append(b []byte) []byte {
	b = appendU64(b, m.Epoch)
	return query.AppendASPartialWire(b, &m.Partial)
}

// Kind implements Msg.
func (PrefixReq) Kind() byte { return kindPrefix }
func (m PrefixReq) append(b []byte) []byte {
	b = appendString(b, m.Prefix)
	b = appendInt(b, m.MaxBlocks)
	return appendU64(b, m.Epoch)
}

// Kind implements Msg.
func (PrefixResp) Kind() byte { return kindPrefix | respBit }
func (m PrefixResp) append(b []byte) []byte {
	b = appendU64(b, m.Epoch)
	return query.AppendPrefixPartialWire(b, &m.Partial)
}

// Kind implements Msg.
func (AddrReq) Kind() byte { return kindAddr }
func (m AddrReq) append(b []byte) []byte {
	b = appendU32(b, m.Addr)
	return appendU64(b, m.Epoch)
}

// Kind implements Msg.
func (AddrResp) Kind() byte { return kindAddr | respBit }
func (m AddrResp) append(b []byte) []byte {
	b = appendU64(b, m.Epoch)
	return query.AppendAddrViewWire(b, &m.View)
}

// Kind implements Msg.
func (BlockReq) Kind() byte { return kindBlock }
func (m BlockReq) append(b []byte) []byte {
	b = appendU32(b, m.Block)
	return appendU64(b, m.Epoch)
}

// Kind implements Msg.
func (BlockResp) Kind() byte { return kindBlock | respBit }
func (m BlockResp) append(b []byte) []byte {
	b = appendU64(b, m.Epoch)
	b = appendBool(b, m.Found)
	if m.Found {
		b = query.AppendBlockViewWire(b, &m.View)
	}
	return b
}

// Kind implements Msg.
func (BulkAddrReq) Kind() byte { return kindBulkAddr }
func (m BulkAddrReq) append(b []byte) []byte {
	b = appendInt(b, m.CurrIndex)
	return appendU32s(b, m.Addrs)
}

// Kind implements Msg.
func (BulkAddrResp) Kind() byte { return kindBulkAddr | respBit }
func (m BulkAddrResp) append(b []byte) []byte {
	b = appendU64(b, m.Epoch)
	b = appendInt(b, m.CurrIndex)
	b = appendInt(b, m.NextIndex)
	b = appendBool(b, m.More)
	b = appendU32(b, uint32(len(m.Views)))
	for i := range m.Views {
		b = query.AppendAddrViewWire(b, &m.Views[i])
	}
	return b
}

// Kind implements Msg.
func (BulkBlockReq) Kind() byte { return kindBulkBlock }
func (m BulkBlockReq) append(b []byte) []byte {
	b = appendInt(b, m.CurrIndex)
	return appendU32s(b, m.Blocks)
}

// Kind implements Msg.
func (BulkBlockResp) Kind() byte { return kindBulkBlock | respBit }
func (m BulkBlockResp) append(b []byte) []byte {
	b = appendU64(b, m.Epoch)
	b = appendInt(b, m.CurrIndex)
	b = appendInt(b, m.NextIndex)
	b = appendBool(b, m.More)
	b = appendU32(b, uint32(len(m.Entries)))
	for i := range m.Entries {
		b = appendBool(b, m.Entries[i].Found)
		if m.Entries[i].Found {
			b = query.AppendBlockViewWire(b, &m.Entries[i].View)
		}
	}
	return b
}

// Kind implements Msg.
func (DeltaReq) Kind() byte { return kindDelta }
func (m DeltaReq) append(b []byte) []byte {
	b = appendU64(b, m.From)
	b = appendU64(b, m.To)
	return appendInt(b, m.MaxBlocks)
}

// Kind implements Msg.
func (DeltaResp) Kind() byte { return kindDelta | respBit }
func (m DeltaResp) append(b []byte) []byte {
	b = appendU64(b, m.Oldest)
	b = appendU64(b, m.Newest)
	return query.AppendDeltaPartialWire(b, &m.Partial)
}

// Kind implements Msg.
func (MovementReq) Kind() byte { return kindMovement }
func (m MovementReq) append(b []byte) []byte {
	return appendInt(b, m.Last)
}

// Kind implements Msg.
func (MovementResp) Kind() byte { return kindMovement | respBit }
func (m MovementResp) append(b []byte) []byte {
	b = appendU64(b, m.Oldest)
	b = appendU64(b, m.Newest)
	return query.AppendMovementPartialWire(b, &m.Partial)
}

// Kind implements Msg.
func (ErrorResp) Kind() byte { return kindError }
func (m ErrorResp) append(b []byte) []byte {
	b = appendU32(b, uint32(m.Code))
	b = appendString(b, m.Msg)
	b = appendBool(b, m.NotRetained)
	b = appendU64(b, m.Oldest)
	return appendU64(b, m.Newest)
}

// EncodePayload returns m's canonical payload bytes (the frame body,
// without the kind/id/length header). Exposed for the codec tests and
// the fuzz target.
func EncodePayload(m Msg) []byte { return m.append(nil) }

// DecodePayload decodes one message payload of the given kind. It
// returns *FormatError (or *query.WireError from a nested view codec)
// for structurally invalid input and never panics; trailing bytes are
// an error, so every valid encoding is canonical.
func DecodePayload(kind byte, p []byte) (Msg, error) {
	d := &dec{p: p}
	var m Msg
	switch kind {
	case kindInfo:
		m = InfoReq{}
	case kindInfo | respBit:
		var r InfoResp
		r.Info.Status = d.str()
		r.Info.Epoch = d.u64()
		r.Info.Index = d.i()
		r.Info.Count = d.i()
		r.Info.Lo = d.u32()
		r.Info.Hi = d.u32()
		r.Info.RPCAddr = d.str()
		r.Info.Blocks = d.i()
		r.Info.FirstActive = d.str()
		r.Info.OldestEpoch = d.u64()
		r.Info.NewestEpoch = d.u64()
		m = r
	case kindHealth:
		m = HealthReq{}
	case kindHealth | respBit:
		var r HealthResp
		r.Status = d.str()
		r.Epoch = d.u64()
		r.OldestEpoch = d.u64()
		r.NewestEpoch = d.u64()
		r.Blocks = d.i()
		r.DailyLen = d.i()
		m = r
	case kindSummary:
		m = SummaryReq{Epoch: d.u64()}
	case kindSummary | respBit:
		var r SummaryResp
		r.Epoch = d.u64()
		r.Partial = sub(d, query.DecodeSummaryPartialWire)
		m = r
	case kindAS:
		m = ASReq{ASN: d.u32(), Epoch: d.u64()}
	case kindAS | respBit:
		var r ASResp
		r.Epoch = d.u64()
		r.Partial = sub(d, query.DecodeASPartialWire)
		m = r
	case kindPrefix:
		var r PrefixReq
		r.Prefix = d.str()
		r.MaxBlocks = d.i()
		r.Epoch = d.u64()
		m = r
	case kindPrefix | respBit:
		var r PrefixResp
		r.Epoch = d.u64()
		r.Partial = sub(d, query.DecodePrefixPartialWire)
		m = r
	case kindAddr:
		m = AddrReq{Addr: d.u32(), Epoch: d.u64()}
	case kindAddr | respBit:
		var r AddrResp
		r.Epoch = d.u64()
		r.View = sub(d, query.DecodeAddrViewWire)
		m = r
	case kindBlock:
		m = BlockReq{Block: d.u32(), Epoch: d.u64()}
	case kindBlock | respBit:
		var r BlockResp
		r.Epoch = d.u64()
		r.Found = d.bool()
		if r.Found {
			r.View = sub(d, query.DecodeBlockViewWire)
		}
		m = r
	case kindBulkAddr:
		var r BulkAddrReq
		r.CurrIndex = d.i()
		r.Addrs = d.u32s()
		m = r
	case kindBulkAddr | respBit:
		var r BulkAddrResp
		r.Epoch = d.u64()
		r.CurrIndex = d.i()
		r.NextIndex = d.i()
		r.More = d.bool()
		// 80 = minimum encoded AddrView: 8 empty strings (4 bytes each),
		// 3 ints + 2 floats (8 bytes each), 4 bools, the AS u32.
		n := d.count(80)
		r.Views = make([]query.AddrView, n)
		for i := range r.Views {
			r.Views[i] = sub(d, query.DecodeAddrViewWire)
		}
		m = r
	case kindBulkBlock:
		var r BulkBlockReq
		r.CurrIndex = d.i()
		r.Blocks = d.u32s()
		m = r
	case kindBulkBlock | respBit:
		var r BulkBlockResp
		r.Epoch = d.u64()
		r.CurrIndex = d.i()
		r.NextIndex = d.i()
		r.More = d.bool()
		n := d.count(1) // 1 = a not-found entry's lone bool
		r.Entries = make([]BlockEntry, n)
		for i := range r.Entries {
			r.Entries[i].Found = d.bool()
			if r.Entries[i].Found {
				r.Entries[i].View = sub(d, query.DecodeBlockViewWire)
			}
		}
		m = r
	case kindDelta:
		var r DeltaReq
		r.From = d.u64()
		r.To = d.u64()
		r.MaxBlocks = d.i()
		m = r
	case kindDelta | respBit:
		var r DeltaResp
		r.Oldest = d.u64()
		r.Newest = d.u64()
		r.Partial = sub(d, query.DecodeDeltaPartialWire)
		m = r
	case kindMovement:
		m = MovementReq{Last: d.i()}
	case kindMovement | respBit:
		var r MovementResp
		r.Oldest = d.u64()
		r.Newest = d.u64()
		r.Partial = sub(d, query.DecodeMovementPartialWire)
		m = r
	case kindError:
		var r ErrorResp
		r.Code = int(d.u32())
		r.Msg = d.str()
		r.NotRetained = d.bool()
		r.Oldest = d.u64()
		r.Newest = d.u64()
		m = r
	default:
		return nil, formatErrf("unknown frame kind 0x%02x", kind)
	}
	if err := d.finish(kind); err != nil {
		return nil, err
	}
	return m, nil
}

// --- preface + frame I/O ----------------------------------------------

// writePreface writes the magic + version preface.
func writePreface(w io.Writer) error {
	var buf [8]byte
	copy(buf[:], magic)
	binary.BigEndian.PutUint16(buf[6:], Version)
	_, err := w.Write(buf[:])
	return err
}

// readPreface validates the peer's magic + version preface.
func readPreface(r io.Reader) error {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return ErrTruncated
		}
		return err
	}
	if string(buf[:6]) != string(magic) {
		return formatErrf("bad stream magic %q", buf[:6])
	}
	if v := binary.BigEndian.Uint16(buf[6:]); v != Version {
		return formatErrf("unsupported protocol version %d (want %d)", v, Version)
	}
	return nil
}

// frameBufPool recycles frame scratch buffers between pipelined
// round trips: the write side assembles header+payload in one pooled
// buffer (one Write, no per-frame payload allocation) and the read side
// reads payloads into a pooled buffer that is safe to reuse because
// DecodePayload copies everything it keeps (strings via string(b),
// slices element-wise or with explicit appends). Buffers above
// maxPooledFrame are dropped so one bulk page cannot pin its footprint
// behind every P.
var frameBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

const maxPooledFrame = 1 << 20

// recycleFrameBuf returns b (possibly grown by append) to the pool
// through its slot bp, unless it outgrew the retention cap.
func recycleFrameBuf(bp *[]byte, b []byte) {
	if cap(b) <= maxPooledFrame {
		*bp = b[:0]
		frameBufPool.Put(bp)
	}
}

// writeFrame writes one message frame. The caller flushes.
func writeFrame(w io.Writer, id uint32, m Msg) error {
	bp := frameBufPool.Get().(*[]byte)
	b := append((*bp)[:0], m.Kind(), 0, 0, 0, 0, 0, 0, 0, 0)
	b = m.append(b)
	n := len(b) - 9
	if n > maxFrameLen {
		recycleFrameBuf(bp, b)
		return formatErrf("frame of %d bytes exceeds the %d-byte limit", n, maxFrameLen)
	}
	binary.BigEndian.PutUint32(b[1:], id)
	binary.BigEndian.PutUint32(b[5:], uint32(n))
	_, err := w.Write(b)
	recycleFrameBuf(bp, b)
	return err
}

// readFrame reads one message frame.
func readFrame(r io.Reader) (id uint32, m Msg, err error) {
	var hdr [9]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, nil, ErrTruncated
		}
		return 0, nil, err // io.EOF between frames = clean close
	}
	kind := hdr[0]
	id = binary.BigEndian.Uint32(hdr[1:])
	n := binary.BigEndian.Uint32(hdr[5:])
	if n > maxFrameLen {
		return 0, nil, formatErrf("frame length %d exceeds limit", n)
	}
	bp := frameBufPool.Get().(*[]byte)
	var payload []byte
	if uint32(cap(*bp)) >= n {
		payload = (*bp)[:n]
	} else {
		payload = make([]byte, n)
		*bp = payload[:0]
	}
	if _, err := io.ReadFull(r, payload); err != nil {
		frameBufPool.Put(bp)
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, nil, ErrTruncated
		}
		return 0, nil, err
	}
	m, err = DecodePayload(kind, payload)
	if cap(payload) <= maxPooledFrame {
		frameBufPool.Put(bp)
	}
	return id, m, err
}
