package rpc

import (
	"bufio"
	"context"
	"net"
	"net/http"
	"strconv"
	"sync"

	"ipscope/internal/bgp"
	"ipscope/internal/history"
	"ipscope/internal/ipv4"
	"ipscope/internal/query"
	"ipscope/internal/serve/wire"
)

// DefaultBulkPage bounds how many entries one bulk response carries
// when Options.BulkPage is 0; clients page with CurrIndex/NextIndex.
const DefaultBulkPage = 256

// Backend is the shard state the RPC server answers from —
// serve.Server implements it, so the HTTP and RPC listeners of one
// shard serve the same atomically-published snapshots.
type Backend interface {
	// Index returns the current snapshot (nil while warming).
	Index() *query.Index
	// Shard returns the partition coordinates.
	Shard() wire.ShardInfo
	// ClusterInfo returns the /v1/cluster/info equivalent.
	ClusterInfo() wire.ClusterInfo
	// Health returns the /v1/healthz equivalent.
	Health() wire.Health
	// History returns the retained-snapshot ring — the same ring the
	// HTTP listener answers ?epoch=/delta/movement from, so the two
	// transports cannot disagree about what is retained.
	History() *history.Ring
}

// Options tunes a Server.
type Options struct {
	// BulkPage caps entries per bulk response; 0 means DefaultBulkPage.
	// Tests shrink it to force paging across the More boundary.
	BulkPage int
}

// Server answers the binary RPC protocol over persistent TCP
// connections. Each connection's requests are handled sequentially in
// arrival order (responses echo the request id, so a pipelining client
// matches them up); separate connections are independent.
type Server struct {
	be   Backend
	page int

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer returns a Server answering from be.
func NewServer(be Backend, opts Options) *Server {
	page := opts.BulkPage
	if page <= 0 {
		page = DefaultBulkPage
	}
	return &Server{be: be, page: page, conns: make(map[net.Conn]struct{})}
}

// Listen binds addr ("127.0.0.1:0" for an ephemeral port) and serves in
// the background until Shutdown.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serveConn(conn)
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
		}
	}()
	return ln.Addr(), nil
}

// Shutdown closes the listener and every open connection, then waits
// for the connection handlers to exit (bounded by ctx).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// serveConn runs one connection's request loop: preface exchange, then
// frames until the peer closes or a protocol error occurs. The write
// buffer is flushed only when no further request is already buffered,
// so a pipelined burst is answered in one writev instead of one flush
// per response.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<16)
	if err := readPreface(br); err != nil {
		return
	}
	if err := writePreface(bw); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}
	for {
		id, req, err := readFrame(br)
		if err != nil {
			return // clean close, truncation, or garbage: drop the conn
		}
		if err := writeFrame(bw, id, s.handle(req)); err != nil {
			return
		}
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// handle answers one request. Data requests against a warming shard
// (no published snapshot) answer the typed form of the HTTP 503.
func (s *Server) handle(req Msg) Msg {
	switch r := req.(type) {
	case InfoReq:
		return InfoResp{Info: s.be.ClusterInfo()}
	case HealthReq:
		h := s.be.Health()
		return HealthResp{
			Status: h.Status, Epoch: h.Epoch,
			OldestEpoch: h.OldestEpoch, NewestEpoch: h.NewestEpoch,
			Blocks: h.Blocks, DailyLen: h.DailyLen,
		}
	default:
		x := s.be.Index()
		if x == nil {
			return ErrorResp{Code: http.StatusServiceUnavailable, Msg: wire.WarmingError}
		}
		return s.handleData(x, r)
	}
}

// notRetained builds the typed form of the not-retained 404 from the
// ring's current range.
func (s *Server) notRetained(asked uint64) Msg {
	oldest, newest, _ := s.be.History().Range()
	return ErrorResp{
		Code:        http.StatusNotFound,
		Msg:         wire.ErrEpochNotRetained(asked, oldest, newest),
		NotRetained: true,
		Oldest:      oldest,
		Newest:      newest,
	}
}

// resolve swaps x for the retained snapshot a non-zero request epoch
// names (epoch 0 = the live snapshot); the second return is the typed
// 404 on an unretained epoch.
func (s *Server) resolve(x *query.Index, epoch uint64) (*query.Index, Msg) {
	if epoch == 0 {
		return x, nil
	}
	hx, ok := s.be.History().Get(epoch)
	if !ok {
		return nil, s.notRetained(epoch)
	}
	return hx, nil
}

func (s *Server) handleData(x *query.Index, req Msg) Msg {
	switch r := req.(type) {
	case SummaryReq:
		x, errMsg := s.resolve(x, r.Epoch)
		if errMsg != nil {
			return errMsg
		}
		return SummaryResp{Epoch: x.Epoch(), Partial: x.SummaryPartial()}
	case ASReq:
		x, errMsg := s.resolve(x, r.Epoch)
		if errMsg != nil {
			return errMsg
		}
		return ASResp{Epoch: x.Epoch(), Partial: x.ASPartial(bgp.ASN(r.ASN))}
	case PrefixReq:
		x, errMsg := s.resolve(x, r.Epoch)
		if errMsg != nil {
			return errMsg
		}
		p, err := ipv4.ParsePrefix(r.Prefix)
		if err != nil {
			return ErrorResp{Code: http.StatusBadRequest, Msg: err.Error()}
		}
		partial, err := x.PrefixPartial(p, r.MaxBlocks)
		if err != nil {
			return ErrorResp{Code: http.StatusBadRequest, Msg: err.Error()}
		}
		return PrefixResp{Epoch: x.Epoch(), Partial: partial}
	case AddrReq:
		x, errMsg := s.resolve(x, r.Epoch)
		if errMsg != nil {
			return errMsg
		}
		return AddrResp{Epoch: x.Epoch(), View: x.Addr(ipv4.Addr(r.Addr))}
	case BlockReq:
		x, errMsg := s.resolve(x, r.Epoch)
		if errMsg != nil {
			return errMsg
		}
		v, ok := x.Block(ipv4.Block(r.Block))
		return BlockResp{Epoch: x.Epoch(), Found: ok, View: v}
	case DeltaReq:
		ring := s.be.History()
		if r.From >= r.To {
			return ErrorResp{Code: http.StatusBadRequest, Msg: wire.ErrDeltaParams(
				strconv.FormatUint(r.From, 10), strconv.FormatUint(r.To, 10))}
		}
		// Probe from first, then to — the order the HTTP handler and the
		// router both use, so every transport blames the same epoch.
		for _, e := range [2]uint64{r.From, r.To} {
			if _, ok := ring.Get(e); !ok {
				return s.notRetained(e)
			}
		}
		partial, ok, err := ring.Delta(r.From, r.To, r.MaxBlocks)
		if !ok {
			return s.notRetained(r.From)
		}
		if err != nil {
			return ErrorResp{Code: http.StatusBadRequest, Msg: err.Error()}
		}
		oldest, newest, _ := ring.Range()
		return DeltaResp{Oldest: oldest, Newest: newest, Partial: partial}
	case MovementReq:
		ring := s.be.History()
		oldest, newest, _ := ring.Range()
		return MovementResp{Oldest: oldest, Newest: newest, Partial: ring.Movement(r.Last)}
	case BulkAddrReq:
		lo, hi, more := s.pageBounds(r.CurrIndex, len(r.Addrs))
		resp := BulkAddrResp{Epoch: x.Epoch(), CurrIndex: lo, NextIndex: hi, More: more}
		resp.Views = make([]query.AddrView, 0, hi-lo)
		for _, a := range r.Addrs[lo:hi] {
			resp.Views = append(resp.Views, x.Addr(ipv4.Addr(a)))
		}
		return resp
	case BulkBlockReq:
		lo, hi, more := s.pageBounds(r.CurrIndex, len(r.Blocks))
		resp := BulkBlockResp{Epoch: x.Epoch(), CurrIndex: lo, NextIndex: hi, More: more}
		resp.Entries = make([]BlockEntry, 0, hi-lo)
		for _, blk := range r.Blocks[lo:hi] {
			v, ok := x.Block(ipv4.Block(blk))
			resp.Entries = append(resp.Entries, BlockEntry{Found: ok, View: v})
		}
		return resp
	}
	return ErrorResp{Code: http.StatusBadRequest, Msg: "unexpected request kind"}
}

// pageBounds clamps a bulk request's CurrIndex to [0, n] and answers at
// most one page from there.
func (s *Server) pageBounds(curr, n int) (lo, hi int, more bool) {
	lo = curr
	if lo < 0 {
		lo = 0
	}
	if lo > n {
		lo = n
	}
	hi = lo + s.page
	if hi > n {
		hi = n
	}
	return lo, hi, hi < n
}
