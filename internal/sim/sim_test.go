package sim

import (
	"testing"
	"time"

	"ipscope/internal/ipv4"
	"ipscope/internal/synthnet"
)

func tinyRun(t testing.TB) *Result {
	t.Helper()
	w := synthnet.Generate(synthnet.TinyConfig())
	return Run(w, TinyConfig())
}

func TestRunShapes(t *testing.T) {
	res := tinyRun(t)
	cfg := res.Config
	if len(res.Daily) != cfg.DailyLen {
		t.Fatalf("daily sets = %d, want %d", len(res.Daily), cfg.DailyLen)
	}
	if len(res.Weekly) != cfg.Days/7 {
		t.Fatalf("weekly sets = %d, want %d", len(res.Weekly), cfg.Days/7)
	}
	if len(res.ICMPScans) != len(cfg.ICMPScanDays) {
		t.Fatalf("icmp scans = %d", len(res.ICMPScans))
	}
	for i, s := range res.Daily {
		if s == nil || s.Len() == 0 {
			t.Fatalf("day %d empty", i)
		}
	}
	for i, s := range res.Weekly {
		if s.Len() == 0 {
			t.Fatalf("week %d empty", i)
		}
	}
	if res.DailyTotalHits[0] <= 0 {
		t.Fatal("no traffic")
	}
}

func TestRunDeterministic(t *testing.T) {
	w := synthnet.Generate(synthnet.TinyConfig())
	r1 := Run(w, TinyConfig())
	w2 := synthnet.Generate(synthnet.TinyConfig())
	r2 := Run(w2, TinyConfig())
	for i := range r1.Daily {
		if !r1.Daily[i].Equal(r2.Daily[i]) {
			t.Fatalf("day %d differs", i)
		}
	}
	if len(r1.Restructures) != len(r2.Restructures) {
		t.Fatal("restructure schedule differs")
	}
	if r1.WeeklyTopShare[0] != r2.WeeklyTopShare[0] {
		t.Fatal("top share differs")
	}
}

func TestWeekendDip(t *testing.T) {
	res := tinyRun(t)
	var wkdaySum, wkdayN, wkendSum, wkendN float64
	for i, s := range res.Daily {
		day := res.Config.DailyStart + i
		if weekendOf(day) {
			wkendSum += float64(s.Len())
			wkendN++
		} else {
			wkdaySum += float64(s.Len())
			wkdayN++
		}
	}
	if wkendN == 0 || wkdayN == 0 {
		t.Skip("window too short for weekends")
	}
	if wkendSum/wkendN >= wkdaySum/wkdayN {
		t.Errorf("weekend mean %.0f >= weekday mean %.0f; expected dip",
			wkendSum/wkendN, wkdaySum/wkdayN)
	}
}

// policyBlocks returns blocks of the given policy that were not
// restructured during the run.
func stablePolicyBlocks(res *Result, pol synthnet.Policy) []*synthnet.Block {
	changed := map[ipv4.Block]bool{}
	for _, re := range res.Restructures {
		re.Prefix.Blocks(func(b ipv4.Block) { changed[b] = true })
	}
	var out []*synthnet.Block
	for _, b := range res.World.Blocks {
		if b.Policy == pol && !changed[b.Block] {
			out = append(out, b)
		}
	}
	return out
}

func fillingDegree(res *Result, blk ipv4.Block) int {
	u := ipv4.NewSet()
	for _, s := range res.Daily {
		if bm := s.BlockBitmap(blk); bm != nil {
			u.AddBlockBitmap(blk, bm)
		}
	}
	return u.Len()
}

func stu(res *Result, blk ipv4.Block) float64 {
	active := 0
	for _, s := range res.Daily {
		active += s.BlockCount(blk)
	}
	return float64(active) / float64(len(res.Daily)*256)
}

func TestPolicySignatures(t *testing.T) {
	w := synthnet.Generate(synthnet.Config{Seed: 3, NumASes: 120, MeanBlocksPerAS: 10})
	res := Run(w, TinyConfig())

	check := func(pol synthnet.Policy, fdLo, fdHi int, stuLo, stuHi float64) {
		blocks := stablePolicyBlocks(res, pol)
		if len(blocks) == 0 {
			t.Fatalf("no stable %v blocks", pol)
		}
		var fdSum, stuSum float64
		for _, b := range blocks {
			fdSum += float64(fillingDegree(res, b.Block))
			stuSum += stu(res, b.Block)
		}
		fd := fdSum / float64(len(blocks))
		s := stuSum / float64(len(blocks))
		if fd < float64(fdLo) || fd > float64(fdHi) {
			t.Errorf("%v: mean FD = %.1f, want [%d,%d]", pol, fd, fdLo, fdHi)
		}
		if s < stuLo || s > stuHi {
			t.Errorf("%v: mean STU = %.3f, want [%.2f,%.2f]", pol, s, stuLo, stuHi)
		}
	}

	// Paper Figure 6 signatures: static sparse = low FD low STU;
	// round-robin = high FD, low-mid STU; 24h-lease = very high FD,
	// high STU; long-lease in between.
	check(synthnet.StaticSparse, 5, 110, 0.005, 0.25)
	check(synthnet.DynamicRoundRobin, 150, 256, 0.02, 0.45)
	check(synthnet.DynamicDaily, 240, 256, 0.35, 1.0)
	check(synthnet.DynamicLongLease, 150, 256, 0.15, 0.8)
}

func TestDynamicFDExceedsStatic(t *testing.T) {
	res := tinyRun(t)
	var statFD, statN, dynFD, dynN float64
	for _, b := range stablePolicyBlocks(res, synthnet.StaticSparse) {
		statFD += float64(fillingDegree(res, b.Block))
		statN++
	}
	for _, b := range stablePolicyBlocks(res, synthnet.DynamicDaily) {
		dynFD += float64(fillingDegree(res, b.Block))
		dynN++
	}
	if statN == 0 || dynN == 0 {
		t.Skip("tiny world lacks one class")
	}
	if dynFD/dynN <= statFD/statN {
		t.Errorf("dynamic FD %.0f <= static FD %.0f", dynFD/dynN, statFD/statN)
	}
}

func TestRestructureChangesBehaviour(t *testing.T) {
	w := synthnet.Generate(synthnet.Config{Seed: 5, NumASes: 120, MeanBlocksPerAS: 10})
	cfg := TinyConfig()
	cfg.PrefixChangeFrac = 0.3
	res := Run(w, cfg)
	if len(res.Restructures) == 0 {
		t.Fatal("no restructures scheduled")
	}
	// Find a Deactivate restructure inside the daily window and verify
	// the block really goes dark afterwards.
	verified := false
	for _, re := range res.Restructures {
		if re.Kind != Deactivate {
			continue
		}
		if re.Day < cfg.DailyStart+2 || re.Day >= cfg.DailyStart+cfg.DailyLen-2 {
			continue
		}
		blk := re.Prefix.FirstBlock()
		before, after := 0, 0
		for i, s := range res.Daily {
			day := cfg.DailyStart + i
			c := s.BlockCount(blk)
			if day < re.Day {
				before += c
			} else {
				after += c
			}
		}
		if before == 0 {
			continue // was already quiet
		}
		if after != 0 {
			t.Errorf("block %v active after deactivation (%d)", blk, after)
		}
		verified = true
		break
	}
	if !verified {
		t.Skip("no deactivation fell inside the daily window")
	}
}

func TestInfrastructureInvisibleToCDN(t *testing.T) {
	res := tinyRun(t)
	union := res.YearUnion()
	for _, b := range res.World.Blocks {
		if b.Policy != synthnet.InfraRouters {
			continue
		}
		if changedTo(res, b.Block) {
			continue
		}
		if n := union.BlockCount(b.Block); n != 0 {
			t.Errorf("router block %v has %d CDN-active addrs", b.Block, n)
		}
	}
	if res.RouterSet.Len() == 0 {
		t.Error("no routers visible to traceroute")
	}
	if res.ServerSet.Len() == 0 {
		t.Error("no servers visible to service scans")
	}
}

func changedTo(res *Result, blk ipv4.Block) bool {
	for _, re := range res.Restructures {
		if re.Prefix.Contains(blk.First()) {
			return true
		}
	}
	return false
}

func TestICMPScansPlausible(t *testing.T) {
	res := tinyRun(t)
	icmp := res.ICMPUnion()
	if icmp.Len() == 0 {
		t.Fatal("ICMP sees nothing")
	}
	// The CDN must see a large population invisible to ICMP (paper: >40%
	// at IP level) and ICMP must see some addresses the CDN does not
	// (servers, routers, idle leases).
	cdn := res.DailyWindowUnion()
	cdnOnly := cdn.DiffCount(icmp)
	icmpOnly := icmp.DiffCount(cdn)
	if cdnOnly == 0 {
		t.Error("no CDN-only addresses")
	}
	if icmpOnly == 0 {
		t.Error("no ICMP-only addresses")
	}
	frac := float64(cdnOnly) / float64(cdn.Len())
	if frac < 0.15 || frac > 0.9 {
		t.Errorf("CDN-only fraction = %.2f, want a large minority", frac)
	}
}

func TestTrafficAggregates(t *testing.T) {
	res := tinyRun(t)
	days := len(res.Daily)
	totHits := 0.0
	for blk, bt := range res.Traffic {
		for h := 0; h < 256; h++ {
			if int(bt.DaysActive[h]) > days {
				t.Fatalf("block %v host %d active %d > %d days", blk, h, bt.DaysActive[h], days)
			}
			if bt.DaysActive[h] == 0 && bt.Hits[h] > 0 {
				t.Fatalf("hits without activity at %v/%d", blk, h)
			}
			totHits += bt.Hits[h]
		}
	}
	var windowTotal float64
	for _, v := range res.DailyTotalHits {
		windowTotal += v
	}
	if diff := totHits - windowTotal; diff > 1e-3*windowTotal || diff < -1e-3*windowTotal {
		t.Errorf("per-IP hits %.0f != daily totals %.0f", totHits, windowTotal)
	}
}

func TestGatewayTrafficDominates(t *testing.T) {
	w := synthnet.Generate(synthnet.Config{Seed: 7, NumASes: 150, MeanBlocksPerAS: 10})
	res := Run(w, TinyConfig())
	var gwMean, gwN, resMean, resN float64
	for _, b := range res.World.Blocks {
		bt := res.Traffic[b.Block]
		if bt == nil || changedTo(res, b.Block) {
			continue
		}
		var sum float64
		for h := 0; h < 256; h++ {
			sum += bt.Hits[h]
		}
		switch b.Policy {
		case synthnet.Gateway:
			gwMean += sum
			gwN++
		case synthnet.DynamicLongLease:
			resMean += sum
			resN++
		}
	}
	if gwN == 0 || resN == 0 {
		t.Skip("missing classes")
	}
	if gwMean/gwN <= 3*resMean/resN {
		t.Errorf("gateway block traffic %.0f not >> residential %.0f", gwMean/gwN, resMean/resN)
	}
}

func TestUAStats(t *testing.T) {
	w := synthnet.Generate(synthnet.Config{Seed: 9, NumASes: 150, MeanBlocksPerAS: 10})
	res := Run(w, TinyConfig())
	if len(res.UA) == 0 {
		t.Fatal("no UA samples at all")
	}
	var gwUnique, botUnique []float64
	for _, b := range res.World.Blocks {
		st := res.UA[b.Block]
		if st == nil || changedTo(res, b.Block) {
			continue
		}
		switch b.Policy {
		case synthnet.Gateway:
			gwUnique = append(gwUnique, st.Unique())
		case synthnet.BotFarm:
			botUnique = append(botUnique, st.Unique())
		}
	}
	if len(gwUnique) == 0 || len(botUnique) == 0 {
		t.Skip("missing classes for UA comparison")
	}
	gw, bot := mean(gwUnique), mean(botUnique)
	if gw <= bot*3 {
		t.Errorf("gateway UA diversity %.1f not >> bot %.1f", gw, bot)
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestWeeklyTopShare(t *testing.T) {
	res := tinyRun(t)
	for wk, v := range res.WeeklyTopShare {
		if v <= 0 || v > 1 {
			t.Fatalf("week %d top share = %v", wk, v)
		}
	}
	// Consolidation mechanism: with the traffic-growth knob turned up,
	// heavy hitters must visibly gain share over the run. (The subtle
	// paper-level trend at the default knob is asserted at larger scale
	// in internal/analysis.)
	w := synthnet.Generate(synthnet.Config{Seed: 13, NumASes: 120, MeanBlocksPerAS: 10})
	cfg := TinyConfig()
	cfg.TrafficGrowth = 1.5
	grown := Run(w, cfg)
	n := len(grown.WeeklyTopShare)
	early := mean(grown.WeeklyTopShare[:n/4])
	late := mean(grown.WeeklyTopShare[3*n/4:])
	if late <= early {
		t.Errorf("no consolidation with growth knob: early %.3f late %.3f", early, late)
	}
}

func TestBGPLogPopulated(t *testing.T) {
	res := tinyRun(t)
	if res.Routing == nil || res.Routing.NumDays() != res.Config.Days {
		t.Fatal("routing log missing")
	}
	counts := res.Routing.CountsByKind(-1, res.Config.Days-1)
	total := 0
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		t.Error("no BGP events at all")
	}
}

func TestConfigNormalization(t *testing.T) {
	c := normalize(Config{Days: 30})
	if c.DailyStart+c.DailyLen > c.Days {
		t.Errorf("window overflows: %+v", c)
	}
	if c.UADays > c.DailyLen {
		t.Errorf("UA window too long: %+v", c)
	}
	if len(c.ICMPScanDays) == 0 {
		t.Error("no scan days")
	}
	for _, d := range c.ICMPScanDays {
		if d < 0 || d >= c.Days {
			t.Errorf("scan day %d out of range", d)
		}
	}
}

func TestRestructureKindString(t *testing.T) {
	for k, want := range map[RestructureKind]string{
		PolicySwitch: "policy-switch", Deactivate: "deactivate",
		Activate: "activate", RestructureKind(9): "unknown",
	} {
		if k.String() != want {
			t.Errorf("%d = %q", k, k.String())
		}
	}
}

func TestMacroGrowth(t *testing.T) {
	series := MacroGrowth(1)
	if len(series) < 100 {
		t.Fatalf("series too short: %d", len(series))
	}
	// Reproducible.
	again := MacroGrowth(1)
	for i := range series {
		if series[i] != again[i] {
			t.Fatal("macro growth not deterministic")
		}
	}
	// Linear phase grows strongly; stagnation phase is nearly flat.
	knee := MonthIndex(series, time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC))
	growth1 := series[knee].ActiveIPs - series[0].ActiveIPs
	growth2 := series[len(series)-1].ActiveIPs - series[knee].ActiveIPs
	if growth1 < 5*growth2 {
		t.Errorf("no stagnation: pre-2014 %.0f, post %.0f", growth1, growth2)
	}
	if series[0].ActiveIPs > series[knee].ActiveIPs {
		t.Error("pre-knee growth not positive")
	}
}
