package sim

import (
	"time"

	"ipscope/internal/xrand"
)

// MonthPoint is one month's unique active IPv4 address count, in the
// paper's absolute units (addresses).
type MonthPoint struct {
	Date      time.Time // first of month, UTC
	ActiveIPs float64
}

// MacroGrowth produces the 2008-01..2016-06 monthly active-IPv4 series
// behind Figure 1: near-perfect linear growth for years, then a sudden
// stagnation at the start of 2014. This is the one dataset modelled at
// macro level rather than per-IP: the per-IP simulator covers one year,
// while Figure 1 spans eight (see EXPERIMENTS.md, FIG1).
func MacroGrowth(seed uint64) []MonthPoint {
	r := xrand.New(seed, "macro-growth")
	const (
		startIPs  = 340e6 // Jan 2008
		kneeIPs   = 795e6 // Jan 2014: growth stops
		kneeMonth = 72    // months from Jan 2008 to Jan 2014
	)
	var out []MonthPoint
	date := time.Date(2008, 1, 1, 0, 0, 0, 0, time.UTC)
	for m := 0; date.Year() < 2016 || date.Month() <= time.June; m++ {
		var v float64
		if m <= kneeMonth {
			v = startIPs + (kneeIPs-startIPs)*float64(m)/kneeMonth
		} else {
			// Stagnation: a very slow drift with slight saturation.
			v = kneeIPs + 8e6*(1-1/(1+float64(m-kneeMonth)/12))
		}
		// Seasonal wiggle and measurement noise (~0.5%).
		v *= 1 + 0.005*r.NormFloat64()
		out = append(out, MonthPoint{Date: date, ActiveIPs: v})
		date = date.AddDate(0, 1, 0)
	}
	return out
}

// MonthIndex returns the series index of the first point at or after t,
// or len(series) if none.
func MonthIndex(series []MonthPoint, t time.Time) int {
	for i, p := range series {
		if !p.Date.Before(t) {
			return i
		}
	}
	return len(series)
}
