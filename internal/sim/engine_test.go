package sim

import (
	"testing"

	"ipscope/internal/bgp"
	"ipscope/internal/synthnet"
)

func TestWeekendOf(t *testing.T) {
	// Day 0 = Thursday 2015-01-01; Saturday is day 2, Sunday day 3.
	weekends := map[int]bool{0: false, 1: false, 2: true, 3: true, 4: false, 9: true, 10: true}
	for d, want := range weekends {
		if got := weekendOf(d); got != want {
			t.Errorf("weekendOf(%d) = %v, want %v", d, got, want)
		}
	}
}

func TestBGPCouplingKinds(t *testing.T) {
	w := synthnet.Generate(synthnet.Config{Seed: 41, NumASes: 60, MeanBlocksPerAS: 8})
	cfg := TinyConfig()
	cfg.PrefixChangeFrac = 0.5
	cfg.BGPCoupleProb = 1 // every restructure visible in BGP
	cfg.BGPNoisePerDay = 0
	res := Run(w, cfg)

	if len(res.Restructures) == 0 {
		t.Fatal("no restructures")
	}
	prefixLevel := 0
	for _, re := range res.Restructures {
		if re.Prefix.Bits() == 24 && re.Prefix.NumBlocks() == 1 {
			// Could be a block-level change (never BGP coupled); only
			// check prefix-level ones below via BGPVisible.
		}
		if !re.BGPVisible {
			continue
		}
		prefixLevel++
		// The change log must contain a matching event on that day.
		found := false
		for _, c := range res.Routing.ChangesIn(re.Day-1, re.Day) {
			if c.Prefix == re.Prefix && c.Kind == re.BGPKind {
				found = true
			}
		}
		if !found {
			t.Errorf("restructure %v day %d kind %v not in change log",
				re.Prefix, re.Day, re.BGPKind)
		}
		// Kind mapping per Table 2 semantics.
		switch re.Kind {
		case Activate:
			if re.BGPKind != bgp.Announce {
				t.Errorf("activate coupled to %v", re.BGPKind)
			}
		case Deactivate:
			if re.BGPKind != bgp.Withdraw && re.BGPKind != bgp.OriginChange {
				t.Errorf("deactivate coupled to %v", re.BGPKind)
			}
		default:
			if re.BGPKind != bgp.OriginChange {
				t.Errorf("policy switch coupled to %v", re.BGPKind)
			}
		}
	}
	if prefixLevel == 0 {
		t.Fatal("no BGP-visible restructures despite couple prob 1")
	}
}

func TestBGPNoiseFlaps(t *testing.T) {
	w := synthnet.Generate(synthnet.TinyConfig())
	cfg := TinyConfig()
	cfg.PrefixChangeFrac = 0
	cfg.BlockChangeFrac = 0
	cfg.BGPCoupleProb = 0
	cfg.BGPNoisePerDay = 20 // loud
	res := Run(w, cfg)
	counts := res.Routing.CountsByKind(-1, cfg.Days-1)
	if counts[bgp.Withdraw] == 0 || counts[bgp.Announce] == 0 {
		t.Fatalf("noise produced no flaps: %v", counts)
	}
	// Flaps re-announce: announce counts track withdraws closely.
	diff := counts[bgp.Withdraw] - counts[bgp.Announce]
	if diff < 0 {
		diff = -diff
	}
	if diff > counts[bgp.Withdraw]/2+2 {
		t.Errorf("unbalanced flaps: %v", counts)
	}
}

func TestNoBGPEventsWhenDisabled(t *testing.T) {
	w := synthnet.Generate(synthnet.TinyConfig())
	cfg := TinyConfig()
	cfg.BGPCoupleProb = 0
	cfg.BGPNoisePerDay = 0
	res := Run(w, cfg)
	if got := res.Routing.CountsByKind(-1, cfg.Days-1); len(got) != 0 {
		t.Errorf("BGP events despite disabled sources: %v", got)
	}
}

func TestActivatedBlocksComeAlive(t *testing.T) {
	w := synthnet.Generate(synthnet.Config{Seed: 43, NumASes: 120, MeanBlocksPerAS: 10})
	cfg := TinyConfig()
	cfg.BlockChangeFrac = 0.5 // force many single-block changes
	res := Run(w, cfg)

	activated := 0
	for _, re := range res.Restructures {
		if re.Kind != Activate || re.Prefix.NumBlocks() != 1 {
			continue
		}
		blk := re.Prefix.FirstBlock()
		info, _ := w.BlockInfo(blk)
		if info.Policy != synthnet.Unused {
			continue
		}
		activated++
		// Active after the change day (check the weekly set covering a
		// later period).
		wk := (re.Day + 7) / 7
		if wk >= len(res.Weekly) {
			wk = len(res.Weekly) - 1
		}
		if res.Weekly[wk].BlockCount(blk) == 0 {
			t.Errorf("activated block %v silent in week %d (change day %d)", blk, wk, re.Day)
		}
	}
	if activated == 0 {
		t.Skip("no unused blocks activated in this world")
	}
}

func TestWeeklyContainsDaily(t *testing.T) {
	res := tinyRun(t)
	cfg := res.Config
	for i, day := range res.Daily {
		wk := (cfg.DailyStart + i) / 7
		if wk >= len(res.Weekly) {
			wk = len(res.Weekly) - 1
		}
		if day.DiffCount(res.Weekly[wk]) != 0 {
			t.Fatalf("day %d not contained in week %d", i, wk)
		}
	}
	year := res.YearUnion()
	for wk, s := range res.Weekly {
		if s.DiffCount(year) != 0 {
			t.Fatalf("week %d not in year union", wk)
		}
	}
}

func TestICMPScansVary(t *testing.T) {
	res := tinyRun(t)
	if len(res.ICMPScans) < 2 {
		t.Skip("not enough scans")
	}
	same := true
	for i := 1; i < len(res.ICMPScans); i++ {
		if !res.ICMPScans[i].Equal(res.ICMPScans[0]) {
			same = false
			break
		}
	}
	if same {
		t.Error("all ICMP snapshots identical; lease dynamics missing")
	}
}
