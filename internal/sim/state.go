package sim

import (
	"fmt"
	"math/rand"

	"ipscope/internal/ipv4"
	"ipscope/internal/synthnet"
	"ipscope/internal/useragent"
	"ipscope/internal/xrand"
)

// subscriber is one customer (or host) of a block.
type subscriber struct {
	rate    float64 // daily activity probability when alive
	mean    float64 // mean daily hits when active
	from    int16   // first day alive (inclusive)
	to      int16   // last day alive (exclusive)
	host    int16   // currently held address, or -1
	lease   int16   // remaining lease days (long-lease policy)
	devSeed uint64  // base seed for the subscriber's devices
	ndev    uint8   // number of devices
}

func (s *subscriber) alive(day int) bool {
	return int(s.from) <= day && day < int(s.to)
}

// blockState is the per-/24 runtime state of the simulator.
type blockState struct {
	info *synthnet.Block
	pol  synthnet.Policy
	subs []subscriber
	rng  *rand.Rand
	// sampler draws the block's UA header samples. It is per-block (not
	// shared across the run) so blocks consume independent streams and
	// the observation loop can be sharded without coupling.
	sampler *useragent.Sampler

	// pingable marks hosts whose CPE/server answers ICMP; fixed per
	// configuration (hardware does not change daily).
	pingable ipv4.Bitmap256
	// occupied marks hosts currently held by a lease or static config.
	occupied ipv4.Bitmap256
	// perm is a fixed random host permutation used for assignments.
	perm [256]byte
	// offset is the round-robin pool cursor.
	offset int

	// scheduled restructuring (-1 when none).
	changeDay int
	newPol    synthnet.Policy
}

// weekendFactor scales subscriber activity rates on weekends by the
// network kind: offices and campuses empty out, eyeball traffic stays.
func weekendFactor(k synthnet.ASKind) float64 {
	switch k {
	case synthnet.University, synthnet.Enterprise:
		return 0.35
	case synthnet.ResidentialISP:
		return 0.93
	default:
		return 1.0
	}
}

func newBlockState(info *synthnet.Block, cfg Config) *blockState {
	bs := &blockState{
		info:      info,
		changeDay: -1,
		rng:       rand.New(rand.NewSource(int64(xrand.Splitmix64(info.Seed)))),
		sampler:   useragent.NewSampler(info.Seed, useragent.SampleRate),
	}
	for i := range bs.perm {
		bs.perm[i] = byte(i)
	}
	bs.rng.Shuffle(256, func(i, j int) { bs.perm[i], bs.perm[j] = bs.perm[j], bs.perm[i] })
	for h := 0; h < 256; h++ {
		if bs.rng.Float64() < info.PingableP {
			bs.pingable.Set(byte(h))
		}
	}
	bs.configure(info.Policy, cfg, 0)
	return bs
}

// configure (re)initializes the block for a policy; used at start and
// when a restructuring takes effect. fromDay bounds new lifetimes.
func (bs *blockState) configure(pol synthnet.Policy, cfg Config, fromDay int) {
	bs.pol = pol
	bs.subs = bs.subs[:0]
	bs.occupied = ipv4.Bitmap256{}
	bs.offset = bs.rng.Intn(256)

	n := bs.info.Subscribers
	if pol == synthnet.Unused {
		n = 0
	}
	if bs.info.Policy == synthnet.Unused && pol != synthnet.Unused {
		// Activated block: draw a fresh population size.
		n = 100 + bs.rng.Intn(150)
	}
	for i := 0; i < n; i++ {
		bs.subs = append(bs.subs, bs.newSubscriber(pol, cfg, fromDay, i))
	}
	// Fixed-host policies claim their addresses up front.
	switch pol {
	case synthnet.StaticSparse, synthnet.StaticDense, synthnet.Gateway,
		synthnet.ServerFarm, synthnet.BotFarm, synthnet.InfraRouters:
		for i := range bs.subs {
			h := int16(bs.perm[i%256])
			bs.subs[i].host = h
			bs.occupied.Set(byte(h))
		}
	}
}

func (bs *blockState) newSubscriber(pol synthnet.Policy, cfg Config, fromDay, idx int) subscriber {
	r := bs.rng
	s := subscriber{
		host:    -1,
		from:    int16(fromDay),
		to:      int16(cfg.Days),
		devSeed: xrand.Splitmix64(bs.info.Seed ^ uint64(idx)*0x9e37),
		ndev:    uint8(1 + r.Intn(3)),
	}
	// Heterogeneous activity mixture: daily, regular, occasional users.
	// Weights are tuned so that ~8-12% of the active set flips per day,
	// the paper's Figure 4(a) churn level.
	switch xrand.WeightedChoice(r, []float64{0.55, 0.30, 0.15}) {
	case 0:
		s.rate = 0.93 + r.Float64()*0.06
	case 1:
		s.rate = 0.55 + r.Float64()*0.30
	default:
		s.rate = 0.05 + r.Float64()*0.30
	}
	s.mean = xrand.Pareto(r, 15, 1.5, 2000)
	switch pol {
	case synthnet.Gateway:
		s.rate = 1
		s.mean = float64(bs.info.Devices) * 2.0 / float64(bs.info.Subscribers)
	case synthnet.BotFarm:
		s.rate = 1
		s.mean = 3000 + r.Float64()*27000
	case synthnet.ServerFarm:
		s.rate = 0.01 // rare software updates only
		s.mean = 3
	case synthnet.InfraRouters:
		s.rate = 0
	}
	// Long-term subscriber churn: some lifetimes start or end mid-run.
	if fromDay == 0 {
		if xrand.Bernoulli(r, cfg.JoinFrac) {
			s.from = int16(r.Intn(cfg.Days))
		}
		if xrand.Bernoulli(r, cfg.LeaveFrac) {
			s.to = int16(r.Intn(cfg.Days))
		}
	}
	return s
}

// dayOutput is the reusable buffer one block writes its day into.
type dayOutput struct {
	bm   ipv4.Bitmap256
	hits [256]float64
	// activeSubs indexes subscribers that were active today (for UA
	// sampling); hostOf[i] is the host used by activeSubs[i].
	activeSubs []int
	hostOf     []int16
	total      float64
}

func (o *dayOutput) reset() {
	o.bm = ipv4.Bitmap256{}
	for i := range o.hits {
		o.hits[i] = 0
	}
	o.activeSubs = o.activeSubs[:0]
	o.hostOf = o.hostOf[:0]
	o.total = 0
}

func (o *dayOutput) emit(sub int, host int16, hits float64) {
	h := byte(host)
	o.bm.Set(h)
	o.hits[h] += hits
	o.total += hits
	o.activeSubs = append(o.activeSubs, sub)
	o.hostOf = append(o.hostOf, host)
}

// step advances the block one day, filling out.
func (bs *blockState) step(day int, cfg Config, out *dayOutput) {
	out.reset()
	if bs.changeDay == day {
		bs.configure(bs.newPol, cfg, day)
		bs.changeDay = -1
	}
	if bs.pol == synthnet.Unused || bs.pol == synthnet.InfraRouters {
		return
	}
	wf := 1.0
	if weekendOf(day) {
		wf = weekendFactor(bs.info.Kind)
	}
	growth := 1.0
	if cfg.Days > 1 {
		growth = 1 + cfg.TrafficGrowth*float64(day)/float64(cfg.Days-1)
	}

	switch bs.pol {
	case synthnet.StaticSparse, synthnet.StaticDense:
		bs.stepFixedHosts(day, wf, growth, out)
	case synthnet.Gateway, synthnet.BotFarm:
		bs.stepFixedHosts(day, 1, growth, out)
	case synthnet.ServerFarm:
		bs.stepFixedHosts(day, 1, 1, out)
	case synthnet.DynamicRoundRobin:
		bs.stepRoundRobin(day, wf, growth, out)
	case synthnet.DynamicLongLease:
		bs.stepLongLease(day, wf, growth, out)
	case synthnet.DynamicDaily:
		bs.stepDaily(day, wf, growth, out)
	}
}

// hitsFor draws one day of traffic for a subscriber. The year-long
// growth factor applies in proportion to how heavily trafficked the
// subscriber already is, reproducing the paper's Section 6.2
// observation of traffic consolidating on the heavy hitters.
func (bs *blockState) hitsFor(s *subscriber, wf, growth float64) float64 {
	eff := 1.0
	if growth > 1 {
		w := s.mean / 200
		if w > 1 {
			w = 1
		}
		eff = 1 + (growth-1)*w
	}
	// One uniform multiplier instead of a full Poisson draw keeps the
	// hot loop cheap; per-address daily hits are approximate anyway.
	v := s.mean * wf * eff * (0.5 + bs.rng.Float64())
	if v < 1 {
		v = 1
	}
	return v
}

func (bs *blockState) stepFixedHosts(day int, wf, growth float64, out *dayOutput) {
	for i := range bs.subs {
		s := &bs.subs[i]
		if !s.alive(day) || !xrand.Bernoulli(bs.rng, s.rate*wf) {
			continue
		}
		out.emit(i, s.host, bs.hitsFor(s, wf, growth))
	}
}

func (bs *blockState) stepRoundRobin(day int, wf, growth float64, out *dayOutput) {
	// Round-robin DHCP: a device keeps its address while it stays
	// online; on reconnect it receives the next free address at the
	// pool cursor. The cursor's rotation through the /24 produces the
	// diagonal drift of Figure 6(b) while day-to-day churn stays at
	// reconnect level.
	for i := range bs.subs {
		s := &bs.subs[i]
		if !s.alive(day) || !xrand.Bernoulli(bs.rng, s.rate*wf) {
			if s.host >= 0 {
				bs.occupied.Clear(byte(s.host))
				s.host = -1
			}
			continue
		}
		if s.host < 0 {
			for tries := 0; tries < 256; tries++ {
				h := byte(bs.offset)
				bs.offset = (bs.offset + 1) % 256
				if !bs.occupied.Test(h) {
					s.host = int16(h)
					bs.occupied.Set(h)
					break
				}
			}
			if s.host < 0 {
				continue // pool exhausted
			}
		}
		out.emit(i, s.host, bs.hitsFor(s, wf, growth))
	}
}

func (bs *blockState) stepLongLease(day int, wf, growth float64, out *dayOutput) {
	for i := range bs.subs {
		s := &bs.subs[i]
		if s.host >= 0 {
			// Lease countdown runs whether or not the user is online.
			s.lease--
			if s.lease <= 0 || !s.alive(day) {
				bs.occupied.Clear(byte(s.host))
				s.host = -1
			}
		}
		if !s.alive(day) || !xrand.Bernoulli(bs.rng, s.rate*wf) {
			continue
		}
		if s.host < 0 {
			h, ok := bs.freeHost()
			if !ok {
				continue // pool exhausted
			}
			s.host = h
			s.lease = int16(30 + bs.rng.Intn(60))
			bs.occupied.Set(byte(h))
		}
		out.emit(i, s.host, bs.hitsFor(s, wf, growth))
	}
}

func (bs *blockState) freeHost() (int16, bool) {
	if bs.occupied.Count() >= 256 {
		return 0, false
	}
	for {
		h := byte(bs.rng.Intn(256))
		if !bs.occupied.Test(h) {
			return int16(h), true
		}
	}
}

func (bs *blockState) stepDaily(day int, wf, growth float64, out *dayOutput) {
	// Fresh assignment every day: active subscribers receive distinct
	// pseudo-random hosts (Figure 6d). Oversubscribed pools saturate.
	dayOff := bs.rng.Intn(256)
	n := 0
	for i := range bs.subs {
		s := &bs.subs[i]
		if !s.alive(day) || !xrand.Bernoulli(bs.rng, s.rate*wf) {
			continue
		}
		host := int16(bs.perm[(dayOff+n)%256])
		out.emit(i, host, bs.hitsFor(s, wf, growth))
		n++
	}
}

// assignedMask returns the hosts that hold an address today (whether or
// not they generated traffic): what an ICMP probe can possibly reach.
// todayActive is the block's activity bitmap for the day.
func (bs *blockState) assignedMask(day int, todayActive *ipv4.Bitmap256) ipv4.Bitmap256 {
	switch bs.pol {
	case synthnet.StaticSparse, synthnet.StaticDense, synthnet.Gateway,
		synthnet.ServerFarm, synthnet.BotFarm, synthnet.InfraRouters:
		var m ipv4.Bitmap256
		for i := range bs.subs {
			if bs.subs[i].alive(day) && bs.subs[i].host >= 0 {
				m.Set(byte(bs.subs[i].host))
			}
		}
		return m
	case synthnet.DynamicLongLease, synthnet.DynamicRoundRobin:
		return bs.occupied
	case synthnet.DynamicDaily:
		// CPE is reachable only while the day's assignment holds.
		return *todayActive
	default: // Unused: only middleboxes/tarpits answer.
		return bs.pingable
	}
}

// icmpResponsive returns the addresses in this block answering an ICMP
// probe today.
func (bs *blockState) icmpResponsive(day int, todayActive *ipv4.Bitmap256) ipv4.Bitmap256 {
	m := bs.assignedMask(day, todayActive)
	m.IntersectWith(&bs.pingable)
	return m
}

// serviceHosts returns addresses answering service-port scans:
// servers, plus gateways exposing management interfaces.
func (bs *blockState) serviceHosts() ipv4.Bitmap256 {
	var m ipv4.Bitmap256
	switch bs.pol {
	case synthnet.ServerFarm, synthnet.BotFarm:
		for i := range bs.subs {
			if bs.subs[i].host >= 0 {
				m.Set(byte(bs.subs[i].host))
			}
		}
	case synthnet.Gateway:
		for i := range bs.subs {
			if bs.subs[i].host >= 0 && bs.rng.Float64() < 0.3 {
				m.Set(byte(bs.subs[i].host))
			}
		}
	}
	return m
}

// routerHosts returns router addresses that appear on traceroute paths.
func (bs *blockState) routerHosts() ipv4.Bitmap256 {
	var m ipv4.Bitmap256
	if bs.pol != synthnet.InfraRouters {
		return m
	}
	for i := range bs.subs {
		if bs.subs[i].host >= 0 && bs.rng.Float64() < 0.9 {
			m.Set(byte(bs.subs[i].host))
		}
	}
	return m
}

// deviceUA returns a User-Agent string for one sampled request from
// subscriber index sub.
func (bs *blockState) deviceUA(sub int) string {
	s := &bs.subs[sub]
	switch bs.pol {
	case synthnet.BotFarm:
		return fmt.Sprintf("%s v%d", botUA(s.devSeed), sub)
	case synthnet.Gateway:
		// A gateway aggregates thousands of distinct devices.
		dev := bs.rng.Intn(bs.info.Devices)
		return deviceFor(s.devSeed ^ uint64(dev)).UA(bs.rng)
	default:
		dev := bs.rng.Intn(int(s.ndev))
		return deviceFor(s.devSeed ^ uint64(dev)).UA(bs.rng)
	}
}
