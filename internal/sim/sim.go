// Package sim animates a synthnet.World day by day, producing the
// observational datasets the paper's analyses consume: daily and weekly
// active-address sets (the CDN view), per-address traffic aggregates,
// sampled User-Agent statistics, ICMP-responsiveness snapshots (the
// scanner view), a BGP change log, and the ground-truth restructuring
// schedule.
//
// The simulator is the substitute for the proprietary CDN server logs
// (DESIGN.md, "Substitutions"): every mechanism the paper attributes
// address activity to — subscriber behaviour, weekday/weekend effects,
// static assignment, pool cycling, lease policies, gateways, bots,
// network restructuring and subscriber churn — is modelled explicitly,
// so each analysis can be validated against known generative intent.
package sim

import (
	"ipscope/internal/bgp"
	"ipscope/internal/ipv4"
	"ipscope/internal/synthnet"
	"ipscope/internal/useragent"
)

// Config controls a simulation run.
type Config struct {
	// Days is the total number of simulated days; defaults to 364
	// (52 weeks, standing in for calendar year 2015).
	Days int
	// DailyStart/DailyLen delimit the high-resolution "daily dataset"
	// window (the paper's 2015-08-17..2015-12-06 = 112 days).
	DailyStart, DailyLen int
	// UADays is how many trailing days of the daily window sample
	// User-Agent strings (the paper restricts to the last month).
	UADays int
	// ICMPScanDays are the days (absolute) on which an ICMP campaign
	// snapshot is taken; defaults to 8 days spread over the month
	// starting at day DailyStart+56 (the paper's October).
	ICMPScanDays []int
	// PrefixChangeFrac is the fraction of routed prefixes that undergo
	// a bulk restructuring during the year.
	PrefixChangeFrac float64
	// BlockChangeFrac is the fraction of individual /24 blocks that
	// undergo a single-block assignment change.
	BlockChangeFrac float64
	// BGPCoupleProb is the probability a restructuring is accompanied
	// by a visible BGP change (Table 2 suggests ~10-13%).
	BGPCoupleProb float64
	// BGPNoisePerDay is the expected number of unrelated BGP events
	// per day per 1000 prefixes (background flapping).
	BGPNoisePerDay float64
	// JoinFrac/LeaveFrac are the fractions of subscribers whose
	// lifetime starts/ends mid-year (long-term single-address churn).
	JoinFrac, LeaveFrac float64
	// TrafficGrowth is the relative growth of heavy-hitter (gateway,
	// bot) traffic from the first to the last day, driving the
	// traffic-consolidation trend of Figure 9(c).
	TrafficGrowth float64
	// Workers is the number of shards the /24 address space is split
	// into for the observation loop; <= 0 means GOMAXPROCS. Every block
	// evolves from its own seeded stream and shards merge in block
	// order, so results are identical for any worker count.
	Workers int
}

// DefaultConfig returns the configuration used by the experiment
// harness; values follow the paper's observations.
func DefaultConfig() Config {
	return Config{
		Days:             364,
		DailyStart:       224, // mid-August
		DailyLen:         112,
		UADays:           28,
		PrefixChangeFrac: 0.18,
		BlockChangeFrac:  0.06,
		BGPCoupleProb:    0.15,
		BGPNoisePerDay:   0.05,
		JoinFrac:         0.07,
		LeaveFrac:        0.07,
		TrafficGrowth:    0.6,
	}
}

// TinyConfig returns a fast configuration for unit tests: 8 weeks with
// a 4-week daily window.
func TinyConfig() Config {
	c := DefaultConfig()
	c.Days = 56
	c.DailyStart = 14
	c.DailyLen = 28
	c.UADays = 14
	return c
}

func (c Config) normalized() Config {
	d := DefaultConfig()
	if c.Days <= 0 {
		c.Days = d.Days
	}
	if c.DailyLen <= 0 {
		c.DailyLen = d.DailyLen
	}
	if c.DailyStart < 0 || c.DailyStart+c.DailyLen > c.Days {
		c.DailyStart = c.Days - c.DailyLen
		if c.DailyStart < 0 {
			c.DailyStart = 0
			c.DailyLen = c.Days
		}
	}
	if c.UADays <= 0 || c.UADays > c.DailyLen {
		c.UADays = min(d.UADays, c.DailyLen)
	}
	if len(c.ICMPScanDays) == 0 {
		// 8 snapshots across one month in the middle of the daily window.
		base := c.DailyStart + c.DailyLen/2 - 14
		if base < 0 {
			base = 0
		}
		for i := 0; i < 8; i++ {
			day := base + i*4
			if day >= c.Days {
				day = c.Days - 1
			}
			c.ICMPScanDays = append(c.ICMPScanDays, day)
		}
	}
	return c
}

// RestructureKind classifies a ground-truth assignment change.
type RestructureKind uint8

// Restructure kinds (Section 5: reallocation, reconfiguration,
// repurposing; plus activation/deactivation of whole ranges).
const (
	PolicySwitch RestructureKind = iota // new assignment practice
	Deactivate                          // range goes dark
	Activate                            // unused range brought into service
)

// String returns the kind name.
func (k RestructureKind) String() string {
	switch k {
	case PolicySwitch:
		return "policy-switch"
	case Deactivate:
		return "deactivate"
	case Activate:
		return "activate"
	}
	return "unknown"
}

// Restructure records one scheduled assignment change (ground truth).
type Restructure struct {
	Prefix     ipv4.Prefix
	Day        int
	Kind       RestructureKind
	BGPVisible bool
	BGPKind    bgp.ChangeKind // meaningful if BGPVisible
}

// BlockTraffic aggregates per-address activity over the daily window.
type BlockTraffic struct {
	DaysActive [256]uint16
	Hits       [256]float64
}

// UAStat summarizes sampled User-Agent strings for one /24 block.
type UAStat struct {
	Samples int
	Sketch  *useragent.HLL
}

// Unique returns the estimated number of distinct UA strings sampled.
func (u *UAStat) Unique() float64 {
	if u.Sketch == nil {
		return 0
	}
	return u.Sketch.Estimate()
}

// Result is everything a simulation run produces.
type Result struct {
	Config Config
	World  *synthnet.World

	// Daily[i] is the set of addresses active on day DailyStart+i.
	Daily []*ipv4.Set
	// DailyTotalHits[i] is the total request volume on day DailyStart+i.
	DailyTotalHits []float64
	// Weekly[wk] is the set of addresses active during week wk
	// (union of its 7 days) across the whole run.
	Weekly []*ipv4.Set
	// WeeklyTopShare[wk] is the fraction of that week's traffic that
	// went to the top 10% of addresses by traffic (Figure 9c).
	WeeklyTopShare []float64
	// Traffic holds per-address aggregates over the daily window.
	Traffic map[ipv4.Block]*BlockTraffic
	// UA holds per-block User-Agent sampling statistics for the UA window.
	UA map[ipv4.Block]*UAStat
	// ICMPScans[i] is the set of addresses that answered the ICMP
	// campaign on Config.ICMPScanDays[i].
	ICMPScans []*ipv4.Set
	// ServerSet are addresses answering service-port scans (HTTP(S),
	// SMTP, ...): the ZMap service-scan substitute.
	ServerSet *ipv4.Set
	// RouterSet are router addresses appearing in traceroutes (the
	// Ark substitute).
	RouterSet *ipv4.Set
	// Routing is the year's BGP history as a change log.
	Routing *bgp.ChangeLog
	// Restructures is the ground-truth change schedule.
	Restructures []Restructure
}

// DailyWindowUnion returns the union of all daily sets.
func (r *Result) DailyWindowUnion() *ipv4.Set {
	return ipv4.UnionAll(r.Daily, r.Config.Workers)
}

// YearUnion returns the union of all weekly sets.
func (r *Result) YearUnion() *ipv4.Set {
	return ipv4.UnionAll(r.Weekly, r.Config.Workers)
}

// ICMPUnion returns the union of all ICMP campaign snapshots.
func (r *Result) ICMPUnion() *ipv4.Set {
	return ipv4.UnionAll(r.ICMPScans, r.Config.Workers)
}

// weekendOf reports whether day d falls on a weekend; day 0 is a
// Thursday (2015-01-01 was a Thursday), so d%7 ∈ {2,3} are Sat/Sun.
func weekendOf(d int) bool {
	w := d % 7
	return w == 2 || w == 3
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
