// Package sim animates a synthnet.World day by day, producing the
// observational datasets the paper's analyses consume: daily and weekly
// active-address sets (the CDN view), per-address traffic aggregates,
// sampled User-Agent statistics, ICMP-responsiveness snapshots (the
// scanner view), a BGP change log, and the ground-truth restructuring
// schedule.
//
// The simulator is the substitute for the proprietary CDN server logs
// (DESIGN.md, "Substitutions"): every mechanism the paper attributes
// address activity to — subscriber behaviour, weekday/weekend effects,
// static assignment, pool cycling, lease policies, gateways, bots,
// network restructuring and subscriber churn — is modelled explicitly,
// so each analysis can be validated against known generative intent.
//
// Observations leave the simulator as typed obs events: Run collects
// them into the in-memory Result (an obs.Sink), and RunTo additionally
// streams them into caller-supplied sinks (an obs.Writer, a TCP
// connection to a collector) as each day and week completes.
package sim

import (
	"ipscope/internal/ipv4"
	"ipscope/internal/obs"
	"ipscope/internal/synthnet"
)

// Config controls a simulation run. It is the obs-layer RunConfig: the
// same structure travels inside every stored dataset, which is what
// lets analyses rebuild their context without re-simulation.
type Config = obs.RunConfig

// DefaultConfig returns the configuration used by the experiment
// harness; values follow the paper's observations.
func DefaultConfig() Config {
	return Config{
		Days:             364,
		DailyStart:       224, // mid-August
		DailyLen:         112,
		UADays:           28,
		PrefixChangeFrac: 0.18,
		BlockChangeFrac:  0.06,
		BGPCoupleProb:    0.15,
		BGPNoisePerDay:   0.05,
		JoinFrac:         0.07,
		LeaveFrac:        0.07,
		TrafficGrowth:    0.6,
	}
}

// TinyConfig returns a fast configuration for unit tests: 8 weeks with
// a 4-week daily window.
func TinyConfig() Config {
	c := DefaultConfig()
	c.Days = 56
	c.DailyStart = 14
	c.DailyLen = 28
	c.UADays = 14
	return c
}

func normalize(c Config) Config {
	d := DefaultConfig()
	if c.Days <= 0 {
		c.Days = d.Days
	}
	if c.DailyLen <= 0 {
		c.DailyLen = d.DailyLen
	}
	if c.DailyStart < 0 || c.DailyStart+c.DailyLen > c.Days {
		c.DailyStart = c.Days - c.DailyLen
		if c.DailyStart < 0 {
			c.DailyStart = 0
			c.DailyLen = c.Days
		}
	}
	if c.UADays <= 0 || c.UADays > c.DailyLen {
		c.UADays = min(d.UADays, c.DailyLen)
	}
	if len(c.ICMPScanDays) == 0 {
		// 8 snapshots across one month in the middle of the daily window.
		base := c.DailyStart + c.DailyLen/2 - 14
		if base < 0 {
			base = 0
		}
		for i := 0; i < 8; i++ {
			day := base + i*4
			if day >= c.Days {
				day = c.Days - 1
			}
			c.ICMPScanDays = append(c.ICMPScanDays, day)
		}
	}
	return c
}

// RestructureKind classifies a ground-truth assignment change.
type RestructureKind = obs.RestructureKind

// Restructure kinds (Section 5: reallocation, reconfiguration,
// repurposing; plus activation/deactivation of whole ranges).
const (
	PolicySwitch = obs.PolicySwitch // new assignment practice
	Deactivate   = obs.Deactivate   // range goes dark
	Activate     = obs.Activate     // unused range brought into service
)

// Restructure records one scheduled assignment change (ground truth).
type Restructure = obs.Restructure

// BlockTraffic aggregates per-address activity over the daily window.
type BlockTraffic = obs.BlockTraffic

// UAStat summarizes sampled User-Agent strings for one /24 block.
type UAStat = obs.UAStat

// Result is everything a simulation run produces: the in-memory
// observation dataset plus the world it was generated from. Result is
// the canonical in-memory obs.Sink — Run is just RunTo with no extra
// sinks — and an obs.Source, so analyses consume live runs and stored
// datasets through the same interface.
type Result struct {
	obs.Data
	Config Config
	World  *synthnet.World
}

// DailyWindowUnion returns the union of all daily sets.
func (r *Result) DailyWindowUnion() *ipv4.Set {
	return ipv4.UnionAll(r.Daily, r.Config.Workers)
}

// YearUnion returns the union of all weekly sets.
func (r *Result) YearUnion() *ipv4.Set {
	return ipv4.UnionAll(r.Weekly, r.Config.Workers)
}

// ICMPUnion returns the union of all ICMP campaign snapshots.
func (r *Result) ICMPUnion() *ipv4.Set {
	return ipv4.UnionAll(r.ICMPScans, r.Config.Workers)
}

// weekendOf reports whether day d falls on a weekend; day 0 is a
// Thursday (2015-01-01 was a Thursday), so d%7 ∈ {2,3} are Sat/Sun.
func weekendOf(d int) bool {
	w := d % 7
	return w == 2 || w == 3
}
