package sim

import (
	"sort"

	"ipscope/internal/bgp"
	"ipscope/internal/ipv4"
	"ipscope/internal/synthnet"
	"ipscope/internal/useragent"
	"ipscope/internal/xrand"
)

func deviceFor(seed uint64) useragent.Device { return useragent.NewDevice(seed) }
func botUA(seed uint64) string               { return useragent.BotUA(seed) }

// Run simulates cfg.Days days of activity over world w.
func Run(w *synthnet.World, cfg Config) *Result {
	cfg = cfg.normalized()
	res := &Result{
		Config:  cfg,
		World:   w,
		Traffic: make(map[ipv4.Block]*BlockTraffic),
		UA:      make(map[ipv4.Block]*UAStat),
	}

	states := make([]*blockState, len(w.Blocks))
	for i, b := range w.Blocks {
		states[i] = newBlockState(b, cfg)
	}
	res.Routing = bgp.NewChangeLog(w.BaseRouting, cfg.Days)
	scheduleRestructures(w, states, cfg, res)
	scheduleBGPNoise(w, cfg, res)

	scanDay := make(map[int]int, len(cfg.ICMPScanDays)) // day -> scan index
	for i, d := range cfg.ICMPScanDays {
		scanDay[d] = i
	}
	res.ICMPScans = make([]*ipv4.Set, len(cfg.ICMPScanDays))
	for i := range res.ICMPScans {
		res.ICMPScans[i] = ipv4.NewSet()
	}

	numWeeks := cfg.Days / 7
	if numWeeks == 0 {
		numWeeks = 1
	}
	res.Weekly = make([]*ipv4.Set, numWeeks)
	for i := range res.Weekly {
		res.Weekly[i] = ipv4.NewSet()
	}
	res.Daily = make([]*ipv4.Set, cfg.DailyLen)
	res.DailyTotalHits = make([]float64, cfg.DailyLen)
	res.WeeklyTopShare = make([]float64, numWeeks)

	uaStart := cfg.DailyStart + cfg.DailyLen - cfg.UADays
	uaEnd := cfg.DailyStart + cfg.DailyLen
	sampler := useragent.NewSampler(w.Seed, useragent.SampleRate)

	// Per-week per-address hit accumulator, reset weekly.
	weekHits := make(map[ipv4.Block]*[256]float64)
	var out dayOutput

	for day := 0; day < cfg.Days; day++ {
		wk := day / 7
		if wk >= numWeeks {
			wk = numWeeks - 1
		}
		inDaily := day >= cfg.DailyStart && day < cfg.DailyStart+cfg.DailyLen
		di := day - cfg.DailyStart
		if inDaily {
			res.Daily[di] = ipv4.NewSet()
		}
		inUA := day >= uaStart && day < uaEnd
		scanIdx, isScanDay := scanDay[day]

		for si, bs := range states {
			bs.step(day, cfg, &out)
			blk := w.Blocks[si].Block
			if !out.bm.IsEmpty() {
				res.Weekly[wk].AddBlockBitmap(blk, &out.bm)
				wh := weekHits[blk]
				if wh == nil {
					wh = new([256]float64)
					weekHits[blk] = wh
				}
				for h := 0; h < 256; h++ {
					wh[h] += out.hits[h]
				}
				if inDaily {
					res.Daily[di].AddBlockBitmap(blk, &out.bm)
					res.DailyTotalHits[di] += out.total
					bt := res.Traffic[blk]
					if bt == nil {
						bt = new(BlockTraffic)
						res.Traffic[blk] = bt
					}
					out.bm.ForEach(func(h byte) {
						bt.DaysActive[h]++
						bt.Hits[h] += out.hits[h]
					})
				}
				if inUA && out.total > 0 {
					sampleUA(bs, &out, sampler, res, blk)
				}
			}
			if isScanDay {
				resp := bs.icmpResponsive(day, &out.bm)
				if !resp.IsEmpty() {
					res.ICMPScans[scanIdx].AddBlockBitmap(blk, &resp)
				}
			}
		}

		// Close out the week.
		if (day+1)%7 == 0 || day == cfg.Days-1 {
			res.WeeklyTopShare[wk] = topShare(weekHits, 0.10)
			weekHits = make(map[ipv4.Block]*[256]float64)
		}
	}

	// Static scan surfaces (service ports, traceroute).
	res.ServerSet = ipv4.NewSet()
	res.RouterSet = ipv4.NewSet()
	for si, bs := range states {
		blk := w.Blocks[si].Block
		if m := bs.serviceHosts(); !m.IsEmpty() {
			res.ServerSet.AddBlockBitmap(blk, &m)
		}
		if m := bs.routerHosts(); !m.IsEmpty() {
			res.RouterSet.AddBlockBitmap(blk, &m)
		}
	}
	return res
}

// sampleUA samples User-Agent strings for one block-day at the
// pipeline's 1-in-4K rate and folds them into the block's sketch.
func sampleUA(bs *blockState, out *dayOutput, sampler *useragent.Sampler, res *Result, blk ipv4.Block) {
	n := sampler.SampleN(int(out.total))
	if n == 0 {
		return
	}
	st := res.UA[blk]
	if st == nil {
		st = &UAStat{Sketch: useragent.NewHLL(12)}
		res.UA[blk] = st
	}
	st.Samples += n
	for i := 0; i < n; i++ {
		// Pick the sampled request's subscriber weighted by traffic:
		// approximate by a hits-weighted draw over active subscribers.
		idx := weightedSub(bs, out)
		st.Sketch.AddString(bs.deviceUA(out.activeSubs[idx]))
	}
}

func weightedSub(bs *blockState, out *dayOutput) int {
	if len(out.activeSubs) == 1 {
		return 0
	}
	x := bs.rng.Float64() * out.total
	for i, h := range out.hostOf {
		x -= out.hits[byte(h)]
		if x < 0 {
			return i
		}
	}
	return len(out.activeSubs) - 1
}

// topShare computes the share of total traffic received by the top
// fraction frac of addresses.
func topShare(weekHits map[ipv4.Block]*[256]float64, frac float64) float64 {
	// Iterate blocks in sorted order so float accumulation order (and
	// thus the result) is deterministic across runs.
	blocks := make([]ipv4.Block, 0, len(weekHits))
	for b := range weekHits {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	var vals []float64
	total := 0.0
	for _, b := range blocks {
		for _, v := range weekHits[b] {
			if v > 0 {
				vals = append(vals, v)
				total += v
			}
		}
	}
	if len(vals) == 0 || total == 0 {
		return 0
	}
	sort.Float64s(vals)
	k := int(float64(len(vals)) * frac)
	if k < 1 {
		k = 1
	}
	sum := 0.0
	for _, v := range vals[len(vals)-k:] {
		sum += v
	}
	return sum / total
}

// scheduleRestructures picks prefixes and blocks for mid-run assignment
// changes, wires them into block states, and couples a fraction to BGP.
func scheduleRestructures(w *synthnet.World, states []*blockState, cfg Config, res *Result) {
	r := xrand.New(w.Seed, "restructure")
	// Spread restructurings across (almost) the whole year, as in the
	// wild; a small margin keeps the first/last snapshots comparable.
	lo, hi := cfg.Days/20, cfg.Days*19/20
	if hi <= lo {
		lo, hi = 0, cfg.Days
	}

	// Bulk (prefix-level) changes.
	for _, as := range w.ASes {
		for _, p := range as.Prefixes {
			if !xrand.Bernoulli(r, cfg.PrefixChangeFrac) {
				continue
			}
			day := lo + r.Intn(hi-lo)
			// Classify by current content: mostly-unused prefixes
			// activate; others switch policy or go dark.
			unused := 0
			p.Blocks(func(b ipv4.Block) {
				if bi, ok := w.BlockInfo(b); ok && bi.Policy == synthnet.Unused {
					unused++
				}
			})
			kind := PolicySwitch
			switch {
			case unused*2 >= p.NumBlocks():
				kind = Activate
			case r.Float64() < 0.5:
				kind = Deactivate
			}
			re := Restructure{Prefix: p, Day: day, Kind: kind}
			if xrand.Bernoulli(r, cfg.BGPCoupleProb) {
				re.BGPVisible = true
				switch kind {
				case Activate:
					re.BGPKind = bgp.Announce
				case Deactivate:
					if r.Float64() < 0.5 {
						re.BGPKind = bgp.Withdraw
					} else {
						re.BGPKind = bgp.OriginChange
					}
				default:
					re.BGPKind = bgp.OriginChange
				}
				recordBGP(res.Routing, w, p, day, re.BGPKind, r)
			}
			res.Restructures = append(res.Restructures, re)
			p.Blocks(func(b ipv4.Block) {
				applyRestructure(w, states, b, day, kind, r)
			})
		}
	}

	// Single-block changes.
	for si, b := range w.Blocks {
		if !xrand.Bernoulli(r, cfg.BlockChangeFrac) {
			continue
		}
		if states[si].changeDay >= 0 {
			continue // already part of a bulk change
		}
		day := lo + r.Intn(hi-lo)
		kind := PolicySwitch
		if b.Policy == synthnet.Unused {
			kind = Activate
		} else if r.Float64() < 0.25 {
			kind = Deactivate
		}
		res.Restructures = append(res.Restructures, Restructure{
			Prefix: b.Block.Prefix(), Day: day, Kind: kind,
		})
		applyRestructure(w, states, b.Block, day, kind, r)
	}
}

func applyRestructure(w *synthnet.World, states []*blockState, blk ipv4.Block, day int, kind RestructureKind, r interface{ Intn(int) int }) {
	i, ok := w.ByBlock[blk]
	if !ok {
		return
	}
	bs := states[i]
	bs.changeDay = day
	switch kind {
	case Deactivate:
		bs.newPol = synthnet.Unused
	case Activate:
		bs.newPol = clientPolicies[r.Intn(len(clientPolicies))]
	default: // PolicySwitch: flip static<->dynamic or change pool type.
		cur := bs.info.Policy
		for {
			p := clientPolicies[r.Intn(len(clientPolicies))]
			if p != cur {
				bs.newPol = p
				break
			}
		}
	}
}

var clientPolicies = []synthnet.Policy{
	synthnet.StaticSparse, synthnet.StaticDense, synthnet.DynamicRoundRobin,
	synthnet.DynamicLongLease, synthnet.DynamicDaily,
}

func recordBGP(log *bgp.ChangeLog, w *synthnet.World, p ipv4.Prefix, day int, kind bgp.ChangeKind, r interface{ Intn(int) int }) {
	origin := w.ASOf(p.FirstBlock())
	switch kind {
	case bgp.Announce:
		log.Record(day, bgp.Change{Kind: bgp.Announce, Prefix: p, NewOrigin: origin})
	case bgp.Withdraw:
		log.Record(day, bgp.Change{Kind: bgp.Withdraw, Prefix: p, OldOrigin: origin})
	case bgp.OriginChange:
		newOrigin := origin + bgp.ASN(1+r.Intn(100))
		log.Record(day, bgp.Change{Kind: bgp.OriginChange, Prefix: p,
			OldOrigin: origin, NewOrigin: newOrigin})
	}
}

// scheduleBGPNoise adds background announce/withdraw flapping unrelated
// to activity, so steadily-active addresses also see a small BGP-change
// correlation (Figure 5c's baseline).
func scheduleBGPNoise(w *synthnet.World, cfg Config, res *Result) {
	r := xrand.New(w.Seed, "bgp-noise")
	var prefixes []ipv4.Prefix
	var origins []bgp.ASN
	for _, as := range w.ASes {
		for _, p := range as.Prefixes {
			prefixes = append(prefixes, p)
			origins = append(origins, as.Num)
		}
	}
	if len(prefixes) == 0 {
		return
	}
	perDay := cfg.BGPNoisePerDay * float64(len(prefixes)) / 1000
	for day := 1; day < cfg.Days; day++ {
		n := xrand.Poisson(r, perDay)
		for i := 0; i < n; i++ {
			j := r.Intn(len(prefixes))
			// A flap: withdraw then re-announce next day.
			res.Routing.Record(day, bgp.Change{Kind: bgp.Withdraw,
				Prefix: prefixes[j], OldOrigin: origins[j]})
			if day+1 < cfg.Days {
				res.Routing.Record(day+1, bgp.Change{Kind: bgp.Announce,
					Prefix: prefixes[j], NewOrigin: origins[j]})
			}
		}
	}
}
