package sim

import (
	"sort"
	"sync/atomic"

	"ipscope/internal/bgp"
	"ipscope/internal/ipv4"
	"ipscope/internal/obs"
	"ipscope/internal/par"
	"ipscope/internal/synthnet"
	"ipscope/internal/useragent"
	"ipscope/internal/xrand"
)

func deviceFor(seed uint64) useragent.Device { return useragent.NewDevice(seed) }
func botUA(seed uint64) string               { return useragent.BotUA(seed) }

// shardAccum is the long-lived state one shard of contiguous /24
// blocks carries across days: week accumulators and the static scan
// surfaces. Per-day sets are built fresh each day and handed to the
// day rendezvous instead of accumulating here.
type shardAccum struct {
	weekly         []*ipv4.Set // activity per week (deposited at week close)
	server, router *ipv4.Set
}

// emitter fans observation events out to the sinks via obs.Tee. The
// engine guarantees emissions are serialized (see closeDay), so no lock
// is needed; a sink that errors receives no further events. The
// in-memory Result is always the first sink and never fails, so the tee
// as a whole cannot fail and emission never stops the simulation.
type emitter struct {
	tee *obs.TeeSink
}

func newEmitter(sinks []obs.Sink) *emitter {
	return &emitter{tee: obs.Tee(sinks...)}
}

func (em *emitter) emit(e obs.Event) {
	em.tee.Observe(e) //nolint:errcheck // only fails once every sink failed
}

func (em *emitter) err() error { return em.tee.Err() }

// dayGather is the rendezvous for one emitting day: every shard
// deposits its slice of the day's observations, and the shard whose
// atomic countdown reaches zero merges the deposits in ascending shard
// (= block) order and emits the day's events.
type dayGather struct {
	pending int32
	daily   []*ipv4.Set // per shard; non-nil for daily-window days
	// totals[shard] holds the shard's per-block hit totals for the day
	// in ascending block order (zero-traffic blocks omitted, which is
	// exact: adding 0.0 to a non-negative float sum changes nothing).
	// Concatenating shards therefore reproduces the global block-order
	// sum bit for bit, independent of the worker count.
	totals [][]float64
	icmp   []*ipv4.Set // per shard; non-nil for ICMP scan days
}

// runState is the shared, shard-partitioned state of one Run: the
// per-block slots are written lock-free by the owning shard only, and
// merged in block order at the day rendezvous.
type runState struct {
	cfg      Config
	w        *synthnet.World
	states   []*blockState
	scanDay  map[int]int // day -> scan index
	numWeeks int
	uaStart  int
	uaEnd    int
	em       *emitter

	traffic []*BlockTraffic // per block index
	ua      []*UAStat       // per block index

	// Per-day rendezvous (nil for days with nothing to emit) plus the
	// week deposits read by the day that closes each week. A clamped
	// final week deposits twice per shard; the later deposit overwrites
	// the slot, preserving the sequential engine's last-close-wins
	// semantics for the top-share values.
	gathers      []*dayGather
	weekSets     [][]*ipv4.Set // [week][shard]
	weekVals     [][][]float64 // [week][shard]
	weekCloseDay []int         // [week]: the day whose close emits the week
}

// Run simulates cfg.Days days of activity over world w, sharding the
// per-tick observation loop across cfg.Workers workers. Results are
// bit-identical for any worker count: each /24 evolves from its own
// seeded stream, shards own contiguous block ranges, and all merges
// happen in ascending block order.
func Run(w *synthnet.World, cfg Config) *Result {
	res, _ := RunTo(w, cfg) // only extra sinks can fail; there are none
	return res
}

// RunTo is Run with additional observation sinks attached: every event
// the in-memory Result receives is also streamed, in the same order,
// into each sink — an obs.Writer persisting the dataset, a network
// connection to a collector. Events are emitted as the simulation
// progresses (meta and ground truth up front, each day and week as it
// completes across all shards, per-block aggregates and scan surfaces
// at the end), so a consumer sees a live feed rather than a final
// dump. The returned error joins any sink errors; the Result is fully
// populated regardless.
func RunTo(w *synthnet.World, cfg Config, sinks ...obs.Sink) (*Result, error) {
	cfg = normalize(cfg)
	res := &Result{Config: cfg, World: w}
	em := newEmitter(append([]obs.Sink{res}, sinks...))

	states := make([]*blockState, len(w.Blocks))
	par.ForEach(len(w.Blocks), par.Workers(cfg.Workers), func(i int) {
		states[i] = newBlockState(w.Blocks[i], cfg)
	})
	routing := bgp.NewChangeLog(w.BaseRouting, cfg.Days)
	restructures := scheduleRestructures(w, states, cfg, routing)
	scheduleBGPNoise(w, cfg, routing)

	em.emit(obs.MetaEvent{Meta: obs.Meta{World: w.Cfg, Run: cfg}})
	em.emit(obs.RestructuresEvent{Restructures: restructures})
	em.emit(obs.RoutingEvent{Log: routing})

	rs := &runState{
		cfg:     cfg,
		w:       w,
		states:  states,
		scanDay: make(map[int]int, len(cfg.ICMPScanDays)),
		uaStart: cfg.DailyStart + cfg.DailyLen - cfg.UADays,
		uaEnd:   cfg.DailyStart + cfg.DailyLen,
		em:      em,
		traffic: make([]*BlockTraffic, len(states)),
		ua:      make([]*UAStat, len(states)),
	}
	for i, d := range cfg.ICMPScanDays {
		rs.scanDay[d] = i
	}
	rs.numWeeks = cfg.NumWeeks()

	// The observation loop: each shard animates its contiguous block
	// range through all days independently, synchronizing only at the
	// per-day rendezvous of emitting days.
	workers := par.Workers(cfg.Workers)
	numShards := len(par.Split(len(states), workers))
	if numShards == 0 {
		rs.emitEmptySchedule()
		em.emit(obs.SurfacesEvent{Servers: ipv4.NewSet(), Routers: ipv4.NewSet()})
		return res, em.err()
	}
	rs.initGathers(numShards)
	accs := make([]*shardAccum, numShards)
	par.ForEachShard(len(states), workers, func(shard, lo, hi int) {
		accs[shard] = rs.runShard(shard, lo, hi)
	})

	// Post-loop events: per-block aggregates in ascending block order,
	// then the static scan surfaces merged in shard order.
	for si := range rs.states {
		if rs.traffic[si] == nil && rs.ua[si] == nil {
			continue
		}
		em.emit(obs.BlockStatsEvent{
			Block:   rs.w.Blocks[si].Block,
			Traffic: rs.traffic[si],
			UA:      rs.ua[si],
		})
	}
	server, router := ipv4.NewSet(), ipv4.NewSet()
	for _, acc := range accs {
		server.UnionWith(acc.server)
		router.UnionWith(acc.router)
	}
	em.emit(obs.SurfacesEvent{Servers: server, Routers: router})
	return res, em.err()
}

// weekBoundary reports whether day closes a week (the last day of a
// calendar week, or the run's final day closing a clamped partial
// week).
func (rs *runState) weekBoundary(day int) bool {
	return (day+1)%7 == 0 || day == rs.cfg.Days-1
}

func (rs *runState) weekOf(day int) int {
	wk := day / 7
	if wk >= rs.numWeeks {
		wk = rs.numWeeks - 1
	}
	return wk
}

// initGathers allocates the rendezvous for every day that emits
// events: daily-window days, ICMP scan days and week boundaries.
func (rs *runState) initGathers(numShards int) {
	cfg := rs.cfg
	rs.gathers = make([]*dayGather, cfg.Days)
	rs.weekCloseDay = make([]int, rs.numWeeks)
	rs.weekSets = make([][]*ipv4.Set, rs.numWeeks)
	rs.weekVals = make([][][]float64, rs.numWeeks)
	for wk := range rs.weekSets {
		rs.weekSets[wk] = make([]*ipv4.Set, numShards)
		rs.weekVals[wk] = make([][]float64, numShards)
	}
	for day := 0; day < cfg.Days; day++ {
		inDaily := day >= cfg.DailyStart && day < cfg.DailyStart+cfg.DailyLen
		_, isScan := rs.scanDay[day]
		boundary := rs.weekBoundary(day)
		if boundary {
			rs.weekCloseDay[rs.weekOf(day)] = day // last boundary wins
		}
		if !inDaily && !isScan && !boundary {
			continue
		}
		g := &dayGather{pending: int32(numShards)}
		if inDaily {
			g.daily = make([]*ipv4.Set, numShards)
			g.totals = make([][]float64, numShards)
		}
		if isScan {
			g.icmp = make([]*ipv4.Set, numShards)
		}
		rs.gathers[day] = g
	}
}

// emitEmptySchedule emits the full day/week event schedule for a world
// with no blocks, so sinks always see a complete dataset.
func (rs *runState) emitEmptySchedule() {
	cfg := rs.cfg
	for day := 0; day < cfg.Days; day++ {
		if day >= cfg.DailyStart && day < cfg.DailyStart+cfg.DailyLen {
			rs.em.emit(obs.DayEvent{Index: day - cfg.DailyStart, Active: ipv4.NewSet()})
		}
		if idx, ok := rs.scanDay[day]; ok {
			rs.em.emit(obs.ICMPScanEvent{Index: idx, Responders: ipv4.NewSet()})
		}
	}
	for wk := 0; wk < rs.numWeeks; wk++ {
		rs.em.emit(obs.WeekEvent{Index: wk, Active: ipv4.NewSet()})
	}
}

// runShard animates blocks [lo, hi) through every simulated day.
func (rs *runState) runShard(shard, lo, hi int) *shardAccum {
	cfg := rs.cfg
	acc := &shardAccum{
		weekly: newSets(rs.numWeeks),
		server: ipv4.NewSet(),
		router: ipv4.NewSet(),
	}
	// Per-week per-address hit accumulator, reset weekly.
	weekHits := make(map[ipv4.Block]*[256]float64)
	var out dayOutput

	for day := 0; day < cfg.Days; day++ {
		wk := rs.weekOf(day)
		inDaily := day >= cfg.DailyStart && day < cfg.DailyStart+cfg.DailyLen
		inUA := day >= rs.uaStart && day < rs.uaEnd
		_, isScanDay := rs.scanDay[day]

		g := rs.gathers[day]
		var daySet, icmpSet *ipv4.Set
		var dayTotals []float64
		if g != nil && g.daily != nil {
			daySet = ipv4.NewSet()
		}
		if g != nil && g.icmp != nil {
			icmpSet = ipv4.NewSet()
		}

		for si := lo; si < hi; si++ {
			bs := rs.states[si]
			bs.step(day, cfg, &out)
			blk := rs.w.Blocks[si].Block
			if !out.bm.IsEmpty() {
				acc.weekly[wk].AddBlockBitmap(blk, &out.bm)
				wh := weekHits[blk]
				if wh == nil {
					wh = new([256]float64)
					weekHits[blk] = wh
				}
				for h := 0; h < 256; h++ {
					wh[h] += out.hits[h]
				}
				if inDaily {
					daySet.AddBlockBitmap(blk, &out.bm)
					dayTotals = append(dayTotals, out.total)
					bt := rs.traffic[si]
					if bt == nil {
						bt = new(BlockTraffic)
						rs.traffic[si] = bt
					}
					out.bm.ForEach(func(h byte) {
						bt.DaysActive[h]++
						bt.Hits[h] += out.hits[h]
					})
				}
				if inUA && out.total > 0 {
					rs.sampleUA(bs, &out, si)
				}
			}
			if isScanDay {
				resp := bs.icmpResponsive(day, &out.bm)
				if !resp.IsEmpty() {
					icmpSet.AddBlockBitmap(blk, &resp)
				}
			}
		}

		// Deposit this shard's day at the rendezvous; the last shard to
		// arrive merges and emits. Week deposits go in first so the
		// closing day sees every shard's final week state.
		if g != nil {
			if g.daily != nil {
				g.daily[shard] = daySet
				g.totals[shard] = dayTotals
			}
			if g.icmp != nil {
				g.icmp[shard] = icmpSet
			}
			if rs.weekBoundary(day) {
				rs.weekVals[wk][shard] = weekValsOf(weekHits)
				rs.weekSets[wk][shard] = acc.weekly[wk]
				weekHits = make(map[ipv4.Block]*[256]float64)
			}
			if atomic.AddInt32(&g.pending, -1) == 0 {
				rs.closeDay(day)
			}
		}
	}

	// Static scan surfaces (service ports, traceroute).
	for si := lo; si < hi; si++ {
		bs := rs.states[si]
		blk := rs.w.Blocks[si].Block
		if m := bs.serviceHosts(); !m.IsEmpty() {
			acc.server.AddBlockBitmap(blk, &m)
		}
		if m := bs.routerHosts(); !m.IsEmpty() {
			acc.router.AddBlockBitmap(blk, &m)
		}
	}
	return acc
}

// closeDay runs in the goroutine of the last shard to finish day; all
// other shards' deposits happen-before the pending countdown reached
// zero, so their slots are safe to read. Emissions are globally
// serialized: closeDay(d) finishes before the closing shard deposits
// day d+1, and closeDay(d+1) needs that deposit — so no two closeDay
// calls (and hence no two sink Observe calls) ever overlap.
func (rs *runState) closeDay(day int) {
	cfg := rs.cfg
	g := rs.gathers[day]
	if g.daily != nil {
		di := day - cfg.DailyStart
		set := ipv4.NewSet()
		for _, s := range g.daily {
			set.UnionWith(s)
		}
		// Sum per-block day totals in ascending block order so the
		// float result is independent of the worker count.
		total := 0.0
		for _, vals := range g.totals {
			for _, v := range vals {
				total += v
			}
		}
		rs.em.emit(obs.DayEvent{Index: di, Active: set, TotalHits: total})
		g.daily, g.totals = nil, nil
	}
	if g.icmp != nil {
		set := ipv4.NewSet()
		for _, s := range g.icmp {
			set.UnionWith(s)
		}
		rs.em.emit(obs.ICMPScanEvent{Index: rs.scanDay[day], Responders: set})
		g.icmp = nil
	}
	if wk := rs.weekOf(day); rs.weekBoundary(day) && rs.weekCloseDay[wk] == day {
		set := ipv4.NewSet()
		for _, s := range rs.weekSets[wk] {
			if s != nil {
				set.UnionWith(s)
			}
		}
		var all []float64
		for _, v := range rs.weekVals[wk] {
			all = append(all, v...)
		}
		rs.em.emit(obs.WeekEvent{Index: wk, Active: set, TopShare: topShareVals(all, 0.10)})
		rs.weekSets[wk], rs.weekVals[wk] = nil, nil // week complete: free deposits
	}
}

func newSets(n int) []*ipv4.Set {
	out := make([]*ipv4.Set, n)
	for i := range out {
		out[i] = ipv4.NewSet()
	}
	return out
}

// sampleUA samples User-Agent strings for one block-day at the
// pipeline's 1-in-4K rate and folds them into the block's sketch.
func (rs *runState) sampleUA(bs *blockState, out *dayOutput, si int) {
	n := bs.sampler.SampleN(int(out.total))
	if n == 0 {
		return
	}
	st := rs.ua[si]
	if st == nil {
		st = &UAStat{Sketch: useragent.NewHLL(12)}
		rs.ua[si] = st
	}
	st.Samples += n
	for i := 0; i < n; i++ {
		// Pick the sampled request's subscriber weighted by traffic:
		// approximate by a hits-weighted draw over active subscribers.
		idx := weightedSub(bs, out)
		st.Sketch.AddString(bs.deviceUA(out.activeSubs[idx]))
	}
}

func weightedSub(bs *blockState, out *dayOutput) int {
	if len(out.activeSubs) == 1 {
		return 0
	}
	x := bs.rng.Float64() * out.total
	for i, h := range out.hostOf {
		x -= out.hits[byte(h)]
		if x < 0 {
			return i
		}
	}
	return len(out.activeSubs) - 1
}

// weekValsOf flattens one week's per-address hit accumulator into the
// positive hit values, blocks in ascending order, hosts ascending
// within each block. The fixed order is what lets shard outputs be
// concatenated into the exact value sequence of a sequential run.
func weekValsOf(weekHits map[ipv4.Block]*[256]float64) []float64 {
	blocks := make([]ipv4.Block, 0, len(weekHits))
	for b := range weekHits {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	var vals []float64
	for _, b := range blocks {
		for _, v := range weekHits[b] {
			if v > 0 {
				vals = append(vals, v)
			}
		}
	}
	return vals
}

// topShareVals computes the share of total traffic received by the top
// fraction frac of addresses. The total is accumulated in the order
// vals were collected (ascending block order) so the float result is
// deterministic across runs and worker counts.
func topShareVals(vals []float64, frac float64) float64 {
	total := 0.0
	for _, v := range vals {
		total += v
	}
	if len(vals) == 0 || total == 0 {
		return 0
	}
	sorted := make([]float64, len(vals))
	copy(sorted, vals)
	sort.Float64s(sorted)
	k := int(float64(len(sorted)) * frac)
	if k < 1 {
		k = 1
	}
	sum := 0.0
	for _, v := range sorted[len(sorted)-k:] {
		sum += v
	}
	return sum / total
}

// scheduleRestructures picks prefixes and blocks for mid-run assignment
// changes, wires them into block states, and couples a fraction to BGP.
func scheduleRestructures(w *synthnet.World, states []*blockState, cfg Config, routing *bgp.ChangeLog) []Restructure {
	r := xrand.New(w.Seed, "restructure")
	var restructures []Restructure
	// Spread restructurings across (almost) the whole year, as in the
	// wild; a small margin keeps the first/last snapshots comparable.
	lo, hi := cfg.Days/20, cfg.Days*19/20
	if hi <= lo {
		lo, hi = 0, cfg.Days
	}

	// Bulk (prefix-level) changes.
	for _, as := range w.ASes {
		for _, p := range as.Prefixes {
			if !xrand.Bernoulli(r, cfg.PrefixChangeFrac) {
				continue
			}
			day := lo + r.Intn(hi-lo)
			// Classify by current content: mostly-unused prefixes
			// activate; others switch policy or go dark.
			unused := 0
			p.Blocks(func(b ipv4.Block) {
				if bi, ok := w.BlockInfo(b); ok && bi.Policy == synthnet.Unused {
					unused++
				}
			})
			kind := PolicySwitch
			switch {
			case unused*2 >= p.NumBlocks():
				kind = Activate
			case r.Float64() < 0.5:
				kind = Deactivate
			}
			re := Restructure{Prefix: p, Day: day, Kind: kind}
			if xrand.Bernoulli(r, cfg.BGPCoupleProb) {
				re.BGPVisible = true
				switch kind {
				case Activate:
					re.BGPKind = bgp.Announce
				case Deactivate:
					if r.Float64() < 0.5 {
						re.BGPKind = bgp.Withdraw
					} else {
						re.BGPKind = bgp.OriginChange
					}
				default:
					re.BGPKind = bgp.OriginChange
				}
				recordBGP(routing, w, p, day, re.BGPKind, r)
			}
			restructures = append(restructures, re)
			p.Blocks(func(b ipv4.Block) {
				applyRestructure(w, states, b, day, kind, r)
			})
		}
	}

	// Single-block changes.
	for si, b := range w.Blocks {
		if !xrand.Bernoulli(r, cfg.BlockChangeFrac) {
			continue
		}
		if states[si].changeDay >= 0 {
			continue // already part of a bulk change
		}
		day := lo + r.Intn(hi-lo)
		kind := PolicySwitch
		if b.Policy == synthnet.Unused {
			kind = Activate
		} else if r.Float64() < 0.25 {
			kind = Deactivate
		}
		restructures = append(restructures, Restructure{
			Prefix: b.Block.Prefix(), Day: day, Kind: kind,
		})
		applyRestructure(w, states, b.Block, day, kind, r)
	}
	return restructures
}

func applyRestructure(w *synthnet.World, states []*blockState, blk ipv4.Block, day int, kind RestructureKind, r interface{ Intn(int) int }) {
	i, ok := w.ByBlock[blk]
	if !ok {
		return
	}
	bs := states[i]
	bs.changeDay = day
	switch kind {
	case Deactivate:
		bs.newPol = synthnet.Unused
	case Activate:
		bs.newPol = clientPolicies[r.Intn(len(clientPolicies))]
	default: // PolicySwitch: flip static<->dynamic or change pool type.
		cur := bs.info.Policy
		for {
			p := clientPolicies[r.Intn(len(clientPolicies))]
			if p != cur {
				bs.newPol = p
				break
			}
		}
	}
}

var clientPolicies = []synthnet.Policy{
	synthnet.StaticSparse, synthnet.StaticDense, synthnet.DynamicRoundRobin,
	synthnet.DynamicLongLease, synthnet.DynamicDaily,
}

func recordBGP(log *bgp.ChangeLog, w *synthnet.World, p ipv4.Prefix, day int, kind bgp.ChangeKind, r interface{ Intn(int) int }) {
	origin := w.ASOf(p.FirstBlock())
	switch kind {
	case bgp.Announce:
		log.Record(day, bgp.Change{Kind: bgp.Announce, Prefix: p, NewOrigin: origin})
	case bgp.Withdraw:
		log.Record(day, bgp.Change{Kind: bgp.Withdraw, Prefix: p, OldOrigin: origin})
	case bgp.OriginChange:
		newOrigin := origin + bgp.ASN(1+r.Intn(100))
		log.Record(day, bgp.Change{Kind: bgp.OriginChange, Prefix: p,
			OldOrigin: origin, NewOrigin: newOrigin})
	}
}

// scheduleBGPNoise adds background announce/withdraw flapping unrelated
// to activity, so steadily-active addresses also see a small BGP-change
// correlation (Figure 5c's baseline).
func scheduleBGPNoise(w *synthnet.World, cfg Config, routing *bgp.ChangeLog) {
	r := xrand.New(w.Seed, "bgp-noise")
	var prefixes []ipv4.Prefix
	var origins []bgp.ASN
	for _, as := range w.ASes {
		for _, p := range as.Prefixes {
			prefixes = append(prefixes, p)
			origins = append(origins, as.Num)
		}
	}
	if len(prefixes) == 0 {
		return
	}
	perDay := cfg.BGPNoisePerDay * float64(len(prefixes)) / 1000
	for day := 1; day < cfg.Days; day++ {
		n := xrand.Poisson(r, perDay)
		for i := 0; i < n; i++ {
			j := r.Intn(len(prefixes))
			// A flap: withdraw then re-announce next day.
			routing.Record(day, bgp.Change{Kind: bgp.Withdraw,
				Prefix: prefixes[j], OldOrigin: origins[j]})
			if day+1 < cfg.Days {
				routing.Record(day+1, bgp.Change{Kind: bgp.Announce,
					Prefix: prefixes[j], NewOrigin: origins[j]})
			}
		}
	}
}
