package sim

import (
	"sort"
	"sync/atomic"

	"ipscope/internal/bgp"
	"ipscope/internal/ipv4"
	"ipscope/internal/par"
	"ipscope/internal/synthnet"
	"ipscope/internal/useragent"
	"ipscope/internal/xrand"
)

func deviceFor(seed uint64) useragent.Device { return useragent.NewDevice(seed) }
func botUA(seed uint64) string               { return useragent.BotUA(seed) }

// shardAccum is what one shard of contiguous /24 blocks produces over
// the whole run. Set contents are disjoint-by-block across shards, so
// merging shards in ascending order reconstructs exactly the state the
// sequential loop would have built.
type shardAccum struct {
	daily          []*ipv4.Set // activity per day of the daily window
	weekly         []*ipv4.Set // activity per week
	icmp           []*ipv4.Set // ICMP responders per campaign snapshot
	server, router *ipv4.Set
}

// runState is the shared, shard-partitioned state of one Run: the
// per-block slots are written lock-free by the owning shard only, and
// merged in block order afterwards.
type runState struct {
	cfg      Config
	w        *synthnet.World
	states   []*blockState
	scanDay  map[int]int // day -> scan index
	numWeeks int
	uaStart  int
	uaEnd    int

	traffic   []*BlockTraffic // per block index
	ua        []*UAStat       // per block index
	dayTotals [][]float64     // per block index: hits per daily-window day

	// Weekly top-share rendezvous: each shard deposits its week's
	// per-address hit values (ascending block order) into its slot and
	// counts the close down; the last close computes the share and
	// frees the week's values, so memory stays bounded by in-flight
	// weeks instead of the whole run.
	weekVals    [][][]float64 // [week][shard]
	weekPending []int32       // remaining closes (shards x closes-per-week)
	topShare    []float64     // [week], written once by the closing shard
}

// Run simulates cfg.Days days of activity over world w, sharding the
// per-tick observation loop across cfg.Workers workers. Results are
// bit-identical for any worker count: each /24 evolves from its own
// seeded stream, shards own contiguous block ranges, and all merges
// happen in ascending block order.
func Run(w *synthnet.World, cfg Config) *Result {
	cfg = cfg.normalized()
	res := &Result{
		Config:  cfg,
		World:   w,
		Traffic: make(map[ipv4.Block]*BlockTraffic),
		UA:      make(map[ipv4.Block]*UAStat),
	}

	states := make([]*blockState, len(w.Blocks))
	par.ForEach(len(w.Blocks), par.Workers(cfg.Workers), func(i int) {
		states[i] = newBlockState(w.Blocks[i], cfg)
	})
	res.Routing = bgp.NewChangeLog(w.BaseRouting, cfg.Days)
	scheduleRestructures(w, states, cfg, res)
	scheduleBGPNoise(w, cfg, res)

	rs := &runState{
		cfg:       cfg,
		w:         w,
		states:    states,
		scanDay:   make(map[int]int, len(cfg.ICMPScanDays)),
		uaStart:   cfg.DailyStart + cfg.DailyLen - cfg.UADays,
		uaEnd:     cfg.DailyStart + cfg.DailyLen,
		traffic:   make([]*BlockTraffic, len(states)),
		ua:        make([]*UAStat, len(states)),
		dayTotals: make([][]float64, len(states)),
	}
	for i, d := range cfg.ICMPScanDays {
		rs.scanDay[d] = i
	}
	rs.numWeeks = cfg.Days / 7
	if rs.numWeeks == 0 {
		rs.numWeeks = 1
	}

	// The observation loop: each shard animates its contiguous block
	// range through all days independently.
	workers := par.Workers(cfg.Workers)
	numShards := len(par.Split(len(states), workers))
	rs.initWeekGather(numShards)
	accs := make([]*shardAccum, numShards)
	par.ForEachShard(len(states), workers, func(shard, lo, hi int) {
		accs[shard] = rs.runShard(shard, lo, hi)
	})

	rs.merge(res, accs)
	return res
}

// initWeekGather sizes the weekly top-share rendezvous: every shard
// closes each week a fixed, precomputable number of times (normally
// once; twice for a clamped final partial week).
func (rs *runState) initWeekGather(numShards int) {
	closes := make([]int32, rs.numWeeks)
	for day := 0; day < rs.cfg.Days; day++ {
		if (day+1)%7 == 0 || day == rs.cfg.Days-1 {
			wk := day / 7
			if wk >= rs.numWeeks {
				wk = rs.numWeeks - 1
			}
			closes[wk]++
		}
	}
	rs.weekVals = make([][][]float64, rs.numWeeks)
	rs.weekPending = make([]int32, rs.numWeeks)
	rs.topShare = make([]float64, rs.numWeeks)
	for wk := range rs.weekVals {
		rs.weekVals[wk] = make([][]float64, numShards)
		rs.weekPending[wk] = closes[wk] * int32(numShards)
	}
}

// closeWeek deposits one shard's values for week wk. A clamped final
// week closes twice per shard; the later deposit overwrites the slot,
// preserving the sequential engine's last-close-wins semantics. The
// goroutine performing the final close computes the share: the atomic
// countdown orders it after every deposit, and concatenating slots in
// shard order restores global ascending block order.
func (rs *runState) closeWeek(wk, shard int, vals []float64) {
	rs.weekVals[wk][shard] = vals
	if atomic.AddInt32(&rs.weekPending[wk], -1) != 0 {
		return
	}
	var all []float64
	for _, v := range rs.weekVals[wk] {
		all = append(all, v...)
	}
	rs.topShare[wk] = topShareVals(all, 0.10)
	rs.weekVals[wk] = nil // week complete: free its values
}

// runShard animates blocks [lo, hi) through every simulated day.
func (rs *runState) runShard(shard, lo, hi int) *shardAccum {
	cfg := rs.cfg
	acc := &shardAccum{
		daily:  newSets(cfg.DailyLen),
		weekly: newSets(rs.numWeeks),
		icmp:   newSets(len(cfg.ICMPScanDays)),
		server: ipv4.NewSet(),
		router: ipv4.NewSet(),
	}
	// Per-week per-address hit accumulator, reset weekly.
	weekHits := make(map[ipv4.Block]*[256]float64)
	var out dayOutput

	for day := 0; day < cfg.Days; day++ {
		wk := day / 7
		if wk >= rs.numWeeks {
			wk = rs.numWeeks - 1
		}
		inDaily := day >= cfg.DailyStart && day < cfg.DailyStart+cfg.DailyLen
		di := day - cfg.DailyStart
		inUA := day >= rs.uaStart && day < rs.uaEnd
		scanIdx, isScanDay := rs.scanDay[day]

		for si := lo; si < hi; si++ {
			bs := rs.states[si]
			bs.step(day, cfg, &out)
			blk := rs.w.Blocks[si].Block
			if !out.bm.IsEmpty() {
				acc.weekly[wk].AddBlockBitmap(blk, &out.bm)
				wh := weekHits[blk]
				if wh == nil {
					wh = new([256]float64)
					weekHits[blk] = wh
				}
				for h := 0; h < 256; h++ {
					wh[h] += out.hits[h]
				}
				if inDaily {
					acc.daily[di].AddBlockBitmap(blk, &out.bm)
					dt := rs.dayTotals[si]
					if dt == nil {
						dt = make([]float64, cfg.DailyLen)
						rs.dayTotals[si] = dt
					}
					dt[di] = out.total
					bt := rs.traffic[si]
					if bt == nil {
						bt = new(BlockTraffic)
						rs.traffic[si] = bt
					}
					out.bm.ForEach(func(h byte) {
						bt.DaysActive[h]++
						bt.Hits[h] += out.hits[h]
					})
				}
				if inUA && out.total > 0 {
					rs.sampleUA(bs, &out, si)
				}
			}
			if isScanDay {
				resp := bs.icmpResponsive(day, &out.bm)
				if !resp.IsEmpty() {
					acc.icmp[scanIdx].AddBlockBitmap(blk, &resp)
				}
			}
		}

		// Close out the week: extract this shard's per-address hit
		// values in block order and deposit them at the rendezvous.
		if (day+1)%7 == 0 || day == cfg.Days-1 {
			rs.closeWeek(wk, shard, weekValsOf(weekHits))
			weekHits = make(map[ipv4.Block]*[256]float64)
		}
	}

	// Static scan surfaces (service ports, traceroute).
	for si := lo; si < hi; si++ {
		bs := rs.states[si]
		blk := rs.w.Blocks[si].Block
		if m := bs.serviceHosts(); !m.IsEmpty() {
			acc.server.AddBlockBitmap(blk, &m)
		}
		if m := bs.routerHosts(); !m.IsEmpty() {
			acc.router.AddBlockBitmap(blk, &m)
		}
	}
	return acc
}

// merge folds the shard accumulators into res. Shards are visited in
// ascending order and per-block slots in ascending block order, so the
// result — including float accumulation — does not depend on the
// worker count.
func (rs *runState) merge(res *Result, accs []*shardAccum) {
	cfg := rs.cfg
	res.Daily = newSets(cfg.DailyLen)
	res.Weekly = newSets(rs.numWeeks)
	res.ICMPScans = newSets(len(cfg.ICMPScanDays))
	res.DailyTotalHits = make([]float64, cfg.DailyLen)
	res.WeeklyTopShare = make([]float64, rs.numWeeks)
	res.ServerSet = ipv4.NewSet()
	res.RouterSet = ipv4.NewSet()

	for _, acc := range accs {
		for di, s := range acc.daily {
			res.Daily[di].UnionWith(s)
		}
		for wk, s := range acc.weekly {
			res.Weekly[wk].UnionWith(s)
		}
		for i, s := range acc.icmp {
			res.ICMPScans[i].UnionWith(s)
		}
		res.ServerSet.UnionWith(acc.server)
		res.RouterSet.UnionWith(acc.router)
	}

	// Weekly top-traffic shares were computed at the per-week
	// rendezvous as shards finished each week.
	copy(res.WeeklyTopShare, rs.topShare)

	for si := range rs.states {
		blk := rs.w.Blocks[si].Block
		if bt := rs.traffic[si]; bt != nil {
			res.Traffic[blk] = bt
		}
		if st := rs.ua[si]; st != nil {
			res.UA[blk] = st
		}
		if dt := rs.dayTotals[si]; dt != nil {
			for di, v := range dt {
				res.DailyTotalHits[di] += v
			}
		}
	}
}

func newSets(n int) []*ipv4.Set {
	out := make([]*ipv4.Set, n)
	for i := range out {
		out[i] = ipv4.NewSet()
	}
	return out
}

// sampleUA samples User-Agent strings for one block-day at the
// pipeline's 1-in-4K rate and folds them into the block's sketch.
func (rs *runState) sampleUA(bs *blockState, out *dayOutput, si int) {
	n := bs.sampler.SampleN(int(out.total))
	if n == 0 {
		return
	}
	st := rs.ua[si]
	if st == nil {
		st = &UAStat{Sketch: useragent.NewHLL(12)}
		rs.ua[si] = st
	}
	st.Samples += n
	for i := 0; i < n; i++ {
		// Pick the sampled request's subscriber weighted by traffic:
		// approximate by a hits-weighted draw over active subscribers.
		idx := weightedSub(bs, out)
		st.Sketch.AddString(bs.deviceUA(out.activeSubs[idx]))
	}
}

func weightedSub(bs *blockState, out *dayOutput) int {
	if len(out.activeSubs) == 1 {
		return 0
	}
	x := bs.rng.Float64() * out.total
	for i, h := range out.hostOf {
		x -= out.hits[byte(h)]
		if x < 0 {
			return i
		}
	}
	return len(out.activeSubs) - 1
}

// weekValsOf flattens one week's per-address hit accumulator into the
// positive hit values, blocks in ascending order, hosts ascending
// within each block. The fixed order is what lets shard outputs be
// concatenated into the exact value sequence of a sequential run.
func weekValsOf(weekHits map[ipv4.Block]*[256]float64) []float64 {
	blocks := make([]ipv4.Block, 0, len(weekHits))
	for b := range weekHits {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	var vals []float64
	for _, b := range blocks {
		for _, v := range weekHits[b] {
			if v > 0 {
				vals = append(vals, v)
			}
		}
	}
	return vals
}

// topShareVals computes the share of total traffic received by the top
// fraction frac of addresses. The total is accumulated in the order
// vals were collected (ascending block order) so the float result is
// deterministic across runs and worker counts.
func topShareVals(vals []float64, frac float64) float64 {
	total := 0.0
	for _, v := range vals {
		total += v
	}
	if len(vals) == 0 || total == 0 {
		return 0
	}
	sorted := make([]float64, len(vals))
	copy(sorted, vals)
	sort.Float64s(sorted)
	k := int(float64(len(sorted)) * frac)
	if k < 1 {
		k = 1
	}
	sum := 0.0
	for _, v := range sorted[len(sorted)-k:] {
		sum += v
	}
	return sum / total
}

// scheduleRestructures picks prefixes and blocks for mid-run assignment
// changes, wires them into block states, and couples a fraction to BGP.
func scheduleRestructures(w *synthnet.World, states []*blockState, cfg Config, res *Result) {
	r := xrand.New(w.Seed, "restructure")
	// Spread restructurings across (almost) the whole year, as in the
	// wild; a small margin keeps the first/last snapshots comparable.
	lo, hi := cfg.Days/20, cfg.Days*19/20
	if hi <= lo {
		lo, hi = 0, cfg.Days
	}

	// Bulk (prefix-level) changes.
	for _, as := range w.ASes {
		for _, p := range as.Prefixes {
			if !xrand.Bernoulli(r, cfg.PrefixChangeFrac) {
				continue
			}
			day := lo + r.Intn(hi-lo)
			// Classify by current content: mostly-unused prefixes
			// activate; others switch policy or go dark.
			unused := 0
			p.Blocks(func(b ipv4.Block) {
				if bi, ok := w.BlockInfo(b); ok && bi.Policy == synthnet.Unused {
					unused++
				}
			})
			kind := PolicySwitch
			switch {
			case unused*2 >= p.NumBlocks():
				kind = Activate
			case r.Float64() < 0.5:
				kind = Deactivate
			}
			re := Restructure{Prefix: p, Day: day, Kind: kind}
			if xrand.Bernoulli(r, cfg.BGPCoupleProb) {
				re.BGPVisible = true
				switch kind {
				case Activate:
					re.BGPKind = bgp.Announce
				case Deactivate:
					if r.Float64() < 0.5 {
						re.BGPKind = bgp.Withdraw
					} else {
						re.BGPKind = bgp.OriginChange
					}
				default:
					re.BGPKind = bgp.OriginChange
				}
				recordBGP(res.Routing, w, p, day, re.BGPKind, r)
			}
			res.Restructures = append(res.Restructures, re)
			p.Blocks(func(b ipv4.Block) {
				applyRestructure(w, states, b, day, kind, r)
			})
		}
	}

	// Single-block changes.
	for si, b := range w.Blocks {
		if !xrand.Bernoulli(r, cfg.BlockChangeFrac) {
			continue
		}
		if states[si].changeDay >= 0 {
			continue // already part of a bulk change
		}
		day := lo + r.Intn(hi-lo)
		kind := PolicySwitch
		if b.Policy == synthnet.Unused {
			kind = Activate
		} else if r.Float64() < 0.25 {
			kind = Deactivate
		}
		res.Restructures = append(res.Restructures, Restructure{
			Prefix: b.Block.Prefix(), Day: day, Kind: kind,
		})
		applyRestructure(w, states, b.Block, day, kind, r)
	}
}

func applyRestructure(w *synthnet.World, states []*blockState, blk ipv4.Block, day int, kind RestructureKind, r interface{ Intn(int) int }) {
	i, ok := w.ByBlock[blk]
	if !ok {
		return
	}
	bs := states[i]
	bs.changeDay = day
	switch kind {
	case Deactivate:
		bs.newPol = synthnet.Unused
	case Activate:
		bs.newPol = clientPolicies[r.Intn(len(clientPolicies))]
	default: // PolicySwitch: flip static<->dynamic or change pool type.
		cur := bs.info.Policy
		for {
			p := clientPolicies[r.Intn(len(clientPolicies))]
			if p != cur {
				bs.newPol = p
				break
			}
		}
	}
}

var clientPolicies = []synthnet.Policy{
	synthnet.StaticSparse, synthnet.StaticDense, synthnet.DynamicRoundRobin,
	synthnet.DynamicLongLease, synthnet.DynamicDaily,
}

func recordBGP(log *bgp.ChangeLog, w *synthnet.World, p ipv4.Prefix, day int, kind bgp.ChangeKind, r interface{ Intn(int) int }) {
	origin := w.ASOf(p.FirstBlock())
	switch kind {
	case bgp.Announce:
		log.Record(day, bgp.Change{Kind: bgp.Announce, Prefix: p, NewOrigin: origin})
	case bgp.Withdraw:
		log.Record(day, bgp.Change{Kind: bgp.Withdraw, Prefix: p, OldOrigin: origin})
	case bgp.OriginChange:
		newOrigin := origin + bgp.ASN(1+r.Intn(100))
		log.Record(day, bgp.Change{Kind: bgp.OriginChange, Prefix: p,
			OldOrigin: origin, NewOrigin: newOrigin})
	}
}

// scheduleBGPNoise adds background announce/withdraw flapping unrelated
// to activity, so steadily-active addresses also see a small BGP-change
// correlation (Figure 5c's baseline).
func scheduleBGPNoise(w *synthnet.World, cfg Config, res *Result) {
	r := xrand.New(w.Seed, "bgp-noise")
	var prefixes []ipv4.Prefix
	var origins []bgp.ASN
	for _, as := range w.ASes {
		for _, p := range as.Prefixes {
			prefixes = append(prefixes, p)
			origins = append(origins, as.Num)
		}
	}
	if len(prefixes) == 0 {
		return
	}
	perDay := cfg.BGPNoisePerDay * float64(len(prefixes)) / 1000
	for day := 1; day < cfg.Days; day++ {
		n := xrand.Poisson(r, perDay)
		for i := 0; i < n; i++ {
			j := r.Intn(len(prefixes))
			// A flap: withdraw then re-announce next day.
			res.Routing.Record(day, bgp.Change{Kind: bgp.Withdraw,
				Prefix: prefixes[j], OldOrigin: origins[j]})
			if day+1 < cfg.Days {
				res.Routing.Record(day+1, bgp.Change{Kind: bgp.Announce,
					Prefix: prefixes[j], NewOrigin: origins[j]})
			}
		}
	}
}
