package sim

import (
	"math"
	"testing"

	"ipscope/internal/ipv4"
	"ipscope/internal/synthnet"
)

// requireEqualResults fails unless a and b are observably identical:
// same sets, same float series bit for bit, same traffic and UA
// aggregates, same ground-truth schedule.
func requireEqualResults(t *testing.T, a, b *Result) {
	t.Helper()
	equalSets := func(name string, xs, ys []*ipv4.Set) {
		if len(xs) != len(ys) {
			t.Fatalf("%s: %d vs %d snapshots", name, len(xs), len(ys))
		}
		for i := range xs {
			if !xs[i].Equal(ys[i]) {
				t.Fatalf("%s[%d] differs", name, i)
			}
		}
	}
	equalSets("Daily", a.Daily, b.Daily)
	equalSets("Weekly", a.Weekly, b.Weekly)
	equalSets("ICMPScans", a.ICMPScans, b.ICMPScans)
	if !a.ServerSet.Equal(b.ServerSet) {
		t.Fatal("ServerSet differs")
	}
	if !a.RouterSet.Equal(b.RouterSet) {
		t.Fatal("RouterSet differs")
	}
	for i := range a.DailyTotalHits {
		if math.Float64bits(a.DailyTotalHits[i]) != math.Float64bits(b.DailyTotalHits[i]) {
			t.Fatalf("DailyTotalHits[%d]: %v vs %v", i, a.DailyTotalHits[i], b.DailyTotalHits[i])
		}
	}
	for i := range a.WeeklyTopShare {
		if math.Float64bits(a.WeeklyTopShare[i]) != math.Float64bits(b.WeeklyTopShare[i]) {
			t.Fatalf("WeeklyTopShare[%d]: %v vs %v", i, a.WeeklyTopShare[i], b.WeeklyTopShare[i])
		}
	}
	if len(a.Traffic) != len(b.Traffic) {
		t.Fatalf("Traffic: %d vs %d blocks", len(a.Traffic), len(b.Traffic))
	}
	for blk, at := range a.Traffic {
		bt := b.Traffic[blk]
		if bt == nil || *at != *bt {
			t.Fatalf("Traffic[%v] differs", blk)
		}
	}
	if len(a.UA) != len(b.UA) {
		t.Fatalf("UA: %d vs %d blocks", len(a.UA), len(b.UA))
	}
	for blk, au := range a.UA {
		bu := b.UA[blk]
		if bu == nil || au.Samples != bu.Samples || au.Unique() != bu.Unique() {
			t.Fatalf("UA[%v] differs", blk)
		}
	}
	if len(a.Restructures) != len(b.Restructures) {
		t.Fatal("Restructures differ in length")
	}
	for i := range a.Restructures {
		if a.Restructures[i] != b.Restructures[i] {
			t.Fatalf("Restructures[%d] differs", i)
		}
	}
}

// TestRunParallelEquivalence is the engine's core guarantee: the
// sharded parallel path produces output identical to the sequential
// (one-worker) path for a fixed seed, at several worker counts
// including more workers than blocks.
func TestRunParallelEquivalence(t *testing.T) {
	w := synthnet.Generate(synthnet.TinyConfig())
	nb := len(w.Blocks)

	configs := map[string]Config{
		"weeks-aligned": TinyConfig(),
	}
	// Days not divisible by 7: the clamped final week closes twice per
	// shard (last close wins), which must also be worker-independent.
	partial := TinyConfig()
	partial.Days = 61
	configs["partial-final-week"] = partial

	for name, base := range configs {
		t.Run(name, func(t *testing.T) {
			seq := base
			seq.Workers = 1
			ref := Run(w, seq)
			for _, workers := range []int{2, 3, 7, nb, nb + 1000} {
				cfg := base
				cfg.Workers = workers
				got := Run(w, cfg)
				requireEqualResults(t, ref, got)
				if t.Failed() {
					t.Fatalf("workers=%d diverged from sequential", workers)
				}
			}
		})
	}
}

// TestRunParallelRepeatable: the default (GOMAXPROCS) worker count is
// deterministic run to run.
func TestRunParallelRepeatable(t *testing.T) {
	w := synthnet.Generate(synthnet.TinyConfig())
	r1 := Run(w, TinyConfig())
	r2 := Run(w, TinyConfig())
	requireEqualResults(t, r1, r2)
}
