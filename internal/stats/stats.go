// Package stats provides the small statistical toolkit used by the
// ipscope analyses: percentiles, summaries, CDFs, histograms, binning
// and ordinary least-squares regression.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. It returns NaN for an
// empty input. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

func percentileSorted(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Percentiles returns several percentiles with a single sort.
func Percentiles(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	for i, p := range ps {
		out[i] = percentileSorted(s, p)
	}
	return out
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Mean returns the arithmetic mean, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Summary holds a five-point summary of a sample.
type Summary struct {
	N                int
	Min, Median, Max float64
	Mean             float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		nan := math.NaN()
		return Summary{0, nan, nan, nan, nan}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Summary{
		N:      len(s),
		Min:    s[0],
		Median: percentileSorted(s, 50),
		Max:    s[len(s)-1],
		Mean:   Mean(s),
	}
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	xs []float64 // sorted sample
}

// NewCDF builds an empirical CDF from a sample.
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{xs: s}
}

// N returns the sample size.
func (c *CDF) N() int { return len(c.xs) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.xs) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(c.xs, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.xs))
}

// Quantile returns the q-quantile (0..1).
func (c *CDF) Quantile(q float64) float64 {
	if len(c.xs) == 0 {
		return math.NaN()
	}
	return percentileSorted(c.xs, q*100)
}

// Points returns up to n evenly spaced (x, P(X<=x)) points for plotting.
func (c *CDF) Points(n int) (xs, ps []float64) {
	if len(c.xs) == 0 || n <= 0 {
		return nil, nil
	}
	if n > len(c.xs) {
		n = len(c.xs)
	}
	xs = make([]float64, n)
	ps = make([]float64, n)
	for i := 0; i < n; i++ {
		idx := i * (len(c.xs) - 1) / max(n-1, 1)
		xs[i] = c.xs[idx]
		ps[i] = float64(idx+1) / float64(len(c.xs))
	}
	return xs, ps
}

// Histogram is a fixed-width histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi  float64
	Counts  []int
	Under   int // observations < Lo
	Over    int // observations >= Hi
	samples int
}

// NewHistogram creates a histogram with nbins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram [%v,%v)/%d", lo, hi, nbins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.samples++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i >= len(h.Counts) { // float edge case
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// N returns the total number of observations recorded.
func (h *Histogram) N() int { return h.samples }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Fractions returns the in-range bin counts normalized by total samples.
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Counts))
	if h.samples == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.samples)
	}
	return out
}

// LinearFit holds an ordinary-least-squares line y = Slope*x + Intercept.
type LinearFit struct {
	Slope, Intercept float64
	R2               float64
}

// FitLine fits y = a*x + b by least squares. It needs at least two
// distinct x values; otherwise it returns a zero fit with R2 = NaN.
func FitLine(xs, ys []float64) LinearFit {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return LinearFit{R2: math.NaN()}
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{R2: math.NaN()}
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx}
	if syy == 0 {
		fit.R2 = 1
	} else {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	return fit
}

// At evaluates the fitted line at x.
func (f LinearFit) At(x float64) float64 { return f.Slope*x + f.Intercept }

// NormalizeLog maps v into [0,1] by log-transforming and dividing by the
// log of the maximum, as used for the demographics features in the paper
// (Section 7). Values <= 0 map to 0; maxV <= 1 maps everything to 0.
func NormalizeLog(v, maxV float64) float64 {
	if v <= 0 || maxV <= 1 {
		return 0
	}
	n := math.Log(1+v) / math.Log(1+maxV)
	if n > 1 {
		return 1
	}
	return n
}

// BinIndex maps a normalized value in [0,1] to one of nbins bins,
// clamping 1.0 into the last bin.
func BinIndex(v float64, nbins int) int {
	if v < 0 {
		v = 0
	}
	i := int(v * float64(nbins))
	if i >= nbins {
		i = nbins - 1
	}
	return i
}
