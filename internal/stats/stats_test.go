package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPercentileKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-5, 1}, {110, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEq(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{10, 20}
	if got := Percentile(xs, 50); !almostEq(got, 15, 1e-9) {
		t.Errorf("interpolated median = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("input was mutated")
	}
}

func TestPercentilesMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	ps := []float64{5, 25, 50, 75, 95}
	multi := Percentiles(xs, ps...)
	for i, p := range ps {
		if single := Percentile(xs, p); !almostEq(single, multi[i], 1e-9) {
			t.Errorf("p%v: %v vs %v", p, single, multi[i])
		}
	}
}

func TestMedianMeanSummary(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Median(xs); !almostEq(got, 2.5, 1e-9) {
		t.Errorf("Median = %v", got)
	}
	if got := Mean(xs); !almostEq(got, 2.5, 1e-9) {
		t.Errorf("Mean = %v", got)
	}
	s := Summarize(xs)
	if s.N != 4 || s.Min != 1 || s.Max != 4 || !almostEq(s.Median, 2.5, 1e-9) {
		t.Errorf("Summary = %+v", s)
	}
	e := Summarize(nil)
	if e.N != 0 || !math.IsNaN(e.Min) {
		t.Errorf("empty summary = %+v", e)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {9, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); !almostEq(got, cse.want, 1e-9) {
			t.Errorf("At(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
	if got := c.Quantile(0.5); !almostEq(got, 2, 1e-9) {
		t.Errorf("Quantile(0.5) = %v", got)
	}
	xs, ps := c.Points(3)
	if len(xs) != 3 || len(ps) != 3 {
		t.Fatalf("Points: %v %v", xs, ps)
	}
	if !sort.Float64sAreSorted(xs) || !sort.Float64sAreSorted(ps) {
		t.Error("Points must be nondecreasing")
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, probe1, probe2 float64) bool {
		clean := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		c := NewCDF(clean)
		a, b := probe1, probe2
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return c.At(a) <= c.At(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("Under=%d Over=%d", h.Under, h.Over)
	}
	wantCounts := []int{2, 1, 1, 0, 1}
	for i, w := range wantCounts {
		if h.Counts[i] != w {
			t.Errorf("bin %d = %d, want %d (all %v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if h.N() != 8 {
		t.Errorf("N = %d", h.N())
	}
	if got := h.BinCenter(0); !almostEq(got, 1, 1e-9) {
		t.Errorf("BinCenter(0) = %v", got)
	}
	fr := h.Fractions()
	sum := 0.0
	for _, f := range fr {
		sum += f
	}
	if !almostEq(sum, 5.0/8.0, 1e-9) {
		t.Errorf("fractions sum = %v", sum)
	}
}

func TestHistogramPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestFitLineExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x+1
	f := FitLine(xs, ys)
	if !almostEq(f.Slope, 2, 1e-9) || !almostEq(f.Intercept, 1, 1e-9) {
		t.Errorf("fit = %+v", f)
	}
	if !almostEq(f.R2, 1, 1e-9) {
		t.Errorf("R2 = %v", f.R2)
	}
	if !almostEq(f.At(10), 21, 1e-9) {
		t.Errorf("At(10) = %v", f.At(10))
	}
}

func TestFitLineNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var xs, ys []float64
	for i := 0; i < 500; i++ {
		x := float64(i)
		xs = append(xs, x)
		ys = append(ys, 3*x+10+rng.NormFloat64()*5)
	}
	f := FitLine(xs, ys)
	if math.Abs(f.Slope-3) > 0.05 {
		t.Errorf("slope = %v", f.Slope)
	}
	if f.R2 < 0.99 {
		t.Errorf("R2 = %v", f.R2)
	}
}

func TestFitLineDegenerate(t *testing.T) {
	if f := FitLine([]float64{1}, []float64{2}); !math.IsNaN(f.R2) {
		t.Error("n<2 should yield NaN R2")
	}
	if f := FitLine([]float64{2, 2}, []float64{1, 5}); !math.IsNaN(f.R2) {
		t.Error("vertical data should yield NaN R2")
	}
}

func TestNormalizeLogAndBinIndex(t *testing.T) {
	if NormalizeLog(0, 100) != 0 || NormalizeLog(-3, 100) != 0 {
		t.Error("nonpositive values must map to 0")
	}
	if got := NormalizeLog(100, 100); !almostEq(got, 1, 1e-9) {
		t.Errorf("max should map to 1, got %v", got)
	}
	if NormalizeLog(10, 100) <= NormalizeLog(5, 100) {
		t.Error("NormalizeLog must be monotone")
	}
	if BinIndex(0, 10) != 0 || BinIndex(1, 10) != 9 || BinIndex(0.55, 10) != 5 {
		t.Error("BinIndex mapping wrong")
	}
	if BinIndex(-0.5, 10) != 0 {
		t.Error("negative clamps to 0")
	}
}

func TestNormalizeLogProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := float64(a%10000), float64(b%10000)
		nx, ny := NormalizeLog(x, 10000), NormalizeLog(y, 10000)
		if x < y && nx > ny {
			return false
		}
		return nx >= 0 && nx <= 1 && ny >= 0 && ny <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
