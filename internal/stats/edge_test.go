package stats

import (
	"math"
	"testing"
)

func TestPercentilesEmpty(t *testing.T) {
	out := Percentiles(nil, 5, 50, 95)
	if len(out) != 3 {
		t.Fatalf("len = %d", len(out))
	}
	for _, v := range out {
		if !math.IsNaN(v) {
			t.Errorf("empty percentile = %v, want NaN", v)
		}
	}
}

func TestMeanEmpty(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Error("empty mean should be NaN")
	}
}

func TestCDFEmptyAndDegenerate(t *testing.T) {
	c := NewCDF(nil)
	if c.N() != 0 {
		t.Errorf("N = %d", c.N())
	}
	if !math.IsNaN(c.At(1)) {
		t.Error("empty At should be NaN")
	}
	if !math.IsNaN(c.Quantile(0.5)) {
		t.Error("empty Quantile should be NaN")
	}
	if xs, ps := c.Points(5); xs != nil || ps != nil {
		t.Error("empty Points should be nil")
	}
	one := NewCDF([]float64{7})
	if one.N() != 1 || one.Quantile(0.99) != 7 {
		t.Error("single-sample CDF broken")
	}
	if xs, _ := one.Points(0); xs != nil {
		t.Error("n<=0 Points should be nil")
	}
	if xs, _ := one.Points(10); len(xs) != 1 {
		t.Error("Points clamps to sample size")
	}
}

func TestHistogramEmptyFractions(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	fr := h.Fractions()
	for _, f := range fr {
		if f != 0 {
			t.Error("empty histogram fractions must be zero")
		}
	}
	if h.N() != 0 {
		t.Error("empty N")
	}
	// Float edge: a value infinitesimally below Hi lands in last bin.
	h.Add(math.Nextafter(1, 0))
	if h.Counts[3] != 1 {
		t.Errorf("edge value bin: %v", h.Counts)
	}
}

func TestFitLineMismatchedLengths(t *testing.T) {
	f := FitLine([]float64{1, 2}, []float64{1})
	if !math.IsNaN(f.R2) {
		t.Error("mismatched lengths should yield NaN fit")
	}
}

func TestFitLinePerfectlyFlat(t *testing.T) {
	// Zero variance in y: R2 defined as 1 (perfect fit).
	f := FitLine([]float64{0, 1, 2}, []float64{5, 5, 5})
	if f.Slope != 0 || f.R2 != 1 {
		t.Errorf("flat fit = %+v", f)
	}
}

func TestNormalizeLogClamp(t *testing.T) {
	// Values above the max clamp to 1.
	if got := NormalizeLog(1e9, 100); got != 1 {
		t.Errorf("overflow clamp = %v", got)
	}
	// maxV <= 1 maps everything to 0.
	if NormalizeLog(5, 1) != 0 {
		t.Error("degenerate max")
	}
}
