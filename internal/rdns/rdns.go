// Package rdns synthesizes reverse-DNS (PTR) records for address blocks
// and implements the keyword-based assignment-practice tagger the paper
// uses in Section 5.3: blocks whose consistent PTR names contain
// "static" are tagged static, and names containing "dynamic" or "pool"
// are tagged dynamic — a well-known methodology [24, 30, 35].
package rdns

import (
	"fmt"
	"sort"
	"strings"

	"ipscope/internal/ipv4"
	"ipscope/internal/xrand"
)

// Tag is the assignment-practice label inferred from PTR names.
type Tag uint8

// Possible tags.
const (
	Untagged Tag = iota // no consistent keyword evidence
	Static              // names suggest static assignment
	Dynamic             // names suggest dynamic assignment (pools)
)

// String returns the tag name.
func (t Tag) String() string {
	switch t {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	}
	return "untagged"
}

// NamingStyle controls how a block's PTR names are generated.
type NamingStyle uint8

// Naming styles for synthetic PTR zones.
const (
	StyleNone    NamingStyle = iota // no PTR records at all
	StyleStatic                     // "static-1-2-3-4.example.net"
	StyleDynamic                    // "dynamic-1-2-3-4.pool.example.net"
	StyleGeneric                    // "host-1-2-3-4.example.net" (no keywords)
)

// Zone generates PTR names for one /24 block.
type Zone struct {
	Block  ipv4.Block
	Style  NamingStyle
	Domain string
	// Noise is the fraction of names that deviate from the style
	// (missing records, generic names), modelling real-world zones.
	Noise float64
	seed  uint64
}

// NewZone creates a PTR zone for blk. Domain defaults to "example.net".
func NewZone(blk ipv4.Block, style NamingStyle, domain string, noise float64, seed uint64) *Zone {
	if domain == "" {
		domain = "example.net"
	}
	return &Zone{Block: blk, Style: style, Domain: domain, Noise: noise, seed: seed}
}

// Lookup returns the PTR name for host h in the zone, or "" if the
// record does not exist.
func (z *Zone) Lookup(h byte) string {
	if z.Style == StyleNone {
		return ""
	}
	// Deterministic per-host noise.
	r := xrand.Derive(z.seed, fmt.Sprintf("%d/%d", z.Block, h))
	noisy := float64(r%1000)/1000 < z.Noise
	a := z.Block.Addr(h)
	dashed := strings.ReplaceAll(a.String(), ".", "-")
	if noisy {
		if r%3 == 0 {
			return "" // missing record
		}
		return fmt.Sprintf("host-%s.%s", dashed, z.Domain)
	}
	switch z.Style {
	case StyleStatic:
		return fmt.Sprintf("static-%s.%s", dashed, z.Domain)
	case StyleDynamic:
		if r%2 == 0 {
			return fmt.Sprintf("dynamic-%s.pool.%s", dashed, z.Domain)
		}
		return fmt.Sprintf("pool-%s.%s", dashed, z.Domain)
	default:
		return fmt.Sprintf("host-%s.%s", dashed, z.Domain)
	}
}

// ClassifyName tags a single PTR name by keyword.
func ClassifyName(name string) Tag {
	n := strings.ToLower(name)
	switch {
	case strings.Contains(n, "static"):
		return Static
	case strings.Contains(n, "dynamic"), strings.Contains(n, "pool"),
		strings.Contains(n, "dhcp"), strings.Contains(n, "dyn."),
		strings.HasPrefix(n, "dyn-"):
		return Dynamic
	}
	return Untagged
}

// ClassifyBlock tags a /24 block from its PTR names, requiring that at
// least minConsistent fraction of the resolvable names agree on a tag
// (the paper requires "consistent names"). lookup returns the PTR name
// for a host or "".
func ClassifyBlock(lookup func(h byte) string, minConsistent float64) Tag {
	counts := [3]int{}
	resolvable := 0
	for h := 0; h < 256; h++ {
		name := lookup(byte(h))
		if name == "" {
			continue
		}
		resolvable++
		counts[ClassifyName(name)]++
	}
	if resolvable == 0 {
		return Untagged
	}
	need := int(minConsistent * float64(resolvable))
	if need < 1 {
		need = 1
	}
	switch {
	case counts[Static] >= need && counts[Static] > counts[Dynamic]:
		return Static
	case counts[Dynamic] >= need && counts[Dynamic] > counts[Static]:
		return Dynamic
	}
	return Untagged
}

// ClassifyZone applies ClassifyBlock to a Zone.
func ClassifyZone(z *Zone, minConsistent float64) Tag {
	return ClassifyBlock(z.Lookup, minConsistent)
}

// BlockTag pairs a /24 block with its classified tag, the unit a
// TagIndex is built from.
type BlockTag struct {
	Block ipv4.Block
	Tag   Tag
}

// TagIndex is an immutable block→tag lookup table. Classifying a block
// costs 256 PTR synth-and-match operations, far too slow for a
// per-request path; a TagIndex is classified once (typically across a
// worker pool) and then answers lookups with one binary search over a
// block-sorted array.
type TagIndex struct {
	blocks []ipv4.Block
	tags   []Tag
}

// NewTagIndex builds a TagIndex from classified pairs. The input may be
// in any order; on duplicate blocks the last pair wins.
func NewTagIndex(pairs []BlockTag) *TagIndex {
	sorted := append([]BlockTag(nil), pairs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Block < sorted[j].Block })
	t := &TagIndex{
		blocks: make([]ipv4.Block, 0, len(sorted)),
		tags:   make([]Tag, 0, len(sorted)),
	}
	for i, p := range sorted {
		if i+1 < len(sorted) && sorted[i+1].Block == p.Block {
			continue // a later duplicate supersedes this pair
		}
		t.blocks = append(t.blocks, p.Block)
		t.tags = append(t.tags, p.Tag)
	}
	return t
}

// Len returns the number of indexed blocks.
func (t *TagIndex) Len() int { return len(t.blocks) }

// Tags enumerates the indexed pairs in ascending block order. The
// returned slice is freshly allocated; feeding it back to NewTagIndex
// reproduces an identical index, which is what makes the pair list a
// canonical serialization unit.
func (t *TagIndex) Tags() []BlockTag {
	pairs := make([]BlockTag, len(t.blocks))
	for i, blk := range t.blocks {
		pairs[i] = BlockTag{Block: blk, Tag: t.tags[i]}
	}
	return pairs
}

// Lookup returns the tag for blk and whether the block is indexed.
func (t *TagIndex) Lookup(blk ipv4.Block) (Tag, bool) {
	i := sort.Search(len(t.blocks), func(i int) bool { return t.blocks[i] >= blk })
	if i == len(t.blocks) || t.blocks[i] != blk {
		return Untagged, false
	}
	return t.tags[i], true
}
