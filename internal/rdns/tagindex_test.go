package rdns

import (
	"testing"

	"ipscope/internal/ipv4"
)

func TestTagIndexLookup(t *testing.T) {
	pairs := []BlockTag{
		{Block: ipv4.Block(30), Tag: Dynamic},
		{Block: ipv4.Block(10), Tag: Static},
		{Block: ipv4.Block(20), Tag: Untagged},
	}
	idx := NewTagIndex(pairs)
	if idx.Len() != 3 {
		t.Fatalf("Len = %d, want 3", idx.Len())
	}
	for _, tc := range pairs {
		got, ok := idx.Lookup(tc.Block)
		if !ok || got != tc.Tag {
			t.Errorf("Lookup(%v) = %v,%v want %v,true", tc.Block, got, ok, tc.Tag)
		}
	}
	if _, ok := idx.Lookup(ipv4.Block(15)); ok {
		t.Error("Lookup of unindexed block should miss")
	}
	if tag, ok := idx.Lookup(ipv4.Block(40)); ok || tag != Untagged {
		t.Error("miss should report Untagged,false")
	}
}

func TestTagIndexDuplicateLastWins(t *testing.T) {
	idx := NewTagIndex([]BlockTag{
		{Block: ipv4.Block(7), Tag: Static},
		{Block: ipv4.Block(7), Tag: Dynamic},
	})
	if idx.Len() != 1 {
		t.Fatalf("Len = %d, want 1", idx.Len())
	}
	if tag, _ := idx.Lookup(ipv4.Block(7)); tag != Dynamic {
		t.Errorf("duplicate: got %v, want Dynamic (last wins)", tag)
	}
}

func TestTagIndexEmpty(t *testing.T) {
	idx := NewTagIndex(nil)
	if idx.Len() != 0 {
		t.Fatalf("Len = %d, want 0", idx.Len())
	}
	if _, ok := idx.Lookup(ipv4.Block(1)); ok {
		t.Error("empty index should miss")
	}
}

// BenchmarkTagLookup shows why the serving layer must not classify PTR
// zones per request: a TagIndex lookup vs a full ClassifyZone of the
// same block.
func BenchmarkTagLookup(b *testing.B) {
	const n = 4096
	pairs := make([]BlockTag, n)
	zones := make([]*Zone, n)
	for i := range pairs {
		blk := ipv4.Block(0x010000 + uint32(i))
		z := NewZone(blk, NamingStyle(1+i%3), "", 0.1, uint64(i))
		zones[i] = z
		pairs[i] = BlockTag{Block: blk, Tag: ClassifyZone(z, 0.6)}
	}
	idx := NewTagIndex(pairs)

	b.Run("index", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			idx.Lookup(pairs[i%n].Block)
		}
	})
	b.Run("classify-per-request", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ClassifyZone(zones[i%n], 0.6)
		}
	})
}
