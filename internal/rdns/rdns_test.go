package rdns

import (
	"strings"
	"testing"

	"ipscope/internal/ipv4"
)

func blk(s string) ipv4.Block { return ipv4.MustParseAddr(s).Block() }

func TestClassifyName(t *testing.T) {
	cases := []struct {
		name string
		want Tag
	}{
		{"static-1-2-3-4.example.net", Static},
		{"STATIC-1-2-3-4.ISP.NET", Static},
		{"dynamic-1-2-3-4.pool.example.net", Dynamic},
		{"pool-1-2-3-4.example.net", Dynamic},
		{"dhcp-99.city.isp.com", Dynamic},
		{"dyn-12-34.isp.com", Dynamic},
		{"host-1-2-3-4.example.net", Untagged},
		{"", Untagged},
	}
	for _, c := range cases {
		if got := ClassifyName(c.name); got != c.want {
			t.Errorf("ClassifyName(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestTagString(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" || Untagged.String() != "untagged" {
		t.Error("Tag.String wrong")
	}
}

func TestZoneStyles(t *testing.T) {
	b := blk("192.0.2.0")
	zs := NewZone(b, StyleStatic, "isp.net", 0, 1)
	name := zs.Lookup(7)
	if !strings.HasPrefix(name, "static-192-0-2-7") || !strings.HasSuffix(name, ".isp.net") {
		t.Errorf("static name = %q", name)
	}
	zd := NewZone(b, StyleDynamic, "", 0, 1)
	if got := ClassifyName(zd.Lookup(9)); got != Dynamic {
		t.Errorf("dynamic zone name classified %v (%q)", got, zd.Lookup(9))
	}
	zn := NewZone(b, StyleNone, "", 0, 1)
	if zn.Lookup(1) != "" {
		t.Error("StyleNone should have no records")
	}
	zg := NewZone(b, StyleGeneric, "", 0, 1)
	if got := ClassifyName(zg.Lookup(1)); got != Untagged {
		t.Errorf("generic name classified %v", got)
	}
}

func TestZoneDeterministic(t *testing.T) {
	b := blk("198.51.100.0")
	z1 := NewZone(b, StyleDynamic, "", 0.3, 42)
	z2 := NewZone(b, StyleDynamic, "", 0.3, 42)
	for h := 0; h < 256; h++ {
		if z1.Lookup(byte(h)) != z2.Lookup(byte(h)) {
			t.Fatal("zone lookups not deterministic")
		}
	}
}

func TestClassifyZone(t *testing.T) {
	b := blk("203.0.113.0")
	cases := []struct {
		style NamingStyle
		noise float64
		want  Tag
	}{
		{StyleStatic, 0, Static},
		{StyleDynamic, 0, Dynamic},
		{StyleGeneric, 0, Untagged},
		{StyleNone, 0, Untagged},
		{StyleStatic, 0.2, Static}, // tolerate noise
		{StyleDynamic, 0.2, Dynamic},
	}
	for _, c := range cases {
		z := NewZone(b, c.style, "", c.noise, 7)
		if got := ClassifyZone(z, 0.6); got != c.want {
			t.Errorf("style=%v noise=%v: got %v, want %v", c.style, c.noise, got, c.want)
		}
	}
}

func TestClassifyBlockThreshold(t *testing.T) {
	// Half static, half dynamic: no tag should win at 60% consistency.
	lookup := func(h byte) string {
		if h < 128 {
			return "static-x.example.net"
		}
		return "pool-x.example.net"
	}
	if got := ClassifyBlock(lookup, 0.6); got != Untagged {
		t.Errorf("mixed block classified %v", got)
	}
	// 70% static should pass.
	lookup70 := func(h byte) string {
		if int(h) < 180 {
			return "static-x.example.net"
		}
		return "host-x.example.net"
	}
	if got := ClassifyBlock(lookup70, 0.6); got != Static {
		t.Errorf("70%% static block classified %v", got)
	}
	// Empty zone.
	if got := ClassifyBlock(func(byte) string { return "" }, 0.6); got != Untagged {
		t.Errorf("empty zone classified %v", got)
	}
}
