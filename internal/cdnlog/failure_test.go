package cdnlog

import (
	"context"
	"net"
	"testing"
	"time"

	"ipscope/internal/ipv4"
)

// TestCollectorSurvivesMalformedStream injects garbage into a live
// collector: the offending connection must be dropped with a recorded
// error, while well-behaved edges continue to be served.
func TestCollectorSurvivesMalformedStream(t *testing.T) {
	agg := NewAggregator(1)
	col := NewCollector(agg)
	addr, err := col.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// A rogue client sends garbage.
	rogue, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	rogue.Write([]byte("GET / HTTP/1.1\r\nHost: nope\r\n\r\n"))
	rogue.Close()

	// A legitimate edge still delivers.
	edge, err := DialEdge(context.Background(), addr.String())
	if err != nil {
		t.Fatal(err)
	}
	if err := edge.Log(Record{Addr: ipv4.MustParseAddr("10.0.0.1"), Day: 0, Hits: 1}); err != nil {
		t.Fatal(err)
	}
	if err := edge.Close(); err != nil {
		t.Fatalf("legit edge failed: %v", err)
	}

	if err := col.Close(); err == nil {
		t.Error("collector should report the malformed stream")
	}
	if !agg.Day(0).Contains(ipv4.MustParseAddr("10.0.0.1")) {
		t.Error("legitimate record lost")
	}
}

// TestEdgeAckTimeout ensures an edge does not hang forever when the
// peer never acknowledges: it must fail Close with a deadline error.
func TestEdgeAckTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// A server that reads but never acks.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 4096)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}()

	edge, err := DialEdge(context.Background(), ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// Shrink the deadline via the connection directly: Close sets its
	// own deadline, so instead verify the deadline path with a
	// pre-expired read deadline after Close's write phase by racing a
	// short timer. To keep the test fast, we simply assert that Close
	// returns an error once we forcibly time out the connection.
	done := make(chan error, 1)
	go func() {
		edge.conn.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		done <- edge.closeWithDeadline(100 * time.Millisecond)
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("Close should fail without ack")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung despite missing ack")
	}
}

// TestCollectorErrSurfacesEarly: a stream error must be observable via
// Err() and the OnError callback while the collector is still running —
// not only after Close (the error previously leaked until shutdown).
func TestCollectorErrSurfacesEarly(t *testing.T) {
	agg := NewAggregator(1)
	col := NewCollector(agg)
	reported := make(chan error, 4)
	col.OnError = func(err error) { reported <- err }
	addr, err := col.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	rogue, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	rogue.Write([]byte{0xDE, 0xAD, 0xBE, 0xEF})
	rogue.Close()

	// The callback fires from the serving goroutine as the error
	// happens, long before Close.
	var cbErr error
	select {
	case cbErr = <-reported:
	case <-time.After(5 * time.Second):
		t.Fatal("OnError callback never fired")
	}
	if cbErr == nil {
		t.Fatal("OnError delivered nil")
	}

	// Err() sees it too, with the collector still accepting.
	deadline := time.Now().Add(5 * time.Second)
	for col.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("Err() still nil after stream error")
		}
		time.Sleep(time.Millisecond)
	}

	// A well-behaved edge is still served after the failure.
	edge, err := DialEdge(context.Background(), addr.String())
	if err != nil {
		t.Fatal(err)
	}
	if err := edge.Log(Record{Addr: ipv4.MustParseAddr("10.0.0.2"), Day: 0, Hits: 1}); err != nil {
		t.Fatal(err)
	}
	if err := edge.Close(); err != nil {
		t.Fatalf("legit edge failed: %v", err)
	}

	// Close returns the same first error; shutdown-induced accept
	// errors are not reported through the callback.
	if err := col.Close(); err == nil {
		t.Error("Close lost the stream error")
	}
	select {
	case err := <-reported:
		t.Errorf("unexpected extra callback after Close: %v", err)
	default:
	}
	if !agg.Day(0).Contains(ipv4.MustParseAddr("10.0.0.2")) {
		t.Error("legitimate record lost")
	}
}
