package cdnlog

import (
	"context"
	"net"
	"runtime"
	"testing"
	"time"

	"ipscope/internal/ipv4"
)

// TestCollectorContextShutdown proves a context cancellation stops the
// accept loop cleanly: records delivered before the cancel survive, new
// connections are refused, Close drains without an error, and the
// collector's goroutines are gone afterwards.
func TestCollectorContextShutdown(t *testing.T) {
	before := runtime.NumGoroutine()

	agg := NewAggregator(3)
	col := NewCollector(agg)
	ctx, cancel := context.WithCancel(context.Background())
	addr, err := col.ListenContext(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	edge, err := DialEdge(context.Background(), addr.String())
	if err != nil {
		t.Fatal(err)
	}
	if err := edge.Log(Record{Addr: ipv4.MustParseAddr("10.0.0.1"), Day: 0, Hits: 2}); err != nil {
		t.Fatal(err)
	}
	if err := edge.Close(); err != nil { // waits for the delivery ack
		t.Fatal(err)
	}

	cancel()

	// The accept loop must stop: new connections are refused once the
	// listener closes (poll briefly, cancellation is asynchronous).
	deadline := time.Now().Add(2 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr.String(), 200*time.Millisecond)
		if err != nil {
			break
		}
		conn.Close()
		if time.Now().After(deadline) {
			t.Fatal("collector still accepting after context cancel")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Cancellation is not an error condition.
	if err := col.Close(); err != nil {
		t.Fatalf("Close after cancel: %v", err)
	}
	if err := col.Err(); err != nil {
		t.Fatalf("Err after cancel: %v", err)
	}
	if got := agg.TotalHits(); got != 2 {
		t.Fatalf("pre-cancel records lost: TotalHits = %d, want 2", got)
	}

	// Every collector goroutine (watcher, accept loop, per-connection
	// servers) must have exited.
	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= before {
			break
		}
		if i > 100 {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCollectorCloseIdempotentWithContext checks Close after a cancel
// (and a second Close) stays clean.
func TestCollectorCloseIdempotentWithContext(t *testing.T) {
	col := NewCollector(NewAggregator(1))
	ctx, cancel := context.WithCancel(context.Background())
	if _, err := col.ListenContext(ctx, "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := col.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := col.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
