package cdnlog

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Wire format: length-prefixed frames of fixed-size records.
//
//	frame  := magic(2) count(2, big endian) record*count
//	record := addr(4) day(4) hits(4), all big endian
//
// The magic bytes guard against desynchronized streams; a frame holds
// at most MaxBatch records so a corrupted count cannot trigger a huge
// allocation.

const (
	magic0 = 0xA4
	magic1 = 0x24
	// MaxBatch is the maximum number of records per frame.
	MaxBatch   = 4096
	recordSize = 12
	// finCount in the count field marks an end-of-stream frame; the
	// receiver acknowledges it with ackByte, letting senders confirm
	// delivery before closing (the collector is otherwise unaware how
	// many edges will connect).
	finCount = 0xFFFF
	// AckByte is written by the receiver after processing a fin frame.
	AckByte = 0x06
)

// ErrFin is returned by ReadFrame when the sender signals a clean end
// of stream and expects an acknowledgement.
var ErrFin = errors.New("cdnlog: end-of-stream frame")

// WriteFin writes the end-of-stream frame.
func WriteFin(w io.Writer) error {
	_, err := w.Write([]byte{magic0, magic1, 0xFF, 0xFF})
	return err
}

// WriteFrame encodes a batch of records to w. Batches larger than
// MaxBatch are split transparently.
func WriteFrame(w io.Writer, rs []Record) error {
	for len(rs) > 0 {
		n := len(rs)
		if n > MaxBatch {
			n = MaxBatch
		}
		if err := writeOne(w, rs[:n]); err != nil {
			return err
		}
		rs = rs[n:]
	}
	return nil
}

func writeOne(w io.Writer, rs []Record) error {
	buf := make([]byte, 4+len(rs)*recordSize)
	buf[0], buf[1] = magic0, magic1
	binary.BigEndian.PutUint16(buf[2:], uint16(len(rs)))
	for i, r := range rs {
		off := 4 + i*recordSize
		binary.BigEndian.PutUint32(buf[off:], uint32(r.Addr))
		binary.BigEndian.PutUint32(buf[off+4:], r.Day)
		binary.BigEndian.PutUint32(buf[off+8:], r.Hits)
	}
	_, err := w.Write(buf)
	return err
}

// ReadFrame decodes one frame from r. It returns io.EOF at a clean
// stream end and an error for malformed input.
func ReadFrame(r io.Reader) ([]Record, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("cdnlog: truncated frame header")
		}
		return nil, err // io.EOF: clean end
	}
	if hdr[0] != magic0 || hdr[1] != magic1 {
		return nil, fmt.Errorf("cdnlog: bad frame magic %02x%02x", hdr[0], hdr[1])
	}
	count := binary.BigEndian.Uint16(hdr[2:])
	if count == finCount {
		return nil, ErrFin
	}
	if count == 0 || count > MaxBatch {
		return nil, fmt.Errorf("cdnlog: invalid frame count %d", count)
	}
	body := make([]byte, int(count)*recordSize)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("cdnlog: truncated frame body: %v", err)
	}
	rs := make([]Record, count)
	for i := range rs {
		off := i * recordSize
		rs[i] = Record{
			Addr: ipv4Addr(binary.BigEndian.Uint32(body[off:])),
			Day:  binary.BigEndian.Uint32(body[off+4:]),
			Hits: binary.BigEndian.Uint32(body[off+8:]),
		}
	}
	return rs, nil
}

// DecodeStream reads frames until EOF, passing each batch to sink.
// End-of-stream frames are skipped (files written with WriteFin can be
// replayed); acknowledgement handling is the Collector's concern.
func DecodeStream(r io.Reader, sink func([]Record)) error {
	br := bufio.NewReaderSize(r, 64*1024)
	for {
		rs, err := ReadFrame(br)
		if err == io.EOF {
			return nil
		}
		if err == ErrFin {
			continue
		}
		if err != nil {
			return err
		}
		sink(rs)
	}
}
