// Package cdnlog implements the data-collection side of the study: the
// per-IP request-log records produced by CDN edge servers, a compact
// binary wire format, a TCP collector that aggregates records from many
// edges concurrently (the "distributed data collection framework" of
// Section 3.2), and dataset summaries (Table 1).
//
// Records are aggregated per (address, day): each edge server counts
// hits locally and ships aggregates, exactly like the production
// pipeline the paper describes.
package cdnlog

import (
	"ipscope/internal/bgp"
	"ipscope/internal/ipv4"
	"ipscope/internal/par"
)

// Record is one per-address, per-day aggregate from an edge server.
type Record struct {
	Addr ipv4.Addr
	Day  uint32 // day index within the measurement period
	Hits uint32
}

// numAggShards is the Aggregator's lock-striping factor. Records hash
// to a shard by /24 block, so shard contents are disjoint by block and
// merged reads never need a global lock.
const numAggShards = 32

// aggShard is one lock domain of the Aggregator: the daily sets and
// per-address totals for the /24 blocks that hash here.
type aggShard struct {
	days  []*ipv4.Set
	hits  map[ipv4.Addr]uint64
	total uint64
}

// Aggregator merges records from any number of edges into daily
// active-address sets and per-address totals. It is safe for
// concurrent use: state is striped across block-hashed shards with
// per-shard locks, so concurrent edges only contend when they report
// addresses of the same shard, and snapshot reads merge shard by shard
// without ever stopping all writers.
type Aggregator struct {
	numDays int
	shards  *par.Sharded[aggShard]
}

// aggShardKey hashes an address to its shard by /24 block, keeping a
// block's bitmap in exactly one shard.
func aggShardKey(a ipv4.Addr) uint64 { return par.Hash64(uint64(a) >> 8) }

// NewAggregator creates an Aggregator covering numDays days.
func NewAggregator(numDays int) *Aggregator {
	return &Aggregator{
		numDays: numDays,
		shards: par.NewSharded(numAggShards, func() aggShard {
			sh := aggShard{
				days: make([]*ipv4.Set, numDays),
				hits: make(map[ipv4.Addr]uint64),
			}
			for i := range sh.days {
				sh.days[i] = ipv4.NewSet()
			}
			return sh
		}),
	}
}

// Add merges one record. Records with out-of-range days or zero hits
// are dropped (a request must have completed to count, per the paper's
// definition of "active").
func (a *Aggregator) Add(r Record) {
	if int(r.Day) >= a.numDays || r.Hits == 0 {
		return
	}
	a.shards.Do(a.shards.ShardFor(aggShardKey(r.Addr)), func(sh *aggShard) {
		sh.days[r.Day].Add(r.Addr)
		sh.hits[r.Addr] += uint64(r.Hits)
		sh.total += uint64(r.Hits)
	})
}

// AddBatch merges many records, acquiring each involved shard's lock
// once.
func (a *Aggregator) AddBatch(rs []Record) {
	var byShard [numAggShards][]Record
	for _, r := range rs {
		if int(r.Day) >= a.numDays || r.Hits == 0 {
			continue
		}
		i := a.shards.ShardFor(aggShardKey(r.Addr))
		byShard[i] = append(byShard[i], r)
	}
	for i, batch := range byShard {
		if len(batch) == 0 {
			continue
		}
		a.shards.Do(i, func(sh *aggShard) {
			for _, r := range batch {
				sh.days[r.Day].Add(r.Addr)
				sh.hits[r.Addr] += uint64(r.Hits)
				sh.total += uint64(r.Hits)
			}
		})
	}
}

// NumDays returns the configured day count.
func (a *Aggregator) NumDays() int { return a.numDays }

// Day returns a merged snapshot of the active set for day d. Shards are
// visited one at a time in ascending order; writers to other shards are
// never blocked.
func (a *Aggregator) Day(d int) *ipv4.Set {
	out := ipv4.NewSet()
	if d < 0 || d >= a.numDays {
		return out
	}
	a.shards.Range(func(_ int, sh *aggShard) {
		out.UnionWith(sh.days[d])
	})
	return out
}

// DailySets returns merged snapshots of all daily sets.
func (a *Aggregator) DailySets() []*ipv4.Set {
	out := make([]*ipv4.Set, a.numDays)
	for i := range out {
		out[i] = ipv4.NewSet()
	}
	a.shards.Range(func(_ int, sh *aggShard) {
		for i, s := range sh.days {
			out[i].UnionWith(s)
		}
	})
	return out
}

// HitsOf returns the accumulated hits for one address.
func (a *Aggregator) HitsOf(addr ipv4.Addr) uint64 {
	var v uint64
	a.shards.Do(a.shards.ShardFor(aggShardKey(addr)), func(sh *aggShard) {
		v = sh.hits[addr]
	})
	return v
}

// TotalHits returns the total accumulated hits.
func (a *Aggregator) TotalHits() uint64 {
	var total uint64
	a.shards.Range(func(_ int, sh *aggShard) { total += sh.total })
	return total
}

// UniqueAddrs returns the number of distinct addresses seen.
func (a *Aggregator) UniqueAddrs() int {
	n := 0
	a.shards.Range(func(_ int, sh *aggShard) { n += len(sh.hits) })
	return n
}

// DatasetSummary is one row of Table 1: totals over the whole dataset
// and averages per snapshot, at address, /24 and AS granularity.
type DatasetSummary struct {
	Snapshots              int
	TotalIPs, AvgIPs       int
	TotalBlocks, AvgBlocks int
	TotalASes, AvgASes     int
}

// Summarize computes a DatasetSummary over snapshots (daily or weekly
// unions). asOf maps a /24 block to its origin AS (0 = unrouted, not
// counted).
func Summarize(snaps []*ipv4.Set, asOf func(ipv4.Block) bgp.ASN) DatasetSummary {
	var out DatasetSummary
	out.Snapshots = len(snaps)
	if len(snaps) == 0 {
		return out
	}
	union := ipv4.NewSet()
	asUnion := make(map[bgp.ASN]bool)
	var ipSum, blkSum, asSum int
	for _, s := range snaps {
		ipSum += s.Len()
		blkSum += s.NumBlocks()
		asSeen := make(map[bgp.ASN]bool)
		s.ForEachBlock(func(blk ipv4.Block, _ *ipv4.Bitmap256) {
			if as := asOf(blk); as != 0 {
				asSeen[as] = true
				asUnion[as] = true
			}
		})
		asSum += len(asSeen)
		union.UnionWith(s)
	}
	out.TotalIPs = union.Len()
	out.AvgIPs = ipSum / len(snaps)
	out.TotalBlocks = union.NumBlocks()
	out.AvgBlocks = blkSum / len(snaps)
	out.TotalASes = len(asUnion)
	out.AvgASes = asSum / len(snaps)
	return out
}
