// Package cdnlog implements the data-collection side of the study: the
// per-IP request-log records produced by CDN edge servers, a compact
// binary wire format, a TCP collector that aggregates records from many
// edges concurrently (the "distributed data collection framework" of
// Section 3.2), and dataset summaries (Table 1).
//
// Records are aggregated per (address, day): each edge server counts
// hits locally and ships aggregates, exactly like the production
// pipeline the paper describes.
package cdnlog

import (
	"sync"

	"ipscope/internal/bgp"
	"ipscope/internal/ipv4"
)

// Record is one per-address, per-day aggregate from an edge server.
type Record struct {
	Addr ipv4.Addr
	Day  uint32 // day index within the measurement period
	Hits uint32
}

// Aggregator merges records from any number of edges into daily
// active-address sets and per-address totals. It is safe for
// concurrent use.
type Aggregator struct {
	mu    sync.Mutex
	days  []*ipv4.Set
	hits  map[ipv4.Addr]uint64
	total uint64
}

// NewAggregator creates an Aggregator covering numDays days.
func NewAggregator(numDays int) *Aggregator {
	a := &Aggregator{
		days: make([]*ipv4.Set, numDays),
		hits: make(map[ipv4.Addr]uint64),
	}
	for i := range a.days {
		a.days[i] = ipv4.NewSet()
	}
	return a
}

// Add merges one record. Records with out-of-range days or zero hits
// are dropped (a request must have completed to count, per the paper's
// definition of "active").
func (a *Aggregator) Add(r Record) {
	if int(r.Day) >= len(a.days) || r.Hits == 0 {
		return
	}
	a.mu.Lock()
	a.days[r.Day].Add(r.Addr)
	a.hits[r.Addr] += uint64(r.Hits)
	a.total += uint64(r.Hits)
	a.mu.Unlock()
}

// AddBatch merges many records with one lock acquisition.
func (a *Aggregator) AddBatch(rs []Record) {
	a.mu.Lock()
	for _, r := range rs {
		if int(r.Day) >= len(a.days) || r.Hits == 0 {
			continue
		}
		a.days[r.Day].Add(r.Addr)
		a.hits[r.Addr] += uint64(r.Hits)
		a.total += uint64(r.Hits)
	}
	a.mu.Unlock()
}

// NumDays returns the configured day count.
func (a *Aggregator) NumDays() int { return len(a.days) }

// Day returns a snapshot (clone) of the active set for day d.
func (a *Aggregator) Day(d int) *ipv4.Set {
	a.mu.Lock()
	defer a.mu.Unlock()
	if d < 0 || d >= len(a.days) {
		return ipv4.NewSet()
	}
	return a.days[d].Clone()
}

// DailySets returns clones of all daily sets.
func (a *Aggregator) DailySets() []*ipv4.Set {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]*ipv4.Set, len(a.days))
	for i, s := range a.days {
		out[i] = s.Clone()
	}
	return out
}

// HitsOf returns the accumulated hits for one address.
func (a *Aggregator) HitsOf(addr ipv4.Addr) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.hits[addr]
}

// TotalHits returns the total accumulated hits.
func (a *Aggregator) TotalHits() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// UniqueAddrs returns the number of distinct addresses seen.
func (a *Aggregator) UniqueAddrs() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.hits)
}

// DatasetSummary is one row of Table 1: totals over the whole dataset
// and averages per snapshot, at address, /24 and AS granularity.
type DatasetSummary struct {
	Snapshots              int
	TotalIPs, AvgIPs       int
	TotalBlocks, AvgBlocks int
	TotalASes, AvgASes     int
}

// Summarize computes a DatasetSummary over snapshots (daily or weekly
// unions). asOf maps a /24 block to its origin AS (0 = unrouted, not
// counted).
func Summarize(snaps []*ipv4.Set, asOf func(ipv4.Block) bgp.ASN) DatasetSummary {
	var out DatasetSummary
	out.Snapshots = len(snaps)
	if len(snaps) == 0 {
		return out
	}
	union := ipv4.NewSet()
	asUnion := make(map[bgp.ASN]bool)
	var ipSum, blkSum, asSum int
	for _, s := range snaps {
		ipSum += s.Len()
		blkSum += s.NumBlocks()
		asSeen := make(map[bgp.ASN]bool)
		s.ForEachBlock(func(blk ipv4.Block, _ *ipv4.Bitmap256) {
			if as := asOf(blk); as != 0 {
				asSeen[as] = true
				asUnion[as] = true
			}
		})
		asSum += len(asSeen)
		union.UnionWith(s)
	}
	out.TotalIPs = union.Len()
	out.AvgIPs = ipSum / len(snaps)
	out.TotalBlocks = union.NumBlocks()
	out.AvgBlocks = blkSum / len(snaps)
	out.TotalASes = len(asUnion)
	out.AvgASes = asSum / len(snaps)
	return out
}
