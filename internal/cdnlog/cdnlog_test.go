package cdnlog

import (
	"bytes"
	"context"
	"io"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"ipscope/internal/bgp"
	"ipscope/internal/ipv4"
)

func rec(addr string, day, hits uint32) Record {
	return Record{Addr: ipv4.MustParseAddr(addr), Day: day, Hits: hits}
}

func TestAggregator(t *testing.T) {
	a := NewAggregator(3)
	a.Add(rec("10.0.0.1", 0, 5))
	a.Add(rec("10.0.0.1", 1, 7))
	a.Add(rec("10.0.0.2", 0, 1))
	a.Add(rec("10.0.0.3", 9, 1)) // out of range: dropped
	a.Add(rec("10.0.0.4", 0, 0)) // zero hits: dropped

	if a.NumDays() != 3 {
		t.Errorf("NumDays = %d", a.NumDays())
	}
	if got := a.Day(0).Len(); got != 2 {
		t.Errorf("day 0 actives = %d", got)
	}
	if got := a.Day(1).Len(); got != 1 {
		t.Errorf("day 1 actives = %d", got)
	}
	if got := a.Day(2).Len(); got != 0 {
		t.Errorf("day 2 actives = %d", got)
	}
	if got := a.Day(-1).Len(); got != 0 {
		t.Errorf("day -1 = %d", got)
	}
	if got := a.HitsOf(ipv4.MustParseAddr("10.0.0.1")); got != 12 {
		t.Errorf("hits = %d", got)
	}
	if a.TotalHits() != 13 {
		t.Errorf("total = %d", a.TotalHits())
	}
	if a.UniqueAddrs() != 2 {
		t.Errorf("unique = %d", a.UniqueAddrs())
	}
	sets := a.DailySets()
	if len(sets) != 3 || sets[0].Len() != 2 {
		t.Error("DailySets wrong")
	}
	// Snapshots are clones.
	sets[0].Add(ipv4.MustParseAddr("99.0.0.1"))
	if a.Day(0).Len() != 2 {
		t.Error("Day not cloned")
	}
}

func TestAggregatorConcurrent(t *testing.T) {
	a := NewAggregator(1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				a.Add(Record{Addr: ipv4.Addr(uint32(g*1000 + i)), Day: 0, Hits: 1})
			}
		}(g)
	}
	wg.Wait()
	if a.UniqueAddrs() != 8000 {
		t.Errorf("unique = %d", a.UniqueAddrs())
	}
	if a.TotalHits() != 8000 {
		t.Errorf("total = %d", a.TotalHits())
	}
}

func TestWireRoundTrip(t *testing.T) {
	rs := []Record{
		rec("10.0.0.1", 0, 5),
		rec("255.255.255.255", 111, 1<<31),
		rec("0.0.0.0", 1, 1),
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, rs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rs) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range rs {
		if got[i] != rs[i] {
			t.Errorf("record %d: %+v != %+v", i, got[i], rs[i])
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestWireRoundTripProperty(t *testing.T) {
	f := func(addrs []uint32, days []uint16, hits []uint16) bool {
		n := len(addrs)
		if len(days) < n {
			n = len(days)
		}
		if len(hits) < n {
			n = len(hits)
		}
		if n == 0 {
			return true
		}
		rs := make([]Record, n)
		for i := 0; i < n; i++ {
			rs[i] = Record{Addr: ipv4.Addr(addrs[i]), Day: uint32(days[i]), Hits: uint32(hits[i])}
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, rs); err != nil {
			return false
		}
		var got []Record
		if err := DecodeStream(&buf, func(b []Record) { got = append(got, b...) }); err != nil {
			return false
		}
		if len(got) != n {
			return false
		}
		for i := range rs {
			if got[i] != rs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWireSplitsLargeBatches(t *testing.T) {
	rs := make([]Record, MaxBatch*2+10)
	for i := range rs {
		rs[i] = Record{Addr: ipv4.Addr(uint32(i)), Day: 0, Hits: 1}
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, rs); err != nil {
		t.Fatal(err)
	}
	frames := 0
	total := 0
	if err := DecodeStream(&buf, func(b []Record) { frames++; total += len(b) }); err != nil {
		t.Fatal(err)
	}
	if frames != 3 || total != len(rs) {
		t.Errorf("frames=%d total=%d", frames, total)
	}
}

func TestWireErrors(t *testing.T) {
	// Bad magic.
	if _, err := ReadFrame(strings.NewReader("XXxxxxxx")); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated header.
	if _, err := ReadFrame(strings.NewReader("\xa4")); err == nil {
		t.Error("truncated header accepted")
	}
	// Zero count.
	if _, err := ReadFrame(bytes.NewReader([]byte{magic0, magic1, 0, 0})); err == nil {
		t.Error("zero count accepted")
	}
	// Truncated body.
	var buf bytes.Buffer
	WriteFrame(&buf, []Record{rec("10.0.0.1", 0, 1)})
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestCollectorEndToEnd(t *testing.T) {
	agg := NewAggregator(7)
	col := NewCollector(agg)
	addr, err := col.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	const edges = 4
	const perEdge = 5000
	var wg sync.WaitGroup
	for e := 0; e < edges; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			edge, err := DialEdge(context.Background(), addr.String())
			if err != nil {
				t.Errorf("edge %d dial: %v", e, err)
				return
			}
			defer edge.Close()
			for i := 0; i < perEdge; i++ {
				r := Record{
					Addr: ipv4.Addr(uint32(e*perEdge + i)),
					Day:  uint32(i % 7),
					Hits: uint32(1 + i%5),
				}
				if err := edge.Log(r); err != nil {
					t.Errorf("edge %d log: %v", e, err)
					return
				}
			}
		}(e)
	}
	wg.Wait()
	if err := col.Close(); err != nil {
		t.Fatalf("collector error: %v", err)
	}
	if got := agg.UniqueAddrs(); got != edges*perEdge {
		t.Errorf("unique = %d, want %d", got, edges*perEdge)
	}
	// Every day has ~1/7 of the addresses.
	for d := 0; d < 7; d++ {
		n := agg.Day(d).Len()
		want := edges * perEdge / 7
		if n < want-edges || n > want+edges {
			t.Errorf("day %d actives = %d, want ~%d", d, n, want)
		}
	}
}

func TestSummarize(t *testing.T) {
	blkA := ipv4.MustParseAddr("10.0.0.0").Block()
	blkB := ipv4.MustParseAddr("20.0.0.0").Block()
	s1 := ipv4.NewSet()
	s2 := ipv4.NewSet()
	for i := 0; i < 10; i++ {
		s1.Add(blkA.Addr(byte(i)))
	}
	for i := 5; i < 15; i++ {
		s2.Add(blkA.Addr(byte(i)))
	}
	for i := 0; i < 4; i++ {
		s2.Add(blkB.Addr(byte(i)))
	}
	asOf := func(b ipv4.Block) bgp.ASN {
		if b == blkA {
			return 1
		}
		return 2
	}
	sum := Summarize([]*ipv4.Set{s1, s2}, asOf)
	if sum.Snapshots != 2 {
		t.Errorf("snapshots = %d", sum.Snapshots)
	}
	if sum.TotalIPs != 19 || sum.AvgIPs != 12 {
		t.Errorf("IPs = %d/%d", sum.TotalIPs, sum.AvgIPs)
	}
	if sum.TotalBlocks != 2 || sum.AvgBlocks != 1 {
		t.Errorf("blocks = %d/%d", sum.TotalBlocks, sum.AvgBlocks)
	}
	if sum.TotalASes != 2 || sum.AvgASes != 1 {
		t.Errorf("ASes = %d/%d", sum.TotalASes, sum.AvgASes)
	}
	empty := Summarize(nil, asOf)
	if empty.TotalIPs != 0 {
		t.Error("empty summary")
	}
}
