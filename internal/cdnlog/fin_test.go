package cdnlog

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"ipscope/internal/ipv4"
)

func TestFinFrameInStream(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []Record{rec("10.0.0.1", 0, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFin(&buf); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, []Record{rec("10.0.0.2", 0, 1)}); err != nil {
		t.Fatal(err)
	}
	// DecodeStream skips fins and keeps reading.
	var got []Record
	if err := DecodeStream(&buf, func(rs []Record) { got = append(got, rs...) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records", len(got))
	}
}

func TestReadFrameFin(t *testing.T) {
	var buf bytes.Buffer
	WriteFin(&buf)
	if _, err := ReadFrame(&buf); err != ErrFin {
		t.Fatalf("err = %v, want ErrFin", err)
	}
}

// TestCollectorNoBacklogLoss stresses the race the ack protocol exists
// for: many edges connect, ship one batch, and close immediately; the
// collector is closed the moment the last Edge.Close returns. No record
// may be lost even when connections sat in the listen backlog.
func TestCollectorNoBacklogLoss(t *testing.T) {
	for round := 0; round < 10; round++ {
		agg := NewAggregator(1)
		col := NewCollector(agg)
		addr, err := col.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		const edges = 16
		var wg sync.WaitGroup
		for e := 0; e < edges; e++ {
			wg.Add(1)
			go func(e int) {
				defer wg.Done()
				edge, err := DialEdge(context.Background(), addr.String())
				if err != nil {
					t.Errorf("dial: %v", err)
					return
				}
				if err := edge.Log(Record{Addr: ipv4.Addr(uint32(e)), Day: 0, Hits: 1}); err != nil {
					t.Errorf("log: %v", err)
				}
				if err := edge.Close(); err != nil {
					t.Errorf("close: %v", err)
				}
			}(e)
		}
		wg.Wait()
		if err := col.Close(); err != nil {
			t.Fatalf("collector: %v", err)
		}
		if got := agg.UniqueAddrs(); got != edges {
			t.Fatalf("round %d: %d of %d records arrived", round, got, edges)
		}
	}
}
