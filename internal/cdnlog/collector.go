package cdnlog

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"ipscope/internal/ipv4"
)

// ipv4Addr converts a raw uint32 into an ipv4.Addr (helper shared with
// the wire codec).
func ipv4Addr(u uint32) ipv4.Addr { return ipv4.Addr(u) }

// Collector is a TCP server receiving record frames from edge servers
// and merging them into an Aggregator.
type Collector struct {
	Agg *Aggregator

	// OnError, if set before Listen, is invoked (from the accepting or
	// serving goroutine) for every accept or stream error as it
	// happens, so operators see failures while the collector is still
	// running instead of only when it shuts down. Errors caused by
	// Close itself are not reported.
	OnError func(error)

	ln       net.Listener
	wg       sync.WaitGroup
	mu       sync.Mutex
	err      error
	closed   bool
	stop     chan struct{} // closed by Close to release the ctx watcher
	stopOnce sync.Once
}

// NewCollector creates a collector over agg.
func NewCollector(agg *Aggregator) *Collector { return &Collector{Agg: agg} }

// Listen starts accepting connections on addr ("127.0.0.1:0" for an
// ephemeral port) and returns the bound address.
func (c *Collector) Listen(addr string) (net.Addr, error) {
	return c.ListenContext(context.Background(), addr)
}

// ListenContext is Listen with a lifecycle bound to ctx: when ctx is
// canceled the accept loop stops cleanly, exactly as if Close had been
// called, so a collector wired to a signal context cannot leak its
// accepting goroutine on exit. In-flight connections still drain;
// call Close to wait for them.
func (c *Collector) ListenContext(ctx context.Context, addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	c.ln = ln
	c.stop = make(chan struct{})
	if ctx.Done() != nil {
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			select {
			case <-ctx.Done():
				c.stopAccepting()
			case <-c.stop:
			}
		}()
	}
	c.wg.Add(1)
	go c.acceptLoop()
	return ln.Addr(), nil
}

// stopAccepting marks the collector as shutting down and closes the
// listener, unblocking the accept loop without reporting its error.
func (c *Collector) stopAccepting() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.ln.Close()
}

func (c *Collector) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			c.report(err)
			return
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.serve(conn)
		}()
	}
}

// report records err as the collector's first error and fires the
// OnError callback, unless the collector is shutting down (errors
// provoked by Close are expected, not reported).
func (c *Collector) report(err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	if c.err == nil {
		c.err = err
	}
	cb := c.OnError
	c.mu.Unlock()
	if cb != nil {
		cb(err)
	}
}

// Err returns the first accept or stream error observed so far, if
// any. Unlike Close it does not stop the collector, so health checks
// can poll it while ingest continues.
func (c *Collector) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

func (c *Collector) serve(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 64*1024)
	var err error
	for {
		var rs []Record
		rs, err = ReadFrame(br)
		if err == io.EOF {
			err = nil
			break
		}
		if err == ErrFin {
			// Everything before the fin has been aggregated; confirm
			// delivery so the edge may close.
			if _, err = conn.Write([]byte{AckByte}); err != nil {
				break
			}
			continue
		}
		if err != nil {
			break
		}
		c.Agg.AddBatch(rs)
	}
	if err != nil && !errors.Is(err, net.ErrClosed) {
		c.report(err)
	}
}

// Close stops accepting and waits for in-flight connections to drain.
// It returns the first stream error observed, if any. Close is also the
// rendezvous after a context cancellation: ListenContext's watcher has
// already stopped the accept loop, and Close waits for the remaining
// connection goroutines.
func (c *Collector) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	if c.ln != nil {
		c.ln.Close()
	}
	if c.stop != nil {
		c.stopOnce.Do(func() { close(c.stop) })
	}
	c.wg.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Edge is the client side: an edge server buffering records and
// shipping them to the collector in frames.
type Edge struct {
	conn net.Conn
	bw   *bufio.Writer
	buf  []Record
}

// DialEdge connects an edge server to the collector at addr.
func DialEdge(ctx context.Context, addr string) (*Edge, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Edge{conn: conn, bw: bufio.NewWriterSize(conn, 64*1024)}, nil
}

// Log buffers one record, flushing a frame when the batch fills.
func (e *Edge) Log(r Record) error {
	e.buf = append(e.buf, r)
	if len(e.buf) >= MaxBatch {
		return e.flushBatch()
	}
	return nil
}

func (e *Edge) flushBatch() error {
	if len(e.buf) == 0 {
		return nil
	}
	err := WriteFrame(e.bw, e.buf)
	e.buf = e.buf[:0]
	return err
}

// Flush sends any buffered records.
func (e *Edge) Flush() error {
	if err := e.flushBatch(); err != nil {
		return err
	}
	return e.bw.Flush()
}

// Close flushes buffered records, signals end of stream, waits for the
// collector's acknowledgement (bounded by ackTimeout) and closes the
// connection. A nil return therefore guarantees the collector has
// aggregated every record this edge logged.
func (e *Edge) Close() error { return e.closeWithDeadline(ackTimeout) }

func (e *Edge) closeWithDeadline(timeout time.Duration) error {
	err := e.Flush()
	if err == nil {
		if err = WriteFin(e.bw); err == nil {
			err = e.bw.Flush()
		}
	}
	if err == nil {
		e.conn.SetReadDeadline(time.Now().Add(timeout))
		var ack [1]byte
		if _, rerr := io.ReadFull(e.conn, ack[:]); rerr != nil {
			err = fmt.Errorf("cdnlog: awaiting ack: %w", rerr)
		} else if ack[0] != AckByte {
			err = fmt.Errorf("cdnlog: unexpected ack byte %#x", ack[0])
		}
	}
	cerr := e.conn.Close()
	if err != nil {
		return err
	}
	return cerr
}

// ackTimeout bounds how long Edge.Close waits for delivery confirmation.
const ackTimeout = 30 * time.Second
