package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ipscope/internal/ipv4"
)

// randomSnapshot builds a snapshot confined to a few blocks so that
// overlaps are common.
func randomSnapshot(rng *rand.Rand, n int) *ipv4.Set {
	s := ipv4.NewSet()
	for i := 0; i < n; i++ {
		blk := ipv4.Block(0x0a0000 + uint32(rng.Intn(6)))
		s.Add(blk.Addr(byte(rng.Intn(256))))
	}
	return s
}

// TestChurnConservation: up, down and the steady overlap partition the
// two snapshots exactly.
func TestChurnConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		prev := randomSnapshot(rng, 200)
		next := randomSnapshot(rng, 200)
		up, down := Events(prev, next)
		steady := prev.IntersectCount(next)
		if up.Len()+steady != next.Len() {
			t.Fatalf("up(%d)+steady(%d) != next(%d)", up.Len(), steady, next.Len())
		}
		if down.Len()+steady != prev.Len() {
			t.Fatalf("down(%d)+steady(%d) != prev(%d)", down.Len(), steady, prev.Len())
		}
		// Up and down events are disjoint from each other and from the
		// steady set.
		if up.IntersectCount(down) != 0 {
			t.Fatal("up ∩ down non-empty")
		}
		if up.IntersectCount(prev) != 0 || down.IntersectCount(next) != 0 {
			t.Fatal("events overlap their defining windows")
		}
	}
}

// TestChurnSymmetry: swapping the snapshots swaps up and down.
func TestChurnSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 100; trial++ {
		a := randomSnapshot(rng, 150)
		b := randomSnapshot(rng, 150)
		upAB, downAB := Events(a, b)
		upBA, downBA := Events(b, a)
		if !upAB.Equal(downBA) || !downAB.Equal(upBA) {
			t.Fatal("Events not symmetric under snapshot swap")
		}
	}
}

// TestWindowsCoarseningReducesChurn: unioning consecutive windows can
// only remove up events relative to per-snapshot churn totals (an
// address flapping within a window stops being an event).
func TestWindowsCoarseningReducesChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 30; trial++ {
		daily := make([]*ipv4.Set, 8)
		for i := range daily {
			daily[i] = randomSnapshot(rng, 120)
		}
		fine := ChurnSeries(daily)
		coarse := ChurnSeries(Windows(daily, 2))
		var fineUp, coarseUp int
		for _, p := range fine {
			fineUp += p.Up
		}
		for _, p := range coarse {
			coarseUp += p.Up
		}
		if coarseUp > fineUp {
			t.Fatalf("coarse up events %d exceed fine %d", coarseUp, fineUp)
		}
	}
}

// TestSTUAveragesOverMonths: the whole-window STU equals the mean of
// the per-month STUs when months tile the window exactly.
func TestSTUAveragesOverMonths(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	blk := ipv4.Block(0x0a0000)
	daily := make([]*ipv4.Set, 12)
	for i := range daily {
		s := ipv4.NewSet()
		for j := 0; j < rng.Intn(200); j++ {
			s.Add(blk.Addr(byte(rng.Intn(256))))
		}
		daily[i] = s
	}
	whole := STU(daily, blk)
	months := MonthlySTU(daily, blk, 4)
	mean := (months[0] + months[1] + months[2]) / 3
	if math.Abs(whole-mean) > 1e-12 {
		t.Fatalf("STU %v != mean monthly %v", whole, mean)
	}
}

// TestFillingDegreeMonotone: FD over a longer window can never shrink.
func TestFillingDegreeMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	blk := ipv4.Block(0x0a0001)
	daily := make([]*ipv4.Set, 10)
	for i := range daily {
		s := ipv4.NewSet()
		for j := 0; j < 30; j++ {
			s.Add(blk.Addr(byte(rng.Intn(256))))
		}
		daily[i] = s
	}
	prev := 0
	for n := 1; n <= len(daily); n++ {
		fd := FillingDegree(daily[:n], blk)
		if fd < prev {
			t.Fatalf("FD shrank: %d -> %d at n=%d", prev, fd, n)
		}
		prev = fd
	}
}

// TestRecaptureProperty: Lincoln–Petersen inverts exactly on
// constructed populations where sampling is proportional.
func TestRecaptureProperty(t *testing.T) {
	f := func(nRaw, aRaw, bRaw uint16) bool {
		n := int(nRaw%5000) + 100
		// Sample sizes between 10% and 90% of the population.
		n1 := n/10 + int(aRaw)%(n*8/10)
		n2 := n/10 + int(bRaw)%(n*8/10)
		// Expected overlap under independence.
		m := n1 * n2 / n
		if m == 0 {
			return true
		}
		e, err := Recapture(n1, n2, m)
		if err != nil {
			return false
		}
		// LP recovers a value close to n (integer truncation of m
		// introduces at most one unit of slack per overlap count).
		lpErr := math.Abs(e.LincolnPetersen-float64(n)) / float64(n)
		return lpErr < 0.15 && e.Chapman > 0 && e.CI95Hi >= e.CI95Lo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestVisibilityPartition: OnlyA/Both/OnlyB partition the union at
// every granularity.
func TestVisibilityPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	for trial := 0; trial < 100; trial++ {
		a := randomSnapshot(rng, 150)
		b := randomSnapshot(rng, 150)
		v := CompareIPs(a, b)
		if v.Total() != a.Union(b).Len() {
			t.Fatalf("IP partition: %d != %d", v.Total(), a.Union(b).Len())
		}
		if v.OnlyA != a.DiffCount(b) || v.OnlyB != b.DiffCount(a) {
			t.Fatal("asymmetric parts wrong")
		}
		vb := CompareBlocks(a, b)
		if vb.Total() != a.Union(b).NumBlocks() {
			t.Fatal("block partition wrong")
		}
	}
}

// TestEventMaskMonotoneFloor: raising the floor can only raise the mask.
func TestEventMaskMonotoneFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 100; trial++ {
		viol := randomSnapshot(rng, 50)
		addr := ipv4.Block(0x0a0000 + uint32(rng.Intn(6))).Addr(byte(rng.Intn(256)))
		if viol.Contains(addr) {
			continue
		}
		prev := -1
		for _, floor := range []int{8, 16, 24, 30} {
			m := EventMask(addr, viol, floor)
			if m < floor {
				t.Fatalf("mask %d below floor %d", m, floor)
			}
			if m < prev {
				t.Fatalf("mask decreased (%d -> %d) when floor rose to %d", prev, m, floor)
			}
			prev = m
		}
	}
}
