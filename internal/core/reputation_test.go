package core

import (
	"math"
	"testing"

	"ipscope/internal/ipv4"
)

// mkDaily builds daily snapshots for one block from per-day host lists.
func mkDaily(blk ipv4.Block, days [][]byte) []*ipv4.Set {
	out := make([]*ipv4.Set, len(days))
	for d, hosts := range days {
		s := ipv4.NewSet()
		for _, h := range hosts {
			s.Add(blk.Addr(h))
		}
		out[d] = s
	}
	return out
}

func TestBlockStabilityStatic(t *testing.T) {
	blk := ipv4.MustParseAddr("10.0.0.0").Block()
	// Same three addresses active every day: perfect persistence.
	days := [][]byte{{1, 2, 3}, {1, 2, 3}, {1, 2, 3}, {1, 2, 3}}
	st := BlockStability(mkDaily(blk, days), blk)
	if st.Persistence != 1 {
		t.Errorf("persistence = %v, want 1", st.Persistence)
	}
	if st.MeanRunDays != 4 {
		t.Errorf("mean run = %v, want 4", st.MeanRunDays)
	}
	if st.ActiveAddrs != 3 {
		t.Errorf("active = %d", st.ActiveAddrs)
	}
}

func TestBlockStabilityDailyReshuffle(t *testing.T) {
	blk := ipv4.MustParseAddr("10.0.0.0").Block()
	// Disjoint sets every day: zero persistence, runs of one day.
	days := [][]byte{{1, 2}, {3, 4}, {5, 6}, {7, 8}}
	st := BlockStability(mkDaily(blk, days), blk)
	if st.Persistence != 0 {
		t.Errorf("persistence = %v, want 0", st.Persistence)
	}
	if st.MeanRunDays != 1 {
		t.Errorf("mean run = %v, want 1", st.MeanRunDays)
	}
}

func TestBlockStabilityMixed(t *testing.T) {
	blk := ipv4.MustParseAddr("10.0.0.0").Block()
	// Host 1 always on; host 2 flips each day.
	days := [][]byte{{1, 2}, {1}, {1, 2}, {1}}
	st := BlockStability(mkDaily(blk, days), blk)
	// Pairs: (d0,d1): prev 2 active, 1 retained; (d1,d2): 1/1;
	// (d2,d3): 2 prev, 1 retained → 3/5.
	want := 3.0 / 5.0
	if math.Abs(st.Persistence-want) > 1e-9 {
		t.Errorf("persistence = %v, want %v", st.Persistence, want)
	}
}

func TestBlockStabilityDegenerate(t *testing.T) {
	blk := ipv4.MustParseAddr("10.0.0.0").Block()
	if st := BlockStability(nil, blk); st.ActiveAddrs != 0 {
		t.Error("nil input")
	}
	if st := BlockStability(mkDaily(blk, [][]byte{{1}}), blk); st.Persistence != 0 {
		t.Error("single-day input should yield zero persistence")
	}
}

func TestReputationHorizon(t *testing.T) {
	blk := ipv4.MustParseAddr("10.0.0.0").Block()
	static := mkDaily(blk, [][]byte{{1, 2}, {1, 2}, {1, 2}})
	if h := ReputationHorizon(static, blk, 0.5); !math.IsInf(h, 1) {
		t.Errorf("static horizon = %v, want +Inf", h)
	}
	daily := mkDaily(blk, [][]byte{{1}, {2}, {3}})
	if h := ReputationHorizon(daily, blk, 0.5); h != 1 {
		t.Errorf("daily-reshuffle horizon = %v, want 1", h)
	}
	empty := mkDaily(blk, [][]byte{{}, {}})
	if h := ReputationHorizon(empty, blk, 0.5); h != 0 {
		t.Errorf("empty horizon = %v, want 0", h)
	}
	// persistence p=0.5, confidence 0.5 → exactly 1 day;
	// confidence 0.25 → 2 days.
	half := mkDaily(blk, [][]byte{{1, 2}, {1, 3}, {1, 4}, {1, 5}})
	// pairs: each transition: prev 2, retained 1 → p = 0.5... prev
	// counts: 2,2,2 → retained 1,1,1 → p = 0.5.
	if h := ReputationHorizon(half, blk, 0.25); math.Abs(h-2) > 1e-9 {
		t.Errorf("horizon(conf 0.25) = %v, want 2", h)
	}
	// Invalid confidence falls back to 0.5.
	if h := ReputationHorizon(half, blk, 0); math.Abs(h-1) > 1e-9 {
		t.Errorf("horizon(conf fallback) = %v, want 1", h)
	}
}

func TestReputationHorizonOrdering(t *testing.T) {
	// The paper's implication: reputation in dynamic pools must expire
	// much faster than in static space. Horizon(static) > Horizon(long
	// lease) > Horizon(24h pool).
	blk := ipv4.MustParseAddr("10.0.0.0").Block()
	longLease := mkDaily(blk, [][]byte{
		{1, 2, 3, 4}, {1, 2, 3, 4}, {1, 2, 3, 5}, {1, 2, 3, 5},
		{1, 2, 6, 5}, {1, 2, 6, 5},
	})
	reshuffle := mkDaily(blk, [][]byte{
		{1, 2, 3, 4}, {5, 6, 7, 8}, {9, 10, 11, 12},
		{13, 14, 1, 2}, {3, 4, 5, 6}, {7, 8, 9, 10},
	})
	hLong := ReputationHorizon(longLease, blk, 0.5)
	hFast := ReputationHorizon(reshuffle, blk, 0.5)
	if !(hLong > hFast) {
		t.Errorf("horizons not ordered: long-lease %v vs reshuffle %v", hLong, hFast)
	}
}
