// Package core implements the paper's analytical contribution: activity
// windows and up/down-event churn (Section 4), the spatio-temporal
// block metrics FD and STU with change detection (Section 5), traffic
// and relative-host-count measures (Section 6), visibility comparison
// against active scanning (Section 3), capture–recapture estimation,
// and the combined address-space demographics (Section 7).
//
// All functions operate on sequences of active-address snapshots
// (*ipv4.Set), one per base interval (usually a day), as produced by
// the CDN log pipeline or the simulator.
package core

import (
	"ipscope/internal/ipv4"
	"ipscope/internal/par"
)

// WindowUnion returns the union of daily[from:to] (to exclusive),
// i.e. the set of addresses active at least once in the window. The
// union runs across a worker pool for wide windows.
func WindowUnion(daily []*ipv4.Set, from, to int) *ipv4.Set {
	if from < 0 {
		from = 0
	}
	if to > len(daily) {
		to = len(daily)
	}
	if from >= to {
		return ipv4.NewSet()
	}
	return ipv4.UnionAll(daily[from:to], 0)
}

// Windows partitions daily snapshots into consecutive non-overlapping
// windows of size days and returns the union set of each complete
// window (a trailing partial window is dropped, matching the paper's
// methodology in Figure 4b). Windows are built concurrently.
func Windows(daily []*ipv4.Set, size int) []*ipv4.Set {
	if size <= 0 {
		return nil
	}
	n := len(daily) / size
	return par.Map(n, 0, func(i int) *ipv4.Set {
		// Each window unions sequentially; the fan-out is across windows.
		return ipv4.UnionAll(daily[i*size:(i+1)*size], 1)
	})
}

// ActiveBlocks returns the sorted /24 blocks with at least one active
// address anywhere in the snapshots.
func ActiveBlocks(snaps []*ipv4.Set) []ipv4.Block {
	return ipv4.UnionAll(snaps, 0).Blocks()
}
