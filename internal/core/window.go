// Package core implements the paper's analytical contribution: activity
// windows and up/down-event churn (Section 4), the spatio-temporal
// block metrics FD and STU with change detection (Section 5), traffic
// and relative-host-count measures (Section 6), visibility comparison
// against active scanning (Section 3), capture–recapture estimation,
// and the combined address-space demographics (Section 7).
//
// All functions operate on sequences of active-address snapshots
// (*ipv4.Set), one per base interval (usually a day), as produced by
// the CDN log pipeline or the simulator.
package core

import "ipscope/internal/ipv4"

// WindowUnion returns the union of daily[from:to] (to exclusive),
// i.e. the set of addresses active at least once in the window.
func WindowUnion(daily []*ipv4.Set, from, to int) *ipv4.Set {
	u := ipv4.NewSet()
	if from < 0 {
		from = 0
	}
	if to > len(daily) {
		to = len(daily)
	}
	for i := from; i < to; i++ {
		if daily[i] != nil {
			u.UnionWith(daily[i])
		}
	}
	return u
}

// Windows partitions daily snapshots into consecutive non-overlapping
// windows of size days and returns the union set of each complete
// window (a trailing partial window is dropped, matching the paper's
// methodology in Figure 4b).
func Windows(daily []*ipv4.Set, size int) []*ipv4.Set {
	if size <= 0 {
		return nil
	}
	n := len(daily) / size
	out := make([]*ipv4.Set, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, WindowUnion(daily, i*size, (i+1)*size))
	}
	return out
}

// ActiveBlocks returns the sorted /24 blocks with at least one active
// address anywhere in the snapshots.
func ActiveBlocks(snaps []*ipv4.Set) []ipv4.Block {
	u := ipv4.NewSet()
	for _, s := range snaps {
		if s != nil {
			u.UnionWith(s)
		}
	}
	return u.Blocks()
}
