package core

import (
	"sort"

	"ipscope/internal/bgp"
	"ipscope/internal/ipv4"
	"ipscope/internal/registry"
)

// Visibility partitions a population seen by two observation channels
// (Figure 2a: CDN vs ICMP) at some aggregation granularity.
type Visibility struct {
	OnlyA, Both, OnlyB int
}

// Total returns the size of the union.
func (v Visibility) Total() int { return v.OnlyA + v.Both + v.OnlyB }

// FractionOnlyA returns OnlyA / Total.
func (v Visibility) FractionOnlyA() float64 {
	if v.Total() == 0 {
		return 0
	}
	return float64(v.OnlyA) / float64(v.Total())
}

// FractionOnlyB returns OnlyB / Total.
func (v Visibility) FractionOnlyB() float64 {
	if v.Total() == 0 {
		return 0
	}
	return float64(v.OnlyB) / float64(v.Total())
}

// CompareIPs compares two address sets at individual-address level.
func CompareIPs(a, b *ipv4.Set) Visibility {
	both := a.IntersectCount(b)
	return Visibility{
		OnlyA: a.Len() - both,
		Both:  both,
		OnlyB: b.Len() - both,
	}
}

// CompareBlocks compares at /24 granularity: a block counts for a
// channel if at least one of its addresses was seen there (the paper's
// footnote 4 convention).
func CompareBlocks(a, b *ipv4.Set) Visibility {
	var v Visibility
	seen := make(map[ipv4.Block]uint8)
	a.ForEachBlock(func(blk ipv4.Block, _ *ipv4.Bitmap256) { seen[blk] |= 1 })
	b.ForEachBlock(func(blk ipv4.Block, _ *ipv4.Bitmap256) { seen[blk] |= 2 })
	for _, bits := range seen {
		switch bits {
		case 1:
			v.OnlyA++
		case 2:
			v.OnlyB++
		default:
			v.Both++
		}
	}
	return v
}

// CompareGrouped compares at an arbitrary granularity defined by a
// block-to-group mapping (BGP prefix, AS, RIR, country, ...). Blocks
// mapping to the zero value of the group are ignored.
func CompareGrouped[G comparable](a, b *ipv4.Set, groupOf func(ipv4.Block) G) Visibility {
	var zero G
	var v Visibility
	seen := make(map[G]uint8)
	a.ForEachBlock(func(blk ipv4.Block, _ *ipv4.Bitmap256) {
		if g := groupOf(blk); g != zero {
			seen[g] |= 1
		}
	})
	b.ForEachBlock(func(blk ipv4.Block, _ *ipv4.Bitmap256) {
		if g := groupOf(blk); g != zero {
			seen[g] |= 2
		}
	})
	for _, bits := range seen {
		switch bits {
		case 1:
			v.OnlyA++
		case 2:
			v.OnlyB++
		default:
			v.Both++
		}
	}
	return v
}

// PrefixGrouper returns a groupOf function mapping blocks to their
// longest-match routed prefix in table t.
func PrefixGrouper(t *bgp.Table) func(ipv4.Block) ipv4.Prefix {
	return func(blk ipv4.Block) ipv4.Prefix {
		if r, ok := t.Lookup(blk.First()); ok {
			return r.Prefix
		}
		return ipv4.Prefix{}
	}
}

// ASGrouper returns a groupOf function mapping blocks to origin AS.
func ASGrouper(t *bgp.Table) func(ipv4.Block) bgp.ASN {
	return func(blk ipv4.Block) bgp.ASN { return t.OriginOf(blk.First()) }
}

// RegionVisibility is the per-registry or per-country partition of
// Figure 3: addresses seen only by the CDN, by both, or only by ICMP.
type RegionVisibility struct {
	Label               string
	OnlyCDN, Both, Only int // Only = only ICMP
}

// GroupByRIR partitions the CDN and ICMP address sets by registry.
func GroupByRIR(cdn, icmp *ipv4.Set, reg *registry.Table) []RegionVisibility {
	out := make([]RegionVisibility, registry.NumRIRs)
	for i, r := range registry.AllRIRs {
		out[i].Label = r.String()
	}
	accumulate(cdn, icmp, func(blk ipv4.Block) int {
		return int(reg.RIROf(blk))
	}, out)
	return out
}

// GroupByCountry partitions by country and returns the topK countries
// by union size, ordered descending.
func GroupByCountry(cdn, icmp *ipv4.Set, reg *registry.Table, topK int) []RegionVisibility {
	idx := make(map[registry.Country]int)
	var out []RegionVisibility
	groupOf := func(blk ipv4.Block) int {
		c := reg.CountryOf(blk)
		if c == "" {
			return -1
		}
		i, ok := idx[c]
		if !ok {
			i = len(out)
			idx[c] = i
			out = append(out, RegionVisibility{Label: string(c)})
		}
		return i
	}
	// First pass assigns indices; accumulate needs a fixed slice, so
	// pre-register all countries.
	for _, s := range []*ipv4.Set{cdn, icmp} {
		s.ForEachBlock(func(blk ipv4.Block, _ *ipv4.Bitmap256) { groupOf(blk) })
	}
	accumulate(cdn, icmp, groupOf, out)
	sort.Slice(out, func(i, j int) bool {
		ti := out[i].OnlyCDN + out[i].Both + out[i].Only
		tj := out[j].OnlyCDN + out[j].Both + out[j].Only
		if ti != tj {
			return ti > tj
		}
		return out[i].Label < out[j].Label
	})
	if topK > 0 && topK < len(out) {
		out = out[:topK]
	}
	return out
}

// accumulate adds per-address counts into out[groupOf(block)].
func accumulate(cdn, icmp *ipv4.Set, groupOf func(ipv4.Block) int, out []RegionVisibility) {
	cdn.ForEachBlock(func(blk ipv4.Block, bm *ipv4.Bitmap256) {
		g := groupOf(blk)
		if g < 0 || g >= len(out) {
			return
		}
		if ibm := icmp.BlockBitmap(blk); ibm != nil {
			both := bm.IntersectCount(ibm)
			out[g].Both += both
			out[g].OnlyCDN += bm.Count() - both
		} else {
			out[g].OnlyCDN += bm.Count()
		}
	})
	icmp.ForEachBlock(func(blk ipv4.Block, bm *ipv4.Bitmap256) {
		g := groupOf(blk)
		if g < 0 || g >= len(out) {
			return
		}
		if cbm := cdn.BlockBitmap(blk); cbm != nil {
			out[g].Only += bm.AndNotCount(cbm)
		} else {
			out[g].Only += bm.Count()
		}
	})
}

// ICMPOnlyClass classifies addresses visible to ICMP but not the CDN
// (Figure 2b).
type ICMPOnlyClass uint8

// Figure 2b classes.
const (
	ClassUnknown ICMPOnlyClass = iota
	ClassServer
	ClassServerRouter
	ClassRouter
)

// String returns the class label.
func (c ICMPOnlyClass) String() string {
	switch c {
	case ClassServer:
		return "server"
	case ClassServerRouter:
		return "server/router"
	case ClassRouter:
		return "router"
	}
	return "unknown"
}

// ClassifyICMPOnly buckets every address of icmpOnly by whether it
// answered service scans (server) and/or appeared on traceroute paths
// (router). Returns per-class counts at IP granularity.
func ClassifyICMPOnly(icmpOnly, servers, routers *ipv4.Set) map[ICMPOnlyClass]int {
	out := make(map[ICMPOnlyClass]int)
	icmpOnly.ForEach(func(a ipv4.Addr) {
		s := servers.Contains(a)
		r := routers.Contains(a)
		switch {
		case s && r:
			out[ClassServerRouter]++
		case s:
			out[ClassServer]++
		case r:
			out[ClassRouter]++
		default:
			out[ClassUnknown]++
		}
	})
	return out
}
