package core

import (
	"sort"

	"ipscope/internal/ipv4"
	"ipscope/internal/stats"
)

// IPTraffic is one address's aggregate over the observation window.
type IPTraffic struct {
	Addr       ipv4.Addr
	DaysActive int
	Hits       float64 // total hits over the window
}

// MeanDailyHits returns hits per active day (days with ≥1 hit only,
// matching Figure 9a's definition).
func (t IPTraffic) MeanDailyHits() float64 {
	if t.DaysActive == 0 {
		return 0
	}
	return t.Hits / float64(t.DaysActive)
}

// TrafficBins groups addresses by the number of days they were active
// (1..Days), the structure behind Figures 9a and 9b.
type TrafficBins struct {
	Days int
	// Count[d-1] is the number of addresses active exactly d days.
	Count []int
	// HitsTotal[d-1] is those addresses' total traffic.
	HitsTotal []float64
	// DailyHitPercentiles[d-1] holds the [p5, p25, p50, p75, p95] of
	// per-address mean daily hits in the bin.
	DailyHitPercentiles [][5]float64
}

// BinByDaysActive builds TrafficBins from an address iterator. days is
// the window length (e.g. 112).
func BinByDaysActive(days int, forEach func(yield func(IPTraffic))) *TrafficBins {
	tb := &TrafficBins{
		Days:                days,
		Count:               make([]int, days),
		HitsTotal:           make([]float64, days),
		DailyHitPercentiles: make([][5]float64, days),
	}
	perBin := make([][]float64, days)
	forEach(func(t IPTraffic) {
		if t.DaysActive < 1 || t.DaysActive > days {
			return
		}
		i := t.DaysActive - 1
		tb.Count[i]++
		tb.HitsTotal[i] += t.Hits
		perBin[i] = append(perBin[i], t.MeanDailyHits())
	})
	for i, xs := range perBin {
		if len(xs) == 0 {
			continue
		}
		ps := stats.Percentiles(xs, 5, 25, 50, 75, 95)
		copy(tb.DailyHitPercentiles[i][:], ps)
	}
	return tb
}

// TotalIPs returns the number of binned addresses.
func (tb *TrafficBins) TotalIPs() int {
	n := 0
	for _, c := range tb.Count {
		n += c
	}
	return n
}

// TotalHits returns the total traffic across bins.
func (tb *TrafficBins) TotalHits() float64 {
	s := 0.0
	for _, h := range tb.HitsTotal {
		s += h
	}
	return s
}

// Cumulative returns, for each bin d (days active), the cumulative
// fraction of addresses active ≤ d days and the cumulative fraction of
// traffic they carry (Figure 9b's two curves).
func (tb *TrafficBins) Cumulative() (ipFrac, trafficFrac []float64) {
	ipFrac = make([]float64, tb.Days)
	trafficFrac = make([]float64, tb.Days)
	totIP := float64(tb.TotalIPs())
	totHits := tb.TotalHits()
	var ci float64
	var ch float64
	for d := 0; d < tb.Days; d++ {
		ci += float64(tb.Count[d])
		ch += tb.HitsTotal[d]
		if totIP > 0 {
			ipFrac[d] = ci / totIP
		}
		if totHits > 0 {
			trafficFrac[d] = ch / totHits
		}
	}
	return ipFrac, trafficFrac
}

// EverydayShare returns the fraction of addresses active every single
// day and the fraction of total traffic they account for (the paper:
// <10% of addresses, >40% of traffic).
func (tb *TrafficBins) EverydayShare() (ipShare, trafficShare float64) {
	totIP := float64(tb.TotalIPs())
	totHits := tb.TotalHits()
	if totIP == 0 || totHits == 0 {
		return 0, 0
	}
	last := tb.Days - 1
	return float64(tb.Count[last]) / totIP, tb.HitsTotal[last] / totHits
}

// TopShare computes the share of total traffic attributable to the top
// fraction frac of addresses by traffic, from raw per-address totals.
func TopShare(hits []float64, frac float64) float64 {
	if len(hits) == 0 || frac <= 0 {
		return 0
	}
	s := append([]float64(nil), hits...)
	sort.Float64s(s)
	total := 0.0
	for _, v := range s {
		total += v
	}
	if total == 0 {
		return 0
	}
	k := int(float64(len(s)) * frac)
	if k < 1 {
		k = 1
	}
	top := 0.0
	for _, v := range s[len(s)-k:] {
		top += v
	}
	return top / total
}

// UAPoint is one /24 block's User-Agent sampling outcome (Figure 10):
// how many request samples were taken and how many distinct UA strings
// they contained.
type UAPoint struct {
	Block   ipv4.Block
	Samples int
	Unique  float64
}

// UARegionCounts partitions UA points into the three regions the paper
// identifies in Figure 10.
type UARegionCounts struct {
	Bulk     int // ordinary client blocks (lower left)
	Bots     int // many samples, very few UAs (bottom right)
	Gateways int // many samples, very many UAs (top right)
}

// ClassifyUARegions splits points using sample/diversity thresholds.
// sampleHi separates "many requests" blocks; botMaxUnique bounds bot
// diversity; gwMinUnique is the gateway diversity floor.
func ClassifyUARegions(points []UAPoint, sampleHi int, botMaxUnique, gwMinUnique float64) UARegionCounts {
	var out UARegionCounts
	for _, p := range points {
		switch {
		case p.Samples >= sampleHi && p.Unique <= botMaxUnique:
			out.Bots++
		case p.Samples >= sampleHi && p.Unique >= gwMinUnique:
			out.Gateways++
		default:
			out.Bulk++
		}
	}
	return out
}
