package core

import (
	"fmt"
	"math"

	"ipscope/internal/ipv4"
)

// RecaptureEstimate is a capture–recapture estimate of a population
// observed by two independent channels (the statistical machinery
// behind Zander et al.'s 1.2B estimate the paper corroborates, and a
// direct way to estimate "invisible" addresses from CDN+ICMP samples).
type RecaptureEstimate struct {
	N1, N2, Both int
	// LincolnPetersen is the classic N̂ = n1·n2/m estimator.
	LincolnPetersen float64
	// Chapman is the bias-corrected small-sample estimator
	// N̂ = (n1+1)(n2+1)/(m+1) − 1.
	Chapman float64
	// SE is the standard error of the Chapman estimator.
	SE float64
	// CI95Lo/CI95Hi is the normal-approximation 95% confidence interval
	// around Chapman.
	CI95Lo, CI95Hi float64
}

// Recapture computes capture–recapture estimates from the two sample
// sizes and their overlap. It returns an error when the overlap is
// zero (Lincoln–Petersen undefined) or inconsistent with the inputs.
func Recapture(n1, n2, both int) (RecaptureEstimate, error) {
	if both < 0 || n1 < both || n2 < both {
		return RecaptureEstimate{}, fmt.Errorf("core: inconsistent recapture inputs n1=%d n2=%d m=%d", n1, n2, both)
	}
	e := RecaptureEstimate{N1: n1, N2: n2, Both: both}
	f1, f2, m := float64(n1), float64(n2), float64(both)
	e.Chapman = (f1+1)*(f2+1)/(m+1) - 1
	if both == 0 {
		e.LincolnPetersen = math.Inf(1)
		e.SE = math.Inf(1)
		e.CI95Lo, e.CI95Hi = e.Chapman, math.Inf(1)
		return e, fmt.Errorf("core: zero overlap; Lincoln–Petersen undefined")
	}
	e.LincolnPetersen = f1 * f2 / m
	// Chapman variance (Seber 1982).
	v := (f1 + 1) * (f2 + 1) * (f1 - m) * (f2 - m) / ((m + 1) * (m + 1) * (m + 2))
	e.SE = math.Sqrt(v)
	e.CI95Lo = e.Chapman - 1.96*e.SE
	e.CI95Hi = e.Chapman + 1.96*e.SE
	if e.CI95Lo < math.Max(f1, f2) {
		e.CI95Lo = math.Max(f1, f2) // population at least as large as either sample
	}
	return e, nil
}

// RecaptureSets runs Recapture directly on two observed address sets.
func RecaptureSets(a, b *ipv4.Set) (RecaptureEstimate, error) {
	return Recapture(a.Len(), b.Len(), a.IntersectCount(b))
}

// InvisibleEstimate returns the estimated number of active addresses
// seen by neither channel, per the Chapman estimate.
func (e RecaptureEstimate) InvisibleEstimate() float64 {
	seen := float64(e.N1 + e.N2 - e.Both)
	inv := e.Chapman - seen
	if inv < 0 {
		return 0
	}
	return inv
}
