package core

import (
	"math"
	"testing"

	"ipscope/internal/bgp"
	"ipscope/internal/ipv4"
)

func setOf(addrs ...string) *ipv4.Set {
	s := ipv4.NewSet()
	for _, a := range addrs {
		s.Add(ipv4.MustParseAddr(a))
	}
	return s
}

func TestWindowUnionAndWindows(t *testing.T) {
	daily := []*ipv4.Set{
		setOf("10.0.0.1"),
		setOf("10.0.0.2"),
		setOf("10.0.0.1", "10.0.0.3"),
		setOf("10.0.0.4"),
	}
	u := WindowUnion(daily, 0, 2)
	if u.Len() != 2 {
		t.Errorf("union len = %d", u.Len())
	}
	// Bounds clamp.
	if WindowUnion(daily, -5, 99).Len() != 4 {
		t.Error("clamped union wrong")
	}
	wins := Windows(daily, 2)
	if len(wins) != 2 || wins[0].Len() != 2 || wins[1].Len() != 3 {
		t.Errorf("windows = %v", wins)
	}
	// Trailing partial dropped.
	if got := Windows(daily, 3); len(got) != 1 {
		t.Errorf("partial window not dropped: %d", len(got))
	}
	if Windows(daily, 0) != nil {
		t.Error("size 0 should return nil")
	}
	// nil snapshots tolerated.
	daily[1] = nil
	if WindowUnion(daily, 0, 2).Len() != 1 {
		t.Error("nil snapshot not skipped")
	}
}

func TestEventsAndChurnSeries(t *testing.T) {
	prev := setOf("10.0.0.1", "10.0.0.2", "10.0.0.3")
	next := setOf("10.0.0.2", "10.0.0.3", "10.0.0.4", "10.0.0.5")
	up, down := Events(prev, next)
	if up.Len() != 2 || !up.Contains(ipv4.MustParseAddr("10.0.0.4")) {
		t.Errorf("up = %d", up.Len())
	}
	if down.Len() != 1 || !down.Contains(ipv4.MustParseAddr("10.0.0.1")) {
		t.Errorf("down = %d", down.Len())
	}
	series := ChurnSeries([]*ipv4.Set{prev, next})
	if len(series) != 1 {
		t.Fatal("series length")
	}
	p := series[0]
	if p.Up != 2 || p.Down != 1 {
		t.Errorf("counts %+v", p)
	}
	if math.Abs(p.UpPct-50) > 1e-9 { // 2/4
		t.Errorf("UpPct = %v", p.UpPct)
	}
	if math.Abs(p.DownPct-100.0/3) > 1e-9 {
		t.Errorf("DownPct = %v", p.DownPct)
	}
	if ChurnSeries(nil) != nil {
		t.Error("short series should be nil")
	}
}

func TestChurnByWindow(t *testing.T) {
	// 8 days alternating between two disjoint sets: daily churn is
	// 100%, 2-day windows see stable unions (0% churn).
	a := setOf("10.0.0.1", "10.0.0.2")
	b := setOf("10.0.0.3", "10.0.0.4")
	daily := []*ipv4.Set{a, b, a, b, a, b, a, b}
	res := ChurnByWindow(daily, []int{1, 2})
	if res[0].Up.Median != 100 {
		t.Errorf("daily churn median = %v", res[0].Up.Median)
	}
	if res[1].Up.Median != 0 {
		t.Errorf("2-day churn median = %v", res[1].Up.Median)
	}
}

func TestVersusBaseline(t *testing.T) {
	s0 := setOf("10.0.0.1", "10.0.0.2")
	s1 := setOf("10.0.0.1", "10.0.0.3", "10.0.0.4")
	out := VersusBaseline([]*ipv4.Set{s0, s1})
	if out[0].Appear != 0 || out[0].Disappear != 0 {
		t.Errorf("baseline vs itself = %+v", out[0])
	}
	if out[1].Appear != 2 || out[1].Disappear != 1 {
		t.Errorf("snapshot 1 = %+v", out[1])
	}
	if VersusBaseline(nil) != nil {
		t.Error("empty input")
	}
}

func TestPerASChurn(t *testing.T) {
	// Two ASes: AS1 blocks churn fully; AS2 stays constant.
	as1blk := ipv4.MustParseAddr("10.0.0.0").Block()
	as2blk := ipv4.MustParseAddr("20.0.0.0").Block()
	asOf := func(b ipv4.Block) bgp.ASN {
		if b == as1blk {
			return 1
		}
		return 2
	}
	mk := func(h1 byte) *ipv4.Set {
		s := ipv4.NewSet()
		for i := 0; i < 10; i++ {
			s.Add(as1blk.Addr(h1 + byte(i)))
			s.Add(as2blk.Addr(byte(i)))
		}
		return s
	}
	snaps := []*ipv4.Set{mk(0), mk(50), mk(100), mk(150)}
	got := PerASChurn(snaps, asOf, 1)
	if got[1] != 100 {
		t.Errorf("AS1 churn = %v, want 100", got[1])
	}
	if got[2] != 0 {
		t.Errorf("AS2 churn = %v, want 0", got[2])
	}
	// minActive filter.
	got = PerASChurn(snaps, asOf, 10000)
	if len(got) != 0 {
		t.Errorf("minActive filter ignored: %v", got)
	}
}

func TestEventMaskSingles(t *testing.T) {
	// Previous window has a neighbour active: event is /32-ish.
	prev := setOf("10.0.0.1")
	addr := ipv4.MustParseAddr("10.0.0.0")
	m := EventMask(addr, prev, 8)
	if m != 32 {
		t.Errorf("mask = %d, want 32 (neighbour active)", m)
	}
	// Neighbour at distance 2: a /31 is clean.
	prev2 := setOf("10.0.0.2")
	if m := EventMask(addr, prev2, 8); m != 31 {
		t.Errorf("mask = %d, want 31", m)
	}
}

func TestEventMaskWholeBlock(t *testing.T) {
	// Empty previous: expansion runs to the floor.
	prev := ipv4.NewSet()
	addr := ipv4.MustParseAddr("10.0.0.7")
	if m := EventMask(addr, prev, 16); m != 16 {
		t.Errorf("mask = %d, want floor 16", m)
	}
	// Violator in the adjacent /24 stops expansion at /24.
	prev.Add(ipv4.MustParseAddr("10.0.1.9"))
	if m := EventMask(addr, prev, 8); m != 24 {
		t.Errorf("mask = %d, want 24", m)
	}
}

func TestEventMaskConditionHolds(t *testing.T) {
	// Property: the returned prefix never contains a violator... except
	// that the violator check applies to sibling ranges joined during
	// expansion; the event address itself is never a violator by
	// construction (up events are disjoint from prev).
	prev := setOf("10.0.3.200", "10.0.0.40")
	for _, a := range []string{"10.0.0.0", "10.0.0.41", "10.0.2.9"} {
		addr := ipv4.MustParseAddr(a)
		m := EventMask(addr, prev, 8)
		p, _ := ipv4.NewPrefix(addr, m)
		// No violator may sit in the half of p that does not contain addr.
		if m < 32 {
			half, _ := ipv4.NewPrefix(addr, m+1)
			prev.ForEach(func(v ipv4.Addr) {
				if p.Contains(v) && !half.Contains(v) {
					t.Errorf("addr %v mask /%d: violator %v inside joined range", addr, m, v)
				}
			})
		}
	}
}

func TestEventSizeDistribution(t *testing.T) {
	// Whole-block event: all addresses of one /24 come up while a
	// neighbouring /24 stays active → masks spread at /24 or larger.
	prev := ipv4.NewSet()
	next := ipv4.NewSet()
	stay := ipv4.MustParseAddr("10.0.4.0").Block() // occupies the sibling /22..
	for i := 0; i < 256; i++ {
		next.Add(ipv4.MustParseAddr("10.0.0.0").Block().Addr(byte(i)))
		prev.Add(stay.Addr(byte(i)))
		next.Add(stay.Addr(byte(i)))
	}
	dist := EventSizeDistribution(prev, next, 8)
	sum := 0.0
	for _, f := range dist {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("distribution sums to %v", sum)
	}
	// All events share one bulk mask ≤ /22: bins 0..2 get everything.
	if dist[3]+dist[4] > 0 {
		t.Errorf("bulk event tagged as small: %v", dist)
	}

	// Single-address events: one up event next to active addresses.
	prev2 := setOf("10.0.0.1", "10.0.0.3")
	next2 := setOf("10.0.0.1", "10.0.0.3", "10.0.0.2")
	dist2 := EventSizeDistribution(prev2, next2, 8)
	if dist2[4] != 1 {
		t.Errorf("single event distribution = %v", dist2)
	}
	// Empty case.
	var zero [5]float64
	if EventSizeDistribution(next2, next2, 8) != zero {
		t.Error("no events should give zero distribution")
	}
}

func TestEventSizeBin(t *testing.T) {
	cases := map[int]int{8: 0, 16: 0, 17: 1, 20: 1, 21: 2, 24: 2, 25: 3, 28: 3, 29: 4, 32: 4}
	for mask, bin := range cases {
		if got := EventSizeBin(mask); got != bin {
			t.Errorf("EventSizeBin(%d) = %d, want %d", mask, got, bin)
		}
	}
}

func TestCorrelateBGP(t *testing.T) {
	blkA := ipv4.MustParseAddr("10.0.0.0").Block() // churns, BGP-changed
	blkB := ipv4.MustParseAddr("20.0.0.0").Block() // churns, no BGP
	blkC := ipv4.MustParseAddr("30.0.0.0").Block() // steady

	mk := func(off byte) *ipv4.Set {
		s := ipv4.NewSet()
		for i := 0; i < 8; i++ {
			s.Add(blkA.Addr(off + byte(i)))
			s.Add(blkB.Addr(off + byte(i)))
			s.Add(blkC.Addr(byte(i)))
		}
		return s
	}
	daily := []*ipv4.Set{mk(0), mk(100), mk(200), mk(50)}
	log := bgp.NewChangeLog(bgp.NewTable(), 4)
	log.Record(1, bgp.Change{Kind: bgp.OriginChange, Prefix: blkA.Prefix(), OldOrigin: 1, NewOrigin: 2})
	log.Record(2, bgp.Change{Kind: bgp.OriginChange, Prefix: blkA.Prefix(), OldOrigin: 2, NewOrigin: 3})
	log.Record(3, bgp.Change{Kind: bgp.OriginChange, Prefix: blkA.Prefix(), OldOrigin: 3, NewOrigin: 4})

	c := CorrelateBGP(daily, 1, log, 0)
	if c.UpEvents == 0 || c.DownEvents == 0 || c.Steady == 0 {
		t.Fatalf("empty correlation: %+v", c)
	}
	// Half the churning addresses (blkA's) coincide with BGP changes.
	if c.UpPct < 40 || c.UpPct > 60 {
		t.Errorf("UpPct = %v, want ~50", c.UpPct)
	}
	// Steady addresses live in blkC, untouched by BGP.
	if c.SteadyPct != 0 {
		t.Errorf("SteadyPct = %v", c.SteadyPct)
	}
}

func TestCompareLongTerm(t *testing.T) {
	blkFull := ipv4.MustParseAddr("10.0.0.0").Block() // whole block appears
	blkPart := ipv4.MustParseAddr("10.0.1.0").Block() // partial appear
	blkGone := ipv4.MustParseAddr("10.0.2.0").Block() // whole block disappears

	early := ipv4.NewSet()
	late := ipv4.NewSet()
	for i := 0; i < 10; i++ {
		late.Add(blkFull.Addr(byte(i)))  // appear, full block
		early.Add(blkGone.Addr(byte(i))) // disappear, full block
		early.Add(blkPart.Addr(byte(i)))
		late.Add(blkPart.Addr(byte(i)))
	}
	late.Add(blkPart.Addr(200)) // partial appear: block already active

	log := bgp.NewChangeLog(bgp.NewTable(), 100)
	log.Record(50, bgp.Change{Kind: bgp.OriginChange, Prefix: blkFull.Prefix(), OldOrigin: 1, NewOrigin: 2})

	got := CompareLongTerm(early, late, log, 0, 99)
	if got.Appear != 11 || got.Disappear != 10 {
		t.Fatalf("appear/disappear = %d/%d", got.Appear, got.Disappear)
	}
	// 10 of 11 appear addresses are in a fully-appearing /24.
	if math.Abs(got.AppearFull24Pct-100*10.0/11) > 1e-9 {
		t.Errorf("AppearFull24Pct = %v", got.AppearFull24Pct)
	}
	if got.DisappearFull24Pct != 100 {
		t.Errorf("DisappearFull24Pct = %v", got.DisappearFull24Pct)
	}
	// BGP: the 10 blkFull appears saw an origin change; blkPart's 1 did not.
	if math.Abs(got.AppearBGP.OriginChangePct-100*10.0/11) > 1e-9 {
		t.Errorf("AppearBGP = %+v", got.AppearBGP)
	}
	if got.DisappearBGP.NoChangePct != 100 {
		t.Errorf("DisappearBGP = %+v", got.DisappearBGP)
	}
	// Nil log tolerated.
	got2 := CompareLongTerm(early, late, nil, 0, 0)
	if got2.AppearBGP.NoChangePct != 100 {
		t.Errorf("nil log breakdown = %+v", got2.AppearBGP)
	}
}

func TestTopContributors(t *testing.T) {
	blkA := ipv4.MustParseAddr("10.0.0.0").Block()
	blkB := ipv4.MustParseAddr("20.0.0.0").Block()
	s := ipv4.NewSet()
	for i := 0; i < 20; i++ {
		s.Add(blkA.Addr(byte(i)))
	}
	for i := 0; i < 5; i++ {
		s.Add(blkB.Addr(byte(i)))
	}
	asOf := func(b ipv4.Block) bgp.ASN {
		if b == blkA {
			return 7
		}
		return 9
	}
	top := TopContributors(s, asOf, 10)
	if len(top) != 2 || top[0].AS != 7 || top[0].Count != 20 || top[1].Count != 5 {
		t.Errorf("top = %+v", top)
	}
	if got := TopContributors(s, asOf, 1); len(got) != 1 {
		t.Errorf("k=1 gave %d", len(got))
	}
}
