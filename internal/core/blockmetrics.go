package core

import (
	"ipscope/internal/ipv4"
)

// FillingDegree (FD) is the number of distinct active addresses within
// a /24 block over the whole observation window (Section 5.1); its
// range is 0..256 (the paper reports 1..256 for active blocks).
func FillingDegree(daily []*ipv4.Set, blk ipv4.Block) int {
	var u ipv4.Bitmap256
	for _, s := range daily {
		if s == nil {
			continue
		}
		if bm := s.BlockBitmap(blk); bm != nil {
			u.UnionWith(bm)
		}
	}
	return u.Count()
}

// STU is the spatio-temporal utilization of a block (Section 5.1):
// total active address-days divided by the maximum possible
// (days × 256). Range (0, 1] for active blocks.
func STU(daily []*ipv4.Set, blk ipv4.Block) float64 {
	if len(daily) == 0 {
		return 0
	}
	active := 0
	for _, s := range daily {
		if s == nil {
			continue
		}
		active += s.BlockCount(blk)
	}
	return float64(active) / float64(len(daily)*256)
}

// BlockDailyBitmaps extracts a block's activity matrix: one Bitmap256
// per day (the raw material of Figures 6 and 7).
func BlockDailyBitmaps(daily []*ipv4.Set, blk ipv4.Block) []ipv4.Bitmap256 {
	out := make([]ipv4.Bitmap256, len(daily))
	for i, s := range daily {
		if s == nil {
			continue
		}
		if bm := s.BlockBitmap(blk); bm != nil {
			out[i] = *bm
		}
	}
	return out
}

// MonthlySTU returns the per-month STU series of a block, where a month
// is daysPerMonth consecutive days (the paper uses its four ~28-day
// months). A trailing partial month is dropped.
func MonthlySTU(daily []*ipv4.Set, blk ipv4.Block, daysPerMonth int) []float64 {
	if daysPerMonth <= 0 {
		return nil
	}
	n := len(daily) / daysPerMonth
	out := make([]float64, 0, n)
	for m := 0; m < n; m++ {
		out = append(out, STU(daily[m*daysPerMonth:(m+1)*daysPerMonth], blk))
	}
	return out
}

// MaxMonthlySTUChange is the Figure 8a metric: the maximum
// month-to-month change in STU (signed; the value with the largest
// magnitude is returned, preserving its sign).
func MaxMonthlySTUChange(daily []*ipv4.Set, blk ipv4.Block, daysPerMonth int) float64 {
	series := MonthlySTU(daily, blk, daysPerMonth)
	best := 0.0
	for i := 1; i < len(series); i++ {
		d := series[i] - series[i-1]
		if abs(d) > abs(best) {
			best = d
		}
	}
	return best
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// ChangeSplit partitions active blocks into those with at most minor
// assignment change and those with major change, using the paper's
// |ΔSTU| > threshold criterion (Section 5.2; threshold 0.25 keeps 90%
// of blocks as stable in the paper).
type ChangeSplit struct {
	Threshold     float64
	Stable, Major []ipv4.Block
	// Deltas holds each active block's max monthly STU change, aligned
	// with Blocks() = append(Stable, Major...) order before the split;
	// kept for CDF rendering.
	Deltas map[ipv4.Block]float64
}

// DetectChange computes ChangeSplit over all active blocks.
func DetectChange(daily []*ipv4.Set, daysPerMonth int, threshold float64) ChangeSplit {
	out := ChangeSplit{
		Threshold: threshold,
		Deltas:    make(map[ipv4.Block]float64),
	}
	for _, blk := range ActiveBlocks(daily) {
		d := MaxMonthlySTUChange(daily, blk, daysPerMonth)
		out.Deltas[blk] = d
		if abs(d) > threshold {
			out.Major = append(out.Major, blk)
		} else {
			out.Stable = append(out.Stable, blk)
		}
	}
	return out
}

// MajorFraction returns the share of active blocks classified as major
// change.
func (c ChangeSplit) MajorFraction() float64 {
	tot := len(c.Stable) + len(c.Major)
	if tot == 0 {
		return 0
	}
	return float64(len(c.Major)) / float64(tot)
}

// PotentialUtilization summarizes Section 5.4's estimate: how much
// address space could be freed within already-active blocks.
type PotentialUtilization struct {
	ActiveBlocks int
	// LowFDBlocks counts active blocks with FD < 64 (likely static,
	// sparsely used).
	LowFDBlocks int
	// DynamicHighFD counts blocks with FD > 250 (cycling pools).
	DynamicHighFD int
	// DynamicLowSTU counts FD>250 blocks whose STU < 0.6: dynamic pools
	// that could be shrunk.
	DynamicLowSTU int
	// FreeableAddrs estimates addresses freeable by shrinking low-STU
	// dynamic pools to their mean daily occupancy.
	FreeableAddrs int
}

// EstimatePotential computes PotentialUtilization over active blocks.
func EstimatePotential(daily []*ipv4.Set, blocks []ipv4.Block) PotentialUtilization {
	var out PotentialUtilization
	out.ActiveBlocks = len(blocks)
	for _, blk := range blocks {
		fd := FillingDegree(daily, blk)
		stu := STU(daily, blk)
		if fd < 64 {
			out.LowFDBlocks++
		}
		if fd > 250 {
			out.DynamicHighFD++
			if stu < 0.6 {
				out.DynamicLowSTU++
				// Mean daily occupancy is stu*256; shrinking the pool
				// to 1.25× that frees the rest of the /24.
				occupancy := stu * 256
				free := 256 - int(occupancy*1.25)
				if free > 0 {
					out.FreeableAddrs += free
				}
			}
		}
	}
	return out
}
