package core

import (
	"sort"

	"ipscope/internal/bgp"
	"ipscope/internal/ipv4"
	"ipscope/internal/par"
	"ipscope/internal/stats"
)

// Events returns the up events (addresses in next but not prev) and
// down events (addresses in prev but not next) between two snapshots,
// per the definition in Section 4.1. Callers that need the diffs
// parallelized use ipv4.DiffShards directly; the drivers here fan out
// across transitions instead.
func Events(prev, next *ipv4.Set) (up, down *ipv4.Set) {
	return next.Diff(prev), prev.Diff(next)
}

// ChurnPoint is the churn between one pair of consecutive snapshots.
type ChurnPoint struct {
	Up, Down int // event counts
	// UpPct is 100 × |next \ prev| / |next|; DownPct is
	// 100 × |prev \ next| / |prev| (the paper's Figure 4b metric).
	UpPct, DownPct float64
}

// ChurnSeries computes the churn between every consecutive snapshot
// pair. The pairwise diff counts run across a worker pool; results are
// ordered by transition index, independent of scheduling.
func ChurnSeries(snaps []*ipv4.Set) []ChurnPoint {
	if len(snaps) < 2 {
		return nil
	}
	n := len(snaps) - 1
	ups := ipv4.DiffCounts(snaps[1:], snaps[:n], 0)
	downs := ipv4.DiffCounts(snaps[:n], snaps[1:], 0)
	out := make([]ChurnPoint, n)
	for i := range out {
		prev, next := snaps[i], snaps[i+1]
		p := ChurnPoint{Up: ups[i], Down: downs[i]}
		if next.Len() > 0 {
			p.UpPct = 100 * float64(ups[i]) / float64(next.Len())
		}
		if prev.Len() > 0 {
			p.DownPct = 100 * float64(downs[i]) / float64(prev.Len())
		}
		out[i] = p
	}
	return out
}

// WindowChurn summarizes churn percentages for non-overlapping windows
// of the given size over daily snapshots: the min/median/max across
// snapshot transitions (one point of Figure 4b).
type WindowChurn struct {
	WindowDays int
	Up, Down   stats.Summary
}

// ChurnByWindow computes WindowChurn for each window size.
func ChurnByWindow(daily []*ipv4.Set, sizes []int) []WindowChurn {
	out := make([]WindowChurn, 0, len(sizes))
	for _, size := range sizes {
		wins := Windows(daily, size)
		series := ChurnSeries(wins)
		var ups, downs []float64
		for _, p := range series {
			ups = append(ups, p.UpPct)
			downs = append(downs, p.DownPct)
		}
		out = append(out, WindowChurn{
			WindowDays: size,
			Up:         stats.Summarize(ups),
			Down:       stats.Summarize(downs),
		})
	}
	return out
}

// AppearDisappear compares one snapshot against a fixed baseline
// (Figure 4c): Appear counts addresses active now but not in the
// baseline; Disappear counts baseline addresses inactive now.
type AppearDisappear struct {
	Appear, Disappear int
}

// VersusBaseline computes AppearDisappear for every snapshot against
// snaps[0].
func VersusBaseline(snaps []*ipv4.Set) []AppearDisappear {
	if len(snaps) == 0 {
		return nil
	}
	base := snaps[0]
	return par.Map(len(snaps), 0, func(i int) AppearDisappear {
		return AppearDisappear{
			Appear:    snaps[i].DiffCount(base),
			Disappear: base.DiffCount(snaps[i]),
		}
	})
}

// PerASChurn computes, for each AS, the median percentage of its
// addresses with an up event per snapshot transition (Figure 5a).
// Only ASes with at least minActive active addresses over the whole
// period are reported.
func PerASChurn(snaps []*ipv4.Set, asOf func(ipv4.Block) bgp.ASN, minActive int) map[bgp.ASN]float64 {
	if len(snaps) < 2 {
		return nil
	}
	// Partition each snapshot by AS lazily: per transition, compute
	// per-AS up counts and per-AS next-window totals. Transitions are
	// independent, so they fan out; partial results merge in transition
	// order, which keeps each AS's percentage series ordered.
	type transition struct {
		upPerAS, totPerAS map[bgp.ASN]int
	}
	parts := par.Map(len(snaps)-1, 0, func(i int) transition {
		prev, next := snaps[i], snaps[i+1]
		tr := transition{
			upPerAS:  make(map[bgp.ASN]int),
			totPerAS: make(map[bgp.ASN]int),
		}
		next.ForEachBlock(func(blk ipv4.Block, bm *ipv4.Bitmap256) {
			as := asOf(blk)
			n := bm.Count()
			tr.totPerAS[as] += n
			if pbm := prev.BlockBitmap(blk); pbm != nil {
				tr.upPerAS[as] += bm.AndNotCount(pbm)
			} else {
				tr.upPerAS[as] += n
			}
		})
		return tr
	})

	// The minActive filter needs each AS's total activity over the
	// period: that is just the union of snaps[1:] partitioned by AS,
	// computed once instead of per transition.
	totalActive := make(map[bgp.ASN]*ipv4.Set)
	ipv4.UnionAll(snaps[1:], 0).ForEachBlock(func(blk ipv4.Block, bm *ipv4.Bitmap256) {
		as := asOf(blk)
		u := totalActive[as]
		if u == nil {
			u = ipv4.NewSet()
			totalActive[as] = u
		}
		u.AddBlockBitmap(blk, bm)
	})

	type acc struct{ pcts []float64 }
	accs := make(map[bgp.ASN]*acc)
	for _, tr := range parts {
		for as, tot := range tr.totPerAS {
			if tot == 0 {
				continue
			}
			a := accs[as]
			if a == nil {
				a = &acc{}
				accs[as] = a
			}
			a.pcts = append(a.pcts, 100*float64(tr.upPerAS[as])/float64(tot))
		}
	}
	out := make(map[bgp.ASN]float64)
	for as, a := range accs {
		if u := totalActive[as]; u == nil || u.Len() < minActive {
			continue
		}
		out[as] = stats.Median(a.pcts)
	}
	return out
}

// EventMask returns the paper's event-size tag for one up/down event at
// addr (Section 4.2): the smallest prefix mask m (counted in bits, so a
// smaller m covers more addresses) such that every address in addr/m
// either had an event or showed no activity in both snapshots.
//
// For up events the violator set is exactly the previous window's
// active set (any previously-active address disqualifies the range);
// for down events it is the next window's active set. Expansion stops
// at floor bits (use 8 to match the paper's ">= /16" catch-all bin,
// which any mask <= 16 falls into).
func EventMask(addr ipv4.Addr, violators *ipv4.Set, floor int) int {
	if floor < 0 {
		floor = 0
	}
	mask := 32
	for mask > floor {
		// Expanding from mask to mask-1 adds the sibling range of
		// addr/mask. The expansion is allowed only if that sibling
		// range contains no violator.
		parent, _ := ipv4.NewPrefix(addr, mask-1)
		sibFirst := parent.First()
		cur, _ := ipv4.NewPrefix(addr, mask)
		if cur.First() == parent.First() {
			// addr is in the low half; sibling is the high half.
			sibFirst = ipv4.Addr(uint32(parent.First()) + uint32(cur.NumAddrs()))
		}
		sib, _ := ipv4.NewPrefix(sibFirst, mask)
		if prefixIntersects(violators, sib) {
			break
		}
		mask--
	}
	return mask
}

// prefixIntersects reports whether any member of s lies within p.
func prefixIntersects(s *ipv4.Set, p ipv4.Prefix) bool {
	if p.Bits() >= 24 {
		bm := s.BlockBitmap(p.FirstBlock())
		if bm == nil {
			return false
		}
		if p.Bits() == 24 {
			return !bm.IsEmpty()
		}
		lo := p.First().Host()
		hi := p.Last().Host()
		return bm.CountRange(lo, hi) > 0
	}
	found := false
	p.Blocks(func(b ipv4.Block) {
		if found {
			return
		}
		if bm := s.BlockBitmap(b); bm != nil && !bm.IsEmpty() {
			found = true
		}
	})
	return found
}

// EventSizeBin groups a mask into the paper's Figure 5b bins.
// Bins: >=/16 (mask <= 16), /17-/20, /21-/24, /25-/28, /29-/32.
func EventSizeBin(mask int) int {
	switch {
	case mask <= 16:
		return 0
	case mask <= 20:
		return 1
	case mask <= 24:
		return 2
	case mask <= 28:
		return 3
	default:
		return 4
	}
}

// EventSizeBinLabels are display labels for EventSizeBin indices.
var EventSizeBinLabels = [5]string{">=/16", "/20", "/24", "/28", "/32"}

// EventSizeDistribution tags every up event between prev and next with
// its event mask and returns the fraction of events per Figure 5b bin.
// Blocks are tagged across a worker pool; per-bin integer counts merge
// associatively, so the distribution is worker-count independent.
func EventSizeDistribution(prev, next *ipv4.Set, floor int) [5]float64 {
	up := next.DiffShards(prev, 0)
	blocks := up.Blocks()
	perBlock := par.Map(len(blocks), 0, func(i int) [5]int {
		var counts [5]int
		bm := up.BlockBitmap(blocks[i])
		bm.ForEach(func(h byte) {
			m := EventMask(blocks[i].Addr(h), prev, floor)
			counts[EventSizeBin(m)]++
		})
		return counts
	})
	var counts [5]int
	total := 0
	for _, c := range perBlock {
		for i, n := range c {
			counts[i] += n
			total += n
		}
	}
	var out [5]float64
	if total == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}

// BGPCorrelation is the Figure 5c measurement for one window size:
// the percentage of up events, down events, and steadily-active
// addresses whose /24 block saw a BGP change during the transition.
type BGPCorrelation struct {
	WindowDays                   int
	UpPct, DownPct, SteadyPct    float64
	UpEvents, DownEvents, Steady int
}

// CorrelateBGP computes BGPCorrelation over daily snapshots aggregated
// into windows of the given size. startDay is the absolute day of
// daily[0] within the change log's timeline.
func CorrelateBGP(daily []*ipv4.Set, size int, log *bgp.ChangeLog, startDay int) BGPCorrelation {
	wins := Windows(daily, size)
	out := BGPCorrelation{WindowDays: size}
	if len(wins) < 2 {
		return out
	}
	// Each window transition correlates independently; integer partials
	// merge associatively so the fan-out cannot change the result.
	type partial struct{ up, upHit, down, downHit, steady, steadyHit int }
	parts := par.Map(len(wins)-1, 0, func(j int) partial {
		i := j + 1
		prev, next := wins[i-1], wins[i]
		// Changes during either window are considered "going together"
		// with the transition.
		d1 := startDay + (i-1)*size
		d2 := startDay + (i+1)*size
		touched := log.TouchedBlocks(d1-1, d2-1)
		up, down := Events(prev, next)
		var p partial
		up.ForEachBlock(func(blk ipv4.Block, bm *ipv4.Bitmap256) {
			p.up += bm.Count()
			if _, ok := touched[blk]; ok {
				p.upHit += bm.Count()
			}
		})
		down.ForEachBlock(func(blk ipv4.Block, bm *ipv4.Bitmap256) {
			p.down += bm.Count()
			if _, ok := touched[blk]; ok {
				p.downHit += bm.Count()
			}
		})
		prev.ForEachBlock(func(blk ipv4.Block, bm *ipv4.Bitmap256) {
			nbm := next.BlockBitmap(blk)
			if nbm == nil {
				return
			}
			n := bm.IntersectCount(nbm)
			p.steady += n
			if _, ok := touched[blk]; ok {
				p.steadyHit += n
			}
		})
		return p
	})
	var upHit, downHit, steadyHit int
	for _, p := range parts {
		out.UpEvents += p.up
		out.DownEvents += p.down
		out.Steady += p.steady
		upHit += p.upHit
		downHit += p.downHit
		steadyHit += p.steadyHit
	}
	if out.UpEvents > 0 {
		out.UpPct = 100 * float64(upHit) / float64(out.UpEvents)
	}
	if out.DownEvents > 0 {
		out.DownPct = 100 * float64(downHit) / float64(out.DownEvents)
	}
	if out.Steady > 0 {
		out.SteadyPct = 100 * float64(steadyHit) / float64(out.Steady)
	}
	return out
}

// LongTermChurn is the Table 2 comparison of two distant periods.
type LongTermChurn struct {
	Appear, Disappear int
	// Full24Pct is the share of appear/disappear addresses whose entire
	// containing /24 appeared or disappeared.
	AppearFull24Pct, DisappearFull24Pct float64
	// BGP breakdown (percent of event addresses whose block saw no
	// change / an origin change / an announce-or-withdraw).
	AppearBGP, DisappearBGP BGPBreakdown
}

// BGPBreakdown partitions event addresses by accompanying BGP activity.
type BGPBreakdown struct {
	NoChangePct, OriginChangePct, AnnounceWithdrawPct float64
}

// CompareLongTerm reproduces Table 2: early and late are unions of
// distant periods (e.g. Jan/Feb vs Nov/Dec); the change log is
// consulted over (dayFrom, dayTo].
func CompareLongTerm(early, late *ipv4.Set, log *bgp.ChangeLog, dayFrom, dayTo int) LongTermChurn {
	appear := late.Diff(early)
	disappear := early.Diff(late)
	out := LongTermChurn{Appear: appear.Len(), Disappear: disappear.Len()}

	touched := map[ipv4.Block]bgp.ChangeKind{}
	if log != nil {
		touched = log.TouchedBlocks(dayFrom, dayTo)
	}
	classify := func(events, otherPeriod *ipv4.Set) (full24 float64, bd BGPBreakdown) {
		if events.Len() == 0 {
			return 0, bd
		}
		var full, noChg, origin, annWdr int
		events.ForEachBlock(func(blk ipv4.Block, bm *ipv4.Bitmap256) {
			n := bm.Count()
			// The whole /24 appeared/disappeared if the other period
			// had no activity in this block at all.
			if otherPeriod.BlockCount(blk) == 0 {
				full += n
			}
			if k, ok := touched[blk]; ok {
				if k == bgp.OriginChange {
					origin += n
				} else {
					annWdr += n
				}
			} else {
				noChg += n
			}
		})
		tot := float64(events.Len())
		bd = BGPBreakdown{
			NoChangePct:         100 * float64(noChg) / tot,
			OriginChangePct:     100 * float64(origin) / tot,
			AnnounceWithdrawPct: 100 * float64(annWdr) / tot,
		}
		return 100 * float64(full) / tot, bd
	}
	out.AppearFull24Pct, out.AppearBGP = classify(appear, early)
	out.DisappearFull24Pct, out.DisappearBGP = classify(disappear, late)
	return out
}

// TopContributors returns the k ASes contributing the most addresses to
// the given event set (Section 4.3's "top 10 ASes" analysis).
func TopContributors(events *ipv4.Set, asOf func(ipv4.Block) bgp.ASN, k int) []struct {
	AS    bgp.ASN
	Count int
} {
	counts := make(map[bgp.ASN]int)
	events.ForEachBlock(func(blk ipv4.Block, bm *ipv4.Bitmap256) {
		counts[asOf(blk)] += bm.Count()
	})
	type kv struct {
		AS    bgp.ASN
		Count int
	}
	xs := make([]kv, 0, len(counts))
	for as, n := range counts {
		xs = append(xs, kv{as, n})
	}
	sort.Slice(xs, func(i, j int) bool {
		if xs[i].Count != xs[j].Count {
			return xs[i].Count > xs[j].Count
		}
		return xs[i].AS < xs[j].AS
	})
	if k > len(xs) {
		k = len(xs)
	}
	out := make([]struct {
		AS    bgp.ASN
		Count int
	}, k)
	for i := 0; i < k; i++ {
		out[i] = struct {
			AS    bgp.ASN
			Count int
		}{xs[i].AS, xs[i].Count}
	}
	return out
}
