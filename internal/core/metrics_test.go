package core

import (
	"math"
	"testing"

	"ipscope/internal/bgp"
	"ipscope/internal/ipv4"
	"ipscope/internal/registry"
)

func blockWith(blk ipv4.Block, hosts ...byte) *ipv4.Set {
	s := ipv4.NewSet()
	for _, h := range hosts {
		s.Add(blk.Addr(h))
	}
	return s
}

func TestFillingDegreeAndSTU(t *testing.T) {
	blk := ipv4.MustParseAddr("10.0.0.0").Block()
	daily := []*ipv4.Set{
		blockWith(blk, 1, 2),
		blockWith(blk, 2, 3),
		blockWith(blk, 1),
		nil,
	}
	if got := FillingDegree(daily, blk); got != 3 {
		t.Errorf("FD = %d, want 3", got)
	}
	// STU = (2+2+1+0) / (4*256)
	want := 5.0 / (4 * 256)
	if got := STU(daily, blk); math.Abs(got-want) > 1e-12 {
		t.Errorf("STU = %v, want %v", got, want)
	}
	if STU(nil, blk) != 0 {
		t.Error("empty STU should be 0")
	}
	other := ipv4.MustParseAddr("99.0.0.0").Block()
	if FillingDegree(daily, other) != 0 || STU(daily, other) != 0 {
		t.Error("absent block should be 0")
	}
}

func TestSTUBounds(t *testing.T) {
	blk := ipv4.MustParseAddr("10.0.0.0").Block()
	full := ipv4.NewSet()
	var bm ipv4.Bitmap256
	for i := 0; i < 256; i++ {
		bm.Set(byte(i))
	}
	full.AddBlockBitmap(blk, &bm)
	daily := []*ipv4.Set{full, full}
	if got := STU(daily, blk); got != 1 {
		t.Errorf("fully active STU = %v", got)
	}
}

func TestBlockDailyBitmaps(t *testing.T) {
	blk := ipv4.MustParseAddr("10.0.0.0").Block()
	daily := []*ipv4.Set{blockWith(blk, 5), nil, blockWith(blk, 7)}
	bms := BlockDailyBitmaps(daily, blk)
	if len(bms) != 3 {
		t.Fatal("length")
	}
	if !bms[0].Test(5) || !bms[1].IsEmpty() || !bms[2].Test(7) {
		t.Error("bitmap extraction wrong")
	}
}

func TestMonthlySTUAndChange(t *testing.T) {
	blk := ipv4.MustParseAddr("10.0.0.0").Block()
	// Month 1: 2 active/day; month 2: 200 active/day.
	var lo, hi ipv4.Bitmap256
	for i := 0; i < 2; i++ {
		lo.Set(byte(i))
	}
	for i := 0; i < 200; i++ {
		hi.Set(byte(i))
	}
	var daily []*ipv4.Set
	for d := 0; d < 10; d++ {
		s := ipv4.NewSet()
		if d < 5 {
			s.AddBlockBitmap(blk, &lo)
		} else {
			s.AddBlockBitmap(blk, &hi)
		}
		daily = append(daily, s)
	}
	series := MonthlySTU(daily, blk, 5)
	if len(series) != 2 {
		t.Fatalf("series = %v", series)
	}
	d := MaxMonthlySTUChange(daily, blk, 5)
	want := (200.0 - 2.0) / 256
	if math.Abs(d-want) > 1e-9 {
		t.Errorf("ΔSTU = %v, want %v", d, want)
	}
	// Sign is preserved for decreases.
	rev := []*ipv4.Set{daily[5], daily[6], daily[7], daily[8], daily[9],
		daily[0], daily[1], daily[2], daily[3], daily[4]}
	if got := MaxMonthlySTUChange(rev, blk, 5); math.Abs(got+want) > 1e-9 {
		t.Errorf("negative ΔSTU = %v, want %v", got, -want)
	}
	if MonthlySTU(daily, blk, 0) != nil {
		t.Error("daysPerMonth 0")
	}
}

func TestDetectChange(t *testing.T) {
	stable := ipv4.MustParseAddr("10.0.0.0").Block()
	major := ipv4.MustParseAddr("10.0.1.0").Block()
	var few, many ipv4.Bitmap256
	few.Set(1)
	for i := 0; i < 128; i++ {
		many.Set(byte(i))
	}
	var daily []*ipv4.Set
	for d := 0; d < 8; d++ {
		s := ipv4.NewSet()
		s.AddBlockBitmap(stable, &few)
		if d < 4 {
			s.AddBlockBitmap(major, &few)
		} else {
			s.AddBlockBitmap(major, &many)
		}
		daily = append(daily, s)
	}
	cs := DetectChange(daily, 4, 0.25)
	if len(cs.Stable) != 1 || cs.Stable[0] != stable {
		t.Errorf("stable = %v", cs.Stable)
	}
	if len(cs.Major) != 1 || cs.Major[0] != major {
		t.Errorf("major = %v", cs.Major)
	}
	if got := cs.MajorFraction(); got != 0.5 {
		t.Errorf("MajorFraction = %v", got)
	}
	if len(cs.Deltas) != 2 {
		t.Errorf("Deltas = %v", cs.Deltas)
	}
}

func TestEstimatePotential(t *testing.T) {
	sparse := ipv4.MustParseAddr("10.0.0.0").Block() // FD 2
	pool := ipv4.MustParseAddr("10.0.1.0").Block()   // FD 256, low STU
	busy := ipv4.MustParseAddr("10.0.2.0").Block()   // FD 256, high STU

	var daily []*ipv4.Set
	for d := 0; d < 8; d++ {
		s := ipv4.NewSet()
		var bmSparse, bmPool, bmBusy ipv4.Bitmap256
		bmSparse.Set(0)
		bmSparse.Set(1)
		// Pool cycles 32 addresses per day over 8 days: FD 256, STU .125.
		for i := 0; i < 32; i++ {
			bmPool.Set(byte(d*32 + i))
		}
		for i := 0; i < 256; i++ {
			bmBusy.Set(byte(i))
		}
		s.AddBlockBitmap(sparse, &bmSparse)
		s.AddBlockBitmap(pool, &bmPool)
		s.AddBlockBitmap(busy, &bmBusy)
		daily = append(daily, s)
	}
	blocks := []ipv4.Block{sparse, pool, busy}
	p := EstimatePotential(daily, blocks)
	if p.ActiveBlocks != 3 || p.LowFDBlocks != 1 || p.DynamicHighFD != 2 || p.DynamicLowSTU != 1 {
		t.Errorf("potential = %+v", p)
	}
	if p.FreeableAddrs <= 0 || p.FreeableAddrs > 256 {
		t.Errorf("FreeableAddrs = %d", p.FreeableAddrs)
	}
}

func TestCompareIPsAndBlocks(t *testing.T) {
	a := setOf("10.0.0.1", "10.0.0.2", "20.0.0.1")
	b := setOf("10.0.0.2", "30.0.0.1")
	v := CompareIPs(a, b)
	if v.OnlyA != 2 || v.Both != 1 || v.OnlyB != 1 {
		t.Errorf("ip visibility = %+v", v)
	}
	if v.Total() != 4 {
		t.Errorf("total = %d", v.Total())
	}
	if math.Abs(v.FractionOnlyA()-0.5) > 1e-9 {
		t.Errorf("fracA = %v", v.FractionOnlyA())
	}
	vb := CompareBlocks(a, b)
	if vb.OnlyA != 1 || vb.Both != 1 || vb.OnlyB != 1 {
		t.Errorf("block visibility = %+v", vb)
	}
}

func TestCompareGrouped(t *testing.T) {
	tbl := bgp.NewTable()
	tbl.Insert(bgp.Route{Prefix: ipv4.MustParsePrefix("10.0.0.0/8"), Origin: 1})
	tbl.Insert(bgp.Route{Prefix: ipv4.MustParsePrefix("20.0.0.0/8"), Origin: 2})
	a := setOf("10.0.0.1", "10.1.0.1")
	b := setOf("20.0.0.1")
	v := CompareGrouped(a, b, ASGrouper(tbl))
	if v.OnlyA != 1 || v.OnlyB != 1 || v.Both != 0 {
		t.Errorf("AS visibility = %+v", v)
	}
	// Unrouted blocks (zero group) ignored.
	c := setOf("99.0.0.1")
	v2 := CompareGrouped(c, b, ASGrouper(tbl))
	if v2.OnlyA != 0 {
		t.Errorf("unrouted not ignored: %+v", v2)
	}
	vp := CompareGrouped(a, b, PrefixGrouper(tbl))
	if vp.Total() != 2 {
		t.Errorf("prefix visibility = %+v", vp)
	}
}

func TestGroupByRIRAndCountry(t *testing.T) {
	reg := registry.NewTable([]registry.Allocation{
		{Prefix: ipv4.MustParsePrefix("10.0.0.0/16"), Country: "US", RIR: registry.ARIN},
		{Prefix: ipv4.MustParsePrefix("20.0.0.0/16"), Country: "DE", RIR: registry.RIPE},
	})
	cdn := setOf("10.0.0.1", "10.0.0.2", "10.0.0.3", "20.0.0.1")
	icmp := setOf("10.0.0.2", "20.0.0.9")
	byRIR := GroupByRIR(cdn, icmp, reg)
	var arin, ripe RegionVisibility
	for _, rv := range byRIR {
		switch rv.Label {
		case "ARIN":
			arin = rv
		case "RIPE":
			ripe = rv
		}
	}
	if arin.OnlyCDN != 2 || arin.Both != 1 || arin.Only != 0 {
		t.Errorf("ARIN = %+v", arin)
	}
	if ripe.OnlyCDN != 1 || ripe.Only != 1 {
		t.Errorf("RIPE = %+v", ripe)
	}
	byCountry := GroupByCountry(cdn, icmp, reg, 10)
	if len(byCountry) != 2 || byCountry[0].Label != "US" {
		t.Errorf("countries = %+v", byCountry)
	}
	if top1 := GroupByCountry(cdn, icmp, reg, 1); len(top1) != 1 {
		t.Errorf("topK = %+v", top1)
	}
}

func TestClassifyICMPOnly(t *testing.T) {
	icmpOnly := setOf("10.0.0.1", "10.0.0.2", "10.0.0.3", "10.0.0.4")
	servers := setOf("10.0.0.1", "10.0.0.2")
	routers := setOf("10.0.0.2", "10.0.0.3")
	got := ClassifyICMPOnly(icmpOnly, servers, routers)
	if got[ClassServer] != 1 || got[ClassServerRouter] != 1 || got[ClassRouter] != 1 || got[ClassUnknown] != 1 {
		t.Errorf("classification = %v", got)
	}
	for c, want := range map[ICMPOnlyClass]string{
		ClassServer: "server", ClassRouter: "router",
		ClassServerRouter: "server/router", ClassUnknown: "unknown",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
}

func TestRecapture(t *testing.T) {
	// Known population: N=1000, samples 500 and 400 with overlap 200
	// → LP = 500*400/200 = 1000.
	e, err := Recapture(500, 400, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.LincolnPetersen-1000) > 1e-9 {
		t.Errorf("LP = %v", e.LincolnPetersen)
	}
	if math.Abs(e.Chapman-1000) > 5 {
		t.Errorf("Chapman = %v", e.Chapman)
	}
	if e.CI95Lo > e.Chapman || e.CI95Hi < e.Chapman {
		t.Errorf("CI [%v,%v] excludes estimate", e.CI95Lo, e.CI95Hi)
	}
	if e.SE <= 0 {
		t.Errorf("SE = %v", e.SE)
	}
	inv := e.InvisibleEstimate()
	if math.Abs(inv-(1000-700)) > 10 {
		t.Errorf("invisible = %v, want ~300", inv)
	}
	// Errors.
	if _, err := Recapture(10, 10, 20); err == nil {
		t.Error("m > n1 must error")
	}
	if _, err := Recapture(10, 10, 0); err == nil {
		t.Error("zero overlap must error")
	}
}

func TestRecaptureSets(t *testing.T) {
	a := setOf("10.0.0.1", "10.0.0.2", "10.0.0.3")
	b := setOf("10.0.0.2", "10.0.0.3", "10.0.0.4")
	e, err := RecaptureSets(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if e.N1 != 3 || e.N2 != 3 || e.Both != 2 {
		t.Errorf("inputs = %+v", e)
	}
	if math.Abs(e.LincolnPetersen-4.5) > 1e-9 {
		t.Errorf("LP = %v", e.LincolnPetersen)
	}
}

func TestBinByDaysActive(t *testing.T) {
	addrs := []IPTraffic{
		{Addr: ipv4.MustParseAddr("10.0.0.1"), DaysActive: 1, Hits: 10},
		{Addr: ipv4.MustParseAddr("10.0.0.2"), DaysActive: 1, Hits: 30},
		{Addr: ipv4.MustParseAddr("10.0.0.3"), DaysActive: 4, Hits: 4000},
		{Addr: ipv4.MustParseAddr("10.0.0.4"), DaysActive: 0, Hits: 5},  // dropped
		{Addr: ipv4.MustParseAddr("10.0.0.5"), DaysActive: 9, Hits: 99}, // dropped
	}
	tb := BinByDaysActive(4, func(yield func(IPTraffic)) {
		for _, a := range addrs {
			yield(a)
		}
	})
	if tb.TotalIPs() != 3 {
		t.Fatalf("total IPs = %d", tb.TotalIPs())
	}
	if tb.Count[0] != 2 || tb.Count[3] != 1 {
		t.Errorf("counts = %v", tb.Count)
	}
	if tb.DailyHitPercentiles[0][2] != 20 { // median of 10, 30
		t.Errorf("median bin1 = %v", tb.DailyHitPercentiles[0])
	}
	if tb.DailyHitPercentiles[3][2] != 1000 {
		t.Errorf("median bin4 = %v", tb.DailyHitPercentiles[3])
	}
	ipFrac, trafficFrac := tb.Cumulative()
	if ipFrac[3] != 1 || trafficFrac[3] != 1 {
		t.Error("cumulative must end at 1")
	}
	if ipFrac[0] <= 0 || ipFrac[0] >= 1 {
		t.Errorf("ipFrac[0] = %v", ipFrac[0])
	}
	ipShare, trafficShare := tb.EverydayShare()
	if math.Abs(ipShare-1.0/3) > 1e-9 {
		t.Errorf("everyday ip share = %v", ipShare)
	}
	if trafficShare <= 0.9 {
		t.Errorf("everyday traffic share = %v", trafficShare)
	}
}

func TestTopShare(t *testing.T) {
	hits := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 91}
	if got := TopShare(hits, 0.10); math.Abs(got-0.91) > 1e-9 {
		t.Errorf("TopShare = %v", got)
	}
	if TopShare(nil, 0.1) != 0 || TopShare(hits, 0) != 0 {
		t.Error("degenerate TopShare")
	}
	uniform := []float64{5, 5, 5, 5}
	if got := TopShare(uniform, 0.5); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("uniform TopShare = %v", got)
	}
}

func TestClassifyUARegions(t *testing.T) {
	points := []UAPoint{
		{Samples: 10, Unique: 8},      // bulk
		{Samples: 5000, Unique: 2},    // bot
		{Samples: 8000, Unique: 4000}, // gateway
		{Samples: 5000, Unique: 50},   // neither extreme: bulk
	}
	got := ClassifyUARegions(points, 1000, 5, 500)
	if got.Bulk != 2 || got.Bots != 1 || got.Gateways != 1 {
		t.Errorf("regions = %+v", got)
	}
}

func TestBuildDemographics(t *testing.T) {
	blkA := ipv4.MustParseAddr("10.0.0.0").Block()
	blkB := ipv4.MustParseAddr("10.0.1.0").Block()
	blocks := []BlockFeatures{
		{Block: blkA, STU: 0.05, Traffic: 10, Hosts: 2},
		{Block: blkB, STU: 0.95, Traffic: 100000, Hosts: 5000},
	}
	d := BuildDemographics(blocks)
	if d.Total() != 2 {
		t.Fatalf("total = %d", d.Total())
	}
	// The low block must land in STU bin 0; the high one in bin 9 with
	// maximal traffic and host bins.
	if d.Counts[Cell{0, d.TrafficBin(10), d.HostsBin(2)}] != 1 {
		t.Errorf("low cell missing: %v", d.Counts)
	}
	if d.Counts[Cell{9, 9, 9}] != 1 {
		t.Errorf("high cell missing: %v", d.Counts)
	}
	marg := d.STUMarginal()
	if marg[0] != 1 || marg[9] != 1 {
		t.Errorf("marginal = %v", marg)
	}
}

func TestBuildRIRDemographics(t *testing.T) {
	reg := registry.NewTable([]registry.Allocation{
		{Prefix: ipv4.MustParsePrefix("10.0.0.0/16"), Country: "US", RIR: registry.ARIN},
		{Prefix: ipv4.MustParsePrefix("20.0.0.0/16"), Country: "BR", RIR: registry.LACNIC},
	})
	blocks := []BlockFeatures{
		{Block: ipv4.MustParseAddr("10.0.0.0").Block(), STU: 0.1, Traffic: 100, Hosts: 10},
		{Block: ipv4.MustParseAddr("20.0.0.0").Block(), STU: 0.9, Traffic: 100, Hosts: 10},
		{Block: ipv4.MustParseAddr("20.0.1.0").Block(), STU: 0.8, Traffic: 50, Hosts: 5},
	}
	panels := BuildRIRDemographics(blocks, reg)
	var arin, lacnic *RIRDemographics
	for _, p := range panels {
		switch p.RIR {
		case registry.ARIN:
			arin = p
		case registry.LACNIC:
			lacnic = p
		}
	}
	if arin.Total != 1 || lacnic.Total != 2 {
		t.Fatalf("totals: arin %d lacnic %d", arin.Total, lacnic.Total)
	}
	if arin.HighSTUShare() != 0 {
		t.Errorf("ARIN high STU = %v", arin.HighSTUShare())
	}
	if lacnic.HighSTUShare() != 1 {
		t.Errorf("LACNIC high STU = %v", lacnic.HighSTUShare())
	}
	for _, c := range lacnic.Cells {
		if c.MeanHosts < 0 || c.MeanHosts > 1 {
			t.Errorf("MeanHosts = %v", c.MeanHosts)
		}
	}
}
