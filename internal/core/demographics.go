package core

import (
	"ipscope/internal/ipv4"
	"ipscope/internal/registry"
	"ipscope/internal/stats"
)

// BlockFeatures are the three per-/24 measures the paper combines in
// Section 7: spatio-temporal utilization (already in (0,1]), total
// traffic contribution, and a relative host count (unique sampled UAs).
type BlockFeatures struct {
	Block   ipv4.Block
	STU     float64
	Traffic float64
	Hosts   float64
}

// DemographicsBins is the paper's bin count per axis (10×10×10 = 1000).
const DemographicsBins = 10

// Cell addresses one bin of the 3-D feature matrix.
type Cell struct {
	STU, Traffic, Hosts int
}

// Demographics is the populated 3-D feature matrix of Figure 11.
type Demographics struct {
	Bins   int
	Counts map[Cell]int
	// MaxTraffic and MaxHosts are the normalization maxima used for
	// the log transforms (recorded for reproducibility).
	MaxTraffic, MaxHosts float64
}

// BuildDemographics normalizes features (traffic and hosts are
// log-transformed and divided by the maximum, per Section 7) and bins
// every block into the 3-D matrix.
func BuildDemographics(blocks []BlockFeatures) *Demographics {
	d := &Demographics{Bins: DemographicsBins, Counts: make(map[Cell]int)}
	for _, b := range blocks {
		if b.Traffic > d.MaxTraffic {
			d.MaxTraffic = b.Traffic
		}
		if b.Hosts > d.MaxHosts {
			d.MaxHosts = b.Hosts
		}
	}
	for _, b := range blocks {
		c := Cell{
			STU:     stats.BinIndex(b.STU, d.Bins),
			Traffic: stats.BinIndex(stats.NormalizeLog(b.Traffic, d.MaxTraffic), d.Bins),
			Hosts:   stats.BinIndex(stats.NormalizeLog(b.Hosts, d.MaxHosts), d.Bins),
		}
		d.Counts[c]++
	}
	return d
}

// TrafficBin returns the bin index a raw traffic value maps to under
// the matrix's normalization.
func (d *Demographics) TrafficBin(v float64) int {
	return stats.BinIndex(stats.NormalizeLog(v, d.MaxTraffic), d.Bins)
}

// HostsBin returns the bin index a raw host-count value maps to.
func (d *Demographics) HostsBin(v float64) int {
	return stats.BinIndex(stats.NormalizeLog(v, d.MaxHosts), d.Bins)
}

// Total returns the number of binned blocks.
func (d *Demographics) Total() int {
	n := 0
	for _, c := range d.Counts {
		n += c
	}
	return n
}

// STUMarginal returns the per-STU-bin totals (the "strong division
// along the STU axis" observation).
func (d *Demographics) STUMarginal() [DemographicsBins]int {
	var out [DemographicsBins]int
	for c, n := range d.Counts {
		out[c.STU] += n
	}
	return out
}

// RIRCell is one 2-D cell of Figure 12: STU × traffic with the mean
// relative host count as the colour channel.
type RIRCell struct {
	STU, Traffic int
	Blocks       int
	MeanHosts    float64 // mean normalized host count in the cell
}

// RIRDemographics is one registry's 2-D demographic panel.
type RIRDemographics struct {
	RIR   registry.RIR
	Cells map[[2]int]*RIRCell
	Total int
}

// BuildRIRDemographics splits blocks by registry and builds the per-RIR
// panels of Figure 12. Normalization maxima are global (shared across
// panels) so panels are comparable, as in the paper.
func BuildRIRDemographics(blocks []BlockFeatures, reg *registry.Table) []*RIRDemographics {
	var maxTraffic, maxHosts float64
	for _, b := range blocks {
		if b.Traffic > maxTraffic {
			maxTraffic = b.Traffic
		}
		if b.Hosts > maxHosts {
			maxHosts = b.Hosts
		}
	}
	panels := make([]*RIRDemographics, registry.NumRIRs)
	for i, r := range registry.AllRIRs {
		panels[i] = &RIRDemographics{RIR: r, Cells: make(map[[2]int]*RIRCell)}
	}
	for _, b := range blocks {
		r := reg.RIROf(b.Block)
		p := panels[int(r)]
		key := [2]int{
			stats.BinIndex(b.STU, DemographicsBins),
			stats.BinIndex(stats.NormalizeLog(b.Traffic, maxTraffic), DemographicsBins),
		}
		cell := p.Cells[key]
		if cell == nil {
			cell = &RIRCell{STU: key[0], Traffic: key[1]}
			p.Cells[key] = cell
		}
		h := stats.NormalizeLog(b.Hosts, maxHosts)
		cell.MeanHosts = (cell.MeanHosts*float64(cell.Blocks) + h) / float64(cell.Blocks+1)
		cell.Blocks++
		p.Total++
	}
	return panels
}

// HighSTUShare returns the fraction of a panel's blocks in the top-half
// STU bins — used to compare utilization pressure across registries
// (the paper: LACNIC/AFRINIC more highly utilized than ARIN).
func (p *RIRDemographics) HighSTUShare() float64 {
	if p.Total == 0 {
		return 0
	}
	n := 0
	for key, c := range p.Cells {
		if key[0] >= DemographicsBins/2 {
			n += c.Blocks
		}
	}
	return float64(n) / float64(p.Total)
}
