package core

import (
	"math"

	"ipscope/internal/ipv4"
)

// This file implements the paper's Section 8 security implication:
// "determining the spatial and temporal bounds beyond which an IP
// address's reputation should no longer be respected". An address's
// reputation is only meaningful while the same party plausibly holds
// the address; in a 24h-lease pool that is a day, in a static block
// effectively forever.

// StabilityStats summarizes how long addresses in a /24 block keep
// their activity state.
type StabilityStats struct {
	Block ipv4.Block
	// MeanRunDays is the average length (in days) of a contiguous
	// activity run of an address within the window.
	MeanRunDays float64
	// Persistence is the probability that an address active on one day
	// is active the next (the day-to-day retention rate).
	Persistence float64
	// ActiveAddrs is the filling degree used for the computation.
	ActiveAddrs int
}

// BlockStability measures address stability over daily snapshots.
func BlockStability(daily []*ipv4.Set, blk ipv4.Block) StabilityStats {
	bms := BlockDailyBitmaps(daily, blk)
	out := StabilityStats{Block: blk}
	if len(bms) < 2 {
		return out
	}
	var union ipv4.Bitmap256
	runs, runDays := 0, 0
	retained, activePairs := 0, 0
	for d := range bms {
		union.UnionWith(&bms[d])
		if d == 0 {
			continue
		}
		prev, cur := &bms[d-1], &bms[d]
		retained += prev.IntersectCount(cur)
		activePairs += prev.Count()
		// A run starts where cur is active and prev was not.
		starts := cur.AndNotCount(prev)
		runs += starts
		runDays += cur.Count()
	}
	// Runs that began on day 0.
	runs += bms[0].Count()
	runDays += bms[0].Count()
	out.ActiveAddrs = union.Count()
	if runs > 0 {
		out.MeanRunDays = float64(runDays) / float64(runs)
	}
	if activePairs > 0 {
		out.Persistence = float64(retained) / float64(activePairs)
	}
	return out
}

// ReputationHorizon recommends how long (in days) a reputation verdict
// for an address in this block should be honoured before it goes
// stale. Staleness here means the address's *behavioural identity*
// changed: either the pool reassigned it to a different subscriber, or
// its holder went offline — from pure activity data the two are
// indistinguishable, and both invalidate a behaviour-derived verdict.
// With day-to-day activity persistence p, the probability the verdict
// still describes the address after t days decays like p^t; the
// horizon is where that drops below confidence (default 0.5).
//
// Blocks with perfect persistence (gateways, bots, always-on servers)
// return Inf: their addresses keep one behavioural identity
// indefinitely. Empty blocks return 0. To separate reassignment from
// mere inactivity, combine this with block classification (FD > 250
// cycling pools reassign; sparse static blocks merely idle) and with
// change detection (DetectChange), which should force expiry on
// renumbering — the paper's Section 8 recommendation.
func ReputationHorizon(daily []*ipv4.Set, blk ipv4.Block, confidence float64) float64 {
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.5
	}
	st := BlockStability(daily, blk)
	switch {
	case st.ActiveAddrs == 0:
		return 0
	case st.Persistence >= 1:
		return math.Inf(1)
	case st.Persistence <= 0:
		return 1 // everything changes daily: one-day horizon
	}
	return math.Log(confidence) / math.Log(st.Persistence)
}
