package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeriveDeterministic(t *testing.T) {
	a := Derive(1, "topology")
	b := Derive(1, "topology")
	if a != b {
		t.Fatal("Derive not deterministic")
	}
	if Derive(1, "topology") == Derive(1, "behaviour") {
		t.Fatal("different labels should derive different seeds")
	}
	if Derive(1, "topology") == Derive(2, "topology") {
		t.Fatal("different seeds should derive different streams")
	}
}

func TestNewReproducible(t *testing.T) {
	r1 := New(7, "x")
	r2 := New(7, "x")
	for i := 0; i < 100; i++ {
		if r1.Uint64() != r2.Uint64() {
			t.Fatal("streams diverged")
		}
	}
}

func TestSplitmix64Avalanche(t *testing.T) {
	// Flipping one input bit should change roughly half the output bits.
	f := func(x uint64) bool {
		d := Splitmix64(x) ^ Splitmix64(x^1)
		n := 0
		for d != 0 {
			d &= d - 1
			n++
		}
		return n >= 10 && n <= 54
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBernoulliBounds(t *testing.T) {
	r := New(1, "bern")
	if Bernoulli(r, 0) {
		t.Error("p=0 must be false")
	}
	if !Bernoulli(r, 1) {
		t.Error("p=1 must be true")
	}
	n := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if Bernoulli(r, 0.3) {
			n++
		}
	}
	got := float64(n) / trials
	if math.Abs(got-0.3) > 0.02 {
		t.Errorf("Bernoulli(0.3) frequency = %.3f", got)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(2, "pois")
	for _, lambda := range []float64{0.5, 3, 12, 80} {
		sum := 0
		const trials = 5000
		for i := 0; i < trials; i++ {
			sum += Poisson(r, lambda)
		}
		mean := float64(sum) / trials
		if math.Abs(mean-lambda) > lambda*0.1+0.2 {
			t.Errorf("Poisson(%v) mean = %.2f", lambda, mean)
		}
	}
	if Poisson(r, 0) != 0 || Poisson(r, -1) != 0 {
		t.Error("nonpositive lambda must yield 0")
	}
}

func TestParetoBounds(t *testing.T) {
	r := New(3, "par")
	for i := 0; i < 10000; i++ {
		v := Pareto(r, 2, 1.2, 1e6)
		if v < 2 || v > 1e6 {
			t.Fatalf("Pareto out of bounds: %v", v)
		}
	}
}

func TestWeightedChoice(t *testing.T) {
	r := New(4, "wc")
	w := []float64{0, 1, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[WeightedChoice(r, w)]++
	}
	if counts[0] != 0 {
		t.Errorf("zero-weight choice selected %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if math.Abs(ratio-3) > 0.3 {
		t.Errorf("weight ratio = %.2f, want ~3", ratio)
	}
	if WeightedChoice(r, []float64{0, 0}) != 0 {
		t.Error("all-zero weights should return 0")
	}
}
