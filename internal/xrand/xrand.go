// Package xrand provides deterministic random-number utilities used to
// make every synthetic world reproducible from a single seed.
//
// Streams are derived with splitmix64 so that independent subsystems
// (topology, behaviour, scanning, ...) each get a statistically
// independent generator, and adding randomness consumption to one
// subsystem does not perturb the others.
package xrand

import (
	"math"
	"math/rand"
)

// Splitmix64 advances and hashes the state x, returning the next value of
// the splitmix64 sequence. It is the standard seeding function recommended
// for xoshiro-family generators.
func Splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Derive deterministically derives a child seed from a parent seed and a
// label, so each named subsystem obtains an independent stream.
func Derive(seed uint64, label string) uint64 {
	h := seed
	for i := 0; i < len(label); i++ {
		h = Splitmix64(h ^ uint64(label[i]))
	}
	return Splitmix64(h)
}

// New returns a deterministic *rand.Rand for the given seed and label.
func New(seed uint64, label string) *rand.Rand {
	return rand.New(rand.NewSource(int64(Derive(seed, label))))
}

// Bernoulli returns true with probability p.
func Bernoulli(r *rand.Rand, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Poisson draws from a Poisson distribution with mean lambda using
// Knuth's method for small lambda and a normal approximation above 30.
func Poisson(r *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		// Normal approximation with continuity correction.
		v := lambda + r.NormFloat64()*sqrt(lambda) + 0.5
		if v < 0 {
			return 0
		}
		return int(v)
	}
	l := exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Pareto draws from a bounded Pareto-ish heavy tail: xm * U^(-1/alpha),
// capped at maxV. Used for traffic volumes per address.
func Pareto(r *rand.Rand, xm, alpha, maxV float64) float64 {
	u := r.Float64()
	if u == 0 {
		u = 1e-12
	}
	v := xm * pow(u, -1/alpha)
	if v > maxV {
		return maxV
	}
	return v
}

// WeightedChoice returns an index in [0,len(weights)) with probability
// proportional to weights[i]. Zero or negative total weight returns 0.
func WeightedChoice(r *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return 0
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

func sqrt(x float64) float64   { return math.Sqrt(x) }
func exp(x float64) float64    { return math.Exp(x) }
func pow(x, y float64) float64 { return math.Pow(x, y) }
