package ipv4

import "math/bits"

// Bitmap256 is a 256-bit bitmap indexed by the host octet of a /24 block.
// The zero value is empty and ready to use.
type Bitmap256 [4]uint64

// Set sets bit h.
func (b *Bitmap256) Set(h byte) { b[h>>6] |= 1 << (h & 63) }

// Clear clears bit h.
func (b *Bitmap256) Clear(h byte) { b[h>>6] &^= 1 << (h & 63) }

// Test reports whether bit h is set.
func (b *Bitmap256) Test(h byte) bool { return b[h>>6]&(1<<(h&63)) != 0 }

// Count returns the number of set bits.
func (b *Bitmap256) Count() int {
	return bits.OnesCount64(b[0]) + bits.OnesCount64(b[1]) +
		bits.OnesCount64(b[2]) + bits.OnesCount64(b[3])
}

// IsEmpty reports whether no bit is set.
func (b *Bitmap256) IsEmpty() bool { return b[0]|b[1]|b[2]|b[3] == 0 }

// UnionWith ORs o into b.
func (b *Bitmap256) UnionWith(o *Bitmap256) {
	b[0] |= o[0]
	b[1] |= o[1]
	b[2] |= o[2]
	b[3] |= o[3]
}

// IntersectWith ANDs o into b.
func (b *Bitmap256) IntersectWith(o *Bitmap256) {
	b[0] &= o[0]
	b[1] &= o[1]
	b[2] &= o[2]
	b[3] &= o[3]
}

// AndNotWith clears bits of b that are set in o.
func (b *Bitmap256) AndNotWith(o *Bitmap256) {
	b[0] &^= o[0]
	b[1] &^= o[1]
	b[2] &^= o[2]
	b[3] &^= o[3]
}

// Union returns b | o without modifying either.
func (b Bitmap256) Union(o Bitmap256) Bitmap256 {
	b.UnionWith(&o)
	return b
}

// Intersect returns b & o without modifying either.
func (b Bitmap256) Intersect(o Bitmap256) Bitmap256 {
	b.IntersectWith(&o)
	return b
}

// AndNot returns b &^ o without modifying either.
func (b Bitmap256) AndNot(o Bitmap256) Bitmap256 {
	b.AndNotWith(&o)
	return b
}

// IntersectCount returns the number of bits set in both b and o.
func (b *Bitmap256) IntersectCount(o *Bitmap256) int {
	return bits.OnesCount64(b[0]&o[0]) + bits.OnesCount64(b[1]&o[1]) +
		bits.OnesCount64(b[2]&o[2]) + bits.OnesCount64(b[3]&o[3])
}

// AndNotCount returns the number of bits set in b but not in o.
func (b *Bitmap256) AndNotCount(o *Bitmap256) int {
	return bits.OnesCount64(b[0]&^o[0]) + bits.OnesCount64(b[1]&^o[1]) +
		bits.OnesCount64(b[2]&^o[2]) + bits.OnesCount64(b[3]&^o[3])
}

// ForEach calls fn for every set bit in ascending order.
func (b *Bitmap256) ForEach(fn func(h byte)) {
	for w := 0; w < 4; w++ {
		word := b[w]
		for word != 0 {
			t := bits.TrailingZeros64(word)
			fn(byte(w<<6 + t))
			word &= word - 1
		}
	}
}

// CountRange returns the number of set bits h with lo <= h <= hi.
func (b *Bitmap256) CountRange(lo, hi byte) int {
	if lo > hi {
		return 0
	}
	n := 0
	for w := int(lo) >> 6; w <= int(hi)>>6; w++ {
		word := b[w]
		base := w << 6
		if base < int(lo) {
			word &= ^uint64(0) << (uint(lo) & 63)
		}
		if base+63 > int(hi) {
			word &= ^uint64(0) >> (63 - uint(hi)&63)
		}
		n += bits.OnesCount64(word)
	}
	return n
}
