package ipv4

import (
	"math/rand"
	"testing"
)

func randomSets(seed int64, nsets, perSet int) []*Set {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*Set, nsets)
	for i := range out {
		s := NewSet()
		for j := 0; j < perSet; j++ {
			s.Add(Addr(0x0a000000 + rng.Uint32()%(1<<14)))
		}
		out[i] = s
	}
	return out
}

func TestUnionAllMatchesSequential(t *testing.T) {
	sets := randomSets(1, 17, 500)
	want := NewSet()
	for _, s := range sets {
		want.UnionWith(s)
	}
	for _, w := range []int{1, 2, 5, 17, 100} {
		if got := UnionAll(sets, w); !got.Equal(want) {
			t.Fatalf("UnionAll(workers=%d) differs", w)
		}
	}
	// nil entries are skipped.
	sets[3] = nil
	mixed := UnionAll(sets, 4)
	ref := NewSet()
	for _, s := range sets {
		if s != nil {
			ref.UnionWith(s)
		}
	}
	if !mixed.Equal(ref) {
		t.Fatal("UnionAll with nil entry differs")
	}
	if UnionAll(nil, 4).Len() != 0 {
		t.Fatal("UnionAll(nil) not empty")
	}
}

func TestDiffCounts(t *testing.T) {
	sets := randomSets(2, 10, 300)
	as, bs := sets[:5], sets[5:]
	got := DiffCounts(as, bs, 3)
	for i := range as {
		if want := as[i].DiffCount(bs[i]); got[i] != want {
			t.Fatalf("pair %d: %d != %d", i, got[i], want)
		}
	}
}

func TestDiffShardsMatchesDiff(t *testing.T) {
	sets := randomSets(3, 2, 20000)
	a, b := sets[0], sets[1]
	want := a.Diff(b)
	for _, w := range []int{1, 2, 8, 1 << 16} {
		got := a.DiffShards(b, w)
		if !got.Equal(want) {
			t.Fatalf("DiffShards(workers=%d) differs: %d vs %d", w, got.Len(), want.Len())
		}
	}
}
