// Package ipv4 provides compact IPv4 address, prefix and /24-block
// arithmetic, plus bit-parallel address sets used throughout ipscope.
//
// The package is deliberately minimal and allocation-free on the hot
// paths: an Addr is a uint32, a Block identifies a /24 by its upper 24
// bits, and per-block activity is a 256-bit bitmap (Bitmap256).
package ipv4

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order (a.b.c.d == a<<24|b<<16|c<<8|d).
type Addr uint32

// ParseAddr parses a dotted-quad IPv4 address.
func ParseAddr(s string) (Addr, error) {
	var a uint32
	rest := s
	for i := 0; i < 4; i++ {
		var part string
		if i < 3 {
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				return 0, fmt.Errorf("ipv4: invalid address %q", s)
			}
			part, rest = rest[:dot], rest[dot+1:]
		} else {
			part = rest
		}
		v, err := strconv.ParseUint(part, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("ipv4: invalid address %q: octet %q", s, part)
		}
		a = a<<8 | uint32(v)
	}
	return Addr(a), nil
}

// MustParseAddr is ParseAddr that panics on error; for tests and literals.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String formats the address as a dotted quad.
func (a Addr) String() string {
	var b [15]byte
	return string(a.appendTo(b[:0]))
}

func (a Addr) appendTo(dst []byte) []byte {
	dst = strconv.AppendUint(dst, uint64(a>>24&0xff), 10)
	dst = append(dst, '.')
	dst = strconv.AppendUint(dst, uint64(a>>16&0xff), 10)
	dst = append(dst, '.')
	dst = strconv.AppendUint(dst, uint64(a>>8&0xff), 10)
	dst = append(dst, '.')
	dst = strconv.AppendUint(dst, uint64(a&0xff), 10)
	return dst
}

// Octet returns octet i (0 = most significant).
func (a Addr) Octet(i int) byte { return byte(a >> (24 - 8*uint(i))) }

// Block returns the /24 block containing a.
func (a Addr) Block() Block { return Block(a >> 8) }

// Host returns the low octet of a (its index within its /24).
func (a Addr) Host() byte { return byte(a) }

// Block identifies a /24 CIDR block by its upper 24 bits.
type Block uint32

// BlockOf returns the /24 block containing a.
func BlockOf(a Addr) Block { return a.Block() }

// Addr returns the address at host index h within the block.
func (b Block) Addr(h byte) Addr { return Addr(uint32(b)<<8 | uint32(h)) }

// First returns the network address of the block.
func (b Block) First() Addr { return b.Addr(0) }

// Prefix returns the block as a /24 prefix.
func (b Block) Prefix() Prefix { return Prefix{addr: b.First(), bits: 24} }

// String formats the block in CIDR notation, e.g. "192.0.2.0/24".
func (b Block) String() string { return b.Prefix().String() }

// Prefix is an IPv4 CIDR prefix. The zero Prefix is 0.0.0.0/0.
type Prefix struct {
	addr Addr
	bits uint8
}

// NewPrefix returns the prefix addr/bits with host bits zeroed.
func NewPrefix(addr Addr, bits int) (Prefix, error) {
	if bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("ipv4: invalid prefix length %d", bits)
	}
	return Prefix{addr: addr & maskFor(bits), bits: uint8(bits)}, nil
}

// MustNewPrefix is NewPrefix that panics on error.
func MustNewPrefix(addr Addr, bits int) Prefix {
	p, err := NewPrefix(addr, bits)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePrefix parses CIDR notation, e.g. "10.0.0.0/8".
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("ipv4: missing '/' in prefix %q", s)
	}
	a, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil {
		return Prefix{}, fmt.Errorf("ipv4: invalid prefix length in %q", s)
	}
	return NewPrefix(a, bits)
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

func maskFor(bits int) Addr {
	if bits == 0 {
		return 0
	}
	return Addr(^uint32(0) << (32 - uint(bits)))
}

// Addr returns the network address of the prefix.
func (p Prefix) Addr() Addr { return p.addr }

// Bits returns the prefix length.
func (p Prefix) Bits() int { return int(p.bits) }

// Contains reports whether a is within p.
func (p Prefix) Contains(a Addr) bool { return a&maskFor(int(p.bits)) == p.addr }

// ContainsPrefix reports whether q is fully contained in p.
func (p Prefix) ContainsPrefix(q Prefix) bool {
	return q.bits >= p.bits && p.Contains(q.addr)
}

// Overlaps reports whether p and q share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.ContainsPrefix(q) || q.ContainsPrefix(p)
}

// First returns the lowest address in p.
func (p Prefix) First() Addr { return p.addr }

// Last returns the highest address in p.
func (p Prefix) Last() Addr { return p.addr | ^maskFor(int(p.bits)) }

// NumAddrs returns the number of addresses covered by p.
func (p Prefix) NumAddrs() uint64 { return 1 << (32 - uint(p.bits)) }

// NumBlocks returns the number of /24 blocks covered by p.
// Prefixes longer than /24 report 1 (they live inside a single block).
func (p Prefix) NumBlocks() int {
	if p.bits >= 24 {
		return 1
	}
	return 1 << (24 - uint(p.bits))
}

// FirstBlock returns the first /24 block covered by p.
func (p Prefix) FirstBlock() Block { return p.addr.Block() }

// Blocks calls fn for every /24 block covered by p, in order.
func (p Prefix) Blocks(fn func(Block)) {
	first := uint32(p.addr.Block())
	for i := 0; i < p.NumBlocks(); i++ {
		fn(Block(first + uint32(i)))
	}
}

// String formats p in CIDR notation.
func (p Prefix) String() string {
	var b [18]byte
	buf := p.addr.appendTo(b[:0])
	buf = append(buf, '/')
	buf = strconv.AppendUint(buf, uint64(p.bits), 10)
	return string(buf)
}

// CoveringMask returns the length of the longest common prefix of a and b,
// i.e. the largest mask m such that a/m == b/m.
func CoveringMask(a, b Addr) int {
	x := uint32(a ^ b)
	if x == 0 {
		return 32
	}
	n := 0
	for x&0x80000000 == 0 {
		x <<= 1
		n++
	}
	return n
}
