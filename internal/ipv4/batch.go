package ipv4

import "ipscope/internal/par"

// parallelThreshold is the set-count below which batched operations run
// sequentially: goroutine fan-out costs more than it saves on tiny
// batches.
const parallelThreshold = 4

// UnionAll returns the union of all non-nil sets, computed across
// workers (<= 0 means GOMAXPROCS). Each worker unions a contiguous
// chunk of the slice and chunk results merge in chunk order, so the
// result is identical to a sequential left fold.
func UnionAll(sets []*Set, workers int) *Set {
	w := par.Workers(workers)
	if len(sets) < parallelThreshold || w == 1 {
		u := NewSet()
		for _, s := range sets {
			if s != nil {
				u.UnionWith(s)
			}
		}
		return u
	}
	partials := make([]*Set, len(par.Split(len(sets), w)))
	par.ForEachShard(len(sets), w, func(shard, lo, hi int) {
		u := NewSet()
		for _, s := range sets[lo:hi] {
			if s != nil {
				u.UnionWith(s)
			}
		}
		partials[shard] = u
	})
	out := partials[0]
	for _, p := range partials[1:] {
		out.UnionWith(p)
	}
	return out
}

// DiffCounts computes |as[i] \ bs[i]| for every pair across workers.
// The slices must have equal length.
func DiffCounts(as, bs []*Set, workers int) []int {
	return par.Map(len(as), par.Workers(workers), func(i int) int {
		return as[i].DiffCount(bs[i])
	})
}

// DiffShards computes s \ o over s's blocks split into contiguous
// sorted-block shards, merging shard results in order. Content is
// identical to Diff for any worker count.
func (s *Set) DiffShards(o *Set, workers int) *Set {
	w := par.Workers(workers)
	if w == 1 || len(s.m) < 64 {
		return s.Diff(o)
	}
	blocks := s.Blocks()
	partials := make([]*Set, len(par.Split(len(blocks), w)))
	par.ForEachShard(len(blocks), w, func(shard, lo, hi int) {
		out := NewSet()
		for _, b := range blocks[lo:hi] {
			d := *s.m[b]
			if obm := o.m[b]; obm != nil {
				d.AndNotWith(obm)
			}
			if !d.IsEmpty() {
				cp := d
				out.m[b] = &cp
				out.n += cp.Count()
			}
		}
		partials[shard] = out
	})
	out := partials[0]
	for _, p := range partials[1:] {
		for b, bm := range p.m {
			out.m[b] = bm
		}
		out.n += p.n
	}
	return out
}
