package ipv4

import (
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xffffffff, true},
		{"192.0.2.1", 0xc0000201, true},
		{"10.1.2.3", 0x0a010203, true},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"256.0.0.1", 0, false},
		{"a.b.c.d", 0, false},
		{"", 0, false},
		{"1..2.3", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseAddr(%q) err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", c.in, uint32(got), uint32(c.want))
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(u uint32) bool {
		a := Addr(u)
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrOctets(t *testing.T) {
	a := MustParseAddr("1.2.3.4")
	for i, want := range []byte{1, 2, 3, 4} {
		if got := a.Octet(i); got != want {
			t.Errorf("Octet(%d) = %d, want %d", i, got, want)
		}
	}
	if a.Host() != 4 {
		t.Errorf("Host() = %d, want 4", a.Host())
	}
}

func TestBlock(t *testing.T) {
	a := MustParseAddr("198.51.100.77")
	b := a.Block()
	if got := b.String(); got != "198.51.100.0/24" {
		t.Errorf("Block.String() = %q", got)
	}
	if b.Addr(77) != a {
		t.Errorf("Block.Addr(77) != original address")
	}
	if b.First() != MustParseAddr("198.51.100.0") {
		t.Errorf("Block.First() wrong")
	}
}

func TestPrefixParseAndContains(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/8")
	if !p.Contains(MustParseAddr("10.255.1.2")) {
		t.Error("10/8 should contain 10.255.1.2")
	}
	if p.Contains(MustParseAddr("11.0.0.0")) {
		t.Error("10/8 should not contain 11.0.0.0")
	}
	if p.NumAddrs() != 1<<24 {
		t.Errorf("NumAddrs = %d", p.NumAddrs())
	}
	if p.Last() != MustParseAddr("10.255.255.255") {
		t.Errorf("Last = %v", p.Last())
	}
	if _, err := ParsePrefix("10.0.0.0/33"); err == nil {
		t.Error("expected error for /33")
	}
	if _, err := ParsePrefix("10.0.0.0"); err == nil {
		t.Error("expected error for missing slash")
	}
	// Host bits must be zeroed.
	q := MustParsePrefix("10.0.0.255/24")
	if q.Addr() != MustParseAddr("10.0.0.0") {
		t.Errorf("host bits not zeroed: %v", q.Addr())
	}
}

func TestPrefixZeroValue(t *testing.T) {
	var p Prefix
	if p.String() != "0.0.0.0/0" {
		t.Errorf("zero prefix = %q", p.String())
	}
	if !p.Contains(MustParseAddr("203.0.113.9")) {
		t.Error("default route should contain everything")
	}
	if p.NumAddrs() != 1<<32 {
		t.Errorf("NumAddrs = %d", p.NumAddrs())
	}
}

func TestPrefixContainsPrefixOverlaps(t *testing.T) {
	p8 := MustParsePrefix("10.0.0.0/8")
	p16 := MustParsePrefix("10.1.0.0/16")
	other := MustParsePrefix("192.168.0.0/16")
	if !p8.ContainsPrefix(p16) {
		t.Error("10/8 should contain 10.1/16")
	}
	if p16.ContainsPrefix(p8) {
		t.Error("10.1/16 should not contain 10/8")
	}
	if !p8.Overlaps(p16) || !p16.Overlaps(p8) {
		t.Error("overlap should be symmetric")
	}
	if p8.Overlaps(other) {
		t.Error("10/8 should not overlap 192.168/16")
	}
}

func TestPrefixBlocks(t *testing.T) {
	p := MustParsePrefix("192.0.2.0/23")
	if p.NumBlocks() != 2 {
		t.Fatalf("NumBlocks = %d, want 2", p.NumBlocks())
	}
	var got []Block
	p.Blocks(func(b Block) { got = append(got, b) })
	if len(got) != 2 || got[0].String() != "192.0.2.0/24" || got[1].String() != "192.0.3.0/24" {
		t.Errorf("Blocks = %v", got)
	}
	p32 := MustParsePrefix("192.0.2.7/32")
	if p32.NumBlocks() != 1 {
		t.Errorf("/32 NumBlocks = %d", p32.NumBlocks())
	}
}

func TestCoveringMask(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"10.0.0.1", "10.0.0.1", 32},
		{"10.0.0.0", "10.0.0.1", 31},
		{"10.0.0.0", "10.0.0.255", 24},
		{"10.0.0.0", "10.0.1.0", 23},
		{"0.0.0.0", "128.0.0.0", 0},
		{"10.0.0.0", "10.128.0.0", 8},
	}
	for _, c := range cases {
		got := CoveringMask(MustParseAddr(c.a), MustParseAddr(c.b))
		if got != c.want {
			t.Errorf("CoveringMask(%s,%s) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCoveringMaskProperty(t *testing.T) {
	// Property: both addresses lie within the prefix of the returned mask,
	// and for mask < 32 they differ at bit (31-mask).
	f := func(x, y uint32) bool {
		a, b := Addr(x), Addr(y)
		m := CoveringMask(a, b)
		p := MustNewPrefix(a, m)
		if !p.Contains(a) || !p.Contains(b) {
			return false
		}
		if m < 32 {
			bit := uint32(1) << (31 - uint(m))
			return uint32(a^b)&bit != 0
		}
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
