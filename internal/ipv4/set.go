package ipv4

import "sort"

// Set is a sparse set of IPv4 addresses stored as one Bitmap256 per
// populated /24 block. It is not safe for concurrent mutation.
type Set struct {
	m map[Block]*Bitmap256
	n int // cached cardinality
}

// NewSet returns an empty set.
func NewSet() *Set { return &Set{m: make(map[Block]*Bitmap256)} }

// Add inserts a into the set.
func (s *Set) Add(a Addr) {
	blk := a.Block()
	bm := s.m[blk]
	if bm == nil {
		bm = new(Bitmap256)
		s.m[blk] = bm
	}
	if !bm.Test(a.Host()) {
		bm.Set(a.Host())
		s.n++
	}
}

// AddBlockBitmap ORs an entire /24 bitmap into the set.
func (s *Set) AddBlockBitmap(blk Block, bm *Bitmap256) {
	if bm.IsEmpty() {
		return
	}
	dst := s.m[blk]
	if dst == nil {
		cp := *bm
		s.m[blk] = &cp
		s.n += bm.Count()
		return
	}
	s.n -= dst.Count()
	dst.UnionWith(bm)
	s.n += dst.Count()
}

// Remove deletes a from the set.
func (s *Set) Remove(a Addr) {
	blk := a.Block()
	bm := s.m[blk]
	if bm == nil || !bm.Test(a.Host()) {
		return
	}
	bm.Clear(a.Host())
	s.n--
	if bm.IsEmpty() {
		delete(s.m, blk)
	}
}

// Contains reports whether a is in the set.
func (s *Set) Contains(a Addr) bool {
	bm := s.m[a.Block()]
	return bm != nil && bm.Test(a.Host())
}

// Len returns the number of addresses in the set.
func (s *Set) Len() int { return s.n }

// NumBlocks returns the number of /24 blocks with at least one member.
func (s *Set) NumBlocks() int { return len(s.m) }

// BlockBitmap returns the bitmap for blk, or nil if the block is empty.
// The returned bitmap is shared with the set; callers must not modify it.
func (s *Set) BlockBitmap(blk Block) *Bitmap256 { return s.m[blk] }

// BlockCount returns the number of set addresses within blk.
func (s *Set) BlockCount(blk Block) int {
	if bm := s.m[blk]; bm != nil {
		return bm.Count()
	}
	return 0
}

// Blocks returns the populated blocks in ascending order.
func (s *Set) Blocks() []Block {
	out := make([]Block, 0, len(s.m))
	for b := range s.m {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ForEachBlock calls fn for every populated block in unspecified order.
func (s *Set) ForEachBlock(fn func(Block, *Bitmap256)) {
	for b, bm := range s.m {
		fn(b, bm)
	}
}

// ForEach calls fn for every address, grouped by block, hosts ascending
// within each block. Block order is ascending.
func (s *Set) ForEach(fn func(Addr)) {
	for _, blk := range s.Blocks() {
		bm := s.m[blk]
		bm.ForEach(func(h byte) { fn(blk.Addr(h)) })
	}
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	out := &Set{m: make(map[Block]*Bitmap256, len(s.m)), n: s.n}
	for b, bm := range s.m {
		cp := *bm
		out.m[b] = &cp
	}
	return out
}

// FilterBlocks returns a new set holding only the members whose /24
// block satisfies keep — the block-partitioning primitive behind
// cluster sharding (a partition of the block space yields disjoint
// filtered sets whose cardinalities sum to the original's).
func (s *Set) FilterBlocks(keep func(Block) bool) *Set {
	out := &Set{m: make(map[Block]*Bitmap256)}
	for b, bm := range s.m {
		if keep(b) {
			cp := *bm
			out.m[b] = &cp
			out.n += bm.Count()
		}
	}
	return out
}

// UnionWith adds every member of o to s.
func (s *Set) UnionWith(o *Set) {
	for b, bm := range o.m {
		s.AddBlockBitmap(b, bm)
	}
}

// Union returns a new set containing members of either set.
func (s *Set) Union(o *Set) *Set {
	out := s.Clone()
	out.UnionWith(o)
	return out
}

// IntersectCount returns |s ∩ o| without materializing the intersection.
func (s *Set) IntersectCount(o *Set) int {
	small, big := s, o
	if len(big.m) < len(small.m) {
		small, big = big, small
	}
	n := 0
	for b, bm := range small.m {
		if obm := big.m[b]; obm != nil {
			n += bm.IntersectCount(obm)
		}
	}
	return n
}

// DiffCount returns |s \ o|.
func (s *Set) DiffCount(o *Set) int {
	n := 0
	for b, bm := range s.m {
		if obm := o.m[b]; obm != nil {
			n += bm.AndNotCount(obm)
		} else {
			n += bm.Count()
		}
	}
	return n
}

// Diff returns a new set with members of s not in o.
func (s *Set) Diff(o *Set) *Set {
	out := NewSet()
	for b, bm := range s.m {
		d := *bm
		if obm := o.m[b]; obm != nil {
			d.AndNotWith(obm)
		}
		if !d.IsEmpty() {
			cp := d
			out.m[b] = &cp
			out.n += cp.Count()
		}
	}
	return out
}

// Equal reports whether the two sets have identical membership.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n || len(s.m) != len(o.m) {
		return false
	}
	for b, bm := range s.m {
		obm := o.m[b]
		if obm == nil || *obm != *bm {
			return false
		}
	}
	return true
}
