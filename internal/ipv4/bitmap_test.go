package ipv4

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitmapSetClearTest(t *testing.T) {
	var b Bitmap256
	if !b.IsEmpty() || b.Count() != 0 {
		t.Fatal("zero bitmap should be empty")
	}
	for _, h := range []byte{0, 1, 63, 64, 127, 128, 200, 255} {
		b.Set(h)
		if !b.Test(h) {
			t.Errorf("bit %d not set", h)
		}
	}
	if b.Count() != 8 {
		t.Errorf("Count = %d, want 8", b.Count())
	}
	b.Clear(63)
	if b.Test(63) || b.Count() != 7 {
		t.Error("Clear(63) failed")
	}
	// Idempotency.
	b.Set(0)
	if b.Count() != 7 {
		t.Error("double Set changed count")
	}
}

func TestBitmapForEachOrdered(t *testing.T) {
	var b Bitmap256
	want := []byte{3, 64, 65, 130, 255}
	for _, h := range want {
		b.Set(h)
	}
	var got []byte
	b.ForEach(func(h byte) { got = append(got, h) })
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestBitmapSetOps(t *testing.T) {
	var a, b Bitmap256
	for h := 0; h < 256; h += 2 {
		a.Set(byte(h))
	}
	for h := 0; h < 256; h += 3 {
		b.Set(byte(h))
	}
	u := a.Union(b)
	i := a.Intersect(b)
	d := a.AndNot(b)
	// |A ∪ B| = |A| + |B| - |A ∩ B|
	if u.Count() != a.Count()+b.Count()-i.Count() {
		t.Error("inclusion-exclusion violated")
	}
	if d.Count() != a.Count()-i.Count() {
		t.Error("difference count wrong")
	}
	if got := a.IntersectCount(&b); got != i.Count() {
		t.Errorf("IntersectCount = %d, want %d", got, i.Count())
	}
	if got := a.AndNotCount(&b); got != d.Count() {
		t.Errorf("AndNotCount = %d, want %d", got, d.Count())
	}
}

func TestBitmapSetOpsProperty(t *testing.T) {
	f := func(aw, bw [4]uint64) bool {
		a, b := Bitmap256(aw), Bitmap256(bw)
		u, i, d := a.Union(b), a.Intersect(b), a.AndNot(b)
		if u.Count() != a.Count()+b.Count()-i.Count() {
			return false
		}
		if d.Count()+i.Count() != a.Count() {
			return false
		}
		// De Morgan-ish sanity: (a &^ b) ∩ b == ∅
		if x := d.Intersect(b); !x.IsEmpty() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitmapCountRange(t *testing.T) {
	var b Bitmap256
	for h := 0; h < 256; h++ {
		b.Set(byte(h))
	}
	cases := []struct {
		lo, hi byte
		want   int
	}{
		{0, 255, 256},
		{0, 0, 1},
		{255, 255, 1},
		{10, 9, 0},
		{60, 70, 11},
		{0, 63, 64},
		{64, 127, 64},
		{100, 200, 101},
	}
	for _, c := range cases {
		if got := b.CountRange(c.lo, c.hi); got != c.want {
			t.Errorf("CountRange(%d,%d) = %d, want %d", c.lo, c.hi, got, c.want)
		}
	}
}

func TestBitmapCountRangeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		var b Bitmap256
		members := make(map[byte]bool)
		for i := 0; i < 40; i++ {
			h := byte(rng.Intn(256))
			b.Set(h)
			members[h] = true
		}
		lo := byte(rng.Intn(256))
		hi := byte(rng.Intn(256))
		if lo > hi {
			lo, hi = hi, lo
		}
		want := 0
		for h := int(lo); h <= int(hi); h++ {
			if members[byte(h)] {
				want++
			}
		}
		if got := b.CountRange(lo, hi); got != want {
			t.Fatalf("trial %d: CountRange(%d,%d) = %d, want %d", trial, lo, hi, got, want)
		}
	}
}
