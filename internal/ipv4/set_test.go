package ipv4

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := NewSet()
	a := MustParseAddr("192.0.2.1")
	b := MustParseAddr("192.0.2.2")
	c := MustParseAddr("198.51.100.1")

	s.Add(a)
	s.Add(a) // duplicate
	s.Add(b)
	s.Add(c)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if s.NumBlocks() != 2 {
		t.Fatalf("NumBlocks = %d, want 2", s.NumBlocks())
	}
	if !s.Contains(a) || !s.Contains(b) || !s.Contains(c) {
		t.Fatal("missing members")
	}
	s.Remove(b)
	if s.Contains(b) || s.Len() != 2 {
		t.Fatal("Remove failed")
	}
	s.Remove(b) // removing absent member is a no-op
	if s.Len() != 2 {
		t.Fatal("double Remove changed Len")
	}
	s.Remove(c)
	if s.NumBlocks() != 1 {
		t.Fatal("empty block not pruned")
	}
}

func TestSetBlocksSorted(t *testing.T) {
	s := NewSet()
	for _, str := range []string{"203.0.113.1", "10.0.0.1", "192.0.2.1"} {
		s.Add(MustParseAddr(str))
	}
	blocks := s.Blocks()
	for i := 1; i < len(blocks); i++ {
		if blocks[i-1] >= blocks[i] {
			t.Fatalf("blocks not sorted: %v", blocks)
		}
	}
}

func TestSetForEachOrder(t *testing.T) {
	s := NewSet()
	addrs := []string{"10.0.0.5", "10.0.0.1", "10.0.1.7", "9.0.0.200"}
	for _, a := range addrs {
		s.Add(MustParseAddr(a))
	}
	var got []Addr
	s.ForEach(func(a Addr) { got = append(got, a) })
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("ForEach out of order: %v", got)
		}
	}
	if len(got) != 4 {
		t.Fatalf("ForEach visited %d addrs", len(got))
	}
}

func randSet(rng *rand.Rand, n int) *Set {
	s := NewSet()
	for i := 0; i < n; i++ {
		// Confine to a few blocks to force collisions.
		blk := Block(0x0a0000 + uint32(rng.Intn(8)))
		s.Add(blk.Addr(byte(rng.Intn(256))))
	}
	return s
}

func TestSetAlgebraRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		a := randSet(rng, 300)
		b := randSet(rng, 300)
		inter := a.IntersectCount(b)
		if got := b.IntersectCount(a); got != inter {
			t.Fatalf("IntersectCount not symmetric: %d vs %d", inter, got)
		}
		u := a.Union(b)
		if u.Len() != a.Len()+b.Len()-inter {
			t.Fatalf("union inclusion-exclusion: %d != %d+%d-%d", u.Len(), a.Len(), b.Len(), inter)
		}
		d := a.Diff(b)
		if d.Len() != a.DiffCount(b) {
			t.Fatalf("Diff/DiffCount disagree")
		}
		if d.Len()+inter != a.Len() {
			t.Fatalf("diff partition: %d+%d != %d", d.Len(), inter, a.Len())
		}
		// Diff must not share members with b.
		if d.IntersectCount(b) != 0 {
			t.Fatal("diff intersects subtrahend")
		}
		// Union must contain both operands.
		bad := false
		a.ForEach(func(x Addr) {
			if !u.Contains(x) {
				bad = true
			}
		})
		if bad {
			t.Fatal("union missing member of a")
		}
	}
}

func TestSetCloneIndependence(t *testing.T) {
	s := NewSet()
	s.Add(MustParseAddr("10.0.0.1"))
	c := s.Clone()
	c.Add(MustParseAddr("10.0.0.2"))
	if s.Len() != 1 || c.Len() != 2 {
		t.Fatal("clone not independent")
	}
	if !s.Equal(s.Clone()) {
		t.Fatal("clone should equal original")
	}
	if s.Equal(c) {
		t.Fatal("different sets reported equal")
	}
}

func TestSetAddBlockBitmap(t *testing.T) {
	s := NewSet()
	var bm Bitmap256
	bm.Set(1)
	bm.Set(2)
	blk := MustParseAddr("10.0.0.0").Block()
	s.AddBlockBitmap(blk, &bm)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	// Overlapping add keeps count correct.
	var bm2 Bitmap256
	bm2.Set(2)
	bm2.Set(3)
	s.AddBlockBitmap(blk, &bm2)
	if s.Len() != 3 {
		t.Fatalf("Len after overlap = %d", s.Len())
	}
	// Empty bitmap is a no-op and does not create a block.
	var empty Bitmap256
	s.AddBlockBitmap(Block(99), &empty)
	if s.NumBlocks() != 1 {
		t.Fatal("empty AddBlockBitmap created block")
	}
	// Mutating the source bitmap must not affect the set.
	bm.Set(200)
	if s.Contains(blk.Addr(200)) {
		t.Fatal("set aliases caller bitmap")
	}
}

func TestSetEqualProperty(t *testing.T) {
	f := func(hosts []uint8) bool {
		s := NewSet()
		blk := Block(0x0c0000)
		for _, h := range hosts {
			s.Add(blk.Addr(h))
		}
		return s.Equal(s.Clone())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
