package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ipscope/internal/core"
	"ipscope/internal/textplot"
)

// Fig9 is Figure 9: traffic vs temporal activity (a, b) and the
// traffic-consolidation trend (c).
type Fig9 struct {
	Bins *core.TrafficBins
	// EverydayIPShare/EverydayTrafficShare: addresses active every day
	// and their traffic share (paper: <10% of IPs, >40% of traffic).
	EverydayIPShare, EverydayTrafficShare float64
	// WeeklyTopShare is the top-10% traffic share per week (Figure 9c).
	WeeklyTopShare []float64
	// TrendDelta is the change in top-10% share from the first to the
	// last quarter of the year (paper: ~+3 percentage points).
	TrendDelta float64
}

// Figure9 computes the traffic/activity analyses.
func Figure9(ctx *Context) *Fig9 {
	f := &Fig9{
		Bins:           core.BinByDaysActive(len(ctx.Obs.Daily), ctx.TrafficIter()),
		WeeklyTopShare: ctx.Obs.WeeklyTopShare,
	}
	f.EverydayIPShare, f.EverydayTrafficShare = f.Bins.EverydayShare()
	if n := len(f.WeeklyTopShare); n >= 8 {
		var early, late float64
		q := n / 4
		for _, v := range f.WeeklyTopShare[:q] {
			early += v
		}
		for _, v := range f.WeeklyTopShare[n-q:] {
			late += v
		}
		f.TrendDelta = (late - early) / float64(q)
	}
	return f
}

// Render returns Figure 9 as text.
func (f *Fig9) Render() string {
	var b strings.Builder
	b.WriteString("Figure 9a: median daily hits by days-active bin (log10 scale)\n")
	meds := make([]float64, f.Bins.Days)
	for i := range meds {
		if m := f.Bins.DailyHitPercentiles[i][2]; m > 0 {
			meds[i] = math.Log10(m)
		}
	}
	b.WriteString(textplot.Chart("", []textplot.Series{{Name: "log10 median daily hits", Ys: meds}}, 96, 8))

	ipFrac, trafficFrac := f.Bins.Cumulative()
	b.WriteString(textplot.Chart("Figure 9b: cumulative fraction of IPs and traffic by days active",
		[]textplot.Series{
			{Name: "IP addresses", Ys: ipFrac},
			{Name: "traffic contribution", Ys: trafficFrac},
		}, 96, 10))
	fmt.Fprintf(&b, "active-every-day addresses: %.1f%% of IPs carrying %.1f%% of traffic (paper: <10%% / >40%%)\n\n",
		100*f.EverydayIPShare, 100*f.EverydayTrafficShare)

	pct := make([]float64, len(f.WeeklyTopShare))
	for i, v := range f.WeeklyTopShare {
		pct[i] = 100 * v
	}
	b.WriteString(textplot.Chart("Figure 9c: weekly traffic share of top 10% addresses",
		[]textplot.Series{{Name: "top-10% share (%)", Ys: pct}}, 96, 8))
	fmt.Fprintf(&b, "consolidation trend: %+.2f percentage points over the year (paper: ~+3)\n", 100*f.TrendDelta)
	return b.String()
}

// Fig10 is Figure 10: UA samples vs unique UA strings per /24.
type Fig10 struct {
	Points  []core.UAPoint
	Regions core.UARegionCounts
	// Grid is a log-log density grid for rendering.
	Grid [][]float64
}

// Figure10 computes the UA-diversity scatter.
func Figure10(ctx *Context) *Fig10 {
	f := &Fig10{}
	for blk, st := range ctx.Obs.UA {
		if st.Samples == 0 {
			continue
		}
		f.Points = append(f.Points, core.UAPoint{
			Block:   blk,
			Samples: st.Samples,
			Unique:  st.Unique(),
		})
	}
	sort.Slice(f.Points, func(i, j int) bool { return f.Points[i].Block < f.Points[j].Block })
	// Thresholds scale with the observed distribution: "many samples" is
	// the 90th percentile.
	samples := make([]float64, len(f.Points))
	uniques := make([]float64, len(f.Points))
	for i, p := range f.Points {
		samples[i] = float64(p.Samples)
		uniques[i] = p.Unique
	}
	sampleHi := percentileOr(samples, 90, 100)
	uniqueHi := percentileOr(uniques, 90, 100)
	f.Regions = core.ClassifyUARegions(f.Points, int(sampleHi), 10, uniqueHi)

	// 24x12 log-log density grid.
	const gw, gh = 24, 12
	f.Grid = make([][]float64, gh)
	for i := range f.Grid {
		f.Grid[i] = make([]float64, gw)
	}
	maxS, maxU := 1.0, 1.0
	for _, p := range f.Points {
		if float64(p.Samples) > maxS {
			maxS = float64(p.Samples)
		}
		if p.Unique > maxU {
			maxU = p.Unique
		}
	}
	for _, p := range f.Points {
		x := int(math.Log(1+float64(p.Samples)) / math.Log(1+maxS) * (gw - 1))
		y := int(math.Log(1+p.Unique) / math.Log(1+maxU) * (gh - 1))
		f.Grid[y][x]++
	}
	return f
}

func percentileOr(xs []float64, p, def float64) float64 {
	if len(xs) == 0 {
		return def
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(p / 100 * float64(len(s)-1))
	v := s[idx]
	if v <= 0 {
		return def
	}
	return v
}

// Render returns Figure 10 as text.
func (f *Fig10) Render() string {
	var b strings.Builder
	b.WriteString(textplot.Heatmap(
		"Figure 10: UA samples (x, log) vs unique UA strings (y, log) per /24", f.Grid))
	fmt.Fprintf(&b, "regions: bulk=%d  bots(high traffic, few UAs)=%d  gateways(high traffic, many UAs)=%d\n",
		f.Regions.Bulk, f.Regions.Bots, f.Regions.Gateways)
	return b.String()
}

// Fig11 is Figure 11: the 3-D demographics matrix.
type Fig11 struct {
	Demo *core.Demographics
}

// Figure11 builds the Internet-wide demographics.
func Figure11(ctx *Context) *Fig11 {
	return &Fig11{Demo: core.BuildDemographics(ctx.BlockFeatures())}
}

// Render returns Figure 11 as text: the STU marginal plus the largest
// cells of the 1000-bin matrix.
func (f *Fig11) Render() string {
	var b strings.Builder
	b.WriteString("Figure 11: demographics matrix (STU × traffic × hosts, 10 bins each)\n")
	marg := f.Demo.STUMarginal()
	labels := make([]string, len(marg))
	vals := make([]float64, len(marg))
	for i := range marg {
		labels[i] = fmt.Sprintf("STU %.1f-%.1f", float64(i)/10, float64(i+1)/10)
		vals[i] = float64(marg[i])
	}
	b.WriteString(textplot.HBar("STU marginal (blocks per bin)", labels, vals, 50))

	type kv struct {
		c core.Cell
		n int
	}
	var cells []kv
	for c, n := range f.Demo.Counts {
		cells = append(cells, kv{c, n})
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].n != cells[j].n {
			return cells[i].n > cells[j].n
		}
		return cells[i].c != cells[j].c && fmt.Sprint(cells[i].c) < fmt.Sprint(cells[j].c)
	})
	b.WriteString("largest cells (stu,traffic,hosts bins → blocks):\n")
	for i, c := range cells {
		if i >= 8 {
			break
		}
		fmt.Fprintf(&b, "  (%d,%d,%d) → %d\n", c.c.STU, c.c.Traffic, c.c.Hosts, c.n)
	}
	return b.String()
}

// Fig12 is Figure 12: per-RIR demographic panels.
type Fig12 struct {
	Panels []*core.RIRDemographics
}

// Figure12 builds the per-registry demographics.
func Figure12(ctx *Context) *Fig12 {
	return &Fig12{Panels: core.BuildRIRDemographics(ctx.BlockFeatures(), ctx.World.Registry)}
}

// Render returns Figure 12 as text.
func (f *Fig12) Render() string {
	var b strings.Builder
	b.WriteString("Figure 12: per-RIR demographics (x=STU bin, y=traffic bin, shade=blocks)\n")
	for _, p := range f.Panels {
		grid := make([][]float64, core.DemographicsBins)
		for i := range grid {
			grid[i] = make([]float64, core.DemographicsBins)
		}
		for key, cell := range p.Cells {
			grid[key[1]][key[0]] = float64(cell.Blocks)
		}
		b.WriteString(textplot.Heatmap(
			fmt.Sprintf("%s (N=%d, high-STU share %.0f%%)", p.RIR, p.Total, 100*p.HighSTUShare()),
			grid))
	}
	return b.String()
}
