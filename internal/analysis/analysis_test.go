package analysis

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"

	"ipscope/internal/sim"
	"ipscope/internal/synthnet"
)

var (
	ctxOnce sync.Once
	testCtx *Context
)

// sharedCtx builds one medium-scale context reused by all tests.
func sharedCtx(t testing.TB) *Context {
	t.Helper()
	ctxOnce.Do(func() {
		wcfg := synthnet.Config{Seed: 11, NumASes: 200, MeanBlocksPerAS: 10}
		scfg := sim.DefaultConfig()
		scfg.Days = 112 // 16 weeks keeps tests fast but non-trivial
		scfg.DailyStart = 28
		scfg.DailyLen = 84
		scfg.UADays = 28
		testCtx = NewContext(wcfg, scfg)
	})
	return testCtx
}

func TestFigure1Stagnation(t *testing.T) {
	f := Figure1(1)
	if f.Fit.R2 < 0.95 {
		t.Errorf("pre-2014 fit R2 = %v, want near-linear", f.Fit.R2)
	}
	if f.StagnationRatio > 0.25 {
		t.Errorf("stagnation ratio = %v, want near zero", f.StagnationRatio)
	}
	if f.Fit.Slope <= 0 {
		t.Errorf("growth slope = %v", f.Fit.Slope)
	}
	// All five exhaustion markers (IANA + 4 RIRs) present.
	if len(f.Exhaustions) != 5 {
		t.Errorf("exhaustion markers = %v", f.Exhaustions)
	}
	out := f.Render()
	for _, want := range []string{"Figure 1", "APNIC", "ARIN", "linear fit"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTable1(t *testing.T) {
	ctx := sharedCtx(t)
	tab := Table1(ctx)
	d, w := tab.Daily, tab.Weekly
	if d.TotalIPs == 0 || w.TotalIPs == 0 {
		t.Fatal("empty datasets")
	}
	// The paper's Table 1 structure: totals exceed averages; the weekly
	// (year-long) dataset sees more unique IPs than the daily window.
	if d.AvgIPs >= d.TotalIPs || w.AvgIPs >= w.TotalIPs {
		t.Error("avg should be below total")
	}
	if w.TotalIPs < d.TotalIPs {
		t.Errorf("year total %d < window total %d", w.TotalIPs, d.TotalIPs)
	}
	if d.TotalASes == 0 || d.TotalBlocks == 0 {
		t.Error("missing block/AS counts")
	}
	if !strings.Contains(tab.Render(), "Table 1") {
		t.Error("render")
	}
}

func TestFigure2Visibility(t *testing.T) {
	ctx := sharedCtx(t)
	f := Figure2(ctx)
	ip := f.Levels["IPs"]
	if ip.Total() == 0 {
		t.Fatal("no visibility data")
	}
	// Paper: large CDN-only share at IP level (>40%); shrinks at
	// coarser granularities.
	if f.CDNOnlyIPFraction < 0.15 {
		t.Errorf("CDN-only IP fraction = %.2f, want substantial", f.CDNOnlyIPFraction)
	}
	as := f.Levels["ASes"]
	if as.FractionOnlyA() >= f.CDNOnlyIPFraction {
		t.Errorf("AS-level incongruity (%.2f) should be below IP level (%.2f)",
			as.FractionOnlyA(), f.CDNOnlyIPFraction)
	}
	// ICMP-only classification: servers+routers explain a substantial
	// share (paper: close to half).
	total, infra := 0, 0
	for c, n := range f.Classes {
		total += n
		if c != 0 { // not unknown
			infra += n
		}
	}
	if total == 0 {
		t.Fatal("no ICMP-only addresses")
	}
	if frac := float64(infra) / float64(total); frac < 0.2 {
		t.Errorf("infrastructure share of ICMP-only = %.2f, want substantial", frac)
	}
	if !strings.Contains(f.Render(), "Figure 2a") {
		t.Error("render")
	}
}

func TestFigure3Regions(t *testing.T) {
	ctx := sharedCtx(t)
	f := Figure3(ctx, 11)
	if len(f.ByRIR) != 5 {
		t.Fatalf("RIR rows = %d", len(f.ByRIR))
	}
	nonEmpty := 0
	for _, rv := range f.ByRIR {
		if rv.Both+rv.OnlyCDN+rv.Only > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 4 {
		t.Errorf("only %d RIRs populated", nonEmpty)
	}
	if len(f.Countries) == 0 {
		t.Fatal("no countries")
	}
	// Descending order by union size.
	for i := 1; i < len(f.Countries); i++ {
		a := f.Countries[i-1]
		b := f.Countries[i]
		if a.Both+a.OnlyCDN+a.Only < b.Both+b.OnlyCDN+b.Only {
			t.Error("countries not sorted")
		}
	}
	// Top countries should carry ITU ranks from the registry table.
	if f.Countries[0].BroadbandRank == 0 {
		t.Error("missing broadband rank for top country")
	}
	if !strings.Contains(f.Render(), "Figure 3a") {
		t.Error("render")
	}
}

func TestRecaptureExperiment(t *testing.T) {
	ctx := sharedCtx(t)
	r := RecaptureEstimate(ctx)
	if r.Err != nil {
		t.Fatalf("recapture failed: %v", r.Err)
	}
	if r.Est.Chapman < float64(r.TrueActive)*0.8 {
		t.Errorf("estimate %.0f far below observed union %d", r.Est.Chapman, r.TrueActive)
	}
	if r.Est.InvisibleEstimate() < 0 {
		t.Error("negative invisible estimate")
	}
	if !strings.Contains(r.Render(), "Lincoln-Petersen") {
		t.Error("render")
	}
}

func TestFigure4Churn(t *testing.T) {
	ctx := sharedCtx(t)
	f := Figure4(ctx)
	if len(f.DailyActive) != len(ctx.Obs.Daily) {
		t.Fatal("series length")
	}
	if f.MeanUp <= 0 {
		t.Fatal("no daily churn")
	}
	// The paper's key observation: churn does NOT decay to zero for
	// larger windows.
	var w7 float64
	for _, wc := range f.ByWindow {
		if wc.WindowDays == 7 {
			w7 = wc.Up.Median
		}
	}
	if w7 <= 0.5 {
		t.Errorf("7-day churn median = %.2f%%, should stay well above zero", w7)
	}
	// Long-term churn accumulates.
	if f.YearChurnFrac < 0.03 {
		t.Errorf("year churn fraction = %.3f, want accumulation", f.YearChurnFrac)
	}
	last := f.VersusFirst[len(f.VersusFirst)-1]
	mid := f.VersusFirst[len(f.VersusFirst)/2]
	if last.Appear < mid.Appear/2 {
		t.Error("appear counts should grow over the year")
	}
	if !strings.Contains(f.Render(), "Figure 4b") {
		t.Error("render")
	}
}

func TestFigure5Properties(t *testing.T) {
	ctx := sharedCtx(t)
	f := Figure5(ctx, 50)
	if len(f.ASMedians[0]) == 0 {
		t.Fatal("no per-AS churn")
	}
	// Event-size distributions sum to ~1.
	for i, d := range f.EventSizes {
		sum := 0.0
		for _, v := range d {
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("window %d: distribution sums to %v", f.Windows[i], sum)
		}
	}
	// Paper: daily events are dominated by single addresses (>=70% at
	// /31-/32); month-to-month churn is bulkier.
	daily := f.EventSizes[0]
	if daily[4]+daily[3] < 0.5 {
		t.Errorf("daily events not small-dominated: %v", daily)
	}
	monthly := f.EventSizes[2]
	if monthly[0]+monthly[1]+monthly[2] <= daily[0]+daily[1]+daily[2] {
		t.Errorf("monthly churn not bulkier: daily %v monthly %v", daily, monthly)
	}
	// BGP correlation: events correlate more than steady actives, and
	// correlation grows with window size; absolute numbers stay small.
	for _, c := range f.BGP {
		if c.UpPct < c.SteadyPct {
			t.Errorf("window %d: up %.2f%% < steady %.2f%%", c.WindowDays, c.UpPct, c.SteadyPct)
		}
	}
	if f.BGP[2].UpPct < f.BGP[0].UpPct {
		t.Error("BGP correlation should grow with window size")
	}
	if f.BGP[2].UpPct > 30 {
		t.Errorf("BGP correlation %.1f%% too high; paper: tiny minority", f.BGP[2].UpPct)
	}
	if !strings.Contains(f.Render(), "Figure 5c") {
		t.Error("render")
	}
}

func TestTable2LongTerm(t *testing.T) {
	ctx := sharedCtx(t)
	tab := Table2(ctx)
	r := tab.Result
	if r.Appear == 0 || r.Disappear == 0 {
		t.Fatal("no long-term churn")
	}
	// Paper: more than half of long-term events affect entire /24s, and
	// BGP sees almost none of it.
	if r.AppearFull24Pct < 20 {
		t.Errorf("appear full-/24 share = %.1f%%, want bulky long-term churn", r.AppearFull24Pct)
	}
	if r.AppearBGP.NoChangePct < 60 {
		t.Errorf("appear BGP-no-change = %.1f%%, want dominant", r.AppearBGP.NoChangePct)
	}
	if r.DisappearBGP.NoChangePct < 60 {
		t.Errorf("disappear BGP-no-change = %.1f%%", r.DisappearBGP.NoChangePct)
	}
	if !strings.Contains(tab.Render(), "Table 2") {
		t.Error("render")
	}
}

func TestFigure6Patterns(t *testing.T) {
	ctx := sharedCtx(t)
	f := Figure6(ctx)
	if len(f.Examples) < 3 {
		t.Fatalf("only %d pattern examples", len(f.Examples))
	}
	byPolicy := map[synthnet.Policy]PatternExample{}
	for _, ex := range f.Examples {
		byPolicy[ex.Policy] = ex
		if ex.FD == 0 || ex.STU == 0 || len(ex.Days) == 0 {
			t.Errorf("degenerate example %+v", ex.Block)
		}
	}
	ss, okS := byPolicy[synthnet.StaticSparse]
	dd, okD := byPolicy[synthnet.DynamicDaily]
	if okS && okD {
		if ss.FD >= dd.FD {
			t.Errorf("static FD %d should be below dynamic-daily FD %d", ss.FD, dd.FD)
		}
		if ss.STU >= dd.STU {
			t.Errorf("static STU %.2f should be below dynamic-daily STU %.2f", ss.STU, dd.STU)
		}
	}
	if !strings.Contains(f.Render(), "Figure 6") {
		t.Error("render")
	}
}

func TestFigure7Change(t *testing.T) {
	ctx := sharedCtx(t)
	f := Figure7(ctx, 2)
	// At default change rates some mid-window switch exists at this scale.
	if len(f.Examples) == 0 {
		t.Skip("no mid-window restructurings in this world")
	}
	if !strings.Contains(f.Render(), "Figure 7") {
		t.Error("render")
	}
}

func TestFigure8Blocks(t *testing.T) {
	ctx := sharedCtx(t)
	f := Figure8(ctx)
	frac := f.Split.MajorFraction()
	if frac <= 0.005 || frac >= 0.5 {
		t.Errorf("major-change fraction = %.3f, paper ~0.10", frac)
	}
	if len(f.FDStatic) == 0 || len(f.FDDynamic) == 0 {
		t.Fatal("rDNS tagging found no blocks")
	}
	// Paper: dynamic pools cycle (high FD); static blocks sparse.
	if f.HighFDShareDynamic < 0.5 {
		t.Errorf("dynamic FD>250 share = %.2f, want majority", f.HighFDShareDynamic)
	}
	if f.LowFDShareStatic < 0.5 {
		t.Errorf("static FD<64 share = %.2f, want majority", f.LowFDShareStatic)
	}
	if f.STUHist.N() == 0 {
		t.Error("no cycling pools for Figure 8c")
	}
	if f.Potential.ActiveBlocks == 0 || f.Potential.FreeableAddrs == 0 {
		t.Errorf("potential-utilization estimate empty: %+v", f.Potential)
	}
	if !strings.Contains(f.Render(), "Figure 8b") {
		t.Error("render")
	}
}

func TestFigure9Traffic(t *testing.T) {
	ctx := sharedCtx(t)
	f := Figure9(ctx)
	if f.Bins.TotalIPs() == 0 {
		t.Fatal("no traffic bins")
	}
	// Paper: everyday-active addresses are a small IP share but a
	// disproportionate traffic share.
	if f.EverydayIPShare <= 0 || f.EverydayIPShare > 0.5 {
		t.Errorf("everyday IP share = %.3f", f.EverydayIPShare)
	}
	if f.EverydayTrafficShare <= f.EverydayIPShare {
		t.Errorf("traffic share %.3f should exceed IP share %.3f",
			f.EverydayTrafficShare, f.EverydayIPShare)
	}
	// Median daily hits grow with days active (compare first vs last bin).
	firstMed := f.Bins.DailyHitPercentiles[0][2]
	lastMed := f.Bins.DailyHitPercentiles[f.Bins.Days-1][2]
	if lastMed <= firstMed {
		t.Errorf("median daily hits: 1-day %.1f vs everyday %.1f, want growth", firstMed, lastMed)
	}
	// Consolidation trend.
	if f.TrendDelta <= 0 {
		t.Errorf("trend delta = %v, want consolidation", f.TrendDelta)
	}
	if !strings.Contains(f.Render(), "Figure 9c") {
		t.Error("render")
	}
}

func TestFigure10UA(t *testing.T) {
	ctx := sharedCtx(t)
	f := Figure10(ctx)
	if len(f.Points) == 0 {
		t.Fatal("no UA points")
	}
	if f.Regions.Bulk == 0 {
		t.Error("no bulk region")
	}
	if f.Regions.Gateways == 0 && f.Regions.Bots == 0 {
		t.Error("no extreme regions identified")
	}
	if !strings.Contains(f.Render(), "Figure 10") {
		t.Error("render")
	}
}

func TestFigure11And12(t *testing.T) {
	ctx := sharedCtx(t)
	f11 := Figure11(ctx)
	nActive := len(ctx.BlockFeatures())
	if f11.Demo.Total() != nActive {
		t.Errorf("demographics total %d != active blocks %d", f11.Demo.Total(), nActive)
	}
	// Strong division along the STU axis: both extremes populated.
	marg := f11.Demo.STUMarginal()
	if marg[0]+marg[1] == 0 || marg[8]+marg[9] == 0 {
		t.Errorf("STU marginal not bimodal: %v", marg)
	}
	f12 := Figure12(ctx)
	total := 0
	for _, p := range f12.Panels {
		total += p.Total
	}
	if total != nActive {
		t.Errorf("per-RIR totals %d != %d", total, nActive)
	}
	if !strings.Contains(f11.Render(), "Figure 11") || !strings.Contains(f12.Render(), "Figure 12") {
		t.Error("render")
	}
}

func TestRunAll(t *testing.T) {
	ctx := sharedCtx(t)
	var buf bytes.Buffer
	RunAll(&buf, ctx, 1)
	out := buf.String()
	for _, want := range []string{
		"Figure 1", "Table 1", "Figure 2a", "Figure 3a", "Figure 4a",
		"Figure 5a", "Table 2", "Figure 6", "Figure 7", "Figure 8a",
		"Figure 9a", "Figure 10", "Figure 11", "Figure 12",
		"Capture-recapture",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if len(out) < 5000 {
		t.Errorf("report suspiciously short: %d bytes", len(out))
	}
}
