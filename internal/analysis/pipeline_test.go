package analysis

import (
	"bytes"
	"testing"

	"ipscope/internal/obs"
	"ipscope/internal/sim"
	"ipscope/internal/synthnet"
)

// TestReportFromDatasetByteIdentical is the pipeline's acceptance
// property: a report computed from a dataset that was streamed out of
// a live simulation, encoded, and decoded again is byte-identical to
// the report computed directly from that simulation. This is what the
// CI pipeline smoke (make pipeline-smoke) verifies end to end across
// the three binaries; here it is pinned at the library level.
func TestReportFromDatasetByteIdentical(t *testing.T) {
	wcfg := synthnet.Config{Seed: 23, NumASes: 30, MeanBlocksPerAS: 6}
	w := synthnet.Generate(wcfg)

	// Live run, streaming the dataset through the codec as it goes.
	var stream bytes.Buffer
	writer := obs.NewWriter(&stream)
	res, err := sim.RunTo(w, sim.TinyConfig(), writer)
	if err != nil {
		t.Fatal(err)
	}
	if err := writer.Close(); err != nil {
		t.Fatal(err)
	}

	liveCtx, err := NewContextFromSource(res)
	if err != nil {
		t.Fatal(err)
	}

	decoded, err := obs.Decode(&stream)
	if err != nil {
		t.Fatal(err)
	}
	storedCtx, err := NewContextFromSource(decoded)
	if err != nil {
		t.Fatal(err)
	}

	// The regenerated world must be the same world.
	if storedCtx.World.NumBlocks() != liveCtx.World.NumBlocks() ||
		len(storedCtx.World.ASes) != len(liveCtx.World.ASes) {
		t.Fatalf("regenerated world differs: %d/%d blocks, %d/%d ASes",
			storedCtx.World.NumBlocks(), liveCtx.World.NumBlocks(),
			len(storedCtx.World.ASes), len(liveCtx.World.ASes))
	}

	var live, stored bytes.Buffer
	RunAll(&live, liveCtx, wcfg.Seed)
	RunAll(&stored, storedCtx, wcfg.Seed)
	if live.Len() == 0 {
		t.Fatal("empty report")
	}
	if !bytes.Equal(live.Bytes(), stored.Bytes()) {
		a, b := live.Bytes(), stored.Bytes()
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		off := 0
		for off < n && a[off] == b[off] {
			off++
		}
		lo := off - 80
		if lo < 0 {
			lo = 0
		}
		hiA, hiB := off+80, off+80
		if hiA > len(a) {
			hiA = len(a)
		}
		if hiB > len(b) {
			hiB = len(b)
		}
		t.Fatalf("reports diverge at byte %d:\nlive:   %q\nstored: %q",
			off, a[lo:hiA], b[lo:hiB])
	}

	// Repeat the direct report: determinism of the report itself (map
	// iteration must never leak into rendered floats).
	var again bytes.Buffer
	RunAll(&again, NewContext(wcfg, sim.TinyConfig()), wcfg.Seed)
	if !bytes.Equal(live.Bytes(), again.Bytes()) {
		t.Fatal("direct report is not deterministic run to run")
	}
}

// TestReplayScenarios: the stored-dataset-only scenarios produce
// well-formed contexts and reports without re-simulation.
func TestReplayScenarios(t *testing.T) {
	wcfg := synthnet.Config{Seed: 23, NumASes: 30, MeanBlocksPerAS: 6}
	w := synthnet.Generate(wcfg)
	res := sim.Run(w, sim.TinyConfig())

	t.Run("truncated-window", func(t *testing.T) {
		d := res.Data.TruncateWindow(14)
		ctx, err := NewContextFromSource(d)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(ctx.Obs.Daily); got != 14 {
			t.Fatalf("daily window = %d", got)
		}
		var out bytes.Buffer
		RunAll(&out, ctx, wcfg.Seed)
		if out.Len() == 0 {
			t.Fatal("empty report")
		}
	})
	t.Run("subsampled-vantage", func(t *testing.T) {
		d := res.Data.SubsampleVantage(0.4, 7)
		ctx, err := NewContextFromSource(d)
		if err != nil {
			t.Fatal(err)
		}
		full := res.DailyWindowUnion().Len()
		kept := ctx.Obs.DailyWindowUnion().Len()
		if kept == 0 || kept >= full {
			t.Fatalf("vantage kept %d of %d", kept, full)
		}
		var out bytes.Buffer
		RunAll(&out, ctx, wcfg.Seed)
		if out.Len() == 0 {
			t.Fatal("empty report")
		}
	})
}
