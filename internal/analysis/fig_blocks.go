package analysis

import (
	"fmt"
	"sort"
	"strings"

	"ipscope/internal/core"
	"ipscope/internal/ipv4"
	"ipscope/internal/rdns"
	"ipscope/internal/stats"
	"ipscope/internal/synthnet"
	"ipscope/internal/textplot"
)

// PatternExample is one rendered /24 activity matrix with its metrics
// (the panels of Figures 6 and 7).
type PatternExample struct {
	Block  ipv4.Block
	Policy synthnet.Policy
	FD     int
	STU    float64
	Days   []ipv4.Bitmap256
}

// Fig6 is Figure 6: one exemplar block per in-situ assignment practice.
type Fig6 struct {
	Examples []PatternExample
}

// Figure6 picks a representative stable block for each of the paper's
// four pattern classes and extracts its activity matrix.
func Figure6(ctx *Context) *Fig6 {
	restructured := restructuredBlocks(ctx)
	want := []synthnet.Policy{
		synthnet.StaticSparse, synthnet.DynamicRoundRobin,
		synthnet.DynamicLongLease, synthnet.DynamicDaily,
	}
	f := &Fig6{}
	for _, pol := range want {
		best := pickExample(ctx, pol, restructured)
		if best != nil {
			f.Examples = append(f.Examples, *best)
		}
	}
	return f
}

func restructuredBlocks(ctx *Context) map[ipv4.Block]bool {
	out := map[ipv4.Block]bool{}
	for _, re := range ctx.Obs.Restructures {
		re.Prefix.Blocks(func(b ipv4.Block) { out[b] = true })
	}
	return out
}

// pickExample selects the stable block of the given policy with median
// STU among candidates, a representative rather than extreme pick.
func pickExample(ctx *Context, pol synthnet.Policy, skip map[ipv4.Block]bool) *PatternExample {
	type cand struct {
		blk ipv4.Block
		stu float64
	}
	var cands []cand
	for _, b := range ctx.World.Blocks {
		if b.Policy != pol || skip[b.Block] {
			continue
		}
		stu := core.STU(ctx.Obs.Daily, b.Block)
		if stu == 0 {
			continue
		}
		cands = append(cands, cand{b.Block, stu})
		if len(cands) >= 64 {
			break
		}
	}
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].stu < cands[j].stu })
	c := cands[len(cands)/2]
	return &PatternExample{
		Block:  c.blk,
		Policy: pol,
		FD:     core.FillingDegree(ctx.Obs.Daily, c.blk),
		STU:    c.stu,
		Days:   core.BlockDailyBitmaps(ctx.Obs.Daily, c.blk),
	}
}

// Render returns Figure 6 as text.
func (f *Fig6) Render() string {
	var b strings.Builder
	b.WriteString("Figure 6: regular activity patterns (x=time, y=address space)\n")
	for _, ex := range f.Examples {
		title := fmt.Sprintf("%v  [%s]  FD=%d STU=%.2f", ex.Block, ex.Policy, ex.FD, ex.STU)
		b.WriteString(textplot.ActivityMatrix(title, ex.Days, 16))
		b.WriteString("\n")
	}
	return b.String()
}

// Fig7 is Figure 7: blocks whose assignment practice changed mid-window.
type Fig7 struct {
	Examples []PatternExample
}

// Figure7 renders blocks with a policy switch inside the daily window.
func Figure7(ctx *Context, maxExamples int) *Fig7 {
	f := &Fig7{}
	cfg := ctx.Obs.Meta.Run
	for _, re := range ctx.Obs.Restructures {
		if len(f.Examples) >= maxExamples {
			break
		}
		// Want a visible change: well inside the daily window.
		margin := cfg.DailyLen / 4
		if re.Day < cfg.DailyStart+margin || re.Day > cfg.DailyStart+cfg.DailyLen-margin {
			continue
		}
		blk := re.Prefix.FirstBlock()
		stu := core.STU(ctx.Obs.Daily, blk)
		if stu < 0.01 {
			continue
		}
		info, _ := ctx.World.BlockInfo(blk)
		pol := synthnet.Unused
		if info != nil {
			pol = info.Policy
		}
		f.Examples = append(f.Examples, PatternExample{
			Block:  blk,
			Policy: pol,
			FD:     core.FillingDegree(ctx.Obs.Daily, blk),
			STU:    stu,
			Days:   core.BlockDailyBitmaps(ctx.Obs.Daily, blk),
		})
	}
	return f
}

// Render returns Figure 7 as text.
func (f *Fig7) Render() string {
	var b strings.Builder
	b.WriteString("Figure 7: modified assignment practice (mid-window restructurings)\n")
	for _, ex := range f.Examples {
		title := fmt.Sprintf("%v  [was %s]  FD=%d STU=%.2f", ex.Block, ex.Policy, ex.FD, ex.STU)
		b.WriteString(textplot.ActivityMatrix(title, ex.Days, 16))
		b.WriteString("\n")
	}
	return b.String()
}

// Fig8 is Figure 8: change detection (a), filling-degree CDFs by rDNS
// class (b), and the STU histogram of cycling pools (c).
type Fig8 struct {
	Split core.ChangeSplit
	// FD CDF sample points per class.
	FDStatic, FDDynamic, FDAll []float64
	// HighFDShareDynamic is the share of dynamic-tagged blocks with
	// FD > 250 (paper: >80%).
	HighFDShareDynamic float64
	// LowFDShareStatic is the share of static-tagged blocks with FD < 64
	// (paper: ~75%).
	LowFDShareStatic float64
	// STUHist is the histogram of STU (as % of max) for blocks with
	// FD > 250, 10 bins of 10%.
	STUHist *stats.Histogram
	// FullSTUBlocks counts blocks at 100% spatio-temporal utilization.
	FullSTUBlocks int
	Potential     core.PotentialUtilization
}

// Figure8 computes the spatio-temporal aggregate views.
func Figure8(ctx *Context) *Fig8 {
	daily := ctx.Obs.Daily
	daysPerMonth := 28
	if len(daily) < 56 {
		daysPerMonth = len(daily) / 2
	}
	f := &Fig8{Split: core.DetectChange(daily, daysPerMonth, 0.25)}

	// Figure 8b/8c operate on stable blocks, per Section 5.3.
	blocks := f.Split.Stable
	tags := ctx.RDNSTags(blocks)
	f.STUHist = stats.NewHistogram(0, 100, 10)
	for _, blk := range blocks {
		fd := float64(core.FillingDegree(daily, blk))
		f.FDAll = append(f.FDAll, fd)
		switch tags[blk] {
		case rdns.Static:
			f.FDStatic = append(f.FDStatic, fd)
			if fd < 64 {
				f.LowFDShareStatic++
			}
		case rdns.Dynamic:
			f.FDDynamic = append(f.FDDynamic, fd)
			if fd > 250 {
				f.HighFDShareDynamic++
			}
		}
		if fd > 250 {
			stu := core.STU(daily, blk)
			f.STUHist.Add(stu * 100)
			if stu >= 0.995 {
				f.FullSTUBlocks++
			}
		}
	}
	if n := len(f.FDStatic); n > 0 {
		f.LowFDShareStatic /= float64(n)
	}
	if n := len(f.FDDynamic); n > 0 {
		f.HighFDShareDynamic /= float64(n)
	}
	f.Potential = core.EstimatePotential(daily, blocks)
	return f
}

// Render returns Figure 8 as text.
func (f *Fig8) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8a: max monthly ΔSTU change detection (threshold ±%.2f)\n", f.Split.Threshold)
	fmt.Fprintf(&b, "  stable blocks: %d (%.1f%%)   major change: %d (%.1f%%)  [paper: 90.2%% / 9.8%%]\n",
		len(f.Split.Stable), 100*(1-f.Split.MajorFraction()),
		len(f.Split.Major), 100*f.Split.MajorFraction())

	b.WriteString("Figure 8b: filling degree by rDNS class (quartiles)\n")
	b.WriteString("class   |     N |  p25 |  p50 |  p75\n")
	row := func(name string, xs []float64) {
		if len(xs) == 0 {
			fmt.Fprintf(&b, "%-7s | %5d |\n", name, 0)
			return
		}
		q := stats.Percentiles(xs, 25, 50, 75)
		fmt.Fprintf(&b, "%-7s | %5d | %4.0f | %4.0f | %4.0f\n", name, len(xs), q[0], q[1], q[2])
	}
	row("static", f.FDStatic)
	row("dynamic", f.FDDynamic)
	row("all", f.FDAll)
	fmt.Fprintf(&b, "  dynamic blocks with FD>250: %.0f%% (paper: >80%%); static with FD<64: %.0f%% (paper: ~75%%)\n",
		100*f.HighFDShareDynamic, 100*f.LowFDShareStatic)

	b.WriteString("Figure 8c: STU of blocks with FD>250 (% of max utilization)\n")
	labels := make([]string, len(f.STUHist.Counts))
	values := make([]float64, len(f.STUHist.Counts))
	for i, c := range f.STUHist.Counts {
		labels[i] = fmt.Sprintf("%3.0f-%3.0f%%", f.STUHist.BinCenter(i)-5, f.STUHist.BinCenter(i)+5)
		values[i] = float64(c)
	}
	b.WriteString(textplot.HBar("", labels, values, 50))
	fmt.Fprintf(&b, "  blocks at 100%% STU: %d (paper: ~60K of 1.2M)\n", f.FullSTUBlocks)
	fmt.Fprintf(&b, "Section 5.4 potential: active=%d lowFD=%d cyclingPools=%d lowSTUpools=%d freeable≈%d addrs\n",
		f.Potential.ActiveBlocks, f.Potential.LowFDBlocks, f.Potential.DynamicHighFD,
		f.Potential.DynamicLowSTU, f.Potential.FreeableAddrs)
	return b.String()
}
