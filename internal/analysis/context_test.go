package analysis

import (
	"testing"

	"ipscope/internal/core"
	"ipscope/internal/ipv4"
	"ipscope/internal/rdns"
)

func TestCDNMonthWithinWindow(t *testing.T) {
	ctx := sharedCtx(t)
	month := ctx.CDNMonth()
	window := ctx.Obs.DailyWindowUnion()
	if month.Len() == 0 {
		t.Fatal("empty CDN month")
	}
	// The month is a sub-window of the daily window.
	if month.DiffCount(window) != 0 {
		t.Error("CDN month contains addresses outside the daily window")
	}
	if month.Len() >= window.Len() {
		t.Error("CDN month should be a strict subset at this scale")
	}
}

func TestTrafficIterConsistent(t *testing.T) {
	ctx := sharedCtx(t)
	totalIPs, totalHits := 0, 0.0
	maxDays := 0
	ctx.TrafficIter()(func(tr core.IPTraffic) {
		totalIPs++
		totalHits += tr.Hits
		if tr.DaysActive > maxDays {
			maxDays = tr.DaysActive
		}
	})
	if totalIPs != ctx.Obs.DailyWindowUnion().Len() {
		t.Errorf("iterator yields %d IPs, union has %d",
			totalIPs, ctx.Obs.DailyWindowUnion().Len())
	}
	if maxDays > len(ctx.Obs.Daily) {
		t.Errorf("days active %d exceeds window %d", maxDays, len(ctx.Obs.Daily))
	}
	var want float64
	for _, v := range ctx.Obs.DailyTotalHits {
		want += v
	}
	if diff := totalHits - want; diff > want*1e-6 || diff < -want*1e-6 {
		t.Errorf("hits %f != daily totals %f", totalHits, want)
	}
}

func TestBlockFeaturesRanges(t *testing.T) {
	ctx := sharedCtx(t)
	feats := ctx.BlockFeatures()
	if len(feats) == 0 {
		t.Fatal("no features")
	}
	for _, f := range feats {
		if f.STU <= 0 || f.STU > 1 {
			t.Fatalf("STU out of range: %+v", f)
		}
		if f.Traffic < 0 || f.Hosts < 1 {
			t.Fatalf("bad feature: %+v", f)
		}
	}
}

func TestRDNSTagsCoverAllBlocks(t *testing.T) {
	ctx := sharedCtx(t)
	var blocks []ipv4.Block
	for _, b := range ctx.World.Blocks[:50] {
		blocks = append(blocks, b.Block)
	}
	tags := ctx.RDNSTags(blocks)
	if len(tags) != len(blocks) {
		t.Fatalf("tags for %d of %d blocks", len(tags), len(blocks))
	}
	counts := map[rdns.Tag]int{}
	for _, tag := range tags {
		counts[tag]++
	}
	if counts[rdns.Static]+counts[rdns.Dynamic] == 0 {
		t.Error("no block taggable at all")
	}
	// Unknown blocks are untagged, not invented.
	out := ctx.RDNSTags([]ipv4.Block{ipv4.Block(0xFFFFFF)})
	if out[ipv4.Block(0xFFFFFF)] != rdns.Untagged {
		t.Error("unknown block should be untagged")
	}
}
