package analysis

import (
	"fmt"
	"sort"
	"strings"

	"ipscope/internal/core"
	"ipscope/internal/stats"
	"ipscope/internal/textplot"
)

// Fig4 is Figure 4: daily activity and up/down events (a), churn by
// aggregation window (b), and year-long appear/disappear versus the
// first week (c).
type Fig4 struct {
	DailyActive   []float64
	DailyChurn    []core.ChurnPoint
	MeanUp        float64
	ByWindow      []core.WindowChurn
	VersusFirst   []core.AppearDisappear
	YearChurnFrac float64 // |appear|/|baseline| at the last week
}

// Figure4 computes the churn overview.
func Figure4(ctx *Context) *Fig4 {
	f := &Fig4{}
	for _, s := range ctx.Obs.Daily {
		f.DailyActive = append(f.DailyActive, float64(s.Len()))
	}
	f.DailyChurn = core.ChurnSeries(ctx.Obs.Daily)
	var upSum float64
	for _, p := range f.DailyChurn {
		upSum += float64(p.Up)
	}
	if len(f.DailyChurn) > 0 {
		f.MeanUp = upSum / float64(len(f.DailyChurn))
	}
	f.ByWindow = core.ChurnByWindow(ctx.Obs.Daily, []int{1, 2, 4, 7, 14, 28})
	f.VersusFirst = core.VersusBaseline(ctx.Obs.Weekly)
	if n := len(f.VersusFirst); n > 0 && ctx.Obs.Weekly[0].Len() > 0 {
		f.YearChurnFrac = float64(f.VersusFirst[n-1].Appear) / float64(ctx.Obs.Weekly[0].Len())
	}
	return f
}

// Render returns Figure 4 as text.
func (f *Fig4) Render() string {
	var b strings.Builder
	ups := make([]float64, len(f.DailyChurn))
	downs := make([]float64, len(f.DailyChurn))
	for i, p := range f.DailyChurn {
		ups[i] = float64(p.Up)
		downs[i] = float64(p.Down)
	}
	b.WriteString(textplot.Chart("Figure 4a: daily active IPv4 addresses and up/down events",
		[]textplot.Series{
			{Name: "active", Ys: f.DailyActive},
			{Name: "up", Ys: ups},
			{Name: "down", Ys: downs},
		}, 96, 12))
	fmt.Fprintf(&b, "mean daily up events: %.0f (%.1f%% of mean active)\n\n",
		f.MeanUp, 100*f.MeanUp/stats.Mean(f.DailyActive))

	b.WriteString("Figure 4b: churn vs aggregation window [min/median/max % per transition]\n")
	b.WriteString("window | up%% min/med/max | down%% min/med/max\n")
	for _, wc := range f.ByWindow {
		fmt.Fprintf(&b, "%4dd  | %5.1f %5.1f %5.1f | %5.1f %5.1f %5.1f\n",
			wc.WindowDays, wc.Up.Min, wc.Up.Median, wc.Up.Max,
			wc.Down.Min, wc.Down.Median, wc.Down.Max)
	}
	b.WriteString("\n")

	appear := make([]float64, len(f.VersusFirst))
	disappear := make([]float64, len(f.VersusFirst))
	for i, ad := range f.VersusFirst {
		appear[i] = float64(ad.Appear)
		disappear[i] = -float64(ad.Disappear)
	}
	b.WriteString(textplot.Chart("Figure 4c: weekly appear(+)/disappear(-) vs first week",
		[]textplot.Series{{Name: "appear", Ys: appear}, {Name: "disappear", Ys: disappear}},
		96, 10))
	fmt.Fprintf(&b, "year-end appear fraction of baseline: %.1f%% (paper: ~25%%)\n", 100*f.YearChurnFrac)
	return b.String()
}

// Fig5 is Figure 5: per-AS churn CDF (a), event-size distribution (b),
// BGP correlation (c) — each for 1, 7 and 28-day windows.
type Fig5 struct {
	Windows []int
	// ASMedians[i] is the sorted per-AS median up-event percentage for
	// window Windows[i].
	ASMedians [][]float64
	// EventSizes[i] is the Figure 5b histogram for window Windows[i].
	EventSizes [][5]float64
	// BGP[i] is the Figure 5c correlation for window Windows[i].
	BGP []core.BGPCorrelation
}

// Figure5 computes the churn-property analyses.
func Figure5(ctx *Context, minActivePerAS int) *Fig5 {
	f := &Fig5{Windows: []int{1, 7, 28}}
	daily := ctx.Obs.Daily
	for _, w := range f.Windows {
		per := core.PerASChurn(core.Windows(daily, w), ctx.ASOf, minActivePerAS)
		meds := make([]float64, 0, len(per))
		for _, m := range per {
			meds = append(meds, m)
		}
		sort.Float64s(meds)
		f.ASMedians = append(f.ASMedians, meds)

		wins := core.Windows(daily, w)
		var agg [5]float64
		var weight float64
		for i := 1; i < len(wins); i++ {
			up := wins[i].DiffCount(wins[i-1])
			if up == 0 {
				continue
			}
			d := core.EventSizeDistribution(wins[i-1], wins[i], 8)
			for j := range agg {
				agg[j] += d[j] * float64(up)
			}
			weight += float64(up)
		}
		if weight > 0 {
			for j := range agg {
				agg[j] /= weight
			}
		}
		f.EventSizes = append(f.EventSizes, agg)

		f.BGP = append(f.BGP, core.CorrelateBGP(daily, w, ctx.Obs.Routing, ctx.Obs.Meta.Run.DailyStart))
	}
	return f
}

// Render returns Figure 5 as text.
func (f *Fig5) Render() string {
	var b strings.Builder
	b.WriteString("Figure 5a: per-AS median % of IPs with up event (CDF quartiles)\n")
	b.WriteString("window | N ASes | p10 | p25 | p50 | p75 | p90\n")
	for i, w := range f.Windows {
		meds := f.ASMedians[i]
		if len(meds) == 0 {
			fmt.Fprintf(&b, "%4dd  | %6d |\n", w, 0)
			continue
		}
		q := stats.Percentiles(meds, 10, 25, 50, 75, 90)
		fmt.Fprintf(&b, "%4dd  | %6d | %4.1f | %4.1f | %4.1f | %4.1f | %4.1f\n",
			w, len(meds), q[0], q[1], q[2], q[3], q[4])
	}
	b.WriteString("\nFigure 5b: up-event size distribution by smallest covering mask\n")
	b.WriteString("window |  >=/16 |   /20 |   /24 |   /28 |   /32\n")
	for i, w := range f.Windows {
		d := f.EventSizes[i]
		fmt.Fprintf(&b, "%4dd  | %5.1f%% | %4.1f%% | %4.1f%% | %4.1f%% | %4.1f%%\n",
			w, 100*d[0], 100*d[1], 100*d[2], 100*d[3], 100*d[4])
	}
	b.WriteString("\nFigure 5c: % of events coinciding with a BGP change\n")
	b.WriteString("window | up events | down events | steady active\n")
	for i, w := range f.Windows {
		c := f.BGP[i]
		fmt.Fprintf(&b, "%4dd  | %8.2f%% | %10.2f%% | %12.2f%%\n", w, c.UpPct, c.DownPct, c.SteadyPct)
	}
	return b.String()
}

// Tab2 is Table 2: long-term appear/disappear with bulk and BGP
// classification.
type Tab2 struct {
	Result core.LongTermChurn
	// TopOverlap is how many of the top-10 appear-contributing ASes are
	// also among the top-10 disappear contributors (paper: 7 of 10).
	TopOverlap int
}

// Table2 compares the first two months of the year against the last two.
func Table2(ctx *Context) *Tab2 {
	weekly := ctx.Obs.Weekly
	n := len(weekly)
	if n < 4 {
		return &Tab2{}
	}
	earlyWeeks := n / 6 // ~2 months of 52 weeks
	if earlyWeeks < 1 {
		earlyWeeks = 1
	}
	early := core.WindowUnion(weekly, 0, earlyWeeks)
	late := core.WindowUnion(weekly, n-earlyWeeks, n)
	days := ctx.Obs.Meta.Run.Days
	t := &Tab2{Result: core.CompareLongTerm(early, late, ctx.Obs.Routing, earlyWeeks*7, days-1)}

	appear := late.Diff(early)
	disappear := early.Diff(late)
	topA := core.TopContributors(appear, ctx.ASOf, 10)
	topD := core.TopContributors(disappear, ctx.ASOf, 10)
	inA := map[interface{}]bool{}
	for _, a := range topA {
		inA[a.AS] = true
	}
	for _, d := range topD {
		if inA[d.AS] {
			t.TopOverlap++
		}
	}
	return t
}

// Render returns Table 2 as text.
func (t *Tab2) Render() string {
	r := t.Result
	var b strings.Builder
	b.WriteString("Table 2: long-term appear/disappear (first vs last two months)\n")
	b.WriteString("                          |   appear | disappear\n")
	fmt.Fprintf(&b, "total                     | %8d | %9d\n", r.Appear, r.Disappear)
	fmt.Fprintf(&b, "entire /24 affected       | %7.1f%% | %8.1f%%\n", r.AppearFull24Pct, r.DisappearFull24Pct)
	fmt.Fprintf(&b, "BGP no change             | %7.1f%% | %8.1f%%\n", r.AppearBGP.NoChangePct, r.DisappearBGP.NoChangePct)
	fmt.Fprintf(&b, "BGP origin change         | %7.1f%% | %8.1f%%\n", r.AppearBGP.OriginChangePct, r.DisappearBGP.OriginChangePct)
	fmt.Fprintf(&b, "BGP announce/withdraw     | %7.1f%% | %8.1f%%\n", r.AppearBGP.AnnounceWithdrawPct, r.DisappearBGP.AnnounceWithdrawPct)
	fmt.Fprintf(&b, "top-10 AS overlap (appear∩disappear): %d of 10\n", t.TopOverlap)
	return b.String()
}
