// Package analysis reproduces every table and figure of the paper's
// evaluation on top of a simulated world: each ExperimentN function
// computes the figure's underlying data with internal/core and renders
// a paper-style text artifact. See DESIGN.md for the experiment index
// and EXPERIMENTS.md for paper-vs-measured comparisons.
package analysis

import (
	"sync"

	"ipscope/internal/bgp"
	"ipscope/internal/core"
	"ipscope/internal/ipv4"
	"ipscope/internal/obs"
	"ipscope/internal/par"
	"ipscope/internal/rdns"
	"ipscope/internal/scan"
	"ipscope/internal/sim"
	"ipscope/internal/synthnet"
)

// Context bundles an observation dataset with the world it describes
// and the scanning campaign, ready for the experiment drivers. The
// dataset may come from a live simulation or from storage — the
// experiments cannot tell the difference, which is what makes reports
// from either path byte-identical.
type Context struct {
	World    *synthnet.World
	Obs      *obs.Data
	Campaign *scan.Campaign

	featuresOnce sync.Once
	features     []core.BlockFeatures
}

// NewContext generates a world and runs the simulation, the all-in-one
// path used by tests and benchmarks.
func NewContext(wcfg synthnet.Config, scfg sim.Config) *Context {
	w := synthnet.Generate(wcfg)
	res := sim.Run(w, scfg)
	return newContext(w, &res.Data)
}

// NewContextFromSource builds a Context from any observation source —
// a stored dataset file, a decoded network stream, or a live
// *sim.Result. The world is regenerated deterministically from the
// dataset's embedded world config, so a dataset file is all an
// analysis node needs.
func NewContextFromSource(src obs.Source) (*Context, error) {
	d, err := src.Observations()
	if err != nil {
		return nil, err
	}
	w := synthnet.Generate(d.Meta.World)
	if d.Routing != nil && d.Routing.Base == nil {
		d.Routing.Base = w.BaseRouting
	}
	return newContext(w, d), nil
}

// NewContextFromData builds a Context over an already-generated world
// and its dataset, skipping the world regeneration NewContextFromSource
// performs; d must have been produced from (a simulation of) w.
func NewContextFromData(w *synthnet.World, d *obs.Data) *Context {
	return newContext(w, d)
}

func newContext(w *synthnet.World, d *obs.Data) *Context {
	return &Context{World: w, Obs: d, Campaign: scan.FromObs(d)}
}

// ASOf maps a block to its origin AS in the world's base routing table.
func (c *Context) ASOf(blk ipv4.Block) bgp.ASN { return c.World.ASOf(blk) }

// CDNMonth returns the CDN's active set over the month that the ICMP
// campaign ran (the paper compares a full month of CDN logs against
// 8 ICMP snapshots, Section 3.2). The window definition lives on
// obs.Data so the serving layer shares it.
func (c *Context) CDNMonth() *ipv4.Set {
	return c.Obs.CampaignMonthUnion()
}

// TrafficIter adapts the dataset's per-address traffic aggregates to
// core.BinByDaysActive's iterator. Blocks are visited in ascending
// order so downstream floating-point accumulation is deterministic and
// reports stay byte-identical run to run.
func (c *Context) TrafficIter() func(yield func(core.IPTraffic)) {
	return func(yield func(core.IPTraffic)) {
		for _, blk := range c.Obs.TrafficBlocks() {
			bt := c.Obs.Traffic[blk]
			for h := 0; h < 256; h++ {
				if bt.DaysActive[h] == 0 {
					continue
				}
				yield(core.IPTraffic{
					Addr:       blk.Addr(byte(h)),
					DaysActive: int(bt.DaysActive[h]),
					Hits:       bt.Hits[h],
				})
			}
		}
	}
}

// BlockFeatures assembles the three demographics features for every
// block active in the daily window, one worker-pool task per block.
// Feature extraction only reads the dataset's aggregates, and output
// order follows the sorted block list, so the fan-out is deterministic.
// The result is memoized: several concurrently-running experiment
// drivers (Figures 11 and 12) need the same extraction, and callers
// must not mutate the returned slice.
func (c *Context) BlockFeatures() []core.BlockFeatures {
	c.featuresOnce.Do(func() { c.features = c.blockFeatures() })
	return c.features
}

func (c *Context) blockFeatures() []core.BlockFeatures {
	blocks := core.ActiveBlocks(c.Obs.Daily)
	return par.Map(len(blocks), 0, func(i int) core.BlockFeatures {
		blk := blocks[i]
		f := core.BlockFeatures{
			Block: blk,
			STU:   core.STU(c.Obs.Daily, blk),
			Hosts: 1,
		}
		if bt := c.Obs.Traffic[blk]; bt != nil {
			for h := 0; h < 256; h++ {
				f.Traffic += bt.Hits[h]
			}
		}
		if ua := c.Obs.UA[blk]; ua != nil {
			if u := ua.Unique(); u > 1 {
				f.Hosts = u
			}
		}
		return f
	})
}

// RDNSTags classifies every active block by its PTR naming (static /
// dynamic / untagged), the Section 5.3 methodology. Zone synthesis and
// classification are pure per block, so blocks classify concurrently.
func (c *Context) RDNSTags(blocks []ipv4.Block) map[ipv4.Block]rdns.Tag {
	tags := par.Map(len(blocks), 0, func(i int) rdns.Tag {
		if info, ok := c.World.BlockInfo(blocks[i]); ok {
			return rdns.ClassifyZone(c.World.RDNSZone(info), 0.6)
		}
		return rdns.Untagged
	})
	out := make(map[ipv4.Block]rdns.Tag, len(blocks))
	for i, blk := range blocks {
		out[blk] = tags[i]
	}
	return out
}
