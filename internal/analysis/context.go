// Package analysis reproduces every table and figure of the paper's
// evaluation on top of a simulated world: each ExperimentN function
// computes the figure's underlying data with internal/core and renders
// a paper-style text artifact. See DESIGN.md for the experiment index
// and EXPERIMENTS.md for paper-vs-measured comparisons.
package analysis

import (
	"sync"

	"ipscope/internal/bgp"
	"ipscope/internal/core"
	"ipscope/internal/ipv4"
	"ipscope/internal/par"
	"ipscope/internal/rdns"
	"ipscope/internal/scan"
	"ipscope/internal/sim"
	"ipscope/internal/synthnet"
)

// Context bundles a simulated world with its observation run and the
// scanning campaign, ready for the experiment drivers.
type Context struct {
	World    *synthnet.World
	Res      *sim.Result
	Campaign *scan.Campaign

	featuresOnce sync.Once
	features     []core.BlockFeatures
}

// NewContext generates a world and runs the simulation.
func NewContext(wcfg synthnet.Config, scfg sim.Config) *Context {
	w := synthnet.Generate(wcfg)
	res := sim.Run(w, scfg)
	return &Context{World: w, Res: res, Campaign: scan.FromResult(res)}
}

// ASOf maps a block to its origin AS in the world's base routing table.
func (c *Context) ASOf(blk ipv4.Block) bgp.ASN { return c.World.ASOf(blk) }

// CDNMonth returns the CDN's active set over the month that the ICMP
// campaign ran (the paper compares a full month of CDN logs against
// 8 ICMP snapshots, Section 3.2).
func (c *Context) CDNMonth() *ipv4.Set {
	cfg := c.Res.Config
	if len(cfg.ICMPScanDays) == 0 {
		return c.Res.DailyWindowUnion()
	}
	first := cfg.ICMPScanDays[0]
	last := cfg.ICMPScanDays[len(cfg.ICMPScanDays)-1]
	// Expand to a full month around the scans, clamped to the window.
	from := first - cfg.DailyStart
	to := last - cfg.DailyStart + 1
	if span := to - from; span < 28 {
		from -= (28 - span) / 2
		to = from + 28
	}
	if from < 0 {
		from = 0
	}
	return core.WindowUnion(c.Res.Daily, from, to)
}

// TrafficIter adapts the simulator's per-address traffic aggregates to
// core.BinByDaysActive's iterator.
func (c *Context) TrafficIter() func(yield func(core.IPTraffic)) {
	return func(yield func(core.IPTraffic)) {
		for blk, bt := range c.Res.Traffic {
			for h := 0; h < 256; h++ {
				if bt.DaysActive[h] == 0 {
					continue
				}
				yield(core.IPTraffic{
					Addr:       blk.Addr(byte(h)),
					DaysActive: int(bt.DaysActive[h]),
					Hits:       bt.Hits[h],
				})
			}
		}
	}
}

// BlockFeatures assembles the three demographics features for every
// block active in the daily window, one worker-pool task per block.
// Feature extraction only reads the run's aggregates, and output order
// follows the sorted block list, so the fan-out is deterministic. The
// result is memoized: several concurrently-running experiment drivers
// (Figures 11 and 12) need the same extraction, and callers must not
// mutate the returned slice.
func (c *Context) BlockFeatures() []core.BlockFeatures {
	c.featuresOnce.Do(func() { c.features = c.blockFeatures() })
	return c.features
}

func (c *Context) blockFeatures() []core.BlockFeatures {
	blocks := core.ActiveBlocks(c.Res.Daily)
	return par.Map(len(blocks), 0, func(i int) core.BlockFeatures {
		blk := blocks[i]
		f := core.BlockFeatures{
			Block: blk,
			STU:   core.STU(c.Res.Daily, blk),
			Hosts: 1,
		}
		if bt := c.Res.Traffic[blk]; bt != nil {
			for h := 0; h < 256; h++ {
				f.Traffic += bt.Hits[h]
			}
		}
		if ua := c.Res.UA[blk]; ua != nil {
			if u := ua.Unique(); u > 1 {
				f.Hosts = u
			}
		}
		return f
	})
}

// RDNSTags classifies every active block by its PTR naming (static /
// dynamic / untagged), the Section 5.3 methodology. Zone synthesis and
// classification are pure per block, so blocks classify concurrently.
func (c *Context) RDNSTags(blocks []ipv4.Block) map[ipv4.Block]rdns.Tag {
	tags := par.Map(len(blocks), 0, func(i int) rdns.Tag {
		if info, ok := c.World.BlockInfo(blocks[i]); ok {
			return rdns.ClassifyZone(c.World.RDNSZone(info), 0.6)
		}
		return rdns.Untagged
	})
	out := make(map[ipv4.Block]rdns.Tag, len(blocks))
	for i, blk := range blocks {
		out[blk] = tags[i]
	}
	return out
}
