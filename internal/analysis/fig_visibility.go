package analysis

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"ipscope/internal/cdnlog"
	"ipscope/internal/core"
	"ipscope/internal/registry"
	"ipscope/internal/sim"
	"ipscope/internal/stats"
	"ipscope/internal/textplot"
)

// Fig1 is Figure 1: monthly active IPv4 addresses 2008–2016 with a
// linear regression fitted on the pre-2014 months and RIR exhaustion
// markers.
type Fig1 struct {
	Months []sim.MonthPoint
	// Fit is the regression over months before Knee.
	Fit  stats.LinearFit
	Knee int // index of 2014-01
	// Exhaustions maps registry name to the month index of exhaustion.
	Exhaustions map[string]int
	// StagnationRatio compares post-knee to pre-knee monthly growth;
	// the paper's stagnation means this is near zero.
	StagnationRatio float64
}

// Figure1 builds the Fig1 artifact.
func Figure1(seed uint64) *Fig1 {
	months := sim.MacroGrowth(seed)
	knee := sim.MonthIndex(months, time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC))
	var xs, ys []float64
	for i := 0; i < knee; i++ {
		xs = append(xs, float64(i))
		ys = append(ys, months[i].ActiveIPs)
	}
	f := &Fig1{
		Months:      months,
		Fit:         stats.FitLine(xs, ys),
		Knee:        knee,
		Exhaustions: make(map[string]int),
	}
	for _, r := range registry.AllRIRs {
		if d, ok := r.ExhaustionDate(); ok {
			f.Exhaustions[r.String()] = sim.MonthIndex(months, d)
		}
	}
	f.Exhaustions["IANA"] = sim.MonthIndex(months, registry.IANAExhaustion)
	pre := (months[knee].ActiveIPs - months[0].ActiveIPs) / float64(knee)
	post := (months[len(months)-1].ActiveIPs - months[knee].ActiveIPs) / float64(len(months)-knee)
	if pre != 0 {
		f.StagnationRatio = post / pre
	}
	return f
}

// Render returns the figure as text.
func (f *Fig1) Render() string {
	var b strings.Builder
	obs := make([]float64, len(f.Months))
	fit := make([]float64, len(f.Months))
	for i := range f.Months {
		obs[i] = f.Months[i].ActiveIPs
		fit[i] = f.Fit.At(float64(i))
	}
	b.WriteString(textplot.Chart(
		"Figure 1: unique active IPv4 addresses per month (2008-2016)",
		[]textplot.Series{{Name: "active IPv4", Ys: obs}, {Name: "linear fit (pre-2014)", Ys: fit}},
		96, 14))
	fmt.Fprintf(&b, "fit: slope %.3gM addrs/month, R2(pre-2014) %.4f; post/pre growth ratio %.3f\n",
		f.Fit.Slope/1e6, f.Fit.R2, f.StagnationRatio)
	// Sorted registry order keeps the rendered report byte-identical
	// run to run (map iteration order is randomized).
	names := make([]string, 0, len(f.Exhaustions))
	for name := range f.Exhaustions {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if idx := f.Exhaustions[name]; idx < len(f.Months) {
			fmt.Fprintf(&b, "  %s exhaustion: %s\n", name, f.Months[idx].Date.Format("2006-01"))
		}
	}
	return b.String()
}

// Tab1 is Table 1: dataset totals and per-snapshot averages.
type Tab1 struct {
	Daily, Weekly cdnlog.DatasetSummary
}

// Table1 summarizes the daily and weekly datasets.
func Table1(ctx *Context) *Tab1 {
	return &Tab1{
		Daily:  cdnlog.Summarize(ctx.Obs.Daily, ctx.ASOf),
		Weekly: cdnlog.Summarize(ctx.Obs.Weekly, ctx.ASOf),
	}
}

// Render returns Table 1 as text.
func (t *Tab1) Render() string {
	var b strings.Builder
	b.WriteString("Table 1: datasets, totals and averages per snapshot\n")
	b.WriteString("dataset  | IPs total | IPs avg | /24 total | /24 avg | AS total | AS avg\n")
	row := func(label string, s cdnlog.DatasetSummary) {
		fmt.Fprintf(&b, "%-8s | %9d | %7d | %9d | %7d | %8d | %6d\n",
			label, s.TotalIPs, s.AvgIPs, s.TotalBlocks, s.AvgBlocks, s.TotalASes, s.AvgASes)
	}
	row(fmt.Sprintf("Daily:%d", t.Daily.Snapshots), t.Daily)
	row(fmt.Sprintf("Weekly:%d", t.Weekly.Snapshots), t.Weekly)
	return b.String()
}

// Fig2 is Figure 2: visibility of the address space from the CDN vs
// ICMP scanning, at four aggregation granularities (a), and the
// classification of ICMP-only addresses (b).
type Fig2 struct {
	// Levels holds visibility at "ASes", "prefixes", "/24s", "IPs".
	Levels map[string]core.Visibility
	// Classification of ICMP-only addresses at IP granularity.
	Classes map[core.ICMPOnlyClass]int
	// CDNOnlyIPFraction is the paper's headline ">40% invisible to ICMP".
	CDNOnlyIPFraction float64
}

// Figure2 computes Fig2 over the campaign month.
func Figure2(ctx *Context) *Fig2 {
	cdn := ctx.CDNMonth()
	icmp := ctx.Campaign.ICMP
	f := &Fig2{Levels: make(map[string]core.Visibility)}
	f.Levels["IPs"] = core.CompareIPs(cdn, icmp)
	f.Levels["/24s"] = core.CompareBlocks(cdn, icmp)
	f.Levels["prefixes"] = core.CompareGrouped(cdn, icmp, core.PrefixGrouper(ctx.World.BaseRouting))
	f.Levels["ASes"] = core.CompareGrouped(cdn, icmp, core.ASGrouper(ctx.World.BaseRouting))
	f.CDNOnlyIPFraction = f.Levels["IPs"].FractionOnlyA()

	icmpOnly := icmp.Diff(cdn)
	f.Classes = core.ClassifyICMPOnly(icmpOnly, ctx.Campaign.Servers, ctx.Campaign.Routers)
	return f
}

// Render returns Figure 2 as text.
func (f *Fig2) Render() string {
	var b strings.Builder
	labels := []string{"ASes", "prefixes", "/24s", "IPs"}
	var parts [][]float64
	var rowLabels []string
	for _, l := range labels {
		v := f.Levels[l]
		tot := float64(v.Total())
		if tot == 0 {
			tot = 1
		}
		parts = append(parts, []float64{
			float64(v.OnlyA) / tot, float64(v.Both) / tot, float64(v.OnlyB) / tot,
		})
		rowLabels = append(rowLabels, fmt.Sprintf("%s (N=%d)", l, v.Total()))
	}
	b.WriteString(textplot.StackedBar(
		"Figure 2a: visibility CDN vs ICMP (C=CDN only, B=both, I=ICMP only)",
		rowLabels, parts, []byte{'C', 'B', 'I'}, 60))
	fmt.Fprintf(&b, "CDN-only fraction at IP level: %.1f%% (paper: >40%%)\n",
		100*f.CDNOnlyIPFraction)
	b.WriteString("Figure 2b: classification of ICMP-only addresses\n")
	total := 0
	for _, n := range f.Classes {
		total += n
	}
	for _, c := range []core.ICMPOnlyClass{core.ClassServer, core.ClassServerRouter, core.ClassRouter, core.ClassUnknown} {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(f.Classes[c]) / float64(total)
		}
		fmt.Fprintf(&b, "  %-14s %6d (%.1f%%)\n", c, f.Classes[c], pct)
	}
	return b.String()
}

// Fig3 is Figure 3: IP address activity by geographic region.
type Fig3 struct {
	ByRIR     []core.RegionVisibility
	Countries []CountryRow
}

// CountryRow is one bar of Figure 3b with its ITU ranks.
type CountryRow struct {
	core.RegionVisibility
	BroadbandRank, CellularRank int
}

// Figure3 computes the per-RIR and per-country visibility breakdown.
func Figure3(ctx *Context, topK int) *Fig3 {
	cdn := ctx.CDNMonth()
	icmp := ctx.Campaign.ICMP
	f := &Fig3{ByRIR: core.GroupByRIR(cdn, icmp, ctx.World.Registry)}
	for _, rv := range core.GroupByCountry(cdn, icmp, ctx.World.Registry, topK) {
		row := CountryRow{RegionVisibility: rv}
		if ci, ok := registry.CountryByCode(registry.Country(rv.Label)); ok {
			row.BroadbandRank = ci.BroadbandRank
			row.CellularRank = ci.CellularRank
		}
		f.Countries = append(f.Countries, row)
	}
	return f
}

// Render returns Figure 3 as text.
func (f *Fig3) Render() string {
	var b strings.Builder
	b.WriteString("Figure 3a: visibility by RIR (addresses)\n")
	b.WriteString("RIR      | CDN&ICMP | only CDN | only ICMP\n")
	for _, rv := range f.ByRIR {
		fmt.Fprintf(&b, "%-8s | %8d | %8d | %9d\n", rv.Label, rv.Both, rv.OnlyCDN, rv.Only)
	}
	b.WriteString("Figure 3b: top countries (bb = broadband rank, cell = cellular rank)\n")
	b.WriteString("CC | CDN&ICMP | only CDN | only ICMP | bb | cell\n")
	for _, c := range f.Countries {
		fmt.Fprintf(&b, "%-2s | %8d | %8d | %9d | %2d | %4d\n",
			c.Label, c.Both, c.OnlyCDN, c.Only, c.BroadbandRank, c.CellularRank)
	}
	return b.String()
}

// RecaptureResult is the capture–recapture estimate over the two
// observation channels (Section 8's statistical-estimation context).
type RecaptureResult struct {
	Est core.RecaptureEstimate
	Err error
	// TrueActive is the simulator's ground-truth active population in
	// the campaign month (available only because the world is synthetic;
	// lets us validate the estimator).
	TrueActive int
}

// RecaptureEstimate runs capture–recapture on CDN month vs ICMP union.
func RecaptureEstimate(ctx *Context) *RecaptureResult {
	cdn := ctx.CDNMonth()
	icmp := ctx.Campaign.ICMP
	est, err := core.RecaptureSets(cdn, icmp)
	return &RecaptureResult{
		Est:        est,
		Err:        err,
		TrueActive: cdn.Union(icmp).Len(),
	}
}

// Render returns the estimate as text.
func (r *RecaptureResult) Render() string {
	var b strings.Builder
	b.WriteString("Capture-recapture estimate of total active addresses (CDN vs ICMP)\n")
	if r.Err != nil {
		fmt.Fprintf(&b, "  error: %v\n", r.Err)
		return b.String()
	}
	e := r.Est
	fmt.Fprintf(&b, "  n1(CDN)=%d n2(ICMP)=%d overlap=%d\n", e.N1, e.N2, e.Both)
	fmt.Fprintf(&b, "  Lincoln-Petersen: %.0f   Chapman: %.0f ± %.0f (95%% CI %.0f..%.0f)\n",
		e.LincolnPetersen, e.Chapman, 1.96*e.SE, e.CI95Lo, e.CI95Hi)
	fmt.Fprintf(&b, "  observed union: %d   estimated invisible: %.0f\n",
		r.TrueActive, e.InvisibleEstimate())
	return b.String()
}
