package analysis

import (
	"fmt"
	"io"
)

// Renderer is any experiment artifact that renders itself as text.
type Renderer interface{ Render() string }

// RunAll executes every experiment against ctx and writes the full
// report (all tables and figures of the paper) to w.
func RunAll(w io.Writer, ctx *Context, seed uint64) {
	section := func(r Renderer) {
		io.WriteString(w, r.Render())
		io.WriteString(w, "\n")
	}
	fmt.Fprintf(w, "ipscope experiment report (world: %d ASes, %d /24 blocks; %d simulated days)\n\n",
		len(ctx.World.ASes), ctx.World.NumBlocks(), ctx.Res.Config.Days)

	section(Figure1(seed))
	section(Table1(ctx))
	section(Figure2(ctx))
	section(Figure3(ctx, 11))
	section(RecaptureEstimate(ctx))
	section(Figure4(ctx))
	section(Figure5(ctx, 100))
	section(Table2(ctx))
	section(Figure6(ctx))
	section(Figure7(ctx, 2))
	section(Figure8(ctx))
	section(Figure9(ctx))
	section(Figure10(ctx))
	section(Figure11(ctx))
	section(Figure12(ctx))
}
