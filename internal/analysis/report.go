package analysis

import (
	"fmt"
	"io"

	"ipscope/internal/par"
)

// Renderer is any experiment artifact that renders itself as text.
type Renderer interface{ Render() string }

// RunAll executes every experiment against ctx and writes the full
// report (all tables and figures of the paper) to w. The experiment
// drivers are independent read-only consumers of ctx, so they fan out
// across a worker pool; sections render in the paper's fixed order
// regardless of which finishes first.
func RunAll(w io.Writer, ctx *Context, seed uint64) {
	experiments := []func() Renderer{
		func() Renderer { return Figure1(seed) },
		func() Renderer { return Table1(ctx) },
		func() Renderer { return Figure2(ctx) },
		func() Renderer { return Figure3(ctx, 11) },
		func() Renderer { return RecaptureEstimate(ctx) },
		func() Renderer { return Figure4(ctx) },
		func() Renderer { return Figure5(ctx, 100) },
		func() Renderer { return Table2(ctx) },
		func() Renderer { return Figure6(ctx) },
		func() Renderer { return Figure7(ctx, 2) },
		func() Renderer { return Figure8(ctx) },
		func() Renderer { return Figure9(ctx) },
		func() Renderer { return Figure10(ctx) },
		func() Renderer { return Figure11(ctx) },
		func() Renderer { return Figure12(ctx) },
	}

	var g par.Group
	g.SetLimit(par.Workers(0))
	sections := make([]Renderer, len(experiments))
	for i, fn := range experiments {
		i, fn := i, fn
		g.Go(func() error {
			sections[i] = fn()
			return nil
		})
	}
	g.Wait()

	fmt.Fprintf(w, "ipscope experiment report (world: %d ASes, %d /24 blocks; %d simulated days)\n\n",
		len(ctx.World.ASes), ctx.World.NumBlocks(), ctx.Obs.Meta.Run.Days)
	for _, r := range sections {
		io.WriteString(w, r.Render())
		io.WriteString(w, "\n")
	}
}
