// Package par provides the shared parallel-execution primitives the
// engine, ingestion, metrics and analysis layers are built on: a
// bounded worker pool over contiguous shards, an errgroup-style Group,
// and sharded containers with per-shard locks.
//
// Determinism contract: every fan-out helper assigns work to shards as
// contiguous index ranges (Split) and every merge helper visits shards
// in ascending shard order, so a seeded computation produces identical
// results for any worker count, including 1. Callers that accumulate
// floating-point values must merge per-item (not per-shard partial
// sums) to keep results bit-identical across worker counts.
package par

import (
	"runtime"
	"sync"
)

// Workers resolves a requested worker count: values <= 0 mean
// GOMAXPROCS. The result is always >= 1.
func Workers(n int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Range is a half-open index interval [Lo, Hi).
type Range struct{ Lo, Hi int }

// Split partitions [0, n) into at most w contiguous, balanced, non-empty
// ranges. It returns nil when n == 0. The split depends only on n and w,
// never on scheduling, so shard boundaries are deterministic.
func Split(n, w int) []Range {
	if n <= 0 {
		return nil
	}
	w = Workers(w)
	if w > n {
		w = n
	}
	out := make([]Range, 0, w)
	size, rem := n/w, n%w
	lo := 0
	for i := 0; i < w; i++ {
		hi := lo + size
		if i < rem {
			hi++
		}
		out = append(out, Range{Lo: lo, Hi: hi})
		lo = hi
	}
	return out
}

// ForEachShard runs fn(shard, lo, hi) for each range of Split(n, w),
// one goroutine per shard, and waits for all of them. fn receives its
// shard index so it can write into preallocated per-shard slots without
// locking. Shards are contiguous: shard i covers indices before shard
// i+1.
func ForEachShard(n, w int, fn func(shard, lo, hi int)) {
	ranges := Split(n, w)
	if len(ranges) == 0 {
		return
	}
	if len(ranges) == 1 {
		fn(0, ranges[0].Lo, ranges[0].Hi)
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(ranges))
	for i, r := range ranges {
		go func(shard int, r Range) {
			defer wg.Done()
			fn(shard, r.Lo, r.Hi)
		}(i, r)
	}
	wg.Wait()
}

// ForEach runs fn(i) for every i in [0, n) across w workers, each
// worker owning one contiguous chunk.
func ForEach(n, w int, fn func(i int)) {
	ForEachShard(n, w, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Map computes fn(i) for every i in [0, n) across w workers and returns
// the results indexed by i. Output order is deterministic regardless of
// scheduling.
func Map[T any](n, w int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	ForEach(n, w, func(i int) { out[i] = fn(i) })
	return out
}

// Group runs a set of tasks concurrently, collecting the first error;
// a drop-in for x/sync/errgroup without the external dependency.
// The zero value is ready to use and places no limit on concurrency.
type Group struct {
	wg   sync.WaitGroup
	sem  chan struct{}
	once sync.Once
	err  error
}

// SetLimit bounds the number of concurrently running tasks. It must be
// called before the first Go.
func (g *Group) SetLimit(n int) {
	if n > 0 {
		g.sem = make(chan struct{}, n)
	}
}

// Go runs fn in a new goroutine (subject to the limit). A non-nil error
// is retained; the first one wins.
func (g *Group) Go(fn func() error) {
	g.wg.Add(1)
	if g.sem != nil {
		g.sem <- struct{}{}
	}
	go func() {
		defer func() {
			if g.sem != nil {
				<-g.sem
			}
			g.wg.Done()
		}()
		if err := fn(); err != nil {
			g.once.Do(func() { g.err = err })
		}
	}()
}

// Wait blocks until every task launched with Go has returned, then
// reports the first error.
func (g *Group) Wait() error {
	g.wg.Wait()
	return g.err
}
