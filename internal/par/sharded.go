package par

import "sync"

// Sharded is a fixed set of independently locked slots of state T.
// Writers hash their keys to a shard and mutate that shard's T under
// its own lock, so contention scales with the shard count instead of a
// single global mutex. Reads that need a consistent merged view visit
// shards one at a time in ascending order — no global lock ever exists,
// which is what keeps merge cost off the write path.
type Sharded[T any] struct {
	shards []shardSlot[T]
}

type shardSlot[T any] struct {
	mu sync.Mutex
	v  T
}

// NewSharded creates n shards (minimum 1), initializing each slot with
// init (which may be nil for zero values).
func NewSharded[T any](n int, init func() T) *Sharded[T] {
	if n < 1 {
		n = 1
	}
	s := &Sharded[T]{shards: make([]shardSlot[T], n)}
	if init != nil {
		for i := range s.shards {
			s.shards[i].v = init()
		}
	}
	return s
}

// NumShards returns the shard count.
func (s *Sharded[T]) NumShards() int { return len(s.shards) }

// ShardFor maps a 64-bit key hash to a shard index.
func (s *Sharded[T]) ShardFor(hash uint64) int {
	return int(hash % uint64(len(s.shards)))
}

// Do runs fn on shard i's state under that shard's lock.
func (s *Sharded[T]) Do(i int, fn func(*T)) {
	sh := &s.shards[i]
	sh.mu.Lock()
	fn(&sh.v)
	sh.mu.Unlock()
}

// Range visits every shard in ascending order, each under its own lock,
// so merged reads are deterministic without a stop-the-world lock.
func (s *Sharded[T]) Range(fn func(shard int, v *T)) {
	for i := range s.shards {
		s.Do(i, func(v *T) { fn(i, v) })
	}
}

// Hash64 is splitmix64: a fast, well-diffused integer hash for shard
// selection (duplicated from xrand to keep par dependency-free).
func Hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ShardedMap is a concurrent map with per-shard locks, for hot
// accumulation paths where a single mutex would serialize writers.
type ShardedMap[K comparable, V any] struct {
	s    *Sharded[map[K]V]
	hash func(K) uint64
}

// NewShardedMap creates a sharded map with n shards; hash maps a key to
// a well-distributed 64-bit value (compose with Hash64 for integer
// keys).
func NewShardedMap[K comparable, V any](n int, hash func(K) uint64) *ShardedMap[K, V] {
	return &ShardedMap[K, V]{
		s:    NewSharded(n, func() map[K]V { return make(map[K]V) }),
		hash: hash,
	}
}

// Update applies fn to the current value for k (zero value if absent)
// and stores the result, all under the owning shard's lock.
func (m *ShardedMap[K, V]) Update(k K, fn func(V) V) {
	m.s.Do(m.s.ShardFor(m.hash(k)), func(mp *map[K]V) {
		(*mp)[k] = fn((*mp)[k])
	})
}

// Get returns the value for k.
func (m *ShardedMap[K, V]) Get(k K) (V, bool) {
	var v V
	var ok bool
	m.s.Do(m.s.ShardFor(m.hash(k)), func(mp *map[K]V) {
		v, ok = (*mp)[k]
	})
	return v, ok
}

// Len returns the total number of keys across shards.
func (m *ShardedMap[K, V]) Len() int {
	n := 0
	m.s.Range(func(_ int, mp *map[K]V) { n += len(*mp) })
	return n
}

// Range visits every key/value, shard by shard in ascending shard
// order. Iteration order within a shard is map order (unspecified).
func (m *ShardedMap[K, V]) Range(fn func(K, V)) {
	m.s.Range(func(_ int, mp *map[K]V) {
		for k, v := range *mp {
			fn(k, v)
		}
	})
}

// Merge snapshots the map into a plain map without ever holding more
// than one shard lock at a time.
func (m *ShardedMap[K, V]) Merge() map[K]V {
	out := make(map[K]V, m.Len())
	m.Range(func(k K, v V) { out[k] = v })
	return out
}
