package par

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestSplitCoversAndBalances(t *testing.T) {
	cases := []struct{ n, w int }{
		{0, 4}, {1, 1}, {1, 8}, {7, 3}, {8, 8}, {100, 7}, {5, 100},
	}
	for _, c := range cases {
		rs := Split(c.n, c.w)
		if c.n == 0 {
			if rs != nil {
				t.Fatalf("Split(0,%d) = %v, want nil", c.w, rs)
			}
			continue
		}
		if len(rs) > c.w && c.w > 0 {
			t.Fatalf("Split(%d,%d): %d shards > %d workers", c.n, c.w, len(rs), c.w)
		}
		next := 0
		for _, r := range rs {
			if r.Lo != next || r.Hi <= r.Lo {
				t.Fatalf("Split(%d,%d) = %v: not contiguous non-empty", c.n, c.w, rs)
			}
			next = r.Hi
		}
		if next != c.n {
			t.Fatalf("Split(%d,%d) covers [0,%d), want [0,%d)", c.n, c.w, next, c.n)
		}
		// Balanced: sizes differ by at most one.
		min, max := c.n, 0
		for _, r := range rs {
			s := r.Hi - r.Lo
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		if max-min > 1 {
			t.Fatalf("Split(%d,%d) unbalanced: %v", c.n, c.w, rs)
		}
	}
}

// TestSplitDeterministic: shard boundaries are a pure function of (n, w).
func TestSplitDeterministic(t *testing.T) {
	a, b := Split(1000, 7), Split(1000, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Split not deterministic")
	}
}

func TestForEachShardEdgeCases(t *testing.T) {
	// w=1: a single shard covering everything, run inline.
	var got []Range
	ForEachShard(10, 1, func(shard, lo, hi int) {
		got = append(got, Range{lo, hi})
	})
	if !reflect.DeepEqual(got, []Range{{0, 10}}) {
		t.Fatalf("w=1: %v", got)
	}
	// w > n: no more shards than items, every item visited once.
	var visits [5]int32
	ForEachShard(5, 64, func(shard, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&visits[i], 1)
		}
	})
	for i, v := range visits {
		if v != 1 {
			t.Fatalf("item %d visited %d times", i, v)
		}
	}
	// n=0: fn never called.
	ForEachShard(0, 4, func(int, int, int) { t.Fatal("called for n=0") })
}

// TestMapDeterministicAcrossWorkerCounts is the package's determinism
// contract: identical output for any worker count.
func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	fn := func(i int) uint64 { return Hash64(uint64(i)) }
	want := Map(1000, 1, fn)
	for _, w := range []int{2, 3, 8, 1000, 5000} {
		if got := Map(1000, w, fn); !reflect.DeepEqual(got, want) {
			t.Fatalf("Map differs at w=%d", w)
		}
	}
}

func TestForEachCountsEveryIndex(t *testing.T) {
	var sum atomic.Int64
	ForEach(1000, 8, func(i int) { sum.Add(int64(i)) })
	if sum.Load() != 999*1000/2 {
		t.Fatalf("sum = %d", sum.Load())
	}
}

func TestGroupCollectsFirstError(t *testing.T) {
	var g Group
	g.SetLimit(2)
	boom := errors.New("boom")
	for i := 0; i < 8; i++ {
		i := i
		g.Go(func() error {
			if i == 3 {
				return boom
			}
			return nil
		})
	}
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want boom", err)
	}
	var ok Group
	ok.Go(func() error { return nil })
	if err := ok.Wait(); err != nil {
		t.Fatalf("Wait = %v, want nil", err)
	}
}

func TestShardedConcurrentCounts(t *testing.T) {
	s := NewSharded(8, func() int { return 0 })
	const n, perKey = 1000, 4
	ForEach(n*perKey, 16, func(i int) {
		s.Do(s.ShardFor(Hash64(uint64(i%n))), func(v *int) { *v++ })
	})
	total := 0
	s.Range(func(_ int, v *int) { total += *v })
	if total != n*perKey {
		t.Fatalf("total = %d, want %d", total, n*perKey)
	}
}

// TestShardedRangeOrder: merges visit shards in ascending order.
func TestShardedRangeOrder(t *testing.T) {
	s := NewSharded(5, func() int { return 0 })
	var order []int
	s.Range(func(i int, _ *int) { order = append(order, i) })
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("order = %v", order)
	}
}

func TestShardedMap(t *testing.T) {
	m := NewShardedMap[uint32, uint64](16, func(k uint32) uint64 { return Hash64(uint64(k)) })
	const keys = 500
	ForEach(keys*3, 8, func(i int) {
		m.Update(uint32(i%keys), func(v uint64) uint64 { return v + 1 })
	})
	if m.Len() != keys {
		t.Fatalf("Len = %d, want %d", m.Len(), keys)
	}
	if v, ok := m.Get(7); !ok || v != 3 {
		t.Fatalf("Get(7) = %d,%v", v, ok)
	}
	merged := m.Merge()
	if len(merged) != keys {
		t.Fatalf("merged %d keys", len(merged))
	}
	for k, v := range merged {
		if v != 3 {
			t.Fatalf("key %d count %d", k, v)
		}
	}
	// Shard-count edge cases: one shard, and more shards than keys.
	for _, n := range []int{1, 4096} {
		m := NewShardedMap[uint32, int](n, func(k uint32) uint64 { return Hash64(uint64(k)) })
		m.Update(1, func(v int) int { return v + 1 })
		if v, _ := m.Get(1); v != 1 {
			t.Fatalf("n=%d: v=%d", n, v)
		}
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("Workers(3)")
	}
	if Workers(0) < 1 || Workers(-5) < 1 {
		t.Fatal("Workers must be >= 1")
	}
}
