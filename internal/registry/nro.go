package registry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"ipscope/internal/ipv4"
)

// This file implements the NRO "extended allocation and assignment"
// delegation format (delegated-extended), the publicly available data
// the paper uses for its geographic breakdown (Section 3.4):
//
//	registry|cc|type|start|value|date|status[|opaque-id]
//
// For IPv4 records, value is the number of addresses delegated
// (a power of two times 256 in practice; we require it to describe a
// CIDR-aligned range and split non-aligned ranges on write).

// WriteNRO writes the table in delegated-extended format, including the
// version and summary header lines.
func WriteNRO(w io.Writer, allocs []Allocation) error {
	bw := bufio.NewWriter(w)
	total := 0
	for range allocs {
		total++
	}
	if _, err := fmt.Fprintf(bw, "2|nro|%s|%d|%d|%s|+0000\n",
		"19700101", total, total, "19700101"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "nro|*|ipv4|*|%d|summary\n", total); err != nil {
		return err
	}
	for _, a := range allocs {
		date := a.Date
		if date.IsZero() {
			date = time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
		}
		cc := string(a.Country)
		if cc == "" {
			cc = "ZZ"
		}
		_, err := fmt.Fprintf(bw, "%s|%s|ipv4|%s|%d|%s|allocated\n",
			strings.ToLower(rirNROName(a.RIR)), cc,
			a.Prefix.Addr(), a.Prefix.NumAddrs(), date.Format("20060102"))
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

func rirNROName(r RIR) string {
	if r == RIPE {
		return "ripencc"
	}
	return strings.ToLower(r.String())
}

// ParseNRO reads delegated-extended records from r, returning the IPv4
// allocations found. Header, summary, ipv6 and asn records are skipped.
// Ranges whose size is not a power of two are split into maximal
// CIDR-aligned prefixes.
func ParseNRO(r io.Reader) ([]Allocation, error) {
	var out []Allocation
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "|")
		if len(fields) < 7 {
			continue // header line
		}
		if fields[2] != "ipv4" || fields[3] == "*" {
			continue // summary, ipv6, asn
		}
		rir, ok := ParseRIR(fields[0])
		if !ok {
			return nil, fmt.Errorf("nro: line %d: unknown registry %q", lineNo, fields[0])
		}
		start, err := ipv4.ParseAddr(fields[3])
		if err != nil {
			return nil, fmt.Errorf("nro: line %d: %v", lineNo, err)
		}
		count, err := strconv.ParseUint(fields[4], 10, 33)
		if err != nil || count == 0 {
			return nil, fmt.Errorf("nro: line %d: bad count %q", lineNo, fields[4])
		}
		date, _ := time.Parse("20060102", fields[5])
		cc := Country(fields[1])
		for _, p := range splitRange(start, count) {
			out = append(out, Allocation{Prefix: p, Country: cc, RIR: rir, Date: date})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// splitRange decomposes [start, start+count) into maximal CIDR prefixes.
func splitRange(start ipv4.Addr, count uint64) []ipv4.Prefix {
	var out []ipv4.Prefix
	cur := uint64(start)
	remaining := count
	for remaining > 0 {
		// Largest power-of-two block that is aligned at cur and fits.
		size := uint64(1) << 32
		if cur != 0 {
			size = cur & (^cur + 1) // lowest set bit of cur
		}
		for size > remaining {
			size >>= 1
		}
		bits := 32
		for s := size; s > 1; s >>= 1 {
			bits--
		}
		p, _ := ipv4.NewPrefix(ipv4.Addr(cur), bits)
		out = append(out, p)
		cur += size
		remaining -= size
	}
	return out
}

// RankedCountries returns country codes ordered by the given rank
// accessor (ascending rank, i.e. largest subscriber base first),
// skipping unranked entries.
func RankedCountries(rank func(CountryInfo) int) []Country {
	type kv struct {
		c Country
		r int
	}
	var xs []kv
	for _, ci := range Countries {
		if r := rank(ci); r > 0 {
			xs = append(xs, kv{ci.Code, r})
		}
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i].r < xs[j].r })
	out := make([]Country, len(xs))
	for i, x := range xs {
		out[i] = x.c
	}
	return out
}
