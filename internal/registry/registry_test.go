package registry

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"ipscope/internal/ipv4"
)

func TestRIRNamesAndParse(t *testing.T) {
	for _, r := range AllRIRs {
		name := r.String()
		back, ok := ParseRIR(name)
		if !ok || back != r {
			t.Errorf("round trip failed for %v", name)
		}
	}
	if RIR(250).String() != "UNKNOWN" {
		t.Error("out-of-range RIR should be UNKNOWN")
	}
	if r, ok := ParseRIR("ripencc"); !ok || r != RIPE {
		t.Error("ripencc should parse as RIPE")
	}
	if _, ok := ParseRIR("bogus"); ok {
		t.Error("bogus registry parsed")
	}
}

func TestExhaustionDatesOrdered(t *testing.T) {
	// Paper: APNIC (2011) < RIPE (2012) < LACNIC (2014) < ARIN (2015).
	order := []RIR{APNIC, RIPE, LACNIC, ARIN}
	var prev time.Time
	for _, r := range order {
		d, ok := r.ExhaustionDate()
		if !ok {
			t.Fatalf("%v missing exhaustion date", r)
		}
		if !d.After(prev) {
			t.Fatalf("%v exhaustion %v not after %v", r, d, prev)
		}
		prev = d
	}
	if _, ok := AFRINIC.ExhaustionDate(); ok {
		t.Error("AFRINIC should not be exhausted in study period")
	}
	if !IANAExhaustion.Before(mustDate(APNIC)) {
		t.Error("IANA exhaustion should precede APNIC")
	}
}

func mustDate(r RIR) time.Time {
	d, _ := r.ExhaustionDate()
	return d
}

func TestCountryTableConsistent(t *testing.T) {
	seen := map[Country]bool{}
	perRIR := map[RIR]int{}
	for _, c := range Countries {
		if seen[c.Code] {
			t.Errorf("duplicate country %v", c.Code)
		}
		seen[c.Code] = true
		perRIR[c.RIR]++
		if c.Weight <= 0 {
			t.Errorf("%v has nonpositive weight", c.Code)
		}
		if c.ICMPResponseRate <= 0 || c.ICMPResponseRate > 1 {
			t.Errorf("%v has invalid ICMP rate %v", c.Code, c.ICMPResponseRate)
		}
	}
	for _, r := range AllRIRs {
		if perRIR[r] == 0 {
			t.Errorf("no countries for %v", r)
		}
	}
	// The paper's key contrast: CN responds to ICMP far more than JP.
	cn, _ := CountryByCode("CN")
	jp, _ := CountryByCode("JP")
	if cn.ICMPResponseRate <= jp.ICMPResponseRate {
		t.Error("CN ICMP response rate must exceed JP per paper §3.4")
	}
	if _, ok := CountryByCode("XX"); ok {
		t.Error("unknown country found")
	}
}

func TestCountriesOf(t *testing.T) {
	for _, c := range CountriesOf(AFRINIC) {
		if c.RIR != AFRINIC {
			t.Errorf("CountriesOf(AFRINIC) returned %v", c.Code)
		}
	}
}

func TestTableLookup(t *testing.T) {
	allocs := []Allocation{
		{Prefix: ipv4.MustParsePrefix("10.0.0.0/16"), Country: "US", RIR: ARIN},
		{Prefix: ipv4.MustParsePrefix("10.1.0.0/16"), Country: "DE", RIR: RIPE},
	}
	tbl := NewTable(allocs)
	if got := tbl.CountryOf(ipv4.MustParseAddr("10.0.5.1").Block()); got != "US" {
		t.Errorf("CountryOf = %v", got)
	}
	if got := tbl.RIROf(ipv4.MustParseAddr("10.1.200.1").Block()); got != RIPE {
		t.Errorf("RIROf = %v", got)
	}
	if _, ok := tbl.Lookup(ipv4.MustParseAddr("192.0.2.1")); ok {
		t.Error("lookup outside allocations should fail")
	}
	if got := tbl.RIROf(ipv4.MustParseAddr("192.0.2.1").Block()); got != ARIN {
		t.Error("unallocated space should default to ARIN")
	}
	if len(tbl.Allocations()) != 2 {
		t.Error("Allocations() length wrong")
	}
}

func TestTableOverlapLaterWins(t *testing.T) {
	allocs := []Allocation{
		{Prefix: ipv4.MustParsePrefix("10.0.0.0/16"), Country: "US", RIR: ARIN},
		{Prefix: ipv4.MustParsePrefix("10.0.1.0/24"), Country: "BR", RIR: LACNIC},
	}
	tbl := NewTable(allocs)
	if got := tbl.CountryOf(ipv4.MustParseAddr("10.0.1.9").Block()); got != "BR" {
		t.Errorf("overlap: got %v, want BR", got)
	}
	if got := tbl.CountryOf(ipv4.MustParseAddr("10.0.2.9").Block()); got != "US" {
		t.Errorf("non-overlapped block: got %v, want US", got)
	}
}

func TestNRORoundTrip(t *testing.T) {
	allocs := []Allocation{
		{Prefix: ipv4.MustParsePrefix("10.0.0.0/16"), Country: "US", RIR: ARIN,
			Date: time.Date(2005, 3, 1, 0, 0, 0, 0, time.UTC)},
		{Prefix: ipv4.MustParsePrefix("77.0.0.0/12"), Country: "DE", RIR: RIPE,
			Date: time.Date(2009, 7, 15, 0, 0, 0, 0, time.UTC)},
		{Prefix: ipv4.MustParsePrefix("196.1.2.0/24"), Country: "ZA", RIR: AFRINIC},
	}
	var buf bytes.Buffer
	if err := WriteNRO(&buf, allocs); err != nil {
		t.Fatal(err)
	}
	got, err := ParseNRO(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(allocs) {
		t.Fatalf("round trip count %d, want %d", len(got), len(allocs))
	}
	for i := range allocs {
		if got[i].Prefix != allocs[i].Prefix || got[i].Country != allocs[i].Country || got[i].RIR != allocs[i].RIR {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], allocs[i])
		}
	}
}

func TestParseNROSkipsNonIPv4(t *testing.T) {
	in := `2|nro|20160101|3|3|20160101|+0000
nro|*|ipv4|*|2|summary
arin|US|asn|64500|1|20100101|allocated
ripencc|DE|ipv6|2001:db8::|32|20100101|allocated
apnic|JP|ipv4|1.2.3.0|256|20100101|allocated
`
	got, err := ParseNRO(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Country != "JP" || got[0].Prefix.String() != "1.2.3.0/24" {
		t.Fatalf("got %+v", got)
	}
}

func TestParseNROSplitsNonCIDR(t *testing.T) {
	// 768 addresses starting at 1.2.3.0 = /24 + /23... actually
	// 1.2.3.0/24 (256) then 1.2.4.0/23 (512).
	in := "arin|US|ipv4|1.2.3.0|768|20100101|allocated\n"
	got, err := ParseNRO(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	total := uint64(0)
	for _, a := range got {
		total += a.Prefix.NumAddrs()
		if !a.Prefix.Contains(a.Prefix.Addr()) {
			t.Error("prefix must contain its own base")
		}
	}
	if total != 768 {
		t.Fatalf("split covers %d addrs, want 768 (%v)", total, got)
	}
}

func TestParseNROErrors(t *testing.T) {
	bad := []string{
		"mars|US|ipv4|1.2.3.0|256|20100101|allocated\n",
		"arin|US|ipv4|not-an-ip|256|20100101|allocated\n",
		"arin|US|ipv4|1.2.3.0|zero|20100101|allocated\n",
		"arin|US|ipv4|1.2.3.0|0|20100101|allocated\n",
	}
	for _, in := range bad {
		if _, err := ParseNRO(strings.NewReader(in)); err == nil {
			t.Errorf("expected error for %q", in)
		}
	}
}

func TestSplitRangeProperty(t *testing.T) {
	f := func(startRaw uint32, countRaw uint16) bool {
		count := uint64(countRaw%2048) + 1
		start := ipv4.Addr(startRaw &^ 0xff) // block aligned start
		if uint64(start)+count > 1<<32 {
			return true
		}
		ps := splitRange(start, count)
		// Prefixes must tile the range exactly, in order, without overlap.
		cur := uint64(start)
		for _, p := range ps {
			if uint64(p.Addr()) != cur {
				return false
			}
			cur += p.NumAddrs()
		}
		return cur == uint64(start)+count
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRankedCountries(t *testing.T) {
	bb := RankedCountries(func(c CountryInfo) int { return c.BroadbandRank })
	if len(bb) == 0 || bb[0] != "CN" {
		t.Errorf("broadband rank 1 should be CN, got %v", bb)
	}
	cell := RankedCountries(func(c CountryInfo) int { return c.CellularRank })
	if cell[0] != "CN" || cell[1] != "IN" {
		t.Errorf("cellular ranking wrong: %v", cell[:2])
	}
}
