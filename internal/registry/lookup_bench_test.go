package registry

import (
	"testing"

	"ipscope/internal/ipv4"
)

// benchAllocs builds a realistic allocation list: many small prefixes
// plus a few giant delegations (which the old per-block map exploded
// into tens of thousands of entries).
func benchAllocs() []Allocation {
	var out []Allocation
	codes := []Country{"US", "DE", "CN", "BR", "JP", "GB", "IN", "FR"}
	for i := 0; i < 2048; i++ {
		blk := ipv4.Block(0x010000 + uint32(i)*4)
		out = append(out, Allocation{
			Prefix:  ipv4.MustNewPrefix(blk.First(), 22),
			Country: codes[i%len(codes)],
			RIR:     AllRIRs[i%NumRIRs],
		})
	}
	// Two /8-scale delegations.
	out = append(out,
		Allocation{Prefix: ipv4.MustParsePrefix("60.0.0.0/8"), Country: "CN", RIR: APNIC},
		Allocation{Prefix: ipv4.MustParsePrefix("90.0.0.0/8"), Country: "DE", RIR: RIPE},
	)
	return out
}

// linearLookupBlock is the naive reference: scan every allocation and
// keep the last one covering the block (matching later-wins semantics).
func linearLookupBlock(allocs []Allocation, blk ipv4.Block) (Allocation, bool) {
	var out Allocation
	found := false
	a := blk.First()
	for _, al := range allocs {
		if al.Prefix.Contains(a) || al.Prefix.FirstBlock() == blk {
			out, found = al, true
		}
	}
	return out, found
}

func TestTableMatchesLinearReference(t *testing.T) {
	allocs := benchAllocs()
	tbl := NewTable(allocs)
	probe := []ipv4.Block{
		ipv4.Block(0x010000), ipv4.Block(0x010001), ipv4.Block(0x010FFF),
		ipv4.MustParseAddr("60.1.2.3").Block(),
		ipv4.MustParseAddr("90.200.2.3").Block(),
		ipv4.MustParseAddr("200.0.0.1").Block(),
	}
	for _, blk := range probe {
		want, wantOK := linearLookupBlock(allocs, blk)
		got, gotOK := tbl.LookupBlock(blk)
		if gotOK != wantOK || got.Country != want.Country || got.RIR != want.RIR {
			t.Errorf("block %v: table (%v,%v,%v) != linear (%v,%v,%v)",
				blk, got.Country, got.RIR, gotOK, want.Country, want.RIR, wantOK)
		}
	}
}

// BenchmarkTableLookupBlock proves the sorted-segment binary search win
// over a linear scan of the allocation list: the serving layer performs
// one of these lookups per enriched response.
func BenchmarkTableLookupBlock(b *testing.B) {
	allocs := benchAllocs()
	probes := make([]ipv4.Block, 64)
	for i := range probes {
		probes[i] = ipv4.Block(0x010000 + uint32(i*117)%8192)
	}

	b.Run("binary", func(b *testing.B) {
		tbl := NewTable(allocs)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tbl.LookupBlock(probes[i%len(probes)])
		}
	})
	b.Run("linear", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			linearLookupBlock(allocs, probes[i%len(probes)])
		}
	})
}

// BenchmarkCountryByCode compares the binary search against the linear
// scan it replaced.
func BenchmarkCountryByCode(b *testing.B) {
	codes := []Country{"US", "KE", "JP", "NL", "ZZ"}
	b.Run("binary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			CountryByCode(codes[i%len(codes)])
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			code := codes[i%len(codes)]
			for _, c := range Countries {
				if c.Code == code {
					break
				}
			}
		}
	})
}
