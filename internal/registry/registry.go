// Package registry models the Regional Internet Registry (RIR) system:
// which registry and country each IPv4 address is registered to, RIR
// exhaustion dates, and ITU-style subscriber statistics. It also reads
// and writes the NRO extended allocation format so that allocation data
// can be exchanged with real tooling.
package registry

import (
	"sort"
	"sync"
	"time"

	"ipscope/internal/ipv4"
)

// RIR identifies one of the five Regional Internet Registries.
type RIR uint8

// The five RIRs.
const (
	ARIN RIR = iota
	RIPE
	APNIC
	LACNIC
	AFRINIC
	numRIRs
)

// NumRIRs is the number of registries.
const NumRIRs = int(numRIRs)

// AllRIRs lists every registry in display order.
var AllRIRs = [NumRIRs]RIR{ARIN, RIPE, APNIC, LACNIC, AFRINIC}

var rirNames = [NumRIRs]string{"ARIN", "RIPE", "APNIC", "LACNIC", "AFRINIC"}

// String returns the registry's canonical name.
func (r RIR) String() string {
	if int(r) < NumRIRs {
		return rirNames[r]
	}
	return "UNKNOWN"
}

// ParseRIR maps a registry name (as used in NRO files, lowercase
// variants included) to a RIR.
func ParseRIR(s string) (RIR, bool) {
	switch s {
	case "ARIN", "arin":
		return ARIN, true
	case "RIPE", "ripencc", "RIPENCC", "ripe":
		return RIPE, true
	case "APNIC", "apnic":
		return APNIC, true
	case "LACNIC", "lacnic":
		return LACNIC, true
	case "AFRINIC", "afrinic":
		return AFRINIC, true
	}
	return 0, false
}

// ExhaustionDate returns the date the registry's free IPv4 pool was
// exhausted, per the paper's Figure 1 annotations. AFRINIC had not
// exhausted during the study period and reports ok=false.
func (r RIR) ExhaustionDate() (time.Time, bool) {
	d := func(y int, m time.Month, day int) time.Time {
		return time.Date(y, m, day, 0, 0, 0, 0, time.UTC)
	}
	switch r {
	case APNIC:
		return d(2011, time.April, 15), true
	case RIPE:
		return d(2012, time.September, 14), true
	case LACNIC:
		return d(2014, time.June, 10), true
	case ARIN:
		return d(2015, time.September, 24), true
	}
	return time.Time{}, false
}

// IANAExhaustion is the date the IANA central pool was exhausted.
var IANAExhaustion = time.Date(2011, time.February, 3, 0, 0, 0, 0, time.UTC)

// Country is an ISO 3166-1 alpha-2 country code, e.g. "US".
type Country string

// CountryInfo describes one country in the synthetic registry model.
type CountryInfo struct {
	Code Country
	RIR  RIR
	// BroadbandRank and CellularRank are 1-based ITU-style ranks by
	// subscriber counts (1 = most subscribers); 0 = unranked.
	BroadbandRank int
	CellularRank  int
	// Weight is the relative share of address space the country
	// receives when a synthetic world is generated.
	Weight float64
	// ICMPResponseRate is the prior probability that an active host in
	// this country responds to ICMP (the paper observes ~0.8 for CN
	// and ~0.25 for JP).
	ICMPResponseRate float64
}

// Countries is the built-in country table used for synthetic worlds.
// Ranks follow ITU 2015 as annotated in the paper's Figure 3(b).
var Countries = []CountryInfo{
	{"US", ARIN, 2, 3, 22, 0.45},
	{"CA", ARIN, 14, 30, 3, 0.5},
	{"CN", APNIC, 1, 1, 15, 0.80},
	{"JP", APNIC, 3, 7, 12, 0.25},
	{"IN", APNIC, 10, 2, 4, 0.55},
	{"KR", APNIC, 9, 25, 5, 0.45},
	{"AU", APNIC, 20, 36, 2, 0.5},
	{"BR", LACNIC, 7, 5, 8, 0.6},
	{"MX", LACNIC, 13, 11, 3, 0.55},
	{"AR", LACNIC, 15, 17, 2, 0.55},
	{"DE", RIPE, 4, 14, 10, 0.5},
	{"GB", RIPE, 8, 19, 8, 0.45},
	{"FR", RIPE, 5, 22, 8, 0.5},
	{"RU", RIPE, 6, 6, 7, 0.6},
	{"IT", RIPE, 12, 16, 5, 0.5},
	{"NL", RIPE, 16, 40, 3, 0.45},
	{"ZA", AFRINIC, 30, 24, 2, 0.5},
	{"NG", AFRINIC, 40, 9, 1.5, 0.55},
	{"EG", AFRINIC, 25, 18, 1.5, 0.55},
	{"KE", AFRINIC, 45, 35, 1, 0.5},
}

var (
	countryIndexOnce sync.Once
	countryIndex     []CountryInfo // Countries sorted by code
)

// CountryByCode returns the table entry for code. Lookups binary-search
// a code-sorted copy of Countries built on first use: the serving layer
// asks per request, so the scan the original table order implies is off
// the hot path.
func CountryByCode(code Country) (CountryInfo, bool) {
	countryIndexOnce.Do(func() {
		countryIndex = append([]CountryInfo(nil), Countries...)
		sort.Slice(countryIndex, func(i, j int) bool {
			return countryIndex[i].Code < countryIndex[j].Code
		})
	})
	i := sort.Search(len(countryIndex), func(i int) bool {
		return countryIndex[i].Code >= code
	})
	if i < len(countryIndex) && countryIndex[i].Code == code {
		return countryIndex[i], true
	}
	return CountryInfo{}, false
}

// CountriesOf returns the table entries registered to r.
func CountriesOf(r RIR) []CountryInfo {
	var out []CountryInfo
	for _, c := range Countries {
		if c.RIR == r {
			out = append(out, c)
		}
	}
	return out
}

// Allocation records that a prefix is delegated to a country (and hence
// a registry).
type Allocation struct {
	Prefix  ipv4.Prefix
	Country Country
	RIR     RIR
	Date    time.Time
}

// Table maps addresses to their allocation. Lookups use the /24 block
// of the address: registry delegations are /24-aligned in practice and
// in our generator.
//
// Internally the table is a sorted list of non-overlapping block
// segments resolved once at construction, so a lookup is one binary
// search regardless of how large the delegated prefixes are (the
// previous implementation materialized a map entry per covered /24,
// which a single /8 delegation turns into 65536 entries).
type Table struct {
	allocs []Allocation
	segs   []segment
}

// segment is a run of /24 blocks [start, end] (inclusive) covered by
// allocs[idx].
type segment struct {
	start, end uint32
	idx        int32
}

// NewTable builds a lookup table over allocs. Later allocations win on
// block overlap.
func NewTable(allocs []Allocation) *Table {
	t := &Table{allocs: append([]Allocation(nil), allocs...)}

	// Boundary sweep: later allocations (larger index) win wherever
	// coverage overlaps, so the winner at any block is the maximum
	// active allocation index.
	type event struct {
		pos uint32 // first block at which the event takes effect
		idx int32
		add bool
	}
	events := make([]event, 0, 2*len(t.allocs))
	for i, a := range t.allocs {
		start := uint32(a.Prefix.FirstBlock())
		end := start + uint32(a.Prefix.NumBlocks()) // exclusive
		events = append(events,
			event{pos: start, idx: int32(i), add: true},
			event{pos: end, idx: int32(i), add: false})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].pos != events[j].pos {
			return events[i].pos < events[j].pos
		}
		// Removals before additions at the same boundary, so an
		// allocation ending exactly where another starts hands over
		// cleanly.
		return !events[i].add && events[j].add
	})

	var heap maxIdxHeap
	dead := make(map[int32]bool)
	cur := int32(-1)
	var segStart uint32
	for k := 0; k < len(events); {
		pos := events[k].pos
		for ; k < len(events) && events[k].pos == pos; k++ {
			if events[k].add {
				heap.push(events[k].idx)
			} else {
				dead[events[k].idx] = true
			}
		}
		top := int32(-1)
		for heap.len() > 0 {
			if dead[heap.top()] {
				delete(dead, heap.top())
				heap.pop()
				continue
			}
			top = heap.top()
			break
		}
		if top == cur {
			continue
		}
		if cur >= 0 {
			t.segs = append(t.segs, segment{start: segStart, end: pos - 1, idx: cur})
		}
		cur, segStart = top, pos
	}
	return t
}

// maxIdxHeap is a binary max-heap of allocation indices.
type maxIdxHeap []int32

func (h maxIdxHeap) len() int   { return len(h) }
func (h maxIdxHeap) top() int32 { return h[0] }
func (h *maxIdxHeap) push(v int32) {
	*h = append(*h, v)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p] >= (*h)[i] {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *maxIdxHeap) pop() {
	n := len(*h) - 1
	(*h)[0] = (*h)[n]
	*h = (*h)[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && (*h)[l] > (*h)[big] {
			big = l
		}
		if r < n && (*h)[r] > (*h)[big] {
			big = r
		}
		if big == i {
			break
		}
		(*h)[i], (*h)[big] = (*h)[big], (*h)[i]
	}
}

// Allocations returns the underlying allocation list.
func (t *Table) Allocations() []Allocation { return t.allocs }

// NumSegments returns the number of resolved coverage segments (for
// tests and capacity planning).
func (t *Table) NumSegments() int { return len(t.segs) }

// Lookup returns the allocation covering a.
func (t *Table) Lookup(a ipv4.Addr) (Allocation, bool) {
	return t.LookupBlock(a.Block())
}

// LookupBlock returns the allocation covering blk.
func (t *Table) LookupBlock(blk ipv4.Block) (Allocation, bool) {
	b := uint32(blk)
	i := sort.Search(len(t.segs), func(i int) bool { return t.segs[i].end >= b })
	if i == len(t.segs) || t.segs[i].start > b {
		return Allocation{}, false
	}
	return t.allocs[t.segs[i].idx], true
}

// RIROf returns the registry for a block, defaulting to ARIN for
// unallocated space (matching how unattributed space is reported).
func (t *Table) RIROf(blk ipv4.Block) RIR {
	if a, ok := t.LookupBlock(blk); ok {
		return a.RIR
	}
	return ARIN
}

// CountryOf returns the country code for a block, or "" if unallocated.
func (t *Table) CountryOf(blk ipv4.Block) Country {
	if a, ok := t.LookupBlock(blk); ok {
		return a.Country
	}
	return ""
}
