package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ipscope/internal/ipv4"
	"ipscope/internal/par"
	"ipscope/internal/query"
	"ipscope/internal/serve/wire"
)

// Shard transports selectable via RouterOptions.Transport.
const (
	// TransportHTTP proxies and gathers over the shards' public JSON
	// API — the universal default.
	TransportHTTP = "http"
	// TransportRPC uses the binary RPC protocol (internal/rpc) for
	// every shard that advertises an RPC endpoint in its cluster info,
	// falling back to HTTP per shard otherwise.
	TransportRPC = "rpc"
)

// RouterOptions tunes a Router.
type RouterOptions struct {
	// HTTPClient performs shard HTTP requests (discovery always, data
	// traffic on the HTTP transport); nil means a client tuned for
	// persistent shard connections (see newShardHTTPClient).
	HTTPClient *http.Client
	// Transport selects the shard data transport: TransportHTTP
	// (default) or TransportRPC.
	Transport string
	// Gather bounds the fan-out concurrency of scatter-gather
	// endpoints; <= 0 means DefaultGather.
	Gather int
	// InfoTimeout bounds how long NewRouter waits for every shard to
	// answer /v1/cluster/info (shards may still be compiling their
	// slice); <= 0 means DefaultInfoTimeout.
	InfoTimeout time.Duration
}

// DefaultGather bounds scatter-gather concurrency when unset.
const DefaultGather = 8

// DefaultInfoTimeout bounds the startup partition discovery.
const DefaultInfoTimeout = 30 * time.Second

// newShardHTTPClient builds the default client for router→shard HTTP
// traffic. The zero-value http.Transport keeps only 2 idle connections
// per host (DefaultMaxIdleConnsPerHost), so a gather=8 fan-out or a
// point-lookup burst re-dials the same shard on nearly every request;
// a router talks to a small, fixed fleet and should keep every
// connection warm.
func newShardHTTPClient() *http.Client {
	return &http.Client{
		Timeout: 10 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		},
	}
}

// Router fronts a fleet of shard servers with the single-node /v1/*
// API. Point lookups (/v1/addr, /v1/block) go to the shard owning the
// block — the response, epoch field and ETag are the owning shard's,
// with an X-Shard header naming it. Aggregates (/v1/summary, /v1/as,
// /v1/prefix) fan out to the owning shards with bounded concurrency,
// fold the mergeable partials, and answer with the minimum epoch across
// the shards consulted — the oldest snapshot the answer can depend on.
// A shard that cannot be reached degrades the router: its blocks answer
// 503 while every other shard keeps serving, and /v1/healthz aggregates
// to "degraded" with status 503. Shard traffic runs over the transport
// selected at construction; the public surface is identical over both.
type Router struct {
	shards []*shardState // ascending owned-range order
	gather int

	handler http.Handler

	srvMu   sync.Mutex
	httpSrv *http.Server
	serveCh chan error
}

// shardState is one shard's address, partition coordinates, transport
// client and the highest epoch the router has observed it serving
// (from gathers and health probes). Health itself is never cached:
// every lookup attempts the shard and every /v1/healthz live-probes the
// fleet, so routing decisions cannot go stale.
type shardState struct {
	base   string
	info   wire.ShardInfo
	client Client
	epoch  atomic.Uint64
}

// observeEpoch records a served epoch (monotonic: shards never roll
// back a published snapshot).
func (sh *shardState) observeEpoch(e uint64) {
	for {
		cur := sh.epoch.Load()
		if e <= cur || sh.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// NewRouter discovers the partition behind the given shard base URLs
// (e.g. "http://127.0.0.1:8091") by reading each shard's
// /v1/cluster/info, validates that the owned ranges tile the whole
// block space exactly once, and returns a Router serving the merged
// /v1/* API. Discovery always runs over HTTP; with TransportRPC, data
// traffic upgrades to the binary protocol for every shard advertising
// an rpcAddr, shard by shard.
func NewRouter(urls []string, opts RouterOptions) (*Router, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("cluster: no shard URLs")
	}
	hc := opts.HTTPClient
	if hc == nil {
		hc = newShardHTTPClient()
	}
	transport := opts.Transport
	if transport == "" {
		transport = TransportHTTP
	}
	if transport != TransportHTTP && transport != TransportRPC {
		return nil, fmt.Errorf("cluster: unknown transport %q", transport)
	}
	gather := opts.Gather
	if gather <= 0 {
		gather = DefaultGather
	}
	infoTimeout := opts.InfoTimeout
	if infoTimeout <= 0 {
		infoTimeout = DefaultInfoTimeout
	}

	rt := &Router{gather: gather}
	deadline := time.Now().Add(infoTimeout)
	for _, base := range urls {
		info, err := fetchInfo(hc, base, len(urls), deadline)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %s: %w", base, err)
		}
		sh := &shardState{base: base, info: info.ShardInfo}
		if transport == TransportRPC && info.RPCAddr != "" {
			sh.client = newRPCShardClient(info.Index, info.RPCAddr)
		} else {
			sh.client = newHTTPShardClient(info.Index, base, hc)
		}
		rt.shards = append(rt.shards, sh)
	}
	sort.Slice(rt.shards, func(i, j int) bool { return rt.shards[i].info.Lo < rt.shards[j].info.Lo })
	if err := validatePartition(rt.shards); err != nil {
		rt.Close()
		return nil, err
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/addr/{ip}", rt.handleAddr)
	mux.HandleFunc("GET /v1/block/{prefix...}", rt.handleBlock)
	mux.HandleFunc("GET /v1/prefix/{cidr...}", rt.handlePrefix)
	mux.HandleFunc("GET /v1/as/{asn}", rt.handleAS)
	mux.HandleFunc("GET /v1/summary", rt.handleSummary)
	mux.HandleFunc("GET /v1/delta", rt.handleDelta)
	mux.HandleFunc("GET /v1/movement", rt.handleMovement)
	mux.HandleFunc("GET /v1/healthz", rt.handleHealthz)
	rt.handler = mux
	return rt, nil
}

// validatePartition checks the sorted owned ranges tile [0, 1<<24)
// exactly: no gaps, no overlaps, no replicas.
func validatePartition(shards []*shardState) error {
	next := uint32(0)
	for _, sh := range shards {
		if sh.info.Lo != next {
			return fmt.Errorf("cluster: partition gap/overlap at block %d (shard %d starts at %d)", next, sh.info.Index, sh.info.Lo)
		}
		if sh.info.Hi < sh.info.Lo {
			return fmt.Errorf("cluster: shard %d has inverted range [%d, %d)", sh.info.Index, sh.info.Lo, sh.info.Hi)
		}
		next = sh.info.Hi
	}
	if next != blockSpace {
		return fmt.Errorf("cluster: partition covers blocks up to %d, want %d", next, uint32(blockSpace))
	}
	return nil
}

// fetchInfo reads one shard's cluster info, retrying until the deadline
// while the shard is unreachable, still compiling its slice, or not yet
// partition-aware: a live shard only learns its range (and true shard
// count) from the stream's meta event, so until then its info reports
// the default one-shard partition — treated here as "not ready yet",
// not as a hard mismatch.
func fetchInfo(hc *http.Client, base string, wantCount int, deadline time.Time) (wire.ClusterInfo, error) {
	var lastErr error
	for {
		var info wire.ClusterInfo
		resp, err := hc.Get(base + "/v1/cluster/info")
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			switch {
			case rerr != nil:
				err = rerr
			case resp.StatusCode != http.StatusOK:
				err = fmt.Errorf("cluster info: status %d", resp.StatusCode)
			default:
				switch err = json.Unmarshal(body, &info); {
				case err != nil:
				case info.Count != wantCount:
					err = fmt.Errorf("cluster info: shard reports a %d-shard partition, router fronts %d", info.Count, wantCount)
				default:
					return info, nil
				}
			}
		}
		lastErr = err
		if time.Now().After(deadline) {
			return wire.ClusterInfo{}, fmt.Errorf("cluster info unavailable: %w", lastErr)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// Handler returns the router's HTTP handler (for tests and embedding).
func (rt *Router) Handler() http.Handler { return rt.handler }

// NumShards returns the number of shards behind the router.
func (rt *Router) NumShards() int { return len(rt.shards) }

// Close releases every shard client's persistent connections. It does
// not stop a Listen-ing server — use Shutdown for that.
func (rt *Router) Close() {
	for _, sh := range rt.shards {
		if sh.client != nil {
			sh.client.Close()
		}
	}
}

// Listen binds addr and serves in the background until Shutdown.
func (rt *Router) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	rt.srvMu.Lock()
	rt.httpSrv = &http.Server{Handler: rt.handler}
	rt.serveCh = make(chan error, 1)
	srv, ch := rt.httpSrv, rt.serveCh
	rt.srvMu.Unlock()
	go func() {
		err := srv.Serve(ln)
		if err == http.ErrServerClosed {
			err = nil
		}
		ch <- err
	}()
	return ln.Addr(), nil
}

// Shutdown stops accepting new requests and drains in-flight ones.
func (rt *Router) Shutdown(ctx context.Context) error {
	rt.srvMu.Lock()
	srv, ch := rt.httpSrv, rt.serveCh
	rt.srvMu.Unlock()
	if srv == nil {
		return nil
	}
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	return <-ch
}

// ownerOf returns the shard owning blk.
func (rt *Router) ownerOf(blk ipv4.Block) *shardState {
	for _, sh := range rt.shards {
		if sh.info.Contains(blk) {
			return sh
		}
	}
	// Unreachable: validatePartition proved full coverage.
	return rt.shards[len(rt.shards)-1]
}

// minEpoch returns the lowest last-observed epoch across shards — the
// oldest snapshot a merged answer can depend on (0 until every shard
// has been observed serving).
func (rt *Router) minEpoch() uint64 {
	min := uint64(0)
	for i, sh := range rt.shards {
		if epoch := sh.epoch.Load(); i == 0 || epoch < min {
			min = epoch
		}
	}
	return min
}

func (rt *Router) respondErr(w http.ResponseWriter, r *http.Request, status int, msg string) {
	wire.Respond(w, r, status, wire.ErrorBody{Error: msg}, rt.minEpoch())
}

// parseEpochParam extracts the ?epoch= time-travel target (0 = live
// snapshot). The router validates it before any shard traffic, so both
// transports reject bad values with the same shared 400 text.
func (rt *Router) parseEpochParam(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	raw := r.URL.Query().Get("epoch")
	if raw == "" {
		return 0, true
	}
	e, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		rt.respondErr(w, r, http.StatusBadRequest, wire.ErrInvalidEpoch(raw))
		return 0, false
	}
	return e, true
}

// writeNotRetained serves the canonical not-retained 404 — the same
// body bytes wire.NotRetainedBody gives a single shard, with the
// cluster-wide common range in place of the shard's own.
func writeNotRetained(w http.ResponseWriter, asked, oldest, newest uint64) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusNotFound)
	w.Write(wire.NotRetainedBody(asked, oldest, newest))
}

// foldCommonRange folds per-shard retained ranges into the cluster-wide
// common range: max of oldests, min of newests — the epochs every shard
// can still answer. A shard retaining nothing (newest 0) collapses the
// range to empty (0, 0).
func foldCommonRange(oldests, newests []uint64) (oldest, newest uint64) {
	for i := range oldests {
		if oldests[i] > oldest {
			oldest = oldests[i]
		}
		if i == 0 || newests[i] < newest {
			newest = newests[i]
		}
	}
	if newest == 0 || oldest > newest {
		return 0, 0
	}
	return oldest, newest
}

// commonRange live-probes every shard's retained range and folds the
// cluster-wide common range. Used on the rare aggregate not-retained
// path, where the failing gather only learned one shard's range.
func (rt *Router) commonRange(ctx context.Context) (oldest, newest uint64) {
	oldests := make([]uint64, len(rt.shards))
	newests := make([]uint64, len(rt.shards))
	var g par.Group
	g.SetLimit(rt.gather)
	for i, sh := range rt.shards {
		i, sh := i, sh
		g.Go(func() error {
			if _, _, o, n, err := sh.client.Health(ctx); err == nil {
				oldests[i], newests[i] = o, n
			}
			return nil
		})
	}
	g.Wait() //nolint:errcheck // unreachable shards keep their zero range
	return foldCommonRange(oldests, newests)
}

// respondNotRetained answers a fan-out that hit an unretained epoch
// with the common-range 404.
func (rt *Router) respondNotRetained(w http.ResponseWriter, r *http.Request, asked uint64) {
	oldest, newest := rt.commonRange(r.Context())
	writeNotRetained(w, asked, oldest, newest)
}

// relay answers a point lookup with the owning shard's response —
// body, epoch field, ETag and cache disposition are the shard's, plus
// an X-Shard header naming the owner. The transport client either
// produced the shard's exact bytes (HTTP proxies them verbatim, RPC
// reconstructs them with the shared wire helpers) or failed, which is
// the 503 unavailable path.
func (rt *Router) relay(w http.ResponseWriter, r *http.Request, sh *shardState, pr PointRequest) {
	pr.URI = r.URL.RequestURI()
	pr.IfNoneMatch = r.Header.Get("If-None-Match")
	resp, err := sh.client.Point(r.Context(), pr)
	if err != nil {
		rt.respondErr(w, r, http.StatusServiceUnavailable, err.Error())
		return
	}
	for h, v := range map[string]string{
		"ETag":         resp.ETag,
		"Content-Type": resp.ContentType,
		"X-Cache":      resp.XCache,
		"Retry-After":  resp.RetryAfter,
	} {
		if v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Shard", strconv.Itoa(sh.info.Index))
	w.WriteHeader(resp.Status)
	w.Write(resp.Body)
}

func (rt *Router) handleAddr(w http.ResponseWriter, r *http.Request) {
	a, err := ipv4.ParseAddr(r.PathValue("ip"))
	if err != nil {
		rt.respondErr(w, r, http.StatusBadRequest, err.Error())
		return
	}
	epoch, ok := rt.parseEpochParam(w, r)
	if !ok {
		return
	}
	rt.relay(w, r, rt.ownerOf(a.Block()), PointRequest{IsAddr: true, Addr: a, Epoch: epoch})
}

func (rt *Router) handleBlock(w http.ResponseWriter, r *http.Request) {
	blk, err := wire.Parse24(r.PathValue("prefix"))
	if err != nil {
		rt.respondErr(w, r, http.StatusBadRequest, err.Error())
		return
	}
	epoch, ok := rt.parseEpochParam(w, r)
	if !ok {
		return
	}
	rt.relay(w, r, rt.ownerOf(blk), PointRequest{Block: blk, Epoch: epoch})
}

// gatherPartials fans one fetch out to the given shards with bounded
// concurrency. Any unreachable or failing shard fails the whole gather
// — a partial aggregate would silently misreport the dataset. The
// returned epoch is the minimum across shards.
func gatherPartials[T any](rt *Router, ctx context.Context, shards []*shardState,
	fetch func(context.Context, Client) (T, uint64, error)) ([]T, uint64, error) {
	out := make([]T, len(shards))
	epochs := make([]uint64, len(shards))
	var g par.Group
	g.SetLimit(rt.gather)
	for i, sh := range shards {
		i, sh := i, sh
		g.Go(func() error {
			v, epoch, err := fetch(ctx, sh.client)
			if err != nil {
				return err
			}
			out[i], epochs[i] = v, epoch
			sh.observeEpoch(epoch)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, 0, err
	}
	min := epochs[0]
	for _, e := range epochs[1:] {
		if e < min {
			min = e
		}
	}
	return out, min, nil
}

// gatherErr answers a failed aggregate gather: a not-retained epoch
// becomes the common-range 404, anything else the 503 unavailable path.
func (rt *Router) gatherErr(w http.ResponseWriter, r *http.Request, err error, asked uint64) {
	var nr *wire.NotRetainedError
	if errors.As(err, &nr) {
		rt.respondNotRetained(w, r, asked)
		return
	}
	rt.respondErr(w, r, http.StatusServiceUnavailable, err.Error())
}

func (rt *Router) handleSummary(w http.ResponseWriter, r *http.Request) {
	asOf, ok := rt.parseEpochParam(w, r)
	if !ok {
		return
	}
	parts, epoch, err := gatherPartials(rt, r.Context(), rt.shards,
		func(ctx context.Context, c Client) (query.SummaryPartial, uint64, error) {
			return c.Summary(ctx, asOf)
		})
	if err != nil {
		rt.gatherErr(w, r, err, asOf)
		return
	}
	merged, err := query.MergeSummaryPartials(parts)
	if err != nil {
		rt.respondErr(w, r, http.StatusInternalServerError, err.Error())
		return
	}
	wire.Respond(w, r, http.StatusOK, merged.Finalize(), epoch)
}

func (rt *Router) handleAS(w http.ResponseWriter, r *http.Request) {
	n, err := wire.ParseASN(r.PathValue("asn"))
	if err != nil {
		rt.respondErr(w, r, http.StatusBadRequest, err.Error())
		return
	}
	asOf, ok := rt.parseEpochParam(w, r)
	if !ok {
		return
	}
	parts, epoch, err := gatherPartials(rt, r.Context(), rt.shards,
		func(ctx context.Context, c Client) (query.ASPartial, uint64, error) {
			return c.AS(ctx, n, asOf)
		})
	if err != nil {
		rt.gatherErr(w, r, err, asOf)
		return
	}
	v, ok := query.MergeASPartials(parts)
	if !ok {
		wire.Respond(w, r, http.StatusNotFound, wire.ErrorBody{Error: wire.ErrASNotFound(n)}, epoch)
		return
	}
	wire.Respond(w, r, http.StatusOK, v, epoch)
}

func (rt *Router) handlePrefix(w http.ResponseWriter, r *http.Request) {
	p, err := ipv4.ParsePrefix(r.PathValue("cidr"))
	if err != nil {
		rt.respondErr(w, r, http.StatusBadRequest, err.Error())
		return
	}
	if err := query.CheckPrefix(p); err != nil {
		rt.respondErr(w, r, http.StatusBadRequest, err.Error())
		return
	}
	first := uint32(p.FirstBlock())
	last := first + uint32(p.NumBlocks()) - 1
	var covering []*shardState
	for _, sh := range rt.shards {
		if sh.info.Hi > first && sh.info.Lo <= last {
			covering = append(covering, sh)
		}
	}
	asOf, ok := rt.parseEpochParam(w, r)
	if !ok {
		return
	}
	cidr := p.String()
	parts, epoch, err := gatherPartials(rt, r.Context(), covering,
		func(ctx context.Context, c Client) (query.PrefixPartial, uint64, error) {
			return c.Prefix(ctx, cidr, asOf)
		})
	if err != nil {
		rt.gatherErr(w, r, err, asOf)
		return
	}
	merged, err := query.MergePrefixPartials(parts, wire.DefaultPrefixBlockList)
	if err != nil {
		rt.respondErr(w, r, http.StatusInternalServerError, err.Error())
		return
	}
	wire.Respond(w, r, http.StatusOK, merged, epoch)
}

// handleDelta scatter-gathers /v1/delta?from=&to= to every shard and
// folds the mergeable partials exactly. Not-retained answers do not
// fail the gather: every shard reports its retained ring range (inside
// the success payload or the typed 404), the router folds the
// cluster-wide common range, and a missing epoch answers the canonical
// 404 body with that range — blaming from before to, the same check
// order a single shard applies.
func (rt *Router) handleDelta(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	fromRaw, toRaw := q.Get("from"), q.Get("to")
	from, errFrom := strconv.ParseUint(fromRaw, 10, 64)
	to, errTo := strconv.ParseUint(toRaw, 10, 64)
	if errFrom != nil || errTo != nil || from >= to {
		rt.respondErr(w, r, http.StatusBadRequest, wire.ErrDeltaParams(fromRaw, toRaw))
		return
	}
	parts := make([]query.DeltaPartial, len(rt.shards))
	oldests := make([]uint64, len(rt.shards))
	newests := make([]uint64, len(rt.shards))
	missing := false
	var mu sync.Mutex
	var g par.Group
	g.SetLimit(rt.gather)
	for i, sh := range rt.shards {
		i, sh := i, sh
		g.Go(func() error {
			p, oldest, newest, err := sh.client.Delta(r.Context(), from, to)
			if err != nil {
				var nr *wire.NotRetainedError
				if !errors.As(err, &nr) {
					return err
				}
				oldests[i], newests[i] = nr.Oldest, nr.Newest
				mu.Lock()
				missing = true
				mu.Unlock()
				return nil
			}
			parts[i], oldests[i], newests[i] = p, oldest, newest
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		rt.respondErr(w, r, http.StatusServiceUnavailable, err.Error())
		return
	}
	if missing {
		oldest, newest := foldCommonRange(oldests, newests)
		asked := from
		if newest > 0 && from >= oldest && from <= newest {
			asked = to
		}
		writeNotRetained(w, asked, oldest, newest)
		return
	}
	merged, err := query.MergeDeltaPartials(parts, query.DefaultDeltaBlockList)
	if err != nil {
		rt.respondErr(w, r, http.StatusInternalServerError, err.Error())
		return
	}
	wire.Respond(w, r, http.StatusOK, merged, to)
}

// handleMovement scatter-gathers /v1/movement?last=N; the merge keeps
// the epochs present on every shard, so the routed series covers the
// cluster-wide common range.
func (rt *Router) handleMovement(w http.ResponseWriter, r *http.Request) {
	last := 0
	if raw := r.URL.Query().Get("last"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			rt.respondErr(w, r, http.StatusBadRequest, wire.ErrInvalidLast(raw))
			return
		}
		last = n
	}
	parts, _, err := gatherPartials(rt, r.Context(), rt.shards,
		func(ctx context.Context, c Client) (query.MovementPartial, uint64, error) {
			p, _, newest, err := c.Movement(ctx, last)
			return p, newest, err
		})
	if err != nil {
		rt.respondErr(w, r, http.StatusServiceUnavailable, err.Error())
		return
	}
	merged, err := query.MergeMovementPartials(parts)
	if err != nil {
		rt.respondErr(w, r, http.StatusInternalServerError, err.Error())
		return
	}
	wire.Respond(w, r, http.StatusOK, merged, merged.NewestEpoch)
}

// handleHealthz live-probes every shard with bounded concurrency,
// updates the per-shard health state, and aggregates: 200 "ok" when
// every shard serves a snapshot, 503 "degraded" otherwise, with the
// minimum shard epoch as the cluster epoch.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	states := make([]wire.RouterShardHealth, len(rt.shards))
	var g par.Group
	g.SetLimit(rt.gather)
	for i, sh := range rt.shards {
		i, sh := i, sh
		g.Go(func() error {
			st := wire.RouterShardHealth{Shard: sh.info.Index, URL: sh.base, Transport: sh.client.Transport()}
			status, epoch, oldest, newest, err := sh.client.Health(r.Context())
			if err != nil {
				st.Status, st.Error = "unreachable", err.Error()
			} else {
				st.Status, st.Epoch = status, epoch
				st.OldestEpoch, st.NewestEpoch = oldest, newest
				if status == "ok" {
					sh.observeEpoch(epoch)
				}
			}
			states[i] = st
			return nil
		})
	}
	g.Wait() //nolint:errcheck // probe outcomes land in states

	body := wire.RouterHealth{Status: "ok", Shards: states}
	status := http.StatusOK
	oldests := make([]uint64, len(states))
	newests := make([]uint64, len(states))
	for i, st := range states {
		if st.Status != "ok" {
			body.Status = "degraded"
			status = http.StatusServiceUnavailable
		}
		if i == 0 || st.Epoch < body.Epoch {
			body.Epoch = st.Epoch
		}
		oldests[i], newests[i] = st.OldestEpoch, st.NewestEpoch
	}
	body.OldestEpoch, body.NewestEpoch = foldCommonRange(oldests, newests)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}
