package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ipscope/internal/ipv4"
	"ipscope/internal/par"
	"ipscope/internal/query"
	"ipscope/internal/serve"
)

// RouterOptions tunes a Router.
type RouterOptions struct {
	// Client performs shard requests; nil means a client with a 10s
	// timeout.
	Client *http.Client
	// Gather bounds the fan-out concurrency of scatter-gather
	// endpoints; <= 0 means DefaultGather.
	Gather int
	// InfoTimeout bounds how long NewRouter waits for every shard to
	// answer /v1/cluster/info (shards may still be compiling their
	// slice); <= 0 means DefaultInfoTimeout.
	InfoTimeout time.Duration
}

// DefaultGather bounds scatter-gather concurrency when unset.
const DefaultGather = 8

// DefaultInfoTimeout bounds the startup partition discovery.
const DefaultInfoTimeout = 30 * time.Second

// Router fronts a fleet of shard servers with the single-node /v1/*
// API. Point lookups (/v1/addr, /v1/block) proxy to the shard owning
// the block — the response, epoch field and ETag are the owning
// shard's, with an X-Shard header naming it. Aggregates (/v1/summary,
// /v1/as, /v1/prefix) fan out to the owning shards with bounded
// concurrency, fold the mergeable partials, and answer with the
// minimum epoch across the shards consulted — the oldest snapshot the
// answer can depend on. A shard that cannot be reached degrades the
// router: its blocks answer 503 while every other shard keeps serving,
// and /v1/healthz aggregates to "degraded" with status 503.
type Router struct {
	shards []*shardState // ascending owned-range order
	client *http.Client
	gather int

	handler http.Handler

	srvMu   sync.Mutex
	httpSrv *http.Server
	serveCh chan error
}

// shardState is one shard's address, partition coordinates and the
// highest epoch the router has observed it serving (from gathers and
// health probes). Health itself is never cached: every lookup attempts
// the shard and every /v1/healthz live-probes the fleet, so routing
// decisions cannot go stale.
type shardState struct {
	base  string
	info  serve.ShardInfo
	epoch atomic.Uint64
}

// observeEpoch records a served epoch (monotonic: shards never roll
// back a published snapshot).
func (sh *shardState) observeEpoch(e uint64) {
	for {
		cur := sh.epoch.Load()
		if e <= cur || sh.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// NewRouter discovers the partition behind the given shard base URLs
// (e.g. "http://127.0.0.1:8091") by reading each shard's
// /v1/cluster/info, validates that the owned ranges tile the whole
// block space exactly once, and returns a Router serving the merged
// /v1/* API.
func NewRouter(urls []string, opts RouterOptions) (*Router, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("cluster: no shard URLs")
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	gather := opts.Gather
	if gather <= 0 {
		gather = DefaultGather
	}
	infoTimeout := opts.InfoTimeout
	if infoTimeout <= 0 {
		infoTimeout = DefaultInfoTimeout
	}

	rt := &Router{client: client, gather: gather}
	deadline := time.Now().Add(infoTimeout)
	for _, base := range urls {
		info, err := rt.fetchInfo(base, len(urls), deadline)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %s: %w", base, err)
		}
		rt.shards = append(rt.shards, &shardState{base: base, info: info})
	}
	sort.Slice(rt.shards, func(i, j int) bool { return rt.shards[i].info.Lo < rt.shards[j].info.Lo })
	if err := validatePartition(rt.shards); err != nil {
		return nil, err
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/addr/{ip}", rt.handleAddr)
	mux.HandleFunc("GET /v1/block/{prefix...}", rt.handleBlock)
	mux.HandleFunc("GET /v1/prefix/{cidr...}", rt.handlePrefix)
	mux.HandleFunc("GET /v1/as/{asn}", rt.handleAS)
	mux.HandleFunc("GET /v1/summary", rt.handleSummary)
	mux.HandleFunc("GET /v1/healthz", rt.handleHealthz)
	rt.handler = mux
	return rt, nil
}

// validatePartition checks the sorted owned ranges tile [0, 1<<24)
// exactly: no gaps, no overlaps, no replicas.
func validatePartition(shards []*shardState) error {
	next := uint32(0)
	for _, sh := range shards {
		if sh.info.Lo != next {
			return fmt.Errorf("cluster: partition gap/overlap at block %d (shard %d starts at %d)", next, sh.info.Index, sh.info.Lo)
		}
		if sh.info.Hi < sh.info.Lo {
			return fmt.Errorf("cluster: shard %d has inverted range [%d, %d)", sh.info.Index, sh.info.Lo, sh.info.Hi)
		}
		next = sh.info.Hi
	}
	if next != blockSpace {
		return fmt.Errorf("cluster: partition covers blocks up to %d, want %d", next, uint32(blockSpace))
	}
	return nil
}

// fetchInfo reads one shard's partition coordinates, retrying until
// the deadline while the shard is unreachable, still compiling its
// slice, or not yet partition-aware: a live shard only learns its
// range (and true shard count) from the stream's meta event, so until
// then its info reports the default one-shard partition — treated
// here as "not ready yet", not as a hard mismatch.
func (rt *Router) fetchInfo(base string, wantCount int, deadline time.Time) (serve.ShardInfo, error) {
	var lastErr error
	for {
		var info struct {
			serve.ShardInfo
			Epoch uint64 `json:"epoch"`
		}
		resp, err := rt.client.Get(base + "/v1/cluster/info")
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			switch {
			case rerr != nil:
				err = rerr
			case resp.StatusCode != http.StatusOK:
				err = fmt.Errorf("cluster info: status %d", resp.StatusCode)
			default:
				switch err = json.Unmarshal(body, &info); {
				case err != nil:
				case info.Count != wantCount:
					err = fmt.Errorf("cluster info: shard reports a %d-shard partition, router fronts %d", info.Count, wantCount)
				default:
					return info.ShardInfo, nil
				}
			}
		}
		lastErr = err
		if time.Now().After(deadline) {
			return serve.ShardInfo{}, fmt.Errorf("cluster info unavailable: %w", lastErr)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// Handler returns the router's HTTP handler (for tests and embedding).
func (rt *Router) Handler() http.Handler { return rt.handler }

// NumShards returns the number of shards behind the router.
func (rt *Router) NumShards() int { return len(rt.shards) }

// Listen binds addr and serves in the background until Shutdown.
func (rt *Router) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	rt.srvMu.Lock()
	rt.httpSrv = &http.Server{Handler: rt.handler}
	rt.serveCh = make(chan error, 1)
	srv, ch := rt.httpSrv, rt.serveCh
	rt.srvMu.Unlock()
	go func() {
		err := srv.Serve(ln)
		if err == http.ErrServerClosed {
			err = nil
		}
		ch <- err
	}()
	return ln.Addr(), nil
}

// Shutdown stops accepting new requests and drains in-flight ones.
func (rt *Router) Shutdown(ctx context.Context) error {
	rt.srvMu.Lock()
	srv, ch := rt.httpSrv, rt.serveCh
	rt.srvMu.Unlock()
	if srv == nil {
		return nil
	}
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	return <-ch
}

// ownerOf returns the shard owning blk.
func (rt *Router) ownerOf(blk ipv4.Block) *shardState {
	for _, sh := range rt.shards {
		if sh.info.Contains(blk) {
			return sh
		}
	}
	// Unreachable: validatePartition proved full coverage.
	return rt.shards[len(rt.shards)-1]
}

// minEpoch returns the lowest last-observed epoch across shards — the
// oldest snapshot a merged answer can depend on (0 until every shard
// has been observed serving).
func (rt *Router) minEpoch() uint64 {
	min := uint64(0)
	for i, sh := range rt.shards {
		if epoch := sh.epoch.Load(); i == 0 || epoch < min {
			min = epoch
		}
	}
	return min
}

// respond assembles a response exactly the way a shard's cache layer
// does — same marshalling, same epoch splice, same ETag derivation —
// so routed merged bodies are byte-compatible with single-node ones.
func (rt *Router) respond(w http.ResponseWriter, r *http.Request, status int, payload any, epoch uint64) {
	etag := serve.ETagFor(epoch)
	w.Header().Set("ETag", etag)
	if serve.NotModified(r, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	body, err := json.Marshal(payload)
	if err != nil {
		status = http.StatusInternalServerError
		body = []byte(`{"error":"encoding failed"}`)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(serve.WithEpoch(body, epoch), '\n'))
}

func (rt *Router) respondErr(w http.ResponseWriter, r *http.Request, status int, msg string) {
	rt.respond(w, r, status, serve.ErrorBody{Error: msg}, rt.minEpoch())
}

// proxy forwards a point lookup to the owning shard verbatim: the
// client sees the shard's body (with the shard's epoch), the shard's
// ETag and cache disposition, plus an X-Shard header naming the owner.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, sh *shardState) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, sh.base+r.URL.RequestURI(), nil)
	if err != nil {
		rt.respondErr(w, r, http.StatusInternalServerError, err.Error())
		return
	}
	if inm := r.Header.Get("If-None-Match"); inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.respondErr(w, r, http.StatusServiceUnavailable,
			fmt.Sprintf("shard %d unavailable: %v", sh.info.Index, err))
		return
	}
	defer resp.Body.Close()
	for _, h := range []string{"ETag", "Content-Type", "X-Cache", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Shard", strconv.Itoa(sh.info.Index))
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

func (rt *Router) handleAddr(w http.ResponseWriter, r *http.Request) {
	a, err := ipv4.ParseAddr(r.PathValue("ip"))
	if err != nil {
		rt.respondErr(w, r, http.StatusBadRequest, err.Error())
		return
	}
	rt.proxy(w, r, rt.ownerOf(a.Block()))
}

func (rt *Router) handleBlock(w http.ResponseWriter, r *http.Request) {
	blk, err := serve.Parse24(r.PathValue("prefix"))
	if err != nil {
		rt.respondErr(w, r, http.StatusBadRequest, err.Error())
		return
	}
	rt.proxy(w, r, rt.ownerOf(blk))
}

// gather fans path out to the given shards with bounded concurrency
// and decodes each 200 body into T (plus the spliced epoch). Any
// unreachable or non-200 shard fails the whole gather — a partial
// aggregate would silently misreport the dataset.
func gather[T any](rt *Router, ctx context.Context, shards []*shardState, path string) ([]T, uint64, error) {
	out := make([]T, len(shards))
	epochs := make([]uint64, len(shards))
	var g par.Group
	g.SetLimit(rt.gather)
	for i, sh := range shards {
		i, sh := i, sh
		g.Go(func() error {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, sh.base+path, nil)
			if err != nil {
				return err
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				return fmt.Errorf("shard %d unavailable: %v", sh.info.Index, err)
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				return fmt.Errorf("shard %d unavailable: %v", sh.info.Index, err)
			}
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("shard %d answered status %d: %s", sh.info.Index, resp.StatusCode, body)
			}
			var ep struct {
				Epoch uint64 `json:"epoch"`
			}
			if err := json.Unmarshal(body, &ep); err != nil {
				return fmt.Errorf("shard %d: %v", sh.info.Index, err)
			}
			if err := json.Unmarshal(body, &out[i]); err != nil {
				return fmt.Errorf("shard %d: %v", sh.info.Index, err)
			}
			epochs[i] = ep.Epoch
			sh.observeEpoch(ep.Epoch)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, 0, err
	}
	min := epochs[0]
	for _, e := range epochs[1:] {
		if e < min {
			min = e
		}
	}
	return out, min, nil
}

func (rt *Router) handleSummary(w http.ResponseWriter, r *http.Request) {
	parts, epoch, err := gather[query.SummaryPartial](rt, r.Context(), rt.shards, "/v1/cluster/summary")
	if err != nil {
		rt.respondErr(w, r, http.StatusServiceUnavailable, err.Error())
		return
	}
	merged, err := query.MergeSummaryPartials(parts)
	if err != nil {
		rt.respondErr(w, r, http.StatusInternalServerError, err.Error())
		return
	}
	rt.respond(w, r, http.StatusOK, merged.Finalize(), epoch)
}

func (rt *Router) handleAS(w http.ResponseWriter, r *http.Request) {
	n, err := serve.ParseASN(r.PathValue("asn"))
	if err != nil {
		rt.respondErr(w, r, http.StatusBadRequest, err.Error())
		return
	}
	parts, epoch, err := gather[query.ASPartial](rt, r.Context(), rt.shards, fmt.Sprintf("/v1/cluster/as/%d", n))
	if err != nil {
		rt.respondErr(w, r, http.StatusServiceUnavailable, err.Error())
		return
	}
	v, ok := query.MergeASPartials(parts)
	if !ok {
		rt.respond(w, r, http.StatusNotFound, serve.ErrorBody{Error: serve.ErrASNotFound(n)}, epoch)
		return
	}
	rt.respond(w, r, http.StatusOK, v, epoch)
}

func (rt *Router) handlePrefix(w http.ResponseWriter, r *http.Request) {
	p, err := ipv4.ParsePrefix(r.PathValue("cidr"))
	if err != nil {
		rt.respondErr(w, r, http.StatusBadRequest, err.Error())
		return
	}
	if err := query.CheckPrefix(p); err != nil {
		rt.respondErr(w, r, http.StatusBadRequest, err.Error())
		return
	}
	first := uint32(p.FirstBlock())
	last := first + uint32(p.NumBlocks()) - 1
	var covering []*shardState
	for _, sh := range rt.shards {
		if sh.info.Hi > first && sh.info.Lo <= last {
			covering = append(covering, sh)
		}
	}
	parts, epoch, err := gather[query.PrefixPartial](rt, r.Context(), covering, "/v1/cluster/prefix/"+p.String())
	if err != nil {
		rt.respondErr(w, r, http.StatusServiceUnavailable, err.Error())
		return
	}
	merged, err := query.MergePrefixPartials(parts, serve.DefaultPrefixBlockList)
	if err != nil {
		rt.respondErr(w, r, http.StatusInternalServerError, err.Error())
		return
	}
	rt.respond(w, r, http.StatusOK, merged, epoch)
}

// routerHealth is the router's /v1/healthz body.
type routerHealth struct {
	Status string        `json:"status"`
	Epoch  uint64        `json:"epoch"`
	Shards []shardHealth `json:"shardStates"`
}

type shardHealth struct {
	Shard  int    `json:"shard"`
	URL    string `json:"url"`
	Status string `json:"status"`
	Epoch  uint64 `json:"epoch"`
	Error  string `json:"error,omitempty"`
}

// handleHealthz live-probes every shard's /v1/healthz with bounded
// concurrency, updates the per-shard health state, and aggregates:
// 200 "ok" when every shard serves a snapshot, 503 "degraded"
// otherwise, with the minimum shard epoch as the cluster epoch.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	states := make([]shardHealth, len(rt.shards))
	var g par.Group
	g.SetLimit(rt.gather)
	for i, sh := range rt.shards {
		i, sh := i, sh
		g.Go(func() error {
			st := shardHealth{Shard: sh.info.Index, URL: sh.base}
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, sh.base+"/v1/healthz", nil)
			if err == nil {
				var resp *http.Response
				if resp, err = rt.client.Do(req); err == nil {
					var body struct {
						Status string `json:"status"`
						Epoch  uint64 `json:"epoch"`
					}
					err = json.NewDecoder(resp.Body).Decode(&body)
					resp.Body.Close()
					if err == nil {
						st.Status, st.Epoch = body.Status, body.Epoch
					}
				}
			}
			if err != nil {
				st.Status, st.Error = "unreachable", err.Error()
			} else if st.Status == "ok" {
				sh.observeEpoch(st.Epoch)
			}
			states[i] = st
			return nil
		})
	}
	g.Wait() //nolint:errcheck // probe outcomes land in states

	body := routerHealth{Status: "ok", Shards: states}
	status := http.StatusOK
	for i, st := range states {
		if st.Status != "ok" {
			body.Status = "degraded"
			status = http.StatusServiceUnavailable
		}
		if i == 0 || st.Epoch < body.Epoch {
			body.Epoch = st.Epoch
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}
