package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ipscope/internal/ipv4"
	"ipscope/internal/par"
	"ipscope/internal/query"
	"ipscope/internal/serve/wire"
)

// Shard transports selectable via RouterOptions.Transport.
const (
	// TransportHTTP proxies and gathers over the shards' public JSON
	// API — the universal default.
	TransportHTTP = "http"
	// TransportRPC uses the binary RPC protocol (internal/rpc) for
	// every shard that advertises an RPC endpoint in its cluster info,
	// falling back to HTTP per shard otherwise.
	TransportRPC = "rpc"
)

// RouterOptions tunes a Router.
type RouterOptions struct {
	// HTTPClient performs shard HTTP requests (discovery always, data
	// traffic on the HTTP transport); nil means a client tuned for
	// persistent shard connections (see newShardHTTPClient).
	HTTPClient *http.Client
	// Transport selects the shard data transport: TransportHTTP
	// (default) or TransportRPC.
	Transport string
	// Gather bounds the fan-out concurrency of scatter-gather
	// endpoints; <= 0 means DefaultGather.
	Gather int
	// InfoTimeout bounds how long NewRouter waits for every shard to
	// answer /v1/cluster/info (shards may still be compiling their
	// slice); <= 0 means DefaultInfoTimeout.
	InfoTimeout time.Duration
	// Replicas declares the fleet's replication factor R: the shard
	// URLs form R complete copies of a len(urls)/R-range partition
	// (every range served by exactly R processes). It must be set
	// explicitly — discovery alone cannot distinguish a G=1,R=2 fleet
	// from two not-yet-partitioned live shards, which also both report
	// the full range. <= 0 means 1, the pre-replication layout.
	Replicas int
	// ProbeInterval is the cadence of the background health prober
	// (probes healthy replicas to catch silent death, and down
	// replicas whose backoff expired to re-admit them). 0 means
	// DefaultProbeInterval; < 0 disables background probing — health
	// is then tracked only passively (request failures) and actively
	// by /v1/healthz.
	ProbeInterval time.Duration
	// FailBackoff is the re-admission backoff after a replica's first
	// consecutive failure, doubling per further failure up to
	// MaxBackoff; <= 0 means DefaultFailBackoff.
	FailBackoff time.Duration
	// MaxBackoff caps the exponential re-admission backoff; <= 0 means
	// DefaultMaxBackoff.
	MaxBackoff time.Duration
}

// DefaultGather bounds scatter-gather concurrency when unset.
const DefaultGather = 8

// DefaultInfoTimeout bounds the startup partition discovery.
const DefaultInfoTimeout = 30 * time.Second

// DefaultProbeInterval is the background health probe cadence.
const DefaultProbeInterval = time.Second

// DefaultFailBackoff is the initial re-admission backoff after a
// replica failure.
const DefaultFailBackoff = 250 * time.Millisecond

// DefaultMaxBackoff caps the exponential re-admission backoff.
const DefaultMaxBackoff = 10 * time.Second

// newShardHTTPClient builds the default client for router→shard HTTP
// traffic. The zero-value http.Transport keeps only 2 idle connections
// per host (DefaultMaxIdleConnsPerHost), so a gather=8 fan-out or a
// point-lookup burst re-dials the same shard on nearly every request;
// a router talks to a small, fixed fleet and should keep every
// connection warm.
func newShardHTTPClient() *http.Client {
	return &http.Client{
		Timeout: 10 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		},
	}
}

// Router fronts a fleet of shard servers with the single-node /v1/*
// API. The fleet is grouped into ranges: R replica processes per
// contiguous block range, every replica serving a bit-identical index
// (builds are deterministic), so any replica of a range is an exact
// stand-in for any other and failover needs no quorum.
//
// Point lookups (/v1/addr, /v1/block) go to a healthy replica of the
// range owning the block — the response, epoch field and ETag are the
// replica's, with X-Shard/X-Replica headers naming it — and retry on
// the next replica when the first is unreachable. Aggregates
// (/v1/summary, /v1/as, /v1/prefix, /v1/delta, /v1/movement) fan out
// one fetch per covering range with bounded concurrency, failing over
// within each range mid-gather, fold the mergeable partials, and
// answer with the minimum epoch across the ranges consulted — the
// oldest snapshot the answer can depend on.
//
// Health is a per-replica state machine: request failures mark a
// replica down passively, a background prober (and every /v1/healthz)
// probes it, and exponential backoff gates re-admission. The fleet
// keeps answering 200s with any single replica of each range dead;
// "degraded" (healthz 503, point-lookup 503s for the orphaned blocks)
// now means all replicas of some range are down. Shard traffic runs
// over the transport selected at construction; the public surface is
// identical over both.
type Router struct {
	ranges   []*rangeGroup // ascending owned-range order
	replicas int           // replication factor R
	gather   int

	probeInterval time.Duration
	failBackoff   time.Duration
	maxBackoff    time.Duration

	handler http.Handler

	closeOnce sync.Once
	stopProbe chan struct{}

	srvMu   sync.Mutex
	httpSrv *http.Server
	serveCh chan error
}

// rangeGroup is one contiguous block range and the replica processes
// serving it. next is the round-robin cursor spreading point lookups
// across healthy replicas.
type rangeGroup struct {
	shard  int // partition index, from the replicas' shard info
	lo, hi uint32
	// replicas in (replica id, base URL) order — index 0 is the
	// primary copy, so an R=1 fleet reproduces the pre-replication
	// layout exactly.
	replicas []*replicaState
	next     atomic.Uint64
}

// replicaState is one replica process: its address, identity,
// transport client, the highest epoch the router has observed it
// serving, and the failover health state machine.
//
// The state machine has three tiers, computed against the clock:
// healthy (not marked down), due (down, backoff expired — worth a
// retry), and backing off (down, too soon). Requests and probes feed
// it: a transport failure marks the replica down and doubles its
// backoff; a healthy answer (any deterministic status — the process
// proved itself) resets it. A warming 503 does neither: the process
// is up and will publish on its own, but cannot answer data yet.
type replicaState struct {
	base   string
	info   wire.ShardInfo
	client Client
	epoch  atomic.Uint64

	mu      sync.Mutex
	down    bool
	fails   int
	retryAt time.Time
}

// observeEpoch records a served epoch (monotonic: shards never roll
// back a published snapshot).
func (rp *replicaState) observeEpoch(e uint64) {
	for {
		cur := rp.epoch.Load()
		if e <= cur || rp.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// Health tiers, ordered by routing preference.
const (
	tierHealthy = iota // not marked down
	tierDue            // down, backoff expired — candidate for re-admission
	tierBackoff        // down, still backing off — last resort only
)

func (rp *replicaState) tier(now time.Time) int {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	switch {
	case !rp.down:
		return tierHealthy
	case !now.Before(rp.retryAt):
		return tierDue
	default:
		return tierBackoff
	}
}

// markDown records a transport-level failure: the replica enters (or
// stays in) the down state with an exponentially growing re-admission
// backoff.
func (rp *replicaState) markDown(base, max time.Duration) {
	now := time.Now()
	rp.mu.Lock()
	defer rp.mu.Unlock()
	rp.down = true
	if rp.fails < 32 {
		rp.fails++
	}
	backoff := base << (rp.fails - 1)
	if backoff <= 0 || backoff > max {
		backoff = max
	}
	rp.retryAt = now.Add(backoff)
}

// markUp resets the health state after any successful answer.
func (rp *replicaState) markUp() {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	rp.down = false
	rp.fails = 0
	rp.retryAt = time.Time{}
}

// pick orders the range's replicas for one request: healthy replicas
// first (rotated round-robin so load spreads), then down replicas
// whose backoff expired, then — as a last resort — replicas still
// backing off. The last tier is what preserves R=1 semantics: a
// range's sole dead replica is still attempted on every request (a
// fast connection-refused produces the degraded 503, and a restarted
// process is re-admitted by the very next request), exactly as before
// replication.
func (g *rangeGroup) pick(now time.Time) []*replicaState {
	if len(g.replicas) == 1 {
		return g.replicas
	}
	var up, due, rest []*replicaState
	for _, rp := range g.replicas {
		switch rp.tier(now) {
		case tierHealthy:
			up = append(up, rp)
		case tierDue:
			due = append(due, rp)
		default:
			rest = append(rest, rp)
		}
	}
	if len(up) > 1 {
		rot := int(g.next.Add(1)-1) % len(up)
		rotated := make([]*replicaState, 0, len(up))
		rotated = append(rotated, up[rot:]...)
		rotated = append(rotated, up[:rot]...)
		up = rotated
	}
	order := up
	order = append(order, due...)
	order = append(order, rest...)
	return order
}

// NewRouter discovers the fleet behind the given shard base URLs
// (e.g. "http://127.0.0.1:8091") by reading each process's
// /v1/cluster/info, groups replicas by owned range, validates that
// the ranges tile the whole block space exactly once with
// opts.Replicas processes each, and returns a Router serving the
// merged /v1/* API. Discovery always runs over HTTP; with
// TransportRPC, data traffic upgrades to the binary protocol for
// every replica advertising an rpcAddr, replica by replica.
func NewRouter(urls []string, opts RouterOptions) (*Router, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("cluster: no shard URLs")
	}
	hc := opts.HTTPClient
	if hc == nil {
		hc = newShardHTTPClient()
	}
	transport := opts.Transport
	if transport == "" {
		transport = TransportHTTP
	}
	if transport != TransportHTTP && transport != TransportRPC {
		return nil, fmt.Errorf("cluster: unknown transport %q", transport)
	}
	gather := opts.Gather
	if gather <= 0 {
		gather = DefaultGather
	}
	infoTimeout := opts.InfoTimeout
	if infoTimeout <= 0 {
		infoTimeout = DefaultInfoTimeout
	}
	replicas := opts.Replicas
	if replicas <= 0 {
		replicas = 1
	}
	if len(urls)%replicas != 0 {
		return nil, fmt.Errorf("cluster: %d shard URLs do not divide into %d replicas per range", len(urls), replicas)
	}
	wantRanges := len(urls) / replicas
	probeInterval := opts.ProbeInterval
	if probeInterval == 0 {
		probeInterval = DefaultProbeInterval
	}
	failBackoff := opts.FailBackoff
	if failBackoff <= 0 {
		failBackoff = DefaultFailBackoff
	}
	maxBackoff := opts.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = DefaultMaxBackoff
	}

	rt := &Router{
		replicas:      replicas,
		gather:        gather,
		probeInterval: probeInterval,
		failBackoff:   failBackoff,
		maxBackoff:    maxBackoff,
		stopProbe:     make(chan struct{}),
	}
	type rkey struct{ lo, hi uint32 }
	groups := make(map[rkey]*rangeGroup)
	deadline := time.Now().Add(infoTimeout)
	for _, base := range urls {
		info, err := fetchInfo(hc, base, wantRanges, deadline)
		if err != nil {
			rt.Close()
			return nil, fmt.Errorf("cluster: shard %s: %w", base, err)
		}
		rp := &replicaState{base: base, info: info.ShardInfo}
		if transport == TransportRPC && info.RPCAddr != "" {
			rp.client = newRPCShardClient(info.Index, info.RPCAddr)
		} else {
			rp.client = newHTTPShardClient(info.Index, base, hc)
		}
		k := rkey{info.Lo, info.Hi}
		g := groups[k]
		if g == nil {
			g = &rangeGroup{shard: info.Index, lo: info.Lo, hi: info.Hi}
			groups[k] = g
			rt.ranges = append(rt.ranges, g)
		}
		g.replicas = append(g.replicas, rp)
	}
	sort.Slice(rt.ranges, func(i, j int) bool { return rt.ranges[i].lo < rt.ranges[j].lo })
	for _, g := range rt.ranges {
		g := g
		sort.Slice(g.replicas, func(i, j int) bool {
			a, b := g.replicas[i], g.replicas[j]
			if a.info.Replica != b.info.Replica {
				return a.info.Replica < b.info.Replica
			}
			return a.base < b.base
		})
	}
	if err := validateFleet(rt.ranges, wantRanges, replicas); err != nil {
		rt.Close()
		return nil, err
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/addr/{ip}", rt.handleAddr)
	mux.HandleFunc("GET /v1/block/{prefix...}", rt.handleBlock)
	mux.HandleFunc("GET /v1/prefix/{cidr...}", rt.handlePrefix)
	mux.HandleFunc("GET /v1/as/{asn}", rt.handleAS)
	mux.HandleFunc("GET /v1/summary", rt.handleSummary)
	mux.HandleFunc("GET /v1/delta", rt.handleDelta)
	mux.HandleFunc("GET /v1/movement", rt.handleMovement)
	mux.HandleFunc("GET /v1/healthz", rt.handleHealthz)
	rt.handler = mux
	if probeInterval > 0 {
		go rt.probeLoop()
	}
	return rt, nil
}

// validateFleet checks the sorted range groups tile [0, 1<<24)
// exactly — no gaps, no overlaps — with exactly replicas processes
// serving each range.
func validateFleet(ranges []*rangeGroup, wantRanges, replicas int) error {
	if len(ranges) != wantRanges {
		return fmt.Errorf("cluster: fleet reports %d distinct ranges, want %d (%d URLs at %d replicas per range)",
			len(ranges), wantRanges, wantRanges*replicas, replicas)
	}
	next := uint32(0)
	for _, g := range ranges {
		if len(g.replicas) != replicas {
			return fmt.Errorf("cluster: range [%d, %d) has %d replicas, want %d", g.lo, g.hi, len(g.replicas), replicas)
		}
		if g.lo != next {
			return fmt.Errorf("cluster: partition gap/overlap at block %d (shard %d starts at %d)", next, g.shard, g.lo)
		}
		if g.hi < g.lo {
			return fmt.Errorf("cluster: shard %d has inverted range [%d, %d)", g.shard, g.lo, g.hi)
		}
		next = g.hi
	}
	if next != blockSpace {
		return fmt.Errorf("cluster: partition covers blocks up to %d, want %d", next, uint32(blockSpace))
	}
	return nil
}

// fetchInfo reads one shard's cluster info, retrying until the deadline
// while the shard is unreachable, still compiling its slice, or not yet
// partition-aware: a live shard only learns its range (and true shard
// count) from the stream's meta event, so until then its info reports
// the default one-shard partition — treated here as "not ready yet",
// not as a hard mismatch. wantCount is the number of distinct ranges
// (not processes): replicas of a range share its shard coordinates.
func fetchInfo(hc *http.Client, base string, wantCount int, deadline time.Time) (wire.ClusterInfo, error) {
	var lastErr error
	for {
		var info wire.ClusterInfo
		resp, err := hc.Get(base + "/v1/cluster/info")
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			switch {
			case rerr != nil:
				err = rerr
			case resp.StatusCode != http.StatusOK:
				err = fmt.Errorf("cluster info: status %d", resp.StatusCode)
			default:
				switch err = json.Unmarshal(body, &info); {
				case err != nil:
				case info.Count != wantCount:
					err = fmt.Errorf("cluster info: shard reports a %d-shard partition, router fronts %d", info.Count, wantCount)
				default:
					return info, nil
				}
			}
		}
		lastErr = err
		if time.Now().After(deadline) {
			return wire.ClusterInfo{}, fmt.Errorf("cluster info unavailable: %w", lastErr)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// Handler returns the router's HTTP handler (for tests and embedding).
func (rt *Router) Handler() http.Handler { return rt.handler }

// NumShards returns the number of distinct block ranges behind the
// router.
func (rt *Router) NumShards() int { return len(rt.ranges) }

// NumReplicas returns the replication factor R.
func (rt *Router) NumReplicas() int { return rt.replicas }

// Close stops the background prober and releases every replica
// client's persistent connections. It does not stop a Listen-ing
// server — use Shutdown for that.
func (rt *Router) Close() {
	rt.closeOnce.Do(func() { close(rt.stopProbe) })
	for _, g := range rt.ranges {
		for _, rp := range g.replicas {
			if rp.client != nil {
				rp.client.Close()
			}
		}
	}
}

// Listen binds addr and serves in the background until Shutdown.
func (rt *Router) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	rt.srvMu.Lock()
	rt.httpSrv = &http.Server{Handler: rt.handler}
	rt.serveCh = make(chan error, 1)
	srv, ch := rt.httpSrv, rt.serveCh
	rt.srvMu.Unlock()
	go func() {
		err := srv.Serve(ln)
		if err == http.ErrServerClosed {
			err = nil
		}
		ch <- err
	}()
	return ln.Addr(), nil
}

// Shutdown stops accepting new requests and drains in-flight ones.
func (rt *Router) Shutdown(ctx context.Context) error {
	rt.srvMu.Lock()
	srv, ch := rt.httpSrv, rt.serveCh
	rt.srvMu.Unlock()
	if srv == nil {
		return nil
	}
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	return <-ch
}

// markDown applies the router's backoff tuning to a replica failure.
func (rt *Router) markDown(rp *replicaState) {
	rp.markDown(rt.failBackoff, rt.maxBackoff)
}

// probeLoop is the background health prober: every ProbeInterval it
// probes healthy replicas (catching silent death before a request
// does) and down replicas whose backoff expired (re-admitting them
// without waiting for traffic). Replicas still backing off are left
// alone — that is the point of the backoff.
func (rt *Router) probeLoop() {
	t := time.NewTicker(rt.probeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stopProbe:
			return
		case <-t.C:
			rt.probeOnce()
		}
	}
}

func (rt *Router) probeOnce() {
	now := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), rt.probeInterval)
	defer cancel()
	var g par.Group
	g.SetLimit(rt.gather)
	for _, rg := range rt.ranges {
		for _, rp := range rg.replicas {
			rp := rp
			if rp.tier(now) == tierBackoff {
				continue
			}
			g.Go(func() error {
				status, epoch, _, _, err := rp.client.Health(ctx)
				switch {
				case err != nil:
					rt.markDown(rp)
				case status == "ok":
					rp.markUp()
					rp.observeEpoch(epoch)
				}
				// Any other status (warming): alive but not servable;
				// leave the state machine untouched.
				return nil
			})
		}
	}
	g.Wait() //nolint:errcheck // probe outcomes land in the state machine
}

// ownerOf returns the range group owning blk.
func (rt *Router) ownerOf(blk ipv4.Block) *rangeGroup {
	for _, g := range rt.ranges {
		if uint32(blk) >= g.lo && uint32(blk) < g.hi {
			return g
		}
	}
	// Unreachable: validateFleet proved full coverage.
	return rt.ranges[len(rt.ranges)-1]
}

// minEpoch returns the lowest last-observed epoch across ranges — the
// oldest snapshot a merged answer can depend on (0 until every range
// has been observed serving). A range's epoch is its best replica's:
// any replica at that epoch can serve it.
func (rt *Router) minEpoch() uint64 {
	min := uint64(0)
	for i, g := range rt.ranges {
		best := uint64(0)
		for _, rp := range g.replicas {
			if e := rp.epoch.Load(); e > best {
				best = e
			}
		}
		if i == 0 || best < min {
			min = best
		}
	}
	return min
}

func (rt *Router) respondErr(w http.ResponseWriter, r *http.Request, status int, msg string) {
	wire.Respond(w, r, status, wire.ErrorBody{Error: msg}, rt.minEpoch())
}

// parseEpochParam extracts the ?epoch= time-travel target (0 = live
// snapshot). The router validates it before any shard traffic, so both
// transports reject bad values with the same shared 400 text.
func (rt *Router) parseEpochParam(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	raw := r.URL.Query().Get("epoch")
	if raw == "" {
		return 0, true
	}
	e, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		rt.respondErr(w, r, http.StatusBadRequest, wire.ErrInvalidEpoch(raw))
		return 0, false
	}
	return e, true
}

// writeNotRetained serves the canonical not-retained 404 — the same
// body bytes wire.NotRetainedBody gives a single shard, with the
// cluster-wide common range in place of the shard's own.
func writeNotRetained(w http.ResponseWriter, asked, oldest, newest uint64) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusNotFound)
	w.Write(wire.NotRetainedBody(asked, oldest, newest))
}

// foldCommonRange folds per-range retained ranges into the
// cluster-wide common range: max of oldests, min of newests — the
// epochs every range can still answer. A range retaining nothing
// (newest 0) collapses the range to empty (0, 0).
func foldCommonRange(oldests, newests []uint64) (oldest, newest uint64) {
	for i := range oldests {
		if oldests[i] > oldest {
			oldest = oldests[i]
		}
		if i == 0 || newests[i] < newest {
			newest = newests[i]
		}
	}
	if newest == 0 || oldest > newest {
		return 0, 0
	}
	return oldest, newest
}

// commonRange live-probes the fleet's retained ranges and folds the
// cluster-wide common range. Within a range the answering replicas'
// rings are intersected (a routed as-of query may land on any of
// them); across ranges foldCommonRange applies. Used on the rare
// aggregate not-retained path, where the failing gather only learned
// one range's ring.
func (rt *Router) commonRange(ctx context.Context) (oldest, newest uint64) {
	oldests := make([]uint64, len(rt.ranges))
	newests := make([]uint64, len(rt.ranges))
	var g par.Group
	g.SetLimit(rt.gather)
	for i, rg := range rt.ranges {
		i, rg := i, rg
		g.Go(func() error {
			var ro, rn uint64
			seen := false
			for _, rp := range rg.replicas {
				_, _, o, n, err := rp.client.Health(ctx)
				if err != nil {
					continue
				}
				if !seen {
					ro, rn, seen = o, n, true
					continue
				}
				if o > ro {
					ro = o
				}
				if n < rn {
					rn = n
				}
			}
			oldests[i], newests[i] = ro, rn
			return nil
		})
	}
	g.Wait() //nolint:errcheck // unreachable replicas keep their zero range
	return foldCommonRange(oldests, newests)
}

// respondNotRetained answers a fan-out that hit an unretained epoch
// with the common-range 404.
func (rt *Router) respondNotRetained(w http.ResponseWriter, r *http.Request, asked uint64) {
	oldest, newest := rt.commonRange(r.Context())
	writeNotRetained(w, asked, oldest, newest)
}

// relay answers a point lookup with an owning replica's response —
// body, epoch field, ETag and cache disposition are the replica's,
// plus X-Shard/X-Replica headers naming it. Replicas are tried in
// pick() order: an unreachable one is marked down and the next tried
// (any replica's bytes are exact — builds are deterministic); a
// warming one is remembered and its 503 relayed only if no sibling
// can do better. Only when every replica of the range is unreachable
// does the lookup 503 on the unavailable path.
func (rt *Router) relay(w http.ResponseWriter, r *http.Request, rg *rangeGroup, pr PointRequest) {
	pr.URI = r.URL.RequestURI()
	pr.IfNoneMatch = r.Header.Get("If-None-Match")
	var lastErr error
	var warming *PointResponse
	var warmingFrom *replicaState
	for _, rp := range rg.pick(time.Now()) {
		resp, err := rp.client.Point(r.Context(), pr)
		if err != nil {
			lastErr = err
			if isUnavailable(err) {
				rt.markDown(rp)
				continue
			}
			rt.respondErr(w, r, http.StatusServiceUnavailable, err.Error())
			return
		}
		if resp.Status == http.StatusServiceUnavailable {
			// Warming: the process is alive but has no snapshot yet. A
			// sibling replica may have one — keep looking, and keep the
			// response in case none does.
			if warming == nil {
				warming, warmingFrom = &resp, rp
			}
			continue
		}
		rp.markUp()
		writePoint(w, resp, rg, rp)
		return
	}
	if warming != nil {
		writePoint(w, *warming, rg, warmingFrom)
		return
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("shard %d unavailable", rg.shard)
	}
	rt.respondErr(w, r, http.StatusServiceUnavailable, lastErr.Error())
}

// writePoint relays a replica's point response verbatim.
func writePoint(w http.ResponseWriter, resp PointResponse, rg *rangeGroup, rp *replicaState) {
	for h, v := range map[string]string{
		"ETag":         resp.ETag,
		"Content-Type": resp.ContentType,
		"X-Cache":      resp.XCache,
		"Retry-After":  resp.RetryAfter,
	} {
		if v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Shard", strconv.Itoa(rg.shard))
	w.Header().Set("X-Replica", strconv.Itoa(rp.info.Replica))
	w.WriteHeader(resp.Status)
	w.Write(resp.Body)
}

func (rt *Router) handleAddr(w http.ResponseWriter, r *http.Request) {
	a, err := ipv4.ParseAddr(r.PathValue("ip"))
	if err != nil {
		rt.respondErr(w, r, http.StatusBadRequest, err.Error())
		return
	}
	epoch, ok := rt.parseEpochParam(w, r)
	if !ok {
		return
	}
	rt.relay(w, r, rt.ownerOf(a.Block()), PointRequest{IsAddr: true, Addr: a, Epoch: epoch})
}

func (rt *Router) handleBlock(w http.ResponseWriter, r *http.Request) {
	blk, err := wire.Parse24(r.PathValue("prefix"))
	if err != nil {
		rt.respondErr(w, r, http.StatusBadRequest, err.Error())
		return
	}
	epoch, ok := rt.parseEpochParam(w, r)
	if !ok {
		return
	}
	rt.relay(w, r, rt.ownerOf(blk), PointRequest{Block: blk, Epoch: epoch})
}

// fetchRange performs one range's share of a gather, failing over
// across the range's replicas in pick() order. Transport failures
// mark the replica down and move on; warming 503s move on without a
// health mark; any deterministic answer — success, a parse 400, the
// typed not-retained 404 — is returned immediately, because every
// replica of the range would answer it identically. Only when no
// replica produced a deterministic answer does the last failover
// error surface.
func fetchRange[T any](rt *Router, ctx context.Context, rg *rangeGroup,
	fetch func(context.Context, Client) (T, uint64, error)) (T, uint64, error) {
	var zero T
	var lastErr error
	for _, rp := range rg.pick(time.Now()) {
		v, epoch, err := fetch(ctx, rp.client)
		if err != nil {
			if isUnavailable(err) {
				rt.markDown(rp)
				lastErr = err
				continue
			}
			if isWarming(err) {
				lastErr = err
				continue
			}
			rp.markUp()
			return zero, 0, err
		}
		rp.markUp()
		rp.observeEpoch(epoch)
		return v, epoch, nil
	}
	return zero, 0, lastErr
}

// gatherPartials fans one fetch per range out with bounded
// concurrency, failing over inside each range via fetchRange. A range
// with no answering replica fails the whole gather — a partial
// aggregate would silently misreport the dataset. The returned epoch
// is the minimum across ranges.
func gatherPartials[T any](rt *Router, ctx context.Context, ranges []*rangeGroup,
	fetch func(context.Context, Client) (T, uint64, error)) ([]T, uint64, error) {
	out := make([]T, len(ranges))
	epochs := make([]uint64, len(ranges))
	var g par.Group
	g.SetLimit(rt.gather)
	for i, rg := range ranges {
		i, rg := i, rg
		g.Go(func() error {
			v, epoch, err := fetchRange(rt, ctx, rg, fetch)
			if err != nil {
				return err
			}
			out[i], epochs[i] = v, epoch
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, 0, err
	}
	min := epochs[0]
	for _, e := range epochs[1:] {
		if e < min {
			min = e
		}
	}
	return out, min, nil
}

// gatherErr answers a failed aggregate gather: a not-retained epoch
// becomes the common-range 404, anything else the 503 unavailable path.
func (rt *Router) gatherErr(w http.ResponseWriter, r *http.Request, err error, asked uint64) {
	var nr *wire.NotRetainedError
	if errors.As(err, &nr) {
		rt.respondNotRetained(w, r, asked)
		return
	}
	rt.respondErr(w, r, http.StatusServiceUnavailable, err.Error())
}

func (rt *Router) handleSummary(w http.ResponseWriter, r *http.Request) {
	asOf, ok := rt.parseEpochParam(w, r)
	if !ok {
		return
	}
	parts, epoch, err := gatherPartials(rt, r.Context(), rt.ranges,
		func(ctx context.Context, c Client) (query.SummaryPartial, uint64, error) {
			return c.Summary(ctx, asOf)
		})
	if err != nil {
		rt.gatherErr(w, r, err, asOf)
		return
	}
	merged, err := query.MergeSummaryPartials(parts)
	if err != nil {
		rt.respondErr(w, r, http.StatusInternalServerError, err.Error())
		return
	}
	wire.Respond(w, r, http.StatusOK, merged.Finalize(), epoch)
}

func (rt *Router) handleAS(w http.ResponseWriter, r *http.Request) {
	n, err := wire.ParseASN(r.PathValue("asn"))
	if err != nil {
		rt.respondErr(w, r, http.StatusBadRequest, err.Error())
		return
	}
	asOf, ok := rt.parseEpochParam(w, r)
	if !ok {
		return
	}
	parts, epoch, err := gatherPartials(rt, r.Context(), rt.ranges,
		func(ctx context.Context, c Client) (query.ASPartial, uint64, error) {
			return c.AS(ctx, n, asOf)
		})
	if err != nil {
		rt.gatherErr(w, r, err, asOf)
		return
	}
	v, ok := query.MergeASPartials(parts)
	if !ok {
		wire.Respond(w, r, http.StatusNotFound, wire.ErrorBody{Error: wire.ErrASNotFound(n)}, epoch)
		return
	}
	wire.Respond(w, r, http.StatusOK, v, epoch)
}

func (rt *Router) handlePrefix(w http.ResponseWriter, r *http.Request) {
	p, err := ipv4.ParsePrefix(r.PathValue("cidr"))
	if err != nil {
		rt.respondErr(w, r, http.StatusBadRequest, err.Error())
		return
	}
	if err := query.CheckPrefix(p); err != nil {
		rt.respondErr(w, r, http.StatusBadRequest, err.Error())
		return
	}
	first := uint32(p.FirstBlock())
	last := first + uint32(p.NumBlocks()) - 1
	var covering []*rangeGroup
	for _, rg := range rt.ranges {
		if rg.hi > first && rg.lo <= last {
			covering = append(covering, rg)
		}
	}
	asOf, ok := rt.parseEpochParam(w, r)
	if !ok {
		return
	}
	cidr := p.String()
	parts, epoch, err := gatherPartials(rt, r.Context(), covering,
		func(ctx context.Context, c Client) (query.PrefixPartial, uint64, error) {
			return c.Prefix(ctx, cidr, asOf)
		})
	if err != nil {
		rt.gatherErr(w, r, err, asOf)
		return
	}
	merged, err := query.MergePrefixPartials(parts, wire.DefaultPrefixBlockList)
	if err != nil {
		rt.respondErr(w, r, http.StatusInternalServerError, err.Error())
		return
	}
	wire.Respond(w, r, http.StatusOK, merged, epoch)
}

// handleDelta scatter-gathers /v1/delta?from=&to= to every range
// (failing over within each) and folds the mergeable partials
// exactly. Not-retained answers do not fail the gather: every range
// reports its retained ring (inside the success payload or the typed
// 404), the router folds the cluster-wide common range, and a missing
// epoch answers the canonical 404 body with that range — blaming from
// before to, the same check order a single shard applies.
func (rt *Router) handleDelta(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	fromRaw, toRaw := q.Get("from"), q.Get("to")
	from, errFrom := strconv.ParseUint(fromRaw, 10, 64)
	to, errTo := strconv.ParseUint(toRaw, 10, 64)
	if errFrom != nil || errTo != nil || from >= to {
		rt.respondErr(w, r, http.StatusBadRequest, wire.ErrDeltaParams(fromRaw, toRaw))
		return
	}
	type deltaShare struct {
		p              query.DeltaPartial
		oldest, newest uint64
	}
	parts := make([]query.DeltaPartial, len(rt.ranges))
	oldests := make([]uint64, len(rt.ranges))
	newests := make([]uint64, len(rt.ranges))
	missing := false
	var mu sync.Mutex
	var g par.Group
	g.SetLimit(rt.gather)
	for i, rg := range rt.ranges {
		i, rg := i, rg
		g.Go(func() error {
			v, _, err := fetchRange(rt, r.Context(), rg,
				func(ctx context.Context, c Client) (deltaShare, uint64, error) {
					p, oldest, newest, err := c.Delta(ctx, from, to)
					return deltaShare{p: p, oldest: oldest, newest: newest}, 0, err
				})
			if err != nil {
				var nr *wire.NotRetainedError
				if !errors.As(err, &nr) {
					return err
				}
				oldests[i], newests[i] = nr.Oldest, nr.Newest
				mu.Lock()
				missing = true
				mu.Unlock()
				return nil
			}
			parts[i], oldests[i], newests[i] = v.p, v.oldest, v.newest
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		rt.respondErr(w, r, http.StatusServiceUnavailable, err.Error())
		return
	}
	if missing {
		oldest, newest := foldCommonRange(oldests, newests)
		asked := from
		if newest > 0 && from >= oldest && from <= newest {
			asked = to
		}
		writeNotRetained(w, asked, oldest, newest)
		return
	}
	merged, err := query.MergeDeltaPartials(parts, query.DefaultDeltaBlockList)
	if err != nil {
		rt.respondErr(w, r, http.StatusInternalServerError, err.Error())
		return
	}
	wire.Respond(w, r, http.StatusOK, merged, to)
}

// handleMovement scatter-gathers /v1/movement?last=N; the merge keeps
// the epochs present on every range, so the routed series covers the
// cluster-wide common range.
func (rt *Router) handleMovement(w http.ResponseWriter, r *http.Request) {
	last := 0
	if raw := r.URL.Query().Get("last"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			rt.respondErr(w, r, http.StatusBadRequest, wire.ErrInvalidLast(raw))
			return
		}
		last = n
	}
	parts, _, err := gatherPartials(rt, r.Context(), rt.ranges,
		func(ctx context.Context, c Client) (query.MovementPartial, uint64, error) {
			p, _, newest, err := c.Movement(ctx, last)
			return p, newest, err
		})
	if err != nil {
		rt.respondErr(w, r, http.StatusServiceUnavailable, err.Error())
		return
	}
	merged, err := query.MergeMovementPartials(parts)
	if err != nil {
		rt.respondErr(w, r, http.StatusInternalServerError, err.Error())
		return
	}
	wire.Respond(w, r, http.StatusOK, merged, merged.NewestEpoch)
}

// handleHealthz live-probes every replica with bounded concurrency —
// including replicas still backing off, so an operator hitting
// /v1/healthz is an active re-admission path — feeds the health state
// machine, and aggregates per range: a range is "ok" when every
// replica serves, "partial" when some do, "down" when none does. The
// fleet is "degraded" (503) only when some range is down — that is
// the set of blocks nobody can answer. The cluster epoch is the
// minimum over ranges of each range's best healthy replica.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type slot struct {
		rg *rangeGroup
		rp *replicaState
	}
	var flat []slot
	for _, rg := range rt.ranges {
		for _, rp := range rg.replicas {
			flat = append(flat, slot{rg: rg, rp: rp})
		}
	}
	states := make([]wire.RouterShardHealth, len(flat))
	var g par.Group
	g.SetLimit(rt.gather)
	for i, s := range flat {
		i, s := i, s
		g.Go(func() error {
			st := wire.RouterShardHealth{
				Shard:     s.rg.shard,
				Replica:   s.rp.info.Replica,
				URL:       s.rp.base,
				Transport: s.rp.client.Transport(),
			}
			status, epoch, oldest, newest, err := s.rp.client.Health(r.Context())
			if err != nil {
				st.Status, st.Error = "unreachable", err.Error()
				rt.markDown(s.rp)
			} else {
				st.Status, st.Epoch = status, epoch
				st.OldestEpoch, st.NewestEpoch = oldest, newest
				if status == "ok" {
					s.rp.markUp()
					s.rp.observeEpoch(epoch)
				}
			}
			states[i] = st
			return nil
		})
	}
	g.Wait() //nolint:errcheck // probe outcomes land in states

	body := wire.RouterHealth{Status: "ok", Shards: states}
	status := http.StatusOK
	oldests := make([]uint64, len(rt.ranges))
	newests := make([]uint64, len(rt.ranges))
	ranges := make([]wire.RouterRangeHealth, len(rt.ranges))
	flatIdx := 0
	for gi, rg := range rt.ranges {
		rh := wire.RouterRangeHealth{Shard: rg.shard, Lo: rg.lo, Hi: rg.hi, Replicas: len(rg.replicas)}
		var rangeEpoch uint64
		seen := false
		for range rg.replicas {
			st := states[flatIdx]
			flatIdx++
			if st.Status != "ok" {
				continue
			}
			rh.Healthy++
			if st.Epoch > rangeEpoch {
				rangeEpoch = st.Epoch
			}
			if !seen {
				oldests[gi], newests[gi], seen = st.OldestEpoch, st.NewestEpoch, true
				continue
			}
			if st.OldestEpoch > oldests[gi] {
				oldests[gi] = st.OldestEpoch
			}
			if st.NewestEpoch < newests[gi] {
				newests[gi] = st.NewestEpoch
			}
		}
		switch {
		case rh.Healthy == len(rg.replicas):
			rh.Status = "ok"
		case rh.Healthy > 0:
			rh.Status = "partial"
		default:
			rh.Status = "down"
			body.Status = "degraded"
			status = http.StatusServiceUnavailable
		}
		ranges[gi] = rh
		if gi == 0 || rangeEpoch < body.Epoch {
			body.Epoch = rangeEpoch
		}
	}
	body.Ranges = ranges
	body.OldestEpoch, body.NewestEpoch = foldCommonRange(oldests, newests)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}
