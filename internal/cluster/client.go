package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"ipscope/internal/ipv4"
	"ipscope/internal/query"
	"ipscope/internal/rpc"
	"ipscope/internal/serve/wire"
)

// Client is the router's transport-abstracted view of one shard: point
// lookups plus the typed cluster partials the scatter-gather endpoints
// fold. Two implementations exist — HTTP-JSON against the shard's
// public API (the universal fallback) and binary RPC against the
// shard's -rpc-listen endpoint (internal/rpc). Both must produce
// byte-identical routed responses; TestClusterEquivalence runs the full
// probe set over each.
type Client interface {
	// Point performs one /v1/addr or /v1/block lookup, returning the
	// complete HTTP response the router relays to the caller.
	Point(ctx context.Context, req PointRequest) (PointResponse, error)
	// Summary fetches the shard's mergeable summary partial and the
	// snapshot epoch it was computed from. A non-zero epoch targets a
	// retained snapshot (likewise on AS and Prefix); an unretained
	// epoch returns *wire.NotRetainedError.
	Summary(ctx context.Context, epoch uint64) (query.SummaryPartial, uint64, error)
	// AS fetches the shard's mergeable share of one AS footprint.
	AS(ctx context.Context, asn uint32, epoch uint64) (query.ASPartial, uint64, error)
	// Prefix fetches the shard's mergeable share of a CIDR aggregate.
	Prefix(ctx context.Context, cidr string, epoch uint64) (query.PrefixPartial, uint64, error)
	// Delta fetches the shard's mergeable delta partial between two
	// retained epochs, plus the shard's retained ring range for the
	// router's common-range fold. An unretained epoch returns
	// *wire.NotRetainedError (which also carries the shard's range).
	Delta(ctx context.Context, from, to uint64) (query.DeltaPartial, uint64, uint64, error)
	// Movement fetches the shard's mergeable movement partial over the
	// last N retained epochs (0 = whole ring), plus the shard's ring
	// range.
	Movement(ctx context.Context, last int) (query.MovementPartial, uint64, uint64, error)
	// Health probes the shard's liveness, returning its status string,
	// epoch, and retained ring range.
	Health(ctx context.Context) (status string, epoch, oldest, newest uint64, err error)
	// Transport names the wire protocol ("http" or "rpc") for
	// observability (router healthz).
	Transport() string
	// Close releases persistent connections.
	Close() error
}

// PointRequest is one point lookup as the router received it.
type PointRequest struct {
	// URI is the original request URI (path + query), which the HTTP
	// transport forwards verbatim.
	URI string
	// IsAddr distinguishes /v1/addr (Addr valid) from /v1/block (Block
	// valid) for the typed transport.
	IsAddr bool
	Addr   ipv4.Addr
	Block  ipv4.Block
	// Epoch is the router-validated ?epoch= value (0 = live snapshot).
	// The HTTP transport carries it inside URI; the typed transport
	// sends it in the request frame.
	Epoch uint64
	// IfNoneMatch carries the caller's validator for 304 handling.
	IfNoneMatch string
}

// PointResponse is the complete relayed response: status, body and the
// headers the router forwards.
type PointResponse struct {
	Status      int
	Body        []byte
	ETag        string
	ContentType string
	XCache      string
	RetryAfter  string
}

// --- shard error classes ---------------------------------------------
//
// The router's failover decisions hinge on the error class, so both
// transports report failures through the same two types:
//
//   - unavailableError: the transport failed (dial refused, reset,
//     EOF). The replica is presumed dead — the router fails over to
//     the next replica of the range and marks this one down, with
//     exponential backoff before re-admission.
//   - statusError with warming=true: the shard answered the warming
//     503 (alive — typically just restarted — but no snapshot
//     published yet). The router fails over, because a sibling replica
//     has the data, but does not mark health: the process is up and
//     will finish warming on its own.
//   - everything else (parse 400s, *wire.NotRetainedError): a
//     deterministic answer every replica would repeat, because all
//     replicas of a range serve bit-identical indexes. No failover —
//     and the answer proves the replica healthy.
//
// The rendered texts are unchanged from the pre-replication router:
// they surface in routed 503 bodies and degraded-mode assertions
// (TestRouterDegradedMode, cluster/rpc smoke scripts).

// unavailableError wraps a transport-level failure talking to a shard.
type unavailableError struct {
	shard int
	err   error
}

func (e *unavailableError) Error() string {
	return fmt.Sprintf("shard %d unavailable: %v", e.shard, e.err)
}

// statusError wraps a non-200 shard answer. detail is the rendered
// remainder of the message (the raw body over HTTP, the error message
// over RPC — matching what each transport historically reported).
type statusError struct {
	shard   int
	code    int
	detail  string
	warming bool
}

func (e *statusError) Error() string {
	return fmt.Sprintf("shard %d answered status %d: %s", e.shard, e.code, e.detail)
}

// isUnavailable reports whether err means the replica's process is
// unreachable (failover + mark down).
func isUnavailable(err error) bool {
	_, ok := err.(*unavailableError)
	return ok
}

// isWarming reports whether err is the warming 503 (failover, no
// health mark).
func isWarming(err error) bool {
	se, ok := err.(*statusError)
	return ok && se.warming
}

// --- HTTP-JSON transport ---------------------------------------------

// httpShardClient speaks the shard's public JSON API — the universal
// transport, also the fallback when a shard advertises no RPC endpoint.
type httpShardClient struct {
	idx  int
	base string
	hc   *http.Client
}

func newHTTPShardClient(idx int, base string, hc *http.Client) *httpShardClient {
	return &httpShardClient{idx: idx, base: base, hc: hc}
}

func (c *httpShardClient) Transport() string { return "http" }

func (c *httpShardClient) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}

func (c *httpShardClient) Point(ctx context.Context, pr PointRequest) (PointResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+pr.URI, nil)
	if err != nil {
		return PointResponse{}, err
	}
	if pr.IfNoneMatch != "" {
		req.Header.Set("If-None-Match", pr.IfNoneMatch)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return PointResponse{}, &unavailableError{shard: c.idx, err: err}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return PointResponse{}, &unavailableError{shard: c.idx, err: err}
	}
	return PointResponse{
		Status:      resp.StatusCode,
		Body:        body,
		ETag:        resp.Header.Get("ETag"),
		ContentType: resp.Header.Get("Content-Type"),
		XCache:      resp.Header.Get("X-Cache"),
		RetryAfter:  resp.Header.Get("Retry-After"),
	}, nil
}

// epochQuery renders the ?epoch= suffix a non-zero target epoch adds to
// a cluster-partial path.
func epochQuery(epoch uint64) string {
	if epoch == 0 {
		return ""
	}
	return "?epoch=" + strconv.FormatUint(epoch, 10)
}

// notRetained404 recognizes the EpochRangeBody 404 and converts it to
// the typed error. A retained ring always has NewestEpoch >= 1 (epochs
// start at 1), which is what distinguishes the body from a plain
// ErrorBody 404 decoded with zero range fields.
func notRetained404(status int, body []byte) error {
	if status != http.StatusNotFound {
		return nil
	}
	var rb wire.EpochRangeBody
	if err := json.Unmarshal(body, &rb); err != nil || rb.NewestEpoch == 0 {
		return nil
	}
	return &wire.NotRetainedError{Oldest: rb.OldestEpoch, Newest: rb.NewestEpoch}
}

// fetchJSON gets base+path and decodes the 200 body into out plus the
// spliced epoch. A not-retained 404 surfaces as *wire.NotRetainedError;
// other error texts are part of the router's degraded-mode contract,
// mirrored by the RPC transport.
func (c *httpShardClient) fetchJSON(ctx context.Context, path string, out any) (uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, &unavailableError{shard: c.idx, err: err}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, &unavailableError{shard: c.idx, err: err}
	}
	if resp.StatusCode != http.StatusOK {
		if nrErr := notRetained404(resp.StatusCode, body); nrErr != nil {
			return 0, nrErr
		}
		return 0, &statusError{
			shard:   c.idx,
			code:    resp.StatusCode,
			detail:  string(body),
			warming: resp.StatusCode == http.StatusServiceUnavailable && bytes.Contains(body, []byte(wire.WarmingError)),
		}
	}
	var ep struct {
		Epoch uint64 `json:"epoch"`
	}
	if err := json.Unmarshal(body, &ep); err != nil {
		return 0, fmt.Errorf("shard %d: %v", c.idx, err)
	}
	if err := json.Unmarshal(body, out); err != nil {
		return 0, fmt.Errorf("shard %d: %v", c.idx, err)
	}
	return ep.Epoch, nil
}

func (c *httpShardClient) Summary(ctx context.Context, epoch uint64) (query.SummaryPartial, uint64, error) {
	var p query.SummaryPartial
	ep, err := c.fetchJSON(ctx, "/v1/cluster/summary"+epochQuery(epoch), &p)
	return p, ep, err
}

func (c *httpShardClient) AS(ctx context.Context, asn uint32, epoch uint64) (query.ASPartial, uint64, error) {
	var p query.ASPartial
	ep, err := c.fetchJSON(ctx, fmt.Sprintf("/v1/cluster/as/%d%s", asn, epochQuery(epoch)), &p)
	return p, ep, err
}

func (c *httpShardClient) Prefix(ctx context.Context, cidr string, epoch uint64) (query.PrefixPartial, uint64, error) {
	var p query.PrefixPartial
	ep, err := c.fetchJSON(ctx, "/v1/cluster/prefix/"+cidr+epochQuery(epoch), &p)
	return p, ep, err
}

func (c *httpShardClient) Delta(ctx context.Context, from, to uint64) (query.DeltaPartial, uint64, uint64, error) {
	var p query.DeltaShardResponse
	path := fmt.Sprintf("/v1/cluster/delta?from=%d&to=%d", from, to)
	if _, err := c.fetchJSON(ctx, path, &p); err != nil {
		return query.DeltaPartial{}, 0, 0, err
	}
	return p.DeltaPartial, p.RingOldest, p.RingNewest, nil
}

func (c *httpShardClient) Movement(ctx context.Context, last int) (query.MovementPartial, uint64, uint64, error) {
	var p query.MovementShardResponse
	path := "/v1/cluster/movement"
	if last > 0 {
		path += "?last=" + strconv.Itoa(last)
	}
	if _, err := c.fetchJSON(ctx, path, &p); err != nil {
		return query.MovementPartial{}, 0, 0, err
	}
	return p.MovementPartial, p.RingOldest, p.RingNewest, nil
}

func (c *httpShardClient) Health(ctx context.Context) (string, uint64, uint64, uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/healthz", nil)
	if err != nil {
		return "", 0, 0, 0, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", 0, 0, 0, err
	}
	defer resp.Body.Close()
	var body struct {
		Status      string `json:"status"`
		Epoch       uint64 `json:"epoch"`
		OldestEpoch uint64 `json:"oldestEpoch"`
		NewestEpoch uint64 `json:"newestEpoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return "", 0, 0, 0, err
	}
	return body.Status, body.Epoch, body.OldestEpoch, body.NewestEpoch, nil
}

// --- binary RPC transport --------------------------------------------

// rpcShardClient speaks internal/rpc's typed binary protocol over
// persistent pipelined connections, reconstructing HTTP responses with
// the same wire helpers the shard's own serving path uses — which is
// what keeps routed bodies byte-identical to the HTTP transport's.
type rpcShardClient struct {
	idx int
	rc  *rpc.Client
}

func newRPCShardClient(idx int, addr string) *rpcShardClient {
	return &rpcShardClient{idx: idx, rc: rpc.NewClient(addr, rpc.ClientOptions{})}
}

func (c *rpcShardClient) Transport() string { return "rpc" }

func (c *rpcShardClient) Close() error { return c.rc.Close() }

// wrapErr maps transport failures onto the HTTP transport's error
// texts, so degraded-mode behaviour (TestRouterDegradedMode) is
// transport-independent. The typed not-retained error passes through
// untouched — the router folds its range fields.
func (c *rpcShardClient) wrapErr(err error) error {
	if nr, ok := err.(*wire.NotRetainedError); ok {
		return nr
	}
	if se, ok := err.(*rpc.StatusError); ok {
		return &statusError{
			shard:   c.idx,
			code:    se.Code,
			detail:  se.Msg,
			warming: se.Code == http.StatusServiceUnavailable && se.Msg == wire.WarmingError,
		}
	}
	return &unavailableError{shard: c.idx, err: err}
}

func (c *rpcShardClient) Point(ctx context.Context, pr PointRequest) (PointResponse, error) {
	var (
		status  int
		payload any
		epoch   uint64
	)
	if pr.IsAddr {
		view, e, err := c.rc.Addr(ctx, uint32(pr.Addr), pr.Epoch)
		if err != nil {
			return c.pointErr(err, pr.Epoch)
		}
		status, payload, epoch = http.StatusOK, view, e
	} else {
		view, found, e, err := c.rc.Block(ctx, uint32(pr.Block), pr.Epoch)
		if err != nil {
			return c.pointErr(err, pr.Epoch)
		}
		if found {
			status, payload, epoch = http.StatusOK, view, e
		} else {
			status, payload, epoch = http.StatusNotFound, wire.ErrorBody{Error: wire.ErrBlockNotFound(pr.Block)}, e
		}
	}
	etag := wire.ETagFor(epoch)
	if wire.ETagMatch(pr.IfNoneMatch, etag) {
		return PointResponse{Status: http.StatusNotModified, ETag: etag}, nil
	}
	status, body := wire.Encode(status, payload, epoch)
	return PointResponse{
		Status:      status,
		Body:        body,
		ETag:        etag,
		ContentType: "application/json",
	}, nil
}

// pointErr turns a typed shard error into the HTTP response the shard
// itself would have served — the warming 503 and the not-retained 404
// are the live cases — and a transport failure into an error for the
// router's unavailable path. asked is the epoch the request named, from
// which the not-retained body is reconstructed byte-identically.
func (c *rpcShardClient) pointErr(err error, asked uint64) (PointResponse, error) {
	if nr, ok := err.(*wire.NotRetainedError); ok {
		return PointResponse{
			Status:      http.StatusNotFound,
			Body:        wire.NotRetainedBody(asked, nr.Oldest, nr.Newest),
			ContentType: "application/json",
		}, nil
	}
	se, ok := err.(*rpc.StatusError)
	if !ok {
		return PointResponse{}, &unavailableError{shard: c.idx, err: err}
	}
	if se.Code == http.StatusServiceUnavailable && se.Msg == wire.WarmingError {
		return PointResponse{
			Status:      http.StatusServiceUnavailable,
			Body:        wire.WarmingBody(),
			ContentType: "application/json",
			RetryAfter:  "1",
		}, nil
	}
	status, body := wire.Encode(se.Code, wire.ErrorBody{Error: se.Msg}, 0)
	return PointResponse{Status: status, Body: body, ContentType: "application/json"}, nil
}

func (c *rpcShardClient) Summary(ctx context.Context, epoch uint64) (query.SummaryPartial, uint64, error) {
	p, ep, err := c.rc.Summary(ctx, epoch)
	if err != nil {
		return query.SummaryPartial{}, 0, c.wrapErr(err)
	}
	return p, ep, nil
}

func (c *rpcShardClient) AS(ctx context.Context, asn uint32, epoch uint64) (query.ASPartial, uint64, error) {
	p, ep, err := c.rc.AS(ctx, asn, epoch)
	if err != nil {
		return query.ASPartial{}, 0, c.wrapErr(err)
	}
	return p, ep, nil
}

func (c *rpcShardClient) Prefix(ctx context.Context, cidr string, epoch uint64) (query.PrefixPartial, uint64, error) {
	p, ep, err := c.rc.Prefix(ctx, cidr, wire.DefaultPrefixBlockList, epoch)
	if err != nil {
		return query.PrefixPartial{}, 0, c.wrapErr(err)
	}
	return p, ep, nil
}

func (c *rpcShardClient) Delta(ctx context.Context, from, to uint64) (query.DeltaPartial, uint64, uint64, error) {
	p, oldest, newest, err := c.rc.Delta(ctx, from, to, query.DefaultDeltaBlockList)
	if err != nil {
		return query.DeltaPartial{}, 0, 0, c.wrapErr(err)
	}
	return p, oldest, newest, nil
}

func (c *rpcShardClient) Movement(ctx context.Context, last int) (query.MovementPartial, uint64, uint64, error) {
	p, oldest, newest, err := c.rc.Movement(ctx, last)
	if err != nil {
		return query.MovementPartial{}, 0, 0, c.wrapErr(err)
	}
	return p, oldest, newest, nil
}

func (c *rpcShardClient) Health(ctx context.Context) (string, uint64, uint64, uint64, error) {
	h, err := c.rc.Health(ctx)
	if err != nil {
		return "", 0, 0, 0, err
	}
	return h.Status, h.Epoch, h.OldestEpoch, h.NewestEpoch, nil
}
