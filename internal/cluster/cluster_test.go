package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sync"
	"testing"
	"time"

	"ipscope/internal/ipv4"
	"ipscope/internal/obs"
	"ipscope/internal/query"
	"ipscope/internal/rpc"
	"ipscope/internal/serve"
	"ipscope/internal/serve/wire"
	"ipscope/internal/sim"
	"ipscope/internal/synthnet"
)

var (
	dataOnce sync.Once
	data     *obs.Data
	world    *synthnet.World
	events   []obs.Event
)

// clusterTestData simulates one shared dataset for the package (the
// simulation dominates test cost; every test reads it immutably). The
// emission-order event stream is recorded alongside so history tests
// can replay partial ingests.
func clusterTestData(t testing.TB) (*obs.Data, *synthnet.World) {
	t.Helper()
	dataOnce.Do(func() {
		world = synthnet.Generate(synthnet.TinyConfig())
		rec := obs.SinkFunc(func(e obs.Event) error {
			events = append(events, e)
			return nil
		})
		res, err := sim.RunTo(world, sim.TinyConfig(), rec)
		if err != nil {
			panic(err)
		}
		data = &res.Data
	})
	return data, world
}

func TestPlanPartition(t *testing.T) {
	_, w := clusterTestData(t)
	for _, n := range []int{1, 2, 3, 4, 7} {
		plan, err := PlanShards(w, n)
		if err != nil {
			t.Fatal(err)
		}
		if plan.NumShards() != n {
			t.Fatalf("NumShards = %d, want %d", plan.NumShards(), n)
		}
		// Ranges must tile [0, 1<<24) in order.
		next := uint32(0)
		for i := 0; i < n; i++ {
			lo, hi := plan.Range(i)
			if lo != next || hi < lo {
				t.Fatalf("shard %d/%d range [%d, %d) does not continue from %d", i, n, lo, hi, next)
			}
			next = hi
		}
		if next != 1<<24 {
			t.Fatalf("%d-shard partition covers up to %d, want %d", n, next, uint32(1<<24))
		}
		// Owner agrees with the ranges, and every world block lands on
		// exactly the shard whose range spans it.
		for _, b := range w.Blocks {
			i := plan.Owner(b.Block)
			lo, hi := plan.Range(i)
			if uint32(b.Block) < lo || uint32(b.Block) >= hi {
				t.Fatalf("Owner(%v) = %d, outside [%d, %d)", b.Block, i, lo, hi)
			}
			if !plan.Keep(i)(b.Block) {
				t.Fatalf("Keep(%d) rejects owned block %v", i, b.Block)
			}
		}
		// Boundary blocks of the whole space are owned.
		if got := plan.Owner(0); got != 0 {
			t.Fatalf("Owner(0) = %d, want 0", got)
		}
		if got := plan.Owner(ipv4.Block(1<<24 - 1)); got != n-1 {
			t.Fatalf("Owner(last) = %d, want %d", got, n-1)
		}
		// Determinism: a replan is identical.
		again, _ := PlanShards(w, n)
		for i := 0; i < n; i++ {
			alo, ahi := again.Range(i)
			lo, hi := plan.Range(i)
			if alo != lo || ahi != hi {
				t.Fatalf("replan changed shard %d range", i)
			}
		}
	}
	if _, err := PlanShards(w, 0); err == nil {
		t.Fatal("PlanShards(w, 0) should fail")
	}
}

func TestPartitionSinkBeforeMeta(t *testing.T) {
	sink := PartitionSink(&obs.Data{}, 0, 2, nil)
	if err := sink.Observe(obs.DayEvent{Index: 0, Active: ipv4.NewSet()}); err == nil {
		t.Fatal("day event before meta should fail")
	}
}

// epochField strips the epoch splice so routed and single-node bodies
// can be compared modulo snapshot metadata.
var epochField = regexp.MustCompile(`"epoch":\d+,?`)

func normalize(body []byte) string {
	return epochField.ReplaceAllString(string(body), "")
}

func get(t *testing.T, base, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp.StatusCode, normalize(body)
}

// probePaths derives a request set from the single-node index that
// exercises every endpoint: all active blocks, address timelines,
// every AS (including zero-activity and unknown ones), prefixes of
// many widths (guaranteed to span shard boundaries), and malformed
// inputs whose error bodies must also match.
func probePaths(x *query.Index) []string {
	blocks := x.Blocks()
	paths := []string{
		"/v1/summary",
		"/v1/as/AS999999",
		"/v1/as/banana",
		"/v1/addr/not-an-ip",
		"/v1/block/1.2.3.0/23",
		"/v1/prefix/0.0.0.0/4",
		"/v1/prefix/banana",
		"/v1/prefix/0.0.0.0/8",
	}
	for _, blk := range blocks {
		paths = append(paths, "/v1/block/"+blk.String())
	}
	for i := 0; i < len(blocks); i += 5 {
		blk := blocks[i]
		paths = append(paths,
			"/v1/addr/"+blk.Addr(0).String(),
			"/v1/addr/"+blk.Addr(137).String())
	}
	// An inactive block: the smallest block number not indexed.
	inactive := ipv4.Block(0)
	for _, blk := range blocks {
		if blk != inactive {
			break
		}
		inactive++
	}
	paths = append(paths,
		"/v1/block/"+inactive.String(),
		"/v1/addr/"+inactive.Addr(9).String())
	for _, asn := range x.ASNs() {
		paths = append(paths, fmt.Sprintf("/v1/as/AS%d", asn))
	}
	for i := 0; i < len(blocks); i += 7 {
		first := blocks[i].First()
		for _, bits := range []int{9, 12, 16, 20, 24} {
			paths = append(paths, "/v1/prefix/"+ipv4.MustNewPrefix(first, bits).String())
		}
	}
	return paths
}

// testShard is one shard under test: its HTTP server plus, when the
// shard was built withRPC, its binary RPC listener.
type testShard struct {
	http *httptest.Server
	rpc  *rpc.Server
}

// Close kills the shard — both listeners — as a router would observe a
// dead node.
func (s *testShard) Close() {
	s.http.Close()
	if s.rpc != nil {
		s.rpc.Shutdown(context.Background())
	}
}

// buildShards compiles each shard's slice of the dataset — via the
// batch build over a partition-filtered source, or via the incremental
// applier fed the partition-filtered live stream — and serves each on
// its own HTTP server. withRPC(i) additionally binds shard i's binary
// RPC listener and advertises it in /v1/cluster/info.
func buildShards(t *testing.T, d *obs.Data, plan Plan, n int, incremental bool, withRPC func(i int) bool) ([]*testShard, []string) {
	t.Helper()
	shards := make([]*testShard, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		// Keep restricts world-proportional build work to the slice,
		// exactly as a production shard runs — the equivalence must
		// hold with it in place.
		opts := query.Options{Keep: plan.Keep(i)}
		var idx *query.Index
		var err error
		if incremental {
			a := query.NewApplier(opts)
			if err := d.WriteTo(PartitionSink(a, i, n, nil)); err != nil {
				t.Fatalf("shard %d/%d stream: %v", i, n, err)
			}
			idx, err = a.Snapshot()
		} else {
			idx, err = query.Build(PartitionSource(d, i, n), opts)
		}
		if err != nil {
			t.Fatalf("shard %d/%d: %v", i, n, err)
		}
		lo, hi := plan.Range(i)
		srv := serve.New(idx, serve.Config{
			Shard: &wire.ShardInfo{Index: i, Count: n, Lo: lo, Hi: hi},
		})
		sh := &testShard{}
		if withRPC != nil && withRPC(i) {
			sh.rpc = rpc.NewServer(srv, rpc.Options{})
			addr, err := sh.rpc.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatalf("shard %d/%d rpc listen: %v", i, n, err)
			}
			srv.SetRPCAddr(addr.String())
		}
		sh.http = httptest.NewServer(srv.Handler())
		shards[i] = sh
		urls[i] = sh.http.URL
	}
	return shards, urls
}

// allRPC is the withRPC predicate giving every shard an RPC listener.
func allRPC(int) bool { return true }

// TestClusterEquivalence is the tentpole invariant: for 1, 2 and 4
// shards — built both by the batch path and the incremental applier —
// every routed /v1/* response (status and body) is byte-identical,
// modulo the epoch metadata, to the single-node answer over the same
// dataset.
func TestClusterEquivalence(t *testing.T) {
	d, w := clusterTestData(t)
	full, err := query.Build(d, query.Options{})
	if err != nil {
		t.Fatal(err)
	}
	single := httptest.NewServer(serve.New(full, serve.Config{}).Handler())
	defer single.Close()

	paths := probePaths(full)
	type answer struct {
		status int
		body   string
	}
	want := make(map[string]answer, len(paths))
	for _, p := range paths {
		status, body := get(t, single.URL, p)
		want[p] = answer{status, body}
	}

	for _, n := range []int{1, 2, 4} {
		plan, err := PlanShards(w, n)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []struct {
			name        string
			incremental bool
		}{{"build", false}, {"applier", true}} {
			for _, transport := range []string{TransportHTTP, TransportRPC} {
				t.Run(fmt.Sprintf("shards=%d/%s/%s", n, mode.name, transport), func(t *testing.T) {
					shards, urls := buildShards(t, d, plan, n, mode.incremental, allRPC)
					defer func() {
						for _, s := range shards {
							s.Close()
						}
					}()
					router, err := NewRouter(urls, RouterOptions{Transport: transport})
					if err != nil {
						t.Fatal(err)
					}
					defer router.Close()
					rts := httptest.NewServer(router.Handler())
					defer rts.Close()

					mismatches := 0
					for _, p := range paths {
						status, body := get(t, rts.URL, p)
						if status != want[p].status || body != want[p].body {
							mismatches++
							if mismatches <= 3 {
								t.Errorf("%s:\n routed: %d %s\n single: %d %s",
									p, status, body, want[p].status, want[p].body)
							}
						}
					}
					if mismatches > 0 {
						t.Fatalf("%d of %d probes differ from single-node", mismatches, len(paths))
					}
				})
			}
		}
	}
}

// TestRouterTransportFallback pins the mixed-fleet contract: under
// -transport=rpc a shard that advertises no RPC endpoint is reached
// over HTTP instead, and routed answers stay byte-identical to
// single-node. The per-shard transport is visible in /v1/healthz.
func TestRouterTransportFallback(t *testing.T) {
	d, w := clusterTestData(t)
	full, err := query.Build(d, query.Options{})
	if err != nil {
		t.Fatal(err)
	}
	single := httptest.NewServer(serve.New(full, serve.Config{}).Handler())
	defer single.Close()

	plan, err := PlanShards(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Only shard 0 speaks RPC; shard 1 is an HTTP-only node.
	shards, urls := buildShards(t, d, plan, 2, false, func(i int) bool { return i == 0 })
	defer func() {
		for _, s := range shards {
			s.Close()
		}
	}()
	router, err := NewRouter(urls, RouterOptions{Transport: TransportRPC})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	rts := httptest.NewServer(router.Handler())
	defer rts.Close()

	for _, p := range probePaths(full) {
		wantStatus, wantBody := get(t, single.URL, p)
		status, body := get(t, rts.URL, p)
		if status != wantStatus || body != wantBody {
			t.Fatalf("%s:\n routed: %d %s\n single: %d %s", p, status, body, wantStatus, wantBody)
		}
	}

	_, health := get(t, rts.URL, "/v1/healthz")
	for _, want := range []string{`"transport":"rpc"`, `"transport":"http"`} {
		if !regexp.MustCompile(regexp.QuoteMeta(want)).MatchString(health) {
			t.Fatalf("healthz %q does not report %s", health, want)
		}
	}
}

// TestRouterDegradedMode pins the failure contract, identically for
// both transports: with one shard down, lookups owned by the dead
// shard answer 503, lookups owned by live shards keep answering 200,
// fan-out aggregates answer 503, and /v1/healthz reports degraded with
// status 503.
func TestRouterDegradedMode(t *testing.T) {
	d, w := clusterTestData(t)
	plan, err := PlanShards(w, 2)
	if err != nil {
		t.Fatal(err)
	}

	// One active block owned by each shard.
	full, err := query.Build(d, query.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var blk0, blk1 ipv4.Block
	found0, found1 := false, false
	for _, blk := range full.Blocks() {
		if plan.Owner(blk) == 0 && !found0 {
			blk0, found0 = blk, true
		}
		if plan.Owner(blk) == 1 && !found1 {
			blk1, found1 = blk, true
		}
	}
	if !found0 || !found1 {
		t.Fatal("test world leaves a shard without active blocks")
	}

	for _, transport := range []string{TransportHTTP, TransportRPC} {
		t.Run(transport, func(t *testing.T) {
			shards, urls := buildShards(t, d, plan, 2, false, allRPC)
			defer shards[0].Close()

			router, err := NewRouter(urls, RouterOptions{Transport: transport})
			if err != nil {
				t.Fatal(err)
			}
			defer router.Close()
			rts := httptest.NewServer(router.Handler())
			defer rts.Close()

			shards[1].Close() // kill shard 1: both listeners

			if status, _ := get(t, rts.URL, "/v1/block/"+blk1.String()); status != http.StatusServiceUnavailable {
				t.Fatalf("dead shard's block answered %d, want 503", status)
			}
			if status, _ := get(t, rts.URL, "/v1/block/"+blk0.String()); status != http.StatusOK {
				t.Fatalf("live shard's block answered %d, want 200", status)
			}
			if status, _ := get(t, rts.URL, "/v1/summary"); status != http.StatusServiceUnavailable {
				t.Fatalf("summary with a dead shard answered %d, want 503", status)
			}
			status, body := get(t, rts.URL, "/v1/healthz")
			if status != http.StatusServiceUnavailable {
				t.Fatalf("healthz answered %d, want 503", status)
			}
			if want := `"status":"degraded"`; !regexp.MustCompile(regexp.QuoteMeta(want)).MatchString(body) {
				t.Fatalf("healthz body %q does not report degraded", body)
			}
		})
	}
}

// --- replication -----------------------------------------------------

// TestPlacement pins the round-robin offset placement: process p of a
// ranges×R fleet serves range p%ranges as replica p/ranges, so the
// first `ranges` processes are the primary copy of every range and an
// R=1 fleet is exactly the pre-replication layout.
func TestPlacement(t *testing.T) {
	cases := []struct{ proc, ranges, g, replica int }{
		{0, 2, 0, 0}, {1, 2, 1, 0}, {2, 2, 0, 1}, {3, 2, 1, 1},
		{4, 2, 0, 2}, {0, 1, 0, 0}, {1, 1, 0, 1}, {5, 3, 2, 1},
	}
	for _, c := range cases {
		g, r := Placement(c.proc, c.ranges)
		if g != c.g || r != c.replica {
			t.Errorf("Placement(%d, %d) = (%d, %d), want (%d, %d)", c.proc, c.ranges, g, r, c.g, c.replica)
		}
	}
	_, w := clusterTestData(t)
	plan, err := PlanShards(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	owners := plan.Owners(1, 3)
	if len(owners) != 3 {
		t.Fatalf("Owners(1, 3) returned %d pairs, want 3", len(owners))
	}
	for r, o := range owners {
		if o != [2]int{1, r} {
			t.Errorf("Owners(1, 3)[%d] = %v, want [1 %d]", r, o, r)
		}
	}
}

// revivableShard is one replica process under chaos testing: unlike
// httptest.Server it remembers its concrete listen addresses, so Kill
// followed by Revive brings the same process identity back at the
// same URLs — exactly what a supervisor restarting a replica does.
// The serve.Server (and its published index) survives the kill; only
// the listeners die.
type revivableShard struct {
	t       *testing.T
	srv     *serve.Server
	addr    string // concrete host:port, fixed after the first Start
	rpcAddr string

	mu      sync.Mutex
	httpSrv *http.Server
	rpcSrv  *rpc.Server
}

func newRevivableShard(t *testing.T, idx *query.Index, info wire.ShardInfo) *revivableShard {
	t.Helper()
	rs := &revivableShard{t: t, srv: serve.New(idx, serve.Config{Shard: &info})}
	// Bind RPC first so the advertised rpcAddr is in /v1/cluster/info
	// before any router discovers the shard.
	rpcSrv := rpc.NewServer(rs.srv, rpc.Options{})
	raddr, err := rpcSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("rpc listen: %v", err)
	}
	rs.rpcAddr = raddr.String()
	rs.rpcSrv = rpcSrv
	rs.srv.SetRPCAddr(rs.rpcAddr)

	ln := rs.listen("127.0.0.1:0")
	rs.addr = ln.Addr().String()
	rs.serveHTTP(ln)
	return rs
}

func (rs *revivableShard) URL() string { return "http://" + rs.addr }

// listen binds addr, retrying briefly: a Revive can race the kernel
// releasing the previous listener's port.
func (rs *revivableShard) listen(addr string) net.Listener {
	rs.t.Helper()
	var lastErr error
	for i := 0; i < 200; i++ {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln
		}
		lastErr = err
		time.Sleep(10 * time.Millisecond)
	}
	rs.t.Fatalf("listen %s: %v", addr, lastErr)
	return nil
}

func (rs *revivableShard) serveHTTP(ln net.Listener) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.httpSrv = &http.Server{Handler: rs.srv.Handler()}
	go rs.httpSrv.Serve(ln) //nolint:errcheck // closed on Kill
}

// Kill hard-closes both listeners and every established connection,
// as kill -9 on the process would.
func (rs *revivableShard) Kill() {
	rs.mu.Lock()
	httpSrv, rpcSrv := rs.httpSrv, rs.rpcSrv
	rs.httpSrv, rs.rpcSrv = nil, nil
	rs.mu.Unlock()
	if httpSrv != nil {
		httpSrv.Close()
	}
	if rpcSrv != nil {
		rpcSrv.Shutdown(context.Background())
	}
}

// Revive restarts both listeners on the original addresses.
func (rs *revivableShard) Revive() {
	rs.t.Helper()
	rpcSrv := rpc.NewServer(rs.srv, rpc.Options{})
	if _, err := rpcSrv.Listen(rs.rpcAddr); err != nil {
		rs.t.Fatalf("rpc revive %s: %v", rs.rpcAddr, err)
	}
	rs.mu.Lock()
	rs.rpcSrv = rpcSrv
	rs.mu.Unlock()
	rs.serveHTTP(rs.listen(rs.addr))
}

// buildReplicatedFleet builds each range's slice once (replicas are
// bit-identical by determinism, so they share the immutable index)
// and serves it from `replicas` processes per range. URLs come back
// in Placement order: all replica-0 processes, then all replica-1s.
func buildReplicatedFleet(t *testing.T, d *obs.Data, plan Plan, ranges, replicas int) ([][]*revivableShard, []string) {
	t.Helper()
	fleet := make([][]*revivableShard, ranges)
	for g := 0; g < ranges; g++ {
		idx, err := query.Build(PartitionSource(d, g, ranges), query.Options{Keep: plan.Keep(g)})
		if err != nil {
			t.Fatalf("range %d/%d: %v", g, ranges, err)
		}
		lo, hi := plan.Range(g)
		fleet[g] = make([]*revivableShard, replicas)
		for r := 0; r < replicas; r++ {
			fleet[g][r] = newRevivableShard(t, idx, wire.ShardInfo{
				Index: g, Count: ranges, Lo: lo, Hi: hi, Replica: r,
			})
		}
	}
	var urls []string
	for r := 0; r < replicas; r++ {
		for g := 0; g < ranges; g++ {
			urls = append(urls, fleet[g][r].URL())
		}
	}
	return fleet, urls
}

// TestRouterReplicaValidation pins the fleet-shape errors: URL counts
// that do not divide by R, and fleets whose discovered ranges do not
// match the declared replication factor.
func TestRouterReplicaValidation(t *testing.T) {
	d, w := clusterTestData(t)
	plan, err := PlanShards(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	shards, urls := buildShards(t, d, plan, 2, false, nil)
	defer func() {
		for _, s := range shards {
			s.Close()
		}
	}()

	// 2 URLs cannot form an R=2 fleet of 2 ranges... but they CAN form
	// a 1-range R=2 fleet — except these two processes serve different
	// ranges, which discovery must reject (their info reports a 2-way
	// partition while the router expects 1 range).
	if _, err := NewRouter(urls, RouterOptions{Replicas: 2, InfoTimeout: 200 * time.Millisecond}); err == nil {
		t.Fatal("R=2 over two distinct-range shards should fail discovery")
	}

	// 3 URLs do not divide into 2 replicas per range.
	if _, err := NewRouter(append([]string{urls[0]}, urls...), RouterOptions{Replicas: 2, InfoTimeout: 200 * time.Millisecond}); err == nil {
		t.Fatal("3 URLs with -replicas 2 should fail")
	}

	// Duplicating every URL forms a legitimate R=2 fleet: the same
	// process standing in for both replicas of its range.
	rt, err := NewRouter(append(append([]string{}, urls...), urls...), RouterOptions{Replicas: 2})
	if err != nil {
		t.Fatalf("duplicated R=2 fleet: %v", err)
	}
	if rt.NumShards() != 2 || rt.NumReplicas() != 2 {
		t.Fatalf("fleet shape = %d ranges x %d replicas, want 2x2", rt.NumShards(), rt.NumReplicas())
	}
	rt.Close()
}

// routerHealth fetches and decodes the router's /v1/healthz.
func routerHealth(t *testing.T, base string) (int, wire.RouterHealth) {
	t.Helper()
	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer resp.Body.Close()
	var h wire.RouterHealth
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	return resp.StatusCode, h
}

// TestReplicaFailover is the replication tentpole invariant, run over
// both transports: with an R=2 fleet and one replica of every range
// killed mid-traffic, every /v1/* probe keeps answering byte-identical
// to single-node (the fleet stays "ok": surviving replicas are exact
// by determinism); killed-then-restarted replicas are re-admitted (an
// operator /v1/healthz actively probes replicas in backoff) and then
// carry the fleet alone when their siblings die.
func TestReplicaFailover(t *testing.T) {
	d, w := clusterTestData(t)
	full, err := query.Build(d, query.Options{})
	if err != nil {
		t.Fatal(err)
	}
	single := httptest.NewServer(serve.New(full, serve.Config{}).Handler())
	defer single.Close()

	paths := probePaths(full)
	type answer struct {
		status int
		body   string
	}
	want := make(map[string]answer, len(paths))
	for _, p := range paths {
		status, body := get(t, single.URL, p)
		want[p] = answer{status, body}
	}
	compareAll := func(t *testing.T, base, phase string) {
		t.Helper()
		mismatches := 0
		for _, p := range paths {
			status, body := get(t, base, p)
			if status != want[p].status || body != want[p].body {
				mismatches++
				if mismatches <= 3 {
					t.Errorf("%s %s:\n routed: %d %s\n single: %d %s",
						phase, p, status, body, want[p].status, want[p].body)
				}
			}
		}
		if mismatches > 0 {
			t.Fatalf("%s: %d of %d probes differ from single-node", phase, mismatches, len(paths))
		}
	}

	plan, err := PlanShards(w, 2)
	if err != nil {
		t.Fatal(err)
	}

	for _, transport := range []string{TransportHTTP, TransportRPC} {
		t.Run(transport, func(t *testing.T) {
			fleet, urls := buildReplicatedFleet(t, d, plan, 2, 2)
			defer func() {
				for _, rg := range fleet {
					for _, rs := range rg {
						rs.Kill()
					}
				}
			}()
			// Background probing off: every health transition in this
			// test is driven by request traffic or /v1/healthz, so the
			// state machine's moves are deterministic.
			router, err := NewRouter(urls, RouterOptions{Transport: transport, Replicas: 2, ProbeInterval: -1})
			if err != nil {
				t.Fatal(err)
			}
			defer router.Close()
			rts := httptest.NewServer(router.Handler())
			defer rts.Close()

			// Phase 1: full fleet answers byte-identical to single-node.
			compareAll(t, rts.URL, "full fleet")

			// Phase 2: kill one replica of each range — a different
			// replica id per range, so both positions fail over. Every
			// probe must keep answering identically: the router retries
			// point lookups on the surviving replica and fails
			// aggregates over mid-gather.
			fleet[0][0].Kill()
			fleet[1][1].Kill()
			compareAll(t, rts.URL, "one replica of each range dead")

			// The fleet is NOT degraded: every range still has a healthy
			// replica. rangeStates says partial, shardStates pins which
			// replicas are unreachable.
			status, h := routerHealth(t, rts.URL)
			if status != http.StatusOK || h.Status != "ok" {
				t.Fatalf("healthz with survivors = %d %q, want 200 ok", status, h.Status)
			}
			if len(h.Ranges) != 2 || len(h.Shards) != 4 {
				t.Fatalf("healthz reports %d ranges / %d replicas, want 2 / 4", len(h.Ranges), len(h.Shards))
			}
			for _, rh := range h.Ranges {
				if rh.Status != "partial" || rh.Healthy != 1 || rh.Replicas != 2 {
					t.Fatalf("range %d state = %+v, want partial 1/2", rh.Shard, rh)
				}
			}
			unreachable := 0
			for _, sh := range h.Shards {
				if sh.Status == "unreachable" {
					unreachable++
				}
			}
			if unreachable != 2 {
				t.Fatalf("healthz reports %d unreachable replicas, want 2", unreachable)
			}

			// Phase 3: restart the killed replicas at their original
			// addresses and re-admit them via the operator probe —
			// /v1/healthz probes even replicas in backoff.
			fleet[0][0].Revive()
			fleet[1][1].Revive()
			deadline := time.Now().Add(10 * time.Second)
			for {
				status, h = routerHealth(t, rts.URL)
				healthy := true
				for _, rh := range h.Ranges {
					if rh.Status != "ok" {
						healthy = false
					}
				}
				if status == http.StatusOK && h.Status == "ok" && healthy {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("revived replicas not re-admitted: healthz = %d %+v", status, h)
				}
				time.Sleep(20 * time.Millisecond)
			}

			// Phase 4: the re-admitted replicas carry the fleet alone.
			fleet[0][1].Kill()
			fleet[1][0].Kill()
			compareAll(t, rts.URL, "re-admitted replicas alone")
		})
	}
}
