// Package cluster scales the serving stack horizontally: it partitions
// the /24 block space into contiguous ranges, restricts dataset builds
// and live streams to one partition (so each shard only pays for its
// slice), and fronts a fleet of shard servers with a scatter-gather
// HTTP router that answers the same /v1/* API as a single node —
// byte-identically, modulo epoch metadata (TestClusterEquivalence).
//
// The same shard-and-merge discipline the engine (internal/sim) and
// the incremental Applier (internal/query) enforce in-process —
// contiguous block shards, deterministic merge in block order — is
// applied here across process boundaries. Point lookups (/v1/addr,
// /v1/block) route to the owning shard; aggregates (/v1/summary,
// /v1/as, /v1/prefix) fan out and fold the shards' mergeable partials
// (internal/query's SummaryPartial/ASPartial/PrefixPartial), whose
// merge rules are exact: integer counters sum, AS sets union, HLL
// sketches union register-wise, and order-sensitive float folds replay
// the single-node accumulation sequence from shipped per-block values.
package cluster

import (
	"fmt"
	"sort"

	"ipscope/internal/ipv4"
	"ipscope/internal/obs"
	"ipscope/internal/synthnet"
)

// Plan is a deterministic partition of the whole /24 block space into
// contiguous ranges, one per shard. Interior boundaries sit at
// quantiles of the world's allocated blocks, so shards carry balanced
// slices of the populated space while still covering every possible
// block (unallocated space routes to whichever shard's range spans
// it). Because the world is regenerated deterministically from dataset
// meta, every node — shards and router alike — derives the identical
// plan from (world, shard count) alone.
type Plan struct {
	bounds []uint32 // len = shards+1; bounds[0] = 0, bounds[last] = 1<<24
}

// blockSpace is one past the last /24 block number.
const blockSpace = 1 << 24

// PlanShards computes the partition of world's block space into n
// contiguous shard ranges.
func PlanShards(world *synthnet.World, n int) (Plan, error) {
	if n < 1 {
		return Plan{}, fmt.Errorf("cluster: shard count %d < 1", n)
	}
	blocks := make([]uint32, 0, len(world.Blocks))
	for _, b := range world.Blocks {
		blocks = append(blocks, uint32(b.Block))
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })

	bounds := make([]uint32, n+1)
	for i := 1; i < n; i++ {
		if len(blocks) > 0 {
			bounds[i] = blocks[len(blocks)*i/n]
		} else {
			bounds[i] = uint32(uint64(blockSpace) * uint64(i) / uint64(n))
		}
	}
	bounds[n] = blockSpace
	return Plan{bounds: bounds}, nil
}

// PlanForMeta regenerates the world from a dataset's embedded world
// configuration and plans its partition — all a shard or router needs
// besides the shard count.
func PlanForMeta(cfg synthnet.Config, n int) (Plan, error) {
	return PlanShards(synthnet.Generate(cfg), n)
}

// NumShards returns the number of ranges in the plan.
func (p Plan) NumShards() int { return len(p.bounds) - 1 }

// Range returns shard i's owned block range [lo, hi) as raw block
// numbers (hi may be 1<<24).
func (p Plan) Range(i int) (lo, hi uint32) { return p.bounds[i], p.bounds[i+1] }

// Owner returns the shard owning blk. Every block has exactly one
// owner: ranges are contiguous and cover the whole space.
func (p Plan) Owner(blk ipv4.Block) int {
	// First bound strictly greater than blk, minus one range.
	i := sort.Search(len(p.bounds)-2, func(i int) bool { return p.bounds[i+1] > uint32(blk) })
	return i
}

// Keep returns the block predicate for shard i, for obs.FilterSink /
// obs.FilterSource.
func (p Plan) Keep(i int) func(ipv4.Block) bool {
	lo, hi := p.Range(i)
	return func(blk ipv4.Block) bool { return uint32(blk) >= lo && uint32(blk) < hi }
}

// Owners returns the replica identities serving range g under a
// replication factor of replicas: (range, replica) pairs for replica
// 0..replicas-1. With round-robin offset placement (see Placement) an
// N-process fleet covers N ranges at R=1 and N/R ranges at higher R;
// every replica of a range builds a bit-identical index, so the pairs
// are interchangeable for reads.
func (p Plan) Owners(g, replicas int) [][2]int {
	owners := make([][2]int, replicas)
	for r := range owners {
		owners[r] = [2]int{g, r}
	}
	return owners
}

// Placement maps fleet process proc of a ranges×R fleet to its
// (range, replica) coordinates: process p serves range p%ranges as
// replica p/ranges. Round-robin offset placement means processes
// 0..ranges-1 are the primary copy of every range (an R=1 fleet is
// exactly the pre-replication layout) and each later batch of ranges
// processes adds one more full copy of the space.
func Placement(proc, ranges int) (g, replica int) {
	return proc % ranges, proc / ranges
}

// PartitionSource restricts src to shard index's slice of a count-way
// partition. The plan is derived from the dataset's own meta, so the
// caller needs no world in hand.
func PartitionSource(src obs.Source, index, count int) obs.Source {
	return &partitionSource{src: src, index: index, count: count}
}

type partitionSource struct {
	src          obs.Source
	index, count int
}

func (ps *partitionSource) Observations() (*obs.Data, error) {
	d, err := ps.src.Observations()
	if err != nil {
		return nil, err
	}
	plan, err := PlanForMeta(d.Meta.World, ps.count)
	if err != nil {
		return nil, err
	}
	if ps.index < 0 || ps.index >= ps.count {
		return nil, fmt.Errorf("cluster: shard index %d outside 0..%d", ps.index, ps.count-1)
	}
	return obs.FilterSource(d, plan.Keep(ps.index)).Observations()
}

// PartitionSink restricts a live observation stream to shard index's
// slice: the meta event (which passes through unfiltered) carries the
// world configuration, the plan is computed from it on the spot, and
// every subsequent event is filtered through obs.FilterSink. onPlan,
// when non-nil, is called once with the shard's owned range — the hook
// a live shard server uses to publish its partition coordinates.
func PartitionSink(sink obs.Sink, index, count int, onPlan func(lo, hi uint32)) obs.Sink {
	return &partitionSink{sink: sink, index: index, count: count, onPlan: onPlan}
}

type partitionSink struct {
	sink         obs.Sink
	index, count int
	onPlan       func(lo, hi uint32)
	filtered     obs.Sink // nil until the meta event arrives
}

func (ps *partitionSink) Observe(e obs.Event) error {
	if me, ok := e.(obs.MetaEvent); ok {
		if ps.index < 0 || ps.index >= ps.count {
			return fmt.Errorf("cluster: shard index %d outside 0..%d", ps.index, ps.count-1)
		}
		plan, err := PlanForMeta(me.Meta.World, ps.count)
		if err != nil {
			return err
		}
		ps.filtered = obs.FilterSink(ps.sink, plan.Keep(ps.index))
		if ps.onPlan != nil {
			lo, hi := plan.Range(ps.index)
			ps.onPlan(lo, hi)
		}
		return ps.sink.Observe(e)
	}
	if ps.filtered == nil {
		return fmt.Errorf("cluster: partition sink received %T before the meta event", e)
	}
	return ps.filtered.Observe(e)
}
