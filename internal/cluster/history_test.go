package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"testing"

	"ipscope/internal/obs"
	"ipscope/internal/query"
	"ipscope/internal/rpc"
	"ipscope/internal/serve"
	"ipscope/internal/serve/wire"
)

// cutStream returns the length of the emission-order prefix a live
// consumer has seen at the moment day `cut` closed (mirrors the helper
// the query package's applier-equivalence test uses).
func cutStream(events []obs.Event, ref *obs.Data, cut int) int {
	wkKeep, scanKeep := len(ref.Weekly), len(ref.ICMPScans)
	for i, e := range events {
		switch ev := e.(type) {
		case obs.DayEvent:
			if ev.Index >= cut {
				return i
			}
		case obs.WeekEvent:
			if ev.Index >= wkKeep {
				return i
			}
		case obs.ICMPScanEvent:
			if ev.Index >= scanKeep {
				return i
			}
		case obs.BlockStatsEvent, obs.SurfacesEvent:
			return i
		}
	}
	return len(events)
}

// historyCuts are the daily cuts each publish corresponds to: epoch k+1
// serves the dataset as of day historyCuts[k].
var historyCuts = []int{5, 13, 28}

// buildHistoryShards builds an n-shard cluster whose every shard
// publishes one epoch per cut — via per-cut batch builds (epoch-stamped
// with AtEpoch) or via one incremental applier fed the partitioned live
// stream and snapshotted at each cut. retain(i) sets shard i's ring
// capacity.
func buildHistoryShards(t *testing.T, d *obs.Data, events []obs.Event, plan Plan, n int,
	incremental bool, withRPC func(i int) bool, retain func(i int) int) ([]*testShard, []string) {
	t.Helper()
	shards := make([]*testShard, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		opts := query.Options{Keep: plan.Keep(i)}
		lo, hi := plan.Range(i)
		srv := serve.New(nil, serve.Config{
			RetainEpochs: retain(i),
			Shard:        &wire.ShardInfo{Index: i, Count: n, Lo: lo, Hi: hi},
		})
		if incremental {
			a := query.NewApplier(opts)
			sink := PartitionSink(a, i, n, nil)
			fed := 0
			for _, cut := range historyCuts {
				end := cutStream(events, d.TruncateLive(cut), cut)
				for _, e := range events[fed:end] {
					if err := sink.Observe(e); err != nil {
						t.Fatalf("shard %d/%d observe: %v", i, n, err)
					}
				}
				fed = end
				snap, err := a.Snapshot()
				if err != nil {
					t.Fatalf("shard %d/%d snapshot: %v", i, n, err)
				}
				srv.Publish(snap)
			}
		} else {
			for k, cut := range historyCuts {
				idx, err := query.Build(PartitionSource(d.TruncateLive(cut), i, n), opts)
				if err != nil {
					t.Fatalf("shard %d/%d build(cut %d): %v", i, n, cut, err)
				}
				srv.Publish(idx.AtEpoch(uint64(k + 1)))
			}
		}
		sh := &testShard{}
		if withRPC != nil && withRPC(i) {
			sh.rpc = rpc.NewServer(srv, rpc.Options{})
			addr, err := sh.rpc.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatalf("shard %d/%d rpc listen: %v", i, n, err)
			}
			srv.SetRPCAddr(addr.String())
		}
		sh.http = httptest.NewServer(srv.Handler())
		shards[i] = sh
		urls[i] = sh.http.URL
	}
	return shards, urls
}

// historyProbes exercises the whole history surface: delta spans, the
// movement series, as-of lookups at retained epochs, and every
// documented 400/404 rejection (whose bodies must also match).
func historyProbes(x *query.Index) []string {
	blocks := x.Blocks()
	paths := []string{
		"/v1/delta?from=1&to=3",
		"/v1/delta?from=1&to=2",
		"/v1/delta?from=2&to=3",
		"/v1/movement",
		"/v1/movement?last=2",
		"/v1/movement?last=99",
		// Rejections: inverted span, degenerate span, garbage, missing
		// parameter, spans naming unretained epochs (blame from, then to).
		"/v1/delta?from=3&to=1",
		"/v1/delta?from=2&to=2",
		"/v1/delta?from=banana&to=2",
		"/v1/delta?from=1",
		"/v1/delta?from=0&to=2",
		"/v1/delta?from=1&to=99",
		"/v1/movement?last=0",
		"/v1/movement?last=banana",
		// Time travel at both retained epochs, plus the 400/404 edges.
		"/v1/summary?epoch=1",
		"/v1/summary?epoch=2",
		"/v1/summary?epoch=99",
		"/v1/summary?epoch=banana",
	}
	for i := 0; i < len(blocks); i += 5 {
		paths = append(paths,
			"/v1/block/"+blocks[i].String()+"?epoch=1",
			"/v1/addr/"+blocks[i].Addr(7).String()+"?epoch=2")
	}
	for _, asn := range x.ASNs() {
		paths = append(paths, fmt.Sprintf("/v1/as/AS%d?epoch=1", asn))
	}
	paths = append(paths, "/v1/prefix/0.0.0.0/8?epoch=2")
	return paths
}

// histEpochField additionally strips fromEpoch/toEpoch for comparisons
// against the Build-diff reference, whose independently built indexes
// are both stamped epoch 1.
var histEpochField = regexp.MustCompile(`"(from|to)Epoch":\d+,?`)

// TestDeltaEquivalence is the hard invariant of the history subsystem:
// /v1/delta between two retained epochs byte-equals the diff of two
// independent query.Build indexes over the dataset truncated to those
// epochs' days (modulo epoch fields), and every history response —
// delta, movement, as-of lookups, and their 400/404 rejections — is
// byte-identical between a single node publishing through its ring and
// 1-, 2- and 4-shard routed clusters, for Build- and Applier-built
// shards over both the HTTP and RPC transports.
func TestDeltaEquivalence(t *testing.T) {
	d, w := clusterTestData(t)

	// Single-node server: one applier publishing at each cut.
	a := query.NewApplier(query.Options{})
	fed := 0
	srv := serve.New(nil, serve.Config{RetainEpochs: len(historyCuts)})
	var published []*query.Index
	for _, cut := range historyCuts {
		end := cutStream(events, d.TruncateLive(cut), cut)
		for _, e := range events[fed:end] {
			if err := a.Observe(e); err != nil {
				t.Fatal(err)
			}
		}
		fed = end
		snap, err := a.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		srv.Publish(snap)
		published = append(published, snap)
	}
	single := httptest.NewServer(srv.Handler())
	defer single.Close()
	full := published[len(published)-1]

	// The reference semantics: /v1/delta(from,to) must equal the diff of
	// two INDEPENDENT batch builds over the truncated datasets — history
	// retention may not change what a delta means.
	for _, span := range [][2]int{{0, 2}, {1, 2}, {0, 1}} {
		fromIdx, err := query.Build(d.TruncateLive(historyCuts[span[0]]), query.Options{})
		if err != nil {
			t.Fatal(err)
		}
		toIdx, err := query.Build(d.TruncateLive(historyCuts[span[1]]), query.Options{})
		if err != nil {
			t.Fatal(err)
		}
		refView, err := toIdx.Delta(fromIdx, query.DefaultDeltaBlockList)
		if err != nil {
			t.Fatal(err)
		}
		_, refBody := wire.Encode(http.StatusOK, refView, 0)
		path := fmt.Sprintf("/v1/delta?from=%d&to=%d", span[0]+1, span[1]+1)
		status, body := get(t, single.URL, path)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d", path, status)
		}
		if got, want := histEpochField.ReplaceAllString(body, ""),
			histEpochField.ReplaceAllString(normalize(refBody), ""); got != want {
			t.Fatalf("%s differs from the Build-diff reference:\n served: %s\n ref:    %s", path, got, want)
		}
	}

	// As-of reference: time travel to epoch k+1 answers what a fresh
	// server over Build(TruncateLive(cut_k)) serves live.
	for k, cut := range historyCuts[:2] {
		refIdx, err := query.Build(d.TruncateLive(cut), query.Options{})
		if err != nil {
			t.Fatal(err)
		}
		refSrv := httptest.NewServer(serve.New(refIdx, serve.Config{}).Handler())
		_, refBody := get(t, refSrv.URL, "/v1/summary")
		refSrv.Close()
		_, body := get(t, single.URL, fmt.Sprintf("/v1/summary?epoch=%d", k+1))
		if body != refBody {
			t.Fatalf("summary?epoch=%d differs from Build(TruncateLive(%d)):\n%s\n%s", k+1, cut, body, refBody)
		}
	}

	// Routed equivalence across shard counts, build modes, transports.
	paths := historyProbes(full)
	type answer struct {
		status int
		body   string
	}
	want := make(map[string]answer, len(paths))
	for _, p := range paths {
		status, body := get(t, single.URL, p)
		want[p] = answer{status, body}
	}

	retainAll := func(int) int { return len(historyCuts) }
	for _, n := range []int{1, 2, 4} {
		plan, err := PlanShards(w, n)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []struct {
			name        string
			incremental bool
		}{{"build", false}, {"applier", true}} {
			for _, transport := range []string{TransportHTTP, TransportRPC} {
				t.Run(fmt.Sprintf("shards=%d/%s/%s", n, mode.name, transport), func(t *testing.T) {
					shards, urls := buildHistoryShards(t, d, events, plan, n, mode.incremental, allRPC, retainAll)
					defer func() {
						for _, s := range shards {
							s.Close()
						}
					}()
					router, err := NewRouter(urls, RouterOptions{Transport: transport})
					if err != nil {
						t.Fatal(err)
					}
					defer router.Close()
					rts := httptest.NewServer(router.Handler())
					defer rts.Close()

					mismatches := 0
					for _, p := range paths {
						status, body := get(t, rts.URL, p)
						if status != want[p].status || body != want[p].body {
							mismatches++
							if mismatches <= 3 {
								t.Errorf("%s:\n routed: %d %s\n single: %d %s",
									p, status, body, want[p].status, want[p].body)
							}
						}
					}
					if mismatches > 0 {
						t.Fatalf("%d of %d history probes differ from single-node", mismatches, len(paths))
					}

					// Router healthz aggregates the cluster-wide common
					// retained range.
					resp, err := http.Get(rts.URL + "/v1/healthz")
					if err != nil {
						t.Fatal(err)
					}
					var rh wire.RouterHealth
					err = json.NewDecoder(resp.Body).Decode(&rh)
					resp.Body.Close()
					if err != nil {
						t.Fatal(err)
					}
					if rh.OldestEpoch != 1 || rh.NewestEpoch != uint64(len(historyCuts)) {
						t.Errorf("router healthz range = %d..%d, want 1..%d",
							rh.OldestEpoch, rh.NewestEpoch, len(historyCuts))
					}
					for _, sh := range rh.Shards {
						if sh.OldestEpoch != 1 || sh.NewestEpoch != uint64(len(historyCuts)) {
							t.Errorf("shard %d healthz range = %d..%d", sh.Shard, sh.OldestEpoch, sh.NewestEpoch)
						}
					}
				})
			}
		}
	}
}

// TestRouterCommonRangeSkew pins the min-common-range coordination when
// shards retain different windows: the cluster answers only the span
// every shard still holds, 404s name that common range, and healthz
// reports it.
func TestRouterCommonRangeSkew(t *testing.T) {
	d, w := clusterTestData(t)
	plan, err := PlanShards(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Shard 0 retains all three epochs; shard 1 only the newest.
	retain := func(i int) int {
		if i == 0 {
			return len(historyCuts)
		}
		return 1
	}
	for _, transport := range []string{TransportHTTP, TransportRPC} {
		t.Run(transport, func(t *testing.T) {
			shards, urls := buildHistoryShards(t, d, events, plan, 2, false, allRPC, retain)
			defer func() {
				for _, s := range shards {
					s.Close()
				}
			}()
			router, err := NewRouter(urls, RouterOptions{Transport: transport})
			if err != nil {
				t.Fatal(err)
			}
			defer router.Close()
			rts := httptest.NewServer(router.Handler())
			defer rts.Close()

			newest := uint64(len(historyCuts))
			// A span shard 1 evicted: 404 naming the COMMON range, not
			// shard 0's wider one.
			status, body := get(t, rts.URL, fmt.Sprintf("/v1/delta?from=%d&to=%d", newest-1, newest))
			if status != http.StatusNotFound {
				t.Fatalf("skewed delta: status %d, want 404", status)
			}
			if want := normalize(wire.NotRetainedBody(newest-1, newest, newest)); body != string(want) {
				t.Errorf("skewed delta body:\n got %s\nwant %s", body, want)
			}
			// As-of at an epoch only shard 0 retains: same common-range 404.
			status, body = get(t, rts.URL, fmt.Sprintf("/v1/summary?epoch=%d", newest-1))
			if status != http.StatusNotFound {
				t.Fatalf("skewed as-of: status %d, want 404", status)
			}
			if want := normalize(wire.NotRetainedBody(newest-1, newest, newest)); body != string(want) {
				t.Errorf("skewed as-of body:\n got %s\nwant %s", body, want)
			}
			// The common span still answers.
			if status, _ := get(t, rts.URL, fmt.Sprintf("/v1/summary?epoch=%d", newest)); status != http.StatusOK {
				t.Errorf("common epoch as-of: status %d, want 200", status)
			}

			// Movement: the merged range collapses to the common span;
			// shard 1's epoch-3 churn base (none) disagrees with shard
			// 0's (epoch 2), so no row survives — documented behaviour.
			var mv query.MovementView
			resp, err := http.Get(rts.URL + "/v1/movement")
			if err != nil {
				t.Fatal(err)
			}
			err = json.NewDecoder(resp.Body).Decode(&mv)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if mv.OldestEpoch != newest || mv.NewestEpoch != newest || len(mv.Series) != 0 {
				t.Errorf("skewed movement = range %d..%d with %d rows, want %d..%d with 0",
					mv.OldestEpoch, mv.NewestEpoch, len(mv.Series), newest, newest)
			}

			// Healthz: common range, per-shard truth.
			resp, err = http.Get(rts.URL + "/v1/healthz")
			if err != nil {
				t.Fatal(err)
			}
			var rh wire.RouterHealth
			err = json.NewDecoder(resp.Body).Decode(&rh)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if rh.OldestEpoch != newest || rh.NewestEpoch != newest {
				t.Errorf("healthz common range = %d..%d, want %d..%d", rh.OldestEpoch, rh.NewestEpoch, newest, newest)
			}
			if rh.Shards[0].OldestEpoch != 1 || rh.Shards[1].OldestEpoch != newest {
				t.Errorf("per-shard ranges = %d.. and %d.., want 1.. and %d..",
					rh.Shards[0].OldestEpoch, rh.Shards[1].OldestEpoch, newest)
			}
		})
	}
}
