package obs

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the dataset decoder. The
// invariants, matching the codec's documented contract:
//
//   - Decode never panics, however corrupt the input (the corruption
//     sweep in codec_test.go samples this; the fuzzer explores it);
//   - every failure is a typed error (ErrTruncated, *FormatError) or an
//     I/O error — never a silent partial dataset;
//   - anything that decodes re-encodes canonically: Write(Decode(x))
//     succeeds, and its output is a fixed point (decoding and
//     re-encoding it reproduces the same bytes), which is the property
//     the collect tier's deterministic stores rest on.
//
// The seed corpus is the canonical encoding of the codec round-trip
// corpus (sampleData) plus truncated and bit-flipped variants, so the
// fuzzer starts from structurally valid streams rather than rediscovering
// the magic/version header.
func FuzzDecode(f *testing.F) {
	for seed := uint64(1); seed <= 3; seed++ {
		var buf bytes.Buffer
		if err := Write(&buf, sampleData(f, seed)); err != nil {
			f.Fatal(err)
		}
		b := buf.Bytes()
		f.Add(b)
		f.Add(b[:len(b)/2]) // truncated mid-stream
		f.Add(b[:len(b)-1]) // missing end frame
		flipped := bytes.Clone(b)
		flipped[len(flipped)/3] ^= 0x40
		f.Add(flipped)
	}
	// A minimal empty-but-well-formed stream (header + meta + end).
	var empty bytes.Buffer
	w := NewWriter(&empty)
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Decode(bytes.NewReader(data))
		if err != nil {
			var fe *FormatError
			if !errors.Is(err, ErrTruncated) && !errors.As(err, &fe) {
				t.Fatalf("Decode failed with untyped error %T: %v", err, err)
			}
			return
		}
		var once bytes.Buffer
		if err := Write(&once, d); err != nil {
			t.Fatalf("re-encoding a decoded dataset failed: %v", err)
		}
		d2, err := Decode(bytes.NewReader(once.Bytes()))
		if err != nil {
			t.Fatalf("canonical re-encoding does not decode: %v", err)
		}
		var twice bytes.Buffer
		if err := Write(&twice, d2); err != nil {
			t.Fatalf("second re-encoding failed: %v", err)
		}
		if !bytes.Equal(once.Bytes(), twice.Bytes()) {
			t.Fatalf("canonical encoding is not a fixed point: %d vs %d bytes", once.Len(), twice.Len())
		}
	})
}
