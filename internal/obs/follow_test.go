package obs

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ipscope/internal/ipv4"
)

func followMeta() Meta {
	var m Meta
	m.World.Seed = 3
	m.World.NumASes = 5
	m.World.MeanBlocksPerAS = 2
	m.Run = RunConfig{Days: 28, DailyStart: 0, DailyLen: 20, UADays: 7,
		ICMPScanDays: []int{5}, Workers: 1}
	return m
}

func smallSet(base uint32, n int) *ipv4.Set {
	s := ipv4.NewSet()
	for i := 0; i < n; i++ {
		s.Add(ipv4.Addr(base + uint32(i)))
	}
	return s
}

// TestFollowWithPoll is the regression test for the configurable poll
// interval: 20 strict append→observe ping-pong rounds against a
// millisecond poll must complete far faster than they possibly could
// under the hard-coded default (20 rounds × 200ms ≥ 4s). Each round
// appends one day frame only after the previous one was observed, so
// every round pays at least one poll interval.
func TestFollowWithPoll(t *testing.T) {
	const rounds = 20
	path := filepath.Join(t.TempDir(), "tail.obs")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := NewWriter(f)
	if err := w.Observe(MetaEvent{Meta: followMeta()}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	events := make(chan Event, 4)
	done := make(chan error, 1)
	go func() {
		done <- FollowWith(ctx, path, FollowOptions{Poll: 2 * time.Millisecond},
			SinkFunc(func(e Event) error {
				events <- e
				return nil
			}))
	}()

	recv := func() Event {
		t.Helper()
		select {
		case e := <-events:
			return e
		case err := <-done:
			t.Fatalf("follow exited early: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("timed out waiting for event")
		}
		return nil
	}

	start := time.Now()
	if _, ok := recv().(MetaEvent); !ok {
		t.Fatal("first event is not the meta event")
	}
	for i := 0; i < rounds; i++ {
		if err := w.Observe(DayEvent{Index: i, Active: smallSet(0x0a000000, 3)}); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		ev, ok := recv().(DayEvent)
		if !ok || ev.Index != i {
			t.Fatalf("round %d: got %#v", i, ev)
		}
	}
	elapsed := time.Since(start)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("follow: %v", err)
	}
	// The default 200ms poll would need ≥ 4s for the 20 ping-pong
	// rounds; a 2ms poll finishes orders of magnitude faster. The bound
	// leaves a wide margin for a loaded CI machine.
	if elapsed >= 3*time.Second {
		t.Fatalf("20 ping-pong rounds took %v; poll option not honored", elapsed)
	}
}

// TestFollowWithSkip pins the frame-level resume semantics: indexed
// frames below the skip counts are discarded, everything else — the
// meta frame, the indexed tail, and the idempotent replace-semantics
// events — is delivered in order.
func TestFollowWithSkip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "skip.obs")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f)
	feed := []Event{
		MetaEvent{Meta: followMeta()},
		DayEvent{Index: 0, Active: smallSet(0x0a000000, 2)},
		DayEvent{Index: 1, Active: smallSet(0x0a000100, 2)},
		DayEvent{Index: 2, Active: smallSet(0x0a000200, 2)},
		DayEvent{Index: 3, Active: smallSet(0x0a000300, 2)},
		WeekEvent{Index: 0, Active: smallSet(0x0a000000, 4)},
		WeekEvent{Index: 1, Active: smallSet(0x0a000400, 4)},
		ICMPScanEvent{Index: 0, Responders: smallSet(0x0a000000, 3)},
		BlockStatsEvent{Block: ipv4.Block(0x0a0000), Traffic: &BlockTraffic{}},
		SurfacesEvent{Servers: smallSet(0x0a000800, 2), Routers: smallSet(0x0a000900, 1)},
	}
	for _, e := range feed {
		if err := w.Observe(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var got []Event
	err = FollowWith(context.Background(), path,
		FollowOptions{Poll: time.Millisecond, Skip: SkipCounts{Days: 3, Weeks: 1, Scans: 1}},
		SinkFunc(func(e Event) error { got = append(got, e); return nil }))
	if err != nil {
		t.Fatal(err)
	}

	var days, weeks, scans []int
	var metas, stats, surfaces int
	for _, e := range got {
		switch ev := e.(type) {
		case MetaEvent:
			metas++
		case DayEvent:
			days = append(days, ev.Index)
		case WeekEvent:
			weeks = append(weeks, ev.Index)
		case ICMPScanEvent:
			scans = append(scans, ev.Index)
		case BlockStatsEvent:
			stats++
		case SurfacesEvent:
			surfaces++
		}
	}
	if metas != 1 {
		t.Errorf("meta events = %d, want 1 (always delivered)", metas)
	}
	if len(days) != 1 || days[0] != 3 {
		t.Errorf("day indexes = %v, want [3]", days)
	}
	if len(weeks) != 1 || weeks[0] != 1 {
		t.Errorf("week indexes = %v, want [1]", weeks)
	}
	if len(scans) != 0 {
		t.Errorf("scan indexes = %v, want none", scans)
	}
	if stats != 1 || surfaces != 1 {
		t.Errorf("stats/surfaces = %d/%d, want 1/1 (idempotent events always delivered)", stats, surfaces)
	}
}
