package obs

import "testing"

func TestTruncateWindow(t *testing.T) {
	d := sampleData(t, 8)
	n := 7
	got := d.TruncateWindow(n)
	if len(got.Daily) != n || len(got.DailyTotalHits) != n {
		t.Fatalf("window not truncated: %d daily sets", len(got.Daily))
	}
	if got.Meta.Run.DailyLen != n {
		t.Errorf("meta DailyLen = %d", got.Meta.Run.DailyLen)
	}
	if got.Meta.Run.UADays > n {
		t.Errorf("UADays %d exceeds window", got.Meta.Run.UADays)
	}
	// Scans after the truncated window are gone; the scan-day list and
	// snapshot list stay aligned.
	lastDay := got.Meta.Run.DailyStart + n
	if len(got.Meta.Run.ICMPScanDays) != len(got.ICMPScans) {
		t.Fatalf("scan days %d != snapshots %d",
			len(got.Meta.Run.ICMPScanDays), len(got.ICMPScans))
	}
	for _, day := range got.Meta.Run.ICMPScanDays {
		if day >= lastDay {
			t.Errorf("scan day %d survived truncation to %d", day, lastDay)
		}
	}
	// DaysActive is recomputed from the kept sets: never more than n.
	for blk, bt := range got.Traffic {
		for h := 0; h < 256; h++ {
			if int(bt.DaysActive[h]) > n {
				t.Fatalf("Traffic[%v] host %d active %d days in %d-day window",
					blk, h, bt.DaysActive[h], n)
			}
		}
	}
	// UA statistics were sampled on the original window's trailing
	// days, which the truncation cuts into: they must not survive.
	if len(got.UA) != 0 || got.Meta.Run.UADays != 0 {
		t.Errorf("truncated dataset kept %d UA blocks (UADays=%d)",
			len(got.UA), got.Meta.Run.UADays)
	}
	// The input is untouched.
	if len(d.Daily) == n || len(d.UA) == 0 {
		t.Fatal("input dataset was mutated")
	}
}

func TestSubsampleVantage(t *testing.T) {
	d := sampleData(t, 8)
	got := d.SubsampleVantage(0.5, 42)
	full := d.DailyWindowUnion().Len()
	kept := got.DailyWindowUnion().Len()
	if kept == 0 || kept >= full {
		t.Fatalf("subsample kept %d of %d addresses", kept, full)
	}
	if lo, hi := full/3, 2*full/3; kept < lo || kept > hi {
		t.Errorf("kept %d of %d, want roughly half", kept, full)
	}
	// Deterministic: same fraction and seed, same result.
	again := d.SubsampleVantage(0.5, 42)
	for i := range got.Daily {
		if !got.Daily[i].Equal(again.Daily[i]) {
			t.Fatal("subsample not deterministic")
		}
	}
	// Each filtered set is a subset of its original.
	for i := range got.Daily {
		if got.Daily[i].DiffCount(d.Daily[i]) != 0 {
			t.Fatal("subsample invented addresses")
		}
	}
	// UA sketches only survive for blocks the vantage still observes:
	// a vantage that keeps (essentially) nothing keeps no sketches.
	none := d.SubsampleVantage(1e-9, 42)
	if len(none.Traffic) != 0 {
		t.Fatalf("1e-9 vantage kept %d traffic blocks", len(none.Traffic))
	}
	if len(none.UA) != 0 {
		t.Errorf("vantage with no traffic kept %d UA blocks", len(none.UA))
	}
	for blk := range got.UA {
		if got.Traffic[blk] == nil {
			t.Fatalf("UA sketch kept for unobserved block %v", blk)
		}
	}
	// The no-op fraction returns the dataset unchanged.
	if d.SubsampleVantage(1.0, 42) != d {
		t.Error("frac=1 should be the identity")
	}
}
