package obs

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"ipscope/internal/bgp"
	"ipscope/internal/ipv4"
	"ipscope/internal/useragent"
)

// Dataset wire format (all integers big endian), following the framing
// conventions of internal/cdnlog/wire.go: a fixed magic guards against
// desynchronized streams, every frame is length-prefixed so unknown
// event kinds can be skipped, and counts are validated before
// allocation so corrupted input cannot trigger huge allocations.
//
//	stream := magic("ipsobs") version(2) frame* endFrame
//	frame  := kind(1) length(4) payload[length]
//
// Frame kinds mirror the Event types; an end frame (kindEnd, empty
// payload) marks clean termination — a stream without one is truncated.

const (
	// Version is the current dataset format version.
	Version = 1

	maxFrameLen = 1 << 28 // 256 MiB: far above any real frame

	kindMeta         = 0x01
	kindDay          = 0x02
	kindWeek         = 0x03
	kindICMP         = 0x04
	kindBlockStats   = 0x05
	kindSurfaces     = 0x06
	kindRouting      = 0x07
	kindRestructures = 0x08
	kindEnd          = 0xFF
)

var magic = []byte("ipsobs")

// ErrTruncated is returned when a dataset stream ends before its end
// frame: the producer died mid-write or the file was cut short.
var ErrTruncated = errors.New("obs: truncated dataset stream")

// FormatError reports structurally invalid dataset input: bad magic,
// an unsupported version, or a malformed frame.
type FormatError struct{ Msg string }

// Error returns the message.
func (e *FormatError) Error() string { return "obs: " + e.Msg }

func formatErrf(format string, args ...interface{}) error {
	return &FormatError{Msg: fmt.Sprintf(format, args...)}
}

// Writer encodes observation events to an output stream. It implements
// Sink, so it can be attached directly to a live simulation
// (sim.RunTo) and stream the dataset as days and weeks complete.
// Writes are buffered; Close writes the end frame and flushes.
type Writer struct {
	bw  *bufio.Writer
	err error
	buf []byte
}

// NewWriter returns a Writer over w. The stream header is written on
// the first event.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<20)}
}

// Observe encodes one event as a frame.
func (w *Writer) Observe(e Event) error {
	if w.err != nil {
		return w.err
	}
	if w.buf == nil { // first event: header
		if _, err := w.bw.Write(magic); err != nil {
			return w.fail(err)
		}
		var v [2]byte
		binary.BigEndian.PutUint16(v[:], Version)
		if _, err := w.bw.Write(v[:]); err != nil {
			return w.fail(err)
		}
		w.buf = make([]byte, 0, 1<<16)
	}
	kind, payload := encodeEvent(w.buf[:0], e)
	w.buf = payload[:0]
	if len(payload) > maxFrameLen {
		// Fail at write time: Decode rejects oversized frames, so
		// writing one would produce an unrecoverable store.
		return w.fail(formatErrf("event frame of %d bytes exceeds the %d-byte format limit",
			len(payload), maxFrameLen))
	}
	var hdr [5]byte
	hdr[0] = kind
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return w.fail(err)
	}
	if _, err := w.bw.Write(payload); err != nil {
		return w.fail(err)
	}
	return nil
}

// Flush writes buffered frames to the underlying writer without ending
// the stream, so a live consumer (a tailing reader, a TCP peer) sees
// the events emitted so far promptly instead of at buffer granularity.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.fail(w.bw.Flush())
}

// Close writes the end frame and flushes buffered output. It does not
// close the underlying writer.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.buf == nil {
		// No events: still emit a well-formed (empty) stream.
		if err := w.Observe(MetaEvent{}); err != nil {
			return err
		}
	}
	if _, err := w.bw.Write([]byte{kindEnd, 0, 0, 0, 0}); err != nil {
		return w.fail(err)
	}
	return w.fail(w.bw.Flush())
}

func (w *Writer) fail(err error) error {
	if err != nil && w.err == nil {
		w.err = err
	}
	return err
}

// Write encodes a complete dataset to w in canonical event order.
// Equal datasets produce byte-identical output.
func Write(w io.Writer, d *Data) error {
	ew := NewWriter(w)
	if err := d.WriteTo(ew); err != nil {
		return err
	}
	return ew.Close()
}

// WriteFile writes a dataset to path.
func WriteFile(path string, d *Data) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// StreamDecode reads one dataset stream from r, delivering each event
// to sink as soon as its frame is decoded — the streaming counterpart
// of Decode, and the read path live consumers (a tailing server, a
// network ingest) attach to. It enforces the stream contract Decode
// does: meta frame first, unknown frame kinds skipped, ErrTruncated if
// the stream ends before its end frame, *FormatError for structurally
// invalid input. A sink error stops the decode and is returned as is.
func StreamDecode(r io.Reader, sink Sink) error {
	return streamDecode(r, SkipCounts{}, sink)
}

// SkipCounts tells a stream decoder how many leading indexed events per
// kind the consumer has already applied (from a persisted checkpoint):
// day, week and ICMP-scan frames whose index is below the respective
// count are discarded at the frame level — four index bytes peeked, the
// rest of the payload skipped without decoding or allocating. Only
// indexed kinds can be skipped: the meta frame is always delivered
// (partition sinks and resuming consumers both need it), and the
// replace-semantics kinds (block stats, surfaces, routing,
// restructures) are always delivered because re-applying them is
// idempotent.
type SkipCounts struct {
	Days  int
	Weeks int
	Scans int
}

// StreamDecodeFrom is StreamDecode with a resume point: frames already
// covered by skip are discarded without decoding. It is the network
// ingest path for a consumer restarting from a snapshot checkpoint.
func StreamDecodeFrom(r io.Reader, skip SkipCounts, sink Sink) error {
	return streamDecode(r, skip, sink)
}

// skipLimit returns how many leading frames of this kind skip covers
// (0 = deliver everything).
func (s SkipCounts) skipLimit(kind byte) int {
	switch kind {
	case kindDay:
		return s.Days
	case kindWeek:
		return s.Weeks
	case kindICMP:
		return s.Scans
	}
	return 0
}

func streamDecode(r io.Reader, skip SkipCounts, sink Sink) error {
	br := bufio.NewReaderSize(r, 1<<20)
	hdr := make([]byte, len(magic)+2)
	if _, err := io.ReadFull(br, hdr); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return ErrTruncated
		}
		return err
	}
	if string(hdr[:len(magic)]) != string(magic) {
		return formatErrf("bad stream magic %q", hdr[:len(magic)])
	}
	if v := binary.BigEndian.Uint16(hdr[len(magic):]); v != Version {
		return formatErrf("unsupported dataset version %d (want %d)", v, Version)
	}
	sawMeta := false
	var fh [5]byte
	for {
		if _, err := io.ReadFull(br, fh[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return ErrTruncated
			}
			return err
		}
		kind := fh[0]
		n := binary.BigEndian.Uint32(fh[1:])
		if n > maxFrameLen {
			return formatErrf("frame length %d exceeds limit", n)
		}
		if kind == kindEnd {
			if n != 0 {
				return formatErrf("end frame with non-empty payload")
			}
			if !sawMeta {
				return formatErrf("dataset stream has no meta frame")
			}
			return nil
		}
		var payload []byte
		if limit := skip.skipLimit(kind); limit > 0 && sawMeta && n >= 4 {
			// Indexed frame with a resume point: peek the big-endian
			// index and discard the payload wholesale when it is already
			// covered by the checkpoint.
			var ib [4]byte
			if _, err := io.ReadFull(br, ib[:]); err != nil {
				if err == io.EOF || err == io.ErrUnexpectedEOF {
					return ErrTruncated
				}
				return err
			}
			if int(binary.BigEndian.Uint32(ib[:])) < limit {
				if _, err := br.Discard(int(n) - 4); err != nil {
					if err == io.EOF || err == io.ErrUnexpectedEOF {
						return ErrTruncated
					}
					return err
				}
				continue
			}
			payload = make([]byte, n)
			copy(payload, ib[:])
			if _, err := io.ReadFull(br, payload[4:]); err != nil {
				if err == io.EOF || err == io.ErrUnexpectedEOF {
					return ErrTruncated
				}
				return err
			}
		} else {
			payload = make([]byte, n)
			if _, err := io.ReadFull(br, payload); err != nil {
				if err == io.EOF || err == io.ErrUnexpectedEOF {
					return ErrTruncated
				}
				return err
			}
		}
		e, err := decodeEvent(kind, payload)
		if err != nil {
			return err
		}
		if e == nil {
			continue // unknown frame kind: skip for forward compatibility
		}
		if _, ok := e.(MetaEvent); ok {
			sawMeta = true
		} else if !sawMeta {
			return formatErrf("event frame 0x%02x before meta frame", kind)
		}
		if err := sink.Observe(e); err != nil {
			return err
		}
	}
}

// Decode reads one dataset stream from r. It returns ErrTruncated if
// the stream ends before its end frame and a *FormatError for
// structurally invalid input; it never panics on corrupt data.
func Decode(r io.Reader) (*Data, error) {
	d := &Data{}
	if err := StreamDecode(r, d); err != nil {
		return nil, err
	}
	return d, nil
}

// DecodeFile reads a dataset from path.
func DecodeFile(path string) (*Data, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}

// FileSource is a Source backed by a dataset file on disk.
type FileSource string

// Observations decodes the file.
func (p FileSource) Observations() (*Data, error) { return DecodeFile(string(p)) }

// Follow tails the dataset file, streaming events into sink — the
// tailing mode of FileSource. See the package-level Follow.
func (p FileSource) Follow(ctx context.Context, poll time.Duration, sink Sink) error {
	return Follow(ctx, string(p), poll, sink)
}

// FollowWith tails the dataset file with explicit options.
func (p FileSource) FollowWith(ctx context.Context, opts FollowOptions, sink Sink) error {
	return FollowWith(ctx, string(p), opts, sink)
}

// DefaultFollowPoll is the poll interval Follow uses when given 0.
const DefaultFollowPoll = 200 * time.Millisecond

// FollowOptions parameterizes FollowWith.
type FollowOptions struct {
	// Poll is the interval at which the tail re-checks the file for
	// appended bytes (and for the file to appear); 0 means
	// DefaultFollowPoll. Tests tail with a millisecond poll so a
	// ping-pong append/observe round trip never sleeps a full default
	// interval.
	Poll time.Duration
	// Skip discards already-applied indexed frames at the frame level —
	// the resume path for a consumer restarting from a checkpoint.
	Skip SkipCounts
}

// Follow streams the dataset at path into sink as the file grows: a
// producer (ipscope-gen -dataset FILE) appends frames while a consumer
// tails them live. Instead of treating end-of-file as truncation the
// way Decode does, Follow polls for appended bytes every poll interval
// (0 means DefaultFollowPoll) and keeps decoding; it also waits for the
// file to appear, so the consumer can start first. Follow returns nil
// once the stream's end frame is read, ctx.Err() if the context is
// cancelled while waiting, and otherwise whatever StreamDecode fails
// with.
func Follow(ctx context.Context, path string, poll time.Duration, sink Sink) error {
	return FollowWith(ctx, path, FollowOptions{Poll: poll}, sink)
}

// FollowWith is Follow with explicit options: a configurable poll
// interval and a frame-level resume point.
func FollowWith(ctx context.Context, path string, opts FollowOptions, sink Sink) error {
	poll := opts.Poll
	if poll <= 0 {
		poll = DefaultFollowPoll
	}
	var f *os.File
	for {
		var err error
		f, err = os.Open(path)
		if err == nil {
			break
		}
		if !os.IsNotExist(err) {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(poll):
		}
	}
	defer f.Close()
	return streamDecode(&tailReader{ctx: ctx, f: f, poll: poll}, opts.Skip, sink)
}

// tailReader turns end-of-file into "wait for more bytes": Read blocks
// (polling) until the file grows, the context is cancelled, or a real
// read error occurs. It never returns io.EOF.
type tailReader struct {
	ctx  context.Context
	f    *os.File
	poll time.Duration
}

func (t *tailReader) Read(p []byte) (int, error) {
	for {
		n, err := t.f.Read(p)
		if n > 0 {
			return n, nil
		}
		if err != nil && err != io.EOF {
			return 0, err
		}
		select {
		case <-t.ctx.Done():
			return 0, t.ctx.Err()
		case <-time.After(t.poll):
		}
	}
}

// --- event payload encoding -----------------------------------------

func encodeEvent(b []byte, e Event) (kind byte, payload []byte) {
	switch ev := e.(type) {
	case MetaEvent:
		return kindMeta, appendMeta(b, ev.Meta)
	case DayEvent:
		b = appendU32(b, uint32(ev.Index))
		b = appendF64(b, ev.TotalHits)
		return kindDay, appendSet(b, ev.Active)
	case WeekEvent:
		b = appendU32(b, uint32(ev.Index))
		b = appendF64(b, ev.TopShare)
		return kindWeek, appendSet(b, ev.Active)
	case ICMPScanEvent:
		b = appendU32(b, uint32(ev.Index))
		return kindICMP, appendSet(b, ev.Responders)
	case BlockStatsEvent:
		return kindBlockStats, appendBlockStats(b, ev)
	case SurfacesEvent:
		b = appendSet(b, ev.Servers)
		return kindSurfaces, appendSet(b, ev.Routers)
	case RoutingEvent:
		return kindRouting, appendRouting(b, ev.Log)
	case RestructuresEvent:
		return kindRestructures, appendRestructures(b, ev.Restructures)
	}
	panic(fmt.Sprintf("obs: unknown event type %T", e))
}

func decodeEvent(kind byte, p []byte) (Event, error) {
	d := &decoder{p: p}
	switch kind {
	case kindMeta:
		m, err := d.meta()
		if err != nil {
			return nil, err
		}
		return MetaEvent{Meta: m}, nil
	case kindDay:
		idx := d.u32()
		hits := d.f64()
		set, err := d.set()
		if err != nil {
			return nil, err
		}
		return DayEvent{Index: int(idx), TotalHits: hits, Active: set}, d.finish(kind)
	case kindWeek:
		idx := d.u32()
		share := d.f64()
		set, err := d.set()
		if err != nil {
			return nil, err
		}
		return WeekEvent{Index: int(idx), TopShare: share, Active: set}, d.finish(kind)
	case kindICMP:
		idx := d.u32()
		set, err := d.set()
		if err != nil {
			return nil, err
		}
		return ICMPScanEvent{Index: int(idx), Responders: set}, d.finish(kind)
	case kindBlockStats:
		return d.blockStats()
	case kindSurfaces:
		servers, err := d.set()
		if err != nil {
			return nil, err
		}
		routers, err := d.set()
		if err != nil {
			return nil, err
		}
		return SurfacesEvent{Servers: servers, Routers: routers}, d.finish(kind)
	case kindRouting:
		return d.routing()
	case kindRestructures:
		return d.restructures()
	}
	return nil, nil // unknown kind: caller skips
}

// --- primitive append helpers ---------------------------------------

func appendU8(b []byte, v uint8) []byte   { return append(b, v) }
func appendU16(b []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }
func appendF64(b []byte, v float64) []byte {
	return appendU64(b, math.Float64bits(v))
}

func appendSet(b []byte, s *ipv4.Set) []byte {
	if s == nil {
		return appendU32(b, 0)
	}
	blocks := s.Blocks()
	b = appendU32(b, uint32(len(blocks)))
	for _, blk := range blocks {
		b = appendU32(b, uint32(blk))
		bm := s.BlockBitmap(blk)
		for i := 0; i < 4; i++ {
			b = appendU64(b, bm[i])
		}
	}
	return b
}

func appendPrefix(b []byte, p ipv4.Prefix) []byte {
	b = appendU32(b, uint32(p.Addr()))
	return appendU8(b, uint8(p.Bits()))
}

func appendMeta(b []byte, m Meta) []byte {
	b = appendU64(b, m.World.Seed)
	b = appendU32(b, uint32(m.World.NumASes))
	b = appendU32(b, uint32(m.World.MeanBlocksPerAS))
	r := m.Run
	b = appendU32(b, uint32(r.Days))
	b = appendU32(b, uint32(r.DailyStart))
	b = appendU32(b, uint32(r.DailyLen))
	b = appendU32(b, uint32(r.UADays))
	b = appendU32(b, uint32(len(r.ICMPScanDays)))
	for _, d := range r.ICMPScanDays {
		b = appendU32(b, uint32(d))
	}
	for _, f := range []float64{r.PrefixChangeFrac, r.BlockChangeFrac,
		r.BGPCoupleProb, r.BGPNoisePerDay, r.JoinFrac, r.LeaveFrac, r.TrafficGrowth} {
		b = appendF64(b, f)
	}
	return appendU32(b, uint32(int32(r.Workers)))
}

func appendBlockStats(b []byte, ev BlockStatsEvent) []byte {
	b = appendU32(b, uint32(ev.Block))
	var flags uint8
	if ev.Traffic != nil {
		flags |= 1
	}
	if ev.UA != nil && ev.UA.Sketch != nil {
		flags |= 2
	}
	b = appendU8(b, flags)
	if ev.Traffic != nil {
		for _, v := range ev.Traffic.DaysActive {
			b = appendU16(b, v)
		}
		for _, v := range ev.Traffic.Hits {
			b = appendF64(b, v)
		}
	}
	if ev.UA != nil && ev.UA.Sketch != nil {
		b = appendU64(b, uint64(ev.UA.Samples))
		b = appendU8(b, ev.UA.Sketch.Precision())
		b = append(b, ev.UA.Sketch.Registers()...)
	}
	return b
}

func appendRouting(b []byte, log *bgp.ChangeLog) []byte {
	if log == nil {
		b = appendU32(b, 0)
		return appendU32(b, 0)
	}
	b = appendU32(b, uint32(log.NumDays()))
	var routes []bgp.Route
	if log.Base != nil {
		routes = log.Base.Routes()
	}
	b = appendU32(b, uint32(len(routes)))
	for _, r := range routes {
		b = appendPrefix(b, r.Prefix)
		b = appendU32(b, uint32(r.Origin))
	}
	for _, day := range log.DayChanges {
		b = appendU32(b, uint32(len(day)))
		for _, c := range day {
			b = appendU8(b, uint8(c.Kind))
			b = appendPrefix(b, c.Prefix)
			b = appendU32(b, uint32(c.OldOrigin))
			b = appendU32(b, uint32(c.NewOrigin))
		}
	}
	return b
}

func appendRestructures(b []byte, rs []Restructure) []byte {
	b = appendU32(b, uint32(len(rs)))
	for _, r := range rs {
		b = appendPrefix(b, r.Prefix)
		b = appendU32(b, uint32(r.Day))
		b = appendU8(b, uint8(r.Kind))
		vis := uint8(0)
		if r.BGPVisible {
			vis = 1
		}
		b = appendU8(b, vis)
		b = appendU8(b, uint8(r.BGPKind))
	}
	return b
}

// --- decoder ---------------------------------------------------------

// decoder consumes a frame payload. Reads past the end set err instead
// of panicking; callers check finish().
type decoder struct {
	p   []byte
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = &FormatError{Msg: "frame payload too short"}
	}
}

func (d *decoder) take(n int) []byte {
	if d.err != nil || len(d.p) < n {
		d.fail()
		return nil
	}
	out := d.p[:n]
	d.p = d.p[n:]
	return out
}

func (d *decoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

// count reads a length field and validates it against the bytes that
// could possibly remain (elemSize per element), so corrupted counts
// fail fast instead of allocating gigabytes.
func (d *decoder) count(elemSize int) int {
	n := int(d.u32())
	if d.err == nil && n*elemSize > len(d.p) {
		d.err = formatErrf("count %d exceeds remaining payload", n)
	}
	if d.err != nil {
		return 0
	}
	return n
}

func (d *decoder) finish(kind byte) error {
	if d.err != nil {
		return d.err
	}
	if len(d.p) != 0 {
		return formatErrf("frame 0x%02x has %d trailing bytes", kind, len(d.p))
	}
	return nil
}

func (d *decoder) set() (*ipv4.Set, error) {
	n := d.count(36) // block(4) + bitmap(32)
	s := ipv4.NewSet()
	for i := 0; i < n; i++ {
		blk := ipv4.Block(d.u32())
		var bm ipv4.Bitmap256
		for j := 0; j < 4; j++ {
			bm[j] = d.u64()
		}
		if d.err != nil {
			return nil, d.err
		}
		s.AddBlockBitmap(blk, &bm)
	}
	return s, d.err
}

func (d *decoder) prefix() ipv4.Prefix {
	addr := ipv4.Addr(d.u32())
	bits := int(d.u8())
	if d.err != nil {
		return ipv4.Prefix{}
	}
	p, err := ipv4.NewPrefix(addr, bits)
	if err != nil {
		d.err = formatErrf("invalid prefix %v/%d", addr, bits)
	}
	return p
}

func (d *decoder) meta() (Meta, error) {
	var m Meta
	m.World.Seed = d.u64()
	m.World.NumASes = int(d.u32())
	m.World.MeanBlocksPerAS = int(d.u32())
	r := &m.Run
	r.Days = int(d.u32())
	r.DailyStart = int(d.u32())
	r.DailyLen = int(d.u32())
	r.UADays = int(d.u32())
	n := d.count(4)
	for i := 0; i < n; i++ {
		r.ICMPScanDays = append(r.ICMPScanDays, int(d.u32()))
	}
	for _, f := range []*float64{&r.PrefixChangeFrac, &r.BlockChangeFrac,
		&r.BGPCoupleProb, &r.BGPNoisePerDay, &r.JoinFrac, &r.LeaveFrac, &r.TrafficGrowth} {
		*f = d.f64()
	}
	r.Workers = int(int32(d.u32()))
	if err := d.finish(kindMeta); err != nil {
		return Meta{}, err
	}
	if r.Days < 0 || r.DailyLen < 0 || r.DailyLen > 1<<20 || r.Days > 1<<20 {
		return Meta{}, formatErrf("implausible run geometry days=%d dailyLen=%d", r.Days, r.DailyLen)
	}
	// The world config drives synthnet.Generate on the analysis side;
	// bound it so a corrupt meta frame cannot trigger a giant
	// allocation there. 2^24 /24 blocks is the entire IPv4 space.
	if m.World.NumASes > 1<<22 || m.World.MeanBlocksPerAS > 1<<16 ||
		m.World.NumASes*m.World.MeanBlocksPerAS > 1<<24 {
		return Meta{}, formatErrf("implausible world config ases=%d blocksPerAS=%d",
			m.World.NumASes, m.World.MeanBlocksPerAS)
	}
	return m, nil
}

func (d *decoder) blockStats() (Event, error) {
	ev := BlockStatsEvent{Block: ipv4.Block(d.u32())}
	flags := d.u8()
	if flags&1 != 0 {
		bt := &BlockTraffic{}
		for i := range bt.DaysActive {
			bt.DaysActive[i] = d.u16()
		}
		for i := range bt.Hits {
			bt.Hits[i] = d.f64()
		}
		ev.Traffic = bt
	}
	if flags&2 != 0 {
		samples := d.u64()
		p := d.u8()
		if p < 4 || p > 16 {
			if d.err == nil {
				d.err = formatErrf("invalid HLL precision %d", p)
			}
			return nil, d.err
		}
		regs := d.take(1 << p)
		if d.err != nil {
			return nil, d.err
		}
		sketch, err := useragent.HLLFromRegisters(p, regs)
		if err != nil {
			return nil, formatErrf("bad HLL registers: %v", err)
		}
		ev.UA = &UAStat{Samples: int(samples), Sketch: sketch}
	}
	return ev, d.finish(kindBlockStats)
}

func (d *decoder) routing() (Event, error) {
	numDays := d.count(0)
	if numDays > 1<<20 {
		return nil, formatErrf("implausible routing day count %d", numDays)
	}
	base := bgp.NewTable()
	nRoutes := d.count(9)
	for i := 0; i < nRoutes; i++ {
		p := d.prefix()
		origin := bgp.ASN(d.u32())
		if d.err != nil {
			return nil, d.err
		}
		base.Insert(bgp.Route{Prefix: p, Origin: origin})
	}
	log := bgp.NewChangeLog(base, numDays)
	for day := 0; day < numDays; day++ {
		n := d.count(14)
		for i := 0; i < n; i++ {
			kind := bgp.ChangeKind(d.u8())
			p := d.prefix()
			oldO := bgp.ASN(d.u32())
			newO := bgp.ASN(d.u32())
			if d.err != nil {
				return nil, d.err
			}
			log.Record(day, bgp.Change{Kind: kind, Prefix: p, OldOrigin: oldO, NewOrigin: newO})
		}
	}
	return RoutingEvent{Log: log}, d.finish(kindRouting)
}

func (d *decoder) restructures() (Event, error) {
	n := d.count(12)
	rs := make([]Restructure, 0, n)
	for i := 0; i < n; i++ {
		r := Restructure{
			Prefix: d.prefix(),
			Day:    int(d.u32()),
			Kind:   RestructureKind(d.u8()),
		}
		r.BGPVisible = d.u8() != 0
		r.BGPKind = bgp.ChangeKind(d.u8())
		if d.err != nil {
			return nil, d.err
		}
		rs = append(rs, r)
	}
	return RestructuresEvent{Restructures: rs}, d.finish(kindRestructures)
}
