package obs

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"

	"ipscope/internal/bgp"
	"ipscope/internal/ipv4"
	"ipscope/internal/useragent"
	"ipscope/internal/xrand"
)

// sampleData builds a small but fully-populated dataset exercising
// every event kind, deterministically from seed.
func sampleData(t testing.TB, seed uint64) *Data {
	t.Helper()
	r := xrand.New(seed, "obs-test")
	meta := Meta{}
	meta.World.Seed = seed
	meta.World.NumASes = 7
	meta.World.MeanBlocksPerAS = 3
	meta.Run = RunConfig{
		Days: 28, DailyStart: 7, DailyLen: 14, UADays: 7,
		ICMPScanDays:     []int{9, 12, 15},
		PrefixChangeFrac: 0.25, BlockChangeFrac: 0.1,
		BGPCoupleProb: 0.2, BGPNoisePerDay: 0.05,
		JoinFrac: 0.07, LeaveFrac: 0.07, TrafficGrowth: 0.6,
		Workers: 3,
	}

	d := &Data{}
	if err := d.Observe(MetaEvent{Meta: meta}); err != nil {
		t.Fatal(err)
	}

	randSet := func(n int) *ipv4.Set {
		s := ipv4.NewSet()
		for i := 0; i < n; i++ {
			s.Add(ipv4.Addr(0x0a000000 + r.Uint64()%(1<<16)))
		}
		return s
	}
	for i := 0; i < meta.Run.DailyLen; i++ {
		d.Observe(DayEvent{Index: i, Active: randSet(200), TotalHits: r.Float64() * 1e6})
	}
	for i := 0; i < meta.Run.NumWeeks(); i++ {
		d.Observe(WeekEvent{Index: i, Active: randSet(400), TopShare: r.Float64()})
	}
	for i := range meta.Run.ICMPScanDays {
		d.Observe(ICMPScanEvent{Index: i, Responders: randSet(100)})
	}
	for i := 0; i < 10; i++ {
		blk := ipv4.Block(0x0a0000 + uint32(i))
		bt := &BlockTraffic{}
		for h := 0; h < 256; h += 3 {
			bt.DaysActive[h] = uint16(r.Intn(15))
			bt.Hits[h] = r.Float64() * 1000
		}
		sketch := useragent.NewHLL(10)
		for j := 0; j < 50; j++ {
			sketch.Add(r.Uint64())
		}
		d.Observe(BlockStatsEvent{Block: blk, Traffic: bt,
			UA: &UAStat{Samples: 50 + i, Sketch: sketch}})
	}
	d.Observe(SurfacesEvent{Servers: randSet(50), Routers: randSet(20)})

	base := bgp.NewTable()
	var prefixes []ipv4.Prefix
	for i := 0; i < 9; i++ {
		p := ipv4.MustNewPrefix(ipv4.Addr(0x0a000000+uint32(i)<<12), 20)
		prefixes = append(prefixes, p)
		base.Insert(bgp.Route{Prefix: p, Origin: bgp.ASN(100 + i)})
	}
	log := bgp.NewChangeLog(base, meta.Run.Days)
	for day := 1; day < meta.Run.Days; day++ {
		if r.Intn(3) == 0 {
			log.Record(day, bgp.Change{
				Kind:      bgp.ChangeKind(r.Intn(3)),
				Prefix:    prefixes[r.Intn(len(prefixes))],
				OldOrigin: bgp.ASN(r.Intn(200)),
				NewOrigin: bgp.ASN(r.Intn(200)),
			})
		}
	}
	d.Observe(RoutingEvent{Log: log})
	d.Observe(RestructuresEvent{Restructures: []Restructure{
		{Prefix: prefixes[0], Day: 10, Kind: Deactivate, BGPVisible: true, BGPKind: bgp.Withdraw},
		{Prefix: prefixes[1], Day: 20, Kind: Activate},
		{Prefix: prefixes[2], Day: 3, Kind: PolicySwitch, BGPVisible: true, BGPKind: bgp.OriginChange},
	}})
	return d
}

// requireEqualData fails unless two datasets are observably identical:
// same sets, same float series bit for bit, same aggregates, sketches,
// routing history and ground truth.
func requireEqualData(t *testing.T, a, b *Data) {
	t.Helper()
	if !reflect.DeepEqual(a.Meta, b.Meta) {
		t.Fatalf("Meta differs:\n%+v\n%+v", a.Meta, b.Meta)
	}
	equalSets := func(name string, xs, ys []*ipv4.Set) {
		if len(xs) != len(ys) {
			t.Fatalf("%s: %d vs %d snapshots", name, len(xs), len(ys))
		}
		for i := range xs {
			if !xs[i].Equal(ys[i]) {
				t.Fatalf("%s[%d] differs", name, i)
			}
		}
	}
	equalSets("Daily", a.Daily, b.Daily)
	equalSets("Weekly", a.Weekly, b.Weekly)
	equalSets("ICMPScans", a.ICMPScans, b.ICMPScans)
	if !a.ServerSet.Equal(b.ServerSet) || !a.RouterSet.Equal(b.RouterSet) {
		t.Fatal("scan surfaces differ")
	}
	equalF64s := func(name string, xs, ys []float64) {
		if len(xs) != len(ys) {
			t.Fatalf("%s: length %d vs %d", name, len(xs), len(ys))
		}
		for i := range xs {
			if math.Float64bits(xs[i]) != math.Float64bits(ys[i]) {
				t.Fatalf("%s[%d]: %v vs %v", name, i, xs[i], ys[i])
			}
		}
	}
	equalF64s("DailyTotalHits", a.DailyTotalHits, b.DailyTotalHits)
	equalF64s("WeeklyTopShare", a.WeeklyTopShare, b.WeeklyTopShare)
	if len(a.Traffic) != len(b.Traffic) {
		t.Fatalf("Traffic: %d vs %d blocks", len(a.Traffic), len(b.Traffic))
	}
	for blk, at := range a.Traffic {
		bt := b.Traffic[blk]
		if bt == nil || *at != *bt {
			t.Fatalf("Traffic[%v] differs", blk)
		}
	}
	if len(a.UA) != len(b.UA) {
		t.Fatalf("UA: %d vs %d blocks", len(a.UA), len(b.UA))
	}
	for blk, au := range a.UA {
		bu := b.UA[blk]
		if bu == nil || au.Samples != bu.Samples ||
			!bytes.Equal(au.Sketch.Registers(), bu.Sketch.Registers()) {
			t.Fatalf("UA[%v] differs", blk)
		}
	}
	if !reflect.DeepEqual(a.Restructures, b.Restructures) {
		t.Fatal("Restructures differ")
	}
	if (a.Routing == nil) != (b.Routing == nil) {
		t.Fatal("Routing presence differs")
	}
	if a.Routing != nil {
		if !reflect.DeepEqual(a.Routing.DayChanges, b.Routing.DayChanges) {
			t.Fatal("Routing.DayChanges differ")
		}
		var ar, br []bgp.Route
		if a.Routing.Base != nil {
			ar = a.Routing.Base.Routes()
		}
		if b.Routing.Base != nil {
			br = b.Routing.Base.Routes()
		}
		if !reflect.DeepEqual(ar, br) {
			t.Fatal("Routing.Base routes differ")
		}
	}
}

// TestCodecRoundTrip is the codec's core property: write→read over
// several generated datasets reproduces the Source exactly.
func TestCodecRoundTrip(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		d := sampleData(t, seed)
		var buf bytes.Buffer
		if err := Write(&buf, d); err != nil {
			t.Fatal(err)
		}
		got, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		requireEqualData(t, d, got)
	}
}

// TestCodecDeterministic: equal datasets encode to identical bytes.
func TestCodecDeterministic(t *testing.T) {
	d := sampleData(t, 3)
	var b1, b2 bytes.Buffer
	if err := Write(&b1, d); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b2, d); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("canonical encoding is not deterministic")
	}
}

// TestCodecStreaming: a Writer used as a live Sink (events one by one)
// produces a decodable stream equal to the source.
func TestCodecStreaming(t *testing.T) {
	d := sampleData(t, 4)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := d.WriteTo(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualData(t, d, got)
}

// TestCodecTruncated: every proper prefix of a valid stream must fail
// with a typed error — never a panic, never silent success.
func TestCodecTruncated(t *testing.T) {
	d := sampleData(t, 2)
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Cutting anywhere strictly before the end frame must error; step
	// through a spread of offsets including every boundary-ish region.
	step := len(full)/997 + 1
	for cut := 0; cut < len(full); cut += step {
		_, err := Decode(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d/%d silently succeeded", cut, len(full))
		}
		var fe *FormatError
		if !errors.Is(err, ErrTruncated) && !errors.As(err, &fe) {
			t.Fatalf("truncation at %d: untyped error %v", cut, err)
		}
	}
}

// TestCodecCorrupt: flipped bytes must produce typed errors (or, for
// payload-internal flips that stay structurally valid, decode to
// different data) — and must never panic.
func TestCodecCorrupt(t *testing.T) {
	d := sampleData(t, 2)
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	t.Run("magic", func(t *testing.T) {
		bad := append([]byte(nil), full...)
		bad[0] ^= 0xFF
		var fe *FormatError
		if _, err := Decode(bytes.NewReader(bad)); !errors.As(err, &fe) {
			t.Fatalf("bad magic: got %v, want FormatError", err)
		}
	})
	t.Run("version", func(t *testing.T) {
		bad := append([]byte(nil), full...)
		bad[len(magic)] ^= 0xFF
		var fe *FormatError
		if _, err := Decode(bytes.NewReader(bad)); !errors.As(err, &fe) {
			t.Fatalf("bad version: got %v, want FormatError", err)
		}
	})
	t.Run("frame-length", func(t *testing.T) {
		bad := append([]byte(nil), full...)
		// First frame header starts after magic+version; blow up its
		// length field.
		off := len(magic) + 2 + 1
		bad[off] = 0xFF
		_, err := Decode(bytes.NewReader(bad))
		var fe *FormatError
		if !errors.Is(err, ErrTruncated) && !errors.As(err, &fe) {
			t.Fatalf("corrupt length: got %v, want typed error", err)
		}
	})
	t.Run("index-out-of-range", func(t *testing.T) {
		// A well-framed event whose index lies outside the geometry the
		// meta frame declared must fail decoding, not silently leave a
		// hole in the dataset.
		var buf bytes.Buffer
		w := NewWriter(&buf)
		meta := d.Meta
		if err := w.Observe(MetaEvent{Meta: meta}); err != nil {
			t.Fatal(err)
		}
		if err := w.Observe(DayEvent{Index: meta.Run.DailyLen + 3, Active: ipv4.NewSet()}); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		var fe *FormatError
		if _, err := Decode(&buf); !errors.As(err, &fe) {
			t.Fatalf("out-of-range index: got %v, want FormatError", err)
		}
	})
	t.Run("sweep", func(t *testing.T) {
		// Flip a byte at a spread of positions; decoding must never
		// panic, whatever the outcome.
		step := len(full)/499 + 1
		for off := 0; off < len(full); off += step {
			bad := append([]byte(nil), full...)
			bad[off] ^= 0x55
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic decoding corruption at %d: %v", off, r)
					}
				}()
				_, _ = Decode(bytes.NewReader(bad))
			}()
		}
	})
}

// TestSourceInterfaces: both *Data and FileSource satisfy Source.
func TestSourceInterfaces(t *testing.T) {
	d := sampleData(t, 6)
	got, err := d.Observations()
	if err != nil || got != d {
		t.Fatalf("Data.Observations: %v %v", got, err)
	}
	path := t.TempDir() + "/dataset.obs"
	if err := WriteFile(path, d); err != nil {
		t.Fatal(err)
	}
	fromFile, err := FileSource(path).Observations()
	if err != nil {
		t.Fatal(err)
	}
	requireEqualData(t, d, fromFile)
}

// TestMetaWorldBounds: a corrupt meta frame with an implausible world
// config must fail decoding instead of driving world regeneration into
// a giant allocation downstream.
func TestMetaWorldBounds(t *testing.T) {
	m := Meta{}
	m.World.NumASes = 1 << 23
	m.World.MeanBlocksPerAS = 1 << 10
	m.Run.Days, m.Run.DailyLen = 7, 7
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Observe(MetaEvent{Meta: m}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var fe *FormatError
	if _, err := Decode(&buf); !errors.As(err, &fe) {
		t.Fatalf("implausible world config: got %v, want FormatError", err)
	}
}
